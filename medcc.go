// Package medcc is a budget-constrained scientific workflow scheduler for
// IaaS clouds, reproducing "On Scientific Workflow Scheduling in Clouds
// under Budget Constraint" (Lin and Wu, ICPP 2013).
//
// The MED-CC problem maps every module of a DAG-structured workflow to a
// virtual machine type so that the end-to-end delay (makespan) is
// minimized while the total execution cost stays within a user budget.
// The problem is NP-complete and non-approximable; the package provides
// the paper's Critical-Greedy heuristic, the GAIN/LOSS baseline families,
// an exhaustive optimal solver for small instances, an MCKP-based optimal
// oracle for pipeline workflows, a discrete-event cloud simulator, and a
// simulated Nimbus-style testbed.
//
// Quick start:
//
//	w := medcc.NewWorkflow()
//	a := w.AddModule(medcc.Module{Name: "prepare", Workload: 40})
//	b := w.AddModule(medcc.Module{Name: "solve", Workload: 120})
//	_ = w.AddDependency(a, b, 2.5)
//
//	types := medcc.Catalog{
//		{Name: "small", Power: 10, Rate: 1},
//		{Name: "large", Power: 40, Rate: 5},
//	}
//	res, err := medcc.Solve(w, types, medcc.HourlyBilling, 12, "critical-greedy")
//
// See the examples directory for end-to-end programs, and DESIGN.md /
// EXPERIMENTS.md for the mapping from the paper's tables and figures to
// this repository.
package medcc

import (
	"fmt"

	"medcc/internal/adaptive"
	"medcc/internal/cloud"
	"medcc/internal/sched"
	"medcc/internal/sim"
	"medcc/internal/workflow"
)

// Core model types, re-exported from the internal packages so one import
// suffices for typical use.
type (
	// Workflow is a DAG of modules with workloads and data sizes.
	Workflow = workflow.Workflow
	// Module is one computing module (or a fixed entry/exit marker).
	Module = workflow.Module
	// Schedule maps module indices to VM type indices (-1 for fixed).
	Schedule = workflow.Schedule
	// Matrices are the per-module execution time/cost tables.
	Matrices = workflow.Matrices
	// VMType describes one VM type: processing power and price rate.
	VMType = cloud.VMType
	// Catalog is an ordered set of available VM types.
	Catalog = cloud.Catalog
	// BillingPolicy maps raw occupancy to billed duration.
	BillingPolicy = cloud.BillingPolicy
	// ReusePlan assigns scheduled modules to shared VM instances.
	ReusePlan = workflow.ReusePlan
	// WorkflowStats summarizes a workflow's shape (depth, width, CCR);
	// obtained from (*Workflow).ComputeStats.
	WorkflowStats = workflow.Stats
)

// HourlyBilling is the paper's instance-hour model: partial hours round up.
var HourlyBilling = cloud.HourlyRoundUp

// ExactBilling charges exactly the occupied duration.
var ExactBilling BillingPolicy = cloud.Exact{}

// PerSecondBilling rounds occupancy up to whole seconds, the model of the
// paper's WRF testbed experiment (times expressed in seconds).
var PerSecondBilling BillingPolicy = cloud.RoundUp{Unit: 1}

// ErrInfeasible reports a budget below the least-cost schedule's cost.
var ErrInfeasible = sched.ErrInfeasible

// NewWorkflow returns an empty workflow.
func NewWorkflow() *Workflow { return workflow.New() }

// NewPipeline builds a linear pipeline workflow from workloads — the
// MED-CC-Pipeline special case of the paper's complexity analysis.
func NewPipeline(workloads []float64) *Workflow { return workflow.NewPipeline(workloads) }

// Algorithms lists the registered scheduling algorithms, sorted by name.
func Algorithms() []string { return sched.Names() }

// Result is a schedule with its analytic end-to-end delay and cost.
type Result struct {
	// Schedule maps each module to a catalog index.
	Schedule Schedule
	// MED is the minimum end-to-end delay achieved (the makespan).
	MED float64
	// Cost is the total billed execution cost, <= the budget.
	Cost float64
	// Matrices are the time/cost tables the schedule was computed
	// against, reusable for further evaluation or simulation.
	Matrices *Matrices
}

// Solve schedules the workflow over the catalog under the billing policy
// (nil means HourlyBilling) so that cost stays within budget, using the
// named algorithm ("critical-greedy", "gain3", "optimal", ...; see
// Algorithms). It returns ErrInfeasible when budget < the least-cost
// schedule's cost.
func Solve(w *Workflow, types Catalog, billing BillingPolicy, budget float64, algorithm string) (*Result, error) {
	alg, err := sched.Get(algorithm)
	if err != nil {
		return nil, err
	}
	m, err := w.BuildMatrices(types, billing)
	if err != nil {
		return nil, fmt.Errorf("medcc: %w", err)
	}
	res, err := sched.Run(alg, w, m, budget)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: res.Schedule, MED: res.MED, Cost: res.Cost, Matrices: m}, nil
}

// BudgetRange returns [Cmin, Cmax] for the workflow over the catalog: the
// cost of the least-cost schedule (below which no feasible schedule
// exists) and of the fastest schedule (above which budget is wasted).
func BudgetRange(w *Workflow, types Catalog, billing BillingPolicy) (cmin, cmax float64, err error) {
	m, err := w.BuildMatrices(types, billing)
	if err != nil {
		return 0, 0, fmt.Errorf("medcc: %w", err)
	}
	cmin, cmax = m.BudgetRange(w)
	return cmin, cmax, nil
}

// PlanReuse packs the modules of a solved schedule onto shared VM
// instances whenever execution intervals permit, generally provisioning
// fewer VMs than modules (§V-B of the paper).
func PlanReuse(w *Workflow, r *Result) (*ReusePlan, error) {
	ev, err := w.Evaluate(r.Matrices, r.Schedule, nil)
	if err != nil {
		return nil, err
	}
	return w.PlanReuse(r.Schedule, ev.Timing, workflow.ReuseByInterval), nil
}

// SimulationResult is the outcome of a discrete-event replay.
type SimulationResult = sim.Result

// Simulate replays a solved schedule through the discrete-event cloud
// simulator with the given VM boot latency and shared-storage bandwidth
// (bandwidth <= 0 disables transfer delays), optionally using a reuse
// plan (nil provisions one VM per module). With bootTime zero and free
// transfers the simulated makespan and cost equal the analytic ones.
func Simulate(w *Workflow, r *Result, reuse *ReusePlan, bootTime, bandwidth, delay float64) (*SimulationResult, error) {
	return sim.Run(sim.Config{
		Workflow:  w,
		Matrices:  r.Matrices,
		Schedule:  r.Schedule,
		BootTime:  bootTime,
		Reuse:     reuse,
		Bandwidth: bandwidth,
		Delay:     delay,
	})
}

// PaperExample returns the workflow and VM catalog of the paper's §V-B
// numerical example (six modules, three types, budgets in [48, 64]).
func PaperExample() (*Workflow, Catalog) { return workflow.PaperExample() }

// ParetoPoint is one non-dominated (cost, MED) trade-off.
type ParetoPoint = sched.ParetoPoint

// ParetoFront traces the workflow's delay/cost trade-off curve: `points`
// budgets swept across [Cmin, Cmax] with the named algorithm, reduced to
// the non-dominated outcomes in increasing cost order. Use "optimal" for
// an exact front on small instances.
func ParetoFront(w *Workflow, types Catalog, billing BillingPolicy, points int, algorithm string) ([]ParetoPoint, error) {
	alg, err := sched.Get(algorithm)
	if err != nil {
		return nil, err
	}
	m, err := w.BuildMatrices(types, billing)
	if err != nil {
		return nil, fmt.Errorf("medcc: %w", err)
	}
	return sched.ParetoFront(alg, w, m, points)
}

// ErrDeadline reports a deadline below the fastest schedule's makespan.
var ErrDeadline = sched.ErrDeadline

// Adaptive execution types, re-exported from internal/adaptive.
type (
	// AdaptiveConfig describes an execution under runtime uncertainty.
	AdaptiveConfig = adaptive.Config
	// AdaptiveOutcome reports its makespan, actual bill, and overspend.
	AdaptiveOutcome = adaptive.Outcome
)

// UniformNoise builds a runtime perturbation drawing actual duration =
// estimate x U[1-under, 1+over].
var UniformNoise = adaptive.Uniform

// RunAdaptive executes a workflow whose actual module durations deviate
// from the estimates the schedule was computed with. With Replan set, the
// unstarted remainder is re-planned after every completion against the
// budget actually left — cutting budget violations at the price of a
// longer makespan (see EXPERIMENTS.md A6).
func RunAdaptive(cfg AdaptiveConfig) (*AdaptiveOutcome, error) {
	return adaptive.Run(cfg)
}

// SolveDeadline solves the dual problem: minimize total cost subject to an
// end-to-end deadline. With exact=false it runs the LOSS-style greedy
// (practical at any size); with exact=true it runs branch-and-bound
// (small instances only, like the "optimal" budget algorithm). It returns
// ErrDeadline when the deadline is below the fastest schedule's makespan.
func SolveDeadline(w *Workflow, types Catalog, billing BillingPolicy, deadline float64, exact bool) (*Result, error) {
	m, err := w.BuildMatrices(types, billing)
	if err != nil {
		return nil, fmt.Errorf("medcc: %w", err)
	}
	var res *sched.Result
	if exact {
		res, err = sched.OptimalDeadline(w, m, deadline, 0)
	} else {
		res, err = sched.DeadlineLoss(w, m, deadline)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: res.Schedule, MED: res.MED, Cost: res.Cost, Matrices: m}, nil
}
