package medcc_test

import (
	"os/exec"
	"testing"
	"time"
)

// TestExamplesRun executes every example program end to end via the Go
// toolchain, asserting each exits cleanly and produces output. Skipped
// under -short (it compiles and runs six example binaries).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution skipped in -short mode")
	}
	examples := []string{"quickstart", "budgetsweep", "montage", "wrf", "deadline", "adaptive"}
	for _, ex := range examples {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+ex)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				_ = cmd.Process.Kill()
				t.Fatalf("%s timed out", ex)
			}
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", ex)
			}
		})
	}
}
