module medcc

go 1.22
