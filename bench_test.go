package medcc

// One benchmark per table and figure of the paper's evaluation (the
// experiment index of DESIGN.md §4), plus micro-benchmarks of the pieces
// each experiment is assembled from. The per-experiment benches run the
// same harness code as cmd/experiments with CI-sized instance counts, so
// `go test -bench=. -benchmem` both times the pipeline and re-validates
// that every experiment still completes.

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"medcc/internal/analysis"
	"medcc/internal/cloud"
	"medcc/internal/dag"
	"medcc/internal/encoding"
	"medcc/internal/exper"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/serve"
	"medcc/internal/sim"
	"medcc/internal/stats"
	"medcc/internal/testbed"
	"medcc/internal/workflow"
	"medcc/internal/wrf"
)

// --- E2/E3: numerical example (Table II, Fig. 6) ---

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4/E5: optimality studies (Table III, Fig. 7) ---

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.TableIII(exper.DefaultSeed, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Fig7(exper.DefaultSeed, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Table IV / Fig. 8 ---

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.TableIV(exper.DefaultSeed, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7-E9: the Fig. 9/10/11 campaign ---

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := exper.Campaign(exper.DefaultSeed, 2, 5)
		if err != nil {
			b.Fatal(err)
		}
		exper.Fig9(cells)
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := exper.Campaign(exper.DefaultSeed, 2, 5)
		if err != nil {
			b.Fatal(err)
		}
		exper.Fig10(cells)
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Campaign(exper.DefaultSeed, 2, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: WRF testbed experiment (Table VII, Fig. 15) ---

func BenchmarkTableVII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.TableVII()
		if err != nil {
			b.Fatal(err)
		}
		exper.Fig15(rows)
	}
}

// --- A1/A2: ablation and validation ---

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Ablation(exper.DefaultSeed, gen.ProblemSize{M: 20, E: 80, N: 5}, 2, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.SimValidation(exper.DefaultSeed, gen.ProblemSize{M: 20, E: 80, N: 5}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A3/A4/A5: extension experiments ---

func BenchmarkProvisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Provisioning(8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiCloud(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.MultiCloud(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Clustering(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTestbedCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.TestbedCapacity(exper.DefaultSeed, 8, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Adaptive(exper.DefaultSeed, gen.ProblemSize{M: 12, E: 25, N: 4}, 2, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the underlying pieces ---

func benchInstance(b *testing.B, size gen.ProblemSize) (*workflow.Workflow, *workflow.Matrices, float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	w, cat, err := gen.Instance(rng, size)
	if err != nil {
		b.Fatal(err)
	}
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		b.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(w)
	return w, m, (cmin + cmax) / 2
}

func benchScheduler(b *testing.B, name string, size gen.ProblemSize) {
	b.Helper()
	w, m, budget := benchInstance(b, size)
	alg, err := sched.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	if into, ok := alg.(sched.IntoScheduler); ok {
		// Warm once so the steady-state loop measures the reused-scratch
		// path, then hand the same destination schedule back every
		// iteration: allocs/op should read 0.
		dst, err := into.ScheduleInto(nil, w, m, budget)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := into.ScheduleInto(dst, w, m, budget); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Schedule(w, m, budget); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCriticalGreedy20(b *testing.B) {
	benchScheduler(b, "critical-greedy", gen.ProblemSize{M: 20, E: 80, N: 5})
}

func BenchmarkCriticalGreedy100(b *testing.B) {
	benchScheduler(b, "critical-greedy", gen.ProblemSize{M: 100, E: 2344, N: 9})
}

func BenchmarkCriticalGreedy500(b *testing.B) {
	benchScheduler(b, "critical-greedy", gen.ProblemSize{M: 500, E: 58600, N: 9})
}

func BenchmarkCriticalGreedy2000(b *testing.B) {
	benchScheduler(b, "critical-greedy", gen.ProblemSize{M: 2000, E: 120000, N: 9})
}

func BenchmarkGAIN3_100(b *testing.B) {
	benchScheduler(b, "gain3", gen.ProblemSize{M: 100, E: 2344, N: 9})
}

func BenchmarkGAIN3_500(b *testing.B) {
	benchScheduler(b, "gain3", gen.ProblemSize{M: 500, E: 58600, N: 9})
}

func BenchmarkGain3WRF100(b *testing.B) {
	benchScheduler(b, "gain3-wrf", gen.ProblemSize{M: 100, E: 2344, N: 9})
}

func BenchmarkOptimal8(b *testing.B) {
	benchScheduler(b, "optimal", gen.ProblemSize{M: 8, E: 18, N: 3})
}

func BenchmarkOptimal10(b *testing.B) {
	benchScheduler(b, "optimal", gen.ProblemSize{M: 10, E: 22, N: 3})
}

// BenchmarkOptimalParallel8 pins the branch-and-bound fan-out at eight
// workers regardless of GOMAXPROCS, exercising the frontier-split path the
// auto setting only takes on large machines.
func BenchmarkOptimalParallel8(b *testing.B) {
	w, m, budget := benchInstance(b, gen.ProblemSize{M: 8, E: 18, N: 3})
	alg := &sched.Optimal{Workers: 8}
	b.ReportAllocs()
	dst, err := alg.ScheduleInto(nil, w, m, budget)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.ScheduleInto(dst, w, m, budget); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimingPass100(b *testing.B) {
	w, m, _ := benchInstance(b, gen.ProblemSize{M: 100, E: 2344, N: 9})
	s := m.LeastCost(w)
	times := m.Times(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dag.NewTiming(w.Graph(), times, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorReplay100(b *testing.B) {
	w, m, budget := benchInstance(b, gen.ProblemSize{M: 100, E: 2344, N: 9})
	res, err := sched.Run(sched.CriticalGreedy(), w, m, budget)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{Workflow: w, Matrices: m, Schedule: res.Schedule, Bandwidth: 50, Delay: 0.001, BootTime: 0.1}
	// Warm once so the loop measures the pooled replayer's steady state
	// (same pattern as the scheduler benches): allocs/op should read 0.
	var r sim.Replayer
	if _, err := r.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimValidateBatch(b *testing.B) {
	// Campaign-scale replay: the flagship instance at 20 budget levels,
	// sharded across GOMAXPROCS pooled replayers.
	w, m, _ := benchInstance(b, gen.ProblemSize{M: 100, E: 2344, N: 9})
	cmin, cmax := m.BudgetRange(w)
	const levels = 20
	cfgs := make([]sim.Config, 0, levels)
	for k := 1; k <= levels; k++ {
		budget := cmin + float64(k)/levels*(cmax-cmin)
		res, err := sched.Run(sched.CriticalGreedy(), w, m, budget)
		if err != nil {
			b.Fatal(err)
		}
		cfgs = append(cfgs, sim.Config{Workflow: w, Matrices: m, Schedule: res.Schedule, Bandwidth: 50, Delay: 0.001, BootTime: 0.1})
	}
	var out []sim.BatchResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = sim.ValidateBatchInto(out, cfgs)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTestbedWRF(b *testing.B) {
	w := wrf.Grouped()
	m := wrf.Matrices(w)
	res, err := sched.Run(sched.CriticalGreedy(), w, m, 186.2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := testbed.DefaultConfig()
	cfg.BootTime = 30
	cfg.RepoBandwidthGBps = 0.2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := testbed.Execute(cfg, w, m, res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateInstance100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, _, err := gen.Instance(rng, gen.ProblemSize{M: 100, E: 2344, N: 9}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- corpus ingest (internal/encoding) ---

// benchCorpusRecords is how many instances the ingest benches cycle per
// iteration; ns/op divides by it for a per-instance read.
const benchCorpusRecords = 64

// benchCorpus builds one in-memory binary corpus and, for the JSON
// comparator, the same workflows marshaled individually — the decode
// side of the pre-corpus ingestion path (one Unmarshal into a fresh
// workflow per instance).
func benchCorpus(b *testing.B) (bin []byte, jsons [][]byte) {
	b.Helper()
	var buf bytes.Buffer
	cw, err := encoding.NewCorpusWriter(&buf, false)
	if err != nil {
		b.Fatal(err)
	}
	var bld gen.Builder
	sizes := gen.PaperProblemSizes()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < benchCorpusRecords; i++ {
		size := sizes[i%6] // the smaller half of the grid: per-record overhead dominates there
		wf, cat, err := bld.Instance(rng, size)
		if err != nil {
			b.Fatal(err)
		}
		info := encoding.InstanceInfo{Index: int64(i), Kind: encoding.KindGenerated,
			M: uint32(size.M), E: uint32(size.E), N: uint32(size.N)}
		if err := cw.WriteInstance(wf, cat, info); err != nil {
			b.Fatal(err)
		}
		js, err := json.Marshal(wf)
		if err != nil {
			b.Fatal(err)
		}
		jsons = append(jsons, js)
	}
	if err := cw.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), jsons
}

// BenchmarkCorpusIngest reads benchCorpusRecords instances per iteration
// from an in-memory binary corpus through the pooled zero-copy decoder.
// Steady state must stay at 0 allocs/op (gated by scripts/bench_compare.sh,
// MAX_ALLOC_DELTA=0).
func BenchmarkCorpusIngest(b *testing.B) {
	data, _ := benchCorpus(b)
	var cr encoding.CorpusReader
	src := bytes.NewReader(data)
	wf := workflow.New()
	sweep := func() {
		src.Reset(data)
		if err := cr.Reset(src); err != nil {
			b.Fatal(err)
		}
		for {
			_, _, err := cr.Next(wf)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if cr.NumRead() != benchCorpusRecords {
			b.Fatalf("read %d records", cr.NumRead())
		}
	}
	sweep() // warm the pooled decoder and intern table
	sweep()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep()
	}
}

// BenchmarkCorpusIngestJSON is the comparator: the same instances read
// back through encoding/json, one Unmarshal into a fresh workflow per
// record, as the pre-corpus JSON ingestion path did.
func BenchmarkCorpusIngestJSON(b *testing.B) {
	_, jsons := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, js := range jsons {
			wf := workflow.New()
			if err := json.Unmarshal(js, wf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- serving: cmd/medcc-serve's worker pool over HTTP ---

// BenchmarkServeSchedule is the in-process serving hot path: a warm
// named-pair request through admission, the worker round trip, and the
// pooled response fill. Steady state must stay at 0 allocs/op (gated by
// scripts/bench_compare.sh, MAX_ALLOC_DELTA=0). The staircase cache is
// disabled so the number keeps measuring the direct scheduling path
// (the cached fast path has its own BenchmarkServeCachedSchedule).
func BenchmarkServeSchedule(b *testing.B) {
	s, err := serve.New(serve.Config{Workers: 1, Cache: serve.CacheConfig{Disable: true}})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	p := serve.Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.5}
	var res serve.Result
	for i := 0; i < 3; i++ { // warm pools, engines, timing
		if err := s.Schedule(p, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Schedule(p, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeThroughput drives the full HTTP serving path — decode,
// admission, batched scheduling, JSON response — with GOMAXPROCS
// closed-loop clients, and reports the p50/p99 request latency as
// custom metrics alongside ns/op (captured into the BENCH_8.json
// snapshot by scripts/bench.sh). The staircase cache is disabled to
// keep the number comparable to earlier snapshots: every request pays
// for a real solve.
func BenchmarkServeThroughput(b *testing.B) {
	s, err := serve.New(serve.Config{QueueDepth: 1024, Cache: serve.CacheConfig{Disable: true}})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/schedule?workflow=example&catalog=paper&budget_fraction=0.5"
	client := ts.Client()
	do := func() time.Duration {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", nil)
		if err != nil {
			b.Error(err)
			return 0
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Errorf("status %d", resp.StatusCode)
		}
		return time.Since(t0)
	}
	for i := 0; i < 8; i++ {
		do() // warm pools and connections
	}
	var mu sync.Mutex
	lats := make([]float64, 0, b.N)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]float64, 0, 1024)
		for pb.Next() {
			local = append(local, float64(do().Nanoseconds()))
		}
		mu.Lock()
		lats = append(lats, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lats) > 0 {
		sort.Float64s(lats)
		b.ReportMetric(stats.Percentile(lats, 50), "p50-ns")
		b.ReportMetric(stats.Percentile(lats, 99), "p99-ns")
	}
}

// benchServeLibrary writes one gen.Random workflow of the given size to
// a temp JSON file and returns a Library naming it "bench" (paired with
// the built-in "paper" catalog). Sized so scheduling, not transport,
// dominates the uncached request.
func benchServeLibrary(b *testing.B, modules int) serve.Library {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	w, err := gen.Random(rng, gen.Params{
		Modules: modules, Edges: modules * 3 / 2,
		WorkloadMin: 1000, WorkloadMax: 5000, AddEntryExit: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	return serve.Library{Workflows: map[string]string{"bench": path}}
}

// benchWarmCache primes the params' staircase (the first miss arms an
// asynchronous build on a worker) and polls GET /stats until a request
// is answered from it.
func benchWarmCache(b *testing.B, s *serve.Server, p serve.Params, res *serve.Result) {
	b.Helper()
	h := s.Handler()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := s.Schedule(p, res); err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest("GET", "/stats", nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		var st struct {
			Hits int64 `json:"cache_hits"`
		}
		if err := json.Unmarshal(rw.Body.Bytes(), &st); err != nil {
			b.Fatal(err)
		}
		if st.Hits > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.Fatal("staircase never warmed")
}

// BenchmarkServeCachedSchedule is the in-process cache hit: binary
// search over the frozen staircase plus the pooled row copy, no engine.
// Steady state must stay at 0 allocs/op (gated by
// scripts/bench_compare.sh, MAX_ALLOC_DELTA=0).
func BenchmarkServeCachedSchedule(b *testing.B) {
	s, err := serve.New(serve.Config{Workers: 1, Library: benchServeLibrary(b, 500)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	p := serve.Params{WorkflowRef: "bench", CatalogRef: "paper", UseFraction: true, Fraction: 0.5}
	var res serve.Result
	benchWarmCache(b, s, p, &res) // also grows res's buffers to steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Schedule(p, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServeHTTP is the shared closed-loop HTTP harness behind the
// cached/uncached throughput pair: GOMAXPROCS clients hammer one warm
// named-pair request against an m=500 library workflow and the p50/p99
// request latencies are reported as custom metrics.
func benchServeHTTP(b *testing.B, cfg serve.Config) {
	cfg.Library = benchServeLibrary(b, 500)
	cfg.QueueDepth = 1024
	s, err := serve.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	p := serve.Params{WorkflowRef: "bench", CatalogRef: "paper", UseFraction: true, Fraction: 0.5}
	if !cfg.Cache.Disable {
		var res serve.Result
		benchWarmCache(b, s, p, &res)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/schedule?workflow=bench&catalog=paper&budget_fraction=0.5"
	client := ts.Client()
	do := func() time.Duration {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", nil)
		if err != nil {
			b.Error(err)
			return 0
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Errorf("status %d", resp.StatusCode)
		}
		return time.Since(t0)
	}
	for i := 0; i < 8; i++ {
		do() // warm pools and connections
	}
	var mu sync.Mutex
	lats := make([]float64, 0, b.N)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]float64, 0, 1024)
		for pb.Next() {
			local = append(local, float64(do().Nanoseconds()))
		}
		mu.Lock()
		lats = append(lats, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lats) > 0 {
		sort.Float64s(lats)
		b.ReportMetric(stats.Percentile(lats, 50), "p50-ns")
		b.ReportMetric(stats.Percentile(lats, 99), "p99-ns")
	}
}

// BenchmarkServeCachedThroughput serves every request from the budget
// staircase: after the warm-up install, no request touches an engine.
// The tentpole target is p50 at least 5x below
// BenchmarkServeUncachedThroughput's on the same workload.
func BenchmarkServeCachedThroughput(b *testing.B) {
	benchServeHTTP(b, serve.Config{})
}

// BenchmarkServeUncachedThroughput is the same workload with the cache
// disabled — every request pays the full m=500 solve. The cached/
// uncached p50 ratio is the headline speedup of the staircase cache.
func BenchmarkServeUncachedThroughput(b *testing.B) {
	benchServeHTTP(b, serve.Config{Cache: serve.CacheConfig{Disable: true}})
}

// BenchmarkLintSelf times the full static-analysis pass over this
// module: the parallel loader (concurrent parse, wave-parallel
// type-check) plus all ten analyzers and the stale-suppression pass.
// Each iteration builds a fresh Loader, so the number tracks the cold
// cost CI pays per lint run.
func BenchmarkLintSelf(b *testing.B) {
	root, err := analysis.FindRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loader, err := analysis.NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		mod, err := loader.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		if diags := analysis.Run(mod, analysis.All()); len(diags) != 0 {
			b.Fatalf("module is not lint-clean: %v", diags[0])
		}
	}
}
