package medcc_test

import (
	"fmt"

	"medcc"
)

// ExampleSolve schedules the paper's numerical example at the walk-through
// budget of §V-B.
func ExampleSolve() {
	w, types := medcc.PaperExample()
	res, err := medcc.Solve(w, types, medcc.HourlyBilling, 57, "critical-greedy")
	if err != nil {
		panic(err)
	}
	fmt.Printf("MED %.2f at cost %.0f (one budget unit unused)\n", res.MED, res.Cost)
	// Output: MED 5.93 at cost 56 (one budget unit unused)
}

// ExampleBudgetRange shows the feasible budget window of a workflow.
func ExampleBudgetRange() {
	w, types := medcc.PaperExample()
	cmin, cmax, err := medcc.BudgetRange(w, types, medcc.HourlyBilling)
	if err != nil {
		panic(err)
	}
	fmt.Printf("budgets below %.0f are infeasible; above %.0f they are wasted\n", cmin, cmax)
	// Output: budgets below 48 are infeasible; above 64 they are wasted
}

// ExampleSolveDeadline minimizes cost under a deadline — the dual of the
// budget-constrained problem.
func ExampleSolveDeadline() {
	w, types := medcc.PaperExample()
	res, err := medcc.SolveDeadline(w, types, medcc.HourlyBilling, 12, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("meeting a 12-hour deadline costs %.0f\n", res.Cost)
	// Output: meeting a 12-hour deadline costs 50
}

// ExamplePlanReuse packs a schedule onto shared VM instances.
func ExamplePlanReuse() {
	w, types := medcc.PaperExample()
	res, err := medcc.Solve(w, types, medcc.HourlyBilling, 48, "critical-greedy")
	if err != nil {
		panic(err)
	}
	plan, err := medcc.PlanReuse(w, res)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d modules share %d VMs\n", len(w.Schedulable()), plan.NumVMs())
	// Output: 6 modules share 4 VMs
}

// ExampleSimulate replays a schedule through the discrete-event simulator.
func ExampleSimulate() {
	w, types := medcc.PaperExample()
	res, err := medcc.Solve(w, types, medcc.HourlyBilling, 57, "critical-greedy")
	if err != nil {
		panic(err)
	}
	sim, err := medcc.Simulate(w, res, nil, 0, 0, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("simulated makespan matches the analytic MED: %v\n", sim.Makespan == res.MED)
	// Output: simulated makespan matches the analytic MED: true
}
