// Budgetsweep reproduces the paper's §V-B numerical example end to end:
// the six-module workflow of Fig. 4 with the three VM types of Table I,
// swept across every budget in [Cmin, Cmax] = [48, 64]. The output is the
// Table II schedule staircase and the Fig. 6 MED-vs-budget series, plus a
// discrete-event replay of one schedule as a sanity check.
package main

import (
	"fmt"
	"log"
	"math"

	"medcc"
)

func main() {
	w, types := medcc.PaperExample()
	cmin, cmax, err := medcc.BudgetRange(w, types, medcc.HourlyBilling)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("numerical example: Cmin=%.0f (least-cost), Cmax=%.0f (fastest)\n\n", cmin, cmax)

	fmt.Println("budget  cost  MED     mapping (w1..w6)")
	var prev medcc.Schedule
	for b := cmin; b <= cmax; b++ {
		res, err := medcc.Solve(w, types, medcc.HourlyBilling, b, "critical-greedy")
		if err != nil {
			log.Fatal(err)
		}
		marker := " "
		if prev == nil || !res.Schedule.Equal(prev) {
			marker = "*" // schedule changed: a Table II breakpoint
			prev = res.Schedule
		}
		fmt.Printf("%s %4.0f  %4.0f  %6.2f  ", marker, b, res.Cost, res.MED)
		for i := 1; i <= 6; i++ {
			fmt.Printf("VT%d ", res.Schedule[i]+1)
		}
		fmt.Println()
	}

	// Replay the B=57 schedule (the paper's walk-through budget) in the
	// event simulator: with warm VMs and free transfers it must agree
	// with the analytic model exactly.
	res, err := medcc.Solve(w, types, medcc.HourlyBilling, 57, "critical-greedy")
	if err != nil {
		log.Fatal(err)
	}
	sim, err := medcc.Simulate(w, res, nil, 0, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nB=57 replay: analytic MED %.4f vs simulated %.4f (|diff| %.1e), cost %.0f\n",
		res.MED, sim.Makespan, math.Abs(res.MED-sim.Makespan), sim.Cost)

	// And with a 15-minute VM boot and finite storage bandwidth the
	// simulator shows the overheads the analytic model abstracts away.
	cold, err := medcc.Simulate(w, res, nil, 0.25, 4, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B=57 cold-start replay: makespan %.4f (+%.2f h of boot/transfer overhead)\n",
		cold.Makespan, cold.Makespan-res.MED)
}
