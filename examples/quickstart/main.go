// Quickstart: schedule a small bioinformatics-style workflow under a
// budget using the public medcc API, then tighten the budget and watch the
// delay/cost trade-off move.
package main

import (
	"fmt"
	"log"

	"medcc"
)

func main() {
	// A four-stage variant-calling workflow: align fans out per sample,
	// then a joint genotyping step gathers the results.
	w := medcc.NewWorkflow()
	qc := w.AddModule(medcc.Module{Name: "qc", Workload: 20})
	var aligns []int
	for i := 1; i <= 3; i++ {
		a := w.AddModule(medcc.Module{Name: fmt.Sprintf("align%d", i), Workload: 90})
		aligns = append(aligns, a)
		must(w.AddDependency(qc, a, 5))
	}
	joint := w.AddModule(medcc.Module{Name: "genotype", Workload: 150})
	for _, a := range aligns {
		must(w.AddDependency(a, joint, 2))
	}
	report := w.AddModule(medcc.Module{Name: "report", Workload: 10})
	must(w.AddDependency(joint, report, 1))

	// Three instance sizes, priced per started hour.
	types := medcc.Catalog{
		{Name: "small", Power: 10, Rate: 1},
		{Name: "medium", Power: 25, Rate: 3},
		{Name: "large", Power: 45, Rate: 6},
	}

	cmin, cmax, err := medcc.BudgetRange(w, types, medcc.HourlyBilling)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible budgets: [%.0f, %.0f]\n\n", cmin, cmax)

	for _, budget := range []float64{cmin, (cmin + cmax) / 2, cmax} {
		res, err := medcc.Solve(w, types, medcc.HourlyBilling, budget, "critical-greedy")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %.0f: end-to-end delay %.2f h, cost %.0f\n", budget, res.MED, res.Cost)
		for i := 0; i < w.NumModules(); i++ {
			fmt.Printf("  %-10s -> %s\n", w.Module(i).Name, types[res.Schedule[i]].Name)
		}
		// How many VMs do we actually need once intervals are packed?
		plan, err := medcc.PlanReuse(w, res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  provisioned VMs after reuse: %d (for %d modules)\n\n", plan.NumVMs(), w.NumModules())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
