// Montage schedules a Montage-style astronomy mosaicking workflow (the
// wide-fan / gather / tail shape that motivates critical-path-aware
// budget spending) across several algorithms and budgets, comparing the
// analytic delay with a cold-start discrete-event replay.
//
// It demonstrates the repository on a workload class beyond the paper's
// WRF study, using the internal topology generator plus the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"medcc"
	"medcc/internal/gen"
)

func main() {
	// A 12-image mosaic; the generator mirrors Montage's stage profile
	// (mProject fan, mDiffFit pairs, mBgModel gather, mAdd-heavy tail).
	w := gen.MontageLike(rand.New(rand.NewSource(42)), 12)

	types := medcc.Catalog{
		{Name: "t2.small", Power: 8, Rate: 1},
		{Name: "m5.large", Power: 20, Rate: 3},
		{Name: "c5.xlarge", Power: 34, Rate: 5},
		{Name: "c5.2xlarge", Power: 58, Rate: 9},
	}
	cmin, cmax, err := medcc.BudgetRange(w, types, medcc.HourlyBilling)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("montage-like workflow: %d modules, %d edges, budgets [%.0f, %.0f]\n\n",
		w.NumModules(), w.NumDependencies(), cmin, cmax)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "budget\talgorithm\tMED (h)\tcost\tVMs after reuse\tcold-start MED")
	for _, frac := range []float64{0.15, 0.5, 1.0} {
		budget := cmin + frac*(cmax-cmin)
		for _, alg := range []string{"critical-greedy", "gain3", "loss1"} {
			res, err := medcc.Solve(w, types, medcc.HourlyBilling, budget, alg)
			if err != nil {
				log.Fatal(err)
			}
			plan, err := medcc.PlanReuse(w, res)
			if err != nil {
				log.Fatal(err)
			}
			// Cold start: 5-minute boots, shared storage at 40
			// data units per hour.
			cold, err := medcc.Simulate(w, res, plan, 5.0/60, 40, 0.002)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%.0f\t%s\t%.2f\t%.0f\t%d\t%.2f\n",
				budget, alg, res.MED, res.Cost, plan.NumVMs(), cold.Makespan)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
