// Adaptive demonstrates execution under runtime uncertainty via the
// public API: a genomics-style workflow whose module runtimes overrun
// their estimates by up to 50%, executed with and without per-completion
// re-planning, plus the workflow's delay/cost Pareto front for context.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"medcc"
)

func main() {
	w := medcc.NewWorkflow()
	qc := w.AddModule(medcc.Module{Name: "qc", Workload: 20})
	var lanes []int
	for i := 1; i <= 3; i++ {
		a := w.AddModule(medcc.Module{Name: fmt.Sprintf("align%d", i), Workload: 150})
		c := w.AddModule(medcc.Module{Name: fmt.Sprintf("call%d", i), Workload: 60})
		must(w.AddDependency(qc, a, 4))
		must(w.AddDependency(a, c, 2))
		lanes = append(lanes, c)
	}
	joint := w.AddModule(medcc.Module{Name: "jointGenotype", Workload: 90})
	for _, c := range lanes {
		must(w.AddDependency(c, joint, 1))
	}
	types := medcc.Catalog{
		{Name: "small", Power: 10, Rate: 1},
		{Name: "medium", Power: 25, Rate: 3},
		{Name: "large", Power: 45, Rate: 6},
	}

	// Where does this workflow's trade-off curve live?
	front, err := medcc.ParetoFront(w, types, medcc.HourlyBilling, 20, "critical-greedy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("delay/cost Pareto front (critical-greedy):")
	for _, p := range front {
		fmt.Printf("  cost %4.0f -> %6.2f h\n", p.Cost, p.MED)
	}

	budget := (front[0].Cost + front[len(front)-1].Cost) / 2
	fmt.Printf("\nexecuting at budget %.0f with runtimes overrunning up to +50%%:\n\n", budget)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "seed\tstatic cost\tstatic overspend\tadaptive cost\tadaptive overspend\treplans")
	for seed := int64(1); seed <= 5; seed++ {
		base := medcc.AdaptiveConfig{
			Workflow: w, Catalog: types, Billing: medcc.HourlyBilling,
			Budget: budget, Perturb: medcc.UniformNoise(0.1, 0.5), Seed: seed,
		}
		static, err := medcc.RunAdaptive(base)
		if err != nil {
			log.Fatal(err)
		}
		base.Replan = true
		adaptive, err := medcc.RunAdaptive(base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%d\n",
			seed, static.Cost, static.Overspend, adaptive.Cost, adaptive.Overspend, adaptive.Replans)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
