// Deadline demonstrates the dual problem: a weather-forecast-style
// workflow that must finish before a broadcast deadline, scheduled for
// minimum cost. Sweeping the deadline traces the delay/cost Pareto front
// from the other side than examples/budgetsweep.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"medcc"
)

func main() {
	// A forecast pipeline with a parallel ensemble stage: every member
	// must complete before the postprocessing merge.
	w := medcc.NewWorkflow()
	ingest := w.AddModule(medcc.Module{Name: "ingest", Workload: 15})
	prep := w.AddModule(medcc.Module{Name: "preprocess", Workload: 30})
	must(w.AddDependency(ingest, prep, 4))
	var members []int
	for i := 1; i <= 4; i++ {
		m := w.AddModule(medcc.Module{Name: fmt.Sprintf("ensemble%d", i), Workload: 120})
		members = append(members, m)
		must(w.AddDependency(prep, m, 2))
	}
	merge := w.AddModule(medcc.Module{Name: "merge", Workload: 45})
	for _, m := range members {
		must(w.AddDependency(m, merge, 3))
	}
	render := w.AddModule(medcc.Module{Name: "render", Workload: 10})
	must(w.AddDependency(merge, render, 1))

	types := medcc.Catalog{
		{Name: "basic", Power: 10, Rate: 1},
		{Name: "compute", Power: 30, Rate: 4},
		{Name: "hpc", Power: 60, Rate: 9},
	}

	// The fastest possible makespan bounds which deadlines are at all
	// achievable.
	fastest, err := medcc.SolveDeadline(w, types, medcc.HourlyBilling, 1e18, false)
	if err != nil {
		log.Fatal(err)
	}
	floor, err := medcc.Solve(w, types, medcc.HourlyBilling, 1e18, "critical-greedy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("achievable makespans: fastest %.2f h; cheapest-possible run costs %.0f\n\n",
		floor.MED, fastest.Cost)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "deadline (h)\tcost (greedy)\tcost (exact)\tmakespan")
	for _, d := range []float64{floor.MED, floor.MED * 1.25, floor.MED * 1.75, floor.MED * 3} {
		heur, err := medcc.SolveDeadline(w, types, medcc.HourlyBilling, d, false)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := medcc.SolveDeadline(w, types, medcc.HourlyBilling, d, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%.2f\t%.0f\t%.0f\t%.2f\n", d, heur.Cost, exact.Cost, exact.MED)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// An impossible deadline is a typed error the caller can detect.
	if _, err := medcc.SolveDeadline(w, types, medcc.HourlyBilling, 0.1, false); err != nil {
		fmt.Printf("\n0.1 h deadline: %v\n", err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
