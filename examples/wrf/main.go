// WRF reproduces the paper's real-life experiment (§VI-C): the grouped
// Weather Research and Forecasting workflow scheduled by Critical-Greedy
// and GAIN3 at the six published budgets, then executed on the simulated
// Nimbus testbed (4 VMM nodes behind a controller, with VM reuse).
//
// This example reaches into the repository's internal packages because it
// reproduces a repo-specific experiment; see examples/quickstart for the
// public-API path.
package main

import (
	"fmt"
	"log"
	"os"

	"medcc/internal/exper"
	"medcc/internal/sched"
	"medcc/internal/testbed"
	"medcc/internal/wrf"
)

func main() {
	w := wrf.Grouped()
	m := wrf.Matrices(w)
	cmin, cmax := m.BudgetRange(w)
	fmt.Printf("WRF grouped workflow: Cmin=%.1f Cmax=%.1f (paper: 125.9 / 243.6)\n\n", cmin, cmax)

	rows, err := exper.TableVII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reproduced Table VII (testbed MED measured on the simulated Nimbus cloud):")
	if err := exper.RenderTableVII(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\npublished Table VII rows for comparison:")
	if err := exper.RenderTableVII(os.Stdout, exper.PublishedTableVII()); err != nil {
		log.Fatal(err)
	}

	// Show the testbed mechanics at one budget: cold VMs, image
	// propagation from the repository, and per-host placement.
	res, err := sched.Run(sched.CriticalGreedy(), w, m, 186.2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := testbed.DefaultConfig()
	cfg.BootTime = 30
	cfg.RepoBandwidthGBps = 0.2 // 34 s to push the 6.8 GB image
	dep, err := testbed.Execute(cfg, w, m, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncold-start run at B=186.2: makespan %.1f s (warm: %.1f s), cost %.1f\n",
		dep.Makespan, res.MED, dep.Cost)
	for v, vm := range dep.VMs {
		fmt.Printf("  VM %d type VT%d on VMM %d: placed %.1f, ready %.1f, stopped %.1f, modules %v\n",
			v, vm.Type+1, vm.Host, vm.Placed, vm.Ready, vm.Stopped, vm.Modules)
	}
}
