package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// EpochGuard enforces the cached-binding contract introduced with the
// pooled builders: generators rebuild workflows and matrices in place
// behind unchanged pointers, so any struct that caches a *dag.Graph,
// *workflow.Workflow, or *workflow.Matrices in an unexported field must
// also carry a version/epoch guard field (uint64, name containing "ver"
// or "epoch") and compare it via dag.Graph.Version() /
// workflow.Matrices.Epoch() in some method — the way sched.engine.bind
// and sim.Replayer.bind do. Pointer equality alone lets stale timings
// and module lists leak across pooled rebuilds.
//
// Structs with only exported fields of these types are treated as
// pass-through configuration/result records (sim.Config,
// adaptive.Config), not caches, and are exempt; so are types with no
// methods and the dag/workflow packages themselves, which own the
// guarded types. Owner structs that build the instance they point to
// (rather than binding to someone else's) document the exemption with
// a `medcc:lint-ignore epochguard` comment on the field.
type EpochGuard struct{}

func (*EpochGuard) Name() string { return "epochguard" }
func (*EpochGuard) Doc() string {
	return "structs caching *dag.Graph / *workflow.Workflow / *workflow.Matrices need a Version()/Epoch() guard"
}

// guardNeeds maps a cached pointer type to the guard method its holder
// must call. Workflow needs Version because its identity is its graph
// structure (compared as w.Graph().Version()).
var guardNeeds = map[string]string{
	"medcc/internal/dag.Graph":         "Version",
	"medcc/internal/workflow.Workflow": "Version",
	"medcc/internal/workflow.Matrices": "Epoch",
}

// ownerPkgs declare the guarded types; holding them there is ownership,
// not caching.
var ownerPkgs = map[string]bool{
	"medcc/internal/dag":      true,
	"medcc/internal/workflow": true,
}

func (g *EpochGuard) Run(m *Module, report func(Diagnostic)) {
	for _, pkg := range m.Packages {
		if ownerPkgs[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					g.checkStruct(m, pkg, ts, st, report)
				}
			}
		}
	}
}

func (g *EpochGuard) checkStruct(m *Module, pkg *Package, ts *ast.TypeSpec, st *ast.StructType, report func(Diagnostic)) {
	obj, ok := pkg.Info.Defs[ts.Name]
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok || named.NumMethods() == 0 {
		return // no methods: plain data, nothing binds through it
	}

	hasGuardField := false
	for _, field := range st.Fields.List {
		t := pkg.Info.TypeOf(field.Type)
		if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Uint64 {
			for _, name := range field.Names {
				low := strings.ToLower(name.Name)
				if strings.Contains(low, "ver") || strings.Contains(low, "epoch") {
					hasGuardField = true
				}
			}
		}
	}

	for _, field := range st.Fields.List {
		need := guardedPtr(pkg.Info.TypeOf(field.Type))
		if need == "" {
			continue
		}
		for _, name := range field.Names {
			if ast.IsExported(name.Name) {
				continue // pass-through config/result field, caller owns freshness
			}
			if !hasGuardField {
				report(Diagnostic{
					Pos: m.Fset.Position(name.Pos()),
					Message: fmt.Sprintf("%s.%s caches %s but the struct has no uint64 version/epoch guard field",
						ts.Name.Name, name.Name, types.TypeString(pkg.Info.TypeOf(field.Type), types.RelativeTo(pkg.Types))),
				})
				continue
			}
			if !g.callsGuard(m, pkg, named, need) {
				report(Diagnostic{
					Pos: m.Fset.Position(name.Pos()),
					Message: fmt.Sprintf("%s.%s caches %s but no method of %s compares it via %s()",
						ts.Name.Name, name.Name, types.TypeString(pkg.Info.TypeOf(field.Type), types.RelativeTo(pkg.Types)),
						ts.Name.Name, need),
				})
			}
		}
	}
}

// guardedPtr returns the guard method required for a field of type t,
// or "" when t is not a guarded pointer type.
func guardedPtr(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return guardNeeds[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// callsGuard reports whether any method of named (in its own package)
// calls the guard method (dag.Graph.Version or workflow.Matrices.Epoch).
func (g *EpochGuard) callsGuard(m *Module, pkg *Package, named *types.Named, guard string) bool {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if recv != types.Type(named) {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := Callee(pkg, call)
				if callee == nil || callee.Name() != guard || callee.Pkg() == nil {
					return true
				}
				sig := callee.Type().(*types.Signature)
				if sig.Recv() == nil {
					return true
				}
				rt := sig.Recv().Type()
				if ptr, ok := rt.(*types.Pointer); ok {
					rt = ptr.Elem()
				}
				if n, ok := rt.(*types.Named); ok {
					key := n.Obj().Pkg().Path() + "." + n.Obj().Name()
					if guardNeeds[key] == guard {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}
