// Package goroleak is the fixture for the goroleak analyzer: pool and
// fanOut are the two sanctioned join shapes (WaitGroup, drain channel),
// leak and leakCall seed the violations, and the daemon functions show
// both annotation spellings.
package goroleak

import "sync"

type pool struct {
	wg    sync.WaitGroup
	queue chan int
}

// spawnJoined launches a worker whose body Done()s the WaitGroup the
// spawner Waits on — the sanctioned worker-pool shape.
func (p *pool) spawnJoined() {
	p.wg.Add(1)
	go p.run()
	p.wg.Wait()
}

func (p *pool) run() {
	defer p.wg.Done()
	for range p.queue {
	}
}

// fanOut launches a closure that signals completion on a channel the
// spawner drains — the sanctioned fan-out shape.
func fanOut() int {
	done := make(chan int, 1)
	go func() {
		done <- 1
	}()
	return <-done
}

// leak launches a closure nothing ever joins.
func leak() {
	go func() { // want "goroutine has no lifecycle"
		for {
		}
	}()
}

func tick() {}

// leakCall launches a named function whose body has no join either.
func leakCall() {
	go tick() // want "goroutine has no lifecycle"
}

// daemonInline annotates the spawn site itself.
func daemonInline() {
	// medcc:daemon — accept loop lives for the whole process.
	go func() {
		for {
		}
	}()
}

// daemonFunc carries the marker in its doc comment: every spawn inside
// is a deliberate process-lifetime goroutine.
//
// medcc:daemon
func daemonFunc() {
	go func() {
		for {
		}
	}()
}
