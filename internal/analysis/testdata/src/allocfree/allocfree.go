// Package allocfree is the fixture for the allocfree analyzer: hot is
// an annotated root exercising every allocating construct, helper shows
// the transitive walk, grow shows the medcc:coldpath opt-out, errPath
// the error-return exemption, and notChecked that unannotated,
// unreachable code is left alone.
package allocfree

import "fmt"

type buf struct {
	ints []int
	s    string
}

func (b *buf) id() int { return len(b.ints) }

func spin() {}

func sink(v any) { _ = v }

// helper is unannotated but reachable from hot, so the walk checks it.
func helper(n int) []int {
	out := []int{n} // want "slice literal allocates"
	return out
}

// grow allocates by design and is excluded from the walk.
//
// medcc:coldpath
func grow(n int) []int { return make([]int, n) }

// notChecked is neither annotated nor reachable from a root.
func notChecked(n int) []int { return make([]int, n) }

// medcc:allocfree
func hot(b *buf, n int) {
	m := make([]int, n)   // want "make allocates"
	m[0] = *new(int)      // want "new allocates"
	_ = map[int]int{n: n} // want "map literal allocates"
	q := &buf{}           // want "address-taken composite literal escapes to the heap"
	q.ints = m

	b.ints = append(b.ints, n)     // self-append: amortized growth, allowed
	b.ints = append(b.ints[:0], n) // reslice self-append: allowed
	other := append(b.ints, n)     // want "append result is not reassigned to its operand"
	_ = other

	f := func() {} // want "func literal allocates a closure"
	f()
	h := b.id // want "method value allocates a bound-method closure"
	_ = h()
	go spin() // want "go statement spawns a goroutine"

	b.s = b.s + "!"   // want "string concatenation allocates"
	b.s += "!"        // want "string concatenation allocates"
	bs := []byte(b.s) // want "byte conversion copies its operand"
	_ = bs

	_ = fmt.Sprint("x") // want "call to fmt.Sprint allocates"
	sink(n)             // want "argument boxes int into interface"
	sink("lit")         // constant: boxes to static data, allowed

	_ = helper(n)
	_ = grow(n)
	_ = make([]int, n) // medcc:lint-ignore allocfree — suppression fixture: no finding expected.
}

// errPath formats its error inside a return statement, which is exempt:
// the error exit terminates the hot path.
//
// medcc:allocfree
func errPath(n int) error {
	if n < 0 {
		return fmt.Errorf("bad %d", n)
	}
	return nil
}

// candHeap mirrors the sched candidate heap: pooled entries plus flat
// per-module key columns, mutated in place on the hot path.
type candHeap struct {
	entries []ent
	keys    []float64
}

type ent struct {
	key float64
	mod int32
}

// push is the correct steady-state shape — self-append into the pooled
// backing arrays — so the only finding below is the seeded violation in
// pushFresh.
//
// medcc:allocfree
func (h *candHeap) push(k float64, mod int32) {
	h.entries = append(h.entries, ent{key: k, mod: mod})
	h.keys = append(h.keys, k)
}

// pushFresh seeds the classic heap-maintenance mistake: rebuilding the
// entry slice per push instead of recycling the pooled one.
//
// medcc:allocfree
func (h *candHeap) pushFresh(k float64, mod int32) {
	fresh := append(h.entries[:0:0], ent{key: k, mod: mod}) // want "append result is not reassigned to its operand"
	h.entries = fresh
	h.keys = make([]float64, len(fresh)) // want "make allocates"
}

// servReq mirrors a pooled serving request: the schedule buffer and the
// response fields live for the job's lifetime and are recycled.
type servReq struct {
	sched    []int
	makespan float64
	note     string
}

// serveWarm is the correct request hot path — self-append into the
// pooled schedule, scalar field fills — so the walk reports nothing.
//
// medcc:allocfree
func serveWarm(r *servReq, src []int, med float64) {
	r.sched = append(r.sched[:0], src...)
	r.makespan = med
}

// serveAllocating seeds the request-hot-path violation: building a
// fresh response per request instead of filling the pooled one.
//
// medcc:allocfree
func serveAllocating(src []int, med float64) *servReq {
	out := make([]int, len(src))             // want "make allocates"
	r := &servReq{sched: out, makespan: med} // want "address-taken composite literal escapes to the heap"
	r.note = "served " + r.note              // want "string concatenation allocates"
	return r
}

// stairCache mirrors a frozen budget staircase: SoA columns indexed by
// level, with per-level schedule rows copied into a pooled response on
// a cache hit.
type stairCache struct {
	budgets []float64
	meds    []float64
	rows    [][]int
}

// hitWarm is the correct cache-hit path — manual binary search over the
// budget column plus a self-append row copy into the pooled request —
// so the walk reports nothing.
//
// medcc:allocfree
func hitWarm(c *stairCache, r *servReq, budget float64) bool {
	lo, hi := 0, len(c.budgets)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.budgets[mid] < budget {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(c.budgets) || c.budgets[lo] != budget {
		return false
	}
	r.sched = append(r.sched[:0], c.rows[lo]...)
	r.makespan = c.meds[lo]
	return true
}

// hitAllocating seeds the cache-hit violation: materializing a fresh
// response per hit instead of filling the job's pooled buffers, which
// turns the zero-alloc fast path back into a per-request allocation.
//
// medcc:allocfree
func hitAllocating(c *stairCache, level int) *servReq {
	row := make([]int, len(c.rows[level]))             // want "make allocates"
	r := &servReq{sched: row, makespan: c.meds[level]} // want "address-taken composite literal escapes to the heap"
	copy(r.sched, c.rows[level])
	return r
}
