// Package determinism is the fixture for the determinism analyzer:
// schedule is the marked root, jitter (reachable two edges down) seeds
// all three nondeterminism shapes, seeded shows the sanctioned
// explicitly-seeded generator, and offPath shows that unmarked code may
// read the clock.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// schedule is a differential-tested entry point: its outputs are pinned
// bit-for-bit, so nothing reachable from here may observe ambient
// nondeterminism.
//
// medcc:deterministic
func schedule(weights map[string]float64, seed int64) []string {
	order := rank(weights)
	_ = seeded(seed)
	jitter()
	return order
}

// rank uses the collect-then-sort idiom: order-independent, clean.
func rank(weights map[string]float64) []string {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// jitter is reachable from the root and commits all three sins.
func jitter() {
	_ = time.Now()     // want "time.Now reads the wall clock"
	_ = rand.Float64() // want "draws from the unseeded global source"
	m := map[int]int{1: 1}
	for k := range m { // want "iteration order over map m can reach a deterministic output"
		_ = k
	}
}

// seeded constructs an explicitly seeded generator — the sanctioned way
// for the metaheuristics to stay replayable.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// offPath is not reachable from any deterministic root; the clock is
// fine here.
func offPath() time.Time {
	return time.Now()
}
