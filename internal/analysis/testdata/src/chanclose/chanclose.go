// Package chanclose is the fixture for the chanclose analyzer: queue
// exercises the double-close and receive-side-close findings around a
// correctly owned jobs/acks pair, sink exercises the missing-drain
// finding, and localRoundTrip shows a clean local channel.
package chanclose

type queue struct {
	jobs chan int
	acks chan int
	dead chan int
}

// produce is the sending side of jobs and owns its close.
func (q *queue) produce(n int) {
	for i := 0; i < n; i++ {
		q.jobs <- i
	}
	close(q.jobs)
}

// consume drains jobs and acks each element.
func (q *queue) consume() {
	for j := range q.jobs {
		q.acks <- j
	}
}

// drainAcks is the ack receiver.
func (q *queue) drainAcks() {
	for range q.acks {
	}
}

// stop closes jobs a second time: whichever of produce/stop runs last
// panics.
func (q *queue) stop() {
	close(q.jobs) // want "channel jobs is closed at more than one site"
}

// badConsumer closes the channel it drains; close belongs to the
// sender.
func (q *queue) badConsumer() {
	for range q.dead {
	}
	close(q.dead) // want "channel dead is closed on its receive side"
}

func (q *queue) feedDead(v int) {
	q.dead <- v
}

type sink struct {
	overflow chan int
}

// push sends on a channel no function in the module ever drains.
func (s *sink) push(v int) {
	s.overflow <- v // want "sends on channel overflow have no receive or range drain"
}

// localRoundTrip keeps a local channel's send and receive together:
// clean.
func localRoundTrip() int {
	ch := make(chan int, 1)
	ch <- 1
	return <-ch
}
