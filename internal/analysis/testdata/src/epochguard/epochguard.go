// Package epochguard is the fixture for the epochguard analyzer, run
// against the real guarded types: unguarded and uncompared are the two
// finding shapes, guarded is the sanctioned bind pattern, and plain /
// Config / owner are the three exemptions (no methods, exported field,
// documented owner).
package epochguard

import (
	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// unguarded caches a graph with no version field at all.
type unguarded struct {
	g *dag.Graph // want "unguarded.g caches .+dag.Graph but the struct has no uint64 version/epoch guard field"
}

func (u *unguarded) graph() *dag.Graph { return u.g }

// uncompared carries the guard field but never consults Version().
type uncompared struct {
	g    *dag.Graph // want "uncompared.g caches .+dag.Graph but no method of uncompared compares it via Version"
	gver uint64
}

func (u *uncompared) bind(g *dag.Graph) { u.g, u.gver = g, 0 }

// guarded is the sanctioned shape: an epoch field compared via Epoch()
// on rebind, the way sched.engine.bind does.
type guarded struct {
	m    *workflow.Matrices
	mver uint64
}

func (g *guarded) bind(m *workflow.Matrices) {
	if g.m == m && g.mver == m.Epoch() {
		return
	}
	g.m, g.mver = m, m.Epoch()
}

// plain has no methods: pass-through data, nothing binds through it.
type plain struct {
	g *dag.Graph
}

// Config only exposes an exported field; the caller owns freshness.
type Config struct {
	Workflow *workflow.Workflow
}

func (c *Config) ok() bool { return c.Workflow != nil }

// owner documents its exemption: it is the producer of the workflow it
// points to, not a consumer of someone else's.
type owner struct {
	// medcc:lint-ignore epochguard — fixture: owner rebuilds w in place, never reads stale state.
	w *workflow.Workflow
}

func (o *owner) workflow() *workflow.Workflow { return o.w }
