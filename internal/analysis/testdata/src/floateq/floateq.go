// Package floateq is the fixture for the floateq analyzer: bad and
// alsoBad are the two finding operators, constOK/namedConstOK the
// constant exemption, cutoff the medcc:floateq-exact opt-out, and
// suppressed a lint-ignore.
package floateq

const zero = 0.0

func bad(a, b float64) bool {
	return a == b // want "float == comparison"
}

func alsoBad(a, b float32) bool {
	if a != b { // want "float != comparison"
		return false
	}
	return true
}

func constOK(a float64) bool {
	return a == 0 // comparison against a constant: exact by construction
}

func namedConstOK(a float64) bool {
	return a != zero
}

func intsOK(a, b int) bool {
	return a == b // not a float comparison
}

// cutoff compares bit-exactly by design, like the timing engine's
// change-propagation cutoffs.
//
// medcc:floateq-exact
func cutoff(a, b float64) bool {
	return a == b
}

func suppressed(a, b float64) bool {
	return a == b // medcc:lint-ignore floateq — suppression fixture: no finding expected.
}
