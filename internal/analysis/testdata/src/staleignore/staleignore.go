// Package staleignore is the fixture for the driver's stale
// suppression check: printAll carries a live suppression (it hides a
// real mapiter finding), stale carries one with nothing to suppress,
// and kept shows the staleignore escape hatch.
package staleignore

import "fmt"

// printAll iterates a map into output; the suppression is used.
func printAll(m map[string]int) {
	for k, v := range m { // medcc:lint-ignore mapiter — fixture: output order is irrelevant here.
		fmt.Println(k, v)
	}
}

// stale suppresses an analyzer that has no finding on its line.
func stale() int {
	x := 1 + 2 // medcc:lint-ignore floateq — nothing here compares floats. want "lint-ignore for floateq suppresses no finding"
	return x
}

// kept keeps a currently-unused suppression on purpose, via the escape
// hatch.
func kept() int {
	y := 3 // medcc:lint-ignore epochguard,staleignore — fixture: kept deliberately while the cache design settles.
	return y
}
