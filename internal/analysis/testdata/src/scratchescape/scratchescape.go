// Package scratchescape is the fixture for the scratchescape analyzer:
// leaks exercises all four escape shapes, fanOut is the sanctioned
// index-only fan-out, and suppressed shows a lint-ignore.
package scratchescape

// worker is pooled per-goroutine scratch.
//
// medcc:scratch
type worker struct {
	buf []int
}

func (w *worker) run() {}

func consume(w *worker) { w.run() }

func leaks() {
	var w worker
	go w.run() // want "goroutine launched on scratch type worker"
	go func() {
		w.run() // want "scratch type worker captured by goroutine closure"
	}()
	go consume(&w) // want "scratch type worker passed to a goroutine"
	ch := make(chan *worker)
	ch <- &w // want "scratch type worker sent on a channel"
}

// launch receives a plain func(int): nothing scratch-typed crosses the
// goroutine boundary here.
func launch(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		go fn(i)
	}
}

// fanOut is the sanctioned shape: goroutines receive only their worker
// index and find their own pool element through the closure handed to
// launch (a func value, not a scratch value).
func fanOut() {
	pool := make([]worker, 4)
	launch(len(pool), func(k int) { pool[k].run() })
}

func suppressed() {
	var w worker
	go consume(&w) // medcc:lint-ignore scratchescape — suppression fixture: no finding expected.
}

// candHeap mirrors the sched candidate heap: per-engine pooled state
// whose lazy-deletion entries are only valid against the engine that
// built them, so sharing it across goroutines corrupts the heap order.
//
// medcc:scratch
type candHeap struct {
	keys []float64
}

func (h *candHeap) drain() {}

// shareHeap seeds the violation: handing the pooled heap to a sibling
// goroutine.
func shareHeap() {
	var h candHeap
	go h.drain() // want "goroutine launched on scratch type candHeap"
	ch := make(chan *candHeap)
	ch <- &h // want "scratch type candHeap sent on a channel"
}
