// Package scratchescape is the fixture for the scratchescape analyzer:
// leaks exercises all four escape shapes, fanOut is the sanctioned
// index-only fan-out, and suppressed shows a lint-ignore.
package scratchescape

// worker is pooled per-goroutine scratch.
//
// medcc:scratch
type worker struct {
	buf []int
}

func (w *worker) run() {}

func consume(w *worker) { w.run() }

func leaks() {
	var w worker
	go w.run() // want "goroutine launched on scratch type worker"
	go func() {
		w.run() // want "scratch type worker captured by goroutine closure"
	}()
	go consume(&w) // want "scratch type worker passed to a goroutine"
	ch := make(chan *worker)
	ch <- &w // want "scratch type worker sent on a channel"
}

// launch receives a plain func(int): nothing scratch-typed crosses the
// goroutine boundary here.
func launch(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		go fn(i)
	}
}

// fanOut is the sanctioned shape: goroutines receive only their worker
// index and find their own pool element through the closure handed to
// launch (a func value, not a scratch value).
func fanOut() {
	pool := make([]worker, 4)
	launch(len(pool), func(k int) { pool[k].run() })
}

func suppressed() {
	var w worker
	go consume(&w) // medcc:lint-ignore scratchescape — suppression fixture: no finding expected.
}

// candHeap mirrors the sched candidate heap: per-engine pooled state
// whose lazy-deletion entries are only valid against the engine that
// built them, so sharing it across goroutines corrupts the heap order.
//
// medcc:scratch
type candHeap struct {
	keys []float64
}

func (h *candHeap) drain() {}

// shareHeap seeds the violation: handing the pooled heap to a sibling
// goroutine.
func shareHeap() {
	var h candHeap
	go h.drain() // want "goroutine launched on scratch type candHeap"
	ch := make(chan *candHeap)
	ch <- &h // want "scratch type candHeap sent on a channel"
}

// servWorker mirrors the serving pool's per-goroutine scratch: engines
// and timing state owned by exactly one worker goroutine. Jobs cross
// the queue; workers never do.
//
// medcc:scratch
type servWorker struct {
	times []float64
}

func (w *servWorker) serve() {}

// leakWorker seeds the serving-pool violation: returning a worker's
// scratch through a result channel hands one goroutine's pooled state
// to whichever goroutine receives, racing the owner's next request.
func leakWorker(results chan *servWorker) {
	var w servWorker
	w.serve()
	results <- &w // want "scratch type servWorker sent on a channel"
}

// dispatch is the sanctioned serving shape: the pool is indexed, each
// goroutine dereferences its own element, and only indices cross the
// spawn boundary.
func dispatch() {
	pool := make([]servWorker, 2)
	launch(len(pool), func(k int) { pool[k].serve() })
}
