// Package mapiter is the fixture for the mapiter analyzer: bad and
// sortInClosure are findings, collectThenSort and mapToMap are the two
// sanctioned idioms, and maxValue is a lint-ignore with a rationale.
package mapiter

import "sort"

func bad(m map[string]int) []string {
	var out []string
	for k := range m { // want "iteration order over map m is nondeterministic"
		out = append(out, k+"!")
	}
	return out
}

// collectThenSort is the sanctioned idiom: the body only appends the
// key, and the same scope sorts the slice.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapToMap assigns only into map index expressions: the result is
// keyed, not ordered.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// sortInClosure does NOT sanction the outer loop: closures are their
// own lexical scope, and the sort may never run.
func sortInClosure(m map[string]int) func() {
	var keys []string
	for k := range m { // want "iteration order over map m is nondeterministic"
		keys = append(keys, k)
	}
	return func() { sort.Strings(keys) }
}

func maxValue(m map[string]int) int {
	best := 0
	// medcc:lint-ignore mapiter — max over values is order-independent.
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
