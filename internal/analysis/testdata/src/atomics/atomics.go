// Package atomics is the fixture for the atomics analyzer: counters
// exercises the mixed-access check (an address-passed atomic word read
// plainly), server exercises the onesnapshot pinning check (a second
// atomic.Pointer Load on a marked request path).
package atomics

import "sync/atomic"

// counters uses the legacy address-passing atomic style: hits is an
// atomic word, total is plain.
type counters struct {
	hits  int64
	total int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	c.total = 0
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

// raced mixes a plain access into the atomic word.
func (c *counters) raced() bool {
	c.hits++                // want "hits is managed by sync/atomic operations elsewhere"
	return c.hits > c.total // want "hits is managed by sync/atomic operations elsewhere"
}

type snapshot struct{ version int }

// server mirrors the serving stack: one swappable snapshot pointer and
// a scalar counter.
type server struct {
	snap atomic.Pointer[snapshot]
	reqs atomic.Int64
}

// handle is a request root: the snapshot is pinned by the first Load,
// and everything downstream must use the pin.
//
// medcc:onesnapshot
func (s *server) handle() int {
	s.reqs.Add(1)
	snap := s.snap.Load()
	return s.render(snap) + s.rever()
}

func (s *server) render(sn *snapshot) int {
	_ = s.reqs.Load() // scalar wrapper: loads freely on the marked path
	return sn.version
}

// rever re-Loads the swappable pointer mid-request and can observe a
// concurrent reload.
func (s *server) rever() int {
	return s.snap.Load().version // want "second Load of atomic pointer snap"
}

// reload is off the marked path: it may Load freely.
func (s *server) reload() *snapshot {
	return s.snap.Load()
}

type stairs struct{ budgets []float64 }

// cacheFront mirrors the staircase cache front end: each slot holds an
// installed-staircase pointer swapped by the builder (and cleared by
// eviction), plus scalar hit counters.
type cacheFront struct {
	stair atomic.Pointer[stairs]
	hits  atomic.Int64
}

// dispatch is a request root: the staircase is pinned by the first
// Load, and the whole hit must be answered from that pin.
//
// medcc:onesnapshot
func (c *cacheFront) dispatch() int {
	st := c.stair.Load()
	if st == nil {
		return 0
	}
	c.hits.Add(1)
	return len(st.budgets) + c.width()
}

// width re-Loads the swappable staircase pointer mid-request: a
// concurrent install or eviction between the two Loads hands the
// request rows from one staircase and budgets from another.
func (c *cacheFront) width() int {
	st := c.stair.Load() // want "second Load of atomic pointer stair"
	if st == nil {
		return 0
	}
	return len(st.budgets)
}
