// Package errwrap is the fixture for the errwrap analyzer: wrapOK and
// the errNotFound sentinel are the sanctioned shapes; wrapBad,
// stringified, newFromError, and the dupA/dupB pair seed the three
// finding shapes.
package errwrap

import (
	"errors"
	"fmt"
)

// errNotFound is the house style for a shared identity: one sentinel,
// returned from everywhere the condition arises.
var errNotFound = errors.New("errwrap: not found")

func lookup(ok bool) error {
	if !ok {
		return errNotFound
	}
	return nil
}

// wrapOK preserves the chain for errors.Is/As.
func wrapOK(err error) error {
	return fmt.Errorf("load config: %w", err)
}

// wrapBad stringifies the cause through %v.
func wrapBad(err error) error {
	return fmt.Errorf("load config: %v", err) // want "error formatted with %v loses the chain"
}

// stringified flattens the cause explicitly before formatting.
func stringified(err error) error {
	return fmt.Errorf("load config: %s", err.Error()) // want "err.Error\(\) flattens the cause"
}

// newFromError rebuilds a fresh, unrelated error from the old one's
// text.
func newFromError(err error) error {
	return errors.New(err.Error()) // want "err.Error\(\) flattens the cause"
}

// dupA and dupB mint two distinct identities with the same message;
// callers cannot errors.Is either.
func dupA() error { return errors.New("errwrap: bad input") }

func dupB() error { return errors.New("errwrap: bad input") } // want "duplicates the site"
