package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree enforces the zero-allocation contract of the engine hot
// paths. Functions whose doc comment carries `// medcc:allocfree` — and
// every in-module function statically reachable from them — must not
// contain allocating constructs:
//
//   - make / new and map, slice, or address-taken composite literals
//   - non-self append (self append `x = append(x, ...)` is amortized
//     growth of pooled scratch and allowed)
//   - closures, method values, and go statements
//   - string concatenation and string<->[]byte/[]rune conversions
//   - calls into fmt / errors (exempt inside a return statement: an
//     error return terminates the hot path, so formatting the error
//     there costs nothing in steady state)
//   - arguments boxed into interface parameters
//
// The walk does not descend into callees marked `// medcc:coldpath`:
// those run off the steady-state path by design (bind/rebuild on
// instance change, grow-to-high-water-mark scratch, constructors) and
// the marker documents that exemption in place. Calls through func
// values and interface methods cannot be resolved statically and are
// not walked (the callee is checked wherever it is declared, if it is
// reachable from some annotated root).
type AllocFree struct{}

func (*AllocFree) Name() string { return "allocfree" }
func (*AllocFree) Doc() string {
	return "medcc:allocfree functions and their in-module callees must not allocate"
}

// allocPkgDeny lists packages whose exported functions allocate by
// design; any call into them from an allocfree path is a finding.
var allocPkgDeny = map[string]bool{"fmt": true, "errors": true}

func (a *AllocFree) Run(m *Module, report func(Diagnostic)) {
	g := m.CallGraph()
	g.Walk(g.RootsWithMarker(MarkerAllocFree),
		func(n *FuncNode) bool { return n.HasMarker(MarkerColdPath) },
		func(n, root *FuncNode) { a.checkFunc(m, n, root.Fn.FullName(), report) })
}

// checkFunc reports allocating constructs in the node's body.
func (a *AllocFree) checkFunc(m *Module, n *FuncNode, root string, report func(Diagnostic)) {
	pkg, body := n.Pkg, n.Decl.Body
	info := pkg.Info

	// Prepass: nodes inside return statements (error-exit exemption),
	// self-append calls, and expressions in call position.
	inReturn := map[ast.Node]bool{}
	selfAppend := map[*ast.CallExpr]bool{}
	callFun := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			ast.Inspect(n, func(c ast.Node) bool {
				if c != nil {
					inReturn[c] = true
				}
				return true
			})
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isAppend(info, call) && len(call.Args) > 0 {
					if sameBase(n.Lhs[0], call.Args[0]) {
						selfAppend[call] = true
					}
				}
			}
		case *ast.CallExpr:
			callFun[ast.Unparen(n.Fun)] = true
		}
		return true
	})

	at := func(pos token.Pos, format string, args ...any) {
		report(Diagnostic{Pos: m.Fset.Position(pos), Message: fmt.Sprintf(format, args...) +
			" (in allocfree path from " + root + ")"})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			at(n.Pos(), "go statement spawns a goroutine")
		case *ast.FuncLit:
			at(n.Pos(), "func literal allocates a closure")
			return false // the literal itself is the finding; don't double-report its body
		case *ast.CompositeLit:
			typ := info.TypeOf(n)
			switch typ.Underlying().(type) {
			case *types.Map:
				at(n.Pos(), "map literal allocates")
			case *types.Slice:
				at(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					at(cl.Pos(), "address-taken composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				at(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				at(n.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !callFun[ast.Expr(n)] {
				at(n.Pos(), "method value allocates a bound-method closure")
			}
		case *ast.CallExpr:
			a.checkCall(m, pkg, n, inReturn[n], selfAppend[n], at)
		}
		return true
	})
}

func (a *AllocFree) checkCall(m *Module, pkg *Package, call *ast.CallExpr, inReturn, selfAppend bool,
	at func(token.Pos, string, ...any)) {
	info := pkg.Info

	// Type conversions: only string<->[]byte/[]rune copy.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			dst, src := tv.Type, info.TypeOf(call.Args[0])
			if stringBytesConv(dst, src) {
				at(call.Pos(), "%s conversion copies its operand", types.TypeString(dst, types.RelativeTo(pkg.Types)))
			}
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				at(call.Pos(), "make allocates")
			case "new":
				at(call.Pos(), "new allocates")
			case "append":
				if !selfAppend {
					at(call.Pos(), "append result is not reassigned to its operand; growth escapes the pooled buffer")
				}
			}
			return
		}
	}

	callee := Callee(pkg, call)
	if callee != nil {
		if cp := callee.Pkg(); cp != nil && allocPkgDeny[cp.Path()] && !inReturn {
			at(call.Pos(), "call to %s allocates", callee.FullName())
		}
	}

	// Interface boxing: a concrete-typed argument passed to an
	// interface parameter is heap-boxed at the call site.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil || inReturn {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.IsNil() || tv.Value != nil || types.IsInterface(tv.Type) {
			continue // constants box to static data, not the heap
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
			continue
		}
		at(arg.Pos(), "argument boxes %s into interface %s", tv.Type.String(), pt.String())
	}
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sameBase reports whether dst and src name the same variable-ish
// expression, treating a reslice of dst (`dst[:0]`, `dst[a:b]`) as dst:
// `x = append(x, ...)` and `x = append(x[:0], ...)` both recycle x's
// backing array.
func sameBase(dst, src ast.Expr) bool {
	src = ast.Unparen(src)
	if sl, ok := src.(*ast.SliceExpr); ok {
		src = sl.X
	}
	return types.ExprString(ast.Unparen(dst)) == types.ExprString(ast.Unparen(src))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func stringBytesConv(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
