package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ErrWrap keeps the module's error chains inspectable. The CLIs and the
// serving stack branch on error identity (ErrBusy → 429, bind errors →
// exit codes), which only works while wrapping preserves the chain for
// errors.Is / errors.As. Inline `errors.New("pkg: message")` for a
// fresh condition is the house style and stays legal; three shapes
// break the chain or duplicate identity and are findings:
//
//  1. fmt.Errorf with an error-typed argument formatted by a verb other
//     than %w (`fmt.Errorf("...: %v", err)`): the cause is stringified
//     and errors.Is can no longer see it. Verbs are matched to
//     arguments positionally from the constant format string.
//
//  2. err.Error() passed into fmt.Errorf or errors.New: same loss, one
//     step more explicit.
//
//  3. The same constant message constructed at two or more errors.New
//     sites: callers cannot errors.Is either one, and the duplicates
//     drift apart under edits. Hoist a shared sentinel
//     (`var ErrX = errors.New(...)`) and return it from both.
type ErrWrap struct{}

func (*ErrWrap) Name() string { return "errwrap" }
func (*ErrWrap) Doc() string {
	return "error causes wrap with %w or use shared sentinels; no err.Error() re-stringifying, no duplicate errors.New messages"
}

func (ew *ErrWrap) Run(m *Module, report func(Diagnostic)) {
	g := m.CallGraph()
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	type newSite struct {
		pos token.Pos
		msg string
	}
	var newSites []newSite

	for _, fn := range g.Funcs() {
		for _, cs := range fn.Calls {
			if cs.Callee == nil || cs.Callee.Pkg() == nil {
				continue
			}
			path, name := cs.Callee.Pkg().Path(), cs.Callee.Name()
			isErrorf := path == "fmt" && name == "Errorf"
			isNew := path == "errors" && name == "New"
			if !isErrorf && !isNew {
				continue
			}

			// Check 2: err.Error() as an argument to either constructor.
			for _, arg := range cs.Expr.Args {
				inner, ok := ast.Unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				callee := Callee(fn.Pkg, inner)
				if callee == nil || callee.Name() != "Error" {
					continue
				}
				sig := callee.Type().(*types.Signature)
				if sig.Recv() == nil || !types.Implements(sig.Recv().Type(), errType) {
					continue
				}
				report(Diagnostic{
					Pos: m.Fset.Position(inner.Pos()),
					Message: fmt.Sprintf("err.Error() flattens the cause into a string before %s.%s; pass the error itself (wrap with %%w)",
						path, name),
				})
			}

			if isNew {
				if len(cs.Expr.Args) == 1 {
					if msg, ok := constString(fn.Pkg, cs.Expr.Args[0]); ok {
						newSites = append(newSites, newSite{cs.Expr.Pos(), msg})
					}
				}
				continue
			}

			// Check 1: error-typed args of fmt.Errorf must take %w.
			if len(cs.Expr.Args) < 2 {
				continue
			}
			format, ok := constString(fn.Pkg, cs.Expr.Args[0])
			if !ok {
				continue
			}
			verbs, indexed := formatVerbs(format)
			if indexed {
				continue // explicit %[n] indexes: positional matching is off
			}
			for i, arg := range cs.Expr.Args[1:] {
				t := fn.Pkg.Info.TypeOf(arg)
				if t == nil || !types.Implements(t, errType) {
					continue
				}
				if i < len(verbs) && verbs[i] != 'w' {
					report(Diagnostic{
						Pos: m.Fset.Position(arg.Pos()),
						Message: fmt.Sprintf("error formatted with %%%c loses the chain for errors.Is/As; use %%w to wrap the cause",
							verbs[i]),
					})
				}
			}
		}
	}

	// Check 3: duplicate constant messages across errors.New sites.
	first := map[string]newSite{}
	for _, s := range newSites {
		prev, seen := first[s.msg]
		if !seen {
			first[s.msg] = s
			continue
		}
		p := m.Fset.Position(prev.pos)
		report(Diagnostic{
			Pos: m.Fset.Position(s.pos),
			Message: fmt.Sprintf("errors.New(%q) duplicates the site at %s:%d; hoist a shared sentinel var so callers can errors.Is it",
				s.msg, p.Filename, p.Line),
		})
	}
}

// constString returns the constant string value of e, if it has one.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs extracts the verb runes of a fmt format string in
// argument order ('d', 'v', 'w', ...). indexed reports that the string
// uses explicit argument indexes (%[1]s), which defeats positional
// matching.
func formatVerbs(format string) (verbs []rune, indexed bool) {
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		// flags, width, precision
		for i < len(rs) {
			switch rs[i] {
			case '+', '-', '#', ' ', '0', '.', '*',
				'1', '2', '3', '4', '5', '6', '7', '8', '9':
				i++
				continue
			case '[':
				indexed = true
				i++
				continue
			case ']':
				i++
				continue
			}
			break
		}
		if i >= len(rs) || rs[i] == '%' {
			continue
		}
		verbs = append(verbs, rs[i])
	}
	return verbs, indexed
}
