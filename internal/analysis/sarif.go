package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Minimal SARIF 2.1.0 (Static Analysis Results Interchange Format)
// writer, enough for CI annotation upload: one run, one rule per
// analyzer (plus the driver's staleignore check), one result per
// diagnostic with a physical location whose URI is relative to the
// module root.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF encodes diags as a SARIF 2.1.0 log. root anchors the
// relative artifact URIs; analyzers provides the rule metadata (the
// staleignore pseudo-rule is always included).
func WriteSARIF(w io.Writer, root string, analyzers []Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name(), ShortDescription: sarifText{Text: a.Doc()}})
	}
	rules = append(rules, sarifRule{
		ID:               StaleIgnoreName,
		ShortDescription: sarifText{Text: "medcc:lint-ignore comments must suppress at least one finding"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil {
			uri = filepath.ToSlash(rel)
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "medcc-lint", Rules: rules}},
			Results: results,
		}},
	})
}
