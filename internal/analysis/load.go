package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrNoGoFiles reports a package directory with no non-test Go files.
var ErrNoGoFiles = errors.New("no Go files in package directory")

// errImportCycle reports a dependency cycle among module packages.
var errImportCycle = errors.New("import cycle")

// LoadError is the typed failure of loading one package: Path is the
// import path, Stage is "parse" or "typecheck". LoadAll joins one per
// failed package (errors.Join), in deterministic path order, so callers
// can errors.As for the first and still print them all.
type LoadError struct {
	Path  string
	Stage string // "parse" | "typecheck"
	Err   error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("analysis: %s %s: %v", e.Stage, e.Path, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// Loader type-checks module packages with nothing but the standard
// library: each package's non-test files are parsed with go/parser and
// checked with go/types; imports inside the module are served from the
// loader's own results, everything else (the standard library) is
// delegated to go/importer's default toolchain importer. LoadAll
// parallelizes both stages — all packages parse concurrently (the
// FileSet is synchronized), then type-checking proceeds in dependency
// waves with every package of a wave checked concurrently. Diagnostic
// order stays deterministic: packages are discovered in lexical walk
// order, results are sorted by import path, and positions compare by
// filename/line/column, which do not depend on FileSet insertion order.
type Loader struct {
	Root    string // module root (directory containing go.mod)
	ModPath string // module path from the go.mod module directive

	fset       *token.FileSet
	pkgs       map[string]*Package // by import path; written only between waves
	loading    map[string]bool     // import cycle guard (sequential path)
	fallback   types.Importer
	fallbackMu sync.Mutex // the toolchain importer is not documented concurrency-safe
	sizes      types.Sizes
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Root:     abs,
		ModPath:  modPath,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*Package{},
		loading:  map[string]bool{},
		fallback: importer.Default(),
		sizes:    types.SizesFor("gc", "amd64"),
	}, nil
}

// FindRoot walks upward from dir to the nearest directory containing a
// go.mod file.
func FindRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// loadTask is one package moving through LoadAll's pipeline.
type loadTask struct {
	dir, path string
	files     []*ast.File
	deps      []string // module-internal import paths
	pkg       *Package
	err       error
}

// LoadAll loads every package of the module (skipping testdata
// directories) and returns a Module with all of them as targets. Parse
// and type-check both run in parallel; see the Loader doc for how
// determinism is preserved.
func (l *Loader) LoadAll() (*Module, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	tasks := make([]*loadTask, len(dirs))
	for i, dir := range dirs {
		tasks[i] = &loadTask{dir: dir, path: l.pathForDir(dir)}
	}

	// Stage 1: parse every package concurrently. Each worker parses its
	// own directory's files (per-worker scratch: the parser state is
	// internal to ParseFile); the shared FileSet synchronizes itself.
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		go func(t *loadTask) {
			defer wg.Done()
			t.files, t.err = l.parseDir(t.dir)
		}(t)
	}
	wg.Wait()
	var errs []error
	for _, t := range tasks { // walk order: lexical, deterministic
		if t.err != nil {
			errs = append(errs, &LoadError{Path: t.path, Stage: "parse", Err: t.err})
		}
	}
	if errs != nil {
		return nil, errors.Join(errs...)
	}

	// Module-internal dependency edges, from the parsed import specs.
	inModule := map[string]bool{}
	for _, t := range tasks {
		inModule[t.path] = true
	}
	for _, t := range tasks {
		seen := map[string]bool{}
		for _, f := range t.files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !inModule[p] || seen[p] {
					continue
				}
				seen[p] = true
				t.deps = append(t.deps, p)
			}
		}
	}

	// Stage 2: type-check in dependency waves. A package joins a wave
	// once all its module-internal deps are in l.pkgs; the whole wave
	// checks concurrently against the read-only l.pkgs map, and results
	// are committed only after the wave barrier.
	remaining := 0
	for _, t := range tasks {
		if pkg := l.pkgs[t.path]; pkg != nil {
			t.pkg = pkg // memoized by an earlier load
		} else {
			remaining++
		}
	}
	for remaining > 0 {
		var wave []*loadTask
		for _, t := range tasks {
			if t.pkg != nil {
				continue
			}
			ready := true
			for _, d := range t.deps {
				if l.pkgs[d] == nil {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, t)
			}
		}
		if len(wave) == 0 {
			var stuck []string
			for _, t := range tasks {
				if t.pkg == nil {
					stuck = append(stuck, t.path)
				}
			}
			return nil, &LoadError{Path: strings.Join(stuck, ", "), Stage: "typecheck", Err: errImportCycle}
		}
		for _, t := range wave {
			wg.Add(1)
			go func(t *loadTask) {
				defer wg.Done()
				t.pkg, t.err = l.checkFiles(t.path, t.dir, t.files)
			}(t)
		}
		wg.Wait()
		for _, t := range wave {
			if t.err != nil {
				errs = append(errs, &LoadError{Path: t.path, Stage: "typecheck", Err: t.err})
				continue
			}
			l.pkgs[t.path] = t.pkg
			remaining--
		}
		if errs != nil {
			return nil, errors.Join(errs...)
		}
	}

	pkgs := make([]*Package, len(tasks))
	for i, t := range tasks {
		pkgs[i] = t.pkg
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return &Module{Fset: l.fset, Packages: pkgs, Targets: pkgs}, nil
}

// LoadFixture loads the single package in dir under a synthetic import
// path, together with any module packages it (transitively) imports,
// and returns a Module targeting only the fixture. Analyzer tests use
// this to run one analyzer over one testdata package.
func (l *Loader) LoadFixture(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := l.loadDir(abs, "fixture/"+filepath.Base(abs))
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	// medcc:lint-ignore mapiter — the slice is sorted by Path two lines down; the collect-then-sort idiom checker does not see past the append body.
	for _, p := range l.pkgs {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return &Module{Fset: l.fset, Packages: pkgs, Targets: []*Package{pkg}}, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

func (l *Loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) dirForPath(path string) (string, bool) {
	if path == l.ModPath {
		return l.Root, true
	}
	if rel, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rel)), true
	}
	return "", false
}

// Import implements types.Importer for the sequential path
// (LoadFixture and its transitive module imports): module-internal
// paths load (and memoize) through the loader, all others go to the
// toolchain importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.dirForPath(path); ok {
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.importFallback(path)
}

// importFallback serializes access to the toolchain importer, which is
// shared by every type-checking worker in a wave.
func (l *Loader) importFallback(path string) (*types.Package, error) {
	l.fallbackMu.Lock()
	defer l.fallbackMu.Unlock()
	return l.fallback.Import(path)
}

// waveImporter is the importer handed to concurrent wave workers: it
// reads the committed package map (no writes happen during a wave) and
// serializes stdlib fallback imports.
type waveImporter struct{ l *Loader }

func (w waveImporter) Import(path string) (*types.Package, error) {
	if _, ok := w.l.dirForPath(path); ok {
		if pkg := w.l.pkgs[path]; pkg != nil {
			return pkg.Types, nil
		}
		return nil, &LoadError{Path: path, Stage: "typecheck", Err: errors.New("dependency not loaded before its importer (wave ordering bug)")}
	}
	return w.l.importFallback(path)
}

// parseDir parses the non-test Go files of dir into the shared FileSet.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, ErrNoGoFiles
	}
	return files, nil
}

// checkFiles type-checks one parsed package against the committed
// results of earlier waves.
func (l *Loader) checkFiles(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: waveImporter{l}, Sizes: l.sizes}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// loadDir parses and type-checks the package in dir, memoized by import
// path — the sequential recursion used by LoadFixture and Import. Test
// files are excluded: the analyzers enforce engine invariants on
// shipped code, and external-test packages would need a second checker
// pass for no finding we care about.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, &LoadError{Path: path, Stage: "typecheck", Err: errImportCycle}
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, &LoadError{Path: path, Stage: "parse", Err: err}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l, Sizes: l.sizes}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, &LoadError{Path: path, Stage: "typecheck", Err: err}
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
