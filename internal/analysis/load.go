package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loader type-checks module packages on demand with nothing but the
// standard library: each package's non-test files are parsed with
// go/parser and checked with go/types; imports inside the module are
// served recursively from the loader's own results, everything else
// (the standard library) is delegated to go/importer's default
// toolchain importer.
type Loader struct {
	Root    string // module root (directory containing go.mod)
	ModPath string // module path from the go.mod module directive

	fset     *token.FileSet
	pkgs     map[string]*Package // by import path
	loading  map[string]bool     // import cycle guard
	fallback types.Importer
	sizes    types.Sizes
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Root:     abs,
		ModPath:  modPath,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*Package{},
		loading:  map[string]bool{},
		fallback: importer.Default(),
		sizes:    types.SizesFor("gc", "amd64"),
	}, nil
}

// FindRoot walks upward from dir to the nearest directory containing a
// go.mod file.
func FindRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadAll loads every package of the module (skipping testdata
// directories) and returns a Module with all of them as targets.
func (l *Loader) LoadAll() (*Module, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir, l.pathForDir(dir))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return &Module{Fset: l.fset, Packages: pkgs, Targets: pkgs}, nil
}

// LoadFixture loads the single package in dir under a synthetic import
// path, together with any module packages it (transitively) imports,
// and returns a Module targeting only the fixture. Analyzer tests use
// this to run one analyzer over one testdata package.
func (l *Loader) LoadFixture(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := l.loadDir(abs, "fixture/"+filepath.Base(abs))
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	// medcc:lint-ignore mapiter — the slice is sorted by Path two lines down; the collect-then-sort idiom checker does not see past the append body.
	for _, p := range l.pkgs {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return &Module{Fset: l.fset, Packages: pkgs, Targets: []*Package{pkg}}, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

func (l *Loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) dirForPath(path string) (string, bool) {
	if path == l.ModPath {
		return l.Root, true
	}
	if rel, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rel)), true
	}
	return "", false
}

// Import implements types.Importer: module-internal paths load (and
// memoize) through the loader, all others go to the toolchain importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.dirForPath(path); ok {
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// loadDir parses and type-checks the package in dir, memoized by import
// path. Test files are excluded: the analyzers enforce engine
// invariants on shipped code, and external-test packages would need a
// second checker pass for no finding we care about.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l, Sizes: l.sizes}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
