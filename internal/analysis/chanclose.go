package analysis

import (
	"fmt"
	"go/token"
	"go/types"
)

// ChanClose enforces the channel ownership discipline the serving
// stack's bounded admission queue depends on. Channel state is tracked
// per named channel — a struct field (s.queue), a package-level var, or
// a local — by resolving each send / close / receive / range site to
// its types.Object through the shared call graph's facts. Three
// invariants:
//
//  1. Single close: a channel with more than one static close site will
//     panic on whichever close runs second. Conditional shutdown must
//     funnel through one close (sync.Once or a single owner).
//
//  2. Sender closes: `close` belongs to the sending side — the side
//     that knows no more values are coming. A close inside a function
//     that receives from the channel but never sends on it inverts the
//     ownership and races every in-flight send with a panic.
//
//  3. Drain path: a channel somebody sends on must have a receive or
//     `range` drain somewhere in the module, or every send past the
//     buffer blocks forever. Checked only for struct fields and
//     package-level channels — a local channel handed to another
//     function resolves to a different object there, so locals are
//     matched within their defining function only when they have
//     module-visible identity.
type ChanClose struct{}

func (*ChanClose) Name() string { return "chanclose" }
func (*ChanClose) Doc() string {
	return "channels close once, on the sending side, and every sent-on channel has a drain path"
}

// chanSites aggregates every site touching one channel object.
type chanSites struct {
	obj    types.Object
	sends  []token.Pos
	closes []token.Pos
	recvs  []token.Pos // receive exprs and range-over-channel drains
	// per-function roles, for the sender-closes check
	sendsIn map[*FuncNode]bool
	recvsIn map[*FuncNode]bool
}

func (cc *ChanClose) Run(m *Module, report func(Diagnostic)) {
	g := m.CallGraph()
	byObj := map[types.Object]*chanSites{}
	var order []*chanSites
	site := func(obj types.Object) *chanSites {
		s := byObj[obj]
		if s == nil {
			s = &chanSites{obj: obj, sendsIn: map[*FuncNode]bool{}, recvsIn: map[*FuncNode]bool{}}
			byObj[obj] = s
			order = append(order, s)
		}
		return s
	}

	for _, fn := range g.Funcs() {
		for _, ss := range fn.Sends {
			if obj := referencedObj(fn.Pkg, ss.Chan); obj != nil {
				s := site(obj)
				s.sends = append(s.sends, ss.Pos())
				s.sendsIn[fn] = true
			}
		}
		for _, ce := range fn.Closes {
			if len(ce.Args) != 1 {
				continue
			}
			if obj := referencedObj(fn.Pkg, ce.Args[0]); obj != nil {
				s := site(obj)
				s.closes = append(s.closes, ce.Pos())
			}
		}
		for _, ue := range fn.Recvs {
			if obj := referencedObj(fn.Pkg, ue.X); obj != nil {
				s := site(obj)
				s.recvs = append(s.recvs, ue.Pos())
				s.recvsIn[fn] = true
			}
		}
		for _, rs := range fn.ChanRanges {
			if obj := referencedObj(fn.Pkg, rs.X); obj != nil {
				s := site(obj)
				s.recvs = append(s.recvs, rs.Pos())
				s.recvsIn[fn] = true
			}
		}
	}

	// Re-walk closes with full role maps for the sender-closes check.
	closeOwner := map[token.Pos]*FuncNode{}
	for _, fn := range g.Funcs() {
		for _, ce := range fn.Closes {
			closeOwner[ce.Pos()] = fn
		}
	}

	for _, s := range order {
		name := s.obj.Name()
		if len(s.closes) > 1 {
			first := m.Fset.Position(s.closes[0])
			for _, pos := range s.closes[1:] {
				report(Diagnostic{
					Pos: m.Fset.Position(pos),
					Message: fmt.Sprintf("channel %s is closed at more than one site (first close at %s:%d); a second close panics — funnel shutdown through one owner",
						name, first.Filename, first.Line),
				})
			}
		}
		for _, pos := range s.closes {
			fn := closeOwner[pos]
			if fn != nil && s.recvsIn[fn] && !s.sendsIn[fn] {
				report(Diagnostic{
					Pos: m.Fset.Position(pos),
					Message: fmt.Sprintf("channel %s is closed on its receive side; only the sending side knows when values stop — move close to the sender",
						name),
				})
			}
		}
		if len(s.sends) > 0 && len(s.recvs) == 0 && moduleVisibleChan(s.obj) {
			report(Diagnostic{
				Pos: m.Fset.Position(s.sends[0]),
				Message: fmt.Sprintf("sends on channel %s have no receive or range drain anywhere in the module; a full buffer blocks forever",
					name),
			})
		}
	}
}

// moduleVisibleChan reports whether obj is a channel whose identity is
// stable across the module: a struct field or a package-level variable.
// Locals lose identity when passed as arguments, so the drain check
// skips them.
func moduleVisibleChan(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if _, ok := v.Type().Underlying().(*types.Chan); !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	// Package-level: parent scope is the package scope.
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
