package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ScratchEscape keeps pooled scratch worker-private. Types whose doc
// comment carries `// medcc:scratch` (sched.engine, sim.Replayer,
// gen.Builder, exper.campaignScratch) hold per-worker mutable state
// with no internal locking; the parallel campaign and batch loops rely
// on exactly one goroutine touching each instance. The analyzer
// reports the two ways an instance leaks across that line:
//
//   - a `go` statement whose closure captures, or whose call receives,
//     a value involving a scratch type
//   - a channel send of a value involving a scratch type
//
// "Involving" unwraps pointers, slices, arrays, maps, and channels, so
// sending a []Replayer or capturing a *campaignScratch both count. The
// sanctioned fan-out shape — a worker indexes its own element of a
// scratch pool inside a function that receives only the worker index —
// stays clean because the goroutine itself never receives or captures
// scratch.
type ScratchEscape struct{}

func (*ScratchEscape) Name() string { return "scratchescape" }
func (*ScratchEscape) Doc() string {
	return "medcc:scratch pooled types must not be captured by go statements or sent on channels"
}

func (s *ScratchEscape) Run(m *Module, report func(Diagnostic)) {
	scratch := map[*types.TypeName]bool{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if HasMarker(ts.Doc, MarkerScratch) || (len(gd.Specs) == 1 && HasMarker(gd.Doc, MarkerScratch)) {
						if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							scratch[tn] = true
						}
					}
				}
			}
		}
	}
	if len(scratch) == 0 {
		return
	}

	involves := func(t types.Type) *types.TypeName {
		return involvesScratch(t, scratch, map[types.Type]bool{})
	}

	// go statements and channel sends only occur inside function bodies,
	// so the call graph's per-function facts cover every site.
	for _, fn := range m.CallGraph().Funcs() {
		for _, g := range fn.GoStmts {
			s.checkGo(m, fn.Pkg, g, involves, report)
		}
		for _, snd := range fn.Sends {
			if tn := involves(fn.Pkg.Info.TypeOf(snd.Value)); tn != nil {
				report(Diagnostic{
					Pos:     m.Fset.Position(snd.Value.Pos()),
					Message: fmt.Sprintf("scratch type %s sent on a channel; pooled scratch is worker-private", tn.Name()),
				})
			}
		}
	}
}

func (s *ScratchEscape) checkGo(m *Module, pkg *Package, g *ast.GoStmt, involves func(types.Type) *types.TypeName, report func(Diagnostic)) {
	// Arguments handed to the goroutine.
	for _, arg := range g.Call.Args {
		if tn := involves(pkg.Info.TypeOf(arg)); tn != nil {
			report(Diagnostic{
				Pos:     m.Fset.Position(arg.Pos()),
				Message: fmt.Sprintf("scratch type %s passed to a goroutine; pooled scratch is worker-private", tn.Name()),
			})
		}
	}
	// A goroutine launched as a method call on scratch.
	if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		if tn := involves(pkg.Info.TypeOf(sel.X)); tn != nil {
			report(Diagnostic{
				Pos:     m.Fset.Position(sel.Pos()),
				Message: fmt.Sprintf("goroutine launched on scratch type %s; pooled scratch is worker-private", tn.Name()),
			})
		}
	}
	// Free variables captured by a closure body.
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure (or a parameter of it)
		}
		if tn := involves(obj.Type()); tn != nil {
			report(Diagnostic{
				Pos:     m.Fset.Position(id.Pos()),
				Message: fmt.Sprintf("scratch type %s captured by goroutine closure; pooled scratch is worker-private", tn.Name()),
			})
		}
		return true
	})
}

// involvesScratch walks t looking for a marked named type, unwrapping
// pointers and container element types.
func involvesScratch(t types.Type, scratch map[*types.TypeName]bool, seen map[types.Type]bool) *types.TypeName {
	if t == nil || seen[t] {
		return nil
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if scratch[named.Obj()] {
			return named.Obj()
		}
		return involvesScratch(named.Underlying(), scratch, seen)
	}
	switch u := t.(type) {
	case *types.Pointer:
		return involvesScratch(u.Elem(), scratch, seen)
	case *types.Slice:
		return involvesScratch(u.Elem(), scratch, seen)
	case *types.Array:
		return involvesScratch(u.Elem(), scratch, seen)
	case *types.Chan:
		return involvesScratch(u.Elem(), scratch, seen)
	case *types.Map:
		if tn := involvesScratch(u.Key(), scratch, seen); tn != nil {
			return tn
		}
		return involvesScratch(u.Elem(), scratch, seen)
	}
	return nil
}
