package analysis

import (
	"go/ast"
	"go/types"
)

// GoroLeak enforces goroutine lifecycle discipline: every `go`
// statement must be tied to a shutdown path its spawner (or the
// process) can wait on. A goroutine nothing joins outlives graceful
// drain, keeps pinned snapshots and pooled scratch alive, and turns
// Close into a race. The analyzer accepts a spawn when:
//
//   - the spawned body — the closure literal, or the statically
//     resolved callee's body (go s.runWorker(k)) — calls
//     (*sync.WaitGroup).Done, usually deferred: the spawner joins via
//     Wait;
//   - or the spawned body sends on / closes a channel: completion is
//     signalled to a drainer (the worker-pool and fan-out shapes —
//     errc <- run(), free <- buf);
//   - or the spawn is annotated `// medcc:daemon` — a comment on the
//     `go` statement's line or the line above, or the marker in the
//     spawning function's doc — declaring a deliberate
//     process-lifetime goroutine (accept loops, signal watchers).
//
// Anything else is a leak finding. The check is per spawned body, via
// the shared call graph's facts; it does not chase Done/sends further
// down the callee chain — a goroutine whose joining happens two calls
// deep should annotate or restructure, because nobody else can see its
// lifecycle either.
type GoroLeak struct{}

func (*GoroLeak) Name() string { return "goroleak" }
func (*GoroLeak) Doc() string {
	return "every go statement joins a WaitGroup, signals a drain channel, or is a medcc:daemon"
}

func (gl *GoroLeak) Run(m *Module, report func(Diagnostic)) {
	g := m.CallGraph()
	daemonLines := markerLines(m, MarkerDaemon)
	for _, fn := range g.Funcs() {
		if len(fn.GoStmts) == 0 {
			continue
		}
		fnDaemon := fn.HasMarker(MarkerDaemon)
		for _, gs := range fn.GoStmts {
			if fnDaemon {
				continue
			}
			pos := m.Fset.Position(gs.Pos())
			if lines := daemonLines[pos.Filename]; lines[pos.Line] || lines[pos.Line-1] {
				continue
			}
			if spawnJoins(g, fn.Pkg, gs) {
				continue
			}
			report(Diagnostic{
				Pos:     pos,
				Message: "goroutine has no lifecycle: join it via sync.WaitGroup, signal a drain channel, or annotate the spawn medcc:daemon",
			})
		}
	}
}

// spawnJoins reports whether the spawned body satisfies the lifecycle
// contract: it calls (*sync.WaitGroup).Done or touches a channel
// (send/close) that a drainer can observe.
func spawnJoins(g *CallGraph, pkg *Package, gs *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return bodyJoins(pkg, lit.Body)
	}
	callee := Callee(pkg, gs.Call)
	if callee == nil {
		return false // dynamic spawn target: nothing provable, annotate it
	}
	n := g.Node(callee)
	if n == nil {
		return false // body outside the module
	}
	if len(n.Sends) > 0 || len(n.Closes) > 0 {
		return true
	}
	return bodyJoins(n.Pkg, n.Decl.Body)
}

// bodyJoins scans one body for a WaitGroup.Done call, a channel send,
// or a close.
func bodyJoins(pkg *Package, body *ast.BlockStmt) bool {
	joins := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joins {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			joins = true
		case *ast.CallExpr:
			if isWaitGroupDone(pkg, n) || isCloseCall(pkg, n) {
				joins = true
			}
		}
		return !joins
	})
	return joins
}

// isWaitGroupDone reports whether call is (*sync.WaitGroup).Done.
func isWaitGroupDone(pkg *Package, call *ast.CallExpr) bool {
	callee := Callee(pkg, call)
	if callee == nil || callee.Name() != "Done" || callee.Pkg() == nil {
		return false
	}
	return callee.Pkg().Path() == "sync"
}

// isCloseCall reports whether call is the close builtin.
func isCloseCall(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// markerLines maps filename -> line set of comments carrying marker
// (for statement-level annotations like medcc:daemon on a go line).
func markerLines(m *Module, marker string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !commentHasMarker(c.Text, marker) {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					if out[pos.Filename] == nil {
						out[pos.Filename] = map[int]bool{}
					}
					out[pos.Filename][pos.Line] = true
				}
			}
		}
	}
	return out
}
