package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Atomics enforces the two atomic-state conventions the serving stack's
// snapshot machinery relies on:
//
//  1. No mixed access: a variable or field whose address is ever passed
//     to a sync/atomic operation (atomic.AddInt64(&s.n, 1),
//     atomic.LoadUint64(&s.ver), ...) is an atomic word; every other
//     read or write of it must also go through sync/atomic. A plain
//     `s.n++` next to an atomic.AddInt64 is a data race the race
//     detector only catches on the interleavings tests happen to hit.
//     (Fields of the atomic.Int64/atomic.Pointer[T] wrapper types are
//     immune by construction — their state is unexported — so this
//     check concerns the legacy address-passing style.)
//
//  2. Snapshot pinning: on a request path rooted at a function marked
//     `// medcc:onesnapshot`, each atomic.Pointer field must be
//     `Load`ed at most once across the whole statically reachable
//     path. A second Load mid-request can observe a concurrent reload
//     and mix two snapshot versions in one response — the serving
//     contract is "pin at admission, read the pin thereafter". The
//     walk uses the shared call graph; Loads of distinct pointers are
//     independent, and unmarked paths (reload handlers, tests) may
//     Load freely.
type Atomics struct{}

func (*Atomics) Name() string { return "atomics" }
func (*Atomics) Doc() string {
	return "no non-atomic access to sync/atomic-managed words; one atomic.Pointer Load per medcc:onesnapshot path"
}

func (a *Atomics) Run(m *Module, report func(Diagnostic)) {
	a.checkMixedAccess(m, report)
	a.checkSnapshotLoads(m, report)
}

// atomicCallArg returns the object whose address is passed as the
// word-pointer argument of a sync/atomic call, or nil. Every sync/atomic
// package function takes the word pointer first (addr *T).
func atomicCallArg(pkg *Package, cs CallSite) types.Object {
	if cs.Callee == nil || cs.Callee.Pkg() == nil || cs.Callee.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if cs.Callee.Type().(*types.Signature).Recv() != nil || len(cs.Expr.Args) == 0 {
		return nil
	}
	ue, ok := ast.Unparen(cs.Expr.Args[0]).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	return referencedObj(pkg, ue.X)
}

// referencedObj resolves the variable or field object an lvalue
// expression names (x, s.f, (&s).f), or nil.
func referencedObj(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := pkg.Info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// checkMixedAccess finds every word managed through sync/atomic calls,
// then reports plain uses of those words anywhere in the module.
func (a *Atomics) checkMixedAccess(m *Module, report func(Diagnostic)) {
	g := m.CallGraph()

	// Pass 1: which objects are atomic words, and which identifier uses
	// are sanctioned (they appear inside the &word argument of an
	// atomic call).
	atomicWords := map[types.Object]bool{}
	sanctioned := map[*ast.Ident]bool{}
	for _, fn := range g.Funcs() {
		for _, cs := range fn.Calls {
			obj := atomicCallArg(fn.Pkg, cs)
			if obj == nil {
				continue
			}
			atomicWords[obj] = true
			ast.Inspect(cs.Expr.Args[0], func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					sanctioned[id] = true
				}
				return true
			})
		}
	}
	if len(atomicWords) == 0 {
		return
	}

	// Pass 2: any other use of an atomic word is a mixed access.
	for _, fn := range g.Funcs() {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			obj, ok := fn.Pkg.Info.Uses[id].(*types.Var)
			if !ok || !atomicWords[types.Object(obj)] {
				return true
			}
			report(Diagnostic{
				Pos: m.Fset.Position(id.Pos()),
				Message: fmt.Sprintf("%s is managed by sync/atomic operations elsewhere; this plain access races with them (use sync/atomic or an atomic.* wrapper type)",
					obj.Name()),
			})
			return true
		})
	}
}

// atomicPointerLoad returns the atomic.Pointer (or atomic.Value) field
// object a call site Loads, or nil. Scalar wrappers (atomic.Int64
// counters and friends) are not snapshots and load freely.
func atomicPointerLoad(pkg *Package, cs CallSite) types.Object {
	if cs.Callee == nil || cs.Callee.Name() != "Load" || cs.Callee.Pkg() == nil || cs.Callee.Pkg().Path() != "sync/atomic" {
		return nil
	}
	recv := cs.Callee.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || (named.Obj().Name() != "Pointer" && named.Obj().Name() != "Value") {
		return nil
	}
	sel, ok := ast.Unparen(cs.Expr.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return referencedObj(pkg, sel.X)
}

// checkSnapshotLoads walks each medcc:onesnapshot root and reports any
// atomic pointer whose Load sites reachable from that root exceed one.
func (a *Atomics) checkSnapshotLoads(m *Module, report func(Diagnostic)) {
	g := m.CallGraph()
	for _, root := range g.RootsWithMarker(MarkerOneSnapshot) {
		type loadSite struct {
			pos token.Pos
			fn  *FuncNode
		}
		first := map[types.Object]loadSite{}
		g.Walk([]*FuncNode{root}, nil, func(n, _ *FuncNode) {
			for _, cs := range n.Calls {
				obj := atomicPointerLoad(n.Pkg, cs)
				if obj == nil {
					continue
				}
				prev, seen := first[obj]
				if !seen {
					first[obj] = loadSite{cs.Expr.Pos(), n}
					continue
				}
				report(Diagnostic{
					Pos: m.Fset.Position(cs.Expr.Pos()),
					Message: fmt.Sprintf("second Load of atomic pointer %s on onesnapshot path from %s (first Load in %s); pin the snapshot once and pass it down",
						obj.Name(), root.Fn.FullName(), prev.fn.Fn.FullName()),
				})
			}
		})
	}
}
