package analysis

import (
	"fmt"
	"go/types"
	"strings"
)

// Determinism enforces the bit-identical-replay contract on the paths
// the differential tests pin: functions whose doc comment carries
// `// medcc:deterministic` — the scheduler ScheduleInto implementations,
// the Replayer, the corpus campaign runners, the serving worker — and
// every in-module function statically reachable from them (through the
// shared call graph, including calls made inside function literals)
// must not observe any ambient nondeterminism:
//
//   - wall-clock reads: time.Now, time.Since, time.Until;
//   - the unseeded global math/rand source: package-level rand.Intn,
//     rand.Float64, rand.Perm, ... (constructing a seeded generator via
//     rand.New(rand.NewSource(seed)) and calling its methods is fine —
//     that is exactly how the metaheuristics stay replayable);
//   - map iteration outside the collect-then-sort and map-to-map idioms
//     (the mapiter contract, here folded into the transitive engine so
//     a nondeterministic range deep inside a helper is attributed to
//     the deterministic root it can corrupt).
//
// Calls through func values and interface methods have no static
// callee and are not walked; the concrete implementations carry their
// own `medcc:deterministic` marker instead (the schedulers behind
// sched.Get, for example). `medcc:coldpath` does NOT exempt a callee
// here — cold paths still feed the replayed outputs.
type Determinism struct{}

func (*Determinism) Name() string { return "determinism" }
func (*Determinism) Doc() string {
	return "medcc:deterministic paths must not read the clock, the global rand source, or unsorted map order"
}

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededCtors are the math/rand package-level functions that construct
// explicitly seeded state instead of drawing from the global source.
var seededCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func (d *Determinism) Run(m *Module, report func(Diagnostic)) {
	g := m.CallGraph()
	g.Walk(g.RootsWithMarker(MarkerDeterministic), nil, func(n, root *FuncNode) {
		suffix := " (in deterministic path from " + root.Fn.FullName() + ")"
		for _, cs := range n.Calls {
			if cs.Callee == nil || cs.Callee.Pkg() == nil {
				continue
			}
			path, name := cs.Callee.Pkg().Path(), cs.Callee.Name()
			recv := cs.Callee.Type().(*types.Signature).Recv()
			switch {
			case path == "time" && recv == nil && clockFuncs[name]:
				report(Diagnostic{
					Pos:     m.Fset.Position(cs.Expr.Pos()),
					Message: fmt.Sprintf("call to time.%s reads the wall clock%s", name, suffix),
				})
			case strings.HasPrefix(path, "math/rand") && recv == nil && !seededCtors[name]:
				report(Diagnostic{
					Pos:     m.Fset.Position(cs.Expr.Pos()),
					Message: fmt.Sprintf("call to %s.%s draws from the unseeded global source; use a seeded *rand.Rand%s", path, name, suffix),
				})
			}
		}
		for _, rs := range unsortedMapRanges(n.Pkg, n.Decl.Body, nil) {
			report(Diagnostic{
				Pos: m.Fset.Position(rs.Pos()),
				Message: fmt.Sprintf("iteration order over map %s can reach a deterministic output; collect and sort the keys%s",
					types.ExprString(rs.X), suffix),
			})
		}
	})
}
