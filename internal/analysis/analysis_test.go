package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts fixture expectations: a trailing comment of the form
// `// want "regexp"` on the line a diagnostic must anchor to (see
// markerWantComment). Multiple wants on one line are allowed.
var wantRe = regexp.MustCompile(markerWantComment + `\s+"((?:[^"\\]|\\.)*)"`)

type wantDiag struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// runFixture loads testdata/src/<name>, runs the analyzer of the same
// name over it, and requires a 1:1 match between the diagnostics and
// the fixture's want comments: every diagnostic must satisfy a want on
// its line, and every want must be consumed.
func runFixture(t *testing.T, name string) {
	t.Helper()
	root, err := FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	m, err := l.LoadFixture(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	// The staleignore fixture exercises the driver's stale-suppression
	// pass, which needs the full suite so every named analyzer has run.
	analyzers := All()
	if name != StaleIgnoreName {
		analyzers, err = ByName(name)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wants []*wantDiag
	for _, pkg := range m.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := m.Fset.Position(c.Pos())
					for _, sub := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(sub[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, sub[1], err)
						}
						wants = append(wants, &wantDiag{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}

	for _, d := range Run(m, analyzers) {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched, ok = true, true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestAllocFreeFixture(t *testing.T)     { runFixture(t, "allocfree") }
func TestEpochGuardFixture(t *testing.T)    { runFixture(t, "epochguard") }
func TestScratchEscapeFixture(t *testing.T) { runFixture(t, "scratchescape") }
func TestFloatEqFixture(t *testing.T)       { runFixture(t, "floateq") }
func TestMapIterFixture(t *testing.T)       { runFixture(t, "mapiter") }
func TestAtomicsFixture(t *testing.T)       { runFixture(t, "atomics") }
func TestGoroLeakFixture(t *testing.T)      { runFixture(t, "goroleak") }
func TestChanCloseFixture(t *testing.T)     { runFixture(t, "chanclose") }
func TestDeterminismFixture(t *testing.T)   { runFixture(t, "determinism") }
func TestErrWrapFixture(t *testing.T)       { runFixture(t, "errwrap") }
func TestStaleIgnoreFixture(t *testing.T)   { runFixture(t, "staleignore") }

// TestLintSelf runs the full suite over the real module, so
// `go test ./...` fails on new invariant violations even where CI does
// not run. Keep it green by fixing the finding or adding a
// `medcc:lint-ignore <analyzer>` with a rationale (see README.md).
func TestLintSelf(t *testing.T) {
	root, err := FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	m, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(m, All()) {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 10 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 10, nil", len(all), err)
	}
	two, err := ByName("allocfree, floateq")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset = %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) did not fail")
	}
}
