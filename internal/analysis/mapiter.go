package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapIter polices Go's randomized map iteration order in code that
// feeds deterministic outputs — schedules, simulation traces, and the
// experiment tables that the differential tests pin bit-for-bit. A
// plain `range` over a map anywhere in the module is a finding unless
// it matches one of the two order-independent idioms:
//
//   - collect-then-sort: the loop body only appends the key to a
//     slice, and the same lexical scope later sorts that slice
//     (exper's sortedKeys helper);
//   - map-to-map transform: every statement in the body assigns only
//     into map index expressions, so the result is keyed, not ordered
//     (exper's Fig9/Fig10 aggregation).
//
// Anything else either needs an explicit sort or a
// `medcc:lint-ignore mapiter` with a rationale for why order cannot
// reach an output.
type MapIter struct{}

func (*MapIter) Name() string { return "mapiter" }
func (*MapIter) Doc() string {
	return "no unsorted map iteration in code feeding deterministic outputs"
}

func (mi *MapIter) Run(m *Module, report func(Diagnostic)) {
	for _, fn := range m.CallGraph().Funcs() {
		for _, rs := range unsortedMapRanges(fn.Pkg, fn.Decl.Body, nil) {
			report(Diagnostic{
				Pos: m.Fset.Position(rs.Pos()),
				Message: fmt.Sprintf("iteration order over map %s is nondeterministic; collect and sort the keys, or lint-ignore with a rationale",
					types.ExprString(rs.X)),
			})
		}
	}
}

// unsortedMapRanges appends to out the map range statements of one
// lexical scope (a function or closure body) that match neither
// order-independent idiom, and recurses into closures. Closures form
// their own scope: a sort call inside a closure does not sanction a map
// range outside it, and vice versa. Shared between mapiter (whole
// module) and determinism (functions reachable from medcc:deterministic
// roots).
func unsortedMapRanges(pkg *Package, body *ast.BlockStmt, out []*ast.RangeStmt) []*ast.RangeStmt {
	var ranges []*ast.RangeStmt
	var sorted []string // ExprString of slices passed to sort/slices calls in this scope
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			out = unsortedMapRanges(pkg, n.Body, out)
			return false
		case *ast.RangeStmt:
			if _, ok := pkg.Info.TypeOf(n.X).Underlying().(*types.Map); ok {
				ranges = append(ranges, n)
			}
		case *ast.CallExpr:
			if arg := sortedArg(pkg, n); arg != "" {
				sorted = append(sorted, arg)
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	for _, rs := range ranges {
		if mapToMapBody(pkg, rs) {
			continue
		}
		if key := collectKeyTarget(pkg, rs); key != "" {
			ok := false
			for _, s := range sorted {
				if s == key {
					ok = true
					break
				}
			}
			if ok {
				continue
			}
		}
		out = append(out, rs)
	}
	return out
}

// sortedArg returns the ExprString of the slice being sorted when call
// is a sort.*/slices.Sort* invocation, else "".
func sortedArg(pkg *Package, call *ast.CallExpr) string {
	fn := Callee(pkg, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return ""
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
	default:
		return ""
	}
	return types.ExprString(ast.Unparen(call.Args[0]))
}

// collectKeyTarget matches the collect-then-sort loop shape
// `for k := range m { keys = append(keys, k) }` and returns the
// ExprString of keys, or "".
func collectKeyTarget(pkg *Package, rs *ast.RangeStmt) string {
	if rs.Key == nil || rs.Value != nil || len(rs.Body.List) != 1 {
		return ""
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return ""
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isAppend(pkg.Info, call) || len(call.Args) != 2 {
		return ""
	}
	if !sameBase(as.Lhs[0], call.Args[0]) {
		return ""
	}
	if types.ExprString(ast.Unparen(call.Args[1])) != types.ExprString(ast.Unparen(rs.Key)) {
		return ""
	}
	return types.ExprString(ast.Unparen(as.Lhs[0]))
}

// mapToMapBody reports whether every statement of the range body
// assigns only into map index expressions — a keyed transform whose
// result cannot observe iteration order.
func mapToMapBody(pkg *Package, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				return false
			}
			if _, ok := pkg.Info.TypeOf(ix.X).Underlying().(*types.Map); !ok {
				return false
			}
		}
	}
	return true
}
