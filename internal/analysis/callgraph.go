package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallGraph is the shared whole-module call-graph + fact engine the
// transitive analyzers are built on. It replaces the per-analyzer
// ad-hoc walks (the allocfree worklist, scratchescape's raw file scans)
// with one go/types-backed structure, built once per Module and cached:
//
//   - one FuncNode per function declaration with a body, in
//     deterministic order (packages sorted by path, then file, then
//     declaration order);
//   - static call edges resolved through go/types (direct calls and
//     method calls; calls through func values and interface methods
//     have no static callee and no edge — analyzers over-approximate
//     around them with annotations on the concrete implementations);
//   - per-function facts collected in a single AST pass: every call
//     site (with its resolved callee, in-module or not), go statements,
//     channel sends / closes / receives, and map range statements.
//
// Facts deliberately include what happens inside function literals
// declared in the body: a closure runs with (or on behalf of) its
// enclosing function, so for reachability purposes its calls belong to
// the encloser. Analyzers with stricter lexical rules (allocfree flags
// the closure itself; mapiter scopes its idioms per closure) keep their
// own finer-grained inspection of the bodies the graph hands them.
type CallGraph struct {
	mod   *Module
	nodes map[*types.Func]*FuncNode
	order []*FuncNode
}

// FuncNode is one declared function of the module with its facts.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls lists every call expression in the body (body order,
	// including inside func literals) with its statically resolved
	// callee — which may live outside the module (time.Now) or be nil
	// (func values, interface methods, builtins, conversions).
	Calls []CallSite
	// GoStmts, Sends, Closes, Recvs, ChanRanges, and MapRanges are the
	// concurrency- and determinism-relevant sites of the body.
	GoStmts    []*ast.GoStmt
	Sends      []*ast.SendStmt
	Closes     []*ast.CallExpr  // close(ch) builtin calls
	Recvs      []*ast.UnaryExpr // <-ch receive expressions
	ChanRanges []*ast.RangeStmt // for range ch
	MapRanges  []*ast.RangeStmt // for range m (map-typed X)

	callees []*FuncNode // deduped in-module callees with bodies, first-call order
}

// CallSite is one call expression with its resolved static callee.
type CallSite struct {
	Expr   *ast.CallExpr
	Callee *types.Func // nil when the callee is not statically resolvable
}

// CallGraph builds (once) and returns the module's call graph.
func (m *Module) CallGraph() *CallGraph {
	if m.callGraph != nil {
		return m.callGraph
	}
	g := &CallGraph{mod: m, nodes: map[*types.Func]*FuncNode{}}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				n.collectFacts()
				g.nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}
	// Edges second, so forward references within the module resolve.
	for _, n := range g.order {
		seen := map[*FuncNode]bool{}
		for _, cs := range n.Calls {
			if cs.Callee == nil {
				continue
			}
			callee, ok := g.nodes[cs.Callee]
			if !ok || seen[callee] {
				continue
			}
			seen[callee] = true
			n.callees = append(n.callees, callee)
		}
	}
	m.callGraph = g
	return g
}

// collectFacts fills the node's fact slices in one pass over the body.
func (n *FuncNode) collectFacts() {
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					if b.Name() == "close" {
						n.Closes = append(n.Closes, node)
					}
					n.Calls = append(n.Calls, CallSite{Expr: node})
					return true
				}
			}
			n.Calls = append(n.Calls, CallSite{Expr: node, Callee: Callee(n.Pkg, node)})
		case *ast.GoStmt:
			n.GoStmts = append(n.GoStmts, node)
		case *ast.SendStmt:
			n.Sends = append(n.Sends, node)
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				n.Recvs = append(n.Recvs, node)
			}
		case *ast.RangeStmt:
			switch info.TypeOf(node.X).Underlying().(type) {
			case *types.Map:
				n.MapRanges = append(n.MapRanges, node)
			case *types.Chan:
				n.ChanRanges = append(n.ChanRanges, node)
			}
		}
		return true
	})
}

// HasMarker reports whether the node's doc comment carries the marker.
func (n *FuncNode) HasMarker(marker string) bool { return HasMarker(n.Decl.Doc, marker) }

// Funcs returns every node in deterministic declaration order.
func (g *CallGraph) Funcs() []*FuncNode { return g.order }

// Node returns the node declaring fn, or nil when fn has no body in the
// module.
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// RootsWithMarker returns the nodes whose doc comment carries marker,
// in declaration order.
func (g *CallGraph) RootsWithMarker(marker string) []*FuncNode {
	var roots []*FuncNode
	for _, n := range g.order {
		if n.HasMarker(marker) {
			roots = append(roots, n)
		}
	}
	return roots
}

// Walk runs a breadth-first traversal of the static call graph from
// roots, attributing every reached node to the first root that reached
// it (roots are seeded in order, so attribution is deterministic).
// skip prunes: a node for which skip returns true is neither visited
// nor walked through (nil means no pruning). visit is called exactly
// once per reached node.
func (g *CallGraph) Walk(roots []*FuncNode, skip func(*FuncNode) bool, visit func(n, root *FuncNode)) {
	type item struct{ n, root *FuncNode }
	var queue []item
	seen := map[*FuncNode]bool{}
	for _, r := range roots {
		if !seen[r] && (skip == nil || !skip(r)) {
			seen[r] = true
			queue = append(queue, item{r, r})
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		visit(it.n, it.root)
		for _, c := range it.n.callees {
			if seen[c] || (skip != nil && skip(c)) {
				continue
			}
			seen[c] = true
			queue = append(queue, item{c, it.root})
		}
	}
}
