package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags direct ==/!= between float64 (or float32) values.
// Workflow times and costs are sums of divisions and rate products;
// equality between two independently computed values is float jitter
// waiting to happen — the ParetoFront staircase, budget feasibility,
// and tie-breaking must all go through the epsilon helpers (dag.Eps,
// sched's costEps) instead.
//
// Two kinds of sites are exempt:
//
//   - comparisons against a compile-time constant (`x == 0` sentinel
//     and unset-value checks are exact by construction);
//   - functions whose doc carries `// medcc:floateq-exact`: the
//     incremental timing engine's change-propagation cutoffs and the
//     event-heap comparators compare bit-exactly BY DESIGN (a skipped
//     node must recompute to the identical bits; a comparator needs a
//     strict weak order, which epsilon comparison breaks). The marker
//     documents that intent where it holds.
type FloatEq struct{}

func (*FloatEq) Name() string { return "floateq" }
func (*FloatEq) Doc() string {
	return "no ==/!= on float values outside constants and medcc:floateq-exact functions"
}

func (fe *FloatEq) Run(m *Module, report func(Diagnostic)) {
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || HasMarker(fd.Doc, MarkerFloatExact) {
					continue
				}
				fe.checkBody(m, pkg, fd.Body, report)
			}
		}
	}
}

func (fe *FloatEq) checkBody(m *Module, pkg *Package, body *ast.BlockStmt, report func(Diagnostic)) {
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, okx := pkg.Info.Types[be.X]
		y, oky := pkg.Info.Types[be.Y]
		if !okx || !oky {
			return true
		}
		if !isFloat(x.Type) && !isFloat(y.Type) {
			return true
		}
		if x.Value != nil || y.Value != nil {
			return true // comparison against a constant: exact by construction
		}
		report(Diagnostic{
			Pos: m.Fset.Position(be.OpPos),
			Message: fmt.Sprintf("float %s comparison; use an epsilon helper (dag.Eps / costEps), or mark the function %s if bit-exact comparison is intended",
				be.Op, MarkerFloatExact),
		})
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
