package analysis

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module in a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func loadAll(t *testing.T, root string) (*Module, error) {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l.LoadAll()
}

func TestLoadAllSyntaxError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module broken\n",
		"bad/bad.go": "package bad\n\nfunc oops( {\n",
	})
	_, err := loadAll(t, root)
	if err == nil {
		t.Fatal("LoadAll succeeded on a syntax error")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("error is not a *LoadError: %v", err)
	}
	if le.Stage != "parse" || le.Path != "broken/bad" {
		t.Errorf("LoadError = {Path: %q, Stage: %q}, want {broken/bad, parse}", le.Path, le.Stage)
	}
}

func TestLoadAllMissingImport(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module broken\n",
		"bad/bad.go": "package bad\n\nimport \"no/such/dependency\"\n\nvar _ = dependency.Thing\n",
	})
	_, err := loadAll(t, root)
	if err == nil {
		t.Fatal("LoadAll succeeded with a missing import")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("error is not a *LoadError: %v", err)
	}
	if le.Stage != "typecheck" || le.Path != "broken/bad" {
		t.Errorf("LoadError = {Path: %q, Stage: %q}, want {broken/bad, typecheck}", le.Path, le.Stage)
	}
}

// TestLoadAllReportsEveryFailure checks that independent package
// failures all surface, joined in deterministic (lexical walk) order.
func TestLoadAllReportsEveryFailure(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":         "module broken\n",
		"alpha/alpha.go": "package alpha\n\nfunc oops( {\n",
		"beta/beta.go":   "package beta\n\nfunc oops( {\n",
	})
	_, err := loadAll(t, root)
	if err == nil {
		t.Fatal("LoadAll succeeded with two broken packages")
	}
	msg := err.Error()
	ia, ib := strings.Index(msg, "broken/alpha"), strings.Index(msg, "broken/beta")
	if ia < 0 || ib < 0 {
		t.Fatalf("joined error missing a package: %v", err)
	}
	if ia > ib {
		t.Errorf("error order not deterministic (beta before alpha): %v", err)
	}
}

func TestLoadFixtureEmptyPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":        "module broken\n",
		"empty/.gitkee": "",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadFixture(filepath.Join(root, "empty"))
	if !errors.Is(err, ErrNoGoFiles) {
		t.Fatalf("LoadFixture(empty) error = %v, want ErrNoGoFiles", err)
	}
}

// TestLoadAllParallelDeterministic loads the real module twice with
// independent loaders and requires identical package lists and
// identical diagnostics — the parallel waves must not leak schedule
// order into results.
func TestLoadAllParallelDeterministic(t *testing.T) {
	root, err := FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var lists [2][]string
	for i := range lists {
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		m, err := l.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range m.Packages {
			lists[i] = append(lists[i], pkg.Path)
		}
		for _, d := range Run(m, All()) {
			lists[i] = append(lists[i], d.String())
		}
	}
	if strings.Join(lists[0], "\n") != strings.Join(lists[1], "\n") {
		t.Errorf("two LoadAll runs disagree:\n%v\nvs\n%v", lists[0], lists[1])
	}
}
