// Package analysis is the project's static-analysis suite: a
// stdlib-only (go/parser, go/ast, go/types — no x/tools) driver, a
// shared whole-module call-graph + fact engine (callgraph.go), and ten
// analyzers that machine-check the invariants the timing engine
// (internal/dag, internal/sched), the simulator core (internal/sim),
// and the serving stack (internal/serve) were rebuilt around. The
// invariants are conventions that reviews cannot reliably police, so
// each gets an analyzer (see DESIGN.md §8):
//
//   - allocfree:     `// medcc:allocfree` functions and their in-module
//     callees must not contain allocating constructs.
//   - epochguard:    structs caching *dag.Graph / *workflow.Workflow /
//     *workflow.Matrices must guard the binding with a version/epoch
//     field compared via Version() / Epoch().
//   - scratchescape: `// medcc:scratch` pooled types must not be
//     captured by go statements or sent on channels.
//   - floateq:       no ==/!= on float64 time/cost values outside
//     functions marked `// medcc:floateq-exact`.
//   - mapiter:       no unsorted map iteration feeding deterministic
//     outputs.
//   - atomics:       sync/atomic-managed words never accessed plainly;
//     one atomic.Pointer Load per `// medcc:onesnapshot` request path.
//   - goroleak:      every go statement joins a WaitGroup, signals a
//     drain channel, or is annotated `// medcc:daemon`.
//   - chanclose:     channels close once, on the sending side, and
//     sent-on channels have a drain path.
//   - determinism:   `// medcc:deterministic` roots and everything
//     reachable from them avoid the wall clock, the global rand
//     source, and unsorted map order.
//   - errwrap:       error causes wrap with %w or shared sentinels; no
//     err.Error() re-stringifying, no duplicate errors.New messages.
//
// Findings are suppressed line-by-line with
// `// medcc:lint-ignore <analyzer> — rationale`, either trailing the
// offending line or on the line above it; suppressions that no longer
// suppress anything are themselves findings (staleignore). cmd/medcc-lint
// is the CLI front end; TestLintSelf keeps `go test ./...` failing on
// new violations even where CI is not run.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker run over a loaded module.
type Analyzer interface {
	// Name is the analyzer's identifier in diagnostics and in
	// `medcc:lint-ignore` suppression comments.
	Name() string
	// Doc is a one-line description for `medcc-lint -list`.
	Doc() string
	// Run inspects the module and reports findings via report. The
	// driver filters findings to target packages and applies
	// suppressions; analyzers report everything they see.
	Run(m *Module, report func(Diagnostic))
}

// Package is one type-checked package of the module (or a fixture).
type Package struct {
	Path  string // import path ("medcc/internal/dag")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the unit of analysis: every loaded package plus the shared
// FileSet. Targets lists the packages whose files diagnostics are kept
// for (the whole module under medcc-lint; a single fixture package under
// the analyzer tests) — analyzers may still traverse the rest, e.g. the
// allocfree call walk crossing package boundaries.
type Module struct {
	Fset     *token.FileSet
	Packages []*Package // all loaded packages, sorted by path
	Targets  []*Package

	funcIndex map[*types.Func]*FuncInfo
	callGraph *CallGraph
}

// FuncInfo ties a function object to its declaration and owning package.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// FuncDecl returns the module declaration of fn, or nil when fn has no
// body in the loaded set (stdlib, interface methods, func values).
func (m *Module) FuncDecl(fn *types.Func) *FuncInfo {
	if m.funcIndex == nil {
		m.funcIndex = make(map[*types.Func]*FuncInfo)
		for _, pkg := range m.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Name == nil {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						m.funcIndex[obj] = &FuncInfo{Decl: fd, Pkg: pkg}
					}
				}
			}
		}
	}
	return m.funcIndex[fn]
}

// isTarget reports whether pos lies in one of the module's target
// packages.
func (m *Module) isTarget(pos token.Pos) bool {
	file := m.Fset.Position(pos).Filename
	for _, pkg := range m.Targets {
		for _, f := range pkg.Files {
			if m.Fset.Position(f.Pos()).Filename == file {
				return true
			}
		}
	}
	return false
}

// Callee resolves the static callee of call within pkg: a *types.Func
// for direct calls and method calls, nil for calls of func values,
// builtins, and type conversions.
func Callee(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// Marker annotations are single comment lines of the form
// `// medcc:<marker>` inside a declaration's doc comment.
const (
	MarkerAllocFree     = "medcc:allocfree"     // function must stay allocation-free (walked transitively)
	MarkerColdPath      = "medcc:coldpath"      // allocates only off the steady state (bind/growth/error); not walked
	MarkerScratch       = "medcc:scratch"       // pooled scratch type: worker-private, must not escape
	MarkerFloatExact    = "medcc:floateq-exact" // function compares floats bit-exactly by design
	MarkerDeterministic = "medcc:deterministic" // differential-tested root: no clock/global-rand/map-order (walked transitively)
	MarkerDaemon        = "medcc:daemon"        // goroutine deliberately outlives its spawner (process-lifetime)
	MarkerOneSnapshot   = "medcc:onesnapshot"   // request root: each atomic.Pointer snapshot Loaded at most once (walked transitively)
	markerLintIgnore    = "medcc:lint-ignore"
	markerWantComment   = "want" // fixture expectations, see analysis_test.go
)

// HasMarker reports whether doc contains the marker annotation on a
// line of its own (trailing rationale after the marker is allowed).
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if commentHasMarker(c.Text, marker) {
			return true
		}
	}
	return false
}

// commentHasMarker reports whether a single comment's text is the
// marker annotation (with optional trailing rationale).
func commentHasMarker(text, marker string) bool {
	text = strings.TrimSpace(strings.TrimLeft(text, "/* \t"))
	return text == marker || strings.HasPrefix(text, marker+" ")
}

var ignoreRe = regexp.MustCompile(`medcc:lint-ignore\s+([a-z,]+)`)

// StaleIgnoreName is the pseudo-analyzer name of the driver's stale
// suppression check: a `medcc:lint-ignore` comment that suppresses no
// finding of any analyzer in the run is itself a finding — dead
// suppressions hide the next real violation on their line. The check
// has the same escape hatch as everything else: list staleignore in the
// comment (`medcc:lint-ignore mapiter,staleignore — rationale`) to keep
// a suppression that is only needed intermittently.
const StaleIgnoreName = "staleignore"

// ignoreComment is one `medcc:lint-ignore` comment with the usage
// record the stale check consumes.
type ignoreComment struct {
	pos   token.Position // the comment's own position
	names []string
	used  map[string]bool
}

// suppressionIndex maps filename -> line -> analyzer name -> the
// suppressing comment.
type suppressionIndex map[string]map[int]map[string]*ignoreComment

// suppress records a use and reports whether d is suppressed.
func (s suppressionIndex) suppress(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	ic := byLine[d.Pos.Line][d.Analyzer]
	if ic == nil {
		return false
	}
	ic.used[d.Analyzer] = true
	return true
}

// suppressions indexes every `medcc:lint-ignore <analyzer>` comment of
// the module. A comment suppresses both its own line (trailing style)
// and the line immediately after it (comment-above style); `<analyzer>`
// may be a comma-separated list. Mentions inside backticks
// (`medcc:lint-ignore mapiter` in a doc comment) are prose, not
// suppressions, and are skipped.
func suppressions(m *Module) (suppressionIndex, []*ignoreComment) {
	out := suppressionIndex{}
	var comments []*ignoreComment
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := ignoreRe.FindStringSubmatchIndex(c.Text)
					if idx == nil {
						continue
					}
					if idx[0] > 0 && c.Text[idx[0]-1] == '`' {
						continue
					}
					ic := &ignoreComment{
						pos:  m.Fset.Position(c.Pos()),
						used: map[string]bool{},
					}
					for _, name := range strings.Split(c.Text[idx[2]:idx[3]], ",") {
						if name = strings.TrimSpace(name); name != "" {
							ic.names = append(ic.names, name)
						}
					}
					if len(ic.names) == 0 {
						continue
					}
					comments = append(comments, ic)
					byLine := out[ic.pos.Filename]
					if byLine == nil {
						byLine = map[int]map[string]*ignoreComment{}
						out[ic.pos.Filename] = byLine
					}
					for _, name := range ic.names {
						for _, line := range []int{ic.pos.Line, ic.pos.Line + 1} {
							if byLine[line] == nil {
								byLine[line] = map[string]*ignoreComment{}
							}
							byLine[line][name] = ic
						}
					}
				}
			}
		}
	}
	return out, comments
}

// Run executes the analyzers over the module, drops findings suppressed
// by `medcc:lint-ignore` comments, reports suppressions that suppressed
// nothing (staleignore), and returns the rest sorted by position.
func Run(m *Module, analyzers []Analyzer) []Diagnostic {
	sup, comments := suppressions(m)
	var out []Diagnostic
	seen := map[string]bool{}
	emit := func(d Diagnostic) {
		if sup.suppress(d) {
			return
		}
		key := d.String()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, d)
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		name := a.Name()
		ran[name] = true
		a.Run(m, func(d Diagnostic) {
			d.Analyzer = name
			emit(d)
		})
	}
	// Stale pass: a suppression for an analyzer that ran but matched no
	// finding is dead weight. Names of analyzers outside this run are
	// left alone (a single-analyzer fixture run cannot judge the rest).
	for _, ic := range comments {
		for _, name := range ic.names {
			if name == StaleIgnoreName || !ran[name] || ic.used[name] {
				continue
			}
			emit(Diagnostic{
				Analyzer: StaleIgnoreName,
				Pos:      ic.pos,
				Message:  fmt.Sprintf("lint-ignore for %s suppresses no finding; remove it (or add staleignore to the list with a rationale)", name),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// All returns the full analyzer suite in reporting order.
func All() []Analyzer {
	return []Analyzer{
		&AllocFree{},
		&EpochGuard{},
		&ScratchEscape{},
		&FloatEq{},
		&MapIter{},
		&Atomics{},
		&GoroLeak{},
		&ChanClose{},
		&Determinism{},
		&ErrWrap{},
	}
}

// ByName selects analyzers from a comma-separated list of names
// ("allocfree,floateq"); an empty list selects all.
func ByName(list string) ([]Analyzer, error) {
	all := All()
	if strings.TrimSpace(list) == "" {
		return all, nil
	}
	byName := map[string]Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
