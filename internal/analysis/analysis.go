// Package analysis is the project's static-analysis suite: a
// stdlib-only (go/parser, go/ast, go/types — no x/tools) driver plus
// five analyzers that machine-check the invariants the timing engine
// (internal/dag, internal/sched) and the simulator core (internal/sim)
// were rebuilt around. The invariants are conventions that reviews
// cannot reliably police — zero-allocation hot paths, version/epoch
// guarded cached bindings, worker-private pooled scratch, epsilon-safe
// float comparisons, and deterministic iteration — so each gets an
// analyzer (see DESIGN.md §8):
//
//   - allocfree:     `// medcc:allocfree` functions and their in-module
//     callees must not contain allocating constructs.
//   - epochguard:    structs caching *dag.Graph / *workflow.Workflow /
//     *workflow.Matrices must guard the binding with a version/epoch
//     field compared via Version() / Epoch().
//   - scratchescape: `// medcc:scratch` pooled types must not be
//     captured by go statements or sent on channels.
//   - floateq:       no ==/!= on float64 time/cost values outside
//     functions marked `// medcc:floateq-exact`.
//   - mapiter:       no unsorted map iteration feeding deterministic
//     outputs.
//
// Findings are suppressed line-by-line with
// `// medcc:lint-ignore <analyzer> — rationale`, either trailing the
// offending line or on the line above it. cmd/medcc-lint is the CLI
// front end; TestLintSelf keeps `go test ./...` failing on new
// violations even where CI is not run.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker run over a loaded module.
type Analyzer interface {
	// Name is the analyzer's identifier in diagnostics and in
	// `medcc:lint-ignore` suppression comments.
	Name() string
	// Doc is a one-line description for `medcc-lint -list`.
	Doc() string
	// Run inspects the module and reports findings via report. The
	// driver filters findings to target packages and applies
	// suppressions; analyzers report everything they see.
	Run(m *Module, report func(Diagnostic))
}

// Package is one type-checked package of the module (or a fixture).
type Package struct {
	Path  string // import path ("medcc/internal/dag")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the unit of analysis: every loaded package plus the shared
// FileSet. Targets lists the packages whose files diagnostics are kept
// for (the whole module under medcc-lint; a single fixture package under
// the analyzer tests) — analyzers may still traverse the rest, e.g. the
// allocfree call walk crossing package boundaries.
type Module struct {
	Fset     *token.FileSet
	Packages []*Package // all loaded packages, sorted by path
	Targets  []*Package

	funcIndex map[*types.Func]*FuncInfo
}

// FuncInfo ties a function object to its declaration and owning package.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// FuncDecl returns the module declaration of fn, or nil when fn has no
// body in the loaded set (stdlib, interface methods, func values).
func (m *Module) FuncDecl(fn *types.Func) *FuncInfo {
	if m.funcIndex == nil {
		m.funcIndex = make(map[*types.Func]*FuncInfo)
		for _, pkg := range m.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Name == nil {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						m.funcIndex[obj] = &FuncInfo{Decl: fd, Pkg: pkg}
					}
				}
			}
		}
	}
	return m.funcIndex[fn]
}

// isTarget reports whether pos lies in one of the module's target
// packages.
func (m *Module) isTarget(pos token.Pos) bool {
	file := m.Fset.Position(pos).Filename
	for _, pkg := range m.Targets {
		for _, f := range pkg.Files {
			if m.Fset.Position(f.Pos()).Filename == file {
				return true
			}
		}
	}
	return false
}

// Callee resolves the static callee of call within pkg: a *types.Func
// for direct calls and method calls, nil for calls of func values,
// builtins, and type conversions.
func Callee(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// Marker annotations are single comment lines of the form
// `// medcc:<marker>` inside a declaration's doc comment.
const (
	MarkerAllocFree   = "medcc:allocfree"     // function must stay allocation-free (walked transitively)
	MarkerColdPath    = "medcc:coldpath"      // allocates only off the steady state (bind/growth/error); not walked
	MarkerScratch     = "medcc:scratch"       // pooled scratch type: worker-private, must not escape
	MarkerFloatExact  = "medcc:floateq-exact" // function compares floats bit-exactly by design
	markerLintIgnore  = "medcc:lint-ignore"
	markerWantComment = "want" // fixture expectations, see analysis_test.go
)

// HasMarker reports whether doc contains the marker annotation on a
// line of its own (trailing rationale after the marker is allowed).
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimLeft(c.Text, "/* \t"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

var ignoreRe = regexp.MustCompile(`medcc:lint-ignore\s+([a-z,]+)`)

// suppressions maps filename -> line -> set of analyzer names ignored on
// that line. A `medcc:lint-ignore <analyzer>` comment suppresses both
// its own line (trailing comments) and the line immediately after it
// (comment-above style); `<analyzer>` may be a comma-separated list.
func suppressions(m *Module) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					sub := ignoreRe.FindStringSubmatch(c.Text)
					if sub == nil {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					byLine := out[pos.Filename]
					if byLine == nil {
						byLine = map[int]map[string]bool{}
						out[pos.Filename] = byLine
					}
					for _, name := range strings.Split(sub[1], ",") {
						name = strings.TrimSpace(name)
						if name == "" {
							continue
						}
						for _, line := range []int{pos.Line, pos.Line + 1} {
							if byLine[line] == nil {
								byLine[line] = map[string]bool{}
							}
							byLine[line][name] = true
						}
					}
				}
			}
		}
	}
	return out
}

// Run executes the analyzers over the module, drops findings outside
// the target packages or suppressed by `medcc:lint-ignore` comments,
// and returns the rest sorted by position.
func Run(m *Module, analyzers []Analyzer) []Diagnostic {
	sup := suppressions(m)
	var out []Diagnostic
	seen := map[string]bool{}
	for _, a := range analyzers {
		name := a.Name()
		a.Run(m, func(d Diagnostic) {
			d.Analyzer = name
			if byLine := sup[d.Pos.Filename]; byLine != nil && byLine[d.Pos.Line][name] {
				return
			}
			key := d.String()
			if seen[key] {
				return
			}
			seen[key] = true
			out = append(out, d)
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// All returns the full analyzer suite in reporting order.
func All() []Analyzer {
	return []Analyzer{
		&AllocFree{},
		&EpochGuard{},
		&ScratchEscape{},
		&FloatEq{},
		&MapIter{},
	}
}

// ByName selects analyzers from a comma-separated list of names
// ("allocfree,floateq"); an empty list selects all.
func ByName(list string) ([]Analyzer, error) {
	all := All()
	if strings.TrimSpace(list) == "" {
		return all, nil
	}
	byName := map[string]Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
