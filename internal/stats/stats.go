// Package stats provides the small set of summary statistics the
// experiment harness reports.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1), or 0 when fewer than
// two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation between closest ranks, or 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
