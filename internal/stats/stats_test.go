package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-element stddev")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138089935) > 1e-6 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 30); math.Abs(got-3) > 1e-9 {
		t.Fatalf("interpolated percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestBoundsProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip magnitudes whose sums overflow float64: Mean is
			// not defined to be overflow-safe.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9 &&
			Percentile(xs, 50) >= Min(xs)-1e-9 && Percentile(xs, 50) <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
