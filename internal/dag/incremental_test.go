package dag

import (
	"math/rand"
	"testing"
)

// randomDAG builds a random DAG: edges only go from lower to higher index
// through a random node permutation, so acyclicity is guaranteed while the
// topological order stays non-trivial.
func randomProbDAG(rng *rand.Rand, n int, edgeProb float64) *Graph {
	g := New()
	g.AddNodes(n)
	perm := rng.Perm(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < edgeProb {
				g.MustEdge(perm[a], perm[b])
			}
		}
	}
	return g
}

func randomWeights(rng *rand.Rand, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64() * 10
	}
	return w
}

// requireTimingsEqual asserts that two timings agree exactly. The
// incremental passes evaluate the same recurrences in the same order as a
// fresh run, so equality must be bit-for-bit, not just within Eps.
func requireTimingsEqual(t *testing.T, got, want *Timing, ctx string) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Fatalf("%s: makespan %v != %v", ctx, got.Makespan, want.Makespan)
	}
	for i := range want.EST {
		if got.EST[i] != want.EST[i] || got.EFT[i] != want.EFT[i] ||
			got.Tail[i] != want.Tail[i] {
			t.Fatalf("%s: node %d EST/EFT/Tail = %v/%v/%v, want %v/%v/%v",
				ctx, i, got.EST[i], got.EFT[i], got.Tail[i],
				want.EST[i], want.EFT[i], want.Tail[i])
		}
		if got.LST(i) != want.LST(i) || got.LFT(i) != want.LFT(i) || got.Slack(i) != want.Slack(i) {
			t.Fatalf("%s: node %d derived LST/LFT/Slack = %v/%v/%v, want %v/%v/%v",
				ctx, i, got.LST(i), got.LFT(i), got.Slack(i),
				want.LST(i), want.LFT(i), want.Slack(i))
		}
	}
}

// TestUpdateNodeMatchesFreshTiming is the property test behind the
// incremental engine: over random DAGs and random single-weight mutations,
// UpdateNode must land on exactly the state a fresh NewTiming computes.
func TestUpdateNodeMatchesFreshTiming(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(30)
		g := randomProbDAG(rng, n, 0.25)
		weights := randomWeights(rng, n)
		inc, err := NewTiming(g, weights, nil)
		if err != nil {
			t.Fatal(err)
		}
		for mut := 0; mut < 40; mut++ {
			i := rng.Intn(n)
			var w float64
			switch rng.Intn(4) {
			case 0:
				w = 0 // collapse the node
			case 1:
				w = weights[i] // no-op update
			default:
				w = rng.Float64() * 10
			}
			inc.UpdateNode(i, w)
			fresh, err := NewTiming(g, append([]float64(nil), weights...), nil)
			if err != nil {
				t.Fatal(err)
			}
			requireTimingsEqual(t, inc, fresh, "UpdateNode")
		}
	}
}

// TestUpdateNodeTrackedReportsChanges pins the changed-set contract that
// incremental candidate maintenance in the scheduler engine relies on:
// every node whose EFT or Tail moved appears in the changed set, mkChanged
// reports exactly whether the makespan moved, and — the consequence the
// engine actually uses — when the makespan is unchanged, a node whose
// criticality flipped is always in the changed set.
func TestUpdateNodeTrackedReportsChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf []int32
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(30)
		g := randomProbDAG(rng, n, 0.25)
		weights := randomWeights(rng, n)
		inc, err := NewTiming(g, weights, nil)
		if err != nil {
			t.Fatal(err)
		}
		prevEFT := append([]float64(nil), inc.EFT...)
		prevTail := append([]float64(nil), inc.Tail...)
		prevCrit := make([]bool, n)
		for mut := 0; mut < 40; mut++ {
			copy(prevEFT, inc.EFT)
			copy(prevTail, inc.Tail)
			prevMk := inc.Makespan
			for i := 0; i < n; i++ {
				prevCrit[i] = inc.IsCritical(i)
			}
			i := rng.Intn(n)
			w := rng.Float64() * 10
			if rng.Intn(5) == 0 {
				w = weights[i] // no-op update
			}
			var mkChanged bool
			buf, mkChanged = inc.UpdateNodeTracked(i, w, buf)
			if mkChanged != (inc.Makespan != prevMk) {
				t.Fatalf("mut %d: mkChanged=%v but makespan %v -> %v",
					mut, mkChanged, prevMk, inc.Makespan)
			}
			inSet := make(map[int32]bool, len(buf))
			for _, id := range buf {
				inSet[id] = true
			}
			for u := 0; u < n; u++ {
				if (inc.EFT[u] != prevEFT[u] || inc.Tail[u] != prevTail[u]) && !inSet[int32(u)] {
					t.Fatalf("mut %d: node %d moved (EFT %v->%v, Tail %v->%v) but missing from changed set %v",
						mut, u, prevEFT[u], inc.EFT[u], prevTail[u], inc.Tail[u], buf)
				}
				if !mkChanged && inc.IsCritical(u) != prevCrit[u] && !inSet[int32(u)] {
					t.Fatalf("mut %d: node %d flipped criticality with stable makespan but missing from changed set",
						mut, u)
				}
			}
			fresh, err := NewTiming(g, append([]float64(nil), weights...), nil)
			if err != nil {
				t.Fatal(err)
			}
			requireTimingsEqual(t, inc, fresh, "UpdateNodeTracked")
		}
	}
}

// TestUpdateMatchesFreshTiming checks the bulk in-place refresh against a
// fresh construction after replacing every weight.
func TestUpdateMatchesFreshTiming(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		g := randomProbDAG(rng, n, 0.3)
		weights := randomWeights(rng, n)
		inc, err := NewTiming(g, weights, nil)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 5; round++ {
			for i := range weights {
				weights[i] = rng.Float64() * 10
			}
			if err := inc.Update(weights); err != nil {
				t.Fatal(err)
			}
			fresh, err := NewTiming(g, append([]float64(nil), weights...), nil)
			if err != nil {
				t.Fatal(err)
			}
			requireTimingsEqual(t, inc, fresh, "Update")
		}
	}
}

// TestWhatIfMakespanMatchesTrialTiming checks the non-mutating probe: the
// hypothetical makespan must equal a fresh timing of the mutated weights,
// and the probe must leave the Timing untouched.
func TestWhatIfMakespanMatchesTrialTiming(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		g := randomProbDAG(rng, n, 0.3)
		weights := randomWeights(rng, n)
		inc, err := NewTiming(g, weights, nil)
		if err != nil {
			t.Fatal(err)
		}
		before, err := NewTiming(g, append([]float64(nil), weights...), nil)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			i := rng.Intn(n)
			w := rng.Float64() * 10
			trialW := append([]float64(nil), weights...)
			trialW[i] = w
			fresh, err := NewTiming(g, trialW, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := inc.WhatIfMakespan(i, w); got != fresh.Makespan {
				t.Fatalf("WhatIfMakespan(%d, %v) = %v, want %v", i, w, got, fresh.Makespan)
			}
			requireTimingsEqual(t, inc, before, "WhatIfMakespan side effect")
		}
	}
}

// TestUpdateNodeWithEdgeWeights exercises the incremental passes under
// non-zero transfer times, the multi-cloud configuration.
func TestUpdateNodeWithEdgeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ew := func(u, v int) float64 { return float64((u+v)%3) * 0.5 }
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		g := randomProbDAG(rng, n, 0.3)
		weights := randomWeights(rng, n)
		inc, err := NewTiming(g, weights, ew)
		if err != nil {
			t.Fatal(err)
		}
		for mut := 0; mut < 20; mut++ {
			i := rng.Intn(n)
			w := rng.Float64() * 10
			inc.UpdateNode(i, w)
			fresh, err := NewTiming(g, append([]float64(nil), weights...), ew)
			if err != nil {
				t.Fatal(err)
			}
			requireTimingsEqual(t, inc, fresh, "UpdateNode with edge weights")
		}
	}
}

// TestTopoOrderCacheInvalidation ensures mutations drop the cached order:
// adding an edge that forces a different Kahn order must be reflected.
func TestTopoOrderCacheInvalidation(t *testing.T) {
	g := New()
	g.AddNodes(3)
	g.MustEdge(0, 2)
	o1, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(o1) != 3 || o1[0] != 0 || o1[1] != 1 {
		t.Fatalf("order = %v, want [0 1 2]", o1)
	}
	// New edge 2 -> 1 forces 1 after 2.
	g.MustEdge(2, 1)
	o2, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if o2[0] != 0 || o2[1] != 2 || o2[2] != 1 {
		t.Fatalf("order after mutation = %v, want [0 2 1]", o2)
	}
	// The returned slice must be a copy: clobbering it must not poison
	// the cache.
	o2[0], o2[1], o2[2] = 9, 9, 9
	o3, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if o3[0] != 0 || o3[1] != 2 || o3[2] != 1 {
		t.Fatalf("cache corrupted by caller mutation: %v", o3)
	}
	// A node added after the cache is warm must invalidate it too.
	g.AddNode("late")
	o4, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(o4) != 4 {
		t.Fatalf("order after AddNode = %v, want 4 nodes", o4)
	}
}
