package dag

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds w0 -> {w1, w2} -> w3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddNodes(4)
	g.MustEdge(0, 1)
	g.MustEdge(0, 2)
	g.MustEdge(1, 3)
	g.MustEdge(2, 3)
	return g
}

func TestAddNodeAssignsSequentialIndices(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		if got := g.AddNode("x"); got != i {
			t.Fatalf("AddNode #%d returned %d", i, got)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddNodesNamesAndOffset(t *testing.T) {
	g := New()
	g.AddNode("custom")
	first := g.AddNodes(3)
	if first != 1 {
		t.Fatalf("AddNodes returned %d, want 1", first)
	}
	want := []string{"custom", "w1", "w2", "w3"}
	for i, w := range want {
		if g.Name(i) != w {
			t.Errorf("Name(%d) = %q, want %q", i, g.Name(i), w)
		}
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New()
	g.AddNodes(2)
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := New()
	g.AddNodes(2)
	g.MustEdge(0, 1)
	if err := g.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := New()
	g.AddNodes(2)
	for _, e := range [][2]int{{-1, 0}, {0, 2}, {5, 1}} {
		if err := g.AddEdge(e[0], e[1]); err == nil {
			t.Errorf("edge %v accepted", e)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := diamond(t)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge gave wrong answers on diamond")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(99, 0) {
		t.Fatal("HasEdge accepted out-of-range source")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := diamond(t)
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 || g.InDegree(0) != 0 {
		t.Fatal("wrong degrees")
	}
	if !reflect.DeepEqual(g.Succ(0), []int{1, 2}) {
		t.Fatalf("Succ(0) = %v", g.Succ(0))
	}
	if !reflect.DeepEqual(g.Pred(3), []int{1, 2}) {
		t.Fatalf("Pred(3) = %v", g.Pred(3))
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if !reflect.DeepEqual(g.Sources(), []int{0}) {
		t.Fatalf("Sources = %v", g.Sources())
	}
	if !reflect.DeepEqual(g.Sinks(), []int{3}) {
		t.Fatalf("Sinks = %v", g.Sinks())
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	// Reverse-numbered chain: 3 -> 2 -> 1 -> 0.
	g := New()
	g.AddNodes(4)
	g.MustEdge(3, 2)
	g.MustEdge(2, 1)
	g.MustEdge(1, 0)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{3, 2, 1, 0}) {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New()
	g.AddNodes(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 0)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if err := g.Validate(); err != ErrCycle {
		t.Fatalf("Validate = %v, want ErrCycle", err)
	}
}

func TestValidateEmptyGraph(t *testing.T) {
	if err := New().Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
}

func TestFindCycleNilOnDAG(t *testing.T) {
	if c := diamond(t).FindCycle(); c != nil {
		t.Fatalf("cycle %v found in DAG", c)
	}
}

func TestFindCycleReturnsClosedWalk(t *testing.T) {
	g := New()
	g.AddNodes(5)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	g.MustEdge(3, 1) // cycle 1-2-3-1
	g.MustEdge(3, 4)
	c := g.FindCycle()
	if len(c) < 3 || c[0] != c[len(c)-1] {
		t.Fatalf("not a closed walk: %v", c)
	}
	for i := 0; i+1 < len(c); i++ {
		if !g.HasEdge(c[i], c[i+1]) {
			t.Fatalf("cycle %v uses missing edge (%d,%d)", c, c[i], c[i+1])
		}
	}
}

func TestReachable(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 3, true}, {0, 0, true}, {1, 2, false}, {3, 0, false}, {1, 3, true},
	}
	for _, c := range cases {
		if got := g.Reachable(c.u, c.v); got != c.want {
			t.Errorf("Reachable(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.MustEdge(1, 2)
	c.SetName(0, "renamed")
	if g.HasEdge(1, 2) {
		t.Fatal("edge added to clone leaked into original")
	}
	if g.Name(0) == "renamed" {
		t.Fatal("rename on clone leaked into original")
	}
	if c.NumEdges() != g.NumEdges()+1 {
		t.Fatal("clone edge count wrong")
	}
}

func TestTransitiveReductionRemovesShortcut(t *testing.T) {
	g := New()
	g.AddNodes(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(0, 2) // shortcut
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.HasEdge(0, 2) {
		t.Fatal("shortcut edge survived reduction")
	}
	if !r.HasEdge(0, 1) || !r.HasEdge(1, 2) {
		t.Fatal("reduction removed a necessary edge")
	}
}

func TestTransitiveReductionKeepsDiamond(t *testing.T) {
	g := diamond(t)
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != 4 {
		t.Fatalf("diamond reduced to %d edges, want 4", r.NumEdges())
	}
}

func TestTransitiveReductionCyclic(t *testing.T) {
	g := New()
	g.AddNodes(2)
	g.MustEdge(0, 1)
	g.MustEdge(1, 0)
	if _, err := g.TransitiveReduction(); err == nil {
		t.Fatal("reduction of cyclic graph succeeded")
	}
}

func TestTransitiveReductionPreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, 12, 30)
		r, err := g.TransitiveReduction()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if g.Reachable(u, v) != r.Reachable(u, v) {
					t.Fatalf("trial %d: reachability (%d,%d) changed", trial, u, v)
				}
			}
		}
	}
}

func TestDOTContainsNodesAndEdges(t *testing.T) {
	g := diamond(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", `n0 [label="w0"]`, "n0 -> n1;", "n2 -> n3;"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// randomDAG builds a DAG on n nodes where every edge goes from a lower to a
// higher index, with up to m attempted edges.
func randomDAG(rng *rand.Rand, n, m int) *Graph {
	g := New()
	g.AddNodes(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		_ = g.AddEdge(u, v) // duplicates silently skipped
	}
	return g
}

func TestTopoOrderPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		g := randomDAG(rng, 20, 60)
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, g.NumNodes())
		for i, u := range order {
			pos[u] = i
		}
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.Succ(u) {
				if pos[u] >= pos[v] {
					t.Fatalf("trial %d: edge (%d,%d) violates topo order", trial, u, v)
				}
			}
		}
	}
}

func TestQuickRandomDAGsAreAcyclic(t *testing.T) {
	// Property: forward-edge construction always yields a valid DAG.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(15), rng.Intn(40))
		return g.Validate() == nil && g.FindCycle() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
