package dag

import (
	"fmt"
	"math"
)

// Eps is the tolerance used when comparing floating-point times for
// criticality decisions. Workflow times in this module are sums of short
// chains of divisions, so 1e-9 is comfortably below any meaningful
// difference and above accumulated rounding error.
const Eps = 1e-9

// EdgeWeight returns the weight (transfer time) of edge u -> v. A nil
// EdgeWeight is treated as uniformly zero, which matches the paper's
// single-datacenter model where intra-cloud transfer time is negligible.
type EdgeWeight func(u, v int) float64

// Timing holds the result of the forward/backward scheduling passes over a
// weighted DAG: the classical earliest/latest start and finish times of
// every node, from which makespan, slack, and critical paths are derived.
//
// A Timing is bound to the graph structure it was created with; it may be
// refreshed in place with Update (all weights) or UpdateNode (one weight)
// without re-running the topological sort or allocating, which is what the
// greedy schedulers lean on: each of their iterations changes exactly one
// module's execution time.
type Timing struct {
	g *Graph

	// EST and EFT are the earliest start/finish times from the forward
	// pass; LST and LFT the latest start/finish times from the backward
	// pass anchored at the makespan.
	EST, EFT, LST, LFT []float64

	// Makespan is the end-to-end delay: max EFT over all nodes.
	Makespan float64

	order []int // shared with the graph's topo cache; read-only
	pos   []int // pos[u] = index of u in order; read-only
	nodeW []float64
	edgeW EdgeWeight

	// CSR adjacency shared with the graph's cache; read-only. The hot
	// relaxation loops iterate these flat arrays instead of g.pred/g.succ.
	predOff, predAdj []int32
	succOff, succAdj []int32

	scratch []float64 // hypothetical EFT buffer for WhatIfMakespan

	// fdirty/bdirty mark, per epoch, the nodes whose forward (EFT) or
	// backward (LST) values may move during an incremental pass; nodes not
	// marked provably recompute to bit-identical values and are skipped.
	// Epoch tagging makes clearing free: a new pass just increments epoch.
	fdirty, bdirty []int
	epoch          int

	// sinks lists the nodes with no successors. With zero edge weights EFT
	// is monotone along every edge, so the makespan rescan after an
	// incremental update only needs to look at these.
	sinks []int32
}

// NewTiming runs the forward and backward passes over g with the given node
// weights (execution times) and edge weights (transfer times, nil for all
// zero). It returns an error if g is cyclic, if len(nodeW) != g.NumNodes(),
// or if any weight is negative or non-finite. The Timing aliases nodeW;
// callers that mutate it must follow up with Update or UpdateNode.
//
// medcc:coldpath — construction allocates by design; steady-state refresh
// goes through Update/UpdateNode.
func NewTiming(g *Graph, nodeW []float64, edgeW EdgeWeight) (*Timing, error) {
	n := g.NumNodes()
	if err := checkWeights(nodeW, n); err != nil {
		return nil, err
	}
	order, pos, err := g.topoShared()
	if err != nil {
		return nil, err
	}
	t := &Timing{
		g:       g,
		EST:     make([]float64, n),
		EFT:     make([]float64, n),
		LST:     make([]float64, n),
		LFT:     make([]float64, n),
		order:   order,
		pos:     pos,
		nodeW:   nodeW,
		edgeW:   edgeW,
		predOff: g.predOff,
		predAdj: g.predAdj,
		succOff: g.succOff,
		succAdj: g.succAdj,
		scratch: make([]float64, n),
		fdirty:  make([]int, n),
		bdirty:  make([]int, n),
	}
	for u := 0; u < n; u++ {
		if t.succOff[u] == t.succOff[u+1] {
			t.sinks = append(t.sinks, int32(u))
		}
	}
	t.run()
	return t, nil
}

func checkWeights(nodeW []float64, n int) error {
	if len(nodeW) != n {
		return fmt.Errorf("dag: %d node weights for %d nodes", len(nodeW), n)
	}
	for i, w := range nodeW {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("dag: invalid weight %v on node %d", w, i)
		}
	}
	return nil
}

// Update replaces the node weights and recomputes all times in place with
// zero allocations. nodeW is validated like in NewTiming and aliased by the
// Timing afterwards; passing the slice the Timing already holds (after
// mutating it) is the intended steady-state use.
//
// medcc:allocfree
func (t *Timing) Update(nodeW []float64) error {
	if err := checkWeights(nodeW, t.g.NumNodes()); err != nil {
		return err
	}
	t.nodeW = nodeW
	t.run()
	return nil
}

// UpdateNode sets the weight of node i to w and incrementally recomputes
// the times, allocation-free. Nodes before i's topological position keep
// their EST/EFT (they cannot reach i); within the suffix, only descendants
// of a node whose EFT actually moved are re-relaxed, tracked by epoch
// marks. The backward pass mirrors this over the prefix up to i when the
// makespan anchor is unchanged, and re-runs fully otherwise. Skipped nodes
// would recompute to bit-identical values, so the result is exactly that
// of a fresh pass.
//
// w must be non-negative and finite, as enforced by NewTiming/Update for
// whole slices; UpdateNode is the per-iteration hot path and does not
// re-validate.
//
// medcc:allocfree
// medcc:floateq-exact — the no-op check and the makespan-anchor check must
// be bit-exact: epsilon slop would skip re-relaxations whose exact results
// differ, breaking the "identical to a fresh pass" contract.
func (t *Timing) UpdateNode(i int, w float64) {
	if t.nodeW[i] == w {
		return
	}
	t.nodeW[i] = w
	p := t.pos[i]
	t.epoch++
	t.fdirty[i] = t.epoch
	if t.edgeW == nil {
		t.relaxFwdZero(p)
	} else {
		t.relaxFwd(p)
	}
	old := t.Makespan
	mk := 0.0
	if t.edgeW == nil {
		// Zero edge weights keep EFT monotone along edges, so the max is
		// attained at a sink.
		for _, u := range t.sinks {
			if f := t.EFT[u]; f > mk {
				mk = f
			}
		}
	} else {
		for _, f := range t.EFT {
			if f > mk {
				mk = f
			}
		}
	}
	t.Makespan = mk
	if mk == old {
		// Anchor unchanged: nodes after position p keep their LST/LFT
		// (their successors all sit after p), so only the prefix can move,
		// and within it only ancestors of a node whose LST changed.
		t.bdirty[i] = t.epoch
		t.relaxBwd(p)
		return
	}
	// The anchor moved: every path's latest times are re-anchored, which
	// shifts nearly all LFT/LST values, so change tracking would cost more
	// than it saves — run the dense pass.
	t.backward(len(t.order) - 1)
}

// relaxFwdZero is the forward re-relaxation of order[p:] for the common
// zero-edge-weight case; relaxFwd is its general twin. Only nodes marked
// dirty in the current epoch are recomputed, and a node's successors are
// marked only when its EFT actually moved.
//
// medcc:floateq-exact — "moved" means bit-exact inequality; skipped nodes
// must recompute to identical values.
func (t *Timing) relaxFwdZero(p int) {
	// Everything is hoisted into locals: the loop stores through slices, so
	// without locals the compiler reloads each field every iteration.
	ep := t.epoch
	fdirty, est, eft, nodeW := t.fdirty, t.EST, t.EFT, t.nodeW
	po, pa := t.predOff, t.predAdj
	so, sa := t.succOff, t.succAdj
	for _, u := range t.order[p:] {
		if fdirty[u] != ep {
			continue
		}
		start := 0.0
		for _, q := range pa[po[u]:po[u+1]] {
			if a := eft[q]; a > start {
				start = a
			}
		}
		est[u] = start
		if f := start + nodeW[u]; f != eft[u] {
			eft[u] = f
			for _, v := range sa[so[u]:so[u+1]] {
				fdirty[v] = ep
			}
		}
	}
}

// medcc:floateq-exact — see relaxFwdZero.
func (t *Timing) relaxFwd(p int) {
	ep := t.epoch
	for _, u := range t.order[p:] {
		if t.fdirty[u] != ep {
			continue
		}
		start := 0.0
		for _, q := range t.predAdj[t.predOff[u]:t.predOff[u+1]] {
			if a := t.EFT[q] + t.edgeW(int(q), u); a > start {
				start = a
			}
		}
		t.EST[u] = start
		if f := start + t.nodeW[u]; f != t.EFT[u] {
			t.EFT[u] = f
			for _, v := range t.succAdj[t.succOff[u]:t.succOff[u+1]] {
				t.fdirty[v] = ep
			}
		}
	}
}

// relaxBwd re-relaxes the backward pass for positions hi down to 0 against
// the unchanged makespan anchor, recomputing a node only when marked dirty
// (an LST below it moved); its ancestors are marked in turn only when the
// recomputed LST differs. Skipped nodes would recompute to bit-identical
// values.
//
// medcc:floateq-exact — see relaxFwdZero.
func (t *Timing) relaxBwd(hi int) {
	mk := t.Makespan
	ep := t.epoch
	if t.edgeW == nil {
		bdirty, lst, lft, nodeW := t.bdirty, t.LST, t.LFT, t.nodeW
		po, pa := t.predOff, t.predAdj
		so, sa := t.succOff, t.succAdj
		order := t.order
		for k := hi; k >= 0; k-- {
			u := order[k]
			if bdirty[u] != ep {
				continue
			}
			finish := mk
			for _, s := range sa[so[u]:so[u+1]] {
				if d := lst[s]; d < finish {
					finish = d
				}
			}
			lft[u] = finish
			if l := finish - nodeW[u]; l != lst[u] {
				lst[u] = l
				for _, q := range pa[po[u]:po[u+1]] {
					bdirty[q] = ep
				}
			}
		}
		return
	}
	for k := hi; k >= 0; k-- {
		u := t.order[k]
		if t.bdirty[u] != ep {
			continue
		}
		finish := mk
		for _, s := range t.succAdj[t.succOff[u]:t.succOff[u+1]] {
			if d := t.LST[s] - t.edgeW(u, int(s)); d < finish {
				finish = d
			}
		}
		t.LFT[u] = finish
		if l := finish - t.nodeW[u]; l != t.LST[u] {
			t.LST[u] = l
			for _, q := range t.predAdj[t.predOff[u]:t.predOff[u+1]] {
				t.bdirty[q] = ep
			}
		}
	}
}

// run executes the full forward and backward passes.
func (t *Timing) run() {
	g := t.g
	t.Makespan = 0
	// Forward pass: a module cannot start until all input data arrive,
	// and a dependency edge cannot start transfer until its source
	// finishes (the paper's precedence constraints).
	if t.edgeW == nil {
		for _, u := range t.order {
			start := 0.0
			for _, p := range t.predAdj[t.predOff[u]:t.predOff[u+1]] {
				if a := t.EFT[p]; a > start {
					start = a
				}
			}
			t.EST[u] = start
			t.EFT[u] = start + t.nodeW[u]
			if t.EFT[u] > t.Makespan {
				t.Makespan = t.EFT[u]
			}
		}
	} else {
		for _, u := range t.order {
			start := 0.0
			for _, p := range g.pred[u] {
				if a := t.EFT[p] + t.edgeW(p, u); a > start {
					start = a
				}
			}
			t.EST[u] = start
			t.EFT[u] = start + t.nodeW[u]
			if t.EFT[u] > t.Makespan {
				t.Makespan = t.EFT[u]
			}
		}
	}
	t.backward(len(t.order) - 1)
}

// backward runs the dense backward pass for positions hi down to 0,
// anchored at the current makespan.
func (t *Timing) backward(hi int) {
	g := t.g
	if t.edgeW == nil {
		mk := t.Makespan
		lst, lft, nodeW := t.LST, t.LFT, t.nodeW
		so, sa := t.succOff, t.succAdj
		order := t.order
		for k := hi; k >= 0; k-- {
			u := order[k]
			finish := mk
			for _, s := range sa[so[u]:so[u+1]] {
				if d := lst[s]; d < finish {
					finish = d
				}
			}
			lft[u] = finish
			lst[u] = finish - nodeW[u]
		}
		return
	}
	for k := hi; k >= 0; k-- {
		u := t.order[k]
		finish := t.Makespan
		for _, s := range g.succ[u] {
			if d := t.LST[s] - t.edgeW(u, s); d < finish {
				finish = d
			}
		}
		t.LFT[u] = finish
		t.LST[u] = finish - t.nodeW[u]
	}
}

// WhatIfMakespan returns the makespan the DAG would have if node i had
// weight w, without mutating the Timing and without allocating. It is the
// trial-move primitive of the makespan-aware schedulers (GAIN2, LOSS2,
// DeadlineLoss): one call costs a forward re-relaxation of the topo-order
// suffix from i instead of a full fresh Timing.
//
// medcc:allocfree
// medcc:floateq-exact — dirty propagation mirrors relaxFwdZero and must use
// bit-exact comparison for the same reason.
func (t *Timing) WhatIfMakespan(i int, w float64) float64 {
	if t.nodeW[i] == w {
		return t.Makespan
	}
	p := t.pos[i]
	t.epoch++
	t.fdirty[i] = t.epoch
	mk := 0.0
	for _, u := range t.order[:p] {
		if t.EFT[u] > mk {
			mk = t.EFT[u]
		}
	}
	for _, u := range t.order[p:] {
		if t.fdirty[u] != t.epoch {
			// Unaffected by the hypothetical change: its EFT stands.
			if t.EFT[u] > mk {
				mk = t.EFT[u]
			}
			continue
		}
		start := 0.0
		for _, q := range t.predAdj[t.predOff[u]:t.predOff[u+1]] {
			f := t.EFT[q]
			if t.fdirty[q] == t.epoch {
				f = t.scratch[q]
			}
			if a := f + t.ew(int(q), u); a > start {
				start = a
			}
		}
		nw := t.nodeW[u]
		if u == i {
			nw = w
		}
		v := start + nw
		t.scratch[u] = v
		if v != t.EFT[u] {
			for _, s := range t.succAdj[t.succOff[u]:t.succOff[u+1]] {
				t.fdirty[s] = t.epoch
			}
		}
		if v > mk {
			mk = v
		}
	}
	return mk
}

func (t *Timing) ew(u, v int) float64 {
	if t.edgeW == nil {
		return 0
	}
	return t.edgeW(u, v)
}

// Slack returns the buffer time of node i: the amount its execution can be
// delayed without affecting the end-to-end delay (LST - EST == LFT - EFT).
func (t *Timing) Slack(i int) float64 { return t.LST[i] - t.EST[i] }

// IsCritical reports whether node i has zero buffer time.
func (t *Timing) IsCritical(i int) bool { return t.Slack(i) <= Eps }

// CriticalNodes returns all zero-slack nodes in topological order.
func (t *Timing) CriticalNodes() []int {
	var out []int
	for _, u := range t.order {
		if t.IsCritical(u) {
			out = append(out, u)
		}
	}
	return out
}

// CriticalPath returns one longest (time-weighted) source-to-sink path in
// topological order. When several critical paths exist, the one following
// the lowest-index critical predecessor at each step is returned, so the
// result is deterministic.
func (t *Timing) CriticalPath() []int {
	g := t.g
	// Find a critical sink: EFT == makespan.
	end := -1
	for _, u := range t.order {
		if math.Abs(t.EFT[u]-t.Makespan) <= Eps {
			end = u
			break
		}
	}
	if end == -1 {
		return nil
	}
	// Walk backwards along tight edges: pred p is on the path if
	// EFT[p] + w(p,u) == EST[u] and p itself is critical.
	path := []int{end}
	u := end
	for t.EST[u] > Eps {
		next := -1
		for _, p := range g.Pred(u) {
			if math.Abs(t.EFT[p]+t.ew(p, u)-t.EST[u]) <= Eps && t.IsCritical(p) {
				if next == -1 || p < next {
					next = p
				}
			}
		}
		if next == -1 {
			break
		}
		path = append(path, next)
		u = next
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// LongestPathLen returns the makespan (length of the critical path). It is
// provided for call sites where the intent is graph-theoretic rather than
// scheduling-oriented.
func (t *Timing) LongestPathLen() float64 { return t.Makespan }
