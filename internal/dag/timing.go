package dag

import (
	"fmt"
	"math"
)

// Eps is the tolerance used when comparing floating-point times for
// criticality decisions. Workflow times in this module are sums of short
// chains of divisions, so 1e-9 is comfortably below any meaningful
// difference and above accumulated rounding error.
const Eps = 1e-9

// EdgeWeight returns the weight (transfer time) of edge u -> v. A nil
// EdgeWeight is treated as uniformly zero, which matches the paper's
// single-datacenter model where intra-cloud transfer time is negligible.
type EdgeWeight func(u, v int) float64

// Timing holds the result of the forward/backward scheduling passes over a
// weighted DAG: the classical earliest start/finish times of every node
// plus the anchor-free tail lengths, from which makespan, latest times,
// slack, and critical paths are derived.
//
// A Timing is bound to the graph structure it was created with; it may be
// refreshed in place with Update (all weights) or UpdateNode (one weight)
// without re-running the topological sort or allocating, which is what the
// greedy schedulers lean on: each of their iterations changes exactly one
// module's execution time.
//
// The backward state is the Tail array rather than materialized LST/LFT:
// Tail[u] is anchored at the sinks, not at the makespan, so a makespan
// shift no longer invalidates the whole backward pass — the incremental
// update only re-relaxes nodes whose longest downstream path actually
// changed. LST/LFT/Slack are derived on demand from (Makespan, Tail, EFT).
type Timing struct {
	g *Graph

	// EST and EFT are the earliest start/finish times from the forward
	// pass. Tail[u] is the longest path length from u's finish to the
	// overall end (0 at sinks): the backward pass re-anchored at the
	// sinks instead of the makespan.
	EST, EFT, Tail []float64

	// Makespan is the end-to-end delay: max EFT over all nodes.
	Makespan float64

	order []int // shared with the graph's topo cache; read-only
	pos   []int // pos[u] = index of u in order; read-only
	nodeW []float64
	edgeW EdgeWeight

	// CSR adjacency shared with the graph's cache; read-only. The hot
	// relaxation loops iterate these flat arrays instead of g.pred/g.succ.
	predOff, predAdj []int32
	succOff, succAdj []int32

	scratch []float64 // hypothetical EFT buffer for WhatIfMakespan

	// fdirty/bdirty mark, per epoch, the nodes whose forward (EFT) or
	// backward (Tail) values may move during an incremental pass; nodes
	// not marked provably recompute to bit-identical values and are
	// skipped. Epoch tagging makes clearing free: a new pass just
	// increments epoch.
	fdirty, bdirty []int
	epoch          int

	// sinks lists the nodes with no successors. With zero edge weights EFT
	// is monotone along every edge, so the makespan rescan after an
	// incremental update only needs to look at these.
	sinks []int32

	// trk, when non-nil, collects the ids of nodes whose EFT or Tail
	// changed during the current incremental pass (the changed-set API of
	// UpdateNodeTracked). It aliases the caller's buffer.
	trk []int32
}

// NewTiming runs the forward and backward passes over g with the given node
// weights (execution times) and edge weights (transfer times, nil for all
// zero). It returns an error if g is cyclic, if len(nodeW) != g.NumNodes(),
// or if any weight is negative or non-finite. The Timing aliases nodeW;
// callers that mutate it must follow up with Update or UpdateNode.
//
// medcc:coldpath — construction allocates by design; steady-state refresh
// goes through Update/UpdateNode.
func NewTiming(g *Graph, nodeW []float64, edgeW EdgeWeight) (*Timing, error) {
	n := g.NumNodes()
	if err := checkWeights(nodeW, n); err != nil {
		return nil, err
	}
	order, pos, err := g.topoShared()
	if err != nil {
		return nil, err
	}
	t := &Timing{
		g:       g,
		EST:     make([]float64, n),
		EFT:     make([]float64, n),
		Tail:    make([]float64, n),
		order:   order,
		pos:     pos,
		nodeW:   nodeW,
		edgeW:   edgeW,
		predOff: g.predOff,
		predAdj: g.predAdj,
		succOff: g.succOff,
		succAdj: g.succAdj,
		scratch: make([]float64, n),
		fdirty:  make([]int, n),
		bdirty:  make([]int, n),
	}
	if edgeW == nil {
		// With zero transfer times the relaxations over the transitive
		// reduction produce bit-identical EST/EFT/Tail (see buildReducedCSR),
		// at a fraction of the edge work on dense graphs.
		t.predOff, t.predAdj = g.redPredOff, g.redPredAdj
		t.succOff, t.succAdj = g.redSuccOff, g.redSuccAdj
	}
	for u := 0; u < n; u++ {
		if t.succOff[u] == t.succOff[u+1] {
			t.sinks = append(t.sinks, int32(u))
		}
	}
	t.run()
	return t, nil
}

func checkWeights(nodeW []float64, n int) error {
	if len(nodeW) != n {
		return fmt.Errorf("dag: %d node weights for %d nodes", len(nodeW), n)
	}
	for i, w := range nodeW {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("dag: invalid weight %v on node %d", w, i)
		}
	}
	return nil
}

// Update replaces the node weights and recomputes all times in place with
// zero allocations. nodeW is validated like in NewTiming and aliased by the
// Timing afterwards; passing the slice the Timing already holds (after
// mutating it) is the intended steady-state use.
//
// medcc:allocfree
func (t *Timing) Update(nodeW []float64) error {
	if err := checkWeights(nodeW, t.g.NumNodes()); err != nil {
		return err
	}
	t.nodeW = nodeW
	t.run()
	return nil
}

// UpdateNode sets the weight of node i to w and incrementally recomputes
// the times, allocation-free. Nodes before i's topological position keep
// their EST/EFT (they cannot reach i); within the suffix, only nodes whose
// start time can actually move are re-relaxed: a moved EFT marks a
// successor only when it was, or now is, at least the successor's start
// time, so a change that stays below the dominating predecessor is
// absorbed on the spot. The backward pass mirrors this over the prefix for
// the Tail lengths — and because Tail is anchored at the sinks rather than
// the makespan, a makespan shift triggers no dense re-pass at all. Skipped
// nodes would recompute to bit-identical values, so the result is exactly
// that of a fresh pass.
//
// w must be non-negative and finite, as enforced by NewTiming/Update for
// whole slices; UpdateNode is the per-iteration hot path and does not
// re-validate.
//
// medcc:allocfree
// medcc:floateq-exact — the no-op check and all moved/absorbed checks must
// be bit-exact: epsilon slop would skip re-relaxations whose exact results
// differ, breaking the "identical to a fresh pass" contract.
func (t *Timing) UpdateNode(i int, w float64) {
	t.trk = nil
	t.updateNode(i, w)
}

// UpdateNodeTracked is UpdateNode plus change reporting for incremental
// candidate maintenance: ids of nodes whose EFT or Tail changed are
// appended to buf (a node may appear twice when both moved), and the
// returned flag reports whether the makespan moved. When the makespan is
// unchanged, a node's slack can only have moved if the node is in the
// changed set — that is the contract engine-level candidate caches key
// their re-evaluation on. When the makespan moved, every node's slack
// shifts and callers must rescan criticality themselves.
//
// medcc:allocfree — appends stay within buf's capacity once the caller's
// buffer has grown to the high-water mark.
func (t *Timing) UpdateNodeTracked(i int, w float64, buf []int32) (changed []int32, mkChanged bool) {
	if buf == nil {
		// A nil trk field means "not tracking" to the relax loops, so the
		// first call with a fresh buffer must seed a real (if empty) slice;
		// steady-state callers pass the returned buffer back in.
		buf = make([]int32, 0, 8) // medcc:lint-ignore allocfree — one-time seed for a nil buffer; steady state reuses the returned buffer

	}
	t.trk = buf[:0]
	mkChanged = t.updateNode(i, w)
	changed = t.trk
	t.trk = nil
	return changed, mkChanged
}

// updateNode is the shared body of UpdateNode/UpdateNodeTracked.
//
// medcc:allocfree
// medcc:floateq-exact — the no-op and makespan-anchor checks must be
// bit-exact; see UpdateNode.
func (t *Timing) updateNode(i int, w float64) (mkChanged bool) {
	if t.nodeW[i] == w {
		return false
	}
	wOld := t.nodeW[i]
	t.nodeW[i] = w
	p := t.pos[i]
	t.epoch++
	t.fdirty[i] = t.epoch
	if t.edgeW == nil {
		t.relaxFwdZero(p)
	} else {
		t.relaxFwd(p)
	}
	old := t.Makespan
	mk := 0.0
	if t.edgeW == nil {
		// Zero edge weights keep EFT monotone along edges, so the max is
		// attained at a sink.
		for _, u := range t.sinks {
			if f := t.EFT[u]; f > mk {
				mk = f
			}
		}
	} else {
		for _, f := range t.EFT {
			if f > mk {
				mk = f
			}
		}
	}
	t.Makespan = mk
	// Backward: node i's own Tail only depends on downstream weights, but
	// its contribution w + Tail[i] to each predecessor changed. Seed the
	// dirty set with the predecessors the old or new contribution could
	// dominate and re-relax the prefix.
	t.seedTail(i, wOld, w)
	t.relaxTail(p - 1)
	return mk != old
}

// seedTail marks the predecessors of i whose Tail can move after i's
// weight changed from wOld to wNew.
//
// medcc:floateq-exact — see relaxFwdZero.
func (t *Timing) seedTail(i int, wOld, wNew float64) {
	ep := t.epoch
	tail, bdirty := t.Tail, t.bdirty
	ti := tail[i]
	if t.edgeW == nil {
		cOld := wOld + ti
		cNew := wNew + ti
		for _, q := range t.predAdj[t.predOff[i]:t.predOff[i+1]] {
			if cOld < tail[q] && cNew < tail[q] {
				continue // absorbed: i neither was nor becomes q's argmax
			}
			bdirty[q] = ep
		}
		return
	}
	for _, q := range t.predAdj[t.predOff[i]:t.predOff[i+1]] {
		e := t.edgeW(int(q), i)
		if e+wOld+ti < tail[q] && e+wNew+ti < tail[q] {
			continue
		}
		bdirty[q] = ep
	}
}

// relaxFwdZero is the forward re-relaxation of order[p:] for the common
// zero-edge-weight case; relaxFwd is its general twin. Only nodes marked
// dirty in the current epoch are recomputed, and a node's successors are
// marked only when its EFT moved in a way the successor could see: the old
// or new finish time reaches the successor's start time. Changes absorbed
// below the dominating predecessor propagate no further.
//
// medcc:floateq-exact — "moved" means bit-exact inequality; skipped nodes
// must recompute to identical values.
func (t *Timing) relaxFwdZero(p int) {
	// Everything is hoisted into locals: the loop stores through slices, so
	// without locals the compiler reloads each field every iteration.
	ep := t.epoch
	fdirty, est, eft, nodeW := t.fdirty, t.EST, t.EFT, t.nodeW
	po, pa := t.predOff, t.predAdj
	so, sa := t.succOff, t.succAdj
	trk := t.trk
	for _, u := range t.order[p:] {
		if fdirty[u] != ep {
			continue
		}
		start := 0.0
		for _, q := range pa[po[u]:po[u+1]] {
			if a := eft[q]; a > start {
				start = a
			}
		}
		est[u] = start
		if f := start + nodeW[u]; f != eft[u] {
			fOld := eft[u]
			eft[u] = f
			if trk != nil {
				trk = append(trk, int32(u))
			}
			for _, v := range sa[so[u]:so[u+1]] {
				if fOld < est[v] && f < est[v] {
					continue // absorbed below v's dominating predecessor
				}
				fdirty[v] = ep
			}
		}
	}
	if trk != nil {
		t.trk = trk
	}
}

// medcc:floateq-exact — see relaxFwdZero.
func (t *Timing) relaxFwd(p int) {
	ep := t.epoch
	trk := t.trk
	for _, u := range t.order[p:] {
		if t.fdirty[u] != ep {
			continue
		}
		start := 0.0
		for _, q := range t.predAdj[t.predOff[u]:t.predOff[u+1]] {
			if a := t.EFT[q] + t.edgeW(int(q), u); a > start {
				start = a
			}
		}
		t.EST[u] = start
		if f := start + t.nodeW[u]; f != t.EFT[u] {
			fOld := t.EFT[u]
			t.EFT[u] = f
			if trk != nil {
				trk = append(trk, int32(u))
			}
			for _, v := range t.succAdj[t.succOff[u]:t.succOff[u+1]] {
				e := t.edgeW(u, int(v))
				if fOld+e < t.EST[v] && f+e < t.EST[v] {
					continue
				}
				t.fdirty[v] = ep
			}
		}
	}
	if trk != nil {
		t.trk = trk
	}
}

// relaxTail re-relaxes the Tail lengths for positions hi down to 0,
// recomputing a node only when marked dirty (a successor's contribution
// moved across its Tail); its predecessors are marked in turn only when
// the recomputed Tail differs and the contribution could dominate.
// Skipped nodes would recompute to bit-identical values.
//
// medcc:floateq-exact — see relaxFwdZero.
func (t *Timing) relaxTail(hi int) {
	ep := t.epoch
	if t.edgeW == nil {
		bdirty, tail, nodeW := t.bdirty, t.Tail, t.nodeW
		po, pa := t.predOff, t.predAdj
		so, sa := t.succOff, t.succAdj
		order := t.order
		trk := t.trk
		for k := hi; k >= 0; k-- {
			u := order[k]
			if bdirty[u] != ep {
				continue
			}
			mx := 0.0
			for _, s := range sa[so[u]:so[u+1]] {
				if c := nodeW[s] + tail[s]; c > mx {
					mx = c
				}
			}
			if mx != tail[u] {
				cOld := nodeW[u] + tail[u]
				tail[u] = mx
				cNew := nodeW[u] + mx
				if trk != nil {
					trk = append(trk, int32(u))
				}
				for _, q := range pa[po[u]:po[u+1]] {
					if cOld < tail[q] && cNew < tail[q] {
						continue
					}
					bdirty[q] = ep
				}
			}
		}
		if trk != nil {
			t.trk = trk
		}
		return
	}
	trk := t.trk
	for k := hi; k >= 0; k-- {
		u := t.order[k]
		if t.bdirty[u] != ep {
			continue
		}
		mx := 0.0
		for _, s := range t.succAdj[t.succOff[u]:t.succOff[u+1]] {
			if c := t.edgeW(u, int(s)) + t.nodeW[s] + t.Tail[s]; c > mx {
				mx = c
			}
		}
		if mx != t.Tail[u] {
			tOld := t.Tail[u]
			t.Tail[u] = mx
			if trk != nil {
				trk = append(trk, int32(u))
			}
			for _, q := range t.predAdj[t.predOff[u]:t.predOff[u+1]] {
				e := t.edgeW(int(q), u)
				if e+t.nodeW[u]+tOld < t.Tail[q] && e+t.nodeW[u]+mx < t.Tail[q] {
					continue
				}
				t.bdirty[q] = ep
			}
		}
	}
	if trk != nil {
		t.trk = trk
	}
}

// run executes the full forward and backward passes.
func (t *Timing) run() {
	g := t.g
	t.Makespan = 0
	// Forward pass: a module cannot start until all input data arrive,
	// and a dependency edge cannot start transfer until its source
	// finishes (the paper's precedence constraints).
	if t.edgeW == nil {
		for _, u := range t.order {
			start := 0.0
			for _, p := range t.predAdj[t.predOff[u]:t.predOff[u+1]] {
				if a := t.EFT[p]; a > start {
					start = a
				}
			}
			t.EST[u] = start
			t.EFT[u] = start + t.nodeW[u]
			if t.EFT[u] > t.Makespan {
				t.Makespan = t.EFT[u]
			}
		}
	} else {
		for _, u := range t.order {
			start := 0.0
			for _, p := range g.pred[u] {
				if a := t.EFT[p] + t.edgeW(p, u); a > start {
					start = a
				}
			}
			t.EST[u] = start
			t.EFT[u] = start + t.nodeW[u]
			if t.EFT[u] > t.Makespan {
				t.Makespan = t.EFT[u]
			}
		}
	}
	t.tailDense()
}

// tailDense runs the dense backward pass filling Tail for every node.
func (t *Timing) tailDense() {
	if t.edgeW == nil {
		tail, nodeW := t.Tail, t.nodeW
		so, sa := t.succOff, t.succAdj
		order := t.order
		for k := len(order) - 1; k >= 0; k-- {
			u := order[k]
			mx := 0.0
			for _, s := range sa[so[u]:so[u+1]] {
				if c := nodeW[s] + tail[s]; c > mx {
					mx = c
				}
			}
			tail[u] = mx
		}
		return
	}
	for k := len(t.order) - 1; k >= 0; k-- {
		u := t.order[k]
		mx := 0.0
		for _, s := range t.succAdj[t.succOff[u]:t.succOff[u+1]] {
			if c := t.edgeW(u, int(s)) + t.nodeW[s] + t.Tail[s]; c > mx {
				mx = c
			}
		}
		t.Tail[u] = mx
	}
}

// WhatIfMakespan returns the makespan the DAG would have if node i had
// weight w, without mutating the Timing and without allocating. It is the
// trial-move primitive of the makespan-aware schedulers (GAIN2, LOSS2,
// DeadlineLoss): one call costs a forward re-relaxation of the affected
// part of the topo-order suffix from i instead of a full fresh Timing.
//
// medcc:allocfree
// medcc:floateq-exact — dirty propagation mirrors relaxFwdZero and must use
// bit-exact comparison for the same reason.
func (t *Timing) WhatIfMakespan(i int, w float64) float64 {
	if t.nodeW[i] == w {
		return t.Makespan
	}
	p := t.pos[i]
	t.epoch++
	t.fdirty[i] = t.epoch
	if t.edgeW == nil {
		ep := t.epoch
		fdirty, est, eft, nodeW := t.fdirty, t.EST, t.EFT, t.nodeW
		po, pa := t.predOff, t.predAdj
		so, sa := t.succOff, t.succAdj
		scratch := t.scratch
		for _, u := range t.order[p:] {
			if fdirty[u] != ep {
				continue
			}
			start := 0.0
			for _, q := range pa[po[u]:po[u+1]] {
				f := eft[q]
				if fdirty[q] == ep {
					f = scratch[q]
				}
				if f > start {
					start = f
				}
			}
			nw := nodeW[u]
			if u == i {
				nw = w
			}
			v := start + nw
			scratch[u] = v
			if v != eft[u] {
				for _, s := range sa[so[u]:so[u+1]] {
					if eft[u] < est[s] && v < est[s] {
						continue // absorbed below s's dominating predecessor
					}
					fdirty[s] = ep
				}
			}
		}
		// Zero edge weights keep the hypothetical EFT monotone along
		// edges, so the max is attained at a sink.
		mk := 0.0
		for _, u := range t.sinks {
			f := eft[u]
			if fdirty[u] == ep {
				f = scratch[u]
			}
			if f > mk {
				mk = f
			}
		}
		return mk
	}
	mk := 0.0
	for _, u := range t.order[:p] {
		if t.EFT[u] > mk {
			mk = t.EFT[u]
		}
	}
	for _, u := range t.order[p:] {
		if t.fdirty[u] != t.epoch {
			// Unaffected by the hypothetical change: its EFT stands.
			if t.EFT[u] > mk {
				mk = t.EFT[u]
			}
			continue
		}
		start := 0.0
		for _, q := range t.predAdj[t.predOff[u]:t.predOff[u+1]] {
			f := t.EFT[q]
			if t.fdirty[q] == t.epoch {
				f = t.scratch[q]
			}
			if a := f + t.ew(int(q), u); a > start {
				start = a
			}
		}
		nw := t.nodeW[u]
		if u == i {
			nw = w
		}
		v := start + nw
		t.scratch[u] = v
		if v != t.EFT[u] {
			for _, s := range t.succAdj[t.succOff[u]:t.succOff[u+1]] {
				t.fdirty[s] = t.epoch
			}
		}
		if v > mk {
			mk = v
		}
	}
	return mk
}

func (t *Timing) ew(u, v int) float64 {
	if t.edgeW == nil {
		return 0
	}
	return t.edgeW(u, v)
}

// LFT returns the latest finish time of node i against the current
// makespan anchor: Makespan - Tail[i].
func (t *Timing) LFT(i int) float64 { return t.Makespan - t.Tail[i] }

// LST returns the latest start time of node i: LFT(i) minus its weight.
func (t *Timing) LST(i int) float64 { return t.Makespan - t.Tail[i] - t.nodeW[i] }

// Slack returns the buffer time of node i: the amount its execution can be
// delayed without affecting the end-to-end delay. It is evaluated as
// (Makespan - Tail[i]) - EFT[i]; all criticality decisions in this repo
// derive from this one expression so they agree bit-for-bit.
func (t *Timing) Slack(i int) float64 { return t.Makespan - t.Tail[i] - t.EFT[i] }

// IsCritical reports whether node i has zero buffer time.
func (t *Timing) IsCritical(i int) bool { return t.Slack(i) <= Eps }

// CriticalNodes returns all zero-slack nodes in topological order.
func (t *Timing) CriticalNodes() []int {
	var out []int
	for _, u := range t.order {
		if t.IsCritical(u) {
			out = append(out, u)
		}
	}
	return out
}

// CriticalPath returns one longest (time-weighted) source-to-sink path in
// topological order. When several critical paths exist, the one following
// the lowest-index critical predecessor at each step is returned, so the
// result is deterministic.
func (t *Timing) CriticalPath() []int {
	g := t.g
	// Find a critical sink: EFT == makespan.
	end := -1
	for _, u := range t.order {
		if math.Abs(t.EFT[u]-t.Makespan) <= Eps {
			end = u
			break
		}
	}
	if end == -1 {
		return nil
	}
	// Walk backwards along tight edges: pred p is on the path if
	// EFT[p] + w(p,u) == EST[u] and p itself is critical.
	path := []int{end}
	u := end
	for t.EST[u] > Eps {
		next := -1
		for _, p := range g.Pred(u) {
			if math.Abs(t.EFT[p]+t.ew(p, u)-t.EST[u]) <= Eps && t.IsCritical(p) {
				if next == -1 || p < next {
					next = p
				}
			}
		}
		if next == -1 {
			break
		}
		path = append(path, next)
		u = next
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// LongestPathLen returns the makespan (length of the critical path). It is
// provided for call sites where the intent is graph-theoretic rather than
// scheduling-oriented.
func (t *Timing) LongestPathLen() float64 { return t.Makespan }
