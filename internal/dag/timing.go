package dag

import (
	"fmt"
	"math"
)

// Eps is the tolerance used when comparing floating-point times for
// criticality decisions. Workflow times in this module are sums of short
// chains of divisions, so 1e-9 is comfortably below any meaningful
// difference and above accumulated rounding error.
const Eps = 1e-9

// EdgeWeight returns the weight (transfer time) of edge u -> v. A nil
// EdgeWeight is treated as uniformly zero, which matches the paper's
// single-datacenter model where intra-cloud transfer time is negligible.
type EdgeWeight func(u, v int) float64

// Timing holds the result of the forward/backward scheduling passes over a
// weighted DAG: the classical earliest/latest start and finish times of
// every node, from which makespan, slack, and critical paths are derived.
type Timing struct {
	g *Graph

	// EST and EFT are the earliest start/finish times from the forward
	// pass; LST and LFT the latest start/finish times from the backward
	// pass anchored at the makespan.
	EST, EFT, LST, LFT []float64

	// Makespan is the end-to-end delay: max EFT over all nodes.
	Makespan float64

	order []int
	nodeW []float64
	edgeW EdgeWeight
}

// NewTiming runs the forward and backward passes over g with the given node
// weights (execution times) and edge weights (transfer times, nil for all
// zero). It returns an error if g is cyclic, if len(nodeW) != g.NumNodes(),
// or if any weight is negative or non-finite.
func NewTiming(g *Graph, nodeW []float64, edgeW EdgeWeight) (*Timing, error) {
	n := g.NumNodes()
	if len(nodeW) != n {
		return nil, fmt.Errorf("dag: %d node weights for %d nodes", len(nodeW), n)
	}
	for i, w := range nodeW {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dag: invalid weight %v on node %d", w, i)
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	t := &Timing{
		g:     g,
		EST:   make([]float64, n),
		EFT:   make([]float64, n),
		LST:   make([]float64, n),
		LFT:   make([]float64, n),
		order: order,
		nodeW: nodeW,
		edgeW: edgeW,
	}
	t.run()
	return t, nil
}

func (t *Timing) ew(u, v int) float64 {
	if t.edgeW == nil {
		return 0
	}
	return t.edgeW(u, v)
}

func (t *Timing) run() {
	g := t.g
	// Forward pass: a module cannot start until all input data arrive,
	// and a dependency edge cannot start transfer until its source
	// finishes (the paper's precedence constraints).
	for _, u := range t.order {
		start := 0.0
		for _, p := range g.Pred(u) {
			if a := t.EFT[p] + t.ew(p, u); a > start {
				start = a
			}
		}
		t.EST[u] = start
		t.EFT[u] = start + t.nodeW[u]
		if t.EFT[u] > t.Makespan {
			t.Makespan = t.EFT[u]
		}
	}
	// Backward pass anchored at the makespan.
	for i := len(t.order) - 1; i >= 0; i-- {
		u := t.order[i]
		finish := t.Makespan
		for _, s := range g.Succ(u) {
			if d := t.LST[s] - t.ew(u, s); d < finish {
				finish = d
			}
		}
		t.LFT[u] = finish
		t.LST[u] = finish - t.nodeW[u]
	}
}

// Slack returns the buffer time of node i: the amount its execution can be
// delayed without affecting the end-to-end delay (LST - EST == LFT - EFT).
func (t *Timing) Slack(i int) float64 { return t.LST[i] - t.EST[i] }

// IsCritical reports whether node i has zero buffer time.
func (t *Timing) IsCritical(i int) bool { return t.Slack(i) <= Eps }

// CriticalNodes returns all zero-slack nodes in topological order.
func (t *Timing) CriticalNodes() []int {
	var out []int
	for _, u := range t.order {
		if t.IsCritical(u) {
			out = append(out, u)
		}
	}
	return out
}

// CriticalPath returns one longest (time-weighted) source-to-sink path in
// topological order. When several critical paths exist, the one following
// the lowest-index critical predecessor at each step is returned, so the
// result is deterministic.
func (t *Timing) CriticalPath() []int {
	g := t.g
	// Find a critical sink: EFT == makespan.
	end := -1
	for _, u := range t.order {
		if math.Abs(t.EFT[u]-t.Makespan) <= Eps {
			end = u
			break
		}
	}
	if end == -1 {
		return nil
	}
	// Walk backwards along tight edges: pred p is on the path if
	// EFT[p] + w(p,u) == EST[u] and p itself is critical.
	path := []int{end}
	u := end
	for t.EST[u] > Eps {
		next := -1
		for _, p := range g.Pred(u) {
			if math.Abs(t.EFT[p]+t.ew(p, u)-t.EST[u]) <= Eps && t.IsCritical(p) {
				if next == -1 || p < next {
					next = p
				}
			}
		}
		if next == -1 {
			break
		}
		path = append(path, next)
		u = next
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// LongestPathLen returns the makespan (length of the critical path). It is
// provided for call sites where the intent is graph-theoretic rather than
// scheduling-oriented.
func (t *Timing) LongestPathLen() float64 { return t.Makespan }
