package dag

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestTimingChain(t *testing.T) {
	g := New()
	g.AddNodes(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	tm, err := NewTiming(g, []float64{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.Makespan, 6) {
		t.Fatalf("makespan = %v, want 6", tm.Makespan)
	}
	wantEST := []float64{0, 1, 3}
	wantEFT := []float64{1, 3, 6}
	for i := range wantEST {
		if !almostEq(tm.EST[i], wantEST[i]) || !almostEq(tm.EFT[i], wantEFT[i]) {
			t.Fatalf("node %d: EST/EFT = %v/%v, want %v/%v", i, tm.EST[i], tm.EFT[i], wantEST[i], wantEFT[i])
		}
		if !almostEq(tm.Slack(i), 0) {
			t.Fatalf("chain node %d has slack %v", i, tm.Slack(i))
		}
	}
}

func TestTimingDiamondSlack(t *testing.T) {
	g := New()
	g.AddNodes(4)
	g.MustEdge(0, 1)
	g.MustEdge(0, 2)
	g.MustEdge(1, 3)
	g.MustEdge(2, 3)
	// Branch via node 1 takes 5, via node 2 takes 2: node 2 has slack 3.
	tm, err := NewTiming(g, []float64{1, 5, 2, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.Makespan, 7) {
		t.Fatalf("makespan = %v, want 7", tm.Makespan)
	}
	if !almostEq(tm.Slack(2), 3) {
		t.Fatalf("slack(2) = %v, want 3", tm.Slack(2))
	}
	if tm.IsCritical(2) {
		t.Fatal("node 2 wrongly critical")
	}
	for _, i := range []int{0, 1, 3} {
		if !tm.IsCritical(i) {
			t.Fatalf("node %d should be critical", i)
		}
	}
	if cp := tm.CriticalPath(); !reflect.DeepEqual(cp, []int{0, 1, 3}) {
		t.Fatalf("critical path = %v", cp)
	}
	if cn := tm.CriticalNodes(); !reflect.DeepEqual(cn, []int{0, 1, 3}) {
		t.Fatalf("critical nodes = %v", cn)
	}
}

func TestTimingEdgeWeights(t *testing.T) {
	g := New()
	g.AddNodes(3)
	g.MustEdge(0, 1)
	g.MustEdge(0, 2)
	// Transfer 0->2 takes 10, making the lighter branch critical.
	ew := func(u, v int) float64 {
		if u == 0 && v == 2 {
			return 10
		}
		return 0
	}
	tm, err := NewTiming(g, []float64{1, 5, 1}, ew)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.Makespan, 12) {
		t.Fatalf("makespan = %v, want 12", tm.Makespan)
	}
	if !tm.IsCritical(2) || tm.IsCritical(1) {
		t.Fatal("transfer delay did not shift the critical path")
	}
	if !almostEq(tm.EST[2], 11) {
		t.Fatalf("EST[2] = %v, want 11", tm.EST[2])
	}
}

func TestTimingParallelSources(t *testing.T) {
	g := New()
	g.AddNodes(3)
	g.MustEdge(0, 2)
	g.MustEdge(1, 2)
	tm, err := NewTiming(g, []float64{4, 9, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.Makespan, 10) {
		t.Fatalf("makespan = %v, want 10", tm.Makespan)
	}
	if !almostEq(tm.Slack(0), 5) {
		t.Fatalf("slack(0) = %v, want 5", tm.Slack(0))
	}
}

func TestTimingRejectsBadInput(t *testing.T) {
	g := New()
	g.AddNodes(2)
	g.MustEdge(0, 1)
	if _, err := NewTiming(g, []float64{1}, nil); err == nil {
		t.Fatal("wrong weight count accepted")
	}
	if _, err := NewTiming(g, []float64{1, -2}, nil); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewTiming(g, []float64{1, math.NaN()}, nil); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if _, err := NewTiming(g, []float64{1, math.Inf(1)}, nil); err == nil {
		t.Fatal("Inf weight accepted")
	}
	cyc := New()
	cyc.AddNodes(2)
	cyc.MustEdge(0, 1)
	cyc.MustEdge(1, 0)
	if _, err := NewTiming(cyc, []float64{1, 1}, nil); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestTimingSingleNode(t *testing.T) {
	g := New()
	g.AddNodes(1)
	tm, err := NewTiming(g, []float64{3.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.Makespan, 3.5) || !tm.IsCritical(0) {
		t.Fatal("single node timing wrong")
	}
	if cp := tm.CriticalPath(); !reflect.DeepEqual(cp, []int{0}) {
		t.Fatalf("critical path = %v", cp)
	}
}

func TestTimingZeroWeights(t *testing.T) {
	g := New()
	g.AddNodes(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	tm, err := NewTiming(g, []float64{0, 0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tm.Makespan, 0) {
		t.Fatalf("makespan = %v, want 0", tm.Makespan)
	}
	for i := 0; i < 3; i++ {
		if !tm.IsCritical(i) {
			t.Fatalf("node %d not critical in zero-weight chain", i)
		}
	}
}

// Properties over random weighted DAGs.
func TestTimingPropertiesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng, 3+rng.Intn(20), rng.Intn(60))
		w := make([]float64, g.NumNodes())
		for i := range w {
			w[i] = rng.Float64() * 10
		}
		tm, err := NewTiming(g, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.NumNodes(); i++ {
			// EST <= LST, EFT <= LFT, finish-start == weight.
			if tm.EST[i] > tm.LST(i)+Eps || tm.EFT[i] > tm.LFT(i)+Eps {
				t.Fatalf("trial %d node %d: earliest after latest", trial, i)
			}
			if !almostEq(tm.EFT[i]-tm.EST[i], w[i]) || !almostEq(tm.LFT(i)-tm.LST(i), w[i]) {
				t.Fatalf("trial %d node %d: duration mismatch", trial, i)
			}
			if tm.EFT[i] > tm.Makespan+Eps {
				t.Fatalf("trial %d node %d: EFT beyond makespan", trial, i)
			}
			// Precedence feasibility.
			for _, v := range g.Succ(i) {
				if tm.EST[v] < tm.EFT[i]-Eps {
					t.Fatalf("trial %d: succ %d starts before pred %d ends", trial, v, i)
				}
			}
		}
		// The critical path length must equal the makespan and its nodes
		// must be consecutive-by-edges and all critical.
		cp := tm.CriticalPath()
		sum := 0.0
		for k, u := range cp {
			sum += w[u]
			if !tm.IsCritical(u) {
				t.Fatalf("trial %d: non-critical node %d on critical path", trial, u)
			}
			if k > 0 && !g.HasEdge(cp[k-1], u) {
				t.Fatalf("trial %d: critical path not edge-connected", trial)
			}
		}
		if !almostEq(sum, tm.Makespan) {
			t.Fatalf("trial %d: critical path length %v != makespan %v", trial, sum, tm.Makespan)
		}
		if !almostEq(tm.LongestPathLen(), tm.Makespan) {
			t.Fatalf("trial %d: LongestPathLen mismatch", trial)
		}
	}
}

func TestTimingMakespanMonotoneInWeights(t *testing.T) {
	// Property: increasing a single node weight never decreases makespan.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		g := randomDAG(rng, 10, 25)
		w := make([]float64, g.NumNodes())
		for i := range w {
			w[i] = rng.Float64() * 5
		}
		base, err := NewTiming(g, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		i := rng.Intn(len(w))
		w2 := append([]float64(nil), w...)
		w2[i] += 1 + rng.Float64()
		bumped, err := NewTiming(g, w2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if bumped.Makespan < base.Makespan-Eps {
			t.Fatalf("trial %d: makespan decreased after weight bump", trial)
		}
		// Bumping a critical node by d must increase makespan... not
		// necessarily by d (another path may dominate), but strictly.
		if base.IsCritical(i) && bumped.Makespan <= base.Makespan+Eps {
			t.Fatalf("trial %d: bumping critical node %d left makespan unchanged", trial, i)
		}
	}
}
