// Package dag provides a directed acyclic graph substrate for workflow
// scheduling: construction, validation, topological ordering, and the
// forward/backward timing passes (EST/EFT/LST/LFT) from which critical
// paths and module slack are derived.
//
// A Graph stores pure structure (nodes and edges). Weights are supplied at
// analysis time, because in budget-constrained scheduling the node weights
// (module execution times) change every time a module is remapped to a
// different VM type while the structure stays fixed.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycle is returned by Validate and TopoOrder when the graph contains a
// directed cycle and is therefore not a DAG.
var ErrCycle = errors.New("dag: graph contains a cycle")

// Graph is a directed graph intended to be acyclic. The zero value is an
// empty graph ready to use. Nodes are dense integer indices assigned by
// AddNode in insertion order; edges are unweighted at the structural level.
type Graph struct {
	names []string
	succ  [][]int
	pred  [][]int
	edges int

	// topo and pos cache the topological order (and each node's position
	// in it) so repeated timing passes skip Kahn's algorithm; both are
	// invalidated by any structural mutation. A Graph is safe for
	// concurrent reads only after the cache has been warmed (any call to
	// TopoOrder or Validate does so), which BuildMatrices guarantees
	// before schedulers run.
	topo []int
	pos  []int

	// predOff/predAdj and succOff/succAdj are flat CSR mirrors of pred and
	// succ (node u's predecessors are predAdj[predOff[u]:predOff[u+1]]),
	// giving the timing hot loops contiguous iteration instead of chasing
	// per-node slice headers. Built lazily alongside the topo cache and
	// invalidated with it.
	predOff, predAdj []int32
	succOff, succAdj []int32

	// redPredOff/redPredAdj and redSuccOff/redSuccAdj are the CSR of the
	// transitive reduction, built alongside the full CSR. Zero-edge-weight
	// timing passes relax over these: with transfer time zero and
	// non-negative node weights, a transitively redundant edge (u,v) can
	// never determine EST[v] or Tail[u] — the path through an intermediate
	// predecessor always contributes at least as much, in float arithmetic
	// too — so dropping such edges leaves every EST/EFT/Tail value
	// bit-identical while shrinking the per-update relaxation work by the
	// graph's edge redundancy (an order of magnitude on the paper's dense
	// random instances).
	redPredOff, redPredAdj []int32
	redSuccOff, redSuccAdj []int32

	// version counts structural mutations (AddNode/AddEdge/Reset), so
	// caches keyed on a *Graph pointer (scheduler engines, pooled
	// builders) can detect that the graph was rebuilt in place behind the
	// same address. It never decreases.
	version uint64
}

// New returns an empty graph. Equivalent to new(Graph); provided for
// symmetry with the rest of the module.
func New() *Graph { return &Graph{} }

// invalidateTopo drops the cached topological order after a structural
// mutation.
func (g *Graph) invalidateTopo() {
	g.topo = nil
	g.pos = nil
	g.predOff, g.predAdj = nil, nil
	g.succOff, g.succAdj = nil, nil
	g.redPredOff, g.redPredAdj = nil, nil
	g.redSuccOff, g.redSuccAdj = nil, nil
	g.version++
}

// Version returns the structural mutation counter: it changes whenever a
// node or edge is added or the graph is Reset. Holders of derived state
// (a Timing, a scheduler engine) compare versions to detect that a graph
// reached through a retained pointer has been rebuilt in place.
func (g *Graph) Version() uint64 { return g.version }

// Reset empties the graph for rebuilding while retaining all allocated
// storage: the node table, the per-node adjacency slices, and the cache
// arrays keep their capacity, so a Graph cycled through Reset/AddNode/
// AddEdge by a pooled generator reaches a steady state with near-zero
// allocations. Any Timing or cached view of the old structure is
// invalidated (see Version).
func (g *Graph) Reset() {
	g.invalidateTopo()
	g.names = g.names[:0]
	// Truncating the outer slices keeps the inner adjacency slices alive
	// in the backing array; AddNode re-adopts them at capacity.
	g.succ = g.succ[:0]
	g.pred = g.pred[:0]
	g.edges = 0
}

// AddNode appends a node with the given display name and returns its index.
func (g *Graph) AddNode(name string) int {
	g.invalidateTopo()
	g.names = append(g.names, name)
	// After a Reset the backing arrays still hold the old per-node
	// adjacency slices; re-adopt them truncated so their capacity is
	// reused instead of appending fresh nil slices.
	if n := len(g.succ); n < cap(g.succ) && n < cap(g.pred) {
		g.succ = g.succ[: n+1 : cap(g.succ)]
		g.succ[n] = g.succ[n][:0]
		g.pred = g.pred[: n+1 : cap(g.pred)]
		g.pred[n] = g.pred[n][:0]
	} else {
		g.succ = append(g.succ, nil)
		g.pred = append(g.pred, nil)
	}
	return len(g.names) - 1
}

// AddNodes appends n anonymous nodes named "w0".."w<n-1>" (offset by the
// current node count) and returns the index of the first one.
func (g *Graph) AddNodes(n int) int {
	first := len(g.names)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("w%d", first+i))
	}
	return first
}

// AddEdge inserts a directed edge u -> v. Self-loops and duplicate edges
// are rejected; out-of-range indices are an error. Cycles are not detected
// here (that is Validate's job) so construction stays O(1) amortized.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.names) || v < 0 || v >= len(g.names) {
		return fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", u, v, len(g.names))
	}
	if u == v {
		return fmt.Errorf("dag: self-loop on node %d", u)
	}
	for _, s := range g.succ[u] {
		if s == v {
			return fmt.Errorf("dag: duplicate edge (%d,%d)", u, v)
		}
	}
	g.invalidateTopo()
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	g.edges++
	return nil
}

// MustEdge is AddEdge that panics on error; for hand-built test fixtures.
func (g *Graph) MustEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the directed edge u -> v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.names) {
		return false
	}
	for _, s := range g.succ[u] {
		if s == v {
			return true
		}
	}
	return false
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Name returns the display name of node i.
func (g *Graph) Name(i int) string { return g.names[i] }

// SetName replaces the display name of node i.
func (g *Graph) SetName(i int, name string) { g.names[i] = name }

// Succ returns the successor list of node i. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Succ(i int) []int { return g.succ[i] }

// Pred returns the predecessor list of node i. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Pred(i int) []int { return g.pred[i] }

// InDegree returns the number of incoming edges of node i.
func (g *Graph) InDegree(i int) int { return len(g.pred[i]) }

// OutDegree returns the number of outgoing edges of node i.
func (g *Graph) OutDegree(i int) int { return len(g.succ[i]) }

// Sources returns all nodes with no predecessors, in index order.
func (g *Graph) Sources() []int {
	var out []int
	for i := range g.names {
		if len(g.pred[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Sinks returns all nodes with no successors, in index order.
func (g *Graph) Sinks() []int {
	var out []int
	for i := range g.names {
		if len(g.succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// TopoOrder returns a topological ordering via Kahn's algorithm, or ErrCycle
// if none exists. Among ready nodes the lowest index is taken first, so the
// ordering is deterministic. The order is computed once and cached until the
// graph mutates; the returned slice is a copy the caller may modify.
func (g *Graph) TopoOrder() ([]int, error) {
	order, _, err := g.topoShared()
	if err != nil {
		return nil, err
	}
	return append([]int(nil), order...), nil
}

// topoShared returns the cached topological order and per-node positions,
// computing them on first use. The returned slices are shared with the
// graph and must not be modified.
func (g *Graph) topoShared() (order, pos []int, err error) {
	if g.topo != nil {
		if g.predOff == nil {
			g.buildCSR() // e.g. after Clone, which copies only the order
		}
		return g.topo, g.pos, nil
	}
	n := len(g.names)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.pred[i])
	}
	// A sorted ready set keeps the order deterministic; n is small enough
	// in workflow scheduling (<= a few thousand modules) that a simple
	// re-sorted slice beats a heap in clarity and is fast in practice.
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		u := ready[0]
		ready = ready[1:]
		out = append(out, u)
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(out) != n {
		return nil, nil, ErrCycle
	}
	p := make([]int, n)
	for k, u := range out {
		p[u] = k
	}
	g.topo, g.pos = out, p
	g.buildCSR()
	return g.topo, g.pos, nil
}

// buildCSR flattens the adjacency lists into the CSR arrays, preserving
// the per-node neighbor order of succ and pred.
func (g *Graph) buildCSR() {
	n := len(g.names)
	g.predOff = make([]int32, n+1)
	g.succOff = make([]int32, n+1)
	g.predAdj = make([]int32, 0, g.edges)
	g.succAdj = make([]int32, 0, g.edges)
	for i := 0; i < n; i++ {
		g.predOff[i] = int32(len(g.predAdj))
		g.succOff[i] = int32(len(g.succAdj))
		for _, q := range g.pred[i] {
			g.predAdj = append(g.predAdj, int32(q))
		}
		for _, s := range g.succ[i] {
			g.succAdj = append(g.succAdj, int32(s))
		}
	}
	g.predOff[n] = int32(len(g.predAdj))
	g.succOff[n] = int32(len(g.succAdj))
	g.buildReducedCSR()
}

// buildReducedCSR fills the transitive-reduction CSR mirrors. It runs under
// the same warming discipline as the rest of the topo cache (any call to
// TopoOrder or Validate builds it before concurrent readers appear) and
// uses descendant bitsets: edge (p,v) is redundant exactly when p reaches
// some other predecessor of v, i.e. desc(p) intersects preds(v).
func (g *Graph) buildReducedCSR() {
	n := len(g.names)
	words := (n + 63) / 64
	// desc[u*words : (u+1)*words] is the descendant set of u (excluding u).
	desc := make([]uint64, n*words)
	for k := n - 1; k >= 0; k-- {
		u := g.topo[k]
		du := desc[u*words : (u+1)*words]
		for _, s := range g.succ[u] {
			du[s>>6] |= 1 << (uint(s) & 63)
			ds := desc[s*words : (s+1)*words]
			for w := range du {
				du[w] |= ds[w]
			}
		}
	}
	g.redPredOff = make([]int32, n+1)
	g.redSuccOff = make([]int32, n+1)
	g.redPredAdj = g.redPredAdj[:0]
	predMask := make([]uint64, words)
	outdeg := make([]int32, n)
	for v := 0; v < n; v++ {
		g.redPredOff[v] = int32(len(g.redPredAdj))
		for _, p := range g.pred[v] {
			predMask[p>>6] |= 1 << (uint(p) & 63)
		}
		for _, p := range g.pred[v] {
			dp := desc[p*words : (p+1)*words]
			redundant := false
			for w := range dp {
				if dp[w]&predMask[w] != 0 {
					redundant = true
					break
				}
			}
			if !redundant {
				g.redPredAdj = append(g.redPredAdj, int32(p))
				outdeg[p]++
			}
		}
		for _, p := range g.pred[v] {
			predMask[p>>6] = 0
		}
	}
	g.redPredOff[n] = int32(len(g.redPredAdj))
	// Invert the kept pred lists into succ lists (counting sort), so both
	// directions agree without re-running the redundancy tests.
	total := int32(0)
	for u := 0; u < n; u++ {
		g.redSuccOff[u] = total
		total += outdeg[u]
	}
	g.redSuccOff[n] = total
	if cap(g.redSuccAdj) < int(total) {
		g.redSuccAdj = make([]int32, total)
	} else {
		g.redSuccAdj = g.redSuccAdj[:total]
	}
	fill := outdeg // reuse as per-node fill cursor
	for u := range fill {
		fill[u] = g.redSuccOff[u]
	}
	for v := 0; v < n; v++ {
		for _, p := range g.redPredAdj[g.redPredOff[v]:g.redPredOff[v+1]] {
			g.redSuccAdj[fill[p]] = int32(v)
			fill[p]++
		}
	}
}

// Validate checks that the graph is acyclic.
func (g *Graph) Validate() error {
	_, err := g.TopoOrder()
	return err
}

// FindCycle returns one directed cycle as a node sequence (first == last),
// or nil if the graph is acyclic.
func (g *Graph) FindCycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	n := len(g.names)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range g.succ[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Back edge u -> v closes a cycle v ... u v.
				cycle = []int{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				cycle = append(cycle, v)
				// Reverse to forward order.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for i := 0; i < n; i++ {
		if color[i] == white && dfs(i) {
			return cycle
		}
	}
	return nil
}

// Reachable reports whether v is reachable from u by directed edges.
func (g *Graph) Reachable(u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, len(g.names))
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succ[x] {
			if s == v {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names: append([]string(nil), g.names...),
		succ:  make([][]int, len(g.succ)),
		pred:  make([][]int, len(g.pred)),
		edges: g.edges,
		topo:  append([]int(nil), g.topo...),
		pos:   append([]int(nil), g.pos...),
	}
	if len(c.topo) == 0 {
		c.topo, c.pos = nil, nil
	}
	for i := range g.succ {
		c.succ[i] = append([]int(nil), g.succ[i]...)
		c.pred[i] = append([]int(nil), g.pred[i]...)
	}
	return c
}

// TransitiveReduction returns a new graph with every edge (u,v) removed for
// which an alternative directed path u -> ... -> v exists. The input must be
// acyclic. Useful for canonicalizing generated workflows before comparison.
func (g *Graph) TransitiveReduction() (*Graph, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(g.names)
	pos := make([]int, n)
	for i, u := range order {
		pos[u] = i
	}
	out := &Graph{
		names: append([]string(nil), g.names...),
		succ:  make([][]int, n),
		pred:  make([][]int, n),
	}
	for u := 0; u < n; u++ {
		for _, v := range g.succ[u] {
			if !g.longerPathExists(u, v, pos) {
				out.succ[u] = append(out.succ[u], v)
				out.pred[v] = append(out.pred[v], u)
				out.edges++
			}
		}
	}
	return out, nil
}

// longerPathExists reports whether v is reachable from u by a path of at
// least two edges, using topological positions to prune the search.
func (g *Graph) longerPathExists(u, v int, pos []int) bool {
	seen := make(map[int]bool)
	var stack []int
	for _, s := range g.succ[u] {
		if s != v && pos[s] < pos[v] {
			stack = append(stack, s)
			seen[s] = true
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succ[x] {
			if s == v {
				return true
			}
			if !seen[s] && pos[s] < pos[v] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// DOT renders the graph in Graphviz dot syntax, one node per index with its
// display name as the label.
func (g *Graph) DOT() string {
	var b []byte
	b = append(b, "digraph workflow {\n"...)
	for i, name := range g.names {
		b = append(b, fmt.Sprintf("  n%d [label=%q];\n", i, name)...)
	}
	for u := range g.succ {
		for _, v := range g.succ[u] {
			b = append(b, fmt.Sprintf("  n%d -> n%d;\n", u, v)...)
		}
	}
	b = append(b, '}', '\n')
	return string(b)
}
