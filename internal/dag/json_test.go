package dag

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := New()
	g.AddNode("entry")
	g.AddNode("mid")
	g.AddNode("exit")
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(0, 2)

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 3 || back.NumEdges() != 3 {
		t.Fatalf("round trip lost structure: %d nodes %d edges", back.NumNodes(), back.NumEdges())
	}
	for i := 0; i < 3; i++ {
		if back.Name(i) != g.Name(i) {
			t.Fatalf("name %d changed: %q", i, back.Name(i))
		}
	}
	for u := 0; u < 3; u++ {
		if !reflect.DeepEqual(back.Succ(u), g.Succ(u)) {
			t.Fatalf("succ(%d) changed: %v vs %v", u, back.Succ(u), g.Succ(u))
		}
	}
}

func TestJSONEmptyGraph(t *testing.T) {
	data, err := json.Marshal(New())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"nodes":[],"edges":[]}` {
		t.Fatalf("empty graph JSON = %s", data)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 0 {
		t.Fatal("empty graph round trip gained nodes")
	}
}

func TestJSONRejectsBadEdges(t *testing.T) {
	cases := []string{
		`{"nodes":["a"],"edges":[[0,1]]}`,           // out of range
		`{"nodes":["a"],"edges":[[0,0]]}`,           // self loop
		`{"nodes":["a","b"],"edges":[[0,1],[0,1]]}`, // duplicate
		`{"nodes":"x"}`,                             // wrong type
	}
	for _, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("bad JSON accepted: %s", c)
		}
	}
}
