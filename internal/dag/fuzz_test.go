package dag

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON checks the graph loader never panics and that accepted
// graphs are structurally consistent.
func FuzzGraphJSON(f *testing.F) {
	seeds := []string{
		`{"nodes":["a","b"],"edges":[[0,1]]}`,
		`{"nodes":[],"edges":[]}`,
		`{"nodes":["a"],"edges":[[0,0]]}`,
		`{"nodes":["a","b","c"],"edges":[[0,1],[1,2],[2,0]]}`,
		`{"nodes":["a","b"],"edges":[[0,1],[0,1]]}`,
		`{"nodes":["a"],"edges":[[0,5]]}`,
		`[1,2,3]`,
		`{"nodes":["a","b"],"edges":[[-1,0]]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return
		}
		// Degree bookkeeping must be consistent.
		inSum, outSum := 0, 0
		for i := 0; i < g.NumNodes(); i++ {
			inSum += g.InDegree(i)
			outSum += g.OutDegree(i)
		}
		if inSum != g.NumEdges() || outSum != g.NumEdges() {
			t.Fatalf("degree sums %d/%d disagree with %d edges", inSum, outSum, g.NumEdges())
		}
		// TopoOrder either works or reports a cycle; FindCycle must
		// agree with it.
		_, topoErr := g.TopoOrder()
		cycle := g.FindCycle()
		if (topoErr == nil) != (cycle == nil) {
			t.Fatalf("TopoOrder err=%v but FindCycle=%v", topoErr, cycle)
		}
	})
}

// FuzzIncrementalTiming drives UpdateNode with fuzz-chosen mutations over a
// fuzz-derived DAG and checks every state against a fresh NewTiming. The
// mutation stream doubles as weights: byte k mutates node data[k] % n to
// weight data[k+1] / 16.
func FuzzIncrementalTiming(f *testing.F) {
	f.Add([]byte{4, 1, 2, 0, 7, 3, 255, 0, 0, 128, 64, 9, 33})
	f.Add([]byte{8, 200, 200, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := 2 + int(data[0])%16
		edgeByte := func(a, b int) byte {
			k := 1 + (a*31+b*7)%(len(data)-1)
			return data[k]
		}
		g := New()
		g.AddNodes(n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if edgeByte(a, b)%3 == 0 {
					g.MustEdge(a, b)
				}
			}
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(edgeByte(i, i)) / 8
		}
		inc, err := NewTiming(g, weights, nil)
		if err != nil {
			t.Fatal(err) // construction cannot cycle: edges go low -> high
		}
		for k := 0; k+1 < len(data); k += 2 {
			inc.UpdateNode(int(data[k])%n, float64(data[k+1])/16)
			fresh, err := NewTiming(g, append([]float64(nil), weights...), nil)
			if err != nil {
				t.Fatal(err)
			}
			if inc.Makespan != fresh.Makespan {
				t.Fatalf("mutation %d: makespan %v != fresh %v", k, inc.Makespan, fresh.Makespan)
			}
			for i := 0; i < n; i++ {
				if inc.EST[i] != fresh.EST[i] || inc.EFT[i] != fresh.EFT[i] ||
					inc.Tail[i] != fresh.Tail[i] {
					t.Fatalf("mutation %d node %d: incremental state diverged from fresh", k, i)
				}
			}
		}
	})
}
