package dag

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON checks the graph loader never panics and that accepted
// graphs are structurally consistent.
func FuzzGraphJSON(f *testing.F) {
	seeds := []string{
		`{"nodes":["a","b"],"edges":[[0,1]]}`,
		`{"nodes":[],"edges":[]}`,
		`{"nodes":["a"],"edges":[[0,0]]}`,
		`{"nodes":["a","b","c"],"edges":[[0,1],[1,2],[2,0]]}`,
		`{"nodes":["a","b"],"edges":[[0,1],[0,1]]}`,
		`{"nodes":["a"],"edges":[[0,5]]}`,
		`[1,2,3]`,
		`{"nodes":["a","b"],"edges":[[-1,0]]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return
		}
		// Degree bookkeeping must be consistent.
		inSum, outSum := 0, 0
		for i := 0; i < g.NumNodes(); i++ {
			inSum += g.InDegree(i)
			outSum += g.OutDegree(i)
		}
		if inSum != g.NumEdges() || outSum != g.NumEdges() {
			t.Fatalf("degree sums %d/%d disagree with %d edges", inSum, outSum, g.NumEdges())
		}
		// TopoOrder either works or reports a cycle; FindCycle must
		// agree with it.
		_, topoErr := g.TopoOrder()
		cycle := g.FindCycle()
		if (topoErr == nil) != (cycle == nil) {
			t.Fatalf("TopoOrder err=%v but FindCycle=%v", topoErr, cycle)
		}
	})
}
