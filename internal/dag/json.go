package dag

import (
	"encoding/json"
	"fmt"
)

// graphJSON is the stable on-disk form of a Graph: node names in index
// order plus an edge list. Predecessor lists are reconstructed on load.
type graphJSON struct {
	Nodes []string `json:"nodes"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON encodes the graph as {"nodes": [...], "edges": [[u,v], ...]}
// with edges emitted in (source index, insertion) order.
func (g *Graph) MarshalJSON() ([]byte, error) {
	j := graphJSON{Nodes: g.names, Edges: make([][2]int, 0, g.edges)}
	if j.Nodes == nil {
		j.Nodes = []string{}
	}
	for u := range g.succ {
		for _, v := range g.succ[u] {
			j.Edges = append(j.Edges, [2]int{u, v})
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the format produced by MarshalJSON, validating
// edge endpoints and rejecting duplicates and self-loops. The resulting
// graph is not checked for acyclicity here; call Validate if needed.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var j graphJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("dag: decode: %w", err)
	}
	ng := New()
	for _, name := range j.Nodes {
		ng.AddNode(name)
	}
	for _, e := range j.Edges {
		if err := ng.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	*g = *ng
	return nil
}
