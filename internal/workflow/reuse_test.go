package workflow

import (
	"testing"

	"medcc/internal/cloud"
)

func planFor(t *testing.T, s Schedule, policy ReusePolicy) (*Workflow, *ReusePlan) {
	t.Helper()
	w, cat := PaperExample()
	m, err := w.BuildMatrices(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := w.Evaluate(m, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w, w.PlanReuse(s, ev.Timing, policy)
}

func checkPlanInvariants(t *testing.T, w *Workflow, s Schedule, p *ReusePlan) {
	t.Helper()
	for _, i := range w.Schedulable() {
		vm := p.VMOf[i]
		if vm < 0 || vm >= p.NumVMs() {
			t.Fatalf("module %d unassigned (vm %d)", i, vm)
		}
		if p.TypeOf[vm] != s[i] {
			t.Fatalf("module %d on VM of type %d, scheduled type %d", i, p.TypeOf[vm], s[i])
		}
	}
	for i, m := range p.VMOf {
		if w.Module(i).Fixed && m != -1 {
			t.Fatalf("fixed module %d got a VM", i)
		}
	}
	// Each VM's modules must be listed and consistent.
	count := 0
	for vm, mods := range p.ModulesOf {
		for _, i := range mods {
			if p.VMOf[i] != vm {
				t.Fatalf("module list of VM %d inconsistent", vm)
			}
			count++
		}
	}
	if count != len(w.Schedulable()) {
		t.Fatalf("plan covers %d modules, want %d", count, len(w.Schedulable()))
	}
}

func TestPlanReuseIntervalPaperLeastCost(t *testing.T) {
	w, cat := PaperExample()
	m, _ := w.BuildMatrices(cat, nil)
	s := m.LeastCost(w)
	_, p := planFor(t, s, ReuseByInterval)
	checkPlanInvariants(t, w, s, p)
	// Six schedulable modules over two types; reuse must provision fewer
	// than six VMs (the paper observes reuse potential in schedule 1).
	if p.NumVMs() >= 6 {
		t.Fatalf("no reuse achieved: %d VMs", p.NumVMs())
	}
}

func TestPlanReusePrecedenceIsNoLooserThanInterval(t *testing.T) {
	w, cat := PaperExample()
	m, _ := w.BuildMatrices(cat, nil)
	for _, s := range []Schedule{m.LeastCost(w), m.Fastest(w)} {
		_, pi := planFor(t, s, ReuseByInterval)
		_, pp := planFor(t, s, ReuseByPrecedence)
		checkPlanInvariants(t, w, s, pi)
		checkPlanInvariants(t, w, s, pp)
		if pp.NumVMs() < pi.NumVMs() {
			t.Fatalf("precedence policy used fewer VMs (%d) than interval (%d)", pp.NumVMs(), pi.NumVMs())
		}
	}
}

func TestPlanReuseNoOverlapOnSharedVM(t *testing.T) {
	w, cat := PaperExample()
	m, _ := w.BuildMatrices(cat, nil)
	s := m.LeastCost(w)
	ev, _ := w.Evaluate(m, s, nil)
	p := w.PlanReuse(s, ev.Timing, ReuseByInterval)
	for _, mods := range p.ModulesOf {
		for k := 1; k < len(mods); k++ {
			prev, cur := mods[k-1], mods[k]
			if ev.Timing.EST[cur] < ev.Timing.EFT[prev]-1e-9 {
				t.Fatalf("modules %d and %d overlap on a shared VM", prev, cur)
			}
		}
	}
}

func TestPlanReusePrecedenceRequiresPath(t *testing.T) {
	// Two independent parallel modules of the same type and disjoint
	// intervals cannot share a VM under ReuseByPrecedence... intervals
	// of parallel modules overlap here, so force disjointness via a
	// third module chain: a -> b, c independent with c longer.
	w := New()
	w.AddModule(Module{Name: "a", Workload: 10})
	w.AddModule(Module{Name: "b", Workload: 10})
	w.AddModule(Module{Name: "c", Workload: 30})
	if err := w.AddDependency(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	cat := cloud.Catalog{{Name: "VT1", Power: 10, Rate: 1}}
	m, _ := w.BuildMatrices(cat, nil)
	s := Schedule{0, 0, 0}
	ev, _ := w.Evaluate(m, s, nil)

	pi := w.PlanReuse(s, ev.Timing, ReuseByInterval)
	// a: [0,1), b: [1,2), c: [0,3). Interval policy shares a's VM with b.
	if pi.NumVMs() != 2 {
		t.Fatalf("interval policy used %d VMs, want 2", pi.NumVMs())
	}
	pp := w.PlanReuse(s, ev.Timing, ReuseByPrecedence)
	if pp.NumVMs() != 2 {
		t.Fatalf("precedence policy used %d VMs, want 2 (a->b share)", pp.NumVMs())
	}
	if pp.VMOf[0] != pp.VMOf[1] {
		t.Fatal("precedence policy did not share along the a->b edge")
	}
	if pp.VMOf[2] == pp.VMOf[0] {
		t.Fatal("independent module c shared a VM under precedence policy")
	}
}

func TestPlanReuseDifferentTypesNeverShare(t *testing.T) {
	w := New()
	w.AddModule(Module{Name: "a", Workload: 10})
	w.AddModule(Module{Name: "b", Workload: 10})
	if err := w.AddDependency(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	cat := cloud.Catalog{{Name: "VT1", Power: 10, Rate: 1}, {Name: "VT2", Power: 20, Rate: 2}}
	m, _ := w.BuildMatrices(cat, nil)
	s := Schedule{0, 1}
	ev, _ := w.Evaluate(m, s, nil)
	p := w.PlanReuse(s, ev.Timing, ReuseByInterval)
	if p.NumVMs() != 2 {
		t.Fatalf("modules of different types packed onto %d VMs", p.NumVMs())
	}
}
