package workflow

import (
	"fmt"
	"strings"

	"medcc/internal/cloud"
)

// dotPalette cycles fill colors by VM type index (Graphviz X11 names,
// chosen light so black labels stay readable).
var dotPalette = []string{
	"lightblue", "lightgoldenrod1", "palegreen", "lightsalmon",
	"plum", "khaki", "lightcyan", "mistyrose", "honeydew",
}

// ExportDOT renders the workflow in Graphviz dot syntax with modules
// colored by their scheduled VM type and labeled with workload, chosen
// type, and execution time. Pass a nil schedule for a structure-only
// rendering; edges carry their data sizes when nonzero.
func (w *Workflow) ExportDOT(s Schedule, cat cloud.Catalog, m *Matrices) (string, error) {
	if s != nil {
		if err := w.ValidateSchedule(s, len(cat)); err != nil {
			return "", err
		}
	}
	var b strings.Builder
	b.WriteString("digraph workflow {\n  rankdir=LR;\n  node [shape=box, style=filled, fillcolor=white];\n")
	for i := 0; i < w.NumModules(); i++ {
		mod := w.Module(i)
		label := mod.Name
		attrs := ""
		switch {
		case mod.Fixed:
			label += fmt.Sprintf("\\nfixed %.3g", mod.FixedTime)
			attrs = ", shape=ellipse"
		case s != nil:
			vt := cat[s[i]]
			label += fmt.Sprintf("\\nWL %.4g -> %s", mod.Workload, vt.Name)
			if m != nil {
				label += fmt.Sprintf(" (%.4g)", m.TE[i][s[i]])
			}
			attrs = fmt.Sprintf(", fillcolor=%s", dotPalette[s[i]%len(dotPalette)])
		default:
			label += fmt.Sprintf("\\nWL %.4g", mod.Workload)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"%s];\n", i, label, attrs)
	}
	g := w.Graph()
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Succ(u) {
			if ds := w.DataSize(u, v); ds > 0 {
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.4g\"];\n", u, v, ds)
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", u, v)
			}
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}
