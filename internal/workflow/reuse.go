package workflow

import (
	"sort"

	"medcc/internal/dag"
)

// ReusePolicy selects the condition under which two modules mapped to the
// same VM type may share one VM instance.
type ReusePolicy int

const (
	// ReuseByInterval allows sharing whenever execution intervals do not
	// overlap (the new module starts no earlier than the previous one
	// finishes). Most aggressive correct policy under one-to-one typing.
	ReuseByInterval ReusePolicy = iota
	// ReuseByPrecedence additionally requires a dependency path from the
	// VM's last module to the new one, the conservative rule used in the
	// paper's testbed experiments ("adjacent modules with execution
	// precedence constraints can reuse the same VM").
	ReuseByPrecedence
)

// ReusePlan assigns modules to concrete VM instances after scheduling, so
// that the number of actually provisioned VMs is generally smaller than the
// number of modules (§V-B "we can explore the possibility of VM reuse").
type ReusePlan struct {
	// VMOf maps module index -> VM instance index (-1 for fixed modules).
	VMOf []int
	// TypeOf maps VM instance index -> VM type index.
	TypeOf []int
	// ModulesOf maps VM instance -> its modules in execution order.
	ModulesOf [][]int
}

// NumVMs returns the number of VM instances provisioned by the plan.
func (p *ReusePlan) NumVMs() int { return len(p.TypeOf) }

// PlanReuse packs the modules of schedule s onto VM instances of matching
// types. Modules are processed in earliest-start order; each is placed on
// the first compatible instance (same type, free at its start time, and —
// under ReuseByPrecedence — reachable from the instance's last module),
// else a new instance is opened. Timing must come from evaluating s.
func (w *Workflow) PlanReuse(s Schedule, t *dag.Timing, policy ReusePolicy) *ReusePlan {
	plan := &ReusePlan{VMOf: make([]int, len(w.mods))}
	for i := range plan.VMOf {
		plan.VMOf[i] = -1
	}
	// Execution order: by EST, ties by index for determinism.
	order := w.Schedulable()
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		// medcc:lint-ignore floateq — comparator needs a strict weak order; exact EST split, then index tie-break.
		if t.EST[ia] != t.EST[ib] {
			return t.EST[ia] < t.EST[ib]
		}
		return ia < ib
	})
	type vmState struct {
		typ      int
		freeAt   float64
		lastMod  int
		instance int
	}
	var vms []vmState
	for _, i := range order {
		placed := false
		for k := range vms {
			v := &vms[k]
			if v.typ != s[i] {
				continue
			}
			if t.EST[i] < v.freeAt-dag.Eps {
				continue
			}
			if policy == ReuseByPrecedence && !w.g.Reachable(v.lastMod, i) {
				continue
			}
			plan.VMOf[i] = v.instance
			plan.ModulesOf[v.instance] = append(plan.ModulesOf[v.instance], i)
			v.freeAt = t.EFT[i]
			v.lastMod = i
			placed = true
			break
		}
		if !placed {
			inst := len(vms)
			vms = append(vms, vmState{typ: s[i], freeAt: t.EFT[i], lastMod: i, instance: inst})
			plan.TypeOf = append(plan.TypeOf, s[i])
			plan.ModulesOf = append(plan.ModulesOf, []int{i})
			plan.VMOf[i] = inst
		}
	}
	return plan
}
