package workflow

import "medcc/internal/dag"

// Stats summarizes a workflow's shape — the quantities the scheduling
// literature characterizes benchmark workflows by.
type Stats struct {
	// Modules and Dependencies count all nodes/edges, Schedulable the
	// non-fixed modules.
	Modules, Dependencies, Schedulable int
	// Depth is the number of modules on the longest chain; Width the
	// maximum number of modules sharing a topological level.
	Depth, Width int
	// TotalWorkload sums WL_i over schedulable modules; TotalData sums
	// DS_ij over edges.
	TotalWorkload, TotalData float64
	// CCR is the communication-to-computation ratio TotalData /
	// TotalWorkload (zero when there is no workload).
	CCR float64
}

// ComputeStats derives the summary; it returns an error only for cyclic
// graphs.
func (w *Workflow) ComputeStats() (Stats, error) {
	g := w.Graph()
	order, err := g.TopoOrder()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Modules:      w.NumModules(),
		Dependencies: w.NumDependencies(),
		Schedulable:  len(w.Schedulable()),
	}
	level := make([]int, w.NumModules())
	widthAt := map[int]int{}
	for _, u := range order {
		for _, p := range g.Pred(u) {
			if level[p]+1 > level[u] {
				level[u] = level[p] + 1
			}
		}
		widthAt[level[u]]++
		if level[u]+1 > s.Depth {
			s.Depth = level[u] + 1
		}
	}
	// medcc:lint-ignore mapiter — max over values is order-independent.
	for _, c := range widthAt {
		if c > s.Width {
			s.Width = c
		}
	}
	for _, i := range w.Schedulable() {
		s.TotalWorkload += w.Module(i).Workload
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Succ(u) {
			s.TotalData += w.DataSize(u, v)
		}
	}
	if s.TotalWorkload > dag.Eps {
		s.CCR = s.TotalData / s.TotalWorkload
	}
	return s, nil
}
