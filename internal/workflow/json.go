package workflow

import (
	"encoding/json"
	"fmt"
)

// wfJSON is the stable serialized form: modules in index order and a list
// of dependency edges with data sizes.
type wfJSON struct {
	Modules []Module `json:"modules"`
	Edges   []wfEdge `json:"edges"`
}

type wfEdge struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	DataSize float64 `json:"data_size"`
}

// MarshalJSON encodes the workflow with edges in (source, insertion) order.
func (w *Workflow) MarshalJSON() ([]byte, error) {
	j := wfJSON{Modules: w.mods, Edges: []wfEdge{}}
	if j.Modules == nil {
		j.Modules = []Module{}
	}
	for u := 0; u < w.g.NumNodes(); u++ {
		for _, v := range w.g.Succ(u) {
			j.Edges = append(j.Edges, wfEdge{From: u, To: v, DataSize: w.DataSize(u, v)})
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the MarshalJSON format and validates the result.
func (w *Workflow) UnmarshalJSON(data []byte) error {
	var j wfJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("workflow: decode: %w", err)
	}
	nw := New()
	for _, m := range j.Modules {
		nw.AddModule(m)
	}
	for _, e := range j.Edges {
		if err := nw.AddDependency(e.From, e.To, e.DataSize); err != nil {
			return err
		}
	}
	if err := nw.Validate(); err != nil {
		return err
	}
	*w = *nw
	return nil
}
