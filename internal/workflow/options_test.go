package workflow

import (
	"math/rand"
	"testing"

	"medcc/internal/cloud"
)

// optionsFixture builds a 3-module workflow over a catalog where hourly
// round-up billing makes the middle type dominated for some workloads.
func optionsFixture(t *testing.T) (*Workflow, *Matrices) {
	t.Helper()
	w := New()
	w.AddModule(Module{Name: "w0", Fixed: true, FixedTime: 1})
	a := w.AddModule(Module{Name: "a", Workload: 33})
	b := w.AddModule(Module{Name: "b", Workload: 90})
	w.AddModule(Module{Name: "end", Fixed: true, FixedTime: 1})
	if err := w.AddDependency(a, b, 1); err != nil {
		t.Fatal(err)
	}
	cat := cloud.Catalog{
		{Name: "slow", Power: 3, Rate: 1},
		{Name: "mid", Power: 15, Rate: 4},
		{Name: "fast", Power: 30, Rate: 8},
	}
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	return w, m
}

func TestOptionsPruneDominatedTypes(t *testing.T) {
	_, m := optionsFixture(t)
	for i := range m.TE {
		opts := m.Options(i)
		if len(opts) == 0 {
			t.Fatalf("module %d: empty option list", i)
		}
		// Every surviving option must be undominated by every other
		// surviving option with a smaller index.
		for x, j := range opts {
			for _, k := range opts[:x] {
				if m.TE[i][k] <= m.TE[i][j] && m.CE[i][k] <= m.CE[i][j] {
					t.Fatalf("module %d: option %d survives although %d dominates it", i, j, k)
				}
			}
		}
		// Every pruned option must be dominated by some survivor.
		for j := range m.TE[i] {
			kept := false
			for _, o := range opts {
				if o == j {
					kept = true
					break
				}
			}
			if kept {
				continue
			}
			dominated := false
			for _, k := range opts {
				if k < j && m.TE[i][k] <= m.TE[i][j] && m.CE[i][k] <= m.CE[i][j] {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("module %d: option %d pruned without a dominating survivor", i, j)
			}
		}
	}
}

func TestOptionsNilWithoutBuild(t *testing.T) {
	m := &Matrices{TE: [][]float64{{1, 2}}, CE: [][]float64{{2, 1}}}
	if m.Options(0) != nil {
		t.Fatal("Options should be nil before BuildOptions")
	}
	m.BuildOptions()
	if got := m.Options(0); len(got) != 2 {
		t.Fatalf("no option dominated here, want both, got %v", got)
	}
}

func TestTimesIntoMatchesTimes(t *testing.T) {
	w, m := optionsFixture(t)
	rng := rand.New(rand.NewSource(5))
	buf := make([]float64, w.NumModules())
	for trial := 0; trial < 20; trial++ {
		s := make(Schedule, w.NumModules())
		for i := range s {
			if w.Module(i).Fixed {
				s[i] = -1
				continue
			}
			s[i] = rng.Intn(len(m.Catalog))
		}
		want := m.Times(s)
		got := m.TimesInto(s, buf)
		if &got[0] != &buf[0] {
			t.Fatal("TimesInto did not reuse the buffer")
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: times[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
	// Wrong-size destination must be replaced, not written out of range.
	if got := m.TimesInto(make(Schedule, w.NumModules()), make([]float64, 1)); len(got) != w.NumModules() {
		t.Fatalf("TimesInto with short dst returned len %d", len(got))
	}
}

func TestLeastCostIntoMatchesLeastCost(t *testing.T) {
	w, m := optionsFixture(t)
	want := m.LeastCost(w)
	buf := make(Schedule, w.NumModules())
	got := m.LeastCostInto(w, buf)
	if &got[0] != &buf[0] {
		t.Fatal("LeastCostInto did not reuse the buffer")
	}
	if !got.Equal(want) {
		t.Fatalf("LeastCostInto = %v, want %v", got, want)
	}
}
