package workflow

import (
	"encoding/json"
	"testing"

	"medcc/internal/cloud"
)

// FuzzWorkflowJSON drives the workflow loader with arbitrary bytes: it
// must never panic, and anything it accepts must be a valid workflow that
// round-trips and schedules without internal errors.
func FuzzWorkflowJSON(f *testing.F) {
	seeds := []string{
		`{"modules":[{"name":"a","workload":30},{"name":"b","workload":60}],"edges":[{"from":0,"to":1,"data_size":1}]}`,
		`{"modules":[{"name":"e","fixed":true,"fixed_time":1},{"name":"a","workload":5}],"edges":[{"from":0,"to":1,"data_size":0}]}`,
		`{"modules":[],"edges":[]}`,
		`{"modules":[{"name":"a","workload":-1}],"edges":[]}`,
		`{"modules":[{"name":"a","workload":1}],"edges":[{"from":0,"to":0,"data_size":1}]}`,
		`{"modules":[{"name":"a","workload":1},{"name":"b","workload":1}],"edges":[{"from":0,"to":1,"data_size":1},{"from":1,"to":0,"data_size":1}]}`,
		`not json at all`,
		`{"modules":[{"name":"a","workload":1e308}],"edges":[]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	cat := cloud.PaperExampleCatalog()
	f.Fuzz(func(t *testing.T, data []byte) {
		var w Workflow
		if err := json.Unmarshal(data, &w); err != nil {
			return // rejected input: fine
		}
		// Accepted input must be fully usable.
		if err := w.Validate(); err != nil {
			t.Fatalf("loader accepted invalid workflow: %v", err)
		}
		out, err := json.Marshal(&w)
		if err != nil {
			t.Fatalf("accepted workflow does not re-marshal: %v", err)
		}
		var back Workflow
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumModules() != w.NumModules() || back.NumDependencies() != w.NumDependencies() {
			t.Fatal("round trip changed structure")
		}
		m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
		if err != nil {
			return // e.g. non-finite workloads rejected downstream
		}
		lc := m.LeastCost(&w)
		if _, err := w.Evaluate(m, lc, nil); err != nil {
			t.Fatalf("least-cost schedule of accepted workflow invalid: %v", err)
		}
	})
}
