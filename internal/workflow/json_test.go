package workflow

import (
	"encoding/json"
	"testing"
)

func TestWorkflowJSONRoundTrip(t *testing.T) {
	w, _ := PaperExample()
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Workflow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumModules() != w.NumModules() || back.NumDependencies() != w.NumDependencies() {
		t.Fatal("round trip lost structure")
	}
	for i := 0; i < w.NumModules(); i++ {
		if back.Module(i) != w.Module(i) {
			t.Fatalf("module %d changed: %+v vs %+v", i, back.Module(i), w.Module(i))
		}
	}
	for u := 0; u < w.NumModules(); u++ {
		for _, v := range w.Graph().Succ(u) {
			if !back.Graph().HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) lost", u, v)
			}
			if back.DataSize(u, v) != w.DataSize(u, v) {
				t.Fatalf("data size (%d,%d) changed", u, v)
			}
		}
	}
}

func TestWorkflowJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"modules":[{"name":"a","workload":1}],"edges":[{"from":0,"to":5,"data_size":1}]}`,
		`{"modules":[{"name":"a","workload":1}],"edges":[{"from":0,"to":0,"data_size":1}]}`,
		`{"modules":[{"name":"a","workload":-1}],"edges":[]}`,
		`{"modules":[{"name":"a","fixed":true,"fixed_time":1}],"edges":[]}`, // nothing schedulable
		`{"modules":[{"name":"a","workload":1},{"name":"b","workload":1}],"edges":[{"from":0,"to":1,"data_size":-4}]}`,
		`not json`,
	}
	for _, c := range cases {
		var w Workflow
		if err := json.Unmarshal([]byte(c), &w); err == nil {
			t.Errorf("invalid workflow accepted: %s", c)
		}
	}
}

func TestWorkflowJSONCycleRejected(t *testing.T) {
	in := `{"modules":[{"name":"a","workload":1},{"name":"b","workload":1}],
	        "edges":[{"from":0,"to":1,"data_size":0},{"from":1,"to":0,"data_size":0}]}`
	var w Workflow
	if err := json.Unmarshal([]byte(in), &w); err == nil {
		t.Fatal("cyclic workflow accepted")
	}
}
