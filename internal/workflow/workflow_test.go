package workflow

import (
	"math"
	"testing"

	"medcc/internal/cloud"
)

func TestAddModuleAndDependency(t *testing.T) {
	w := New()
	a := w.AddModule(Module{Name: "a", Workload: 5})
	b := w.AddModule(Module{Name: "b", Workload: 3})
	if err := w.AddDependency(a, b, 7); err != nil {
		t.Fatal(err)
	}
	if w.NumModules() != 2 || w.NumDependencies() != 1 {
		t.Fatal("counts wrong")
	}
	if w.DataSize(a, b) != 7 {
		t.Fatalf("data size = %v", w.DataSize(a, b))
	}
	if w.DataSize(b, a) != 0 {
		t.Fatalf("absent edge data size = %v", w.DataSize(b, a))
	}
	if w.Module(0).Name != "a" {
		t.Fatalf("Module(0) = %+v", w.Module(0))
	}
}

func TestAddDependencyRejectsBadDataSize(t *testing.T) {
	w := New()
	w.AddModule(Module{Name: "a"})
	w.AddModule(Module{Name: "b"})
	for _, ds := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := w.AddDependency(0, 1, ds); err == nil {
			t.Errorf("data size %v accepted", ds)
		}
	}
	// A rejected dependency must not half-insert the edge.
	if w.NumDependencies() != 0 {
		t.Fatal("rejected dependency left an edge behind")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	w := New()
	w.AddModule(Module{Name: "only", Fixed: true, FixedTime: 1})
	if err := w.Validate(); err == nil {
		t.Fatal("workflow with no schedulable modules accepted")
	}
	w2 := New()
	w2.AddModule(Module{Name: "bad", Workload: -3})
	if err := w2.Validate(); err == nil {
		t.Fatal("negative workload accepted")
	}
	w3 := New()
	w3.AddModule(Module{Name: "bad", Fixed: true, FixedTime: math.NaN()})
	w3.AddModule(Module{Name: "ok", Workload: 1})
	if err := w3.Validate(); err == nil {
		t.Fatal("NaN fixed time accepted")
	}
}

func TestSchedulableSkipsFixed(t *testing.T) {
	w, _ := PaperExample()
	got := w.Schedulable()
	want := []int{1, 2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("schedulable = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedulable = %v, want %v", got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	w, _ := PaperExample()
	c := w.Clone()
	c.SetWorkload(1, 999)
	if w.Module(1).Workload == 999 {
		t.Fatal("clone workload change leaked")
	}
	if err := c.AddDependency(1, 7, 5); err != nil {
		t.Fatal(err)
	}
	if w.DataSize(1, 7) != 0 || w.Graph().HasEdge(1, 7) {
		t.Fatal("clone edge leaked")
	}
}

func TestBuildMatricesPaperExample(t *testing.T) {
	w, cat := PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check against hand calculations used throughout the paper's
	// walk-through: w3 (WL=21) takes 7h/$7 on VT1 and 0.7h/$8 on VT3.
	if m.TE[3][0] != 7 || m.CE[3][0] != 7 {
		t.Fatalf("w3 on VT1: %v/%v", m.TE[3][0], m.CE[3][0])
	}
	if m.TE[3][2] != 0.7 || m.CE[3][2] != 8 {
		t.Fatalf("w3 on VT3: %v/%v", m.TE[3][2], m.CE[3][2])
	}
	// Fixed entry module: identical time in every column, zero cost.
	for j := 0; j < len(cat); j++ {
		if m.TE[0][j] != 1 || m.CE[0][j] != 0 {
			t.Fatalf("entry module column %d: %v/%v", j, m.TE[0][j], m.CE[0][j])
		}
	}
}

func TestBuildMatricesRejectsBadInput(t *testing.T) {
	w, _ := PaperExample()
	if _, err := w.BuildMatrices(cloud.Catalog{}, nil); err == nil {
		t.Fatal("empty catalog accepted")
	}
	bad := New()
	bad.AddModule(Module{Name: "x", Workload: math.Inf(1)})
	if _, err := bad.BuildMatrices(cloud.PaperExampleCatalog(), nil); err == nil {
		t.Fatal("invalid workflow accepted")
	}
}

func TestBuildMatricesDefaultBilling(t *testing.T) {
	w, cat := PaperExample()
	m, err := w.BuildMatrices(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Billing != cloud.HourlyRoundUp {
		t.Fatalf("default billing = %v", m.Billing)
	}
}

func TestLeastCostMatchesPaper(t *testing.T) {
	w, cat := PaperExample()
	m, _ := w.BuildMatrices(cat, nil)
	lc := m.LeastCost(w)
	// Paper: least-cost instantiates 3 VT2 (w1, w2, w5) and 3 VT1
	// (w3, w4, w6) at total cost 48.
	want := Schedule{-1, 1, 1, 0, 0, 1, 0, -1}
	if !lc.Equal(want) {
		t.Fatalf("least-cost = %v, want %v", lc, want)
	}
	if got := m.Cost(lc); got != 48 {
		t.Fatalf("Cmin = %v, want 48", got)
	}
}

func TestFastestMatchesPaper(t *testing.T) {
	w, cat := PaperExample()
	m, _ := w.BuildMatrices(cat, nil)
	f := m.Fastest(w)
	want := Schedule{-1, 2, 2, 2, 2, 2, 2, -1}
	if !f.Equal(want) {
		t.Fatalf("fastest = %v, want %v", f, want)
	}
	if got := m.Cost(f); got != 64 {
		t.Fatalf("Cmax = %v, want 64", got)
	}
}

func TestBudgetRangePaper(t *testing.T) {
	w, cat := PaperExample()
	m, _ := w.BuildMatrices(cat, nil)
	cmin, cmax := m.BudgetRange(w)
	if cmin != 48 || cmax != 64 {
		t.Fatalf("budget range = [%v,%v], want [48,64]", cmin, cmax)
	}
}

func TestLeastCostTieBreaksOnTime(t *testing.T) {
	// Two types with equal cost for the module; the faster must win.
	cat := cloud.Catalog{
		{Name: "slow", Power: 1, Rate: 1},  // WL=1: 1h, $1
		{Name: "fast", Power: 10, Rate: 1}, // WL=1: 0.1h, $1
	}
	w := New()
	w.AddModule(Module{Name: "m", Workload: 1})
	m, _ := w.BuildMatrices(cat, nil)
	if lc := m.LeastCost(w); lc[0] != 1 {
		t.Fatalf("least-cost chose type %d, want the faster tie", lc[0])
	}
}

func TestFastestTieBreaksOnCost(t *testing.T) {
	cat := cloud.Catalog{
		{Name: "pricey", Power: 10, Rate: 9},
		{Name: "cheap", Power: 10, Rate: 1},
	}
	w := New()
	w.AddModule(Module{Name: "m", Workload: 5})
	m, _ := w.BuildMatrices(cat, nil)
	if f := m.Fastest(w); f[0] != 1 {
		t.Fatalf("fastest chose type %d, want the cheaper tie", f[0])
	}
}

func TestEvaluatePaperLeastCost(t *testing.T) {
	w, cat := PaperExample()
	m, _ := w.BuildMatrices(cat, nil)
	ev, err := w.Evaluate(m, m.LeastCost(w), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cost != 48 {
		t.Fatalf("cost = %v", ev.Cost)
	}
	// Critical path: w0(1) + w2(8/3) + w4(20/3) + w6(6) + w7(1).
	want := 1 + 8.0/3 + 20.0/3 + 6 + 1
	if math.Abs(ev.Makespan-want) > 1e-9 {
		t.Fatalf("makespan = %v, want %v", ev.Makespan, want)
	}
}

func TestEvaluateRejectsBadSchedule(t *testing.T) {
	w, cat := PaperExample()
	m, _ := w.BuildMatrices(cat, nil)
	if _, err := w.Evaluate(m, Schedule{0}, nil); err == nil {
		t.Fatal("short schedule accepted")
	}
	s := m.LeastCost(w)
	s[0] = 0 // fixed module mapped
	if _, err := w.Evaluate(m, s, nil); err == nil {
		t.Fatal("mapped fixed module accepted")
	}
	s2 := m.LeastCost(w)
	s2[1] = 99
	if _, err := w.Evaluate(m, s2, nil); err == nil {
		t.Fatal("out-of-range type accepted")
	}
}

func TestEvaluateWithTransferTimes(t *testing.T) {
	// Pipeline a -> b with data size 100, bandwidth 10, delay 0.5:
	// makespan gains 10.5 over the zero-transfer case.
	w := New()
	w.AddModule(Module{Name: "a", Workload: 10})
	w.AddModule(Module{Name: "b", Workload: 10})
	if err := w.AddDependency(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	cat := cloud.Catalog{{Name: "VT1", Power: 10, Rate: 1}}
	m, _ := w.BuildMatrices(cat, nil)
	s := Schedule{0, 0}
	base, err := w.Evaluate(m, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	withXfer, err := w.Evaluate(m, s, w.TransferByBandwidth(10, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withXfer.Makespan-base.Makespan-10.5) > 1e-9 {
		t.Fatalf("transfer delta = %v, want 10.5", withXfer.Makespan-base.Makespan)
	}
}

func TestScheduleCloneEqual(t *testing.T) {
	s := Schedule{1, 2, 3}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c[0] = 9
	if s.Equal(c) || s[0] == 9 {
		t.Fatal("clone not independent")
	}
	if s.Equal(Schedule{1, 2}) {
		t.Fatal("length mismatch reported equal")
	}
}

func TestZeroTransfer(t *testing.T) {
	if ZeroTransfer(3, 4) != 0 {
		t.Fatal("ZeroTransfer nonzero")
	}
}

func TestNewPipeline(t *testing.T) {
	p := NewPipeline([]float64{1, 2, 3})
	if p.NumModules() != 3 || p.NumDependencies() != 2 {
		t.Fatal("pipeline shape wrong")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Graph().HasEdge(0, 1) || !p.Graph().HasEdge(1, 2) {
		t.Fatal("pipeline edges wrong")
	}
}
