// Package workflow models DAG-structured scientific workflows for
// budget-constrained scheduling: modules carrying workloads, dependency
// edges carrying data sizes, execution time / cost matrices against a VM
// type catalog, schedules (module -> VM type mappings) with analytic
// makespan and cost evaluation, budget ranges, and VM-reuse planning.
package workflow

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"medcc/internal/cloud"
	"medcc/internal/dag"
)

// Module is one computing module w_i of the task graph.
type Module struct {
	// Name is the display name, e.g. "w3".
	Name string `json:"name"`
	// Workload is WL_i, the computational demand. Execution time on VM
	// type j is Workload / VP_j. Ignored when Fixed is true.
	Workload float64 `json:"workload"`
	// Fixed marks entry/exit-style modules with a constant execution
	// time on any VM and zero financial cost (the paper's w0 and w_end,
	// assumed to take one hour each and be free).
	Fixed bool `json:"fixed,omitempty"`
	// FixedTime is the constant execution time when Fixed is true.
	FixedTime float64 `json:"fixed_time,omitempty"`
}

// Workflow is a task graph G_w(V_w, E_w): modules plus dependency edges
// with data sizes DS_ij.
type Workflow struct {
	g    *dag.Graph
	mods []Module
	data map[[2]int]float64
}

// New returns an empty workflow.
func New() *Workflow {
	return &Workflow{g: dag.New(), data: make(map[[2]int]float64)}
}

// Reset empties the workflow for rebuilding while keeping all allocated
// storage (the graph's node and adjacency arrays, the module slice, the
// data-size map buckets), so a pooled generator cycling Reset/AddModule/
// AddDependency reaches a steady state with near-zero allocations. The
// graph's Version changes, which invalidates any scheduler engine or
// Timing still bound to the old structure.
func (w *Workflow) Reset() {
	w.g.Reset()
	w.mods = w.mods[:0]
	clear(w.data)
}

// AddModule appends a module and returns its index.
func (w *Workflow) AddModule(m Module) int {
	id := w.g.AddNode(m.Name)
	w.mods = append(w.mods, m)
	return id
}

// AddDependency inserts a dependency edge u -> v carrying dataSize units.
func (w *Workflow) AddDependency(u, v int, dataSize float64) error {
	if dataSize < 0 || math.IsNaN(dataSize) || math.IsInf(dataSize, 0) {
		return fmt.Errorf("workflow: invalid data size %v on edge (%d,%d)", dataSize, u, v)
	}
	if err := w.g.AddEdge(u, v); err != nil {
		return err
	}
	w.data[[2]int{u, v}] = dataSize
	return nil
}

// Graph exposes the underlying DAG (read-only by convention).
func (w *Workflow) Graph() *dag.Graph { return w.g }

// NumModules returns the module count, including fixed entry/exit modules.
func (w *Workflow) NumModules() int { return len(w.mods) }

// NumDependencies returns the edge count.
func (w *Workflow) NumDependencies() int { return w.g.NumEdges() }

// Module returns module i.
func (w *Workflow) Module(i int) Module { return w.mods[i] }

// DataSize returns DS_uv for edge u -> v (zero if the edge is absent).
func (w *Workflow) DataSize(u, v int) float64 { return w.data[[2]int{u, v}] }

// Schedulable returns the indices of modules that must be mapped to a VM
// type (everything not Fixed), in index order.
func (w *Workflow) Schedulable() []int {
	return w.SchedulableInto(nil)
}

// SchedulableInto is Schedulable with a reusable destination: dst is
// truncated and refilled, so engines rebinding to a pooled workflow reuse
// their module list instead of reallocating it per instance.
//
// medcc:allocfree — appends stay within dst's capacity once it has grown
// to the largest module count seen.
func (w *Workflow) SchedulableInto(dst []int) []int {
	dst = dst[:0]
	for i, m := range w.mods {
		if !m.Fixed {
			dst = append(dst, i)
		}
	}
	return dst
}

// Validate checks the structure: an acyclic graph, valid workloads, and at
// least one schedulable module.
func (w *Workflow) Validate() error {
	if err := w.g.Validate(); err != nil {
		return err
	}
	sched := 0
	for i, m := range w.mods {
		if m.Fixed {
			if m.FixedTime < 0 || math.IsNaN(m.FixedTime) || math.IsInf(m.FixedTime, 0) {
				return fmt.Errorf("workflow: module %d has invalid fixed time %v", i, m.FixedTime)
			}
			continue
		}
		sched++
		if m.Workload < 0 || math.IsNaN(m.Workload) || math.IsInf(m.Workload, 0) {
			return fmt.Errorf("workflow: module %d has invalid workload %v", i, m.Workload)
		}
	}
	if sched == 0 {
		return errors.New("workflow: no schedulable modules")
	}
	return nil
}

// Clone returns a deep copy.
func (w *Workflow) Clone() *Workflow {
	c := &Workflow{
		g:    w.g.Clone(),
		mods: append([]Module(nil), w.mods...),
		data: make(map[[2]int]float64, len(w.data)),
	}
	for k, v := range w.data {
		c.data[k] = v
	}
	return c
}

// ZeroTransfer is the intra-datacenter edge-weight function: all transfer
// times are negligible (the paper's evaluation setting, CR = 0 and
// high-bandwidth shared storage).
func ZeroTransfer(u, v int) float64 { return 0 }

// TransferByBandwidth builds a dag.EdgeWeight charging DS_uv/bandwidth +
// delay on every edge, the uniform-fabric version of Eq. 5.
func (w *Workflow) TransferByBandwidth(bandwidth, delay float64) dag.EdgeWeight {
	return func(u, v int) float64 {
		ds := w.DataSize(u, v)
		if ds == 0 {
			return 0
		}
		return ds/bandwidth + delay
	}
}

// Matrices holds the per-module execution time (TE) and execution cost (CE)
// matrices over a VM type catalog: TE[i][j] is the time of module i on type
// j, CE[i][j] the billed cost. Fixed modules have their fixed time in every
// column of TE and zero in CE.
type Matrices struct {
	TE, CE  [][]float64
	Catalog cloud.Catalog
	Billing cloud.BillingPolicy

	// opts caches, per module, the VM-type indices that survive dominance
	// pruning (see BuildOptions). Built once by BuildMatrices; nil when
	// the Matrices were assembled by hand and BuildOptions was not called.
	opts [][]int

	// soaOff/soaTyp/soaTE/soaCE are the structure-of-arrays option table:
	// the surviving options of module i occupy rows soaOff[i]:soaOff[i+1],
	// sorted by execution time ascending (ties by type index ascending),
	// each row carrying its VM-type index, TE, and CE contiguously. Upgrade
	// scans walk one dense block per module and stop at the first row whose
	// time is no improvement — every later row is slower still. Rebuilt by
	// BuildOptions alongside opts, reusing capacity.
	soaOff []int32
	soaTyp []int32
	soaTE  []float64
	soaCE  []float64

	// epoch distinguishes successive in-place rebuilds of the same
	// Matrices value (BuildMatricesInto): caches keyed on a *Matrices
	// pointer compare epochs to detect that the contents changed behind
	// the same address. Assigned from a process-wide counter, so no two
	// builds ever share an epoch.
	epoch uint64
}

// matricesEpoch is the process-wide build counter backing Matrices.Epoch.
var matricesEpoch atomic.Uint64

// Epoch identifies this build of the Matrices contents. It changes every
// time BuildMatrices or BuildMatricesInto (re)fills a Matrices, including
// rebuilds in place at the same address; hand-assembled Matrices report 0.
func (m *Matrices) Epoch() uint64 { return m.epoch }

// BuildOptions precomputes, for every module, the list of VM-type indices
// worth scanning: type j is dropped when an earlier type k <= j is at least
// as fast AND at least as cheap for that module (TE[i][k] <= TE[i][j] and
// CE[i][k] <= CE[i][j]). Such a j can never be preferred by any scheduler
// in this repo — every ranking criterion weakly prefers k, and on exact
// ties every scanner takes the lower index first — so pruning leaves all
// schedules bit-for-bit unchanged while shrinking the inner O(m*n) scans.
// Under round-up billing dominated types are common: a faster VM often
// bills fewer rounded hours and ends up cheaper as well.
//
// BuildMatrices calls this automatically; call it manually after building
// Matrices by hand. Not safe for concurrent use with readers.
func (m *Matrices) BuildOptions() {
	if cap(m.opts) < len(m.TE) {
		next := make([][]int, len(m.TE))
		copy(next, m.opts[:cap(m.opts)])
		m.opts = next
	} else {
		m.opts = m.opts[:len(m.TE)]
	}
	for i := range m.TE {
		n := len(m.TE[i])
		opts := m.opts[i][:0]
		if cap(opts) < n {
			opts = make([]int, 0, n)
		}
		for j := 0; j < n; j++ {
			dominated := false
			for _, k := range opts {
				if m.TE[i][k] <= m.TE[i][j] && m.CE[i][k] <= m.CE[i][j] {
					dominated = true
					break
				}
			}
			if !dominated {
				opts = append(opts, j)
			}
		}
		m.opts[i] = opts
	}
	m.buildOptionTable()
}

// buildOptionTable fills the flat (type, TE, CE) table from the pruned
// options, insertion-sorting each module's rows by (TE asc, type asc). The
// per-module option counts are tiny (bounded by the catalog size), so the
// quadratic insert is faster than sort.Sort and allocation-free.
func (m *Matrices) buildOptionTable() {
	nm := len(m.TE)
	if cap(m.soaOff) < nm+1 {
		m.soaOff = make([]int32, nm+1)
	} else {
		m.soaOff = m.soaOff[:nm+1]
	}
	m.soaTyp = m.soaTyp[:0]
	m.soaTE = m.soaTE[:0]
	m.soaCE = m.soaCE[:0]
	for i := 0; i < nm; i++ {
		m.soaOff[i] = int32(len(m.soaTyp))
		base := int(m.soaOff[i])
		for _, j := range m.opts[i] {
			te, ce := m.TE[i][j], m.CE[i][j]
			k := len(m.soaTyp)
			m.soaTyp = append(m.soaTyp, 0)
			m.soaTE = append(m.soaTE, 0)
			m.soaCE = append(m.soaCE, 0)
			// Strict > keeps the insert stable: equal-TE rows preserve the
			// ascending type order opts already has.
			for k > base && m.soaTE[k-1] > te {
				m.soaTyp[k] = m.soaTyp[k-1]
				m.soaTE[k] = m.soaTE[k-1]
				m.soaCE[k] = m.soaCE[k-1]
				k--
			}
			m.soaTyp[k] = int32(j)
			m.soaTE[k] = te
			m.soaCE[k] = ce
		}
	}
	m.soaOff[nm] = int32(len(m.soaTyp))
}

// OptionTable returns module i's dominance-pruned options as a
// structure-of-arrays view sorted by execution time ascending (ties by
// type index ascending): typ[k] is the VM-type index of row k, te[k] and
// ce[k] its execution time and cost. All three slices are nil when
// BuildOptions has not run. The slices are shared and must not be
// modified.
// HasOptionTable reports whether the flat option table is available, i.e.
// whether BuildOptions has run on these matrices.
func (m *Matrices) HasOptionTable() bool { return m.soaOff != nil }

func (m *Matrices) OptionTable(i int) (typ []int32, te, ce []float64) {
	if m.soaOff == nil {
		return nil, nil, nil
	}
	lo, hi := m.soaOff[i], m.soaOff[i+1]
	return m.soaTyp[lo:hi], m.soaTE[lo:hi], m.soaCE[lo:hi]
}

// Options returns the dominance-pruned VM-type indices for module i in
// ascending order, or nil when BuildOptions has not run (callers then scan
// all types). The slice is shared and must not be modified.
func (m *Matrices) Options(i int) []int {
	if m.opts == nil {
		return nil
	}
	return m.opts[i]
}

// BuildMatrices computes TE and CE for the workflow over the catalog under
// a billing policy (step executed once, O(m*n), per §V-B).
func (w *Workflow) BuildMatrices(cat cloud.Catalog, billing cloud.BillingPolicy) (*Matrices, error) {
	return w.BuildMatricesInto(cat, billing, nil)
}

// BuildMatricesInto is BuildMatrices with a reusable destination: when dst
// is non-nil its TE/CE rows, options lists, and row headers are reused
// wherever the shapes match, so a pooled builder recomputing matrices for
// a stream of same-sized instances allocates nothing in steady state. The
// returned Matrices is dst when provided (refilled in place, with a fresh
// Epoch) and newly allocated otherwise.
func (w *Workflow) BuildMatricesInto(cat cloud.Catalog, billing cloud.BillingPolicy, dst *Matrices) (*Matrices, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if billing == nil {
		billing = cloud.HourlyRoundUp
	}
	m := len(w.mods)
	n := len(cat)
	mt := dst
	if mt == nil {
		mt = &Matrices{}
	}
	mt.Catalog = cat
	mt.Billing = billing
	mt.TE = growRows(mt.TE, m, n)
	mt.CE = growRows(mt.CE, m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if w.mods[i].Fixed {
				mt.TE[i][j] = w.mods[i].FixedTime
				mt.CE[i][j] = 0
				continue
			}
			mt.TE[i][j] = cat[j].ExecTime(w.mods[i].Workload)
			mt.CE[i][j] = cloud.ExecCost(billing, cat[j], w.mods[i].Workload)
		}
	}
	mt.BuildOptions()
	mt.epoch = matricesEpoch.Add(1)
	return mt, nil
}

// growRows resizes a row-major matrix to m rows of n columns, reusing the
// outer slice and every row whose capacity suffices.
func growRows(rows [][]float64, m, n int) [][]float64 {
	if cap(rows) < m {
		next := make([][]float64, m)
		copy(next, rows[:cap(rows)])
		rows = next
	} else {
		rows = rows[:m]
	}
	for i := range rows {
		if cap(rows[i]) < n {
			rows[i] = make([]float64, n)
		} else {
			rows[i] = rows[i][:n]
		}
	}
	return rows
}

// SetWorkload replaces the workload of module i (used by generators).
func (w *Workflow) SetWorkload(i int, wl float64) { w.mods[i].Workload = wl }
