package workflow

import (
	"math"
	"testing"
)

func TestComputeStatsPaperExample(t *testing.T) {
	w, _ := PaperExample()
	s, err := w.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Modules != 8 || s.Schedulable != 6 || s.Dependencies != 10 {
		t.Fatalf("counts wrong: %+v", s)
	}
	// Longest chain: w0 -> w1 -> w3 -> w5 -> w7 (or via w4/w6): 5 deep.
	if s.Depth != 5 {
		t.Fatalf("depth = %d, want 5", s.Depth)
	}
	if s.Width != 2 {
		t.Fatalf("width = %d, want 2", s.Width)
	}
	if s.TotalWorkload != 10+40+21+20+40+18 {
		t.Fatalf("total workload %v", s.TotalWorkload)
	}
	wantData := 2.0 + 3 + 2 + 4 + 1 + 2 + 3 + 2 + 1 + 1
	if math.Abs(s.TotalData-wantData) > 1e-9 {
		t.Fatalf("total data %v, want %v", s.TotalData, wantData)
	}
	if math.Abs(s.CCR-wantData/149) > 1e-9 {
		t.Fatalf("CCR %v", s.CCR)
	}
}

func TestComputeStatsPipeline(t *testing.T) {
	p := NewPipeline([]float64{1, 2, 3, 4})
	s, err := p.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth != 4 || s.Width != 1 {
		t.Fatalf("pipeline shape: %+v", s)
	}
	if s.CCR != 0 {
		t.Fatalf("zero-data pipeline CCR %v", s.CCR)
	}
}

func TestComputeStatsZeroWorkload(t *testing.T) {
	w := New()
	w.AddModule(Module{Name: "a", Workload: 0})
	s, err := w.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.CCR != 0 {
		t.Fatalf("CCR with zero workload = %v", s.CCR)
	}
}
