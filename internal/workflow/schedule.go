package workflow

import (
	"fmt"

	"medcc/internal/dag"
)

// Schedule maps each module index to a VM type index in the catalog.
// Fixed modules conventionally carry -1. A Schedule is specific to the
// (workflow, catalog) pair its Matrices were built from.
type Schedule []int

// Clone returns a copy of the schedule.
func (s Schedule) Clone() Schedule { return append(Schedule(nil), s...) }

// Equal reports element-wise equality.
func (s Schedule) Equal(o Schedule) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Validate checks that s assigns every schedulable module a valid type
// index and every fixed module -1.
func (w *Workflow) ValidateSchedule(s Schedule, numTypes int) error {
	if len(s) != len(w.mods) {
		return fmt.Errorf("workflow: schedule length %d for %d modules", len(s), len(w.mods))
	}
	for i, j := range s {
		if w.mods[i].Fixed {
			if j != -1 {
				return fmt.Errorf("workflow: fixed module %d mapped to type %d", i, j)
			}
			continue
		}
		if j < 0 || j >= numTypes {
			return fmt.Errorf("workflow: module %d mapped to invalid type %d", i, j)
		}
	}
	return nil
}

// Times returns the per-module execution times under schedule s.
func (m *Matrices) Times(s Schedule) []float64 {
	return m.TimesInto(s, nil)
}

// TimesInto fills dst with the per-module execution times under schedule s
// and returns it, allocating only when dst is nil or of the wrong length.
// Reusing one buffer across greedy iterations keeps the scheduler hot loop
// allocation-free.
func (m *Matrices) TimesInto(s Schedule, dst []float64) []float64 {
	if len(dst) != len(m.TE) {
		// medcc:lint-ignore allocfree — first-use growth; steady state reuses dst.
		dst = make([]float64, len(m.TE))
	}
	for i, j := range s {
		if j < 0 {
			dst[i] = m.TE[i][0] // fixed module: identical in every column
			continue
		}
		dst[i] = m.TE[i][j]
	}
	return dst
}

// Cost returns C_total, the summed execution cost of schedule s (Eq. 9).
func (m *Matrices) Cost(s Schedule) float64 {
	total := 0.0
	for i, j := range s {
		if j < 0 {
			continue
		}
		total += m.CE[i][j]
	}
	return total
}

// Evaluation bundles the analytic performance of a schedule.
type Evaluation struct {
	// Makespan is the end-to-end delay (MED objective, Eq. 8).
	Makespan float64
	// Cost is the total financial cost.
	Cost float64
	// Timing is the full forward/backward pass, for slack queries.
	Timing *dag.Timing
}

// Evaluate computes makespan and cost of s on workflow w. A nil edgeW means
// zero transfer times (intra-datacenter).
func (w *Workflow) Evaluate(m *Matrices, s Schedule, edgeW dag.EdgeWeight) (*Evaluation, error) {
	if err := w.ValidateSchedule(s, len(m.Catalog)); err != nil {
		return nil, err
	}
	t, err := dag.NewTiming(w.g, m.Times(s), edgeW)
	if err != nil {
		return nil, err
	}
	return &Evaluation{Makespan: t.Makespan, Cost: m.Cost(s), Timing: t}, nil
}

// LeastCost returns S_least-cost: each schedulable module mapped to its
// min-cost type, ties broken by the minimum execution time among the
// cheapest types (Alg. 1 step 2). Fixed modules get -1.
func (m *Matrices) LeastCost(w *Workflow) Schedule {
	return m.LeastCostInto(w, nil)
}

// LeastCostInto writes the least-cost schedule into dst and returns it,
// allocating only when dst is nil or of the wrong length.
func (m *Matrices) LeastCostInto(w *Workflow, dst Schedule) Schedule {
	s := dst
	if len(s) != len(m.TE) {
		// medcc:lint-ignore allocfree — first-use growth; steady state reuses dst.
		s = make(Schedule, len(m.TE))
	}
	for i := range m.TE {
		if w.mods[i].Fixed {
			s[i] = -1
			continue
		}
		best := 0
		for j := 1; j < len(m.Catalog); j++ {
			cj, cb := m.CE[i][j], m.CE[i][best]
			switch {
			case cj < cb:
				best = j
			// medcc:lint-ignore floateq — tie-break on identical table cells; both sides read straight from CE.
			case cj == cb && m.TE[i][j] < m.TE[i][best]:
				best = j
			}
		}
		s[i] = best
	}
	return s
}

// Fastest returns S_fastest: each schedulable module mapped to its
// min-time type, ties broken by minimum cost.
func (m *Matrices) Fastest(w *Workflow) Schedule {
	return m.FastestInto(w, nil)
}

// FastestInto writes the fastest schedule into dst and returns it,
// allocating only when dst is nil or of the wrong length.
func (m *Matrices) FastestInto(w *Workflow, dst Schedule) Schedule {
	s := dst
	if len(s) != len(m.TE) {
		// medcc:lint-ignore allocfree — first-use growth; steady state reuses dst.
		s = make(Schedule, len(m.TE))
	}
	for i := range m.TE {
		if w.mods[i].Fixed {
			s[i] = -1
			continue
		}
		best := 0
		for j := 1; j < len(m.Catalog); j++ {
			tj, tb := m.TE[i][j], m.TE[i][best]
			switch {
			case tj < tb:
				best = j
			// medcc:lint-ignore floateq — tie-break on identical table cells; both sides read straight from TE.
			case tj == tb && m.CE[i][j] < m.CE[i][best]:
				best = j
			}
		}
		s[i] = best
	}
	return s
}

// BudgetRange returns [Cmin, Cmax]: the cost of the least-cost schedule
// (below which no feasible schedule exists) and of the fastest schedule
// (above which extra budget is wasted), per §V-B.
func (m *Matrices) BudgetRange(w *Workflow) (cmin, cmax float64) {
	cmin = m.Cost(m.LeastCost(w))
	cmax = m.Cost(m.Fastest(w))
	return cmin, cmax
}
