package workflow

import (
	"strings"
	"testing"

	"medcc/internal/cloud"
)

func TestExportDOTWithSchedule(t *testing.T) {
	w, cat := PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	s := m.LeastCost(w)
	dot, err := w.ExportDOT(s, cat, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"digraph workflow", "rankdir=LR",
		"w3\\nWL 21 -> VT1 (7)",     // workload, type, exec time
		"fillcolor=lightgoldenrod1", // VT2 color
		"shape=ellipse",             // fixed entry/exit
		"n5 -> n7",                  // an edge
		`label="1"`,                 // a data size
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestExportDOTStructureOnly(t *testing.T) {
	w, _ := PaperExample()
	dot, err := w.ExportDOT(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(dot, "fillcolor=light") {
		t.Fatal("structure-only render colored nodes")
	}
	if !strings.Contains(dot, "WL 40") {
		t.Fatal("workloads missing")
	}
}

func TestExportDOTRejectsBadSchedule(t *testing.T) {
	w, cat := PaperExample()
	if _, err := w.ExportDOT(Schedule{0}, cat, nil); err == nil {
		t.Fatal("bad schedule accepted")
	}
}
