package workflow

import (
	"fmt"

	"medcc/internal/cloud"
)

// PaperExample reconstructs the numerical example of §V-B (Fig. 4 and
// Table I): six computing modules w1..w6 between a fixed one-hour entry
// module w0 and exit module w7, scheduled over three VM types with
// VP = {3, 15, 30} and CV = {1, 4, 8}.
//
// The module workloads {10, 40, 21, 20, 40, 18} are inferred from the
// exact budget breakpoints of Table II (48, 49, 50, 52, 56, 60, 64): they
// reproduce the paper's least-cost schedule (w1,w2,w5 on VT2 and w3,w4,w6
// on VT1 at Cmin = 48), the fastest schedule (all VT3 at Cmax = 64), and
// every per-module rescheduling cost increment. The exact edge set of
// Fig. 4 is only legible in the figure; the edges chosen here give the
// same qualitative MED staircase (see EXPERIMENTS.md, experiment E2).
func PaperExample() (*Workflow, cloud.Catalog) {
	w := New()
	w.AddModule(Module{Name: "w0", Fixed: true, FixedTime: 1}) // entry
	for i, wl := range []float64{10, 40, 21, 20, 40, 18} {
		w.AddModule(Module{Name: fmt.Sprintf("w%d", i+1), Workload: wl})
	}
	w.AddModule(Module{Name: "w7", Fixed: true, FixedTime: 1}) // exit

	// Two three-module chains with cross edges; data sizes are cosmetic
	// under the paper's zero intra-cloud transfer assumption.
	edges := []struct {
		u, v int
		ds   float64
	}{
		{0, 1, 2}, {0, 2, 3},
		{1, 3, 2}, {2, 4, 4},
		{1, 4, 1}, {3, 6, 2},
		{3, 5, 3}, {4, 6, 2},
		{5, 7, 1}, {6, 7, 1},
	}
	for _, e := range edges {
		if err := w.AddDependency(e.u, e.v, e.ds); err != nil {
			panic(err) // static example: any failure is a programming error
		}
	}
	return w, cloud.PaperExampleCatalog()
}

// NewPipeline builds a linear pipeline workflow from the given workloads
// (no fixed entry/exit modules), the MED-CC-Pipeline special case used in
// the NP-completeness reduction of §IV.
func NewPipeline(workloads []float64) *Workflow {
	w := New()
	for i, wl := range workloads {
		w.AddModule(Module{Name: fmt.Sprintf("w%d", i), Workload: wl})
		if i > 0 {
			if err := w.AddDependency(i-1, i, 0); err != nil {
				panic(err)
			}
		}
	}
	return w
}
