package dax

import (
	"strings"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/sched"
)

const montageDAX = `<?xml version="1.0" encoding="UTF-8"?>
<adag name="montage-tiny" jobCount="5">
  <job id="ID01" name="mProject" runtime="13.5">
    <uses file="raw1.fits" link="input" size="2000000"/>
    <uses file="proj1.fits" link="output" size="4000000"/>
  </job>
  <job id="ID02" name="mProject" runtime="12.1">
    <uses file="raw2.fits" link="input" size="2000000"/>
    <uses file="proj2.fits" link="output" size="4000000"/>
  </job>
  <job id="ID03" name="mDiffFit" runtime="5.2">
    <uses file="proj1.fits" link="input" size="4000000"/>
    <uses file="proj2.fits" link="input" size="4000000"/>
    <uses file="diff.fits" link="output" size="1000000"/>
  </job>
  <job id="ID04" name="mBgModel" runtime="44.0">
    <uses file="diff.fits" link="input" size="1000000"/>
    <uses file="corr.tbl" link="output" size="500000"/>
  </job>
  <job id="ID05" name="mAdd" runtime="80.9">
    <uses file="corr.tbl" link="input" size="500000"/>
    <uses file="proj1.fits" link="input" size="4000000"/>
    <uses file="proj2.fits" link="input" size="4000000"/>
    <uses file="mosaic.fits" link="output" size="9000000"/>
  </job>
  <child ref="ID03"><parent ref="ID01"/><parent ref="ID02"/></child>
  <child ref="ID04"><parent ref="ID03"/></child>
  <child ref="ID05"><parent ref="ID04"/><parent ref="ID01"/><parent ref="ID02"/></child>
</adag>`

func TestParseMontage(t *testing.T) {
	w, ids, err := Parse(strings.NewReader(montageDAX), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumModules() != 5 || len(ids) != 5 {
		t.Fatalf("%d modules, %d ids", w.NumModules(), len(ids))
	}
	if ids[0] != "ID01" || ids[4] != "ID05" {
		t.Fatalf("ids = %v", ids)
	}
	if w.Module(0).Name != "mProject" || w.Module(0).Workload != 13.5 {
		t.Fatalf("module 0 = %+v", w.Module(0))
	}
	// Explicit edges: 2 into ID03, 1 into ID04, 3 into ID05 = 6.
	if w.NumDependencies() != 6 {
		t.Fatalf("%d edges, want 6", w.NumDependencies())
	}
	// Edge ID01->ID03 carries proj1.fits: 4 MB = 4 data units.
	if got := w.DataSize(0, 2); got != 4 {
		t.Fatalf("data size ID01->ID03 = %v, want 4", got)
	}
	// Edge ID04->ID05 carries corr.tbl: 0.5 units.
	if got := w.DataSize(3, 4); got != 0.5 {
		t.Fatalf("data size ID04->ID05 = %v, want 0.5", got)
	}
}

func TestParseReferencePowerScalesWorkloads(t *testing.T) {
	w, _, err := Parse(strings.NewReader(montageDAX), Options{ReferencePower: 10})
	if err != nil {
		t.Fatal(err)
	}
	if w.Module(4).Workload != 809 {
		t.Fatalf("workload = %v, want 809", w.Module(4).Workload)
	}
}

func TestParseInferEdges(t *testing.T) {
	// Same jobs without any <child> elements: only file inference can
	// recover the structure.
	noChildren := montageDAX[:strings.Index(montageDAX, "<child")] + "</adag>"
	w, _, err := Parse(strings.NewReader(noChildren), Options{InferEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumDependencies() != 6 {
		t.Fatalf("inferred %d edges, want 6", w.NumDependencies())
	}
	// And without inference the same input is an unconnected job bag.
	w2, _, err := Parse(strings.NewReader(noChildren), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.NumDependencies() != 0 {
		t.Fatalf("%d edges without inference", w2.NumDependencies())
	}
}

func TestParsedWorkflowSchedules(t *testing.T) {
	w, _, err := Parse(strings.NewReader(montageDAX), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := cloud.DiminishingCatalog(3, 1, 1, 0.75)
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(w)
	res, err := sched.Run(sched.CriticalGreedy(), w, m, (cmin+cmax)/2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MED <= 0 || res.Cost > (cmin+cmax)/2+1e-9 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":     `garbage`,
		"no jobs":     `<adag name="x"></adag>`,
		"empty id":    `<adag><job name="a" runtime="1"/></adag>`,
		"dup id":      `<adag><job id="a" runtime="1"/><job id="a" runtime="1"/></adag>`,
		"neg runtime": `<adag><job id="a" runtime="-1"/></adag>`,
		"neg size":    `<adag><job id="a" runtime="1"><uses file="f" link="output" size="-5"/></job></adag>`,
		"bad child":   `<adag><job id="a" runtime="1"/><child ref="zz"><parent ref="a"/></child></adag>`,
		"bad parent":  `<adag><job id="a" runtime="1"/><child ref="a"><parent ref="zz"/></child></adag>`,
		"cyclic":      `<adag><job id="a" runtime="1"/><job id="b" runtime="1"/><child ref="a"><parent ref="b"/></child><child ref="b"><parent ref="a"/></child></adag>`,
		"self cycle":  `<adag><job id="a" runtime="1"/><child ref="a"><parent ref="a"/></child></adag>`,
	}
	for name, in := range cases {
		if _, _, err := Parse(strings.NewReader(in), Options{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func FuzzParse(f *testing.F) {
	f.Add([]byte(montageDAX))
	f.Add([]byte(`<adag><job id="a" runtime="1"/></adag>`))
	f.Add([]byte(`<adag></adag>`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, ids, err := Parse(strings.NewReader(string(data)), Options{InferEdges: true})
		if err != nil {
			return
		}
		if w.NumModules() != len(ids) {
			t.Fatal("module/id count mismatch")
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("accepted invalid workflow: %v", err)
		}
	})
}
