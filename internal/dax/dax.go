// Package dax parses Pegasus DAX workflow descriptions (the abstract DAG
// XML format used by the scientific-workflow community — Montage,
// CyberShake, Epigenomics and the other reference workflows are published
// in it) into this module's workflow model, so MED-CC scheduling can run
// on community-standard inputs.
//
// Mapping: a <job> becomes a module whose workload is runtime x
// ReferencePower (a VM of that power reproduces the published runtime);
// <child>/<parent> elements become dependency edges; an edge's data size
// is the total size of files the parent produces (link="output") that the
// child consumes (link="input"), in DataUnit bytes.
package dax

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"medcc/internal/workflow"
)

// Options control the DAX-to-workflow mapping.
type Options struct {
	// ReferencePower converts published runtimes to workloads:
	// workload = runtime * ReferencePower. Zero means 1 (a power-1 VM
	// matches the published runtimes).
	ReferencePower float64
	// DataUnit divides file sizes (bytes in standard DAX files) into
	// the data-size unit of the workflow model. Zero means 1 MB
	// (1_000_000 bytes per data unit).
	DataUnit float64
	// InferEdges adds producer-to-consumer edges derived from shared
	// files even when no explicit <child> relation exists. Standard
	// Pegasus DAX files carry explicit relations, but hand-written
	// ones often rely on file flow.
	InferEdges bool
}

type xmlJob struct {
	ID      string    `xml:"id,attr"`
	Name    string    `xml:"name,attr"`
	Runtime float64   `xml:"runtime,attr"`
	Uses    []xmlUses `xml:"uses"`
}

type xmlUses struct {
	File string  `xml:"file,attr"`
	Link string  `xml:"link,attr"`
	Size float64 `xml:"size,attr"`
}

type xmlChild struct {
	Ref     string      `xml:"ref,attr"`
	Parents []xmlParent `xml:"parent"`
}

type xmlParent struct {
	Ref string `xml:"ref,attr"`
}

// Parse reads a DAX document and returns the equivalent workflow plus the
// job IDs in module-index order.
func Parse(r io.Reader, opts Options) (*workflow.Workflow, []string, error) {
	if opts.ReferencePower == 0 {
		opts.ReferencePower = 1
	}
	if opts.DataUnit == 0 {
		opts.DataUnit = 1_000_000
	}
	// Stream the document element-at-a-time: only one <job> or <child>
	// subtree is materialized at any moment, so memory is bounded by the
	// workflow's logical size, never the raw XML size (bulky unknown
	// elements are skipped without buffering).
	var (
		docName  string
		jobs     []xmlJob
		children []xmlChild
	)
	dec := xml.NewDecoder(r)
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("dax: decode: %w", err)
		}
		switch se := tok.(type) {
		case xml.StartElement:
			switch {
			case depth == 0 && se.Name.Local == "adag":
				for _, a := range se.Attr {
					if a.Name.Local == "name" {
						docName = a.Value
					}
				}
				depth++ // descend; jobs and children live directly below
			case depth == 1 && se.Name.Local == "job":
				var j xmlJob
				if err := dec.DecodeElement(&j, &se); err != nil {
					return nil, nil, fmt.Errorf("dax: job: %w", err)
				}
				jobs = append(jobs, j)
			case depth == 1 && se.Name.Local == "child":
				var c xmlChild
				if err := dec.DecodeElement(&c, &se); err != nil {
					return nil, nil, fmt.Errorf("dax: child: %w", err)
				}
				children = append(children, c)
			default:
				if err := dec.Skip(); err != nil {
					return nil, nil, fmt.Errorf("dax: decode: %w", err)
				}
			}
		case xml.EndElement:
			depth--
		}
	}
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("dax: %q has no jobs", docName)
	}

	w := workflow.New()
	index := make(map[string]int, len(jobs))
	ids := make([]string, 0, len(jobs))
	for _, j := range jobs {
		if j.ID == "" {
			return nil, nil, fmt.Errorf("dax: job with empty id")
		}
		if _, dup := index[j.ID]; dup {
			return nil, nil, fmt.Errorf("dax: duplicate job id %q", j.ID)
		}
		if j.Runtime < 0 {
			return nil, nil, fmt.Errorf("dax: job %q has negative runtime", j.ID)
		}
		name := j.Name
		if name == "" {
			name = j.ID
		}
		index[j.ID] = w.AddModule(workflow.Module{
			Name:     name,
			Workload: j.Runtime * opts.ReferencePower,
		})
		ids = append(ids, j.ID)
	}

	// File flow: producer and consumers per file, for edge data sizes
	// (and optionally edge inference).
	producerOf := map[string]int{}
	sizeOf := map[string]float64{}
	consumersOf := map[string][]int{}
	for _, j := range jobs {
		ji := index[j.ID]
		for _, u := range j.Uses {
			if u.Size < 0 {
				return nil, nil, fmt.Errorf("dax: job %q file %q has negative size", j.ID, u.File)
			}
			switch u.Link {
			case "output":
				producerOf[u.File] = ji
				sizeOf[u.File] = u.Size
			case "input":
				consumersOf[u.File] = append(consumersOf[u.File], ji)
				if _, ok := sizeOf[u.File]; !ok {
					sizeOf[u.File] = u.Size
				}
			}
		}
	}

	// edgeData accumulates the bytes moving along each explicit or
	// inferred edge.
	edgeData := map[[2]int]float64{}
	var edgeOrder [][2]int
	addEdge := func(p, c int, bytes float64) {
		key := [2]int{p, c}
		if _, ok := edgeData[key]; !ok {
			edgeOrder = append(edgeOrder, key)
		}
		edgeData[key] += bytes
	}
	for _, ch := range children {
		ci, ok := index[ch.Ref]
		if !ok {
			return nil, nil, fmt.Errorf("dax: child ref %q unknown", ch.Ref)
		}
		for _, par := range ch.Parents {
			pi, ok := index[par.Ref]
			if !ok {
				return nil, nil, fmt.Errorf("dax: parent ref %q unknown", par.Ref)
			}
			addEdge(pi, ci, 0)
		}
	}
	// Attribute file bytes to the producer->consumer pairs; create the
	// edges too when inference is on. Files are visited in sorted order:
	// map iteration order would otherwise leak into both the inferred
	// edge insertion order and the float accumulation order of bytes on
	// shared edges (found by mapiter).
	files := make([]string, 0, len(producerOf))
	for file := range producerOf {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		prod := producerOf[file]
		for _, cons := range consumersOf[file] {
			if cons == prod {
				continue
			}
			key := [2]int{prod, cons}
			if _, explicit := edgeData[key]; explicit || opts.InferEdges {
				addEdge(prod, cons, sizeOf[file])
			}
		}
	}

	for _, key := range edgeOrder {
		if err := w.AddDependency(key[0], key[1], edgeData[key]/opts.DataUnit); err != nil {
			return nil, nil, fmt.Errorf("dax: %w", err)
		}
	}
	if err := w.Validate(); err != nil {
		return nil, nil, fmt.Errorf("dax: %w", err)
	}
	return w, ids, nil
}
