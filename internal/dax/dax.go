// Package dax parses Pegasus DAX workflow descriptions (the abstract DAG
// XML format used by the scientific-workflow community — Montage,
// CyberShake, Epigenomics and the other reference workflows are published
// in it) into this module's workflow model, so MED-CC scheduling can run
// on community-standard inputs.
//
// Mapping: a <job> becomes a module whose workload is runtime x
// ReferencePower (a VM of that power reproduces the published runtime);
// <child>/<parent> elements become dependency edges; an edge's data size
// is the total size of files the parent produces (link="output") that the
// child consumes (link="input"), in DataUnit bytes.
package dax

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"medcc/internal/workflow"
)

// Options control the DAX-to-workflow mapping.
type Options struct {
	// ReferencePower converts published runtimes to workloads:
	// workload = runtime * ReferencePower. Zero means 1 (a power-1 VM
	// matches the published runtimes).
	ReferencePower float64
	// DataUnit divides file sizes (bytes in standard DAX files) into
	// the data-size unit of the workflow model. Zero means 1 MB
	// (1_000_000 bytes per data unit).
	DataUnit float64
	// InferEdges adds producer-to-consumer edges derived from shared
	// files even when no explicit <child> relation exists. Standard
	// Pegasus DAX files carry explicit relations, but hand-written
	// ones often rely on file flow.
	InferEdges bool
}

type xmlADAG struct {
	XMLName  xml.Name   `xml:"adag"`
	Name     string     `xml:"name,attr"`
	Jobs     []xmlJob   `xml:"job"`
	Children []xmlChild `xml:"child"`
}

type xmlJob struct {
	ID      string    `xml:"id,attr"`
	Name    string    `xml:"name,attr"`
	Runtime float64   `xml:"runtime,attr"`
	Uses    []xmlUses `xml:"uses"`
}

type xmlUses struct {
	File string  `xml:"file,attr"`
	Link string  `xml:"link,attr"`
	Size float64 `xml:"size,attr"`
}

type xmlChild struct {
	Ref     string      `xml:"ref,attr"`
	Parents []xmlParent `xml:"parent"`
}

type xmlParent struct {
	Ref string `xml:"ref,attr"`
}

// Parse reads a DAX document and returns the equivalent workflow plus the
// job IDs in module-index order.
func Parse(r io.Reader, opts Options) (*workflow.Workflow, []string, error) {
	if opts.ReferencePower == 0 {
		opts.ReferencePower = 1
	}
	if opts.DataUnit == 0 {
		opts.DataUnit = 1_000_000
	}
	var doc xmlADAG
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("dax: decode: %w", err)
	}
	if len(doc.Jobs) == 0 {
		return nil, nil, fmt.Errorf("dax: %q has no jobs", doc.Name)
	}

	w := workflow.New()
	index := make(map[string]int, len(doc.Jobs))
	ids := make([]string, 0, len(doc.Jobs))
	for _, j := range doc.Jobs {
		if j.ID == "" {
			return nil, nil, fmt.Errorf("dax: job with empty id")
		}
		if _, dup := index[j.ID]; dup {
			return nil, nil, fmt.Errorf("dax: duplicate job id %q", j.ID)
		}
		if j.Runtime < 0 {
			return nil, nil, fmt.Errorf("dax: job %q has negative runtime", j.ID)
		}
		name := j.Name
		if name == "" {
			name = j.ID
		}
		index[j.ID] = w.AddModule(workflow.Module{
			Name:     name,
			Workload: j.Runtime * opts.ReferencePower,
		})
		ids = append(ids, j.ID)
	}

	// File flow: producer and consumers per file, for edge data sizes
	// (and optionally edge inference).
	producerOf := map[string]int{}
	sizeOf := map[string]float64{}
	consumersOf := map[string][]int{}
	for _, j := range doc.Jobs {
		ji := index[j.ID]
		for _, u := range j.Uses {
			if u.Size < 0 {
				return nil, nil, fmt.Errorf("dax: job %q file %q has negative size", j.ID, u.File)
			}
			switch u.Link {
			case "output":
				producerOf[u.File] = ji
				sizeOf[u.File] = u.Size
			case "input":
				consumersOf[u.File] = append(consumersOf[u.File], ji)
				if _, ok := sizeOf[u.File]; !ok {
					sizeOf[u.File] = u.Size
				}
			}
		}
	}

	// edgeData accumulates the bytes moving along each explicit or
	// inferred edge.
	edgeData := map[[2]int]float64{}
	var edgeOrder [][2]int
	addEdge := func(p, c int, bytes float64) {
		key := [2]int{p, c}
		if _, ok := edgeData[key]; !ok {
			edgeOrder = append(edgeOrder, key)
		}
		edgeData[key] += bytes
	}
	for _, ch := range doc.Children {
		ci, ok := index[ch.Ref]
		if !ok {
			return nil, nil, fmt.Errorf("dax: child ref %q unknown", ch.Ref)
		}
		for _, par := range ch.Parents {
			pi, ok := index[par.Ref]
			if !ok {
				return nil, nil, fmt.Errorf("dax: parent ref %q unknown", par.Ref)
			}
			addEdge(pi, ci, 0)
		}
	}
	// Attribute file bytes to the producer->consumer pairs; create the
	// edges too when inference is on. Files are visited in sorted order:
	// map iteration order would otherwise leak into both the inferred
	// edge insertion order and the float accumulation order of bytes on
	// shared edges (found by mapiter).
	files := make([]string, 0, len(producerOf))
	for file := range producerOf {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		prod := producerOf[file]
		for _, cons := range consumersOf[file] {
			if cons == prod {
				continue
			}
			key := [2]int{prod, cons}
			if _, explicit := edgeData[key]; explicit || opts.InferEdges {
				addEdge(prod, cons, sizeOf[file])
			}
		}
	}

	for _, key := range edgeOrder {
		if err := w.AddDependency(key[0], key[1], edgeData[key]/opts.DataUnit); err != nil {
			return nil, nil, fmt.Errorf("dax: %w", err)
		}
	}
	if err := w.Validate(); err != nil {
		return nil, nil, fmt.Errorf("dax: %w", err)
	}
	return w, ids, nil
}
