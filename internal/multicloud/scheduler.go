package multicloud

import (
	"errors"
	"fmt"
	"math"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// ErrInfeasible reports a budget below the least-cost assignment's cost.
var ErrInfeasible = errors.New("multicloud: budget below minimum feasible cost")

// Result is a budget-feasible multi-cloud assignment with its evaluation.
type Result struct {
	Assignment Assignment
	MED        float64
	Cost       float64
}

// costEps absorbs float jitter in cost comparisons, as in package sched.
const costEps = 1e-9

// Schedule runs the multi-cloud Critical-Greedy: start from the least-cost
// assignment and greedily upgrade critical modules — possibly moving them
// across regions — while the budget allows.
//
// It generalizes the paper's Critical-Greedy. Because a move now changes
// the transfer times and egress fees of the module's incident edges, the
// per-move time decrease is measured on the whole-DAG makespan and the
// cost delta on the total (execution + transfer) cost: pick the
// critical-module move with the largest makespan decrease whose total
// cost increase fits the remaining budget, ties broken toward the smaller
// cost increase.
func (f *Fabric) Schedule(w *workflow.Workflow, budget float64) (*Result, error) {
	a, err := f.LeastCost(w)
	if err != nil {
		return nil, err
	}
	ev, err := f.Evaluate(w, a)
	if err != nil {
		return nil, err
	}
	cost := ev.TotalCost()
	if budget < cost-costEps {
		return nil, fmt.Errorf("%w: budget %.6g < Cmin %.6g", ErrInfeasible, budget, cost)
	}
	// Steady-state scratch: the current-assignment timing (from the initial
	// evaluation) and a second timing for trial moves, both refreshed in
	// place. A region move perturbs the transfer times of every incident
	// edge, so trials rebuild the whole pass via Update — still without any
	// per-trial allocation, and over the graph's cached topological order.
	// The edge-weight closure reads the live assignment, which both timings
	// share.
	g := w.Graph()
	mods := w.Schedulable()
	t := ev.Timing
	curMk := ev.Makespan
	ew := func(u, v int) float64 { return f.transferTime(w, a, u, v) }
	timesCur := make([]float64, w.NumModules())
	trialTimes := make([]float64, w.NumModules())
	var tTrial *dag.Timing
	execTimes := func(dst []float64) {
		for i := range dst {
			dst[i] = f.execTime(w, a, i)
		}
	}
	candidates := make([]int, 0, len(mods))
	for {
		cextra := budget - cost
		if cextra <= 0 {
			break
		}
		// Candidates: zero-slack schedulable modules under the
		// current assignment (transfer-aware timing).
		candidates = candidates[:0]
		for _, i := range mods {
			if t.IsCritical(i) {
				candidates = append(candidates, i)
			}
		}
		bi, br, bj := -1, -1, -1
		var bestDM, bestDC, bestMk float64
		for _, i := range candidates {
			curR, curT := a.Region[i], a.Type[i]
			for r := range f.Regions {
				for j := range f.Regions[r].Types {
					if r == curR && j == curT {
						continue
					}
					a.Region[i], a.Type[i] = r, j
					execTimes(trialTimes)
					if tTrial == nil {
						tt, err := dag.NewTiming(g, trialTimes, ew)
						if err != nil {
							a.Region[i], a.Type[i] = curR, curT
							return nil, err
						}
						tTrial = tt
					} else if err := tTrial.Update(trialTimes); err != nil {
						a.Region[i], a.Type[i] = curR, curT
						return nil, err
					}
					dm := curMk - tTrial.Makespan
					dc := f.assignmentCost(w, a) - cost
					if dm > dag.Eps && dc <= cextra+costEps {
						if bi == -1 || dm > bestDM+dag.Eps ||
							(dm >= bestDM-dag.Eps && dc < bestDC-costEps) {
							bi, br, bj = i, r, j
							bestDM, bestDC = dm, dc
							bestMk = tTrial.Makespan
						}
					}
				}
			}
			a.Region[i], a.Type[i] = curR, curT
		}
		if bi == -1 {
			break
		}
		a.Region[bi], a.Type[bi] = br, bj
		cost += bestDC
		curMk = bestMk
		// Refresh the current timing to the accepted assignment; the full
		// pass reproduces the winning trial's values bit for bit.
		execTimes(timesCur)
		if err := t.Update(timesCur); err != nil {
			return nil, err
		}
	}
	res := &Result{Assignment: a, MED: curMk, Cost: cost}
	// Portfolio guard: a greedy that may pay egress early can end worse
	// than never leaving one region, so the scheduler also evaluates
	// single-region confinement and returns the better of the two.
	if len(f.Regions) > 1 {
		if single, err := f.SingleRegionBest(w, budget); err == nil {
			if single.MED < res.MED-dag.Eps ||
				(math.Abs(single.MED-res.MED) <= dag.Eps && single.Cost < res.Cost) {
				res = single
			}
		}
	}
	return res, nil
}

// assignmentCost returns the total (execution + transfer) cost of a
// without building an Evaluation, summing in the same order as Evaluate so
// the floats are bit-identical.
func (f *Fabric) assignmentCost(w *workflow.Workflow, a Assignment) float64 {
	exec := 0.0
	for i := 0; i < w.NumModules(); i++ {
		exec += f.execCost(w, a, i)
	}
	transfer := 0.0
	g := w.Graph()
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Succ(u) {
			transfer += f.transferCost(w, a, u, v)
		}
	}
	return exec + transfer
}

// SingleRegionBest schedules within each region alone (no cross-cloud
// edges) and returns the best result — the baseline a multi-cloud
// scheduler must beat to justify paying egress.
func (f *Fabric) SingleRegionBest(w *workflow.Workflow, budget float64) (*Result, error) {
	var best *Result
	var firstErr error
	for r := range f.Regions {
		sub := &Fabric{
			Regions:   []Region{f.Regions[r]},
			Bandwidth: [][]float64{{0}},
			Delay:     [][]float64{{0}},
			Billing:   f.Billing,
		}
		res, err := sub.Schedule(w, budget)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// Map the region index back to the full fabric.
		for i := range res.Assignment.Region {
			if res.Assignment.Region[i] == 0 {
				res.Assignment.Region[i] = r
			}
		}
		if best == nil || res.MED < best.MED-dag.Eps ||
			(math.Abs(res.MED-best.MED) <= dag.Eps && res.Cost < best.Cost) {
			best = res
		}
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}
