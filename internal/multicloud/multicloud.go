// Package multicloud implements the paper's stated future work (§VII):
// budget-constrained workflow scheduling across multiple clouds, where
// inter-cloud data movement costs money (Eq. 4 with CR > 0) and takes
// time over limited inter-datacenter bandwidth (Eq. 5), so VM placement
// must consider connectivity in addition to processing power and price.
//
// A module is now assigned a (region, VM type) pair. Within a region,
// transfers remain free and fast (the single-datacenter assumption of the
// main model); between regions, each dependency edge pays an egress fee
// per data unit at the producer's region and a transfer time of
// DS/bandwidth + delay. Both the total cost and the makespan therefore
// depend on edge placement, not just node placement.
package multicloud

import (
	"errors"
	"fmt"
	"math"

	"medcc/internal/cloud"
	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// Region is one cloud datacenter: a VM type catalog plus an egress fee
// charged per data unit leaving the region.
type Region struct {
	Name string
	// Types is the region's VM catalog.
	Types cloud.Catalog
	// EgressCostPerUnit is CR for edges leaving this region.
	EgressCostPerUnit float64
}

// Fabric is a set of regions with pairwise bandwidth and latency.
type Fabric struct {
	Regions []Region
	// Bandwidth[a][b] is the data rate between regions a and b
	// (unused on the diagonal: intra-region transfers are free).
	Bandwidth [][]float64
	// Delay[a][b] is the one-way latency between regions a and b.
	Delay [][]float64
	// Billing applies to VM occupancy in every region.
	Billing cloud.BillingPolicy
}

// Validate checks fabric shape and parameter sanity.
func (f *Fabric) Validate() error {
	n := len(f.Regions)
	if n == 0 {
		return errors.New("multicloud: no regions")
	}
	seen := map[string]bool{}
	for i, r := range f.Regions {
		if r.Name == "" {
			return fmt.Errorf("multicloud: region %d unnamed", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("multicloud: duplicate region %q", r.Name)
		}
		seen[r.Name] = true
		if err := r.Types.Validate(); err != nil {
			return fmt.Errorf("multicloud: region %q: %w", r.Name, err)
		}
		if r.EgressCostPerUnit < 0 || math.IsNaN(r.EgressCostPerUnit) {
			return fmt.Errorf("multicloud: region %q egress %v", r.Name, r.EgressCostPerUnit)
		}
	}
	if len(f.Bandwidth) != n || len(f.Delay) != n {
		return fmt.Errorf("multicloud: bandwidth/delay matrices must be %dx%d", n, n)
	}
	for a := 0; a < n; a++ {
		if len(f.Bandwidth[a]) != n || len(f.Delay[a]) != n {
			return fmt.Errorf("multicloud: row %d has wrong width", a)
		}
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if !(f.Bandwidth[a][b] > 0) {
				return fmt.Errorf("multicloud: bandwidth[%d][%d] = %v", a, b, f.Bandwidth[a][b])
			}
			if f.Delay[a][b] < 0 || math.IsNaN(f.Delay[a][b]) {
				return fmt.Errorf("multicloud: delay[%d][%d] = %v", a, b, f.Delay[a][b])
			}
		}
	}
	if f.Billing == nil {
		return errors.New("multicloud: nil billing policy")
	}
	return nil
}

// Assignment maps every module to a (region, type) pair; fixed modules
// carry (-1, -1). Both slices are indexed by module.
type Assignment struct {
	Region []int
	Type   []int
}

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	return Assignment{
		Region: append([]int(nil), a.Region...),
		Type:   append([]int(nil), a.Type...),
	}
}

// Validate checks the assignment against the workflow and fabric.
func (f *Fabric) ValidateAssignment(w *workflow.Workflow, a Assignment) error {
	if len(a.Region) != w.NumModules() || len(a.Type) != w.NumModules() {
		return fmt.Errorf("multicloud: assignment length %d/%d for %d modules",
			len(a.Region), len(a.Type), w.NumModules())
	}
	for i := 0; i < w.NumModules(); i++ {
		if w.Module(i).Fixed {
			if a.Region[i] != -1 || a.Type[i] != -1 {
				return fmt.Errorf("multicloud: fixed module %d assigned", i)
			}
			continue
		}
		r := a.Region[i]
		if r < 0 || r >= len(f.Regions) {
			return fmt.Errorf("multicloud: module %d region %d out of range", i, r)
		}
		if a.Type[i] < 0 || a.Type[i] >= len(f.Regions[r].Types) {
			return fmt.Errorf("multicloud: module %d type %d out of range in region %d", i, a.Type[i], r)
		}
	}
	return nil
}

// execTime returns the execution time of module i under assignment a.
func (f *Fabric) execTime(w *workflow.Workflow, a Assignment, i int) float64 {
	if w.Module(i).Fixed {
		return w.Module(i).FixedTime
	}
	return f.Regions[a.Region[i]].Types[a.Type[i]].ExecTime(w.Module(i).Workload)
}

// execCost returns the billed execution cost of module i.
func (f *Fabric) execCost(w *workflow.Workflow, a Assignment, i int) float64 {
	if w.Module(i).Fixed {
		return 0
	}
	vt := f.Regions[a.Region[i]].Types[a.Type[i]]
	return f.Billing.BilledTime(vt.ExecTime(w.Module(i).Workload)) * vt.Rate
}

// regionOf returns the effective region of module i for transfer purposes;
// fixed entry/exit modules are region-less and their edges are free, which
// models staging input/output through the user's own storage.
func regionOf(w *workflow.Workflow, a Assignment, i int) int {
	if w.Module(i).Fixed {
		return -1
	}
	return a.Region[i]
}

// transferTime returns T(R_uv) under the assignment (Eq. 5).
func (f *Fabric) transferTime(w *workflow.Workflow, a Assignment, u, v int) float64 {
	ru, rv := regionOf(w, a, u), regionOf(w, a, v)
	if ru < 0 || rv < 0 || ru == rv {
		return 0
	}
	ds := w.DataSize(u, v)
	if ds == 0 {
		return 0
	}
	return ds/f.Bandwidth[ru][rv] + f.Delay[ru][rv]
}

// transferCost returns C(R_uv) = CR * DS for cross-region edges (Eq. 4).
func (f *Fabric) transferCost(w *workflow.Workflow, a Assignment, u, v int) float64 {
	ru, rv := regionOf(w, a, u), regionOf(w, a, v)
	if ru < 0 || rv < 0 || ru == rv {
		return 0
	}
	return f.Regions[ru].EgressCostPerUnit * w.DataSize(u, v)
}

// Evaluation is the analytic performance of a multi-cloud assignment.
type Evaluation struct {
	Makespan     float64
	ExecCost     float64
	TransferCost float64
	Timing       *dag.Timing
}

// TotalCost returns execution plus data-movement cost.
func (e *Evaluation) TotalCost() float64 { return e.ExecCost + e.TransferCost }

// Evaluate computes makespan (with assignment-dependent transfer times)
// and total cost of an assignment.
func (f *Fabric) Evaluate(w *workflow.Workflow, a Assignment) (*Evaluation, error) {
	if err := f.ValidateAssignment(w, a); err != nil {
		return nil, err
	}
	times := make([]float64, w.NumModules())
	for i := range times {
		times[i] = f.execTime(w, a, i)
	}
	t, err := dag.NewTiming(w.Graph(), times, func(u, v int) float64 {
		return f.transferTime(w, a, u, v)
	})
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{Makespan: t.Makespan, Timing: t}
	for i := 0; i < w.NumModules(); i++ {
		ev.ExecCost += f.execCost(w, a, i)
	}
	g := w.Graph()
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Succ(u) {
			ev.TransferCost += f.transferCost(w, a, u, v)
		}
	}
	return ev, nil
}

// LeastCost returns the assignment minimizing total cost when every module
// independently picks its cheapest (region, type) pair and all modules
// co-locate in the globally cheapest region when that saves transfer fees.
// Exact least-cost with transfer fees is itself NP-hard (it contains
// multiterminal cut), so this returns the better of two natural
// candidates: per-module-cheapest and best-single-region.
func (f *Fabric) LeastCost(w *workflow.Workflow) (Assignment, error) {
	if err := f.Validate(); err != nil {
		return Assignment{}, err
	}
	if err := w.Validate(); err != nil {
		return Assignment{}, err
	}
	perModule := f.emptyAssignment(w)
	for _, i := range w.Schedulable() {
		br, bt, bc := -1, -1, math.Inf(1)
		for r := range f.Regions {
			for j := range f.Regions[r].Types {
				perModule.Region[i], perModule.Type[i] = r, j
				c := f.execCost(w, perModule, i)
				if c < bc {
					br, bt, bc = r, j, c
				}
			}
		}
		perModule.Region[i], perModule.Type[i] = br, bt
	}
	best := perModule
	bestEv, err := f.Evaluate(w, perModule)
	if err != nil {
		return Assignment{}, err
	}
	bestCost := bestEv.TotalCost()

	for r := range f.Regions {
		single := f.emptyAssignment(w)
		for _, i := range w.Schedulable() {
			bj, bc := -1, math.Inf(1)
			for j := range f.Regions[r].Types {
				single.Region[i], single.Type[i] = r, j
				c := f.execCost(w, single, i)
				if c < bc {
					bj, bc = j, c
				}
			}
			single.Region[i], single.Type[i] = r, bj
		}
		ev, err := f.Evaluate(w, single)
		if err != nil {
			return Assignment{}, err
		}
		if ev.TotalCost() < bestCost {
			best, bestCost = single, ev.TotalCost()
		}
	}
	return best, nil
}

func (f *Fabric) emptyAssignment(w *workflow.Workflow) Assignment {
	a := Assignment{
		Region: make([]int, w.NumModules()),
		Type:   make([]int, w.NumModules()),
	}
	for i := range a.Region {
		a.Region[i], a.Type[i] = -1, -1
	}
	return a
}
