package multicloud

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/workflow"
)

// twoRegions builds a fabric with a cheap-but-slow region and a
// fast-but-pricey region, moderate inter-cloud bandwidth.
func twoRegions() *Fabric {
	return &Fabric{
		Regions: []Region{
			{
				Name: "economy",
				Types: cloud.Catalog{
					{Name: "e1", Power: 3, Rate: 1},
					{Name: "e2", Power: 5, Rate: 2},
				},
				EgressCostPerUnit: 0.2,
			},
			{
				Name: "premium",
				Types: cloud.Catalog{
					{Name: "p1", Power: 12, Rate: 6},
					{Name: "p2", Power: 24, Rate: 14},
				},
				EgressCostPerUnit: 0.5,
			},
		},
		Bandwidth: [][]float64{{0, 20}, {20, 0}},
		Delay:     [][]float64{{0, 0.05}, {0.05, 0}},
		Billing:   cloud.HourlyRoundUp,
	}
}

func chainWorkflow(t *testing.T, workloads []float64, ds float64) *workflow.Workflow {
	t.Helper()
	w := workflow.New()
	for i, wl := range workloads {
		w.AddModule(workflow.Module{Name: "m", Workload: wl})
		if i > 0 {
			if err := w.AddDependency(i-1, i, ds); err != nil {
				t.Fatal(err)
			}
		}
	}
	return w
}

func TestFabricValidate(t *testing.T) {
	if err := twoRegions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Fabric{
		{},
		{Regions: []Region{{Name: "", Types: cloud.PaperExampleCatalog()}}},
		{Regions: []Region{
			{Name: "a", Types: cloud.PaperExampleCatalog()},
			{Name: "a", Types: cloud.PaperExampleCatalog()},
		}},
		{Regions: []Region{{Name: "a", Types: cloud.Catalog{}}}},
		{Regions: []Region{{Name: "a", Types: cloud.PaperExampleCatalog(), EgressCostPerUnit: -1}}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad fabric %d accepted", i)
		}
	}
	// Matrix shape errors.
	f := twoRegions()
	f.Bandwidth = [][]float64{{0, 1}}
	if err := f.Validate(); err == nil {
		t.Fatal("short bandwidth matrix accepted")
	}
	f = twoRegions()
	f.Bandwidth[0][1] = 0
	if err := f.Validate(); err == nil {
		t.Fatal("zero inter-region bandwidth accepted")
	}
	f = twoRegions()
	f.Billing = nil
	if err := f.Validate(); err == nil {
		t.Fatal("nil billing accepted")
	}
}

func TestEvaluateAccountsTransfers(t *testing.T) {
	f := twoRegions()
	w := chainWorkflow(t, []float64{12, 12}, 40)
	a := f.emptyAssignment(w)
	// Both in economy on e1: no transfers.
	a.Region[0], a.Type[0] = 0, 0
	a.Region[1], a.Type[1] = 0, 0
	same, err := f.Evaluate(w, a)
	if err != nil {
		t.Fatal(err)
	}
	if same.TransferCost != 0 {
		t.Fatalf("intra-region transfer cost %v", same.TransferCost)
	}
	// 12/3 = 4h each, serial: makespan 8.
	if math.Abs(same.Makespan-8) > 1e-9 {
		t.Fatalf("makespan %v, want 8", same.Makespan)
	}
	// Split across regions: pay 40 units egress at economy's 0.2 and a
	// transfer of 40/20 + 0.05 = 2.05 on the edge.
	a.Region[1], a.Type[1] = 1, 0
	split, err := f.Evaluate(w, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(split.TransferCost-8) > 1e-9 {
		t.Fatalf("egress cost %v, want 8", split.TransferCost)
	}
	wantMakespan := 4 + 2.05 + 1 // e1 4h, transfer, p1 1h
	if math.Abs(split.Makespan-wantMakespan) > 1e-9 {
		t.Fatalf("makespan %v, want %v", split.Makespan, wantMakespan)
	}
}

func TestEvaluateRejectsBadAssignment(t *testing.T) {
	f := twoRegions()
	w := chainWorkflow(t, []float64{10, 10}, 1)
	a := f.emptyAssignment(w)
	if _, err := f.Evaluate(w, a); err == nil {
		t.Fatal("unassigned modules accepted")
	}
	a.Region[0], a.Type[0] = 0, 0
	a.Region[1], a.Type[1] = 5, 0
	if _, err := f.Evaluate(w, a); err == nil {
		t.Fatal("out-of-range region accepted")
	}
	a.Region[1], a.Type[1] = 1, 9
	if _, err := f.Evaluate(w, a); err == nil {
		t.Fatal("out-of-range type accepted")
	}
}

func TestLeastCostPrefersCoLocationUnderEgress(t *testing.T) {
	// Heavy edges make the per-module-cheapest split more expensive
	// than staying in one region; LeastCost must return the co-located
	// variant.
	f := twoRegions()
	// Make premium's p1 the cheapest executor for big modules (rate 6,
	// power 12 vs economy 1/3): WL=36: economy e1 12h/$12; premium p1
	// 3h/$18. Economy stays cheapest per module, so per-module-cheapest
	// co-locates anyway; invert with a module whose rounding favors
	// premium: WL=2: e1 0.67h/$1; p1 0.17h/$6. Still economy. With
	// this fabric per-module-cheapest is all-economy, so the property
	// to check is that LeastCost never splits when splitting pays
	// egress for nothing.
	w := chainWorkflow(t, []float64{36, 2, 36}, 100)
	a, err := f.LeastCost(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range w.Schedulable() {
		if a.Region[i] != a.Region[0] {
			t.Fatalf("least-cost split regions: %v", a.Region)
		}
	}
}

func TestScheduleBudgetInvariants(t *testing.T) {
	f := twoRegions()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		w, err := gen.Random(rng, gen.Params{
			Modules: 8, Edges: 14,
			WorkloadMin: 10, WorkloadMax: 80,
			DataSizeMax: 20, AddEntryExit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		lc, err := f.LeastCost(w)
		if err != nil {
			t.Fatal(err)
		}
		lcEv, err := f.Evaluate(w, lc)
		if err != nil {
			t.Fatal(err)
		}
		cmin := lcEv.TotalCost()
		for _, frac := range []float64{1.0, 1.3, 2.0, 4.0} {
			b := cmin * frac
			res, err := f.Schedule(w, b)
			if err != nil {
				t.Fatalf("trial %d frac %v: %v", trial, frac, err)
			}
			if res.Cost > b+1e-9 {
				t.Fatalf("trial %d: cost %v over budget %v", trial, res.Cost, b)
			}
			if res.MED > lcEv.Makespan+1e-9 {
				t.Fatalf("trial %d: MED %v worse than least-cost %v", trial, res.MED, lcEv.Makespan)
			}
			if err := f.ValidateAssignment(w, res.Assignment); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		if _, err := f.Schedule(w, cmin*0.5); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("trial %d: infeasible budget err = %v", trial, err)
		}
	}
}

func TestMultiCloudBeatsBestSingleRegion(t *testing.T) {
	// A two-branch workflow: a huge compute-heavy branch (cheap region
	// can't speed it, premium can) and light glue modules. With light
	// edges, shipping the heavy branch to the premium region wins over
	// any single region at a budget that a premium-only run of the
	// whole workflow cannot afford.
	f := twoRegions()
	w := workflow.New()
	glue1 := w.AddModule(workflow.Module{Name: "glue1", Workload: 3})
	heavy := w.AddModule(workflow.Module{Name: "heavy", Workload: 240})
	light := w.AddModule(workflow.Module{Name: "light", Workload: 6})
	glue2 := w.AddModule(workflow.Module{Name: "glue2", Workload: 3})
	for _, e := range [][2]int{{glue1, heavy}, {glue1, light}, {heavy, glue2}, {light, glue2}} {
		if err := w.AddDependency(e[0], e[1], 0.5); err != nil {
			t.Fatal(err)
		}
	}
	// All-economy least-cost is ~84; running everything in the premium
	// region costs >= 154; shipping just the heavy module to premium
	// costs ~144 plus pennies of egress. A budget of 150 therefore
	// admits the hybrid but not the premium-only schedule.
	const budget = 150.0

	multi, err := f.Schedule(w, budget)
	if err != nil {
		t.Fatal(err)
	}
	single, err := f.SingleRegionBest(w, budget)
	if err != nil {
		t.Fatal(err)
	}
	if multi.MED >= single.MED {
		t.Fatalf("multi-cloud MED %v not better than best single region %v", multi.MED, single.MED)
	}
	// And the winning assignment really does span regions.
	regions := map[int]bool{}
	for _, i := range w.Schedulable() {
		regions[multi.Assignment.Region[i]] = true
	}
	if len(regions) < 2 {
		t.Fatalf("multi-cloud schedule stayed in one region: %v", multi.Assignment.Region)
	}
}

func TestAssignmentClone(t *testing.T) {
	a := Assignment{Region: []int{1, 2}, Type: []int{0, 1}}
	c := a.Clone()
	c.Region[0] = 9
	c.Type[1] = 9
	if a.Region[0] == 9 || a.Type[1] == 9 {
		t.Fatal("clone not independent")
	}
}

func TestSingleRegionBestInfeasibleEverywhere(t *testing.T) {
	f := twoRegions()
	w := chainWorkflow(t, []float64{100}, 0)
	if _, err := f.SingleRegionBest(w, 0.01); err == nil {
		t.Fatal("infeasible budget accepted")
	}
}
