package encoding

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"medcc/internal/cloud"
	"medcc/internal/workflow"
)

// maxRecordLen caps one record body; anything larger in a length prefix
// marks a corrupt or adversarial file and is rejected before a buffer
// is sized from it.
const maxRecordLen = 1 << 28

// CorpusWriter streams instance records (workflow + catalog + instance
// info) to one container file. Catalogs are deduplicated: the first
// appearance of a distinct catalog is encoded inline as a ChunkCatalog,
// later records reference it by order of appearance via ChunkCatalogRef,
// so a 10^5-instance corpus over a handful of catalogs stores each
// catalog once.
type CorpusWriter struct {
	w        *bufio.Writer
	b        RecordBuilder
	rec      []byte
	cats     []cloud.Catalog
	compress bool
	count    int
}

// NewCorpusWriter starts a streamed corpus (record count unknown up
// front) on w. With compress set, chunks that shrink under DEFLATE are
// stored compressed. Call Flush when done.
func NewCorpusWriter(w io.Writer, compress bool) (*CorpusWriter, error) {
	cw := &CorpusWriter{w: bufio.NewWriterSize(w, 1<<16), compress: compress}
	hdr := AppendHeader(cw.rec[:0], StreamRecordCount)
	if _, err := cw.w.Write(hdr); err != nil {
		return nil, err
	}
	return cw, nil
}

// WriteInstance appends one instance record.
func (cw *CorpusWriter) WriteInstance(wf *workflow.Workflow, cat cloud.Catalog, info InstanceInfo) error {
	cw.b.Begin()
	if err := cw.b.Workflow(wf); err != nil {
		return err
	}
	if idx := cw.catalogIndex(cat); idx >= 0 {
		cw.b.CatalogRef(idx)
	} else {
		if err := cw.b.Catalog(cat); err != nil {
			return err
		}
		cw.cats = append(cw.cats, append(cloud.Catalog(nil), cat...))
	}
	cw.b.InstanceInfo(info)
	rec, err := cw.b.AppendRecord(cw.rec[:0], cw.compress)
	if err != nil {
		return err
	}
	cw.rec = rec
	if _, err := cw.w.Write(rec); err != nil {
		return err
	}
	cw.count++
	return nil
}

// catalogIndex returns the dictionary index of an already-emitted
// catalog equal to cat, or -1.
//
// medcc:floateq-exact — dictionary hits require bit-identical entries;
// a near-equal catalog is a different catalog.
func (cw *CorpusWriter) catalogIndex(cat cloud.Catalog) int {
	for i, c := range cw.cats {
		if catalogsEqual(c, cat) {
			return i
		}
	}
	return -1
}

// catalogsEqual compares catalogs field-by-field with bit-exact floats.
//
// medcc:floateq-exact
func catalogsEqual(a, b cloud.Catalog) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name ||
			math.Float64bits(a[i].Power) != math.Float64bits(b[i].Power) ||
			math.Float64bits(a[i].Rate) != math.Float64bits(b[i].Rate) ||
			math.Float64bits(a[i].CPUGHz) != math.Float64bits(b[i].CPUGHz) ||
			a[i].RAMKB != b[i].RAMKB ||
			math.Float64bits(a[i].DiskGB) != math.Float64bits(b[i].DiskGB) {
			return false
		}
	}
	return true
}

// Count returns the number of records written so far.
func (cw *CorpusWriter) Count() int { return cw.count }

// Flush drains buffered output to the underlying writer.
func (cw *CorpusWriter) Flush() error { return cw.w.Flush() }

// CorpusReader streams instance records back out of a corpus file,
// resolving the catalog dictionary as it goes. The reader owns pooled
// scratch (record buffer, Decoder, decoded catalogs) and is reusable
// across streams via Reset; re-reading a stream whose catalogs match
// the previous pass byte-for-byte reuses the decoded catalog values, so
// steady-state sweeps over an in-memory corpus decode with zero
// allocations per record.
//
// A CorpusReader is not safe for concurrent use. The values handed out
// by Next/NextRaw (workflow contents, catalog, record body) are reused
// by the following call.
type CorpusReader struct {
	src  io.Reader
	dec  Decoder
	body []byte
	hdr  [16]byte

	// catalog dictionary, by order of appearance in the stream; catRaw
	// keeps each catalog's stored payload so Reset can prove a re-seen
	// catalog identical (bytes.Equal) and skip re-decoding it.
	cats   []cloud.Catalog
	catRaw [][]byte
	nCats  int

	total uint32 // header record count (StreamRecordCount for streams)
	read  int
}

// NewCorpusReader opens a corpus stream. For files, wrap the *os.File
// in a bufio.Reader first — the reader issues two Reads per record.
func NewCorpusReader(r io.Reader) (*CorpusReader, error) {
	cr := &CorpusReader{}
	if err := cr.Reset(r); err != nil {
		return nil, err
	}
	return cr, nil
}

// Reset rebinds the reader to a new stream, keeping all scratch. The
// catalog dictionary is revalidated lazily: each catalog chunk's stored
// payload is compared against the previous stream's, and only differing
// catalogs are re-decoded.
func (cr *CorpusReader) Reset(r io.Reader) error {
	cr.src = r
	cr.nCats = 0
	cr.read = 0
	if _, err := io.ReadFull(cr.src, cr.hdr[:]); err != nil {
		return fmt.Errorf("encoding: corpus header: %w", err)
	}
	total, _, err := ParseHeader(cr.hdr[:])
	if err != nil {
		return err
	}
	cr.total = total
	return nil
}

// Len returns the record count declared in the header, or -1 for
// streamed files (read until EOF).
func (cr *CorpusReader) Len() int {
	if cr.total == StreamRecordCount {
		return -1
	}
	return int(cr.total)
}

// NumRead returns the number of records consumed so far.
func (cr *CorpusReader) NumRead() int { return cr.read }

// NextRaw advances to the next record and returns its parsed view plus
// the resolved catalog and instance info. The workflow chunk is left
// undecoded — parallel consumers copy the body (Record.Body) and decode
// with worker-private Decoders. Returns io.EOF cleanly at end of
// stream.
//
// medcc:allocfree
func (cr *CorpusReader) NextRaw() (Record, cloud.Catalog, InstanceInfo, error) {
	if cr.total != StreamRecordCount && uint32(cr.read) >= cr.total {
		return Record{}, nil, InstanceInfo{}, io.EOF
	}
	if _, err := io.ReadFull(cr.src, cr.hdr[:4]); err != nil {
		if err == io.EOF && cr.total == StreamRecordCount {
			return Record{}, nil, InstanceInfo{}, io.EOF
		}
		return Record{}, nil, InstanceInfo{}, fmt.Errorf("encoding: record %d length: %w", cr.read, err)
	}
	n := binary.LittleEndian.Uint32(cr.hdr[:4])
	if n > maxRecordLen {
		return Record{}, nil, InstanceInfo{}, fmt.Errorf("encoding: record %d claims %d bytes (max %d)", cr.read, n, maxRecordLen)
	}
	if err := cr.fillBody(int(n)); err != nil {
		return Record{}, nil, InstanceInfo{}, fmt.Errorf("encoding: record %d body: %w", cr.read, err)
	}
	rec, err := ParseRecord(cr.body)
	if err != nil {
		return Record{}, nil, InstanceInfo{}, fmt.Errorf("encoding: record %d: %w", cr.read, err)
	}
	cat, err := cr.resolveCatalog(rec)
	if err != nil {
		return Record{}, nil, InstanceInfo{}, fmt.Errorf("encoding: record %d catalog: %w", cr.read, err)
	}
	info := InstanceInfo{}
	if i := rec.Find(ChunkInstanceInfo); i >= 0 {
		info, err = cr.dec.InstanceInfo(rec, i)
		if err != nil {
			return Record{}, nil, InstanceInfo{}, fmt.Errorf("encoding: record %d instance info: %w", cr.read, err)
		}
	}
	cr.read++
	return rec, cat, info, nil
}

// fillBody reads an n-byte record body into the pooled buffer. Growth
// beyond the high-water mark happens in bounded steps gated on bytes
// actually read, so a corrupt length field on a short stream errors out
// after a small read instead of allocating up to maxRecordLen first.
func (cr *CorpusReader) fillBody(n int) error {
	const growStep = 1 << 20
	if cap(cr.body) >= n {
		cr.body = cr.body[:n]
		_, err := io.ReadFull(cr.src, cr.body)
		return err
	}
	cr.body = cr.body[:cap(cr.body)]
	for have := 0; have < n; {
		if len(cr.body) < n {
			step := n - len(cr.body)
			if step > growStep {
				step = growStep
			}
			cr.body = append(cr.body, make([]byte, step)...) // medcc:lint-ignore allocfree — grow-to-high-water record buffer
		}
		end := len(cr.body)
		if end > n {
			end = n
		}
		if _, err := io.ReadFull(cr.src, cr.body[have:end]); err != nil {
			return err
		}
		have = end
	}
	cr.body = cr.body[:n]
	return nil
}

// Next decodes the next record's workflow into wf and returns the
// resolved catalog and instance info. Returns io.EOF at end of stream.
//
// medcc:allocfree
func (cr *CorpusReader) Next(wf *workflow.Workflow) (cloud.Catalog, InstanceInfo, error) {
	rec, cat, info, err := cr.NextRaw()
	if err != nil {
		return nil, InstanceInfo{}, err
	}
	i := rec.Find(ChunkWorkflow)
	if i < 0 {
		return nil, InstanceInfo{}, fmt.Errorf("encoding: record %d has no workflow chunk", cr.read-1)
	}
	if err := cr.dec.WorkflowInto(rec, i, wf); err != nil {
		return nil, InstanceInfo{}, fmt.Errorf("encoding: record %d workflow: %w", cr.read-1, err)
	}
	return cat, info, nil
}

// resolveCatalog returns the record's catalog: the dictionary entry a
// ChunkCatalogRef points at, or an inline ChunkCatalog admitted to the
// dictionary (reusing the previous stream's decode when the stored
// payload is byte-identical).
//
// medcc:allocfree
func (cr *CorpusReader) resolveCatalog(rec Record) (cloud.Catalog, error) {
	if i := rec.Find(ChunkCatalogRef); i >= 0 {
		idx, err := cr.dec.CatalogRef(rec, i)
		if err != nil {
			return nil, err
		}
		if idx < 0 || idx >= cr.nCats {
			return nil, fmt.Errorf("encoding: catalog ref %d outside dictionary of %d", idx, cr.nCats)
		}
		return cr.cats[idx], nil
	}
	i := rec.Find(ChunkCatalog)
	if i < 0 {
		return nil, nil
	}
	_, stored, _, _ := rec.entry(i)
	k := cr.nCats
	if k < len(cr.cats) && bytes.Equal(cr.catRaw[k], stored) {
		cr.nCats++
		return cr.cats[k], nil
	}
	return cr.admitCatalog(rec, i, stored)
}

// admitCatalog decodes an inline catalog into dictionary slot nCats.
//
// medcc:coldpath — runs once per distinct catalog per stream; sweeps
// re-reading the same corpus hit the bytes.Equal fast path instead.
func (cr *CorpusReader) admitCatalog(rec Record, i int, stored []byte) (cloud.Catalog, error) {
	k := cr.nCats
	if k == len(cr.cats) {
		cr.cats = append(cr.cats, nil)
		cr.catRaw = append(cr.catRaw, nil)
	}
	cat, err := cr.dec.CatalogInto(rec, i, cr.cats[k])
	if err != nil {
		return nil, err
	}
	cr.cats[k] = cat
	cr.catRaw[k] = append(cr.catRaw[k][:0], stored...)
	cr.nCats++
	return cat, nil
}

// Body exposes the raw record body backing a Record returned by
// NextRaw, for consumers that copy records to worker-private buffers.
//
// medcc:allocfree
func (r Record) Body() []byte { return r.body }
