package encoding

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"medcc/internal/cloud"
	"medcc/internal/sim"
	"medcc/internal/workflow"
)

// maxInflateRatio bounds how much a DEFLATE chunk may claim to expand.
// The format's worst-case expansion is ~1032:1; a rawLen beyond that is
// a corrupt (or adversarial) table entry and is rejected before any
// buffer is sized from it.
const maxInflateRatio = 1032

// Decoder is the pooled decode scratch: a string intern table (module
// and VM-type names decode to one shared string value per distinct
// name), a decompression buffer, and a reusable flate reader. A Decoder
// is worker-private; decoding a homogeneous stream through one Decoder
// into pooled destinations reaches zero allocations per record.
//
// medcc:scratch
type Decoder struct {
	strs map[string]string
	raw  []byte // decompressed-payload scratch, valid until the next Payload call
	src  bytes.Reader
	fr   io.ReadCloser
}

// intern returns the canonical string for b, converting only the first
// time a distinct name is seen.
//
// medcc:allocfree
func (d *Decoder) intern(b []byte) string {
	if s, ok := d.strs[string(b)]; ok { // medcc:lint-ignore allocfree — map lookup with string(b) key does not allocate
		return s
	}
	return d.internMiss(b)
}

// internMiss admits a newly seen name into the intern table.
//
// medcc:coldpath — runs once per distinct string across a stream.
func (d *Decoder) internMiss(b []byte) string {
	if d.strs == nil {
		d.strs = make(map[string]string, 64)
	}
	s := string(b)
	d.strs[s] = s
	return s
}

// Payload returns chunk i's decoded payload: CRC-verified, and inflated
// through the decoder's scratch when the chunk is compressed. The
// returned slice is either a view into the record's buffer or the
// decoder's decompression scratch — valid until the next Payload call
// on this decoder or the record buffer is recycled.
//
// medcc:allocfree
func (d *Decoder) Payload(r Record, i int) ([]byte, error) {
	flags, stored, rawLen, crc := r.entry(i)
	if c := crcOf(stored); c != crc {
		return nil, fmt.Errorf("encoding: chunk %d (%v) checksum mismatch: %#x != %#x", i, r.Type(i), c, crc)
	}
	if flags&chunkFlagDeflate == 0 {
		return stored, nil
	}
	return d.inflate(stored, rawLen, i)
}

// inflate decompresses a DEFLATE chunk into the decoder's scratch.
//
// medcc:coldpath — compressed corpora trade decode time for disk; the
// allocation-free contract is stated for uncompressed streams.
func (d *Decoder) inflate(stored []byte, rawLen uint32, i int) ([]byte, error) {
	if uint64(rawLen) > uint64(len(stored))*maxInflateRatio+64 {
		return nil, fmt.Errorf("encoding: chunk %d claims %d raw bytes from %d stored — implausible expansion", i, rawLen, len(stored))
	}
	d.src.Reset(stored)
	if d.fr == nil {
		d.fr = flate.NewReader(&d.src)
	} else if err := d.fr.(flate.Resetter).Reset(&d.src, nil); err != nil {
		return nil, err
	}
	if cap(d.raw) < int(rawLen) {
		d.raw = make([]byte, rawLen)
	} else {
		d.raw = d.raw[:rawLen]
	}
	if _, err := io.ReadFull(d.fr, d.raw); err != nil {
		return nil, fmt.Errorf("encoding: chunk %d inflate: %w", i, err)
	}
	var probe [1]byte
	if n, _ := d.fr.Read(probe[:]); n != 0 {
		return nil, fmt.Errorf("encoding: chunk %d inflates past its declared %d raw bytes", i, rawLen)
	}
	return d.raw, nil
}

// payloadCursor walks a payload left to right with exact-length
// accounting; all reads were pre-validated by the caller computing the
// expected total, so the accessors skip per-read bounds checks.
type payloadCursor struct {
	p   []byte
	off int
}

// medcc:allocfree
func (c *payloadCursor) u16() uint16 {
	v := binary.LittleEndian.Uint16(c.p[c.off:])
	c.off += 2
	return v
}

// medcc:allocfree
func (c *payloadCursor) u32() uint32 {
	v := binary.LittleEndian.Uint32(c.p[c.off:])
	c.off += 4
	return v
}

// medcc:allocfree
func (c *payloadCursor) u64() uint64 {
	v := binary.LittleEndian.Uint64(c.p[c.off:])
	c.off += 8
	return v
}

// medcc:allocfree
func (c *payloadCursor) f64() float64 {
	return lef64(c.u64())
}

// medcc:allocfree
func (c *payloadCursor) i32() int32 { return int32(c.u32()) }

// medcc:allocfree
func (c *payloadCursor) bytes(n int) []byte {
	b := c.p[c.off : c.off+n]
	c.off += n
	return b
}

// WorkflowInto decodes chunk i (a ChunkWorkflow) into dst, reusing its
// graph/module/edge storage via Reset. The decoded workflow is NOT
// validated for acyclicity — Validate (or BuildMatrices, which calls
// it) is the place that pays for the topological check.
//
// medcc:allocfree
func (d *Decoder) WorkflowInto(r Record, i int, dst *workflow.Workflow) error {
	p, err := d.Payload(r, i)
	if err != nil {
		return err
	}
	if len(p) < 8 {
		return fmt.Errorf("encoding: workflow payload truncated at %d bytes", len(p))
	}
	m := uint64(binary.LittleEndian.Uint32(p))
	e := uint64(binary.LittleEndian.Uint32(p[4:]))
	// Fixed-width region: header + per-module f64+f64+u8+u16 + per-edge
	// u32+u32+f64. Validated with u64 arithmetic before any loop runs.
	fixed := 8 + m*(8+8+1+2) + e*(4+4+8)
	if fixed > uint64(len(p)) {
		return fmt.Errorf("encoding: workflow payload %d bytes short of %d modules / %d edges", len(p), m, e)
	}
	nameLenOff := 8 + m*(8+8+1)
	names := uint64(0)
	for j := uint64(0); j < m; j++ {
		names += uint64(binary.LittleEndian.Uint16(p[nameLenOff+2*j:]))
	}
	if fixed+names != uint64(len(p)) {
		return fmt.Errorf("encoding: workflow payload is %d bytes, layout needs %d", len(p), fixed+names)
	}

	dst.Reset()
	var c payloadCursor
	c.p = p
	c.off = 8
	wlOff := c.off
	ftOff := wlOff + int(m)*8
	fxOff := ftOff + int(m)*8
	nameOff := int(fixed)
	for j := 0; j < int(m); j++ {
		nl := int(binary.LittleEndian.Uint16(p[int(nameLenOff)+2*j:]))
		dst.AddModule(workflow.Module{
			Name:      d.intern(p[nameOff : nameOff+nl]),
			Workload:  lef64(binary.LittleEndian.Uint64(p[wlOff+8*j:])),
			Fixed:     p[fxOff+j] != 0,
			FixedTime: lef64(binary.LittleEndian.Uint64(p[ftOff+8*j:])),
		})
		nameOff += nl
	}
	fromOff := fxOff + int(m) + int(m)*2
	toOff := fromOff + int(e)*4
	dsOff := toOff + int(e)*4
	for j := 0; j < int(e); j++ {
		u := int(int32(binary.LittleEndian.Uint32(p[fromOff+4*j:])))
		v := int(int32(binary.LittleEndian.Uint32(p[toOff+4*j:])))
		ds := lef64(binary.LittleEndian.Uint64(p[dsOff+8*j:]))
		if err := dst.AddDependency(u, v, ds); err != nil {
			return fmt.Errorf("encoding: workflow edge %d: %w", j, err)
		}
	}
	return nil
}

// CatalogInto decodes chunk i (a ChunkCatalog) into dst's storage and
// returns the refilled catalog.
//
// medcc:allocfree
func (d *Decoder) CatalogInto(r Record, i int, dst cloud.Catalog) (cloud.Catalog, error) {
	p, err := d.Payload(r, i)
	if err != nil {
		return dst, err
	}
	if len(p) < 4 {
		return dst, fmt.Errorf("encoding: catalog payload truncated at %d bytes", len(p))
	}
	n := uint64(binary.LittleEndian.Uint32(p))
	fixed := 4 + n*(8+8+8+8+8+2)
	if fixed > uint64(len(p)) {
		return dst, fmt.Errorf("encoding: catalog payload %d bytes short of %d types", len(p), n)
	}
	nameLenOff := 4 + n*40
	names := uint64(0)
	for j := uint64(0); j < n; j++ {
		names += uint64(binary.LittleEndian.Uint16(p[nameLenOff+2*j:]))
	}
	if fixed+names != uint64(len(p)) {
		return dst, fmt.Errorf("encoding: catalog payload is %d bytes, layout needs %d", len(p), fixed+names)
	}
	dst = dst[:0]
	nameOff := int(fixed)
	for j := 0; j < int(n); j++ {
		nl := int(binary.LittleEndian.Uint16(p[int(nameLenOff)+2*j:]))
		dst = append(dst, cloud.VMType{
			Name:   d.intern(p[nameOff : nameOff+nl]),
			Power:  lef64(binary.LittleEndian.Uint64(p[4+8*j:])),
			Rate:   lef64(binary.LittleEndian.Uint64(p[int(4+n*8)+8*j:])),
			CPUGHz: lef64(binary.LittleEndian.Uint64(p[int(4+n*16)+8*j:])),
			RAMKB:  int(int64(binary.LittleEndian.Uint64(p[int(4+n*24)+8*j:]))),
			DiskGB: lef64(binary.LittleEndian.Uint64(p[int(4+n*32)+8*j:])),
		})
		nameOff += nl
	}
	return dst, nil
}

// ScheduleInto decodes chunk i (a ChunkSchedule) into dst's storage.
//
// medcc:allocfree
func (d *Decoder) ScheduleInto(r Record, i int, dst workflow.Schedule) (workflow.Schedule, error) {
	p, err := d.Payload(r, i)
	if err != nil {
		return dst, err
	}
	if len(p) < 4 {
		return dst, fmt.Errorf("encoding: schedule payload truncated at %d bytes", len(p))
	}
	n := uint64(binary.LittleEndian.Uint32(p))
	if 4+n*4 != uint64(len(p)) {
		return dst, fmt.Errorf("encoding: schedule payload is %d bytes, layout needs %d", len(p), 4+n*4)
	}
	dst = dst[:0]
	for j := 0; j < int(n); j++ {
		dst = append(dst, int(int32(binary.LittleEndian.Uint32(p[4+4*j:]))))
	}
	return dst, nil
}

// TraceInto decodes chunk i (a ChunkTrace) into dst, reusing its
// module/VM slices and each VM's module list.
//
// medcc:allocfree
func (d *Decoder) TraceInto(r Record, i int, dst *sim.Result) error {
	p, err := d.Payload(r, i)
	if err != nil {
		return err
	}
	const scalars = 8 + 8 + 8 + 4 + 4 + 4
	if len(p) < scalars {
		return fmt.Errorf("encoding: trace payload truncated at %d bytes", len(p))
	}
	m := uint64(binary.LittleEndian.Uint32(p[24:]))
	v := uint64(binary.LittleEndian.Uint32(p[28:]))
	tot := uint64(binary.LittleEndian.Uint32(p[32:]))
	need := uint64(scalars) + m*(8+8+8+4) + v*(4+8+8+8+8+4) + tot*4
	if need != uint64(len(p)) {
		return fmt.Errorf("encoding: trace payload is %d bytes, layout needs %d", len(p), need)
	}
	var c payloadCursor
	c.p = p
	dst.Makespan = c.f64()
	dst.Cost = c.f64()
	dst.Events = int64(c.u64())
	c.off += 12 // m, v, tot already read

	dst.Modules = growModuleTraces(dst.Modules, int(m))
	for j := 0; j < int(m); j++ {
		dst.Modules[j].Ready = lef64(binary.LittleEndian.Uint64(p[c.off+8*j:]))
	}
	c.off += int(m) * 8
	for j := 0; j < int(m); j++ {
		dst.Modules[j].Start = lef64(binary.LittleEndian.Uint64(p[c.off+8*j:]))
	}
	c.off += int(m) * 8
	for j := 0; j < int(m); j++ {
		dst.Modules[j].Finish = lef64(binary.LittleEndian.Uint64(p[c.off+8*j:]))
	}
	c.off += int(m) * 8
	for j := 0; j < int(m); j++ {
		dst.Modules[j].VM = int(int32(binary.LittleEndian.Uint32(p[c.off+4*j:])))
	}
	c.off += int(m) * 4

	dst.VMs = growVMTraces(dst.VMs, int(v))
	for j := 0; j < int(v); j++ {
		dst.VMs[j].Type = int(int32(binary.LittleEndian.Uint32(p[c.off+4*j:])))
	}
	c.off += int(v) * 4
	for j := 0; j < int(v); j++ {
		dst.VMs[j].BootAt = lef64(binary.LittleEndian.Uint64(p[c.off+8*j:]))
	}
	c.off += int(v) * 8
	for j := 0; j < int(v); j++ {
		dst.VMs[j].ReadyAt = lef64(binary.LittleEndian.Uint64(p[c.off+8*j:]))
	}
	c.off += int(v) * 8
	for j := 0; j < int(v); j++ {
		dst.VMs[j].StoppedAt = lef64(binary.LittleEndian.Uint64(p[c.off+8*j:]))
	}
	c.off += int(v) * 8
	for j := 0; j < int(v); j++ {
		dst.VMs[j].Cost = lef64(binary.LittleEndian.Uint64(p[c.off+8*j:]))
	}
	c.off += int(v) * 8
	countOff := c.off
	c.off += int(v) * 4
	left := tot
	for j := 0; j < int(v); j++ {
		k := uint64(binary.LittleEndian.Uint32(p[countOff+4*j:]))
		if k > left {
			return fmt.Errorf("encoding: trace VM %d claims %d modules, only %d remain in the flat list", j, k, left)
		}
		left -= k
		mods := dst.VMs[j].Modules[:0]
		for x := 0; x < int(k); x++ {
			mods = append(mods, int(binary.LittleEndian.Uint32(p[c.off+4*x:])))
		}
		dst.VMs[j].Modules = mods
		c.off += int(k) * 4
	}
	if left != 0 {
		return fmt.Errorf("encoding: trace flat module list has %d unclaimed entries", left)
	}
	return nil
}

// InstanceInfo decodes chunk i (a ChunkInstanceInfo).
//
// medcc:allocfree
func (d *Decoder) InstanceInfo(r Record, i int) (InstanceInfo, error) {
	p, err := d.Payload(r, i)
	if err != nil {
		return InstanceInfo{}, err
	}
	if len(p) != instanceInfoLen {
		return InstanceInfo{}, fmt.Errorf("encoding: instance-info payload is %d bytes, want %d", len(p), instanceInfoLen)
	}
	var c payloadCursor
	c.p = p
	return InstanceInfo{
		Seed:  int64(c.u64()),
		Index: int64(c.u64()),
		Kind:  InstanceKind(c.u32()),
		M:     c.u32(),
		E:     c.u32(),
		N:     c.u32(),
		CMin:  c.f64(),
		CMax:  c.f64(),
	}, nil
}

// CatalogRef decodes chunk i (a ChunkCatalogRef): the zero-based index
// of a catalog emitted earlier in the stream.
//
// medcc:allocfree
func (d *Decoder) CatalogRef(r Record, i int) (int, error) {
	p, err := d.Payload(r, i)
	if err != nil {
		return 0, err
	}
	if len(p) != 4 {
		return 0, fmt.Errorf("encoding: catalog-ref payload is %d bytes, want 4", len(p))
	}
	return int(binary.LittleEndian.Uint32(p)), nil
}

// growModuleTraces resizes dst to n entries, reusing its backing array.
//
// medcc:allocfree
func growModuleTraces(dst []sim.ModuleTrace, n int) []sim.ModuleTrace {
	if cap(dst) < n {
		return make([]sim.ModuleTrace, n) // medcc:lint-ignore allocfree — first-use growth
	}
	return dst[:n]
}

// growVMTraces resizes dst to n entries. Growth copies the old entries
// so their pooled per-VM module slices keep their capacity.
//
// medcc:allocfree
func growVMTraces(dst []sim.VMTrace, n int) []sim.VMTrace {
	if cap(dst) < n {
		next := make([]sim.VMTrace, n) // medcc:lint-ignore allocfree — first-use growth
		copy(next, dst[:cap(dst)])
		return next
	}
	return dst[:n]
}

// lef64 converts stored IEEE-754 bits back to a float64.
//
// medcc:allocfree
func lef64(bits uint64) float64 {
	return math.Float64frombits(bits)
}
