package encoding

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/sim"
	"medcc/internal/workflow"
)

// goldenRecord encodes one full record (workflow + catalog + schedule +
// trace + instance info) for the given paper size; it is shared with
// the fuzz seeds.
func goldenRecord(t testing.TB, sizeIdx int, compress bool) ([]byte, *workflow.Workflow, cloud.Catalog) {
	t.Helper()
	sizes := gen.PaperProblemSizes()
	size := sizes[sizeIdx%len(sizes)]
	rng := rand.New(rand.NewSource(42 + int64(sizeIdx)))
	wf, cat, err := gen.Instance(rng, size)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	mt, err := wf.BuildMatrices(cat, nil)
	if err != nil {
		t.Fatalf("matrices: %v", err)
	}
	cmin, cmax := mt.BudgetRange(wf)
	sc, err := sched.CriticalGreedy().Schedule(wf, mt, 0.5*(cmin+cmax))
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	tr, err := sim.Run(sim.Config{Workflow: wf, Matrices: mt, Schedule: sc})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}

	var b RecordBuilder
	b.Begin()
	if err := b.Workflow(wf); err != nil {
		t.Fatalf("encode workflow: %v", err)
	}
	if err := b.Catalog(cat); err != nil {
		t.Fatalf("encode catalog: %v", err)
	}
	b.Schedule(sc)
	b.Trace(tr)
	b.InstanceInfo(InstanceInfo{Seed: 42, Index: int64(sizeIdx), Kind: KindGenerated,
		M: uint32(size.M), E: uint32(size.E), N: uint32(size.N)})
	out := AppendHeader(nil, 1)
	out, err = b.AppendRecord(out, compress)
	if err != nil {
		t.Fatalf("append record: %v", err)
	}
	return out, wf.Clone(), cat
}

// parseOne strips the header and parses the single record in data.
func parseOne(t testing.TB, data []byte) Record {
	t.Helper()
	_, n, err := ParseHeader(data)
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	body := data[n+4:]
	rec, err := ParseRecord(body)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return rec
}

func sameWorkflowJSON(t *testing.T, want, got *workflow.Workflow) {
	t.Helper()
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal want: %v", err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("marshal got: %v", err)
	}
	if !bytes.Equal(wj, gj) {
		t.Fatalf("workflow round-trip differs:\nwant %s\ngot  %s", wj, gj)
	}
}

func TestWorkflowRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		for sizeIdx := range gen.PaperProblemSizes() {
			data, wf, _ := goldenRecord(t, sizeIdx, compress)
			rec := parseOne(t, data)
			var d Decoder
			got := workflow.New()
			if err := d.WorkflowInto(rec, rec.Find(ChunkWorkflow), got); err != nil {
				t.Fatalf("size %d compress=%v: %v", sizeIdx, compress, err)
			}
			sameWorkflowJSON(t, wf, got)
			// Bit-exact fields, not just JSON-equal.
			for i := 0; i < wf.NumModules(); i++ {
				w, g := wf.Module(i), got.Module(i)
				if w.Name != g.Name || w.Fixed != g.Fixed ||
					math.Float64bits(w.Workload) != math.Float64bits(g.Workload) ||
					math.Float64bits(w.FixedTime) != math.Float64bits(g.FixedTime) {
					t.Fatalf("module %d differs: %+v != %+v", i, w, g)
				}
			}
		}
	}
}

func TestCatalogScheduleTraceRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		data, wf, cat := goldenRecord(t, 7, compress)
		rec := parseOne(t, data)
		var d Decoder

		gotCat, err := d.CatalogInto(rec, rec.Find(ChunkCatalog), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !catalogsEqual(cat, gotCat) {
			t.Fatalf("catalog differs: %+v != %+v", cat, gotCat)
		}

		mt, err := wf.BuildMatrices(cat, nil)
		if err != nil {
			t.Fatal(err)
		}
		cmin, cmax := mt.BudgetRange(wf)
		want, err := sched.CriticalGreedy().Schedule(wf, mt, 0.5*(cmin+cmax))
		if err != nil {
			t.Fatal(err)
		}
		gotS, err := d.ScheduleInto(rec, rec.Find(ChunkSchedule), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotS) != len(want) {
			t.Fatalf("schedule length %d != %d", len(gotS), len(want))
		}
		for i := range gotS {
			if gotS[i] != want[i] {
				t.Fatalf("schedule[%d] = %d, want %d", i, gotS[i], want[i])
			}
		}

		wantTr, err := sim.Run(sim.Config{Workflow: wf, Matrices: mt, Schedule: want})
		if err != nil {
			t.Fatal(err)
		}
		var gotTr sim.Result
		if err := d.TraceInto(rec, rec.Find(ChunkTrace), &gotTr); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(gotTr.Makespan) != math.Float64bits(wantTr.Makespan) ||
			math.Float64bits(gotTr.Cost) != math.Float64bits(wantTr.Cost) ||
			gotTr.Events != wantTr.Events {
			t.Fatalf("trace scalars differ: %+v != %+v", gotTr, wantTr)
		}
		if len(gotTr.Modules) != len(wantTr.Modules) || len(gotTr.VMs) != len(wantTr.VMs) {
			t.Fatalf("trace shapes differ")
		}
		for i := range wantTr.Modules {
			w, g := wantTr.Modules[i], gotTr.Modules[i]
			if math.Float64bits(w.Ready) != math.Float64bits(g.Ready) ||
				math.Float64bits(w.Start) != math.Float64bits(g.Start) ||
				math.Float64bits(w.Finish) != math.Float64bits(g.Finish) || w.VM != g.VM {
				t.Fatalf("module trace %d differs: %+v != %+v", i, w, g)
			}
		}
		for i := range wantTr.VMs {
			w, g := wantTr.VMs[i], gotTr.VMs[i]
			if w.Type != g.Type || math.Float64bits(w.Cost) != math.Float64bits(g.Cost) ||
				math.Float64bits(w.BootAt) != math.Float64bits(g.BootAt) ||
				math.Float64bits(w.ReadyAt) != math.Float64bits(g.ReadyAt) ||
				math.Float64bits(w.StoppedAt) != math.Float64bits(g.StoppedAt) {
				t.Fatalf("VM trace %d differs: %+v != %+v", i, w, g)
			}
			if len(w.Modules) != len(g.Modules) {
				t.Fatalf("VM %d module list length differs", i)
			}
			for j := range w.Modules {
				if w.Modules[j] != g.Modules[j] {
					t.Fatalf("VM %d module %d differs", i, j)
				}
			}
		}

		info, err := d.InstanceInfo(rec, rec.Find(ChunkInstanceInfo))
		if err != nil {
			t.Fatal(err)
		}
		if info.Seed != 42 || info.Index != 7 || info.Kind != KindGenerated {
			t.Fatalf("instance info differs: %+v", info)
		}
	}
}

func TestCompressionShrinksLargePayloads(t *testing.T) {
	raw, _, _ := goldenRecord(t, 19, false)
	comp, _, _ := goldenRecord(t, 19, true)
	if len(comp) >= len(raw) {
		t.Fatalf("compressed record (%d bytes) not smaller than raw (%d bytes)", len(comp), len(raw))
	}
}

func TestCorpusWriterReader(t *testing.T) {
	sizes := gen.PaperProblemSizes()[:6]
	var buf bytes.Buffer
	cw, err := NewCorpusWriter(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	var b gen.Builder
	want := make([]*workflow.Workflow, len(sizes))
	cats := make([]cloud.Catalog, len(sizes))
	for i, size := range sizes {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		wf, cat, err := b.Instance(rng, size)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = wf.Clone()
		cats[i] = cat
		if err := cw.WriteInstance(wf, cat, InstanceInfo{Seed: 100, Index: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.Count() != len(sizes) {
		t.Fatalf("wrote %d records, want %d", cw.Count(), len(sizes))
	}

	// Catalog dedup: sizes share N values (3,4,5,5,5,6 → 4 distinct),
	// so the stream must carry fewer inline catalogs than records.
	distinct := map[int]bool{}
	for _, s := range sizes {
		distinct[s.N] = true
	}

	cr, err := NewCorpusReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wf := workflow.New()
	inline := 0
	for i := range sizes {
		cat, info, err := cr.Next(wf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if info.Index != int64(i) {
			t.Fatalf("record %d: info.Index = %d", i, info.Index)
		}
		sameWorkflowJSON(t, want[i], wf)
		if !catalogsEqual(cat, cats[i]) {
			t.Fatalf("record %d catalog differs", i)
		}
	}
	if _, _, err := cr.Next(wf); err == nil {
		t.Fatal("expected EOF after last record")
	}
	if cr.nCats != len(distinct) {
		t.Fatalf("dictionary holds %d catalogs, want %d distinct", cr.nCats, len(distinct))
	}
	_ = inline

	// Reset and re-read: same contents, catalog dictionary reused.
	prevCat := cr.cats[0]
	if err := cr.Reset(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := range sizes {
		_, _, err := cr.Next(wf)
		if err != nil {
			t.Fatalf("re-read record %d: %v", i, err)
		}
		sameWorkflowJSON(t, want[i], wf)
	}
	if &cr.cats[0][0] != &prevCat[0] {
		t.Fatal("Reset re-decoded an identical catalog instead of reusing it")
	}
}

func TestCorpusReaderNextRaw(t *testing.T) {
	var buf bytes.Buffer
	cw, err := NewCorpusWriter(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	var b gen.Builder
	rng := rand.New(rand.NewSource(7))
	wf, cat, err := b.Instance(rng, gen.ProblemSize{M: 20, E: 40, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := wf.Clone()
	if err := cw.WriteInstance(wf, cat, InstanceInfo{}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	cr, err := NewCorpusReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rec, gotCat, _, err := cr.NextRaw()
	if err != nil {
		t.Fatal(err)
	}
	if !catalogsEqual(cat, gotCat) {
		t.Fatal("catalog differs")
	}
	// A worker copies the body and decodes with its own scratch.
	body := append([]byte(nil), rec.Body()...)
	rec2, err := ParseRecord(body)
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	got := workflow.New()
	if err := d.WorkflowInto(rec2, rec2.Find(ChunkWorkflow), got); err != nil {
		t.Fatal(err)
	}
	sameWorkflowJSON(t, want, got)
}

func TestHeaderErrors(t *testing.T) {
	good := AppendHeader(nil, 3)
	cases := map[string][]byte{
		"truncated":   good[:10],
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": func() []byte { b := append([]byte(nil), good...); b[4] = 99; return b }(),
		"bad flags":   func() []byte { b := append([]byte(nil), good...); b[6] = 1; return b }(),
		"reserved":    func() []byte { b := append([]byte(nil), good...); b[12] = 1; return b }(),
	}
	for name, data := range cases {
		if _, _, err := ParseHeader(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if n, hl, err := ParseHeader(good); err != nil || n != 3 || hl != headerLen {
		t.Fatalf("good header: n=%d hl=%d err=%v", n, hl, err)
	}
}

func TestRecordErrors(t *testing.T) {
	data, _, _ := goldenRecord(t, 2, false)
	_, n, _ := ParseHeader(data)
	body := data[n+4:]

	// Chunk count beyond the body.
	bad := append([]byte(nil), body...)
	bad[0] = 0xFF
	bad[1] = 0xFF
	if _, err := ParseRecord(bad); err == nil {
		t.Error("oversized chunk table: expected error")
	}

	// Offset pointing into the chunk table.
	bad = append(bad[:0], body...)
	bad[4+8] = 0
	bad[4+9] = 0
	bad[4+10] = 0
	bad[4+11] = 0
	if _, err := ParseRecord(bad); err == nil {
		t.Error("offset into table: expected error")
	}

	// Corrupt payload byte flips the CRC.
	bad = append(bad[:0], body...)
	rec, err := ParseRecord(bad)
	if err != nil {
		t.Fatal(err)
	}
	_, stored, _, _ := rec.entry(0)
	stored[0] ^= 0xFF
	var d Decoder
	if _, err := d.Payload(rec, 0); err == nil {
		t.Error("flipped payload byte: expected CRC error")
	}
}

func TestDecodeSteadyStateAllocs(t *testing.T) {
	var buf bytes.Buffer
	cw, err := NewCorpusWriter(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	var b gen.Builder
	for i := 0; i < 8; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		wf, cat, err := b.Instance(rng, gen.PaperProblemSizes()[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := cw.WriteInstance(wf, cat, InstanceInfo{Index: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	src := bytes.NewReader(buf.Bytes())
	cr, err := NewCorpusReader(src)
	if err != nil {
		t.Fatal(err)
	}
	wf := workflow.New()
	sweep := func() {
		src.Reset(buf.Bytes())
		if err := cr.Reset(src); err != nil {
			t.Fatal(err)
		}
		for {
			if _, _, err := cr.Next(wf); err != nil {
				break
			}
		}
	}
	sweep() // warm pools and the intern table
	sweep()
	allocs := testing.AllocsPerRun(20, sweep)
	if allocs != 0 {
		t.Fatalf("steady-state corpus sweep allocates %.1f times per pass, want 0", allocs)
	}
}
