package encoding

import (
	"bytes"
	"compress/flate"
	"fmt"
	"math"

	"medcc/internal/cloud"
	"medcc/internal/sim"
	"medcc/internal/workflow"
)

// maxNameLen bounds encoded display names (they are stored with u16
// lengths). Real workflow names are tens of bytes.
const maxNameLen = math.MaxUint16

// AppendWorkflow appends the ChunkWorkflow payload for w to dst and
// returns it. Edges are emitted in (source, insertion) order — the same
// canonical order MarshalJSON uses — so binary and JSON round-trips
// normalize identically.
//
// Payload layout (all counts validated against the payload length on
// decode):
//
//	numModules u32 | numEdges u32 |
//	workload f64 x m | fixedTime f64 x m | fixed u8 x m | nameLen u16 x m |
//	from u32 x e | to u32 x e | dataSize f64 x e |
//	names blob
func AppendWorkflow(dst []byte, w *workflow.Workflow) ([]byte, error) {
	g := w.Graph()
	m, e := w.NumModules(), w.NumDependencies()
	dst = appendU32(dst, uint32(m))
	dst = appendU32(dst, uint32(e))
	for i := 0; i < m; i++ {
		dst = appendF64(dst, w.Module(i).Workload)
	}
	for i := 0; i < m; i++ {
		dst = appendF64(dst, w.Module(i).FixedTime)
	}
	for i := 0; i < m; i++ {
		if w.Module(i).Fixed {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	for i := 0; i < m; i++ {
		name := w.Module(i).Name
		if len(name) > maxNameLen {
			return nil, fmt.Errorf("encoding: module %d name is %d bytes (max %d)", i, len(name), maxNameLen)
		}
		dst = appendU16(dst, uint16(len(name)))
	}
	for u := 0; u < m; u++ {
		for range g.Succ(u) {
			dst = appendU32(dst, uint32(u))
		}
	}
	for u := 0; u < m; u++ {
		for _, v := range g.Succ(u) {
			dst = appendU32(dst, uint32(v))
		}
	}
	for u := 0; u < m; u++ {
		for _, v := range g.Succ(u) {
			dst = appendF64(dst, w.DataSize(u, v))
		}
	}
	for i := 0; i < m; i++ {
		dst = append(dst, w.Module(i).Name...)
	}
	return dst, nil
}

// AppendCatalog appends the ChunkCatalog payload for cat to dst.
//
// Payload layout:
//
//	numTypes u32 |
//	power f64 x n | rate f64 x n | cpuGHz f64 x n | ramKB i64 x n |
//	diskGB f64 x n | nameLen u16 x n | names blob
func AppendCatalog(dst []byte, cat cloud.Catalog) ([]byte, error) {
	dst = appendU32(dst, uint32(len(cat)))
	for _, vt := range cat {
		dst = appendF64(dst, vt.Power)
	}
	for _, vt := range cat {
		dst = appendF64(dst, vt.Rate)
	}
	for _, vt := range cat {
		dst = appendF64(dst, vt.CPUGHz)
	}
	for _, vt := range cat {
		dst = appendU64(dst, uint64(int64(vt.RAMKB)))
	}
	for _, vt := range cat {
		dst = appendF64(dst, vt.DiskGB)
	}
	for i, vt := range cat {
		if len(vt.Name) > maxNameLen {
			return nil, fmt.Errorf("encoding: VM type %d name is %d bytes (max %d)", i, len(vt.Name), maxNameLen)
		}
		dst = appendU16(dst, uint16(len(vt.Name)))
	}
	for _, vt := range cat {
		dst = append(dst, vt.Name...)
	}
	return dst, nil
}

// AppendSchedule appends the ChunkSchedule payload for s to dst.
//
// Payload layout: len u32 | type i32 x len.
//
// medcc:allocfree
func AppendSchedule(dst []byte, s workflow.Schedule) []byte {
	dst = appendU32(dst, uint32(len(s)))
	for _, j := range s {
		dst = appendI32(dst, int32(j))
	}
	return dst
}

// AppendTrace appends the ChunkTrace payload for a simulated run.
//
// Payload layout:
//
//	makespan f64 | cost f64 | events u64 |
//	numModules u32 | numVMs u32 | totalVMModules u32 |
//	ready f64 x m | start f64 x m | finish f64 x m | vm i32 x m |
//	type i32 x v | bootAt f64 x v | readyAt f64 x v | stoppedAt f64 x v |
//	cost f64 x v | modCount u32 x v |
//	flat VM module indices u32 x totalVMModules
func AppendTrace(dst []byte, r *sim.Result) []byte {
	dst = appendF64(dst, r.Makespan)
	dst = appendF64(dst, r.Cost)
	dst = appendU64(dst, uint64(r.Events))
	total := 0
	for i := range r.VMs {
		total += len(r.VMs[i].Modules)
	}
	dst = appendU32(dst, uint32(len(r.Modules)))
	dst = appendU32(dst, uint32(len(r.VMs)))
	dst = appendU32(dst, uint32(total))
	for i := range r.Modules {
		dst = appendF64(dst, r.Modules[i].Ready)
	}
	for i := range r.Modules {
		dst = appendF64(dst, r.Modules[i].Start)
	}
	for i := range r.Modules {
		dst = appendF64(dst, r.Modules[i].Finish)
	}
	for i := range r.Modules {
		dst = appendI32(dst, int32(r.Modules[i].VM))
	}
	for i := range r.VMs {
		dst = appendI32(dst, int32(r.VMs[i].Type))
	}
	for i := range r.VMs {
		dst = appendF64(dst, r.VMs[i].BootAt)
	}
	for i := range r.VMs {
		dst = appendF64(dst, r.VMs[i].ReadyAt)
	}
	for i := range r.VMs {
		dst = appendF64(dst, r.VMs[i].StoppedAt)
	}
	for i := range r.VMs {
		dst = appendF64(dst, r.VMs[i].Cost)
	}
	for i := range r.VMs {
		dst = appendU32(dst, uint32(len(r.VMs[i].Modules)))
	}
	for i := range r.VMs {
		for _, mi := range r.VMs[i].Modules {
			dst = appendU32(dst, uint32(mi))
		}
	}
	return dst
}

// InstanceInfo is the corpus bookkeeping attached to each instance
// record: enough to tie a decoded instance back to the generator stream
// that produced it (or the file it was converted from) and to skip
// recomputing the budget range when it was recorded at write time.
type InstanceInfo struct {
	// Seed and Index identify the generator stream and the instance's
	// position in it (zero for converted instances).
	Seed  int64
	Index int64
	// Kind distinguishes the instance's origin.
	Kind InstanceKind
	// M, E, N are the problem size (module count, edge count, catalog
	// size) — descriptive, verified against the decoded instance by
	// consumers that care.
	M, E, N uint32
	// CMin, CMax are the instance's budget range when the writer
	// computed it; both zero otherwise.
	CMin, CMax float64
}

// InstanceKind is the origin of a corpus instance.
type InstanceKind uint32

const (
	// KindGenerated marks a synthetic instance from internal/gen.
	KindGenerated InstanceKind = 0
	// KindWfCommons marks an instance converted from a WfCommons JSON file.
	KindWfCommons InstanceKind = 1
	// KindDAX marks an instance converted from a Pegasus DAX XML file.
	KindDAX InstanceKind = 2
)

// instanceInfoLen is the fixed ChunkInstanceInfo payload size.
const instanceInfoLen = 8 + 8 + 4 + 4 + 4 + 4 + 8 + 8

// AppendInstanceInfo appends the fixed-width ChunkInstanceInfo payload.
//
// medcc:allocfree
func AppendInstanceInfo(dst []byte, info InstanceInfo) []byte {
	dst = appendU64(dst, uint64(info.Seed))
	dst = appendU64(dst, uint64(info.Index))
	dst = appendU32(dst, uint32(info.Kind))
	dst = appendU32(dst, info.M)
	dst = appendU32(dst, info.E)
	dst = appendU32(dst, info.N)
	dst = appendF64(dst, info.CMin)
	dst = appendF64(dst, info.CMax)
	return dst
}

// RecordBuilder assembles one record: chunk payloads are appended into
// a shared buffer, then AppendRecord emits the length-prefixed body
// (chunk count, table, payload area). The builder's storage is reused
// across records — a corpus writer cycling Begin/Add.../AppendRecord
// reaches a steady state with zero allocations per record (compression
// excepted).
//
// medcc:scratch
type RecordBuilder struct {
	types []ChunkType
	ends  []int // cumulative payload ends in buf
	buf   []byte

	// compression scratch (cold: only used when compress is requested)
	fw    *flate.Writer
	cbuf  bytes.Buffer
	ckeep []byte
}

// Begin resets the builder for a new record, keeping all storage.
func (b *RecordBuilder) Begin() {
	b.types = b.types[:0]
	b.ends = b.ends[:0]
	b.buf = b.buf[:0]
}

// add registers the bytes appended since the previous chunk end as one
// chunk of the given type.
func (b *RecordBuilder) add(t ChunkType) {
	b.types = append(b.types, t)
	b.ends = append(b.ends, len(b.buf))
}

// Workflow adds a ChunkWorkflow for w.
func (b *RecordBuilder) Workflow(w *workflow.Workflow) error {
	buf, err := AppendWorkflow(b.buf, w)
	if err != nil {
		return err
	}
	b.buf = buf
	b.add(ChunkWorkflow)
	return nil
}

// Catalog adds a ChunkCatalog for cat.
func (b *RecordBuilder) Catalog(cat cloud.Catalog) error {
	buf, err := AppendCatalog(b.buf, cat)
	if err != nil {
		return err
	}
	b.buf = buf
	b.add(ChunkCatalog)
	return nil
}

// CatalogRef adds a ChunkCatalogRef pointing at the index-th catalog
// emitted earlier in the stream.
func (b *RecordBuilder) CatalogRef(index int) {
	b.buf = appendU32(b.buf, uint32(index))
	b.add(ChunkCatalogRef)
}

// Schedule adds a ChunkSchedule for s.
func (b *RecordBuilder) Schedule(s workflow.Schedule) {
	b.buf = AppendSchedule(b.buf, s)
	b.add(ChunkSchedule)
}

// Trace adds a ChunkTrace for a simulated run.
func (b *RecordBuilder) Trace(r *sim.Result) {
	b.buf = AppendTrace(b.buf, r)
	b.add(ChunkTrace)
}

// InstanceInfo adds a ChunkInstanceInfo.
func (b *RecordBuilder) InstanceInfo(info InstanceInfo) {
	b.buf = AppendInstanceInfo(b.buf, info)
	b.add(ChunkInstanceInfo)
}

// AppendRecord emits the assembled record — bodyLen u32, chunk count,
// chunk table, payloads — onto dst and returns it. With compress set,
// each chunk is DEFLATE-compressed and stored compressed when that
// shrinks it (small chunks typically stay raw). The builder remains
// valid; call Begin to start the next record.
func (b *RecordBuilder) AppendRecord(dst []byte, compress bool) ([]byte, error) {
	n := len(b.types)
	stored := b.buf
	flags := uint32(0)
	var perFlag []uint32
	var perStored [][]byte
	if compress {
		perFlag = make([]uint32, n)
		perStored = make([][]byte, n)
		b.ckeep = b.ckeep[:0]
		offs := make([]int, 0, n+1)
		start := 0
		for i := 0; i < n; i++ {
			raw := b.buf[start:b.ends[i]]
			start = b.ends[i]
			c, err := b.deflate(raw)
			if err != nil {
				return nil, err
			}
			if len(c) < len(raw) {
				perFlag[i] = chunkFlagDeflate
				offs = append(offs, len(b.ckeep))
				b.ckeep = append(b.ckeep, c...)
				perStored[i] = nil // fixed up below; ckeep may still grow
			} else {
				perFlag[i] = 0
				perStored[i] = raw
				offs = append(offs, -1)
			}
		}
		for i := 0; i < n; i++ {
			if perFlag[i]&chunkFlagDeflate != 0 {
				end := len(b.ckeep)
				for j := i + 1; j < n; j++ {
					if offs[j] >= 0 {
						end = offs[j]
						break
					}
				}
				perStored[i] = b.ckeep[offs[i]:end]
			}
		}
	}
	_ = flags

	// Body size: chunk count + table + stored payloads.
	bodyLen := 4 + n*chunkEntryLen
	if compress {
		for i := 0; i < n; i++ {
			bodyLen += len(perStored[i])
		}
	} else {
		bodyLen += len(stored)
	}
	if uint64(bodyLen) > math.MaxUint32 {
		return nil, fmt.Errorf("encoding: record body %d bytes exceeds u32 framing", bodyLen)
	}
	dst = appendU32(dst, uint32(bodyLen))
	dst = appendU32(dst, uint32(n))
	off := 4 + n*chunkEntryLen
	start := 0
	for i := 0; i < n; i++ {
		raw := b.buf[start:b.ends[i]]
		start = b.ends[i]
		sp := raw
		fl := uint32(0)
		if compress {
			sp = perStored[i]
			fl = perFlag[i]
		}
		dst = appendU32(dst, uint32(b.types[i]))
		dst = appendU32(dst, fl)
		dst = appendU32(dst, uint32(off))
		dst = appendU32(dst, uint32(len(sp)))
		dst = appendU32(dst, uint32(len(raw)))
		dst = appendU32(dst, crcOf(sp))
		off += len(sp)
	}
	start = 0
	for i := 0; i < n; i++ {
		raw := b.buf[start:b.ends[i]]
		start = b.ends[i]
		if compress {
			dst = append(dst, perStored[i]...)
		} else {
			dst = append(dst, raw...)
		}
	}
	return dst, nil
}

// deflate compresses p with the builder's pooled flate writer. The
// returned slice is valid until the next deflate call.
func (b *RecordBuilder) deflate(p []byte) ([]byte, error) {
	b.cbuf.Reset()
	if b.fw == nil {
		fw, err := flate.NewWriter(&b.cbuf, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		b.fw = fw
	} else {
		b.fw.Reset(&b.cbuf)
	}
	if _, err := b.fw.Write(p); err != nil {
		return nil, err
	}
	if err := b.fw.Close(); err != nil {
		return nil, err
	}
	return b.cbuf.Bytes(), nil
}
