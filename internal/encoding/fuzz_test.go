package encoding

import (
	"bytes"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/sim"
	"medcc/internal/workflow"
)

// FuzzDecodeCorpus drives the full corpus read path — header, record
// framing, catalog resolution, workflow decode — over arbitrary bytes.
// The format contract under test: corrupt, truncated, or hostile input
// must surface as an error, never a panic or an out-of-bounds read.
// Seeds are golden encodings (valid files), their truncations, and a
// few targeted corruptions, so the fuzzer starts at the deep end of the
// decoder instead of spending its budget on the magic check.
func FuzzDecodeCorpus(f *testing.F) {
	for si := 0; si < 2; si++ {
		for _, compress := range []bool{false, true} {
			data, _, _ := goldenRecord(f, si, compress)
			f.Add(data)
			f.Add(data[:len(data)-len(data)/3]) // mid-record truncation
			f.Add(data[:headerLen+2])           // mid-length truncation
			flip := bytes.Clone(data)
			flip[len(flip)/2] ^= 0x40 // payload/table corruption
			f.Add(flip)
			short := bytes.Clone(data)
			short[headerLen] ^= 0xff // bodyLen corruption
			f.Add(short)
		}
	}
	f.Add(AppendHeader(nil, StreamRecordCount))
	f.Add([]byte("MEDC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cr, err := NewCorpusReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		wf := workflow.New()
		for i := 0; i < 64; i++ {
			if _, _, err := cr.Next(wf); err != nil {
				return // io.EOF or a decode error — both fine, panics are not
			}
		}
	})
}

// FuzzDecodeRecord drives every typed chunk decoder over arbitrary
// record bodies: whatever the chunk table claims, each *Into method must
// either fill its destination or error — never panic, never read outside
// the body, never trust a length field it has not checked against the
// payload.
func FuzzDecodeRecord(f *testing.F) {
	for si := 0; si < 2; si++ {
		for _, compress := range []bool{false, true} {
			data, _, _ := goldenRecord(f, si, compress)
			rec := parseOne(f, data)
			f.Add(bytes.Clone(rec.Body()))
		}
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		rec, err := ParseRecord(body)
		if err != nil {
			return
		}
		var (
			d   Decoder
			wf  = workflow.New()
			res sim.Result
			sc  workflow.Schedule
			cat cloud.Catalog
		)
		for i := 0; i < rec.NumChunks(); i++ {
			switch rec.Type(i) {
			case ChunkWorkflow:
				if err := d.WorkflowInto(rec, i, wf); err == nil {
					// A decode the validator accepted must be re-encodable.
					if _, err := AppendWorkflow(nil, wf); err != nil {
						t.Fatalf("decoded workflow does not re-encode: %v", err)
					}
				}
			case ChunkCatalog:
				cat, _ = d.CatalogInto(rec, i, cat)
			case ChunkSchedule:
				sc, _ = d.ScheduleInto(rec, i, sc)
			case ChunkTrace:
				_ = d.TraceInto(rec, i, &res)
			case ChunkInstanceInfo:
				_, _ = d.InstanceInfo(rec, i)
			case ChunkCatalogRef:
				_, _ = d.CatalogRef(rec, i)
			default:
				_, _ = d.Payload(rec, i)
			}
		}
	})
}
