// Package encoding is the module's compact binary container: a chunked,
// versioned format for workflows, VM catalogs, schedules, simulation
// traces, and instance corpora. It exists because JSON/DAX/WfCommons
// parsing dominates everything else at campaign scale — the schedulers
// and the simulator run at 0 allocs/op, so regenerating or re-parsing
// 10^5 instances per campaign is the remaining front-of-pipeline cost.
//
// # Layout
//
// Every field is little-endian and fixed-width; float64 values are
// stored as their IEEE-754 bit patterns, so encode/decode round-trips
// are bit-exact.
//
//	file   := header record*
//	header := magic "MEDC" | version u16 | flags u16 |
//	          recordCount u32 (0xFFFFFFFF = stream, read until EOF) |
//	          reserved u32 (must be 0)
//	record := bodyLen u32 | body
//	body   := chunkCount u32 | chunkTable | payload area
//	chunkTable entry (24 bytes):
//	          type u32 | flags u32 | offset u32 | storedLen u32 |
//	          rawLen u32 | crc32 u32
//
// Chunk offsets are relative to the start of the record body and must
// land entirely inside it; storedLen is the on-disk payload size and
// rawLen the decoded size (they differ only for compressed chunks,
// flag bit 0, DEFLATE). crc32 (IEEE) covers the stored payload bytes.
// Decoders validate magic, version, every table bound, and the CRC
// before touching a payload, and payload field counts against the
// payload length before materializing anything, so corrupt or
// truncated input produces an error — never a panic or an over-read.
//
// # Zero-copy decode contract
//
// Decoding reuses caller scratch throughout: a Decoder interns every
// string it has seen before (module and VM-type names decode to the
// same string value across instances, no per-record conversions), and
// the *Into methods rebuild pooled destinations in place (Workflow
// Reset/AddModule reuse, grown-once slices), so steady-state decode of
// a homogeneous stream performs zero allocations per record. Payload
// slices handed out by Record are views into the caller's buffer —
// nothing is copied until a value is written into a destination.
package encoding

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic opens every file written by this package.
const Magic = "MEDC"

// Version is the container format version this package writes. Readers
// reject files with a different major version rather than guessing:
// the format carries no in-band migration hints, so compatibility is
// strict by design (see DESIGN.md "Binary container format").
const Version = 1

// StreamRecordCount in a file header marks a streamed file: the record
// count was unknown at write time and readers consume records until EOF.
const StreamRecordCount = 0xFFFF_FFFF

// headerLen is the fixed file-header size in bytes.
const headerLen = 16

// chunkEntryLen is the size of one chunk-table entry in bytes.
const chunkEntryLen = 24

// ChunkType identifies a chunk's payload schema.
type ChunkType uint32

const (
	// ChunkWorkflow is a task graph: modules (workload, fixed flag,
	// fixed time, name) plus dependency edges with data sizes.
	ChunkWorkflow ChunkType = 1
	// ChunkCatalog is an ordered VM-type catalog.
	ChunkCatalog ChunkType = 2
	// ChunkSchedule is a module->VM-type mapping (-1 for fixed modules).
	ChunkSchedule ChunkType = 3
	// ChunkTrace is a simulated run: per-module and per-VM lifecycles
	// plus the scalar outcomes.
	ChunkTrace ChunkType = 4
	// ChunkInstanceInfo carries corpus bookkeeping: the generator seed
	// and index, the problem size, and the instance's budget range.
	ChunkInstanceInfo ChunkType = 5
	// ChunkCatalogRef references a catalog previously emitted in the
	// same stream, by zero-based order of appearance; corpus records
	// share catalogs through it instead of re-encoding them.
	ChunkCatalogRef ChunkType = 6
)

// chunkFlagDeflate marks a chunk whose stored payload is
// DEFLATE-compressed (compress/flate).
const chunkFlagDeflate = 1 << 0

// String names the chunk type in error messages.
func (t ChunkType) String() string {
	switch t {
	case ChunkWorkflow:
		return "workflow"
	case ChunkCatalog:
		return "catalog"
	case ChunkSchedule:
		return "schedule"
	case ChunkTrace:
		return "trace"
	case ChunkInstanceInfo:
		return "instance-info"
	case ChunkCatalogRef:
		return "catalog-ref"
	}
	return fmt.Sprintf("chunk(%d)", uint32(t))
}

// AppendHeader appends a file header to dst and returns it. Pass
// StreamRecordCount when the number of records is unknown at write time.
func AppendHeader(dst []byte, recordCount uint32) []byte {
	dst = append(dst, Magic...)
	dst = appendU16(dst, Version)
	dst = appendU16(dst, 0) // file flags, reserved in v1
	dst = appendU32(dst, recordCount)
	dst = appendU32(dst, 0) // reserved
	return dst
}

// ParseHeader validates a file header and returns the record count
// (StreamRecordCount for streamed files) and the header length in bytes.
func ParseHeader(data []byte) (recordCount uint32, n int, err error) {
	if len(data) < headerLen {
		return 0, 0, fmt.Errorf("encoding: truncated header: %d bytes", len(data))
	}
	if string(data[:4]) != Magic {
		return 0, 0, fmt.Errorf("encoding: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return 0, 0, fmt.Errorf("encoding: unsupported format version %d (have %d)", v, Version)
	}
	if f := binary.LittleEndian.Uint16(data[6:]); f != 0 {
		return 0, 0, fmt.Errorf("encoding: unsupported file flags %#x", f)
	}
	if r := binary.LittleEndian.Uint32(data[12:]); r != 0 {
		return 0, 0, fmt.Errorf("encoding: reserved header field is %#x, want 0", r)
	}
	return binary.LittleEndian.Uint32(data[8:]), headerLen, nil
}

// Record is a parsed, validated view of one record body: the chunk
// table plus payload bounds. It borrows the body slice — the view is
// valid only while the underlying buffer is.
type Record struct {
	body []byte
	n    int // chunk count
}

// ParseRecord validates the chunk table of a record body and returns a
// view over it. Every table entry's payload range is checked against
// the body, so a Record's payloads can be sliced without further bounds
// tests; CRCs are verified lazily per chunk by Decoder.Payload.
//
// medcc:allocfree
func ParseRecord(body []byte) (Record, error) {
	if len(body) < 4 {
		return Record{}, fmt.Errorf("encoding: record body truncated at %d bytes", len(body))
	}
	n := binary.LittleEndian.Uint32(body)
	tableEnd := uint64(4) + uint64(n)*chunkEntryLen
	if tableEnd > uint64(len(body)) {
		return Record{}, fmt.Errorf("encoding: chunk table (%d entries) exceeds record body (%d bytes)", n, len(body))
	}
	for i := uint64(0); i < uint64(n); i++ {
		e := body[4+i*chunkEntryLen:]
		typ := ChunkType(binary.LittleEndian.Uint32(e))
		off := uint64(binary.LittleEndian.Uint32(e[8:]))
		stored := uint64(binary.LittleEndian.Uint32(e[12:]))
		if off < tableEnd || off+stored > uint64(len(body)) {
			return Record{}, fmt.Errorf("encoding: chunk %d (%v) payload [%d,%d) outside record body [%d,%d)",
				i, typ, off, off+stored, tableEnd, len(body))
		}
		flags := binary.LittleEndian.Uint32(e[4:])
		if flags&^uint32(chunkFlagDeflate) != 0 {
			return Record{}, fmt.Errorf("encoding: chunk %d (%v) has unsupported flags %#x", i, typ, flags)
		}
		raw := binary.LittleEndian.Uint32(e[16:])
		if flags&chunkFlagDeflate == 0 && uint64(raw) != stored {
			return Record{}, fmt.Errorf("encoding: chunk %d (%v) raw length %d != stored length %d without compression", i, typ, raw, stored)
		}
	}
	return Record{body: body, n: int(n)}, nil
}

// NumChunks returns the number of chunks in the record.
func (r Record) NumChunks() int { return r.n }

// Type returns the type of chunk i.
//
// medcc:allocfree
func (r Record) Type(i int) ChunkType {
	return ChunkType(binary.LittleEndian.Uint32(r.body[4+i*chunkEntryLen:]))
}

// entry returns the parsed table entry of chunk i (bounds were
// validated by ParseRecord).
//
// medcc:allocfree
func (r Record) entry(i int) (flags uint32, stored []byte, rawLen uint32, crc uint32) {
	e := r.body[4+i*chunkEntryLen:]
	flags = binary.LittleEndian.Uint32(e[4:])
	off := binary.LittleEndian.Uint32(e[8:])
	n := binary.LittleEndian.Uint32(e[12:])
	rawLen = binary.LittleEndian.Uint32(e[16:])
	crc = binary.LittleEndian.Uint32(e[20:])
	return flags, r.body[off : uint64(off)+uint64(n)], rawLen, crc
}

// Find returns the index of the first chunk of the given type, or -1.
//
// medcc:allocfree
func (r Record) Find(t ChunkType) int {
	for i := 0; i < r.n; i++ {
		if r.Type(i) == t {
			return i
		}
	}
	return -1
}

// --- little-endian append/read helpers ---

// medcc:allocfree — all appends are self-appends into the caller's buffer.
func appendU16(dst []byte, v uint16) []byte {
	dst = append(dst, byte(v), byte(v>>8))
	return dst
}

// medcc:allocfree
func appendU32(dst []byte, v uint32) []byte {
	dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	return dst
}

// medcc:allocfree
func appendU64(dst []byte, v uint64) []byte {
	dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	return dst
}

// medcc:allocfree
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

// medcc:allocfree
func appendI32(dst []byte, v int32) []byte {
	return appendU32(dst, uint32(v))
}

// crcOf is the chunk checksum: CRC-32 (IEEE) over stored payload bytes.
//
// medcc:allocfree
func crcOf(p []byte) uint32 { return crc32.ChecksumIEEE(p) }
