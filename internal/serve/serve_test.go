package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/encoding"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postSchedule(t *testing.T, h http.Handler, url string, body []byte) (*httptest.ResponseRecorder, *scheduleResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		return rw, nil
	}
	var resp scheduleResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, rw.Body.Bytes())
	}
	return rw, &resp
}

func checkScheduleResponse(t *testing.T, resp *scheduleResponse) {
	t.Helper()
	w, cat := workflow.PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := w.Evaluate(m, resp.Schedule, nil)
	if err != nil {
		t.Fatalf("served schedule invalid: %v", err)
	}
	if ev.Cost != resp.Cost || ev.Makespan != resp.Makespan {
		t.Errorf("response (makespan %v, cost %v) != evaluation (%v, %v)",
			resp.Makespan, resp.Cost, ev.Makespan, ev.Cost)
	}
	if resp.Cost > resp.Budget+1e-9 {
		t.Errorf("cost %v exceeds budget %v", resp.Cost, resp.Budget)
	}
}

func TestScheduleRefsJSON(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	body, _ := json.Marshal(map[string]any{
		"workflow_ref": "example", "catalog_ref": "paper", "budget_fraction": 0.5,
	})
	rw, resp := postSchedule(t, s.Handler(), "/schedule", body)
	if resp == nil {
		t.Fatalf("status %d: %s", rw.Code, rw.Body.Bytes())
	}
	if resp.SnapshotVersion != 1 || resp.Algorithm != defaultAlgorithm {
		t.Errorf("got version %d alg %q", resp.SnapshotVersion, resp.Algorithm)
	}
	checkScheduleResponse(t, resp)
}

func TestScheduleInlineJSON(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	w, cat := workflow.PaperExample()
	body, err := json.Marshal(map[string]any{
		"workflow": w, "catalog": cat, "budget_fraction": 1.0, "algorithm": "critical-greedy",
	})
	if err != nil {
		t.Fatal(err)
	}
	rw, resp := postSchedule(t, s.Handler(), "/schedule", body)
	if resp == nil {
		t.Fatalf("status %d: %s", rw.Code, rw.Body.Bytes())
	}
	checkScheduleResponse(t, resp)
}

func TestScheduleJSONWithBOM(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	body, _ := json.Marshal(map[string]any{
		"workflow_ref": "example", "catalog_ref": "paper", "budget_fraction": 0.5,
	})
	bom := append([]byte("\xef\xbb\xbf  "), body...)
	rw, resp := postSchedule(t, s.Handler(), "/schedule", bom)
	if resp == nil {
		t.Fatalf("status %d: %s", rw.Code, rw.Body.Bytes())
	}
	checkScheduleResponse(t, resp)
}

func TestScheduleQueryOnly(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	rw, resp := postSchedule(t, s.Handler(),
		"/schedule?workflow=example&catalog=paper&budget_fraction=0.25&simulate=true&boot_time=0.05", nil)
	if resp == nil {
		t.Fatalf("status %d: %s", rw.Code, rw.Body.Bytes())
	}
	checkScheduleResponse(t, resp)
	if resp.Trace == nil {
		t.Fatal("simulate=true returned no trace")
	}
	if len(resp.Trace.Modules) != len(resp.Schedule) {
		t.Errorf("trace has %d modules, schedule %d", len(resp.Trace.Modules), len(resp.Schedule))
	}
	if resp.Trace.Makespan < resp.Makespan {
		t.Errorf("simulated makespan %v below analytic %v with boot time", resp.Trace.Makespan, resp.Makespan)
	}
}

// containerBody encodes one (workflow [, catalog]) record as a binary
// container request body.
func containerBody(t testing.TB, w *workflow.Workflow, cat cloud.Catalog) []byte {
	t.Helper()
	var b encoding.RecordBuilder
	b.Begin()
	if err := b.Workflow(w); err != nil {
		t.Fatal(err)
	}
	if cat != nil {
		if err := b.Catalog(cat); err != nil {
			t.Fatal(err)
		}
	}
	out := encoding.AppendHeader(nil, 1)
	out, err := b.AppendRecord(out, false)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestScheduleContainer(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	w, cat := workflow.PaperExample()

	t.Run("inline catalog chunk", func(t *testing.T) {
		rw, resp := postSchedule(t, s.Handler(), "/schedule?budget_fraction=0.7", containerBody(t, w, cat))
		if resp == nil {
			t.Fatalf("status %d: %s", rw.Code, rw.Body.Bytes())
		}
		checkScheduleResponse(t, resp)
	})
	t.Run("catalog by ref", func(t *testing.T) {
		rw, resp := postSchedule(t, s.Handler(), "/schedule?catalog=paper&budget_fraction=0.7", containerBody(t, w, nil))
		if resp == nil {
			t.Fatalf("status %d: %s", rw.Code, rw.Body.Bytes())
		}
		checkScheduleResponse(t, resp)
	})
}

func TestScheduleErrorStatuses(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	w, cat := workflow.PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin, _ := m.BudgetRange(w)

	cases := []struct {
		name   string
		method string
		url    string
		body   []byte
		status int
	}{
		{"no budget", "POST", "/schedule?workflow=example&catalog=paper", nil, 400},
		{"unknown workflow ref", "POST", "/schedule?workflow=nope&catalog=paper&budget=100", nil, 400},
		{"unknown catalog ref", "POST", "/schedule?workflow=example&catalog=nope&budget=100", nil, 400},
		{"missing catalog", "POST", "/schedule?workflow=example&budget=100", nil, 400},
		{"unknown algorithm", "POST", "/schedule?workflow=example&catalog=paper&budget=100&algorithm=nope", nil, 400},
		{"bad fraction", "POST", "/schedule?workflow=example&catalog=paper&budget_fraction=1.5", nil, 400},
		{"negative budget", "POST", "/schedule?workflow=example&catalog=paper&budget=-1", nil, 400},
		{"bad float", "POST", "/schedule?workflow=example&catalog=paper&budget=abc", nil, 400},
		{"bad simulate", "POST", "/schedule?workflow=example&catalog=paper&budget=100&simulate=maybe", nil, 400},
		{"malformed JSON", "POST", "/schedule", []byte(`{"workflow_ref":`), 400},
		{"bad inline workflow", "POST", "/schedule?budget=100", []byte(`{"workflow":{"modules":[]},"catalog_ref":"paper"}`), 400},
		{"truncated magic", "POST", "/schedule?budget=100", []byte("MED"), 400},
		{"container wrong chunk", "POST", "/schedule?catalog=paper&budget=100", scheduleOnlyContainer(t), 400},
		{"infeasible budget", "POST", fmt.Sprintf("/schedule?workflow=example&catalog=paper&budget=%g", cmin/2), nil, 422},
		{"method not allowed", "GET", "/schedule?workflow=example&catalog=paper&budget=100", nil, 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.url, bytes.NewReader(tc.body))
			rw := httptest.NewRecorder()
			h.ServeHTTP(rw, req)
			if rw.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rw.Code, tc.status, rw.Body.Bytes())
			}
			var e errorResponse
			if err := json.Unmarshal(rw.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body not {\"error\": ...}: %s", rw.Body.Bytes())
			}
		})
	}
}

// scheduleOnlyContainer builds a container whose only record carries a
// schedule chunk and no workflow.
func scheduleOnlyContainer(t *testing.T) []byte {
	t.Helper()
	var b encoding.RecordBuilder
	b.Begin()
	b.Schedule(workflow.Schedule{0, 1, 2})
	out := encoding.AppendHeader(nil, 1)
	out, err := b.AppendRecord(out, false)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBackpressure fills the admission queue of a server whose workers
// never started, so a request meets deterministic backpressure.
func TestBackpressure(t *testing.T) {
	snap, err := buildSnapshot(Library{}, 1, CacheConfig{}, intoSchedulers())
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{maxBatch: 1, queue: make(chan *job, 1), algOK: intoSchedulers()}
	s.snap.Store(snap)
	s.jobs.New = func() any { return newJob() }
	s.scratch.New = func() any { return newDecodeScratch() }
	s.queue <- newJob() // occupy the only slot

	if err := s.Schedule(Params{WorkflowRef: "example", CatalogRef: "paper", Budget: 100}, &Result{}); !errors.Is(err, ErrBusy) {
		t.Fatalf("Schedule on full queue = %v, want ErrBusy", err)
	}

	req := httptest.NewRequest(http.MethodPost, "/schedule?workflow=example&catalog=paper&budget=100", nil)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rw.Code, rw.Body.Bytes())
	}
	if rw.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestClosedServer(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	s.Close()
	s.Close() // idempotent
	err := s.Schedule(Params{WorkflowRef: "example", CatalogRef: "paper", Budget: 100}, &Result{})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Schedule after Close = %v, want ErrClosed", err)
	}
	req := httptest.NewRequest(http.MethodPost, "/schedule?workflow=example&catalog=paper&budget=100", nil)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rw.Code)
	}
}

func TestHealthLibraryReload(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health healthResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &health); err != nil || health.SnapshotVersion != 1 || health.Status != "ok" {
		t.Fatalf("healthz: %s (err %v)", rw.Body.Bytes(), err)
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/library", nil))
	var lib libraryResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &lib); err != nil {
		t.Fatal(err)
	}
	if len(lib.Catalogs) != 1 || lib.Catalogs[0] != "paper" || len(lib.Workflows) != 1 || lib.Workflows[0] != "example" {
		t.Errorf("library lists %v / %v", lib.Catalogs, lib.Workflows)
	}
	found := false
	for _, a := range lib.Algorithms {
		if a == defaultAlgorithm {
			found = true
		}
	}
	if !found {
		t.Errorf("algorithms %v missing %s", lib.Algorithms, defaultAlgorithm)
	}

	// Reload bumps the version; the previously pinned snapshot stays
	// fully usable.
	old := s.Snapshot()
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if err := json.Unmarshal(rw.Body.Bytes(), &health); err != nil || health.SnapshotVersion != 2 {
		t.Fatalf("reload: %s (err %v)", rw.Body.Bytes(), err)
	}
	if s.Snapshot().Version != 2 || s.Snapshot() == old {
		t.Error("reload did not publish a new snapshot")
	}
	if _, _, _, ok := old.Pair("example", "paper"); !ok {
		t.Error("old snapshot lost its pairs after reload")
	}
	_, resp := postSchedule(t, h, "/schedule?workflow=example&catalog=paper&budget_fraction=0.5", nil)
	if resp == nil || resp.SnapshotVersion != 2 {
		t.Fatalf("post-reload request did not pin version 2: %+v", resp)
	}
}

func TestReloadFailureKeepsSnapshot(t *testing.T) {
	w, _ := workflow.PaperExample()
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/wf.json"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Config{Workers: 1,
		Library: Library{Workflows: map[string]string{"disk": path}}})
	old := s.Snapshot()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reload(); err == nil {
		t.Fatal("Reload with a vanished source succeeded")
	}
	if s.Snapshot() != old {
		t.Error("failed reload replaced the snapshot")
	}
}

func TestNewFailsOnBadLibrary(t *testing.T) {
	_, err := New(Config{Library: Library{Catalogs: map[string]string{"bad": "/nonexistent.json"}}})
	if err == nil {
		t.Fatal("New with unreadable catalog source succeeded")
	}
}

// TestScheduleAllocs is the zero-alloc acceptance gate: a warm
// in-process request over a named pair — admission, cross-worker round
// trip, schedule, makespan, response fill — performs no allocations.
func TestScheduleAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on channel operations")
	}
	s := testServer(t, Config{Workers: 1})
	p := Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.5}
	var res Result
	for i := 0; i < 3; i++ { // warm pools, engines, timing
		if err := s.Schedule(p, &res); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := s.Schedule(p, &res); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("warm Schedule allocates %v allocs/op, want 0", avg)
	}
}

// TestDifferentialHTTP cross-checks the full HTTP path against direct
// scheduling: for generated workflows × budget fractions × algorithms,
// the served schedule must be identical and makespan/cost bit-equal.
func TestDifferentialHTTP(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	h := s.Handler()
	_, cat := workflow.PaperExample()
	rng := rand.New(rand.NewSource(8))

	algs := []string{"critical-greedy", "critical-ratio", "gain1"}
	for _, a := range algs {
		if !s.algOK[a] {
			t.Fatalf("algorithm %s not servable", a)
		}
	}

	for _, modules := range []int{5, 20, 60} {
		w, err := gen.Random(rng, gen.Params{
			Modules: modules, Edges: modules * 3 / 2,
			WorkloadMin: 1000, WorkloadMax: 5000, AddEntryExit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
		if err != nil {
			t.Fatal(err)
		}
		m.BuildOptions()
		cmin, cmax := m.BudgetRange(w)
		for _, frac := range []float64{0, 0.4, 1} {
			budget := cmin + frac*(cmax-cmin)
			for _, alg := range algs {
				body, err := json.Marshal(map[string]any{
					"workflow": w, "catalog": cat, "budget": budget, "algorithm": alg,
				})
				if err != nil {
					t.Fatal(err)
				}
				rw, resp := postSchedule(t, h, "/schedule", body)
				if resp == nil {
					t.Fatalf("m=%d frac=%v alg=%s: status %d: %s", modules, frac, alg, rw.Code, rw.Body.Bytes())
				}

				ref, err := sched.Get(alg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sched.Run(ref, w, m, budget)
				if err != nil {
					t.Fatal(err)
				}
				if len(resp.Schedule) != len(want.Schedule) {
					t.Fatalf("m=%d frac=%v alg=%s: schedule length %d != %d", modules, frac, alg, len(resp.Schedule), len(want.Schedule))
				}
				for i := range want.Schedule {
					if resp.Schedule[i] != want.Schedule[i] {
						t.Fatalf("m=%d frac=%v alg=%s: schedule[%d] = %d, want %d", modules, frac, alg, i, resp.Schedule[i], want.Schedule[i])
					}
				}
				if math.Float64bits(resp.Makespan) != math.Float64bits(want.MED) {
					t.Errorf("m=%d frac=%v alg=%s: makespan %v != %v", modules, frac, alg, resp.Makespan, want.MED)
				}
				if math.Float64bits(resp.Cost) != math.Float64bits(want.Cost) {
					t.Errorf("m=%d frac=%v alg=%s: cost %v != %v", modules, frac, alg, resp.Cost, want.Cost)
				}
			}
		}
	}
}

// TestConcurrentMixedLoad hammers the server from many goroutines with
// a mix of named-pair, inline, and simulated requests plus snapshot
// reloads. Run under -race in CI; every request must succeed (the queue
// is sized to the offered load, so 429 is a failure here).
func TestConcurrentMixedLoad(t *testing.T) {
	s := testServer(t, Config{Workers: 4, QueueDepth: 64, MaxBatch: 8})
	h := s.Handler()
	w, cat := workflow.PaperExample()
	inline, err := json.Marshal(map[string]any{"workflow": w, "catalog": cat, "budget_fraction": 0.6})
	if err != nil {
		t.Fatal(err)
	}
	cont := containerBody(t, w, cat)

	const clients, perClient = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var rw *httptest.ResponseRecorder
				switch i % 4 {
				case 0:
					rw = httptest.NewRecorder()
					h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost,
						"/schedule?workflow=example&catalog=paper&budget_fraction=0.5", nil))
				case 1:
					rw = httptest.NewRecorder()
					h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(inline)))
				case 2:
					rw = httptest.NewRecorder()
					h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost,
						"/schedule?budget_fraction=0.3&simulate=true", bytes.NewReader(cont)))
				case 3:
					if c == 0 {
						rw = httptest.NewRecorder()
						h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/reload", nil))
					} else {
						rw = httptest.NewRecorder()
						h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
					}
				}
				if rw.Code != http.StatusOK && rw.Code != http.StatusTooManyRequests {
					errs <- fmt.Errorf("client %d req %d: status %d: %s", c, i, rw.Code, rw.Body.Bytes())
					return
				}
				if rw.Code == http.StatusTooManyRequests {
					i-- // closed-loop retry
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
