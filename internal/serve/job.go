package serve

import (
	"errors"

	"medcc/internal/cloud"
	"medcc/internal/sched"
	"medcc/internal/sim"
	"medcc/internal/workflow"
)

// ErrBusy is returned (and mapped to 429 over HTTP) when the admission
// queue is full: the server is saturated and the client should retry.
var ErrBusy = errors.New("serve: admission queue full")

// ErrClosed is returned once Close has begun; no further requests are
// admitted.
var ErrClosed = errors.New("serve: server closed")

// errNoBudget is the decode-side failure for requests that specify
// neither an absolute budget nor a fraction.
var errNoBudget = errors.New("serve: request needs budget or budget_fraction")

// job carries one admitted request from the HTTP (or in-process)
// frontend through the admission queue to a worker and back. Jobs are
// pooled: the decode targets (ownW/ownM/ownCat), the result schedule,
// and the trace keep their buffers across reuses, so a warm job serves
// a request without allocating. A job is owned by exactly one goroutine
// at a time — the frontend until the queue send, the worker until the
// done signal — so the handoff needs no locking beyond the channels.
type job struct {
	// Resolved request: w/m point either into the pinned snapshot
	// (named pair) or at the job-owned pooled instance below.
	snap *Snapshot
	// medcc:lint-ignore epochguard — resolved at admission and consumed within the same request; never held across a rebuild
	w *workflow.Workflow
	// medcc:lint-ignore epochguard — same single-request lifetime as w
	m        *workflow.Matrices
	alg      string
	budget   float64
	simulate bool
	boot     float64
	bw       float64
	delay    float64
	slots    int

	// Batch-grouping key parts: empty for inline instances.
	wfRef, catRef string

	// cacheable marks named snapshot pairs — the only requests the
	// staircase cache serves. buildSlot/buildCache are armed by dispatch
	// when this request's miss won the singleflight latch; the worker
	// captures them (captureBuild) before the done signal.
	cacheable  bool
	buildSlot  *cacheSlot
	buildCache *scheduleCache

	// Job-owned pooled instance storage for inline requests.
	// medcc:lint-ignore epochguard — owner: the job rebuilds ownW in place per request and rebinds ownM immediately after
	ownW *workflow.Workflow
	// medcc:lint-ignore epochguard — owner: rebuilt via BuildMatricesInto on every inline request
	ownM   *workflow.Matrices
	ownCat cloud.Catalog

	// Results, filled by the worker.
	sched     workflow.Schedule
	makespan  float64
	cost      float64
	truncated bool
	trace     sim.Result
	err       error

	done chan struct{} // 1-buffered completion signal
}

// newJob is the pool factory.
func newJob() *job {
	return &job{ownW: workflow.New(), done: make(chan struct{}, 1)}
}

// reset clears per-request state while keeping pooled buffers.
func (j *job) reset() {
	j.snap, j.w, j.m = nil, nil, nil
	j.alg, j.wfRef, j.catRef = "", "", ""
	j.budget, j.boot, j.bw, j.delay = 0, 0, 0, 0
	j.slots = 0
	j.simulate = false
	j.cacheable = false
	j.buildSlot, j.buildCache = nil, nil
	j.makespan, j.cost = 0, 0
	j.truncated = false
	j.err = nil
}

// release drops the snapshot and instance pins before the job returns
// to the pool, so a pooled idle job never keeps a superseded snapshot
// (or a request-scoped instance) alive.
func (j *job) release() {
	j.snap, j.w, j.m = nil, nil, nil
	j.buildSlot, j.buildCache = nil, nil
	j.err = nil
}

// Params is the in-process request form: the same inputs the HTTP
// frontend decodes out of a request body, for callers (benchmarks,
// embedded use, medcc-load's loopback tests) that already hold decoded
// instances. Either name a loaded pair (WorkflowRef/CatalogRef) or pass
// an inline Workflow and Catalog.
type Params struct {
	WorkflowRef string
	CatalogRef  string
	Workflow    *workflow.Workflow
	Catalog     cloud.Catalog

	// Budget is the absolute budget. When UseFraction is set, Budget is
	// ignored and the budget is Fraction of the way from the pair's
	// minimum to maximum feasible cost.
	Budget      float64
	UseFraction bool
	Fraction    float64

	// Algorithm is a sched registry name; empty means critical-greedy.
	Algorithm string

	// Simulate adds a simulated trace under the given replay settings.
	Simulate      bool
	BootTime      float64
	Bandwidth     float64
	Delay         float64
	TransferSlots int
}

// Result is the in-process response form. Its slices are pooled: a
// Result reused across Schedule calls reaches steady state without
// allocating.
type Result struct {
	Schedule        workflow.Schedule
	Makespan        float64
	Cost            float64
	Budget          float64
	Truncated       bool
	SnapshotVersion uint64
	// Trace is filled only for Simulate requests.
	Trace sim.Result
}

// Schedule resolves p against the current snapshot, runs it through the
// admission queue and worker pool exactly like an HTTP request, and
// fills res. It is the zero-marshaling serving entry point: with a
// warm Result and a named or caller-owned instance, a call performs no
// allocations.
//
// medcc:onesnapshot — the library snapshot is pinned once at admission
func (s *Server) Schedule(p Params, res *Result) error {
	j := s.jobs.Get().(*job)
	j.reset()
	err := s.prepare(j, p)
	if err == nil {
		err = s.schedule(j, res)
	}
	j.release()
	s.jobs.Put(j)
	return err
}

// prepare resolves Params into a ready-to-enqueue job.
func (s *Server) prepare(j *job, p Params) error {
	snap := s.snap.Load()
	j.snap = snap
	j.alg = p.Algorithm
	if j.alg == "" {
		j.alg = defaultAlgorithm
	}
	if !s.algOK[j.alg] {
		return &RequestError{Op: "algorithm", Err: errUnknownAlgorithm, Detail: j.alg}
	}
	j.simulate = p.Simulate
	j.boot, j.bw, j.delay, j.slots = p.BootTime, p.Bandwidth, p.Delay, p.TransferSlots

	var cmin, cmax float64
	switch {
	case p.Workflow == nil && p.Catalog == nil && p.WorkflowRef != "" && p.CatalogRef != "":
		m, lo, hi, ok := snap.Pair(p.WorkflowRef, p.CatalogRef)
		if !ok {
			return &RequestError{Op: "pair", Err: errUnknownName, Detail: p.WorkflowRef + "/" + p.CatalogRef}
		}
		j.w, j.m = snap.Workflows[p.WorkflowRef], m
		j.wfRef, j.catRef = p.WorkflowRef, p.CatalogRef
		j.cacheable = true
		cmin, cmax = lo, hi
	default:
		w := p.Workflow
		if w == nil {
			if p.WorkflowRef == "" {
				return &RequestError{Op: "workflow", Err: errMissingInput}
			}
			var ok bool
			if w, ok = snap.Workflows[p.WorkflowRef]; !ok {
				return &RequestError{Op: "workflow", Err: errUnknownName, Detail: p.WorkflowRef}
			}
			j.wfRef = p.WorkflowRef
		}
		cat := p.Catalog
		if cat == nil {
			if p.CatalogRef == "" {
				return &RequestError{Op: "catalog", Err: errMissingInput}
			}
			var ok bool
			if cat, ok = snap.Catalogs[p.CatalogRef]; !ok {
				return &RequestError{Op: "catalog", Err: errUnknownName, Detail: p.CatalogRef}
			}
			j.catRef = p.CatalogRef
		}
		m, err := w.BuildMatricesInto(cat, cloud.HourlyRoundUp, j.ownM)
		if err != nil {
			return &RequestError{Op: "matrices", Err: err}
		}
		m.BuildOptions()
		j.ownM = m
		j.w, j.m = w, m
		if p.UseFraction {
			cmin, cmax = m.BudgetRange(w)
		}
	}

	if p.UseFraction {
		if p.Fraction < 0 || p.Fraction > 1 {
			return &RequestError{Op: "budget", Err: errBadFraction}
		}
		// sched.BudgetAt is the one budget-resolution expression shared
		// with the staircase builder: grid hits are bit-exact matches, so
		// both sides must round identically.
		j.budget = sched.BudgetAt(cmin, cmax, p.Fraction)
	} else {
		j.budget = p.Budget
	}
	return nil
}

// schedule is the request hot path: cache dispatch (a staircase hit
// returns here without touching a worker), admission, the cross-worker
// round trip, and the response struct fill. Everything from here to the
// worker's schedule computation is allocation-free; only the HTTP
// frontend's JSON marshaling (deliberately outside this root) allocates.
//
// medcc:allocfree
func (s *Server) schedule(j *job, res *Result) error {
	if err := s.dispatch(j); err != nil {
		return err
	}
	res.Schedule = append(res.Schedule[:0], j.sched...)
	res.Makespan, res.Cost, res.Budget = j.makespan, j.cost, j.budget
	res.Truncated = j.truncated
	res.SnapshotVersion = j.snap.Version
	if j.simulate {
		res.Trace.CopyFrom(&j.trace)
	}
	return nil
}

// submit enqueues an admitted job and blocks until a worker completes
// it. The send is non-blocking: a full queue is backpressure (ErrBusy →
// 429), not a wait. The read lock closes the race between admission and
// Close's channel close.
//
// medcc:allocfree
func (s *Server) submit(j *job) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	select {
	case s.queue <- j:
	default:
		s.mu.RUnlock()
		return ErrBusy
	}
	s.mu.RUnlock()
	<-j.done
	return j.err
}
