package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

// genLibrary writes gen.Random workflows of the given sizes to temp
// JSON files and returns a Library naming them wf5, wf20, ... (the
// built-in "paper" catalog serves as the catalog side of every pair).
func genLibrary(t testing.TB, sizes []int) Library {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	lib := Library{Workflows: map[string]string{}}
	for _, modules := range sizes {
		w, err := gen.Random(rng, gen.Params{
			Modules: modules, Edges: modules * 3 / 2,
			WorkloadMin: 1000, WorkloadMax: 5000, AddEntryExit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		path := fmt.Sprintf("%s/wf%d.json", dir, modules)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		lib.Workflows[fmt.Sprintf("wf%d", modules)] = path
	}
	return lib
}

// waitStaircase polls until the key's staircase is installed (builds run
// asynchronously on a worker after the triggering request was acked).
func waitStaircase(t *testing.T, s *Server, alg, wf, cat string) *staircase {
	t.Helper()
	c := s.Snapshot().cache
	if c == nil {
		t.Fatal("server has no cache")
	}
	slot := c.slot(alg, wf, cat)
	if slot == nil {
		t.Fatalf("no cache slot for (%s, %s, %s)", alg, wf, cat)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := slot.stair.Load(); st != nil {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("staircase for (%s, %s, %s) never installed", alg, wf, cat)
	return nil
}

// TestCacheThreeWayDifferential is the acceptance pin: for gen.Random
// workflows × algorithms × budget fractions both ON the staircase grid
// (dyadic, bit-exact hits) and OFF it (fall-through to the direct
// path), the cached server, an uncached server, and direct sched.Run
// must agree on the schedule exactly and on makespan/cost to the bit
// (math.Float64bits).
func TestCacheThreeWayDifferential(t *testing.T) {
	lib := genLibrary(t, []int{5, 20, 60})
	cached := testServer(t, Config{Workers: 2, Library: lib})
	uncached := testServer(t, Config{Workers: 2, Library: lib, Cache: CacheConfig{Disable: true}})
	if uncached.Snapshot().cache != nil {
		t.Fatal("Disable: true still built a cache")
	}
	ch, uh := cached.Handler(), uncached.Handler()

	gridFracs := []float64{0, 0.125, 0.25, 0.5, 0.875, 1}
	offFracs := []float64{0.3, 0.7}
	algs := []string{"critical-greedy", "critical-ratio", "gain1"}

	for _, wfName := range []string{"wf5", "wf20", "wf60"} {
		snap := cached.Snapshot()
		w := snap.Workflows[wfName]
		m, cmin, cmax, ok := snap.Pair(wfName, "paper")
		if !ok {
			t.Fatalf("pair (%s, paper) missing", wfName)
		}
		for _, alg := range algs {
			// Trigger and await the staircase so grid fractions below are
			// served from the cache, not the direct path.
			url := fmt.Sprintf("/schedule?workflow=%s&catalog=paper&algorithm=%s&budget_fraction=0.5", wfName, alg)
			if rw, resp := postSchedule(t, ch, url, nil); resp == nil {
				t.Fatalf("%s/%s prime: status %d: %s", wfName, alg, rw.Code, rw.Body.Bytes())
			}
			st := waitStaircase(t, cached, alg, wfName, "paper")

			for _, frac := range append(append([]float64(nil), gridFracs...), offFracs...) {
				budget := sched.BudgetAt(cmin, cmax, frac)
				if _, hit := st.lookup(budget); !hit {
					for _, gf := range gridFracs {
						if gf == frac {
							t.Fatalf("%s/%s frac %v: dyadic fraction missing from staircase grid", wfName, alg, frac)
						}
					}
				}

				hitsBefore := snap.cache.hits.Load()
				url := fmt.Sprintf("/schedule?workflow=%s&catalog=paper&algorithm=%s&budget_fraction=%g", wfName, alg, frac)
				rwC, got := postSchedule(t, ch, url, nil)
				if got == nil {
					t.Fatalf("%s/%s frac %v cached: status %d: %s", wfName, alg, frac, rwC.Code, rwC.Body.Bytes())
				}
				if _, hit := st.lookup(budget); hit && snap.cache.hits.Load() == hitsBefore {
					t.Fatalf("%s/%s frac %v: grid request did not hit the cache", wfName, alg, frac)
				}

				rwU, unc := postSchedule(t, uh, url, nil)
				if unc == nil {
					t.Fatalf("%s/%s frac %v uncached: status %d: %s", wfName, alg, frac, rwU.Code, rwU.Body.Bytes())
				}

				ref, err := sched.Get(alg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sched.Run(ref, w, m, budget)
				if err != nil {
					t.Fatal(err)
				}

				for name, resp := range map[string]*scheduleResponse{"cached": got, "uncached": unc} {
					if len(resp.Schedule) != len(want.Schedule) {
						t.Fatalf("%s/%s frac %v %s: schedule length %d != %d",
							wfName, alg, frac, name, len(resp.Schedule), len(want.Schedule))
					}
					for i := range want.Schedule {
						if resp.Schedule[i] != want.Schedule[i] {
							t.Fatalf("%s/%s frac %v %s: schedule[%d] = %d, want %d",
								wfName, alg, frac, name, i, resp.Schedule[i], want.Schedule[i])
						}
					}
					if math.Float64bits(resp.Makespan) != math.Float64bits(want.MED) {
						t.Errorf("%s/%s frac %v %s: makespan %v != direct %v", wfName, alg, frac, name, resp.Makespan, want.MED)
					}
					if math.Float64bits(resp.Cost) != math.Float64bits(want.Cost) {
						t.Errorf("%s/%s frac %v %s: cost %v != direct %v", wfName, alg, frac, name, resp.Cost, want.Cost)
					}
					if math.Float64bits(resp.Budget) != math.Float64bits(budget) {
						t.Errorf("%s/%s frac %v %s: budget %v != BudgetAt %v", wfName, alg, frac, name, resp.Budget, budget)
					}
				}
			}
		}
	}
}

// TestCachedScheduleAllocs is the hit path's zero-alloc gate: once the
// staircase is installed, a warm in-process request at a grid budget
// performs no allocations at all — it never reaches the worker pool.
func TestCachedScheduleAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on channel operations")
	}
	s := testServer(t, Config{Workers: 1})
	p := Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.5}
	var res Result
	if err := s.Schedule(p, &res); err != nil { // arms the build
		t.Fatal(err)
	}
	waitStaircase(t, s, defaultAlgorithm, "example", "paper")
	c := s.Snapshot().cache
	for i := 0; i < 3; i++ { // warm the job pool and result buffers
		if err := s.Schedule(p, &res); err != nil {
			t.Fatal(err)
		}
	}
	hitsBefore := c.hits.Load()
	avg := testing.AllocsPerRun(100, func() {
		if err := s.Schedule(p, &res); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("warm cached Schedule allocates %v allocs/op, want 0", avg)
	}
	if hits := c.hits.Load() - hitsBefore; hits < 100 {
		t.Errorf("AllocsPerRun loop recorded %d cache hits, want >= 100 (requests not served from cache?)", hits)
	}
}

// TestCacheSingleflight floods a cold slot with concurrent grid-budget
// requests: every request must succeed, and the thundering herd must
// produce exactly one staircase build.
func TestCacheSingleflight(t *testing.T) {
	s := testServer(t, Config{Workers: 4, QueueDepth: 64})
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var res Result
			p := Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.25}
			for i := 0; i < 20; i++ {
				if err := s.Schedule(p, &res); err != nil && err != ErrBusy {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	waitStaircase(t, s, defaultAlgorithm, "example", "paper")
	if builds := s.Snapshot().cache.builds.Load(); builds != 1 {
		t.Errorf("herd produced %d builds, want 1 (singleflight)", builds)
	}
}

// TestCacheEviction pins the memory cap: with MaxBytes far below one
// staircase, every install evicts the previously resident staircase
// (LRU, deterministic) and the byte accounting stays consistent.
func TestCacheEviction(t *testing.T) {
	s := testServer(t, Config{Workers: 1, Cache: CacheConfig{MaxBytes: 1}})
	c := s.Snapshot().cache
	var res Result
	algs := []string{"critical-greedy", "critical-ratio", "gain1"}
	for i, alg := range algs {
		p := Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.5, Algorithm: alg}
		if err := s.Schedule(p, &res); err != nil {
			t.Fatal(err)
		}
		st := waitStaircase(t, s, alg, "example", "paper")
		if got := c.staircases(); got != 1 {
			t.Fatalf("after install %d: %d staircases resident, want 1 (cap evicts the rest)", i+1, got)
		}
		if got := c.bytes.Load(); got != st.bytes {
			t.Fatalf("after install %d: resident bytes %d != survivor's %d", i+1, got, st.bytes)
		}
	}
	if ev := c.evictions.Load(); ev != int64(len(algs)-1) {
		t.Errorf("evictions = %d, want %d", ev, len(algs)-1)
	}
	// The evicted slot's latch was released with it: a fresh miss on the
	// first algorithm must be able to rebuild.
	p := Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.5, Algorithm: algs[0]}
	if err := s.Schedule(p, &res); err != nil {
		t.Fatal(err)
	}
	waitStaircase(t, s, algs[0], "example", "paper")
	if builds := c.builds.Load(); builds != int64(len(algs)+1) {
		t.Errorf("builds = %d after re-miss, want %d", builds, len(algs)+1)
	}
}

// TestCacheReloadUnderLoad races POST /reload against cached traffic:
// requests admitted on the old snapshot keep its cache, requests on the
// new snapshot rebuild fresh staircases, and nothing 5xxs. CI runs this
// under -race.
func TestCacheReloadUnderLoad(t *testing.T) {
	s := testServer(t, Config{Workers: 4, QueueDepth: 64})
	h := s.Handler()

	// Pre-warm version 1's staircase so the load starts on the hit path.
	var res Result
	p := Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.5}
	if err := s.Schedule(p, &res); err != nil {
		t.Fatal(err)
	}
	waitStaircase(t, s, defaultAlgorithm, "example", "paper")
	oldCache := s.Snapshot().cache

	const clients, perClient = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if c == 0 && i%10 == 5 {
					rw := httptest.NewRecorder()
					h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/reload", nil))
					if rw.Code != http.StatusOK {
						errs <- fmt.Errorf("reload: status %d: %s", rw.Code, rw.Body.Bytes())
						return
					}
					continue
				}
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost,
					"/schedule?workflow=example&catalog=paper&budget_fraction=0.5", nil))
				switch rw.Code {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					i--
				default:
					errs <- fmt.Errorf("client %d req %d: status %d: %s", c, i, rw.Code, rw.Body.Bytes())
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.Snapshot().cache == oldCache {
		t.Error("reload kept the old snapshot's cache")
	}
	// The superseded cache still answers lookups for anyone who pinned it.
	if slot := oldCache.slot(defaultAlgorithm, "example", "paper"); slot.stair.Load() == nil {
		t.Error("old snapshot's staircase vanished after reload")
	}
}

// TestStatsEndpoint checks the /stats counters across the cache
// lifecycle: cold, after a miss+build, after a hit, and after a reload
// (fresh empty cache).
func TestStatsEndpoint(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	h := s.Handler()
	getStats := func() statsResponse {
		t.Helper()
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/stats", nil))
		if rw.Code != http.StatusOK {
			t.Fatalf("stats: status %d: %s", rw.Code, rw.Body.Bytes())
		}
		var st statsResponse
		if err := json.Unmarshal(rw.Body.Bytes(), &st); err != nil {
			t.Fatalf("stats body: %v\n%s", err, rw.Body.Bytes())
		}
		return st
	}

	st := getStats()
	if !st.CacheEnabled || st.CacheHits != 0 || st.CacheMisses != 0 || st.Staircases != 0 || st.CacheBytes != 0 {
		t.Fatalf("cold stats: %+v", st)
	}
	if st.SnapshotVersion != 1 || st.Workers != 2 || st.QueueDepth != 8 {
		t.Fatalf("cold stats shape: %+v", st)
	}
	if st.BusyFraction < 0 || st.BusyFraction > 1 {
		t.Fatalf("busy fraction %v out of [0,1]", st.BusyFraction)
	}

	var res Result
	p := Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.5}
	if err := s.Schedule(p, &res); err != nil {
		t.Fatal(err)
	}
	waitStaircase(t, s, defaultAlgorithm, "example", "paper")
	if err := s.Schedule(p, &res); err != nil {
		t.Fatal(err)
	}
	st = getStats()
	if st.CacheMisses != 1 || st.CacheHits != 1 || st.CacheBuilds != 1 || st.Staircases != 1 || st.CacheBytes <= 0 {
		t.Fatalf("warm stats: %+v", st)
	}

	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	st = getStats()
	if st.SnapshotVersion != 2 || st.CacheHits != 0 || st.Staircases != 0 {
		t.Fatalf("post-reload stats not reset: %+v", st)
	}
}

// TestCacheDisabledStats: with the cache off, requests serve normally
// and /stats reports the cache disabled.
func TestCacheDisabledStats(t *testing.T) {
	s := testServer(t, Config{Workers: 1, Cache: CacheConfig{Disable: true}})
	var res Result
	p := Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.5}
	for i := 0; i < 3; i++ {
		if err := s.Schedule(p, &res); err != nil {
			t.Fatal(err)
		}
	}
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st statsResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.CacheEnabled || st.CacheHits != 0 || st.Staircases != 0 {
		t.Fatalf("disabled-cache stats: %+v", st)
	}
}

// TestCacheSimulateBypass: simulate requests carry a trace the cache
// does not store, so they must bypass it — even at grid budgets with a
// staircase installed — and still produce correct traces.
func TestCacheSimulateBypass(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	var res Result
	p := Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.5}
	if err := s.Schedule(p, &res); err != nil {
		t.Fatal(err)
	}
	waitStaircase(t, s, defaultAlgorithm, "example", "paper")
	c := s.Snapshot().cache
	hits := c.hits.Load()
	sim := p
	sim.Simulate = true
	if err := s.Schedule(sim, &res); err != nil {
		t.Fatal(err)
	}
	if c.hits.Load() != hits {
		t.Error("simulate request was served from the cache")
	}
	if len(res.Trace.Modules) != len(res.Schedule) {
		t.Errorf("simulate trace has %d modules, schedule %d", len(res.Trace.Modules), len(res.Schedule))
	}
}

// TestDispatchOffGridFallThrough: absolute budgets that are not grid
// points must take the direct path bit-identically whether or not a
// staircase exists.
func TestDispatchOffGridFallThrough(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	snap := s.Snapshot()
	_, cmin, cmax, _ := snap.Pair("example", "paper")
	var res Result
	p := Params{WorkflowRef: "example", CatalogRef: "paper", UseFraction: true, Fraction: 0.5}
	if err := s.Schedule(p, &res); err != nil {
		t.Fatal(err)
	}
	st := waitStaircase(t, s, defaultAlgorithm, "example", "paper")

	offBudget := math.Nextafter(sched.BudgetAt(cmin, cmax, 0.5), cmax)
	if _, hit := st.lookup(offBudget); hit {
		t.Fatal("one-ulp-off budget unexpectedly on the grid")
	}
	misses := snap.cache.misses.Load()
	if err := s.Schedule(Params{WorkflowRef: "example", CatalogRef: "paper", Budget: offBudget}, &res); err != nil {
		t.Fatal(err)
	}
	if snap.cache.misses.Load() != misses+1 {
		t.Error("off-grid budget did not count as a miss")
	}
	ref, err := sched.Get(defaultAlgorithm)
	if err != nil {
		t.Fatal(err)
	}
	w := snap.Workflows["example"]
	m, _, _, _ := snap.Pair("example", "paper")
	want, err := sched.Run(ref, w, m, offBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !workflow.Schedule(res.Schedule).Equal(want.Schedule) ||
		math.Float64bits(res.Makespan) != math.Float64bits(want.MED) ||
		math.Float64bits(res.Cost) != math.Float64bits(want.Cost) {
		t.Errorf("off-grid fall-through diverged: got (%v, %v, %v), want (%v, %v, %v)",
			res.Schedule, res.Makespan, res.Cost, want.Schedule, want.MED, want.Cost)
	}
}
