package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"medcc/internal/sched"
	"medcc/internal/workflow"
)

// The staircase cache exploits MED-CC's central structure: for a fixed
// (workflow, catalog, algorithm) triple the scheduler's answer is a
// pure step function of the budget, so one grid sweep (sched.SweepGrid)
// materializes every answer the triple will ever give at grid budgets.
// The cache is snapshot-scoped and immutable by construction: every
// slot a snapshot can ever serve is preallocated at snapshot build
// (workflows × catalogs × servable algorithms), the slot map is never
// written after publication, and the only mutable state is per-slot
// atomics. A reload builds a fresh empty cache with the fresh snapshot,
// so there is no invalidation protocol — in-flight requests keep the
// cache of the snapshot they pinned at admission, exactly like the
// snapshot itself.
//
// Hit path: one map read, one atomic.Pointer Load, one exact-match
// binary search, one SoA row copy — no locks, no engine, 0 allocs/op.
// Only bit-exact budget matches hit; anything between grid levels falls
// through to the direct scheduling path, which is what makes cached
// responses trivially bit-identical to direct sched.Run (grid levels
// themselves are independent cold solves, see sched.SweepGrid).
//
// Miss path: the first miss on a slot wins a CAS latch (singleflight)
// and rides its own request to a worker, which answers the request
// first (direct path, nothing waits on the sweep) and then builds and
// installs the staircase. Concurrent misses lose the CAS and just take
// the direct path; they never block on the build.

// CacheConfig sizes the snapshot-scoped staircase cache.
type CacheConfig struct {
	// Disable turns the cache off: snapshots carry no cache and every
	// request takes the direct scheduling path.
	Disable bool
	// InitLevels is the uniform starting budget grid per staircase
	// (default 9; a power-of-two-plus-one keeps the grid dyadic).
	InitLevels int
	// MaxLevels caps a staircase's grid after adaptive refinement
	// (default 33).
	MaxLevels int
	// MaxBytes caps resident staircase bytes per snapshot; 0 means
	// unlimited. Over the cap, least-recently-used staircases are
	// evicted on the install path.
	MaxBytes int64
}

// cacheKey identifies one staircase within a snapshot. The snapshot
// version is deliberately absent: the cache lives inside its snapshot.
type cacheKey struct{ alg, wf, cat string }

// cacheSlot is the per-key state. stair flips nil → frozen staircase
// exactly once per build; building is the singleflight latch; lastUse
// is a logical-clock stamp for LRU eviction.
type cacheSlot struct {
	stair    atomic.Pointer[staircase]
	building atomic.Bool
	lastUse  atomic.Int64
}

// staircase is the frozen, immutable result of one grid sweep in SoA
// layout: per-level budgets/MEDs/costs/truncation plus distinct
// schedules flattened into one backing array (level[k] selects row
// flat[level[k]*nm : ...]). Readers share it freely; nothing is ever
// written after freeze.
type staircase struct {
	budgets []float64
	meds    []float64
	costs   []float64
	trunc   []bool
	level   []int32
	flat    []int
	nm      int
	bytes   int64
}

// lookup binary-searches for a bit-exact budget match.
//
// medcc:floateq-exact — grid membership is bit-exact by construction:
// request budgets and grid budgets both come from sched.BudgetAt over
// identical (cmin, cmax, fraction) inputs.
//
// medcc:allocfree
func (st *staircase) lookup(budget float64) (int, bool) {
	lo, hi := 0, len(st.budgets)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.budgets[mid] < budget {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(st.budgets) && st.budgets[lo] == budget {
		return lo, true
	}
	return 0, false
}

// fill copies level k into the job's pooled result fields — the entire
// work of a cache hit.
//
// medcc:allocfree
func (st *staircase) fill(j *job, k int) {
	row := int(st.level[k]) * st.nm
	j.sched = append(j.sched[:0], st.flat[row:row+st.nm]...)
	j.makespan = st.meds[k]
	j.cost = st.costs[k]
	j.truncated = st.trunc != nil && st.trunc[k]
}

// scheduleCache is one snapshot's cache. slots is immutable after
// newScheduleCache returns; keys is the sorted iteration order (the
// collect-then-sort idiom, so eviction and stats are deterministic).
type scheduleCache struct {
	slots map[cacheKey]*cacheSlot
	keys  []cacheKey

	initLevels int
	maxLevels  int
	maxBytes   int64

	clock atomic.Int64 // logical time for LRU stamps
	bytes atomic.Int64 // resident staircase bytes

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	builds    atomic.Int64

	// evictMu serializes install-path eviction scans. Never taken on
	// the hit path.
	evictMu sync.Mutex
}

// newScheduleCache preallocates a slot for every triple the snapshot
// can serve. Slots are tiny (three words of atomics); even a large
// library × the full algorithm registry stays in the kilobytes.
func newScheduleCache(snap *Snapshot, algs map[string]bool, cc CacheConfig) *scheduleCache {
	if cc.InitLevels <= 0 {
		cc.InitLevels = 9
	}
	if cc.MaxLevels <= 0 {
		cc.MaxLevels = 33
	}
	c := &scheduleCache{
		initLevels: cc.InitLevels,
		maxLevels:  cc.MaxLevels,
		maxBytes:   cc.MaxBytes,
	}
	algNames := sortedKeys(algs)
	n := len(algNames) * len(snap.wfNames) * len(snap.catNames)
	c.slots = make(map[cacheKey]*cacheSlot, n)
	c.keys = make([]cacheKey, 0, n)
	for _, alg := range algNames {
		for _, wf := range snap.wfNames {
			for _, cat := range snap.catNames {
				k := cacheKey{alg: alg, wf: wf, cat: cat}
				c.slots[k] = &cacheSlot{}
				c.keys = append(c.keys, k)
			}
		}
	}
	sort.Slice(c.keys, func(i, j int) bool {
		a, b := c.keys[i], c.keys[j]
		if a.alg != b.alg {
			return a.alg < b.alg
		}
		if a.wf != b.wf {
			return a.wf < b.wf
		}
		return a.cat < b.cat
	})
	return c
}

// slot returns the key's slot, or nil for triples outside the snapshot.
//
// medcc:allocfree
func (c *scheduleCache) slot(alg, wf, cat string) *cacheSlot {
	return c.slots[cacheKey{alg: alg, wf: wf, cat: cat}]
}

// dispatch is the cache front end, between prepare and the admission
// queue: serve a bit-exact grid hit from the pinned snapshot's
// staircase without touching a worker, otherwise fall through to submit
// — arming the singleflight build latch when this miss is the slot's
// first. Simulated-trace requests and inline instances bypass the cache
// (j.cacheable is set only for named snapshot pairs).
//
// medcc:allocfree
func (s *Server) dispatch(j *job) error {
	c := j.snap.cache
	if c == nil || !j.cacheable || j.simulate {
		return s.submit(j)
	}
	slot := c.slot(j.alg, j.wfRef, j.catRef)
	if slot == nil {
		return s.submit(j)
	}
	if st := slot.stair.Load(); st != nil {
		if k, ok := st.lookup(j.budget); ok {
			slot.lastUse.Store(c.clock.Add(1))
			c.hits.Add(1)
			st.fill(j, k)
			return nil
		}
	} else if slot.building.CompareAndSwap(false, true) {
		j.buildSlot = slot
		j.buildCache = c
	}
	c.misses.Add(1)
	err := s.submit(j)
	if err != nil && j.buildSlot != nil {
		// The job never reached a worker (full queue, closing server):
		// release the latch so a later miss can claim the build. A job a
		// worker did serve always has buildSlot cleared (captureBuild)
		// before the done signal, whatever its j.err.
		j.buildSlot.building.Store(false)
		j.buildSlot, j.buildCache = nil, nil
	}
	return err
}

// install publishes a frozen staircase and applies the memory cap.
// Runs on a worker after the triggering request was answered — the cold
// path by construction.
//
// medcc:coldpath
func (c *scheduleCache) install(slot *cacheSlot, fz *staircase) {
	c.evictMu.Lock()
	slot.stair.Store(fz)
	slot.lastUse.Store(c.clock.Add(1))
	c.bytes.Add(fz.bytes)
	c.builds.Add(1)
	if c.maxBytes > 0 {
		c.evictLocked(slot)
	}
	c.evictMu.Unlock()
	slot.building.Store(false)
}

// evictLocked drops least-recently-used staircases (never the one just
// installed) until resident bytes fit the cap. Ties break on sorted key
// order, so eviction is deterministic. Evicted staircases stay valid
// for readers that already Loaded them — they are immutable; only the
// slot forgets them.
func (c *scheduleCache) evictLocked(keep *cacheSlot) {
	for c.bytes.Load() > c.maxBytes {
		var victim *cacheSlot
		var oldest int64
		for _, k := range c.keys {
			slot := c.slots[k]
			if slot == keep || slot.stair.Load() == nil {
				continue
			}
			if use := slot.lastUse.Load(); victim == nil || use < oldest {
				victim, oldest = slot, use
			}
		}
		if victim == nil {
			return
		}
		if fz := victim.stair.Swap(nil); fz != nil {
			c.bytes.Add(-fz.bytes)
			c.evictions.Add(1)
		}
	}
}

// staircases counts installed staircases (stats path).
func (c *scheduleCache) staircases() int {
	n := 0
	for _, k := range c.keys {
		if c.slots[k].stair.Load() != nil {
			n++
		}
	}
	return n
}

// buildReq carries everything a worker needs to build a staircase after
// it has acked the triggering job: the job returns to the frontend pool
// on the done signal, so its fields must be copied out first. All
// referenced state is owned by the pinned (immutable) snapshot, so the
// copies stay valid for the duration of the build.
//
// buildReq deliberately has no methods: it is a single-build value on
// the worker stack, dead before the snapshot it references can change.
type buildReq struct {
	slot          *cacheSlot
	cache         *scheduleCache
	snap          *Snapshot
	w             *workflow.Workflow
	alg           string
	wfRef, catRef string
}

// captureBuild lifts a pending build off a served job, before the done
// signal releases the job back to the frontend.
//
// medcc:allocfree
func captureBuild(j *job) buildReq {
	if j.buildSlot == nil {
		return buildReq{}
	}
	br := buildReq{
		slot:   j.buildSlot,
		cache:  j.buildCache,
		snap:   j.snap,
		w:      j.w,
		alg:    j.alg,
		wfRef:  j.wfRef,
		catRef: j.catRef,
	}
	j.buildSlot, j.buildCache = nil, nil
	return br
}

// buildStaircase runs the grid sweep for one slot and installs the
// frozen result. Any failure just releases the singleflight latch — a
// later miss retries; requests were never waiting on this.
//
// medcc:coldpath — once per (snapshot, workflow, catalog, algorithm).
func (w *worker) buildStaircase(br buildReq) {
	alg := w.algs[br.alg]
	m, cmin, cmax, ok := br.snap.Pair(br.wfRef, br.catRef)
	if alg == nil || !ok {
		br.slot.building.Store(false)
		return
	}
	st, err := sched.SweepGrid(alg, br.w, m, cmin, cmax, sched.GridOptions{
		InitLevels: br.cache.initLevels,
		MaxLevels:  br.cache.maxLevels,
	})
	if err != nil {
		br.slot.building.Store(false)
		return
	}
	fz, err := w.freezeStaircase(st, br.w, m)
	if err != nil {
		br.slot.building.Store(false)
		return
	}
	br.cache.install(br.slot, fz)
}

// freezeStaircase evaluates and flattens a sweep into the immutable SoA
// form. MED and cost are computed once per distinct schedule through
// the worker's own pooled timing — the exact code path the direct serve
// response uses — then broadcast across the levels sharing it, so a hit
// reproduces the direct response bit for bit.
//
// medcc:coldpath
func (w *worker) freezeStaircase(st *sched.Staircase, wf *workflow.Workflow, m *workflow.Matrices) (*staircase, error) {
	nLev, nDis := st.Levels(), st.Steps()
	nm := len(st.Scheds[0])
	fz := &staircase{
		budgets: make([]float64, nLev),
		meds:    make([]float64, nLev),
		costs:   make([]float64, nLev),
		level:   make([]int32, nLev),
		flat:    make([]int, nDis*nm),
		nm:      nm,
	}
	copy(fz.budgets, st.Budgets)
	copy(fz.level, st.Level)
	if st.Trunc != nil {
		fz.trunc = make([]bool, nLev)
		copy(fz.trunc, st.Trunc)
	}
	disMED := make([]float64, nDis)
	disCost := make([]float64, nDis)
	for d, s := range st.Scheds {
		copy(fz.flat[d*nm:(d+1)*nm], s)
		med, err := w.evalMED(wf, m, s)
		if err != nil {
			return nil, err
		}
		disMED[d] = med
		disCost[d] = m.Cost(s)
	}
	for k := 0; k < nLev; k++ {
		fz.meds[k] = disMED[fz.level[k]]
		fz.costs[k] = disCost[fz.level[k]]
	}
	fz.bytes = staircaseBytes(nLev, nDis, nm, fz.trunc != nil)
	return fz, nil
}

// staircaseBytes is the resident-size model used for the memory cap:
// the SoA backing arrays plus the struct header.
func staircaseBytes(nLev, nDis, nm int, hasTrunc bool) int64 {
	b := int64(nLev) * (8 + 8 + 8 + 4) // budgets, meds, costs, level
	b += int64(nDis) * int64(nm) * 8   // flat schedules
	if hasTrunc {
		b += int64(nLev)
	}
	return b + 128
}
