// Package serve is the long-running scheduling service: a fixed worker
// pool with per-worker pooled scratch serving workflow + catalog +
// budget requests over HTTP (JSON or the binary container) or
// in-process, with bounded admission queueing, same-instance request
// batching, and versioned snapshots of the loaded catalog/workflow
// libraries.
//
// Request life cycle: the frontend decodes into a pooled job, pins the
// current snapshot, and performs a non-blocking send into the admission
// queue (a full queue is 429 backpressure, not a wait). A worker drains
// a batch, sorts it so same-instance requests are adjacent (one engine
// bind amortizes across the run), schedules each job in its own pooled
// scratch, and signals completion. The frontend then marshals the
// response — the only allocating step of a warm request.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"medcc/internal/sched"
)

// defaultAlgorithm is used when a request names no algorithm.
const defaultAlgorithm = "critical-greedy"

// Config sizes the server and names its libraries.
type Config struct {
	// Workers is the number of scheduling goroutines (default
	// GOMAXPROCS). Each owns its scheduler engines, timing, and
	// Replayer.
	Workers int
	// QueueDepth bounds the admission queue (default 4×Workers). A
	// full queue rejects with ErrBusy / HTTP 429.
	QueueDepth int
	// MaxBatch caps how many queued jobs one worker drains per batch
	// (default 16).
	MaxBatch int
	// Library names the catalog/workflow sources loaded into the
	// snapshot; the built-in "paper" catalog and "example" workflow are
	// always present.
	Library Library
	// Cache configures the snapshot-scoped staircase cache (enabled by
	// default; zero value means defaults).
	Cache CacheConfig
}

// Server is the scheduling service. Create with New, serve via
// Handler (HTTP) or Schedule (in-process), stop with Close.
type Server struct {
	lib      Library
	maxBatch int
	cacheCfg CacheConfig

	snap    atomic.Pointer[Snapshot]
	queue   chan *job
	workers []worker
	algOK   map[string]bool
	busy    atomic.Int64 // workers currently serving a batch (stats gauge)

	jobs    sync.Pool
	scratch sync.Pool

	mu     sync.RWMutex // guards closed against queue sends
	closed bool
	wg     sync.WaitGroup

	reloadMu sync.Mutex // serializes Reload version bumps
}

// New loads the library, builds snapshot version 1, and starts the
// worker pool.
func New(cfg Config) (*Server, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 16
	}
	algOK := intoSchedulers()
	snap, err := buildSnapshot(cfg.Library, 1, cfg.Cache, algOK)
	if err != nil {
		return nil, err
	}
	s := &Server{
		lib:      cfg.Library,
		maxBatch: maxBatch,
		cacheCfg: cfg.Cache,
		queue:    make(chan *job, depth),
		workers:  make([]worker, workers),
		algOK:    algOK,
	}
	s.snap.Store(snap)
	s.jobs.New = func() any { return newJob() }
	s.scratch.New = func() any { return newDecodeScratch() }
	for k := range s.workers {
		s.wg.Add(1)
		go s.runWorker(k)
	}
	return s, nil
}

// intoSchedulers maps the registry names usable by the pool: every
// registered scheduler that supports pooled (ScheduleInto) scheduling.
func intoSchedulers() map[string]bool {
	ok := map[string]bool{}
	for _, name := range sched.Names() {
		sc, err := sched.Get(name)
		if err != nil {
			continue
		}
		if _, isInto := sc.(sched.IntoScheduler); isInto {
			ok[name] = true
		}
	}
	return ok
}

// Algorithms lists the servable algorithm names, sorted.
func (s *Server) Algorithms() []string { return sortedKeys(s.algOK) }

// Snapshot returns the current library snapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Reload re-reads every library source, builds the next snapshot
// version (with a fresh empty staircase cache), and publishes it
// atomically. In-flight requests finish on the snapshot — and the
// cache — they pinned at admission; a failed reload changes nothing.
func (s *Server) Reload() (*Snapshot, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	next, err := buildSnapshot(s.lib, s.snap.Load().Version+1, s.cacheCfg, s.algOK)
	if err != nil {
		return nil, err
	}
	s.snap.Store(next)
	return next, nil
}

// Close stops admission, drains the queue, and waits for the workers.
// Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Handler returns the HTTP API:
//
//	POST /schedule  schedule a workflow (JSON envelope, binary
//	                container, or query-only with library refs)
//	GET  /healthz   liveness + snapshot version
//	GET  /library   snapshot listing: catalogs, workflows, algorithms
//	GET  /stats     cache hit/miss/eviction counters, queue and worker load
//	POST /reload    rebuild the snapshot from the library sources
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", s.handleSchedule)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/library", s.handleLibrary)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/reload", s.handleReload)
	return mux
}

// RequestError marks a malformed or unsatisfiable request — the class
// of failure the HTTP layer reports as 400.
type RequestError struct {
	Op     string // which input failed: "workflow", "catalog", "budget", ...
	Detail string // offending value, when useful
	Err    error
}

func (e *RequestError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("serve: %s %q: %v", e.Op, e.Detail, e.Err)
	}
	return fmt.Sprintf("serve: %s: %v", e.Op, e.Err)
}

func (e *RequestError) Unwrap() error { return e.Err }

var (
	errUnknownAlgorithm = errors.New("unknown or non-pooled algorithm")
	errUnknownName      = errors.New("not in the current snapshot")
	errMissingInput     = errors.New("neither inline value nor library ref given")
	errBadFraction      = errors.New("budget_fraction must be in [0,1]")
	errBadParam         = errors.New("invalid parameter")
	errPostOnly         = errors.New("serve: POST only")
)
