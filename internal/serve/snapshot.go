package serve

import (
	"fmt"
	"sort"

	"medcc/internal/cloud"
	"medcc/internal/ingest"
	"medcc/internal/workflow"
)

// Snapshot is an immutable, versioned view of the server's loaded
// catalog and workflow libraries, in the style of a config-watcher
// daemon: requests pin the snapshot current at admission time, a reload
// builds a complete replacement off to the side and publishes it with
// one atomic pointer swap. In-flight requests keep reading their pinned
// snapshot; nothing under an already-published Snapshot is ever
// mutated, so concurrent readers need no locks.
//
// For every (workflow, catalog) pair the snapshot eagerly prebuilds the
// scheduling matrices (including the dominance-pruned option tables and
// the feasible budget range) and warms the workflow's cached topo
// order/CSR adjacency, so serving a named pair binds no per-request
// state and is safe for any number of workers simultaneously.
type Snapshot struct {
	// Version increments on every successful reload, starting at 1.
	Version uint64
	// Catalogs and Workflows are the named libraries. Entries must be
	// treated as read-only.
	Catalogs  map[string]cloud.Catalog
	Workflows map[string]*workflow.Workflow

	pairs map[pairKey]*pairEntry

	// cache is the snapshot-scoped staircase cache (nil when disabled).
	// It is born empty with the snapshot and dies with it: reloads carry
	// no cache state forward, which is the entire invalidation story.
	cache *scheduleCache

	catNames, wfNames []string // sorted, for listings
}

type pairKey struct{ wf, cat string }

// pairEntry is a prebuilt (workflow, catalog) binding.
type pairEntry struct {
	m          *workflow.Matrices
	cmin, cmax float64
}

// Library names the sources a snapshot is built from. Paths are
// re-read on every reload; the built-in example entries (catalog
// "paper", workflow "example", the paper's Fig. 2 instance) are always
// present unless a source shadows their name.
type Library struct {
	// Catalogs maps name → path of a catalog JSON file (a list of VM
	// types, the cmd/medcc -catalog format).
	Catalogs map[string]string
	// Workflows maps name → path of a workflow file in any ingest
	// format (native JSON, DAX XML, WfCommons JSON, binary container).
	Workflows map[string]string
}

// buildSnapshot loads every library source, prebuilds all
// (workflow, catalog) pairs, and attaches a fresh empty staircase cache
// (slots for every servable algorithm in algs, unless cc.Disable). Any
// unreadable or invalid source fails the whole build — a reload either
// fully succeeds or leaves the previous snapshot in place.
func buildSnapshot(lib Library, version uint64, cc CacheConfig, algs map[string]bool) (*Snapshot, error) {
	snap := &Snapshot{
		Version:   version,
		Catalogs:  map[string]cloud.Catalog{},
		Workflows: map[string]*workflow.Workflow{},
	}
	exWf, exCat := workflow.PaperExample()
	snap.Catalogs["paper"] = exCat
	snap.Workflows["example"] = exWf

	for _, name := range sortedKeys(lib.Catalogs) {
		var cat cloud.Catalog
		if err := ingest.JSONFile(lib.Catalogs[name], &cat); err != nil {
			return nil, fmt.Errorf("serve: catalog %q: %w", name, err)
		}
		if err := cat.Validate(); err != nil {
			return nil, fmt.Errorf("serve: catalog %q (%s): %w", name, lib.Catalogs[name], err)
		}
		snap.Catalogs[name] = cat
	}
	for _, name := range sortedKeys(lib.Workflows) {
		w, _, _, err := ingest.File(lib.Workflows[name], ingest.Options{ReferencePower: 1})
		if err != nil {
			return nil, fmt.Errorf("serve: workflow %q: %w", name, err)
		}
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("serve: workflow %q (%s): %w", name, lib.Workflows[name], err)
		}
		snap.Workflows[name] = w
	}

	snap.catNames = sortedKeys(snap.Catalogs)
	snap.wfNames = sortedKeys(snap.Workflows)

	// Prebuild every pair. Building matrices also warms the workflow's
	// cached topo order and CSR adjacency, so publishing the snapshot
	// is the synchronization point after which concurrent readers only
	// ever hit warm caches.
	snap.pairs = make(map[pairKey]*pairEntry, len(snap.wfNames)*len(snap.catNames))
	for _, wn := range snap.wfNames {
		w := snap.Workflows[wn]
		for _, cn := range snap.catNames {
			m, err := w.BuildMatrices(snap.Catalogs[cn], cloud.HourlyRoundUp)
			if err != nil {
				return nil, fmt.Errorf("serve: pair (%s, %s): %w", wn, cn, err)
			}
			m.BuildOptions()
			cmin, cmax := m.BudgetRange(w)
			snap.pairs[pairKey{wn, cn}] = &pairEntry{m: m, cmin: cmin, cmax: cmax}
		}
	}
	if !cc.Disable {
		snap.cache = newScheduleCache(snap, algs, cc)
	}
	return snap, nil
}

// Pair returns the prebuilt matrices and feasible budget range of a
// named (workflow, catalog) pair, or false if either name is unknown.
func (s *Snapshot) Pair(wf, cat string) (*workflow.Matrices, float64, float64, bool) {
	e, ok := s.pairs[pairKey{wf, cat}]
	if !ok {
		return nil, 0, 0, false
	}
	return e.m, e.cmin, e.cmax, true
}

// CatalogNames and WorkflowNames list the libraries in sorted order.
func (s *Snapshot) CatalogNames() []string  { return s.catNames }
func (s *Snapshot) WorkflowNames() []string { return s.wfNames }

// sortedKeys collects and sorts a string-keyed map's keys (the
// collect-then-sort idiom the mapiter analyzer mandates).
func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
