package serve

import (
	"fmt"

	"medcc/internal/dag"
	"medcc/internal/sched"
	"medcc/internal/sim"
	"medcc/internal/workflow"
)

// worker is the per-goroutine serving scratch: scheduler engines (one
// per algorithm, lazily instantiated), the pooled timing used for
// makespan evaluation, a Replayer for simulated traces, and the batch
// buffer. Each worker goroutine owns exactly one worker by index into
// the server's pool — workers never cross goroutines, so every piece of
// scratch is reused from request to request without synchronization.
//
// medcc:scratch
type worker struct {
	algs  map[string]sched.IntoScheduler
	batch []*job

	// Pooled makespan evaluation, the campaign-scratch idiom: rebuild
	// the Timing when the (graph, version) binding changes, refresh it
	// in place otherwise. tg tracks graph identity because jobs from
	// different workflows carry distinct graphs whose version counters
	// are unrelated.
	times []float64
	t     *dag.Timing
	tg    *dag.Graph
	tver  uint64

	rep sim.Replayer
}

// runWorker is one pool goroutine: take a job (blocking), opportunistically
// drain more into a batch, sort the batch so same-instance requests are
// adjacent, and serve them in order. Sorting is what amortizes the
// catalog bind: scheduler engines early-return their bind when the
// (workflow, matrices, versions) tuple is unchanged, so a batch of
// same-pair requests binds once and schedules many times.
// A job that won its cache slot's singleflight latch additionally
// triggers a staircase build — AFTER its done signal, so the requester
// never waits on the sweep, and only from fields captured beforehand,
// because the ack releases the job back to the frontend pool.
func (s *Server) runWorker(k int) {
	defer s.wg.Done()
	w := &s.workers[k]
	for j := range s.queue {
		s.busy.Add(1)
		w.batch = append(w.batch[:0], j)
		w.gather(s.queue, s.maxBatch)
		w.sortBatch()
		for _, j := range w.batch {
			j.err = w.serve(j)
			br := captureBuild(j)
			j.done <- struct{}{}
			if br.slot != nil {
				w.buildStaircase(br)
			}
		}
		s.busy.Add(-1)
	}
}

// gather drains up to max-1 additional queued jobs without blocking.
//
// medcc:allocfree
func (w *worker) gather(queue <-chan *job, max int) {
	for len(w.batch) < max {
		select {
		case j, ok := <-queue:
			if !ok {
				return
			}
			w.batch = append(w.batch, j)
		default:
			return
		}
	}
}

// sortBatch groups the batch by (algorithm, workflow, catalog, snapshot
// version) with an in-place insertion sort — batches are small and
// mostly presorted under homogeneous load. The sort is stable, so
// same-key requests keep their admission order and responses stay
// deterministic.
//
// medcc:allocfree
func (w *worker) sortBatch() {
	b := w.batch
	for i := 1; i < len(b); i++ {
		j := b[i]
		k := i - 1
		for k >= 0 && batchLess(j, b[k]) {
			b[k+1] = b[k]
			k--
		}
		b[k+1] = j
	}
}

// batchLess orders jobs for batching. Inline instances have empty refs
// and sort together; their engines rebind per job regardless.
//
// medcc:allocfree
func batchLess(a, b *job) bool {
	if a.alg != b.alg {
		return a.alg < b.alg
	}
	if a.wfRef != b.wfRef {
		return a.wfRef < b.wfRef
	}
	if a.catRef != b.catRef {
		return a.catRef < b.catRef
	}
	return a.snap.Version < b.snap.Version
}

// serve runs one admitted job: schedule within budget, price and time
// the result, optionally replay it for a trace. Everything here runs in
// worker-owned scratch.
//
// medcc:allocfree
// medcc:deterministic — served schedules are differential-tested
// bit-identical to direct sched.Run
func (w *worker) serve(j *job) error {
	alg := w.algs[j.alg]
	if alg == nil {
		var err error
		if alg, err = w.algFor(j.alg); err != nil {
			return err
		}
	}
	sc, err := alg.ScheduleInto(j.sched, j.w, j.m, j.budget)
	if err != nil {
		return err
	}
	j.sched = sc
	j.cost = j.m.Cost(sc)
	if j.makespan, err = w.makespan(j); err != nil {
		return err
	}
	if tr, ok := alg.(sched.TruncationReporter); ok {
		j.truncated = tr.WasTruncated()
	} else {
		j.truncated = false
	}
	if !j.simulate {
		return nil
	}
	return w.rep.RunInto(sim.Config{
		Workflow: j.w, Matrices: j.m, Schedule: j.sched,
		BootTime: j.boot, Bandwidth: j.bw, Delay: j.delay,
		TransferSlots: j.slots,
	}, &j.trace)
}

// makespan evaluates the schedule's end-to-end delay with the pooled
// timing (zero transfer time, the paper's evaluation setting — matches
// sched.Run's MED).
//
// medcc:allocfree
func (w *worker) makespan(j *job) (float64, error) {
	if err := j.w.ValidateSchedule(j.sched, len(j.m.Catalog)); err != nil {
		return 0, err
	}
	return w.evalMED(j.w, j.m, j.sched)
}

// evalMED is the pooled-timing MED evaluation shared by the direct
// request path (makespan) and the staircase freeze — one code path, so
// cached MEDs are bit-identical to direct responses by construction.
//
// medcc:allocfree
func (w *worker) evalMED(wf *workflow.Workflow, m *workflow.Matrices, s workflow.Schedule) (float64, error) {
	w.times = m.TimesInto(s, w.times)
	g := wf.Graph()
	if w.t == nil || w.tg != g || w.tver != g.Version() {
		return w.freshTiming(g)
	}
	if err := w.t.Update(w.times); err != nil {
		return 0, err
	}
	return w.t.Makespan, nil
}

// freshTiming rebinds the pooled timing to a new graph.
//
// medcc:coldpath — runs on instance switch within a batch, not per
// request; batch sorting keeps same-instance requests adjacent so the
// rebuild amortizes like the engines' bind.
func (w *worker) freshTiming(g *dag.Graph) (float64, error) {
	t, err := dag.NewTiming(g, w.times, nil)
	if err != nil {
		return 0, err
	}
	w.t, w.tg, w.tver = t, g, g.Version()
	return t.Makespan, nil
}

// algFor instantiates and caches a per-worker scheduler engine.
//
// medcc:coldpath — once per (worker, algorithm).
func (w *worker) algFor(name string) (sched.IntoScheduler, error) {
	if w.algs == nil {
		w.algs = map[string]sched.IntoScheduler{}
	}
	sc, err := sched.Get(name)
	if err != nil {
		return nil, err
	}
	into, ok := sc.(sched.IntoScheduler)
	if !ok {
		return nil, fmt.Errorf("serve: %s does not support pooled scheduling", name)
	}
	w.algs[name] = into
	return into, nil
}
