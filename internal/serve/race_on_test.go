//go:build race

package serve

// raceEnabled skips allocation-count assertions: the race runtime
// instruments channel and sync operations with its own allocations.
const raceEnabled = true
