package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"medcc/internal/workflow"
)

// fuzzSrv/fuzzUncached are built once per fuzz process: the target
// exercises request decoding and the cache front end, not server
// construction. The pair differs only in the cache, so any divergence
// between their responses is a cache bug.
var (
	fuzzOnce     sync.Once
	fuzzSrv      *Server
	fuzzUncached *Server
)

func fuzzHandlers(f *testing.F) (cached, uncached http.Handler) {
	fuzzOnce.Do(func() {
		s, err := New(Config{Workers: 2})
		if err != nil {
			f.Fatal(err)
		}
		u, err := New(Config{Workers: 2, Cache: CacheConfig{Disable: true}})
		if err != nil {
			f.Fatal(err)
		}
		fuzzSrv, fuzzUncached = s, u
	})
	return fuzzSrv.Handler(), fuzzUncached.Handler()
}

// FuzzServeRequest feeds arbitrary bodies and query strings through the
// /schedule endpoint: malformed input must map to a 4xx status, never a
// panic or a 5xx.
func FuzzServeRequest(f *testing.F) {
	w, cat := workflow.PaperExample()
	golden, err := json.Marshal(map[string]any{
		"workflow": w, "catalog": cat, "budget_fraction": 0.5,
	})
	if err != nil {
		f.Fatal(err)
	}
	refs, err := json.Marshal(map[string]any{
		"workflow_ref": "example", "catalog_ref": "paper", "budget": 100.0, "simulate": true,
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Add("budget=100", []byte{})
	f.Add("", golden)
	f.Add("algorithm=critical-greedy", refs)
	f.Add("budget_fraction=0.5", containerBody(f, w, cat))
	f.Add("catalog=paper&budget=10", []byte("MED"))
	f.Add("workflow=example&catalog=paper&budget=1e308", []byte(nil))
	f.Add("budget=100", []byte(`{"workflow":{"modules":[{"name":"a"`))
	f.Add("budget=nan&workflow=example&catalog=paper", []byte("\xef\xbb\xbf{}"))
	// Cache-path seeds: staircase grid boundaries (0, dyadic interior
	// points, 1), an off-grid fraction that must fall through, absolute
	// budgets far outside the grid, an out-of-range fraction, and a
	// cacheable pair under a non-default algorithm.
	f.Add("workflow=example&catalog=paper&budget_fraction=0", []byte{})
	f.Add("workflow=example&catalog=paper&budget_fraction=0.125", []byte{})
	f.Add("workflow=example&catalog=paper&budget_fraction=1", []byte{})
	f.Add("workflow=example&catalog=paper&budget_fraction=0.3", []byte{})
	f.Add("workflow=example&catalog=paper&budget=1e300", []byte{})
	f.Add("workflow=example&catalog=paper&budget=0", []byte{})
	f.Add("workflow=example&catalog=paper&budget_fraction=-0.5", []byte{})
	f.Add("workflow=example&catalog=paper&budget_fraction=0.5&algorithm=gain1", []byte{})

	ch, uh := fuzzHandlers(f)
	f.Fuzz(func(t *testing.T, query string, body []byte) {
		// Set RawQuery directly: the server must survive any query
		// string the transport would deliver, including ones the
		// httptest target parser itself rejects.
		req := httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(body))
		req.URL.RawQuery = query
		rw := httptest.NewRecorder()
		ch.ServeHTTP(rw, req) // must not panic
		if rw.Code >= 500 {
			t.Fatalf("query %q body %q: status %d: %s", query, body, rw.Code, rw.Body.Bytes())
		}

		// Replay on the cache-disabled twin: whether the cached server
		// answered from a staircase or the direct path, status and body
		// must agree exactly (both serve deterministic schedulers over
		// identical snapshots).
		req = httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(body))
		req.URL.RawQuery = query
		rwU := httptest.NewRecorder()
		uh.ServeHTTP(rwU, req)
		if busy := http.StatusTooManyRequests; rw.Code == busy || rwU.Code == busy {
			return // backpressure depends on queue state, not the input
		}
		if rw.Code != rwU.Code {
			t.Fatalf("query %q body %q: cached status %d != uncached %d", query, body, rw.Code, rwU.Code)
		}
		if rw.Code == http.StatusOK && !bytes.Equal(rw.Body.Bytes(), rwU.Body.Bytes()) {
			t.Fatalf("query %q body %q: cached and uncached responses differ\ncached:   %s\nuncached: %s",
				query, body, rw.Body.Bytes(), rwU.Body.Bytes())
		}
	})
}
