package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"medcc/internal/workflow"
)

// fuzzSrv is built once per fuzz process: the target exercises request
// decoding, not server construction.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzHandler(f *testing.F) http.Handler {
	fuzzOnce.Do(func() {
		s, err := New(Config{Workers: 2})
		if err != nil {
			f.Fatal(err)
		}
		fuzzSrv = s
	})
	return fuzzSrv.Handler()
}

// FuzzServeRequest feeds arbitrary bodies and query strings through the
// /schedule endpoint: malformed input must map to a 4xx status, never a
// panic or a 5xx.
func FuzzServeRequest(f *testing.F) {
	w, cat := workflow.PaperExample()
	golden, err := json.Marshal(map[string]any{
		"workflow": w, "catalog": cat, "budget_fraction": 0.5,
	})
	if err != nil {
		f.Fatal(err)
	}
	refs, err := json.Marshal(map[string]any{
		"workflow_ref": "example", "catalog_ref": "paper", "budget": 100.0, "simulate": true,
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Add("budget=100", []byte{})
	f.Add("", golden)
	f.Add("algorithm=critical-greedy", refs)
	f.Add("budget_fraction=0.5", containerBody(f, w, cat))
	f.Add("catalog=paper&budget=10", []byte("MED"))
	f.Add("workflow=example&catalog=paper&budget=1e308", []byte(nil))
	f.Add("budget=100", []byte(`{"workflow":{"modules":[{"name":"a"`))
	f.Add("budget=nan&workflow=example&catalog=paper", []byte("\xef\xbb\xbf{}"))

	h := fuzzHandler(f)
	f.Fuzz(func(t *testing.T, query string, body []byte) {
		// Set RawQuery directly: the server must survive any query
		// string the transport would deliver, including ones the
		// httptest target parser itself rejects.
		req := httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(body))
		req.URL.RawQuery = query
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req) // must not panic
		if rw.Code >= 500 {
			t.Fatalf("query %q body %q: status %d: %s", query, body, rw.Code, rw.Body.Bytes())
		}
	})
}
