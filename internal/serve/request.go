package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"

	"medcc/internal/encoding"
	"medcc/internal/ingest"
	"medcc/internal/sched"
	"medcc/internal/sim"
)

// requestEnvelope is the JSON request body of POST /schedule. Inline
// workflows use the native workflow JSON; other formats arrive via the
// binary container or the preloaded library. When both an inline value
// and a ref are given, the inline value wins.
type requestEnvelope struct {
	Workflow       json.RawMessage `json:"workflow,omitempty"`
	WorkflowRef    string          `json:"workflow_ref,omitempty"`
	Catalog        json.RawMessage `json:"catalog,omitempty"`
	CatalogRef     string          `json:"catalog_ref,omitempty"`
	Budget         *float64        `json:"budget,omitempty"`
	BudgetFraction *float64        `json:"budget_fraction,omitempty"`
	Algorithm      string          `json:"algorithm,omitempty"`
	Simulate       bool            `json:"simulate,omitempty"`
	BootTime       float64         `json:"boot_time,omitempty"`
	Bandwidth      float64         `json:"bandwidth,omitempty"`
	Delay          float64         `json:"delay,omitempty"`
	TransferSlots  int             `json:"transfer_slots,omitempty"`
}

// decodeScratch is the pooled per-request decode state of the HTTP
// frontend: the sniffing buffer, a container reader, and the chunk
// decoder with its string intern table. Handlers borrow one from the
// pool for the duration of decoding only; everything a job needs after
// admission is copied into job-owned storage.
type decodeScratch struct {
	br  *bufio.Reader
	cr  *encoding.CorpusReader
	dec encoding.Decoder
	env requestEnvelope
}

func newDecodeScratch() *decodeScratch {
	return &decodeScratch{
		br: bufio.NewReaderSize(nil, 1<<16),
		cr: &encoding.CorpusReader{},
	}
}

// decodeRequest turns an HTTP request into a prepared job: query
// parameters first (the only channel for binary bodies), then the body
// (JSON envelope or binary container) overriding them, then resolution
// against the pinned snapshot via prepare.
func (s *Server) decodeRequest(j *job, ds *decodeScratch, req *http.Request) error {
	var p Params
	budgetSet, err := paramsFromQuery(&p, req)
	if err != nil {
		return err
	}

	ds.br.Reset(req.Body)
	f, detErr := ingest.Detect(ds.br)
	switch {
	case detErr == nil && f == ingest.FormatContainer:
		if err := ds.containerInstance(j, &p); err != nil {
			return err
		}
	case detErr == nil || errors.Is(detErr, ingest.ErrAmbiguousJSON):
		// Any JSON body is the request envelope, whichever workflow
		// dialect its keys happen to resemble.
		if err := ingest.SkipLead(ds.br); err != nil {
			return &RequestError{Op: "body", Err: err}
		}
		if err := ds.jsonEnvelope(j, &p, &budgetSet); err != nil {
			return err
		}
	case errors.Is(detErr, ingest.ErrEmpty):
		// Query-only request: workflow/catalog must be library refs.
	default:
		return &RequestError{Op: "body", Err: detErr}
	}

	if !budgetSet && !p.UseFraction {
		return &RequestError{Op: "budget", Err: errNoBudget}
	}
	if err := validateSimParams(&p); err != nil {
		return err
	}
	return s.prepare(j, p)
}

// paramsFromQuery fills p from URL query parameters: workflow, catalog
// (library refs), budget, budget_fraction, algorithm, simulate,
// boot_time, bandwidth, delay, transfer_slots.
func paramsFromQuery(p *Params, req *http.Request) (budgetSet bool, err error) {
	q := req.URL.Query()
	p.WorkflowRef = q.Get("workflow")
	p.CatalogRef = q.Get("catalog")
	p.Algorithm = q.Get("algorithm")
	if v := q.Get("budget"); v != "" {
		if p.Budget, err = queryFloat("budget", v); err != nil {
			return false, err
		}
		budgetSet = true
	}
	if v := q.Get("budget_fraction"); v != "" {
		if p.Fraction, err = queryFloat("budget_fraction", v); err != nil {
			return false, err
		}
		p.UseFraction = true
	}
	if v := q.Get("simulate"); v != "" {
		b, perr := strconv.ParseBool(v)
		if perr != nil {
			return false, &RequestError{Op: "simulate", Detail: v, Err: errBadParam}
		}
		p.Simulate = b
	}
	if v := q.Get("boot_time"); v != "" {
		if p.BootTime, err = queryFloat("boot_time", v); err != nil {
			return false, err
		}
	}
	if v := q.Get("bandwidth"); v != "" {
		if p.Bandwidth, err = queryFloat("bandwidth", v); err != nil {
			return false, err
		}
	}
	if v := q.Get("delay"); v != "" {
		if p.Delay, err = queryFloat("delay", v); err != nil {
			return false, err
		}
	}
	if v := q.Get("transfer_slots"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 {
			return false, &RequestError{Op: "transfer_slots", Detail: v, Err: errBadParam}
		}
		p.TransferSlots = n
	}
	return budgetSet, nil
}

func queryFloat(name, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, &RequestError{Op: name, Detail: v, Err: errBadParam}
	}
	return f, nil
}

// validateSimParams rejects replay settings the simulator would refuse,
// so they surface as 400s instead of worker-side 500s.
func validateSimParams(p *Params) error {
	for _, c := range [...]struct {
		name string
		v    float64
	}{{"budget", p.Budget}, {"boot_time", p.BootTime}, {"bandwidth", p.Bandwidth}, {"delay", p.Delay}} {
		if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return &RequestError{Op: c.name, Err: errBadParam}
		}
	}
	return nil
}

// jsonEnvelope decodes the JSON request body, materializing inline
// values into job-owned storage.
func (ds *decodeScratch) jsonEnvelope(j *job, p *Params, budgetSet *bool) error {
	ds.env = requestEnvelope{}
	if err := json.NewDecoder(ds.br).Decode(&ds.env); err != nil {
		return &RequestError{Op: "json", Err: err}
	}
	e := &ds.env
	if e.WorkflowRef != "" {
		p.WorkflowRef, p.Workflow = e.WorkflowRef, nil
	}
	if len(e.Workflow) > 0 {
		if err := json.Unmarshal(e.Workflow, j.ownW); err != nil {
			return &RequestError{Op: "workflow", Err: err}
		}
		p.Workflow, p.WorkflowRef = j.ownW, ""
	}
	if e.CatalogRef != "" {
		p.CatalogRef, p.Catalog = e.CatalogRef, nil
	}
	if len(e.Catalog) > 0 {
		j.ownCat = j.ownCat[:0]
		if err := json.Unmarshal(e.Catalog, &j.ownCat); err != nil {
			return &RequestError{Op: "catalog", Err: err}
		}
		if err := j.ownCat.Validate(); err != nil {
			return &RequestError{Op: "catalog", Err: err}
		}
		p.Catalog, p.CatalogRef = j.ownCat, ""
	}
	if e.Budget != nil {
		p.Budget, *budgetSet = *e.Budget, true
	}
	if e.BudgetFraction != nil {
		p.Fraction, p.UseFraction = *e.BudgetFraction, true
	}
	if e.Algorithm != "" {
		p.Algorithm = e.Algorithm
	}
	if e.Simulate {
		p.Simulate = true
	}
	if e.BootTime != 0 {
		p.BootTime = e.BootTime
	}
	if e.Bandwidth != 0 {
		p.Bandwidth = e.Bandwidth
	}
	if e.Delay != 0 {
		p.Delay = e.Delay
	}
	if e.TransferSlots != 0 {
		p.TransferSlots = e.TransferSlots
	}
	return nil
}

// containerInstance decodes a binary-container request body: the first
// record's workflow chunk (required) and inline catalog chunk (if
// present; otherwise the catalog must be a library ref). Budget and
// algorithm arrive via query parameters.
func (ds *decodeScratch) containerInstance(j *job, p *Params) error {
	if err := ds.cr.Reset(ds.br); err != nil {
		return &RequestError{Op: "container", Err: err}
	}
	rec, cat, _, err := ds.cr.NextRaw()
	if err == io.EOF {
		return &RequestError{Op: "container", Err: ingest.ErrNoWorkflowChunk, Detail: "no records"}
	}
	if err != nil {
		return &RequestError{Op: "container", Err: err}
	}
	i := rec.Find(encoding.ChunkWorkflow)
	if i < 0 {
		return &RequestError{Op: "container", Err: ingest.ErrNoWorkflowChunk}
	}
	if err := ds.dec.WorkflowInto(rec, i, j.ownW); err != nil {
		return &RequestError{Op: "workflow", Err: err}
	}
	p.Workflow, p.WorkflowRef = j.ownW, ""
	if cat != nil {
		// Copy out of the reader's catalog dictionary: the scratch is
		// recycled as soon as decoding ends, the job lives longer.
		j.ownCat = append(j.ownCat[:0], cat...)
		p.Catalog, p.CatalogRef = j.ownCat, ""
	}
	return nil
}

// --- HTTP handlers ---

// handleSchedule admits one HTTP scheduling request.
//
// medcc:onesnapshot — a request must never mix two library versions:
// the snapshot is Loaded once at admission and pinned on the job.
func (s *Server) handleSchedule(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, errPostOnly)
		return
	}
	j := s.jobs.Get().(*job)
	j.reset()
	ds := s.scratch.Get().(*decodeScratch)
	err := s.decodeRequest(j, ds, req)
	ds.br.Reset(nil)
	s.scratch.Put(ds)
	if err == nil {
		err = s.dispatch(j)
	}
	if err != nil {
		writeError(rw, statusOf(err), err)
	} else {
		writeScheduleResponse(rw, j)
	}
	j.release()
	s.jobs.Put(j)
}

func (s *Server) handleHealthz(rw http.ResponseWriter, req *http.Request) {
	snap := s.snap.Load()
	writeJSON(rw, http.StatusOK, &healthResponse{
		Status:          "ok",
		SnapshotVersion: snap.Version,
		Workers:         len(s.workers),
		QueueDepth:      cap(s.queue),
	})
}

func (s *Server) handleLibrary(rw http.ResponseWriter, req *http.Request) {
	snap := s.snap.Load()
	writeJSON(rw, http.StatusOK, &libraryResponse{
		SnapshotVersion: snap.Version,
		Catalogs:        snap.CatalogNames(),
		Workflows:       snap.WorkflowNames(),
		Algorithms:      s.Algorithms(),
	})
}

// handleStats reports the pinned snapshot's cache counters plus queue
// and worker load. It reads the same atomics the hot path writes; the
// marshaling cost lives here, never on the request path.
func (s *Server) handleStats(rw http.ResponseWriter, req *http.Request) {
	snap := s.snap.Load()
	resp := statsResponse{
		SnapshotVersion: snap.Version,
		Workers:         len(s.workers),
		BusyWorkers:     int(s.busy.Load()),
		QueueLen:        len(s.queue),
		QueueDepth:      cap(s.queue),
	}
	if resp.Workers > 0 {
		resp.BusyFraction = float64(resp.BusyWorkers) / float64(resp.Workers)
	}
	if c := snap.cache; c != nil {
		resp.CacheEnabled = true
		resp.CacheHits = c.hits.Load()
		resp.CacheMisses = c.misses.Load()
		resp.CacheEvictions = c.evictions.Load()
		resp.CacheBuilds = c.builds.Load()
		resp.Staircases = c.staircases()
		resp.CacheBytes = c.bytes.Load()
	}
	writeJSON(rw, http.StatusOK, &resp)
}

func (s *Server) handleReload(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, errPostOnly)
		return
	}
	snap, err := s.Reload()
	if err != nil {
		writeError(rw, http.StatusInternalServerError, err)
		return
	}
	writeJSON(rw, http.StatusOK, &healthResponse{
		Status:          "reloaded",
		SnapshotVersion: snap.Version,
		Workers:         len(s.workers),
		QueueDepth:      cap(s.queue),
	})
}

// statusOf maps a serving error onto its HTTP status.
func statusOf(err error) int {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		return http.StatusBadRequest
	case errors.Is(err, sched.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// --- response marshaling (the deliberate cold path) ---

type scheduleResponse struct {
	Algorithm       string     `json:"algorithm"`
	SnapshotVersion uint64     `json:"snapshot_version"`
	Budget          float64    `json:"budget"`
	Schedule        []int      `json:"schedule"`
	Makespan        float64    `json:"makespan"`
	Cost            float64    `json:"cost"`
	Truncated       bool       `json:"truncated,omitempty"`
	Trace           *traceJSON `json:"trace,omitempty"`
}

type traceJSON struct {
	Makespan float64           `json:"makespan"`
	Cost     float64           `json:"cost"`
	Events   int64             `json:"events"`
	Modules  []moduleTraceJSON `json:"modules"`
	VMs      []vmTraceJSON     `json:"vms"`
}

type moduleTraceJSON struct {
	Ready  float64 `json:"ready"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
	VM     int     `json:"vm"`
}

type vmTraceJSON struct {
	Type      int     `json:"type"`
	BootAt    float64 `json:"boot_at"`
	ReadyAt   float64 `json:"ready_at"`
	StoppedAt float64 `json:"stopped_at"`
	Cost      float64 `json:"cost"`
	Modules   []int   `json:"modules"`
}

type healthResponse struct {
	Status          string `json:"status"`
	SnapshotVersion uint64 `json:"snapshot_version"`
	Workers         int    `json:"workers"`
	QueueDepth      int    `json:"queue_depth"`
}

type libraryResponse struct {
	SnapshotVersion uint64   `json:"snapshot_version"`
	Catalogs        []string `json:"catalogs"`
	Workflows       []string `json:"workflows"`
	Algorithms      []string `json:"algorithms"`
}

type statsResponse struct {
	SnapshotVersion uint64  `json:"snapshot_version"`
	CacheEnabled    bool    `json:"cache_enabled"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheEvictions  int64   `json:"cache_evictions"`
	CacheBuilds     int64   `json:"cache_builds"`
	Staircases      int     `json:"staircases"`
	CacheBytes      int64   `json:"cache_bytes"`
	QueueLen        int     `json:"queue_len"`
	QueueDepth      int     `json:"queue_depth"`
	Workers         int     `json:"workers"`
	BusyWorkers     int     `json:"busy_workers"`
	BusyFraction    float64 `json:"busy_fraction"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeScheduleResponse(rw http.ResponseWriter, j *job) {
	resp := scheduleResponse{
		Algorithm:       j.alg,
		SnapshotVersion: j.snap.Version,
		Budget:          j.budget,
		Schedule:        j.sched,
		Makespan:        j.makespan,
		Cost:            j.cost,
		Truncated:       j.truncated,
	}
	if j.simulate {
		resp.Trace = traceOf(&j.trace)
	}
	writeJSON(rw, http.StatusOK, &resp)
}

func traceOf(r *sim.Result) *traceJSON {
	t := &traceJSON{
		Makespan: r.Makespan,
		Cost:     r.Cost,
		Events:   r.Events,
		Modules:  make([]moduleTraceJSON, len(r.Modules)),
		VMs:      make([]vmTraceJSON, len(r.VMs)),
	}
	for i, m := range r.Modules {
		t.Modules[i] = moduleTraceJSON{Ready: m.Ready, Start: m.Start, Finish: m.Finish, VM: m.VM}
	}
	for i, v := range r.VMs {
		t.VMs[i] = vmTraceJSON{Type: v.Type, BootAt: v.BootAt, ReadyAt: v.ReadyAt,
			StoppedAt: v.StoppedAt, Cost: v.Cost, Modules: v.Modules}
	}
	return t
}

func writeError(rw http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		rw.Header().Set("Retry-After", "1")
	}
	writeJSON(rw, status, &errorResponse{Error: err.Error()})
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}
