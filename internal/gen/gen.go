// Package gen generates synthetic workflow instances and VM catalogs for
// simulation studies, including the exact random-DAG construction of the
// paper's §VI-A and a set of named scientific-workflow topologies.
package gen

import (
	"fmt"
	"math/rand"

	"medcc/internal/cloud"
	"medcc/internal/workflow"
)

// Params controls random workflow generation per §VI-A: m modules are laid
// out sequentially w0..w(m-1); each module wi picks k successors uniformly
// among the higher-numbered modules; predecessor-less modules are connected
// to the entry; workloads are drawn uniformly from [WorkloadMin,
// WorkloadMax]; entry/exit modules are fixed one-hour, zero-cost.
type Params struct {
	// Modules is m, the number of computing modules (excluding the
	// fixed entry/exit modules added around them).
	Modules int
	// Edges is |Ew|, the target number of dependency edges among the
	// computing modules. The generator adds random forward edges until
	// this count is reached (capped at the maximum possible).
	Edges int
	// WorkloadMin and WorkloadMax bound the uniform workload draw.
	WorkloadMin, WorkloadMax float64
	// DataSizeMax bounds the uniform data-size draw on edges (cosmetic
	// under zero intra-cloud transfer; exercised by the simulator).
	DataSizeMax float64
	// AddEntryExit wraps the modules with fixed one-hour entry and exit
	// modules, as in the paper's example workflow.
	AddEntryExit bool
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Modules < 1 {
		return fmt.Errorf("gen: need at least 1 module, have %d", p.Modules)
	}
	maxEdges := p.Modules * (p.Modules - 1) / 2
	if p.Edges < 0 || p.Edges > maxEdges {
		return fmt.Errorf("gen: edge count %d outside [0,%d]", p.Edges, maxEdges)
	}
	if p.WorkloadMin < 0 || p.WorkloadMax < p.WorkloadMin {
		return fmt.Errorf("gen: bad workload range [%v,%v]", p.WorkloadMin, p.WorkloadMax)
	}
	if p.DataSizeMax < 0 {
		return fmt.Errorf("gen: negative data size bound %v", p.DataSizeMax)
	}
	return nil
}

// Random generates one workflow instance. The construction follows §VI-A:
// modules are laid out sequentially as a pipeline skeleton, then each
// module wi chooses k in [1, m-1-i] and connects to k random
// higher-numbered modules; finally predecessor-less modules attach to the
// entry module so the requested |Ew| is met.
//
// This is the one-shot form of Builder.Random: it builds into a throwaway
// Builder, so the caller owns the returned workflow.
func Random(rng *rand.Rand, p Params) (*workflow.Workflow, error) {
	var b Builder
	return b.Random(rng, p)
}

// Catalog draws an n-type VM catalog with the paper's linear base-unit
// pricing: type j has j+1 base units of power and price. basePower and
// basePrice set the unit scale.
func Catalog(n int, basePower, basePrice float64) cloud.Catalog {
	return cloud.LinearCatalog(n, basePower, basePrice)
}

// SimulationGamma is the sublinear power exponent used for the experiment
// catalogs, fit to the speedups the paper measured on its WRF testbed
// (Table VI: nominal 4x / 8x instances deliver ~2-3x / ~2-5x speedups).
const SimulationGamma = 0.75

// ProblemSize is the paper's 3-tuple (m, |Ew|, n): module count, link
// count, and number of available VM types.
type ProblemSize struct {
	M, E, N int
}

// String renders "(m, |Ew|, n)" as in the paper's tables.
func (p ProblemSize) String() string { return fmt.Sprintf("(%d, %d, %d)", p.M, p.E, p.N) }

// PaperProblemSizes returns the 20 problem sizes of Table IV, indexed 1-20.
func PaperProblemSizes() []ProblemSize {
	return []ProblemSize{
		{5, 6, 3}, {10, 17, 4}, {15, 65, 5}, {20, 80, 5}, {25, 201, 5},
		{30, 269, 6}, {35, 401, 6}, {40, 434, 6}, {45, 473, 6}, {50, 503, 7},
		{55, 838, 7}, {60, 842, 7}, {65, 993, 7}, {70, 1142, 7}, {75, 1179, 8},
		{80, 1352, 8}, {85, 1424, 8}, {90, 1825, 8}, {95, 1891, 9}, {100, 2344, 9},
	}
}

// Instance generates a workflow plus catalog for one problem size with the
// simulation defaults used across the experiment harness: workloads in
// [100, 1000] over a linearly-priced catalog with diminishing effective
// power (base power 3, base price 1, gamma = SimulationGamma). The
// sublinear power keeps the faster types more expensive per unit of work,
// matching the trade-off the paper measured on its testbed; see
// cloud.DiminishingCatalog and DESIGN.md §2.
func Instance(rng *rand.Rand, size ProblemSize) (*workflow.Workflow, cloud.Catalog, error) {
	var b Builder
	return b.Instance(rng, size)
}
