package gen

import (
	"fmt"
	"math/rand"

	"medcc/internal/workflow"
)

// Pipeline builds a linear chain of n modules with uniform workloads drawn
// from [lo, hi].
func Pipeline(rng *rand.Rand, n int, lo, hi float64) *workflow.Workflow {
	w := workflow.New()
	for i := 0; i < n; i++ {
		w.AddModule(workflow.Module{Name: fmt.Sprintf("p%d", i), Workload: uniform(rng, lo, hi)})
		if i > 0 {
			mustDep(w, i-1, i, 0)
		}
	}
	return w
}

// ForkJoin builds a fixed entry module fanning out to width parallel
// modules that join into a fixed exit module — the bag-of-tasks shape that
// maximizes the gap between critical-path-aware and local scheduling.
func ForkJoin(rng *rand.Rand, width int, lo, hi float64) *workflow.Workflow {
	w := workflow.New()
	entry := w.AddModule(workflow.Module{Name: "fork", Fixed: true, FixedTime: 1})
	var mids []int
	for i := 0; i < width; i++ {
		mids = append(mids, w.AddModule(workflow.Module{Name: fmt.Sprintf("b%d", i), Workload: uniform(rng, lo, hi)}))
	}
	exit := w.AddModule(workflow.Module{Name: "join", Fixed: true, FixedTime: 1})
	for _, m := range mids {
		mustDep(w, entry, m, 0)
		mustDep(w, m, exit, 0)
	}
	return w
}

// Layered builds depth layers of width modules each; every module depends
// on every module of the previous layer (a dense level-synchronous DAG,
// the shape of iterative stencil workflows).
func Layered(rng *rand.Rand, depth, width int, lo, hi float64) *workflow.Workflow {
	w := workflow.New()
	var prev []int
	for d := 0; d < depth; d++ {
		var cur []int
		for k := 0; k < width; k++ {
			cur = append(cur, w.AddModule(workflow.Module{
				Name:     fmt.Sprintf("l%d_%d", d, k),
				Workload: uniform(rng, lo, hi),
			}))
		}
		for _, p := range prev {
			for _, c := range cur {
				mustDep(w, p, c, 0)
			}
		}
		prev = cur
	}
	return w
}

// MontageLike builds the characteristic shape of the Montage astronomy
// workflow: a wide projection fan, a denser overlap-fitting layer, a
// concentration stage, and a short tail pipeline. Workloads follow the
// stage profile (fan stages light, tail stages heavy).
func MontageLike(rng *rand.Rand, width int) *workflow.Workflow {
	w := workflow.New()
	entry := w.AddModule(workflow.Module{Name: "mImgTbl", Fixed: true, FixedTime: 1})
	// Stage 1: mProject — one light module per input image.
	var proj []int
	for i := 0; i < width; i++ {
		proj = append(proj, w.AddModule(workflow.Module{
			Name:     fmt.Sprintf("mProject%d", i),
			Workload: uniform(rng, 10, 30),
		}))
		mustDep(w, entry, proj[i], 1)
	}
	// Stage 2: mDiffFit between neighboring projections.
	var diff []int
	for i := 0; i+1 < width; i++ {
		d := w.AddModule(workflow.Module{
			Name:     fmt.Sprintf("mDiffFit%d", i),
			Workload: uniform(rng, 5, 15),
		})
		diff = append(diff, d)
		mustDep(w, proj[i], d, 2)
		mustDep(w, proj[i+1], d, 2)
	}
	// Stage 3: mConcatFit/mBgModel gathers all fits.
	bg := w.AddModule(workflow.Module{Name: "mBgModel", Workload: uniform(rng, 40, 80)})
	for _, d := range diff {
		mustDep(w, d, bg, 1)
	}
	// Stage 4: mBackground per image, gated by the model.
	var back []int
	for i := 0; i < width; i++ {
		b := w.AddModule(workflow.Module{
			Name:     fmt.Sprintf("mBackground%d", i),
			Workload: uniform(rng, 10, 25),
		})
		back = append(back, b)
		mustDep(w, bg, b, 1)
		mustDep(w, proj[i], b, 2)
	}
	// Tail: mImgTbl2 -> mAdd -> mShrink -> mJPEG.
	add := w.AddModule(workflow.Module{Name: "mAdd", Workload: uniform(rng, 60, 120)})
	for _, b := range back {
		mustDep(w, b, add, 3)
	}
	shrink := w.AddModule(workflow.Module{Name: "mShrink", Workload: uniform(rng, 20, 40)})
	mustDep(w, add, shrink, 2)
	jpeg := w.AddModule(workflow.Module{Name: "mJPEG", Workload: uniform(rng, 5, 10)})
	mustDep(w, shrink, jpeg, 1)
	return w
}

// CyberShakeLike builds the characteristic shape of the CyberShake
// seismic-hazard workflow: a pair of heavy master stages (strain Green
// tensor generation) feeding a very wide fan of light seismogram/peak
// modules, gathered by a final hazard-curve stage. It stresses schedulers
// with extreme width fed from few heavy roots.
func CyberShakeLike(rng *rand.Rand, width int) *workflow.Workflow {
	w := workflow.New()
	entry := w.AddModule(workflow.Module{Name: "preCVM", Fixed: true, FixedTime: 1})
	sgtX := w.AddModule(workflow.Module{Name: "sgtGenX", Workload: uniform(rng, 300, 500)})
	sgtY := w.AddModule(workflow.Module{Name: "sgtGenY", Workload: uniform(rng, 300, 500)})
	mustDep(w, entry, sgtX, 5)
	mustDep(w, entry, sgtY, 5)
	gather := w.AddModule(workflow.Module{Name: "hazardCurve", Workload: uniform(rng, 40, 80)})
	for i := 0; i < width; i++ {
		seis := w.AddModule(workflow.Module{
			Name:     fmt.Sprintf("seismogram%d", i),
			Workload: uniform(rng, 5, 20),
		})
		mustDep(w, sgtX, seis, 8)
		mustDep(w, sgtY, seis, 8)
		peak := w.AddModule(workflow.Module{
			Name:     fmt.Sprintf("peakVal%d", i),
			Workload: uniform(rng, 1, 5),
		})
		mustDep(w, seis, peak, 1)
		mustDep(w, peak, gather, 0.5)
	}
	return w
}

// EpigenomicsLike builds the characteristic shape of the Epigenomics
// sequence-processing workflow: several independent lanes, each a deep
// pipeline (filter -> sol2sanger -> fastq2bfq -> map), merged lane-wise
// and then globally — deep chains next to moderate width.
func EpigenomicsLike(rng *rand.Rand, lanes int) *workflow.Workflow {
	w := workflow.New()
	entry := w.AddModule(workflow.Module{Name: "fastQSplit", Fixed: true, FixedTime: 1})
	global := w.AddModule(workflow.Module{Name: "mapMerge", Workload: uniform(rng, 50, 100)})
	stages := []struct {
		name string
		lo   float64
		hi   float64
	}{
		{"filterContams", 10, 30}, {"sol2sanger", 5, 15},
		{"fastq2bfq", 5, 15}, {"map", 150, 400},
	}
	for l := 0; l < lanes; l++ {
		prev := entry
		for _, st := range stages {
			id := w.AddModule(workflow.Module{
				Name:     fmt.Sprintf("%s%d", st.name, l),
				Workload: uniform(rng, st.lo, st.hi),
			})
			mustDep(w, prev, id, 2)
			prev = id
		}
		mustDep(w, prev, global, 3)
	}
	tail := w.AddModule(workflow.Module{Name: "maqIndex", Workload: uniform(rng, 20, 40)})
	mustDep(w, global, tail, 2)
	return w
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}

func mustDep(w *workflow.Workflow, u, v int, ds float64) {
	if err := w.AddDependency(u, v, ds); err != nil {
		panic(err) // static topology builders: failure is a bug
	}
}
