package gen

import (
	"fmt"
	"math/rand"

	"medcc/internal/cloud"
	"medcc/internal/workflow"
)

// Builder is a pooled instance generator: one Builder owns a workflow and
// the generation scratch (permutation buffer, module-id buffer, interned
// module names, per-size catalogs) and rebuilds the same storage on every
// call, so a campaign worker generating thousands of instances reaches a
// steady state with near-zero allocations per instance.
//
// The draw sequence is bit-identical to the package-level Random and
// Instance functions: for any rng state, Builder.Random consumes exactly
// the same random numbers in the same order (its permutation scratch
// replays rand.Perm's algorithm), so pooled and one-shot generation yield
// the same workflows. The returned *Workflow is owned by the Builder and
// is valid only until the next Random/Instance call; callers needing a
// persistent copy must Clone it. Not safe for concurrent use — give each
// worker its own Builder.
//
// medcc:scratch
type Builder struct {
	// medcc:lint-ignore epochguard — the Builder is the producer: it rebuilds w in place and bumps its Version for consumers; it never reads stale derived state.
	w     *workflow.Workflow
	perm  []int
	ids   []int
	names []string
	cats  map[int]cloud.Catalog
}

// name returns the interned display name of computing module i ("w1" for
// i=0), formatting each name only the first time it is needed.
func (b *Builder) name(i int) string {
	for len(b.names) <= i {
		b.names = append(b.names, fmt.Sprintf("w%d", len(b.names)+1))
	}
	return b.names[i]
}

// catalog returns the simulation catalog for n VM types, built once per n
// and shared across instances (catalogs are read-only by convention).
func (b *Builder) catalog(n int) cloud.Catalog {
	if b.cats == nil {
		b.cats = make(map[int]cloud.Catalog)
	}
	c, ok := b.cats[n]
	if !ok {
		c = cloud.DiminishingCatalog(n, 3, 1, SimulationGamma)
		b.cats[n] = c
	}
	return c
}

// permInto fills dst with rng.Perm(n) drawn by the identical algorithm
// (the same Intn call per index), reusing dst's storage so the pooled
// generator stays on the one-shot generator's random stream without
// allocating a fresh permutation per module.
func permInto(rng *rand.Rand, n int, dst []int) []int {
	if cap(dst) < n {
		dst = make([]int, n)
	} else {
		dst = dst[:n]
	}
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst
}

// Random is the pooled form of the package-level Random: same
// construction, same draw sequence, but rebuilding the Builder's workflow
// in place instead of allocating a new one.
//
// medcc:deterministic — all randomness comes from the caller's seeded rng
func (b *Builder) Random(rng *rand.Rand, p Params) (*workflow.Workflow, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if b.w == nil {
		b.w = workflow.New()
	} else {
		b.w.Reset()
	}
	w := b.w
	entry := -1
	if p.AddEntryExit {
		entry = w.AddModule(workflow.Module{Name: "entry", Fixed: true, FixedTime: 1})
	}
	if cap(b.ids) < p.Modules {
		b.ids = make([]int, p.Modules)
	}
	ids := b.ids[:p.Modules]
	for i := range ids {
		wl := p.WorkloadMin
		if p.WorkloadMax > p.WorkloadMin {
			wl += rng.Float64() * (p.WorkloadMax - p.WorkloadMin)
		}
		ids[i] = w.AddModule(workflow.Module{Name: b.name(i), Workload: wl})
	}

	ds := func() float64 {
		if p.DataSizeMax <= 0 {
			return 0
		}
		return rng.Float64() * p.DataSizeMax
	}

	// Random forward fan-out, per the paper: "for each module wi, we
	// randomly choose a number k within the range [1, m-1-i] and then
	// choose k modules with their module IDs in the range [i+1, m-1] as
	// its successors", stopping when the edge budget is spent.
	edges := 0
	for i := 0; i < p.Modules-1 && edges < p.Edges; i++ {
		avail := p.Modules - 1 - i
		k := 1 + rng.Intn(avail)
		if k > p.Edges-edges {
			k = p.Edges - edges
		}
		b.perm = permInto(rng, avail, b.perm)
		for _, off := range b.perm[:k] {
			target := i + 1 + off
			if err := w.AddDependency(ids[i], ids[target], ds()); err != nil {
				return nil, err
			}
			edges++
		}
	}
	// Top up with uniformly random forward edges if fan-out stopped
	// short of the requested count.
	for guard := 0; edges < p.Edges && guard < 100*p.Edges+1000; guard++ {
		u := rng.Intn(p.Modules - 1)
		v := u + 1 + rng.Intn(p.Modules-1-u)
		if w.Graph().HasEdge(ids[u], ids[v]) {
			continue
		}
		if err := w.AddDependency(ids[u], ids[v], ds()); err != nil {
			return nil, err
		}
		edges++
	}

	if p.AddEntryExit {
		exit := w.AddModule(workflow.Module{Name: "exit", Fixed: true, FixedTime: 1})
		for _, id := range ids {
			if w.Graph().InDegree(id) == 0 {
				if err := w.AddDependency(entry, id, 0); err != nil {
					return nil, err
				}
			}
			if w.Graph().OutDegree(id) == 0 {
				if err := w.AddDependency(id, exit, 0); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// Instance is the pooled form of the package-level Instance: the same
// workflow parameters and catalog, with the workflow rebuilt in place and
// the catalog cached per type count.
//
// medcc:deterministic — all randomness comes from the caller's seeded rng
func (b *Builder) Instance(rng *rand.Rand, size ProblemSize) (*workflow.Workflow, cloud.Catalog, error) {
	w, err := b.Random(rng, Params{
		Modules:      size.M,
		Edges:        size.E,
		WorkloadMin:  100,
		WorkloadMax:  1000,
		DataSizeMax:  10,
		AddEntryExit: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return w, b.catalog(size.N), nil
}
