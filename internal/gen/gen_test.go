package gen

import (
	"math/rand"
	"testing"

	"medcc/internal/workflow"
)

func TestParamsValidate(t *testing.T) {
	good := Params{Modules: 5, Edges: 6, WorkloadMin: 1, WorkloadMax: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Modules: 0, Edges: 0},
		{Modules: 5, Edges: -1},
		{Modules: 5, Edges: 11}, // max is 10
		{Modules: 5, Edges: 3, WorkloadMin: -1},
		{Modules: 5, Edges: 3, WorkloadMin: 5, WorkloadMax: 2},
		{Modules: 5, Edges: 3, DataSizeMax: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestRandomMeetsRequestedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []ProblemSize{{5, 6, 3}, {10, 17, 4}, {20, 80, 5}, {50, 503, 7}} {
		w, err := Random(rng, Params{
			Modules: size.M, Edges: size.E,
			WorkloadMin: 10, WorkloadMax: 100,
			AddEntryExit: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", size, err)
		}
		if got := len(w.Schedulable()); got != size.M {
			t.Fatalf("%v: %d schedulable modules", size, got)
		}
		// Edge count among computing modules must equal the request;
		// entry/exit wiring adds more on top.
		inner := 0
		g := w.Graph()
		for u := 0; u < g.NumNodes(); u++ {
			if w.Module(u).Fixed {
				continue
			}
			for _, v := range g.Succ(u) {
				if !w.Module(v).Fixed {
					inner++
				}
			}
		}
		if inner != size.E {
			t.Fatalf("%v: %d inner edges, want %d", size, inner, size.E)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%v: invalid workflow: %v", size, err)
		}
	}
}

func TestRandomWorkloadsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w, err := Random(rng, Params{Modules: 30, Edges: 100, WorkloadMin: 10, WorkloadMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range w.Schedulable() {
		wl := w.Module(i).Workload
		if wl < 10 || wl > 100 {
			t.Fatalf("workload %v outside [10,100]", wl)
		}
	}
}

func TestRandomEntryExitWiring(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w, err := Random(rng, Params{Modules: 12, Edges: 20, WorkloadMin: 1, WorkloadMax: 2, AddEntryExit: true})
	if err != nil {
		t.Fatal(err)
	}
	g := w.Graph()
	sources := g.Sources()
	sinks := g.Sinks()
	if len(sources) != 1 || !w.Module(sources[0]).Fixed {
		t.Fatalf("sources = %v", sources)
	}
	if len(sinks) != 1 || !w.Module(sinks[0]).Fixed {
		t.Fatalf("sinks = %v", sinks)
	}
}

func TestRandomWithoutEntryExit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w, err := Random(rng, Params{Modules: 8, Edges: 10, WorkloadMin: 1, WorkloadMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumModules() != 8 {
		t.Fatalf("modules = %d", w.NumModules())
	}
	for i := 0; i < 8; i++ {
		if w.Module(i).Fixed {
			t.Fatal("unexpected fixed module")
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	p := Params{Modules: 15, Edges: 40, WorkloadMin: 10, WorkloadMax: 100, DataSizeMax: 5, AddEntryExit: true}
	a, err := Random(rand.New(rand.NewSource(7)), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(rand.New(rand.NewSource(7)), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumModules() != b.NumModules() || a.NumDependencies() != b.NumDependencies() {
		t.Fatal("same seed produced different shapes")
	}
	for i := 0; i < a.NumModules(); i++ {
		if a.Module(i) != b.Module(i) {
			t.Fatalf("module %d differs across same-seed runs", i)
		}
	}
}

// TestBuilderMatchesOneShotBitIdentical drives one pooled Builder across a
// stream of heterogeneous sizes and checks every rebuilt workflow against a
// one-shot Instance drawn from an identically-seeded rng: same module
// records, same edges, same data sizes, same catalog. This pins the
// Builder to the one-shot random stream — a single extra or reordered draw
// would desynchronize the rngs and fail on the first field compared.
func TestBuilderMatchesOneShotBitIdentical(t *testing.T) {
	var b Builder
	pooled := rand.New(rand.NewSource(99))
	oneShot := rand.New(rand.NewSource(99))
	sizes := []ProblemSize{{5, 6, 3}, {25, 201, 5}, {10, 17, 4}, {50, 503, 7}, {5, 6, 3}, {100, 2344, 9}}
	for trial, size := range sizes {
		pw, pcat, err := b.Instance(pooled, size)
		if err != nil {
			t.Fatalf("trial %d pooled: %v", trial, err)
		}
		ow, ocat, err := Instance(oneShot, size)
		if err != nil {
			t.Fatalf("trial %d one-shot: %v", trial, err)
		}
		if pw.NumModules() != ow.NumModules() || pw.NumDependencies() != ow.NumDependencies() {
			t.Fatalf("trial %d: shape (%d,%d) != (%d,%d)", trial,
				pw.NumModules(), pw.NumDependencies(), ow.NumModules(), ow.NumDependencies())
		}
		for i := 0; i < ow.NumModules(); i++ {
			if pw.Module(i) != ow.Module(i) {
				t.Fatalf("trial %d module %d: pooled %+v != one-shot %+v",
					trial, i, pw.Module(i), ow.Module(i))
			}
		}
		og, pg := ow.Graph(), pw.Graph()
		for u := 0; u < og.NumNodes(); u++ {
			os, ps := og.Succ(u), pg.Succ(u)
			if len(os) != len(ps) {
				t.Fatalf("trial %d node %d: succ count %d != %d", trial, u, len(ps), len(os))
			}
			for k, v := range os {
				if ps[k] != v {
					t.Fatalf("trial %d node %d succ %d: pooled %d != one-shot %d", trial, u, k, ps[k], v)
				}
				if pw.DataSize(u, v) != ow.DataSize(u, v) {
					t.Fatalf("trial %d edge (%d,%d): data size %v != %v",
						trial, u, v, pw.DataSize(u, v), ow.DataSize(u, v))
				}
			}
		}
		if len(pcat) != len(ocat) {
			t.Fatalf("trial %d: catalog sizes differ", trial)
		}
		for j := range ocat {
			if pcat[j] != ocat[j] {
				t.Fatalf("trial %d catalog type %d: %+v != %+v", trial, j, pcat[j], ocat[j])
			}
		}
	}
}

func TestPaperProblemSizes(t *testing.T) {
	sizes := PaperProblemSizes()
	if len(sizes) != 20 {
		t.Fatalf("%d sizes", len(sizes))
	}
	if sizes[0] != (ProblemSize{5, 6, 3}) || sizes[19] != (ProblemSize{100, 2344, 9}) {
		t.Fatalf("endpoints wrong: %v %v", sizes[0], sizes[19])
	}
	if sizes[11].String() != "(60, 842, 7)" {
		t.Fatalf("String = %q", sizes[11].String())
	}
	// All generable.
	rng := rand.New(rand.NewSource(5))
	for _, s := range sizes {
		if _, _, err := Instance(rng, s); err != nil {
			t.Fatalf("size %v: %v", s, err)
		}
	}
}

func TestCatalogLinearPricing(t *testing.T) {
	c := Catalog(5, 3, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c[0].Power != 3 || c[4].Power != 15 || c[4].Rate != 5 {
		t.Fatalf("catalog = %+v", c)
	}
}

func checkValid(t *testing.T, w *workflow.Workflow) {
	t.Helper()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineTopology(t *testing.T) {
	w := Pipeline(rand.New(rand.NewSource(1)), 6, 10, 20)
	checkValid(t, w)
	if w.NumModules() != 6 || w.NumDependencies() != 5 {
		t.Fatal("pipeline shape wrong")
	}
}

func TestForkJoinTopology(t *testing.T) {
	w := ForkJoin(rand.New(rand.NewSource(1)), 8, 10, 20)
	checkValid(t, w)
	if len(w.Schedulable()) != 8 {
		t.Fatal("branch count wrong")
	}
	g := w.Graph()
	if g.OutDegree(0) != 8 || g.InDegree(g.NumNodes()-1) != 8 {
		t.Fatal("fork/join degrees wrong")
	}
}

func TestLayeredTopology(t *testing.T) {
	w := Layered(rand.New(rand.NewSource(1)), 3, 4, 10, 20)
	checkValid(t, w)
	if w.NumModules() != 12 {
		t.Fatalf("modules = %d", w.NumModules())
	}
	if w.NumDependencies() != 2*4*4 {
		t.Fatalf("edges = %d, want 32", w.NumDependencies())
	}
}

func TestCyberShakeLikeTopology(t *testing.T) {
	w := CyberShakeLike(rand.New(rand.NewSource(1)), 10)
	checkValid(t, w)
	// entry + 2 sgt + width*(seis+peak) + gather.
	if w.NumModules() != 1+2+20+1 {
		t.Fatalf("modules = %d", w.NumModules())
	}
	g := w.Graph()
	// Both SGT stages fan out to every seismogram: out-degree = width.
	if g.OutDegree(1) != 10 || g.OutDegree(2) != 10 {
		t.Fatalf("sgt fan-out %d/%d", g.OutDegree(1), g.OutDegree(2))
	}
	// Gather collects every peak module.
	if g.InDegree(3) != 10 {
		t.Fatalf("gather in-degree %d", g.InDegree(3))
	}
}

func TestEpigenomicsLikeTopology(t *testing.T) {
	w := EpigenomicsLike(rand.New(rand.NewSource(1)), 4)
	checkValid(t, w)
	// entry + global + 4 lanes x 4 stages + tail.
	if w.NumModules() != 2+16+1 {
		t.Fatalf("modules = %d", w.NumModules())
	}
	if len(w.Graph().Sinks()) != 1 {
		t.Fatal("must end in the maqIndex tail")
	}
	// Each lane is a depth-4 chain: the longest path from entry to
	// global passes 4 compute stages.
	if w.Graph().InDegree(1) != 4 {
		t.Fatalf("mapMerge in-degree %d, want 4 lanes", w.Graph().InDegree(1))
	}
}

func TestMontageLikeTopology(t *testing.T) {
	w := MontageLike(rand.New(rand.NewSource(1)), 6)
	checkValid(t, w)
	// width proj + (width-1) diff + bgModel + width back + add/shrink/jpeg + entry
	want := 1 + 6 + 5 + 1 + 6 + 3
	if w.NumModules() != want {
		t.Fatalf("modules = %d, want %d", w.NumModules(), want)
	}
	if len(w.Graph().Sinks()) != 1 {
		t.Fatal("montage should end in a single sink")
	}
}
