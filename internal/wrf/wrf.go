// Package wrf reconstructs the paper's real-life workflow experiment
// (§VI-C): the Weather Research and Forecasting model workflow deployed on
// a local Nimbus cloud testbed. It provides the full three-pipeline
// program graph of Fig. 13, the grouped six-module workflow of Fig. 14,
// the three VM types of Table V, and the measured execution-time matrix of
// Table VI, from which the Table VII / Fig. 15 comparison is regenerated.
//
// The grouped DAG structure is recovered from the published MED values:
// every row of Table VII is explained exactly (up to testbed measurement
// noise of a few seconds) by the structure
//
//	w0 -> {w1, w2, w3} -> w4 -> {w5, w6} -> w7
//
// e.g. the CG row at B=155.0 gives MED = T(w1)+T(w4)+T(w6) and the GAIN3
// row at B=155.0 gives MED = T(w1)+T(w4)+T(w5) under the published
// per-type times. Billing is per-second round-up: it reproduces the
// published budget range [Cmin, Cmax] = [125.9, 243.6] to the digit.
package wrf

import (
	"medcc/internal/cloud"
	"medcc/internal/workflow"
)

// Types returns the three VM types of Table V. Power is expressed in
// nominal CPU capacity (GHz x cores); module runtimes come from the
// measured matrix of Table VI rather than the workload/power model, so
// Power here is only descriptive. Rates are the paper's CV_j per second.
func Types() cloud.Catalog {
	return cloud.Catalog{
		{Name: "VT1", Power: 0.73, Rate: 0.1, CPUGHz: 0.73, RAMKB: 1024, DiskGB: 6.8},
		{Name: "VT2", Power: 2.93, Rate: 0.4, CPUGHz: 2.93, RAMKB: 1024, DiskGB: 6.8},
		{Name: "VT3", Power: 5.86, Rate: 0.8, CPUGHz: 5.86, RAMKB: 1024, DiskGB: 6.8},
	}
}

// Billing is the billing policy of the testbed experiment: per-second
// round-up of the occupancy (the instance-hour model of Eq. 7 with the
// second as the charged unit). It reproduces Cmin = 125.9 and
// Cmax = 243.6 exactly from the Table VI times.
func Billing() cloud.BillingPolicy { return cloud.RoundUp{Unit: 1} }

// TE returns the measured execution time matrix of Table VI, in seconds:
// TE[i][j] is the runtime of grouped module w(i+1) on VM type VT(j+1).
func TE() [][]float64 {
	return [][]float64{
		{43.8, 19.2, 12.0},    // w1
		{22.7, 9.6, 10.1},     // w2
		{13.8, 7.0, 7.2},      // w3
		{47.0, 30.0, 19.4},    // w4
		{752.6, 241.6, 143.2}, // w5
		{377.8, 123.1, 119.7}, // w6
	}
}

// Budgets returns the six budget values of Table VII.
func Budgets() []float64 { return []float64{147.5, 150.0, 155.0, 174.9, 180.1, 186.2} }

// Grouped builds the grouped WRF workflow of Fig. 14: fixed entry and exit
// modules around six aggregate computing modules with the recovered
// dependency structure. Module workloads are placeholders (the measured
// matrix drives the scheduling; see Matrices).
func Grouped() *workflow.Workflow {
	w := workflow.New()
	w0 := w.AddModule(workflow.Module{Name: "w0", Fixed: true, FixedTime: 0})
	var ids [6]int
	names := []string{"w1", "w2", "w3", "w4", "w5", "w6"}
	for i, n := range names {
		ids[i] = w.AddModule(workflow.Module{Name: n, Workload: 1})
	}
	w7 := w.AddModule(workflow.Module{Name: "w7", Fixed: true, FixedTime: 0})
	mustDep(w, w0, ids[0], 1)
	mustDep(w, w0, ids[1], 1)
	mustDep(w, w0, ids[2], 1)
	mustDep(w, ids[0], ids[3], 1)
	mustDep(w, ids[1], ids[3], 1)
	mustDep(w, ids[2], ids[3], 1)
	mustDep(w, ids[3], ids[4], 1)
	mustDep(w, ids[3], ids[5], 1)
	mustDep(w, ids[4], w7, 1)
	mustDep(w, ids[5], w7, 1)
	return w
}

// Matrices builds the scheduling matrices for the grouped workflow from
// the measured Table VI runtimes (not the analytic workload/power model),
// with costs billed per started second as on the testbed.
func Matrices(w *workflow.Workflow) *workflow.Matrices {
	cat := Types()
	te := TE()
	billing := Billing()
	m := &workflow.Matrices{
		TE:      make([][]float64, w.NumModules()),
		CE:      make([][]float64, w.NumModules()),
		Catalog: cat,
		Billing: billing,
	}
	k := 0
	for i := 0; i < w.NumModules(); i++ {
		m.TE[i] = make([]float64, len(cat))
		m.CE[i] = make([]float64, len(cat))
		if w.Module(i).Fixed {
			for j := range cat {
				m.TE[i][j] = w.Module(i).FixedTime
			}
			continue
		}
		for j := range cat {
			m.TE[i][j] = te[k][j]
			m.CE[i][j] = billing.BilledTime(te[k][j]) * cat[j].Rate
		}
		k++
	}
	m.BuildOptions()
	return m
}

// Full builds the ungrouped three-pipeline WRF workflow of Fig. 13: a
// shared geogrid stage feeding three parallel chains of
// ungrib -> metgrid -> real -> wrf -> ARWpost, joined by a final GrADS
// visualization stage. Per-program workloads follow the relative runtimes
// of the WPS/WRF stages (wrf.exe dominates).
func Full() *workflow.Workflow {
	w := workflow.New()
	entry := w.AddModule(workflow.Module{Name: "start", Fixed: true, FixedTime: 0})
	geogrid := w.AddModule(workflow.Module{Name: "geogrid", Workload: 40})
	mustDep(w, entry, geogrid, 1)
	grads := w.AddModule(workflow.Module{Name: "grads", Workload: 10})
	stages := []struct {
		name string
		wl   float64
	}{
		{"ungrib", 20}, {"metgrid", 15}, {"real", 30}, {"wrf", 700}, {"arwpost", 60},
	}
	for p := 0; p < 3; p++ {
		prev := entry
		for _, st := range stages {
			id := w.AddModule(workflow.Module{
				Name:     st.name + string(rune('1'+p)),
				Workload: st.wl,
			})
			mustDep(w, prev, id, 1)
			if st.name == "metgrid" {
				// metgrid also consumes geogrid's static fields.
				mustDep(w, geogrid, id, 1)
			}
			prev = id
		}
		mustDep(w, prev, grads, 1)
	}
	exit := w.AddModule(workflow.Module{Name: "end", Fixed: true, FixedTime: 0})
	mustDep(w, grads, exit, 1)
	return w
}

func mustDep(w *workflow.Workflow, u, v int, ds float64) {
	if err := w.AddDependency(u, v, ds); err != nil {
		panic(err) // static builders: failure is a programming error
	}
}
