package cloud

import (
	"math"
	"testing"
)

// testbed5 builds the paper-style 5-host private cloud: one controller in
// the middle of a star, four VMM nodes.
func testbed5(t *testing.T) *Infrastructure {
	t.Helper()
	in := NewInfrastructure()
	in.AddHost(Host{Name: "controller", Power: 10, Slots: 0})
	for i := 0; i < 4; i++ {
		in.AddHost(Host{Name: "vmm", Power: 10, Slots: 2})
	}
	if err := in.Star(0, Link{Bandwidth: 100, Delay: 0.001}); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestConnectValidation(t *testing.T) {
	in := NewInfrastructure()
	a := in.AddHost(Host{Name: "a"})
	b := in.AddHost(Host{Name: "b"})
	if err := in.Connect(a, a, Link{Bandwidth: 1}); err == nil {
		t.Fatal("self link accepted")
	}
	if err := in.Connect(a, 9, Link{Bandwidth: 1}); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if err := in.Connect(a, b, Link{Bandwidth: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if err := in.Connect(a, b, Link{Bandwidth: 1, Delay: -1}); err == nil {
		t.Fatal("negative delay accepted")
	}
	if err := in.Connect(a, b, Link{Bandwidth: 10, Delay: 0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestPathBetweenStar(t *testing.T) {
	in := testbed5(t)
	p, ok := in.PathBetween(1, 2)
	if !ok {
		t.Fatal("star hosts disconnected")
	}
	if p.Bandwidth != 100 {
		t.Fatalf("bottleneck = %v, want 100", p.Bandwidth)
	}
	if math.Abs(p.Delay-0.002) > 1e-12 {
		t.Fatalf("delay = %v, want 0.002 (two hops)", p.Delay)
	}
}

func TestPathBetweenSameHost(t *testing.T) {
	in := testbed5(t)
	p, ok := in.PathBetween(3, 3)
	if !ok || !math.IsInf(p.Bandwidth, 1) || p.Delay != 0 {
		t.Fatalf("same-host path = %+v ok=%v", p, ok)
	}
	d, err := in.TransferTime(3, 3, 1e9)
	if err != nil || d != 0 {
		t.Fatalf("same-host transfer = %v, %v", d, err)
	}
}

func TestPathPrefersWiderRoute(t *testing.T) {
	// a - b (bw 10), a - c - b (bw 50 each hop, more delay): widest path
	// must go through c.
	in := NewInfrastructure()
	a := in.AddHost(Host{Name: "a"})
	b := in.AddHost(Host{Name: "b"})
	c := in.AddHost(Host{Name: "c"})
	_ = in.Connect(a, b, Link{Bandwidth: 10, Delay: 0})
	_ = in.Connect(a, c, Link{Bandwidth: 50, Delay: 1})
	_ = in.Connect(c, b, Link{Bandwidth: 50, Delay: 1})
	p, ok := in.PathBetween(a, b)
	if !ok || p.Bandwidth != 50 || p.Delay != 2 {
		t.Fatalf("path = %+v ok=%v, want bw 50 delay 2", p, ok)
	}
}

func TestDisconnectedHosts(t *testing.T) {
	in := NewInfrastructure()
	a := in.AddHost(Host{Name: "a"})
	b := in.AddHost(Host{Name: "b"})
	if _, ok := in.PathBetween(a, b); ok {
		t.Fatal("disconnected hosts reported connected")
	}
	if _, err := in.TransferTime(a, b, 1); err == nil {
		t.Fatal("transfer between disconnected hosts succeeded")
	}
}

func TestTransferTimeFormula(t *testing.T) {
	in := NewInfrastructure()
	a := in.AddHost(Host{Name: "a"})
	b := in.AddHost(Host{Name: "b"})
	_ = in.Connect(a, b, Link{Bandwidth: 4, Delay: 0.5})
	got, err := in.TransferTime(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3.0) > 1e-12 { // 10/4 + 0.5
		t.Fatalf("transfer time = %v, want 3", got)
	}
}

func TestPlacementSlots(t *testing.T) {
	in := testbed5(t)
	p := NewPlacement(in, 3)
	if p.HostOf(0) != -1 {
		t.Fatal("fresh placement not unassigned")
	}
	if err := p.Assign(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign(2, 1); err == nil {
		t.Fatal("third VM on a 2-slot host accepted")
	}
	if err := p.Assign(2, 0); err != nil {
		t.Fatalf("unlimited-slot host rejected: %v", err)
	}
	if err := p.Assign(9, 1); err == nil {
		t.Fatal("out-of-range VM accepted")
	}
	if err := p.Assign(0, 9); err == nil {
		t.Fatal("out-of-range host accepted")
	}
}

func TestVirtualTransferTime(t *testing.T) {
	in := testbed5(t)
	p := NewPlacement(in, 2)
	if _, err := p.VirtualTransferTime(0, 1, 10); err == nil {
		t.Fatal("transfer between unplaced VMs succeeded")
	}
	_ = p.Assign(0, 1)
	_ = p.Assign(1, 2)
	got, err := p.VirtualTransferTime(0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0/100 + 0.002
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("virtual transfer = %v, want %v", got, want)
	}
	// Same host: zero.
	p2 := NewPlacement(in, 2)
	_ = p2.Assign(0, 3)
	_ = p2.Assign(1, 3)
	got, err = p2.VirtualTransferTime(0, 1, 1e12)
	if err != nil || got != 0 {
		t.Fatalf("co-located transfer = %v, %v", got, err)
	}
}
