// Package cloud models the IaaS side of the MED-CC problem: VM types with
// processing power and per-unit-time charging rates, billing policies
// (instance-hour rounding as on EC2, plus finer granularities), virtual
// machine instance lifecycle with a billing meter, and the physical /
// virtual resource graphs used to derive data-transfer times.
package cloud

import (
	"errors"
	"fmt"
	"math"
)

// VMType describes one virtual machine type VT_j = {VP_j, CV_j} from the
// paper: an overall processing power and an overall financial charging rate
// per unit time, plus descriptive capacity attributes used by the testbed.
type VMType struct {
	// Name identifies the type, e.g. "VT1".
	Name string `json:"name"`
	// Power is VP_j, the overall processing power: workload units
	// processed per unit time.
	Power float64 `json:"power"`
	// Rate is CV_j, the financial cost per billed unit of time.
	Rate float64 `json:"rate"`
	// CPUGHz, RAMKB and DiskGB describe the concrete instance shape
	// (Table V of the paper); they do not enter the scheduling math.
	CPUGHz float64 `json:"cpu_ghz,omitempty"`
	RAMKB  int     `json:"ram_kb,omitempty"`
	DiskGB float64 `json:"disk_gb,omitempty"`
}

// ExecTime returns T(E_ij) = WL_i / VP_j, the execution time of a workload
// on this VM type (Eq. 6 of the paper).
func (vt VMType) ExecTime(workload float64) float64 {
	return workload / vt.Power
}

// Catalog is an ordered set of available VM types. Order matters: schedules
// refer to types by index, and the paper's tables number types from 1.
type Catalog []VMType

// Validate checks that the catalog is non-empty with unique names and
// strictly positive powers and rates.
func (c Catalog) Validate() error {
	if len(c) == 0 {
		return errors.New("cloud: empty VM type catalog")
	}
	seen := make(map[string]bool, len(c))
	for i, vt := range c {
		if vt.Name == "" {
			return fmt.Errorf("cloud: type %d has empty name", i)
		}
		if seen[vt.Name] {
			return fmt.Errorf("cloud: duplicate type name %q", vt.Name)
		}
		seen[vt.Name] = true
		if !(vt.Power > 0) || math.IsInf(vt.Power, 0) {
			return fmt.Errorf("cloud: type %q has invalid power %v", vt.Name, vt.Power)
		}
		if vt.Rate < 0 || math.IsNaN(vt.Rate) || math.IsInf(vt.Rate, 0) {
			return fmt.Errorf("cloud: type %q has invalid rate %v", vt.Name, vt.Rate)
		}
	}
	return nil
}

// ByName returns the index of the named type, or -1.
func (c Catalog) ByName(name string) int {
	for i, vt := range c {
		if vt.Name == name {
			return i
		}
	}
	return -1
}

// Fastest returns the index of the highest-power type (lowest index wins
// ties, matching the deterministic choices elsewhere in the module).
func (c Catalog) Fastest() int {
	best := 0
	for i := 1; i < len(c); i++ {
		if c[i].Power > c[best].Power {
			best = i
		}
	}
	return best
}

// LinearCatalog builds n VM types priced linearly in processing-power base
// units, the pricing model of §VI-A: type i has power (i+1)*basePower and
// rate (i+1)*basePrice. Names are "VT1".."VTn".
func LinearCatalog(n int, basePower, basePrice float64) Catalog {
	c := make(Catalog, n)
	for i := range c {
		c[i] = VMType{
			Name:  fmt.Sprintf("VT%d", i+1),
			Power: float64(i+1) * basePower,
			Rate:  float64(i+1) * basePrice,
		}
	}
	return c
}

// DiminishingCatalog builds n VM types priced linearly in nominal instance
// size but with sublinear effective processing power: type i has i+1 size
// units, rate (i+1)*basePrice, and power basePower*(i+1)^gamma, gamma in
// (0, 1].
//
// This captures the virtualization overhead the paper measured on its WRF
// testbed: Table VI shows the 8x-larger VT3 running modules only ~2-5x
// faster than VT1, so a linearly-priced faster instance costs more per
// unit of completed work. With gamma = 1 this degenerates to LinearCatalog
// where (under exact billing) every type costs the same per unit of work
// and the budget/delay trade-off collapses to rounding noise.
func DiminishingCatalog(n int, basePower, basePrice, gamma float64) Catalog {
	c := make(Catalog, n)
	for i := range c {
		u := float64(i + 1)
		c[i] = VMType{
			Name:  fmt.Sprintf("VT%d", i+1),
			Power: basePower * math.Pow(u, gamma),
			Rate:  u * basePrice,
		}
	}
	return c
}

// PaperExampleCatalog returns the three VM types of Table I in the paper's
// numerical example: VP = {3, 15, 30}, CV = {1, 4, 8}.
func PaperExampleCatalog() Catalog {
	return Catalog{
		{Name: "VT1", Power: 3, Rate: 1},
		{Name: "VT2", Power: 15, Rate: 4},
		{Name: "VT3", Power: 30, Rate: 8},
	}
}
