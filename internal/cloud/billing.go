package cloud

import (
	"fmt"
	"math"
)

// BillingPolicy maps a raw occupancy duration to the billed duration. The
// paper's model (and classic EC2) rounds any partial hour up to a whole
// hour: C(E_ij) = T'(E_ij) * CV_j where T' is the rounded-up time (Eq. 7).
type BillingPolicy interface {
	// BilledTime returns the duration that will be charged for an
	// occupancy of d time units. It must be >= d for d >= 0 and
	// monotone non-decreasing.
	BilledTime(d float64) float64
	// String names the policy for reports.
	String() string
}

// RoundUp bills in whole increments of Unit, rounding any partial increment
// up, with an optional Minimum billed duration. Unit = 1 with Minimum = 0
// is the paper's instance-hour model when times are expressed in hours.
type RoundUp struct {
	// Unit is the billing increment; must be > 0.
	Unit float64
	// Minimum is the smallest billed duration (e.g. modern per-second
	// billing with a 60-second minimum). Zero means no minimum.
	Minimum float64
}

// BilledTime implements BillingPolicy.
func (r RoundUp) BilledTime(d float64) float64 {
	if d <= 0 {
		// Zero-length occupancy still pays the minimum if one is set:
		// an instance that booted was provisioned.
		return r.Minimum
	}
	units := math.Ceil(d/r.Unit - fpSlack)
	billed := units * r.Unit
	if billed < r.Minimum {
		billed = r.Minimum
	}
	return billed
}

// fpSlack absorbs float jitter so that e.g. a computed 3.0000000000000004
// hours bills as 3 units, not 4. It is far below the billing granularity of
// any real provider.
const fpSlack = 1e-9

func (r RoundUp) String() string {
	if r.Minimum > 0 {
		return fmt.Sprintf("roundup(unit=%g,min=%g)", r.Unit, r.Minimum)
	}
	return fmt.Sprintf("roundup(unit=%g)", r.Unit)
}

// Exact bills precisely the occupied duration (idealized pay-as-you-go).
type Exact struct{}

// BilledTime implements BillingPolicy.
func (Exact) BilledTime(d float64) float64 {
	if d < 0 {
		return 0
	}
	return d
}

func (Exact) String() string { return "exact" }

// HourlyRoundUp is the paper's billing model: times are in hours and any
// partial hour is charged as a full hour.
var HourlyRoundUp BillingPolicy = RoundUp{Unit: 1}

// ExecCost returns C(E_ij) = BilledTime(T(E_ij)) * CV_j, the execution cost
// of a workload on a VM type under the given billing policy (Eq. 7).
func ExecCost(p BillingPolicy, vt VMType, workload float64) float64 {
	return p.BilledTime(vt.ExecTime(workload)) * vt.Rate
}

// TransferCost returns C(R_ij) = CR * DS_ij (Eq. 4). CR is zero for
// intra-cloud transfers, the setting of the paper's evaluation.
func TransferCost(ratePerUnit, dataSize float64) float64 {
	return ratePerUnit * dataSize
}
