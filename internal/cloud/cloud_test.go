package cloud

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVMTypeExecTime(t *testing.T) {
	vt := VMType{Name: "VT1", Power: 3, Rate: 1}
	if got := vt.ExecTime(21); got != 7 {
		t.Fatalf("ExecTime(21) = %v, want 7", got)
	}
	if got := vt.ExecTime(0); got != 0 {
		t.Fatalf("ExecTime(0) = %v, want 0", got)
	}
}

func TestCatalogValidate(t *testing.T) {
	good := PaperExampleCatalog()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper catalog invalid: %v", err)
	}
	cases := []struct {
		name string
		c    Catalog
	}{
		{"empty", Catalog{}},
		{"no name", Catalog{{Power: 1, Rate: 1}}},
		{"dup name", Catalog{{Name: "a", Power: 1, Rate: 1}, {Name: "a", Power: 2, Rate: 2}}},
		{"zero power", Catalog{{Name: "a", Power: 0, Rate: 1}}},
		{"negative rate", Catalog{{Name: "a", Power: 1, Rate: -1}}},
		{"inf power", Catalog{{Name: "a", Power: math.Inf(1), Rate: 1}}},
		{"nan rate", Catalog{{Name: "a", Power: 1, Rate: math.NaN()}}},
	}
	for _, c := range cases {
		if err := c.c.Validate(); err == nil {
			t.Errorf("%s: invalid catalog accepted", c.name)
		}
	}
}

func TestCatalogByName(t *testing.T) {
	c := PaperExampleCatalog()
	if i := c.ByName("VT2"); i != 1 {
		t.Fatalf("ByName(VT2) = %d", i)
	}
	if i := c.ByName("nope"); i != -1 {
		t.Fatalf("ByName(nope) = %d", i)
	}
}

func TestCatalogFastest(t *testing.T) {
	c := PaperExampleCatalog()
	if i := c.Fastest(); i != 2 {
		t.Fatalf("Fastest = %d, want 2", i)
	}
	tie := Catalog{{Name: "a", Power: 5, Rate: 1}, {Name: "b", Power: 5, Rate: 2}}
	if i := tie.Fastest(); i != 0 {
		t.Fatalf("tie Fastest = %d, want 0 (lowest index)", i)
	}
}

func TestLinearCatalog(t *testing.T) {
	c := LinearCatalog(4, 2, 0.5)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c) != 4 {
		t.Fatalf("len = %d", len(c))
	}
	for i, vt := range c {
		wantP := float64(i+1) * 2
		wantR := float64(i+1) * 0.5
		if vt.Power != wantP || vt.Rate != wantR {
			t.Errorf("type %d: power/rate = %v/%v, want %v/%v", i, vt.Power, vt.Rate, wantP, wantR)
		}
	}
	// Linear pricing means cost-per-power is constant: no type dominates
	// another in exact billing, which is what makes the budget/delay
	// trade-off in the paper non-trivial.
	for i := 1; i < len(c); i++ {
		r0 := c[0].Rate / c[0].Power
		ri := c[i].Rate / c[i].Power
		if math.Abs(r0-ri) > 1e-12 {
			t.Fatalf("cost-per-power not constant: %v vs %v", r0, ri)
		}
	}
}

func TestHourlyRoundUp(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {0.01, 1}, {1, 1}, {1.0000000001, 1}, {1.1, 2}, {6.67, 7}, {7, 7},
	}
	for _, c := range cases {
		if got := HourlyRoundUp.BilledTime(c.in); got != c.want {
			t.Errorf("BilledTime(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRoundUpWithUnitAndMinimum(t *testing.T) {
	p := RoundUp{Unit: 1.0 / 60, Minimum: 0.25} // per-minute, 15-min minimum
	if got := p.BilledTime(0.1); got != 0.25 {
		t.Fatalf("minimum not applied: %v", got)
	}
	if got := p.BilledTime(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("exact half hour billed as %v", got)
	}
	if got := p.BilledTime(0.501); math.Abs(got-31.0/60) > 1e-12 {
		t.Fatalf("30.06 min billed as %v, want 31 min", got)
	}
	if got := p.BilledTime(0); got != 0.25 {
		t.Fatalf("zero occupancy with minimum billed %v", got)
	}
}

func TestExactPolicy(t *testing.T) {
	if got := (Exact{}).BilledTime(3.7); got != 3.7 {
		t.Fatalf("Exact billed %v", got)
	}
	if got := (Exact{}).BilledTime(-1); got != 0 {
		t.Fatalf("Exact billed %v for negative duration", got)
	}
}

func TestPolicyStrings(t *testing.T) {
	if s := HourlyRoundUp.String(); s != "roundup(unit=1)" {
		t.Fatalf("HourlyRoundUp.String = %q", s)
	}
	if s := (RoundUp{Unit: 1, Minimum: 2}).String(); s != "roundup(unit=1,min=2)" {
		t.Fatalf("String = %q", s)
	}
	if s := (Exact{}).String(); s != "exact" {
		t.Fatalf("String = %q", s)
	}
}

func TestBilledTimeProperties(t *testing.T) {
	// BilledTime(d) >= d, and monotone in d, for all policies.
	policies := []BillingPolicy{HourlyRoundUp, RoundUp{Unit: 0.25}, RoundUp{Unit: 1, Minimum: 2}, Exact{}}
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Keep magnitudes sane for float comparisons.
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		lo, hi := math.Min(a, b), math.Max(a, b)
		for _, p := range policies {
			if p.BilledTime(hi) < hi-1e-6 {
				return false
			}
			if p.BilledTime(lo) > p.BilledTime(hi)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExecCostMatchesPaperExample(t *testing.T) {
	// From the reconstructed Table II inputs: WL=21 on VT1 (VP=3, CV=1)
	// runs 7 hours and costs 7; on VT3 (VP=30, CV=8) runs 0.7h, costs 8.
	c := PaperExampleCatalog()
	if got := ExecCost(HourlyRoundUp, c[0], 21); got != 7 {
		t.Fatalf("cost on VT1 = %v, want 7", got)
	}
	if got := ExecCost(HourlyRoundUp, c[2], 21); got != 8 {
		t.Fatalf("cost on VT3 = %v, want 8", got)
	}
	if got := ExecCost(HourlyRoundUp, c[1], 40); got != 12 {
		t.Fatalf("cost of WL=40 on VT2 = %v, want 12", got)
	}
}

func TestTransferCost(t *testing.T) {
	if got := TransferCost(0, 100); got != 0 {
		t.Fatalf("intra-cloud transfer cost = %v, want 0", got)
	}
	if got := TransferCost(0.5, 100); got != 50 {
		t.Fatalf("transfer cost = %v, want 50", got)
	}
}
