package cloud

import "testing"

func TestVMLifecycleHappyPath(t *testing.T) {
	vm := NewVM(1, VMType{Name: "VT1", Power: 3, Rate: 0.1})
	if vm.State() != Requested {
		t.Fatalf("initial state %v", vm.State())
	}
	if err := vm.Boot(10); err != nil {
		t.Fatal(err)
	}
	if vm.State() != Booting {
		t.Fatalf("state after Boot %v", vm.State())
	}
	if err := vm.Ready(12); err != nil {
		t.Fatal(err)
	}
	if vm.ReadyAt() != 12 {
		t.Fatalf("ReadyAt = %v", vm.ReadyAt())
	}
	if err := vm.Terminate(30.5); err != nil {
		t.Fatal(err)
	}
	if vm.State() != Terminated {
		t.Fatalf("state after Terminate %v", vm.State())
	}
	if got := vm.Occupancy(); got != 20.5 {
		t.Fatalf("Occupancy = %v, want 20.5 (boot to stop)", got)
	}
	// 20.5 rounds to 21 billed units at rate 0.1.
	if got := vm.Cost(HourlyRoundUp); got != 2.1 {
		t.Fatalf("Cost = %v, want 2.1", got)
	}
}

func TestVMLifecycleRejectsBadTransitions(t *testing.T) {
	vm := NewVM(0, VMType{Name: "x", Power: 1, Rate: 1})
	if err := vm.Ready(0); err == nil {
		t.Fatal("Ready before Boot accepted")
	}
	if err := vm.Terminate(0); err == nil {
		t.Fatal("Terminate before Boot accepted")
	}
	if err := vm.Boot(5); err != nil {
		t.Fatal(err)
	}
	if err := vm.Boot(6); err == nil {
		t.Fatal("double Boot accepted")
	}
	if err := vm.Ready(4); err == nil {
		t.Fatal("Ready before boot time accepted")
	}
	if err := vm.Ready(6); err != nil {
		t.Fatal(err)
	}
	if err := vm.Terminate(5); err == nil {
		t.Fatal("Terminate before ready time accepted")
	}
	if err := vm.Terminate(7); err != nil {
		t.Fatal(err)
	}
	if err := vm.Terminate(8); err == nil {
		t.Fatal("double Terminate accepted")
	}
}

func TestVMCostZeroUntilTerminated(t *testing.T) {
	vm := NewVM(0, VMType{Name: "x", Power: 1, Rate: 5})
	if vm.Cost(HourlyRoundUp) != 0 || vm.Occupancy() != 0 {
		t.Fatal("unterminated VM reported cost/occupancy")
	}
	_ = vm.Boot(0)
	_ = vm.Ready(1)
	if vm.Cost(HourlyRoundUp) != 0 {
		t.Fatal("running VM reported cost")
	}
}

func TestVMStateString(t *testing.T) {
	want := map[VMState]string{Requested: "requested", Booting: "booting", Running: "running", Terminated: "terminated"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if VMState(99).String() != "VMState(99)" {
		t.Errorf("unknown state string = %q", VMState(99).String())
	}
}
