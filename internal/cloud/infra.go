package cloud

import (
	"errors"
	"fmt"
	"math"
)

// Host is one physical computer node c_i in the cloud infrastructure graph
// G_c with a processing power PP_i and a number of VM slots (how many VMs
// the virtualization layer will co-locate on it).
type Host struct {
	Name  string
	Power float64
	Slots int
}

// Link is an undirected physical network link with a bandwidth (data units
// per time unit) and a propagation delay.
type Link struct {
	Bandwidth float64
	Delay     float64
}

// Infrastructure is the cloud infrastructure layer: physical hosts joined
// by weighted links. The zero value is empty and ready to use. Absent links
// mean no direct connectivity; bandwidth queries then fall back to the
// shortest (max-bottleneck) path.
type Infrastructure struct {
	hosts []Host
	links map[[2]int]Link
}

// NewInfrastructure returns an empty infrastructure graph.
func NewInfrastructure() *Infrastructure {
	return &Infrastructure{links: make(map[[2]int]Link)}
}

// AddHost appends a physical host and returns its index.
func (in *Infrastructure) AddHost(h Host) int {
	in.hosts = append(in.hosts, h)
	return len(in.hosts) - 1
}

// NumHosts returns the host count.
func (in *Infrastructure) NumHosts() int { return len(in.hosts) }

// Host returns host i.
func (in *Infrastructure) Host(i int) Host { return in.hosts[i] }

func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Connect installs an undirected link between hosts a and b.
func (in *Infrastructure) Connect(a, b int, l Link) error {
	if a < 0 || a >= len(in.hosts) || b < 0 || b >= len(in.hosts) {
		return fmt.Errorf("cloud: link (%d,%d) out of range", a, b)
	}
	if a == b {
		return errors.New("cloud: self link")
	}
	if !(l.Bandwidth > 0) {
		return fmt.Errorf("cloud: non-positive bandwidth %v", l.Bandwidth)
	}
	if l.Delay < 0 {
		return fmt.Errorf("cloud: negative delay %v", l.Delay)
	}
	in.links[linkKey(a, b)] = l
	return nil
}

// Star wires every host to host center with identical links — the typical
// single-datacenter topology (one shared switch / storage fabric).
func (in *Infrastructure) Star(center int, l Link) error {
	for i := range in.hosts {
		if i == center {
			continue
		}
		if err := in.Connect(center, i, l); err != nil {
			return err
		}
	}
	return nil
}

// Path describes the effective connection between two hosts: the bottleneck
// bandwidth and the accumulated delay along the widest path.
type Path struct {
	Bandwidth float64
	Delay     float64
}

// PathBetween returns the maximum-bottleneck-bandwidth path between hosts a
// and b (ties broken by smaller delay), or ok=false if disconnected.
// Co-located endpoints (a == b) return infinite bandwidth and zero delay:
// transfers within one host cross shared memory, not the network.
func (in *Infrastructure) PathBetween(a, b int) (Path, bool) {
	if a == b {
		return Path{Bandwidth: math.Inf(1), Delay: 0}, true
	}
	n := len(in.hosts)
	if a < 0 || a >= n || b < 0 || b >= n {
		return Path{}, false
	}
	// Modified Dijkstra maximizing bottleneck bandwidth; n is tiny
	// (physical testbeds have a handful of hosts) so O(n^2) is fine.
	bw := make([]float64, n)
	delay := make([]float64, n)
	done := make([]bool, n)
	for i := range bw {
		bw[i] = 0
		delay[i] = math.Inf(1)
	}
	bw[a] = math.Inf(1)
	delay[a] = 0
	for {
		u := -1
		for i := 0; i < n; i++ {
			if done[i] || bw[i] == 0 {
				continue
			}
			// medcc:lint-ignore floateq — widest-path tie-break; equal bandwidths are exact copies of the same link minimum.
			if u == -1 || bw[i] > bw[u] || (bw[i] == bw[u] && delay[i] < delay[u]) {
				u = i
			}
		}
		if u == -1 {
			break
		}
		if u == b {
			return Path{Bandwidth: bw[b], Delay: delay[b]}, true
		}
		done[u] = true
		for v := 0; v < n; v++ {
			l, ok := in.links[linkKey(u, v)]
			if !ok || done[v] {
				continue
			}
			nb := math.Min(bw[u], l.Bandwidth)
			nd := delay[u] + l.Delay
			// medcc:lint-ignore floateq — widest-path tie-break; equal bandwidths are exact copies of the same link minimum.
			if nb > bw[v] || (nb == bw[v] && nd < delay[v]) {
				bw[v] = nb
				delay[v] = nd
			}
		}
	}
	return Path{}, false
}

// TransferTime returns T(R_ij) = DS/BW' + d' between two hosts (Eq. 5), or
// an error if they are disconnected.
func (in *Infrastructure) TransferTime(a, b int, dataSize float64) (float64, error) {
	p, ok := in.PathBetween(a, b)
	if !ok {
		return 0, fmt.Errorf("cloud: hosts %d and %d are disconnected", a, b)
	}
	if math.IsInf(p.Bandwidth, 1) {
		return 0, nil
	}
	return dataSize/p.Bandwidth + p.Delay, nil
}

// Placement maps VM index -> host index, building the fully connected
// virtual resource graph G'_c whose link properties are functions of the
// physical paths between the provisioning hosts.
type Placement struct {
	infra *Infrastructure
	hosts []int // VM -> host
}

// NewPlacement creates a placement of nvm VMs, all initially unassigned.
func NewPlacement(in *Infrastructure, nvm int) *Placement {
	p := &Placement{infra: in, hosts: make([]int, nvm)}
	for i := range p.hosts {
		p.hosts[i] = -1
	}
	return p
}

// Assign places VM v on host h, respecting host slot capacity.
func (p *Placement) Assign(v, h int) error {
	if v < 0 || v >= len(p.hosts) {
		return fmt.Errorf("cloud: VM index %d out of range", v)
	}
	if h < 0 || h >= p.infra.NumHosts() {
		return fmt.Errorf("cloud: host index %d out of range", h)
	}
	slots := p.infra.Host(h).Slots
	if slots > 0 {
		used := 0
		for _, hh := range p.hosts {
			if hh == h {
				used++
			}
		}
		if used >= slots {
			return fmt.Errorf("cloud: host %d full (%d slots)", h, slots)
		}
	}
	p.hosts[v] = h
	return nil
}

// HostOf returns the host of VM v, or -1.
func (p *Placement) HostOf(v int) int { return p.hosts[v] }

// VirtualTransferTime returns the data transfer time between two VMs under
// the current placement. Unassigned VMs are an error.
func (p *Placement) VirtualTransferTime(a, b int, dataSize float64) (float64, error) {
	ha, hb := p.hosts[a], p.hosts[b]
	if ha < 0 || hb < 0 {
		return 0, fmt.Errorf("cloud: VM %d or %d unplaced", a, b)
	}
	return p.infra.TransferTime(ha, hb, dataSize)
}
