package cloud

import "fmt"

// VMState is the lifecycle state of a provisioned VM instance.
type VMState int

// Lifecycle states, in order. Transitions only move forward:
// Requested -> Booting -> Running -> Terminated.
const (
	Requested VMState = iota
	Booting
	Running
	Terminated
)

// String implements fmt.Stringer.
func (s VMState) String() string {
	switch s {
	case Requested:
		return "requested"
	case Booting:
		return "booting"
	case Running:
		return "running"
	case Terminated:
		return "terminated"
	}
	return fmt.Sprintf("VMState(%d)", int(s))
}

// VM is one provisioned virtual machine instance with a billing meter.
// Time is virtual and supplied by the caller (a simulator clock); the VM
// only validates ordering and accumulates billable occupancy, which runs
// from the start of boot until termination — the paper's T_ij "spans from
// the initialization of VM_j to the end of output data transfer".
type VM struct {
	ID    int
	Type  VMType
	Host  int // index of the physical host, -1 if unplaced
	state VMState

	bootStart float64
	readyAt   float64
	stoppedAt float64
}

// NewVM returns a VM in the Requested state, unplaced.
func NewVM(id int, vt VMType) *VM {
	return &VM{ID: id, Type: vt, Host: -1, state: Requested}
}

// State returns the current lifecycle state.
func (v *VM) State() VMState { return v.state }

// Boot moves Requested -> Booting at virtual time now.
func (v *VM) Boot(now float64) error {
	if v.state != Requested {
		return fmt.Errorf("cloud: VM %d Boot in state %v", v.ID, v.state)
	}
	v.state = Booting
	v.bootStart = now
	return nil
}

// Ready moves Booting -> Running at virtual time now (>= boot start).
func (v *VM) Ready(now float64) error {
	if v.state != Booting {
		return fmt.Errorf("cloud: VM %d Ready in state %v", v.ID, v.state)
	}
	if now < v.bootStart {
		return fmt.Errorf("cloud: VM %d ready at %v before boot at %v", v.ID, now, v.bootStart)
	}
	v.state = Running
	v.readyAt = now
	return nil
}

// Terminate moves Running -> Terminated at virtual time now (>= ready).
func (v *VM) Terminate(now float64) error {
	if v.state != Running {
		return fmt.Errorf("cloud: VM %d Terminate in state %v", v.ID, v.state)
	}
	if now < v.readyAt {
		return fmt.Errorf("cloud: VM %d terminated at %v before ready at %v", v.ID, now, v.readyAt)
	}
	v.state = Terminated
	v.stoppedAt = now
	return nil
}

// ReadyAt returns the virtual time the VM entered Running; zero until then.
func (v *VM) ReadyAt() float64 { return v.readyAt }

// Occupancy returns the billable duration: boot start to termination. It
// is only meaningful once the VM is Terminated.
func (v *VM) Occupancy() float64 {
	if v.state != Terminated {
		return 0
	}
	return v.stoppedAt - v.bootStart
}

// Cost returns the billed cost of the (terminated) VM under policy p.
func (v *VM) Cost(p BillingPolicy) float64 {
	if v.state != Terminated {
		return 0
	}
	return p.BilledTime(v.Occupancy()) * v.Type.Rate
}
