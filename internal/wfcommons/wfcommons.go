// Package wfcommons parses WfCommons workflow instances (the WfFormat JSON
// used by the successor of the Pegasus workflow-trace archive) into this
// module's workflow model. Both layouts in the wild are supported:
//
//   - the legacy flat layout, workflow.jobs (or workflow.tasks) carrying
//     runtime, parents/children, and files inline, and
//   - the v1.4 split layout, workflow.specification.tasks (structure and
//     file references) plus workflow.execution.tasks (measured runtimes)
//     with file sizes in workflow.specification.files.
//
// The mapping mirrors package dax: workload = runtime x ReferencePower,
// edge data size = bytes of files the parent writes and the child reads.
package wfcommons

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"medcc/internal/workflow"
)

// Options control the mapping; semantics match package dax.
type Options struct {
	// ReferencePower converts runtimes to workloads (default 1).
	ReferencePower float64
	// DataUnit divides file sizes in bytes (default 1 MB).
	DataUnit float64
}

// document accumulates the streamed pieces of a WfFormat file; the
// arrays are filled one element at a time by the token walker, so only
// the workflow's logical content is ever held — never the raw JSON.
type document struct {
	Name     string
	Workflow struct {
		Jobs          []flatTask
		Tasks         []flatTask
		Specification struct {
			Tasks []specTask
			Files []specFile
		}
		Execution struct {
			Tasks []execTask
		}
	}
}

type flatTask struct {
	Name             string     `json:"name"`
	ID               string     `json:"id"`
	Runtime          float64    `json:"runtime"`
	RuntimeInSeconds float64    `json:"runtimeInSeconds"`
	Children         []string   `json:"children"`
	Parents          []string   `json:"parents"`
	Files            []flatFile `json:"files"`
}

type flatFile struct {
	Name        string  `json:"name"`
	Link        string  `json:"link"`
	Size        float64 `json:"size"`
	SizeInBytes float64 `json:"sizeInBytes"`
}

type specTask struct {
	Name        string   `json:"name"`
	ID          string   `json:"id"`
	Children    []string `json:"children"`
	Parents     []string `json:"parents"`
	InputFiles  []string `json:"inputFiles"`
	OutputFiles []string `json:"outputFiles"`
}

type specFile struct {
	ID          string  `json:"id"`
	SizeInBytes float64 `json:"sizeInBytes"`
}

type execTask struct {
	ID               string  `json:"id"`
	RuntimeInSeconds float64 `json:"runtimeInSeconds"`
}

// unified is the normalized task representation both layouts reduce to.
type unified struct {
	id       string
	name     string
	runtime  float64
	parents  []string
	children []string
	inputs   map[string]float64 // file -> bytes
	outputs  map[string]float64
}

// Parse reads a WfCommons instance and returns the workflow plus task IDs
// in module-index order.
func Parse(r io.Reader, opts Options) (*workflow.Workflow, []string, error) {
	if opts.ReferencePower == 0 {
		opts.ReferencePower = 1
	}
	if opts.DataUnit == 0 {
		opts.DataUnit = 1_000_000
	}
	var doc document
	if err := streamDocument(json.NewDecoder(r), &doc); err != nil {
		return nil, nil, fmt.Errorf("wfcommons: decode: %w", err)
	}

	var tasks []unified
	switch {
	case len(doc.Workflow.Specification.Tasks) > 0:
		tasks = fromSplit(&doc)
	case len(doc.Workflow.Jobs) > 0:
		tasks = fromFlat(doc.Workflow.Jobs)
	case len(doc.Workflow.Tasks) > 0:
		tasks = fromFlat(doc.Workflow.Tasks)
	default:
		return nil, nil, fmt.Errorf("wfcommons: %q has no tasks", doc.Name)
	}
	return build(tasks, opts)
}

// streamDocument walks the top-level JSON with a token cursor, decoding
// the task/file arrays one element at a time (json.Decoder.More +
// per-element Decode) and skipping everything else without buffering.
// Peak memory is one element plus the accumulated logical arrays —
// bounded even when the instance file carries megabytes of metadata the
// mapping ignores.
func streamDocument(dec *json.Decoder, doc *document) error {
	return walkObject(dec, func(key string) error {
		switch key {
		case "name":
			return decodeInto(dec, &doc.Name)
		case "workflow":
			return walkObject(dec, func(key string) error {
				switch key {
				case "jobs":
					return decodeArray(dec, &doc.Workflow.Jobs)
				case "tasks":
					return decodeArray(dec, &doc.Workflow.Tasks)
				case "specification":
					return walkObject(dec, func(key string) error {
						switch key {
						case "tasks":
							return decodeArray(dec, &doc.Workflow.Specification.Tasks)
						case "files":
							return decodeArray(dec, &doc.Workflow.Specification.Files)
						}
						return skipValue(dec)
					})
				case "execution":
					return walkObject(dec, func(key string) error {
						if key == "tasks" {
							return decodeArray(dec, &doc.Workflow.Execution.Tasks)
						}
						return skipValue(dec)
					})
				}
				return skipValue(dec)
			})
		}
		return skipValue(dec)
	})
}

// walkObject consumes one JSON object, invoking visit after each key
// with the decoder positioned on the key's value. visit must consume
// exactly that value.
func walkObject(dec *json.Decoder, visit func(key string) error) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if tok != json.Delim('{') {
		return fmt.Errorf("expected object, found %v", tok)
	}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		key, ok := tok.(string)
		if !ok {
			return fmt.Errorf("expected object key, found %v", tok)
		}
		if err := visit(key); err != nil {
			return err
		}
	}
	_, err = dec.Token() // closing '}'
	return err
}

// decodeArray consumes one JSON array, decoding each element into *dst
// element-at-a-time.
func decodeArray[T any](dec *json.Decoder, dst *[]T) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if tok == nil { // JSON null: leave dst unset
		return nil
	}
	if tok != json.Delim('[') {
		return fmt.Errorf("expected array, found %v", tok)
	}
	for dec.More() {
		var v T
		if err := dec.Decode(&v); err != nil {
			return err
		}
		*dst = append(*dst, v)
	}
	_, err = dec.Token() // closing ']'
	return err
}

// decodeInto decodes one scalar value in place.
func decodeInto[T any](dec *json.Decoder, dst *T) error {
	return dec.Decode(dst)
}

// skipValue consumes one JSON value of any shape without materializing
// it: delimiter tokens are counted, scalars are single tokens.
func skipValue(dec *json.Decoder) error {
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch tok {
		case json.Delim('{'), json.Delim('['):
			depth++
		case json.Delim('}'), json.Delim(']'):
			depth--
		}
		if depth == 0 {
			return nil
		}
	}
}

func fromFlat(in []flatTask) []unified {
	out := make([]unified, 0, len(in))
	for _, t := range in {
		u := unified{
			id:       t.ID,
			name:     t.Name,
			runtime:  t.Runtime,
			parents:  t.Parents,
			children: t.Children,
			inputs:   map[string]float64{},
			outputs:  map[string]float64{},
		}
		if u.id == "" {
			u.id = t.Name
		}
		if u.runtime == 0 {
			u.runtime = t.RuntimeInSeconds
		}
		for _, f := range t.Files {
			size := f.SizeInBytes
			if size == 0 {
				size = f.Size
			}
			switch f.Link {
			case "input":
				u.inputs[f.Name] = size
			case "output":
				u.outputs[f.Name] = size
			}
		}
		out = append(out, u)
	}
	return out
}

func fromSplit(doc *document) []unified {
	sizes := make(map[string]float64, len(doc.Workflow.Specification.Files))
	for _, f := range doc.Workflow.Specification.Files {
		sizes[f.ID] = f.SizeInBytes
	}
	runtimes := make(map[string]float64, len(doc.Workflow.Execution.Tasks))
	for _, t := range doc.Workflow.Execution.Tasks {
		runtimes[t.ID] = t.RuntimeInSeconds
	}
	out := make([]unified, 0, len(doc.Workflow.Specification.Tasks))
	for _, t := range doc.Workflow.Specification.Tasks {
		u := unified{
			id:       t.ID,
			name:     t.Name,
			runtime:  runtimes[t.ID],
			parents:  t.Parents,
			children: t.Children,
			inputs:   map[string]float64{},
			outputs:  map[string]float64{},
		}
		if u.id == "" {
			u.id = t.Name
			u.runtime = runtimes[t.Name]
		}
		for _, f := range t.InputFiles {
			u.inputs[f] = sizes[f]
		}
		for _, f := range t.OutputFiles {
			u.outputs[f] = sizes[f]
		}
		out = append(out, u)
	}
	return out
}

func build(tasks []unified, opts Options) (*workflow.Workflow, []string, error) {
	w := workflow.New()
	index := make(map[string]int, len(tasks))
	ids := make([]string, 0, len(tasks))
	for _, t := range tasks {
		if t.id == "" {
			return nil, nil, fmt.Errorf("wfcommons: task with empty id/name")
		}
		if _, dup := index[t.id]; dup {
			return nil, nil, fmt.Errorf("wfcommons: duplicate task id %q", t.id)
		}
		if t.runtime < 0 {
			return nil, nil, fmt.Errorf("wfcommons: task %q has negative runtime", t.id)
		}
		name := t.name
		if name == "" {
			name = t.id
		}
		index[t.id] = w.AddModule(workflow.Module{
			Name:     name,
			Workload: t.runtime * opts.ReferencePower,
		})
		ids = append(ids, t.id)
	}
	// Edge set: union of children and parents declarations.
	type edge struct{ p, c int }
	seen := map[edge]bool{}
	var order []edge
	add := func(pID, cID string) error {
		p, ok := index[pID]
		if !ok {
			return fmt.Errorf("wfcommons: unknown task reference %q", pID)
		}
		c, ok := index[cID]
		if !ok {
			return fmt.Errorf("wfcommons: unknown task reference %q", cID)
		}
		e := edge{p, c}
		if !seen[e] {
			seen[e] = true
			order = append(order, e)
		}
		return nil
	}
	for _, t := range tasks {
		for _, ch := range t.children {
			if err := add(t.id, ch); err != nil {
				return nil, nil, err
			}
		}
		for _, par := range t.parents {
			if err := add(par, t.id); err != nil {
				return nil, nil, err
			}
		}
	}
	// Data sizes: bytes of files flowing parent -> child, summed in
	// sorted file order — float addition is order-sensitive, so summing
	// in map iteration order would make edge weights vary across runs
	// (found by mapiter).
	var files []string
	for _, e := range order {
		files = files[:0]
		for f := range tasks[e.p].outputs {
			files = append(files, f)
		}
		sort.Strings(files)
		bytes := 0.0
		for _, f := range files {
			if _, consumed := tasks[e.c].inputs[f]; consumed {
				bytes += tasks[e.p].outputs[f]
			}
		}
		if err := w.AddDependency(e.p, e.c, bytes/opts.DataUnit); err != nil {
			return nil, nil, fmt.Errorf("wfcommons: %w", err)
		}
	}
	if err := w.Validate(); err != nil {
		return nil, nil, fmt.Errorf("wfcommons: %w", err)
	}
	return w, ids, nil
}
