package wfcommons

import (
	"strings"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/sched"
)

const flatInstance = `{
  "name": "epigenomics-flat",
  "workflow": {
    "jobs": [
      {"name": "split", "runtime": 10,
       "files": [{"name": "reads.fq", "link": "output", "size": 8000000}],
       "children": ["map1", "map2"]},
      {"name": "map1", "runtime": 120,
       "files": [{"name": "reads.fq", "link": "input", "size": 8000000},
                 {"name": "m1.sam", "link": "output", "size": 2000000}],
       "parents": ["split"], "children": ["merge"]},
      {"name": "map2", "runtime": 140,
       "files": [{"name": "reads.fq", "link": "input", "size": 8000000},
                 {"name": "m2.sam", "link": "output", "size": 2000000}],
       "parents": ["split"], "children": ["merge"]},
      {"name": "merge", "runtime": 30,
       "files": [{"name": "m1.sam", "link": "input", "size": 2000000},
                 {"name": "m2.sam", "link": "input", "size": 2000000}],
       "parents": ["map1", "map2"]}
    ]
  }
}`

const splitInstance = `{
  "name": "montage-v14",
  "schemaVersion": "1.4",
  "workflow": {
    "specification": {
      "tasks": [
        {"id": "t1", "name": "mProject", "children": ["t2"], "outputFiles": ["p1"]},
        {"id": "t2", "name": "mAdd", "parents": ["t1"], "inputFiles": ["p1"]}
      ],
      "files": [{"id": "p1", "sizeInBytes": 3000000}]
    },
    "execution": {
      "tasks": [
        {"id": "t1", "runtimeInSeconds": 25.5},
        {"id": "t2", "runtimeInSeconds": 80.25}
      ]
    }
  }
}`

func TestParseFlatLayout(t *testing.T) {
	w, ids, err := Parse(strings.NewReader(flatInstance), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumModules() != 4 || len(ids) != 4 {
		t.Fatalf("%d modules", w.NumModules())
	}
	if w.NumDependencies() != 4 {
		t.Fatalf("%d edges, want 4", w.NumDependencies())
	}
	// split -> map1 carries reads.fq: 8 MB.
	if got := w.DataSize(0, 1); got != 8 {
		t.Fatalf("split->map1 data = %v, want 8", got)
	}
	// map2 -> merge carries m2.sam: 2 MB.
	if got := w.DataSize(2, 3); got != 2 {
		t.Fatalf("map2->merge data = %v, want 2", got)
	}
	if w.Module(2).Workload != 140 {
		t.Fatalf("map2 workload %v", w.Module(2).Workload)
	}
}

func TestParseSplitLayout(t *testing.T) {
	w, ids, err := Parse(strings.NewReader(splitInstance), Options{ReferencePower: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumModules() != 2 || ids[0] != "t1" {
		t.Fatalf("modules %d ids %v", w.NumModules(), ids)
	}
	if w.Module(0).Workload != 51 { // 25.5 * 2
		t.Fatalf("workload %v", w.Module(0).Workload)
	}
	if got := w.DataSize(0, 1); got != 3 {
		t.Fatalf("edge data %v, want 3", got)
	}
}

func TestParseDuplicateEdgeDeclarationsCollapse(t *testing.T) {
	// map1 declares both children (on split) and parents (on merge):
	// the union must not duplicate edges.
	w, _, err := Parse(strings.NewReader(flatInstance), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumDependencies() != 4 {
		t.Fatalf("%d edges", w.NumDependencies())
	}
}

func TestParsedInstanceSchedules(t *testing.T) {
	w, _, err := Parse(strings.NewReader(flatInstance), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := cloud.DiminishingCatalog(3, 1, 1, 0.75)
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(w)
	if _, err := sched.Run(sched.CriticalGreedy(), w, m, (cmin+cmax)/2); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not json":   `]`,
		"no tasks":   `{"workflow": {}}`,
		"bad ref":    `{"workflow":{"jobs":[{"name":"a","runtime":1,"children":["zz"]}]}}`,
		"dup id":     `{"workflow":{"jobs":[{"name":"a","runtime":1},{"name":"a","runtime":2}]}}`,
		"neg run":    `{"workflow":{"jobs":[{"name":"a","runtime":-1}]}}`,
		"cycle":      `{"workflow":{"jobs":[{"name":"a","runtime":1,"children":["b"]},{"name":"b","runtime":1,"children":["a"]}]}}`,
		"empty name": `{"workflow":{"jobs":[{"runtime":1}]}}`,
	}
	for name, in := range cases {
		if _, _, err := Parse(strings.NewReader(in), Options{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func FuzzParse(f *testing.F) {
	f.Add([]byte(flatInstance))
	f.Add([]byte(splitInstance))
	f.Add([]byte(`{"workflow":{"tasks":[{"name":"a","runtimeInSeconds":5}]}}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, ids, err := Parse(strings.NewReader(string(data)), Options{})
		if err != nil {
			return
		}
		if w.NumModules() != len(ids) {
			t.Fatal("module/id mismatch")
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("accepted invalid workflow: %v", err)
		}
	})
}
