package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"medcc/internal/encoding"
	"medcc/internal/workflow"
)

func detect(t *testing.T, input string) (Format, error) {
	t.Helper()
	return Detect(bufio.NewReader(strings.NewReader(input)))
}

func TestDetect(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  Format
	}{
		{"dax", `<?xml version="1.0"?><adag name="x"/>`, FormatDAX},
		{"dax-bom-ws", "\xef\xbb\xbf  <adag/>", FormatDAX},
		{"native", `{"modules": [], "edges": []}`, FormatWorkflowJSON},
		{"wfcommons", `{"name": "x", "workflow": {"jobs": []}}`, FormatWfCommons},
		{"wfcommons-schema", `{"schemaVersion": "1.4"}`, FormatWfCommons},
		{"both-keys-native-first", `{"modules": [], "workflow": 1}`, FormatWorkflowJSON},
		{"both-keys-wf-first", `{"workflow": {"tasks": []}, "modules": 1}`, FormatWfCommons},
	}
	for _, tc := range cases {
		got, err := detect(t, tc.input)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: detected %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDetectErrors(t *testing.T) {
	for _, input := range []string{"", "   \n\t", "plain text", `{"neither": 1}`} {
		if f, err := detect(t, input); err == nil {
			t.Fatalf("input %q detected as %v, want error", input, f)
		}
	}
}

// TestDetectTypedErrors pins the error taxonomy the server relies on:
// each malformed-input class maps to its own sentinel, matchable with
// errors.Is, never a generic error.
func TestDetectTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  error
	}{
		{"empty", "", ErrEmpty},
		{"whitespace-only", "  \n\t", ErrEmpty},
		{"bom-only", "\xef\xbb\xbf", ErrEmpty},
		{"truncated-magic-1", "M", ErrTruncatedMagic},
		{"truncated-magic-3", "MED", ErrTruncatedMagic},
		{"not-a-format", "plain text", ErrUnknownFormat},
		{"binary-junk", "\x00\x01\x02", ErrUnknownFormat},
		{"json-no-dialect", `{"neither": 1}`, ErrAmbiguousJSON},
	}
	for _, tc := range cases {
		f, err := detect(t, tc.input)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: Detect = (%v, %v), want errors.Is(err, %v)", tc.name, f, err, tc.want)
		}
	}
	// "MEDCAL" shares a 4-byte prefix with the magic and must detect as
	// a container (header validation rejects it later, with context).
	if f, err := detect(t, "MEDCAL"); err != nil || f != FormatContainer {
		t.Fatalf("MEDC-prefixed input: Detect = (%v, %v), want container", f, err)
	}
}

// TestWorkflowJSONWithBOM checks the fix for the sniff/parse asymmetry:
// Detect tolerated a UTF-8 BOM but the JSON decoder then choked on it.
func TestWorkflowJSONWithBOM(t *testing.T) {
	for name, input := range map[string]string{
		"native":    "\xef\xbb\xbf" + `{"modules": [{"name": "a", "workload": 3}], "edges": []}`,
		"wfcommons": "\xef\xbb\xbf" + `{"name": "t", "workflow": {"jobs": [{"id": "a", "runtime": 3}]}}`,
	} {
		w, _, _, err := Workflow(strings.NewReader(input), Options{ReferencePower: 1})
		if err != nil {
			t.Fatalf("%s with BOM: %v", name, err)
		}
		if w.NumModules() != 1 {
			t.Fatalf("%s with BOM: %d modules, want 1", name, w.NumModules())
		}
	}
}

// TestWorkflowContainer round-trips a workflow through the binary
// container and back in via the sniffing front door.
func TestWorkflowContainer(t *testing.T) {
	src, _ := workflow.PaperExample()
	var rb encoding.RecordBuilder
	rb.Begin()
	if err := rb.Workflow(src); err != nil {
		t.Fatal(err)
	}
	buf := encoding.AppendHeader(nil, 1)
	buf, err := rb.AppendRecord(buf, false)
	if err != nil {
		t.Fatal(err)
	}
	w, _, f, err := Workflow(bytes.NewReader(buf), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f != FormatContainer {
		t.Fatalf("format = %v, want container", f)
	}
	if w.NumModules() != src.NumModules() || w.NumDependencies() != src.NumDependencies() {
		t.Fatalf("container round-trip: %d modules/%d edges, want %d/%d",
			w.NumModules(), w.NumDependencies(), src.NumModules(), src.NumDependencies())
	}
}

// TestWorkflowContainerWrongChunk checks that a well-formed container
// whose first record has no workflow chunk yields the typed sentinel
// (naming what the record does carry), not a generic decode error.
func TestWorkflowContainerWrongChunk(t *testing.T) {
	var rb encoding.RecordBuilder
	rb.Begin()
	rb.Schedule(workflow.Schedule{0, 1, 2})
	buf := encoding.AppendHeader(nil, 1)
	buf, err := rb.AppendRecord(buf, false)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = Workflow(bytes.NewReader(buf), Options{})
	if !errors.Is(err, ErrNoWorkflowChunk) {
		t.Fatalf("schedule-only container: err = %v, want ErrNoWorkflowChunk", err)
	}
	if err == nil || !strings.Contains(err.Error(), "schedule") {
		t.Fatalf("error should name the chunk types present, got %v", err)
	}

	// Empty container: records exhausted before any workflow.
	empty := encoding.AppendHeader(nil, 0)
	_, _, _, err = Workflow(bytes.NewReader(empty), Options{})
	if !errors.Is(err, ErrNoWorkflowChunk) {
		t.Fatalf("empty container: err = %v, want ErrNoWorkflowChunk", err)
	}
}

// TestWorkflowDispatch checks that each detected format reaches its
// parser and yields the same logical workflow.
func TestWorkflowDispatch(t *testing.T) {
	inputs := map[string]string{
		"dax": `<?xml version="1.0"?>
<adag name="t">
  <job id="a" runtime="3"/>
  <job id="b" runtime="5"/>
  <child ref="b"><parent ref="a"/></child>
</adag>`,
		"wfcommons": `{"name": "t", "workflow": {"jobs": [
  {"id": "a", "runtime": 3, "children": ["b"]},
  {"id": "b", "runtime": 5, "parents": ["a"]}
]}}`,
		"native": `{"modules": [{"name": "a", "workload": 3}, {"name": "b", "workload": 5}],
  "edges": [{"from": 0, "to": 1, "data_size": 0}]}`,
	}
	for name, input := range inputs {
		w, _, _, err := Workflow(strings.NewReader(input), Options{ReferencePower: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.NumModules() != 2 || w.NumDependencies() != 1 {
			t.Fatalf("%s: %d modules, %d edges", name, w.NumModules(), w.NumDependencies())
		}
	}
}
