package ingest

import (
	"bufio"
	"strings"
	"testing"
)

func detect(t *testing.T, input string) (Format, error) {
	t.Helper()
	return Detect(bufio.NewReader(strings.NewReader(input)))
}

func TestDetect(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  Format
	}{
		{"dax", `<?xml version="1.0"?><adag name="x"/>`, FormatDAX},
		{"dax-bom-ws", "\xef\xbb\xbf  <adag/>", FormatDAX},
		{"native", `{"modules": [], "edges": []}`, FormatWorkflowJSON},
		{"wfcommons", `{"name": "x", "workflow": {"jobs": []}}`, FormatWfCommons},
		{"wfcommons-schema", `{"schemaVersion": "1.4"}`, FormatWfCommons},
		{"both-keys-native-first", `{"modules": [], "workflow": 1}`, FormatWorkflowJSON},
		{"both-keys-wf-first", `{"workflow": {"tasks": []}, "modules": 1}`, FormatWfCommons},
	}
	for _, tc := range cases {
		got, err := detect(t, tc.input)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: detected %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDetectErrors(t *testing.T) {
	for _, input := range []string{"", "   \n\t", "plain text", `{"neither": 1}`} {
		if f, err := detect(t, input); err == nil {
			t.Fatalf("input %q detected as %v, want error", input, f)
		}
	}
}

// TestWorkflowDispatch checks that each detected format reaches its
// parser and yields the same logical workflow.
func TestWorkflowDispatch(t *testing.T) {
	inputs := map[string]string{
		"dax": `<?xml version="1.0"?>
<adag name="t">
  <job id="a" runtime="3"/>
  <job id="b" runtime="5"/>
  <child ref="b"><parent ref="a"/></child>
</adag>`,
		"wfcommons": `{"name": "t", "workflow": {"jobs": [
  {"id": "a", "runtime": 3, "children": ["b"]},
  {"id": "b", "runtime": 5, "parents": ["a"]}
]}}`,
		"native": `{"modules": [{"name": "a", "workload": 3}, {"name": "b", "workload": 5}],
  "edges": [{"from": 0, "to": 1, "data_size": 0}]}`,
	}
	for name, input := range inputs {
		w, _, _, err := Workflow(strings.NewReader(input), Options{ReferencePower: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.NumModules() != 2 || w.NumDependencies() != 1 {
			t.Fatalf("%s: %d modules, %d edges", name, w.NumModules(), w.NumDependencies())
		}
	}
}
