// Package ingest is the shared front door for workflow inputs: it
// sniffs a stream's format (Pegasus DAX XML, WfCommons WfFormat JSON,
// or this module's native workflow JSON) and dispatches to the
// matching streaming reader through one buffered io.Reader path — no
// caller ever slurps a whole file into memory to decide what it is.
package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"medcc/internal/dax"
	"medcc/internal/encoding"
	"medcc/internal/wfcommons"
	"medcc/internal/workflow"
)

// Typed sniffing errors. Servers branch on these with errors.Is to map
// malformed inputs onto precise client-facing failures instead of one
// generic "bad input"; every Detect failure wraps exactly one of them.
var (
	// ErrEmpty marks an input that is empty (or all whitespace/BOM).
	ErrEmpty = errors.New("ingest: empty input")
	// ErrTruncatedMagic marks an input that is a strict prefix of the
	// binary container magic — a container cut off inside its header.
	ErrTruncatedMagic = errors.New("ingest: truncated container magic")
	// ErrUnknownFormat marks an input that is neither XML, JSON, nor a
	// binary container.
	ErrUnknownFormat = errors.New("ingest: unrecognized input format")
	// ErrAmbiguousJSON marks JSON that matches no known workflow
	// dialect (neither native "modules" nor WfCommons "workflow").
	ErrAmbiguousJSON = errors.New("ingest: JSON matches no known workflow dialect")
	// ErrNoWorkflowChunk marks a binary-container record that carries
	// no workflow chunk (wrong chunk types for a workflow input).
	ErrNoWorkflowChunk = errors.New("ingest: container record has no workflow chunk")
)

// Format identifies a detected input format.
type Format int

const (
	// FormatUnknown is returned with an error when detection fails.
	FormatUnknown Format = iota
	// FormatDAX is Pegasus DAX XML.
	FormatDAX
	// FormatWfCommons is WfCommons WfFormat JSON.
	FormatWfCommons
	// FormatWorkflowJSON is this module's native workflow JSON.
	FormatWorkflowJSON
	// FormatContainer is this module's binary container ("MEDC" magic,
	// package encoding) — a single-instance file or a corpus stream.
	FormatContainer
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatDAX:
		return "dax"
	case FormatWfCommons:
		return "wfcommons"
	case FormatWorkflowJSON:
		return "workflow-json"
	case FormatContainer:
		return "container"
	}
	return "unknown"
}

// Options control the runtime/data-size mapping for converted formats;
// semantics match packages dax and wfcommons.
type Options struct {
	ReferencePower float64
	DataUnit       float64
	InferEdges     bool
}

// sniffWindow is how far Detect peeks. Every supported format reveals
// itself within the first few hundred bytes (the XML root element or
// the leading JSON keys); 32 KB leaves lavish margin for metadata
// preambles in WfCommons files.
const sniffWindow = 1 << 15

// leadCutset is what Detect skips before classifying: whitespace plus
// the bytes of a UTF-8 BOM.
const leadCutset = " \t\r\n\xef\xbb\xbf"

// Detect sniffs the stream's format without consuming it. The reader
// must be the same *bufio.Reader later handed to the parser.
func Detect(br *bufio.Reader) (Format, error) {
	head, err := br.Peek(sniffWindow)
	if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
		return FormatUnknown, err
	}
	trimmed := bytes.TrimLeft(head, leadCutset)
	if len(trimmed) == 0 {
		return FormatUnknown, ErrEmpty
	}
	if bytes.HasPrefix(trimmed, []byte(encoding.Magic)) {
		return FormatContainer, nil
	}
	if bytes.HasPrefix([]byte(encoding.Magic), trimmed) {
		// Strict prefix of "MEDC": a container whose stream ended
		// inside the magic, not an unrecognized format.
		return FormatUnknown, fmt.Errorf("%w: got %q of %q", ErrTruncatedMagic, trimmed, encoding.Magic)
	}
	if trimmed[0] == '<' {
		return FormatDAX, nil
	}
	if trimmed[0] != '{' {
		return FormatUnknown, fmt.Errorf("%w: input starts with %q, not XML, JSON, or %q", ErrUnknownFormat, trimmed[0], encoding.Magic)
	}
	// Both JSON dialects: the native format leads with "modules", the
	// WfFormat with "workflow" (or schema metadata before it). Pick by
	// first appearance inside the sniff window.
	mi := bytes.Index(trimmed, []byte(`"modules"`))
	wi := bytes.Index(trimmed, []byte(`"workflow"`))
	switch {
	case mi >= 0 && (wi < 0 || mi < wi):
		return FormatWorkflowJSON, nil
	case wi >= 0:
		return FormatWfCommons, nil
	case bytes.Contains(trimmed, []byte(`"schemaVersion"`)):
		return FormatWfCommons, nil
	}
	return FormatUnknown, fmt.Errorf("%w: neither %q nor %q in the first %d bytes", ErrAmbiguousJSON, "modules", "workflow", sniffWindow)
}

// SkipLead consumes the leading whitespace/BOM bytes Detect ignored, so
// the parser sees the stream from its first significant byte. The JSON
// decoders in particular reject a UTF-8 BOM that sniffing tolerated.
func SkipLead(br *bufio.Reader) error {
	for {
		b, err := br.Peek(1)
		if err != nil || bytes.IndexByte([]byte(leadCutset), b[0]) < 0 {
			return err
		}
		if _, err := br.Discard(1); err != nil {
			return err
		}
	}
}

// Workflow reads one workflow from r, detecting the format and parsing
// through the matching streaming reader. The returned IDs are task IDs
// in module-index order for converted formats, nil for native JSON.
func Workflow(r io.Reader, opts Options) (*workflow.Workflow, []string, Format, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	f, err := Detect(br)
	if err != nil {
		return nil, nil, f, err
	}
	if err := SkipLead(br); err != nil {
		return nil, nil, f, fmt.Errorf("ingest: %w", err)
	}
	switch f {
	case FormatContainer:
		w, err := containerWorkflow(br)
		return w, nil, f, err
	case FormatDAX:
		w, ids, err := dax.Parse(br, dax.Options{
			ReferencePower: opts.ReferencePower, DataUnit: opts.DataUnit, InferEdges: opts.InferEdges})
		return w, ids, f, err
	case FormatWfCommons:
		w, ids, err := wfcommons.Parse(br, wfcommons.Options{
			ReferencePower: opts.ReferencePower, DataUnit: opts.DataUnit})
		return w, ids, f, err
	default:
		w := workflow.New()
		if err := json.NewDecoder(br).Decode(w); err != nil {
			return nil, nil, f, fmt.Errorf("ingest: workflow JSON: %w", err)
		}
		return w, nil, f, nil
	}
}

// containerWorkflow decodes the first record of a binary container into
// a fresh workflow. A record without a workflow chunk — a trace- or
// schedule-only container handed to a workflow entry point — yields
// ErrNoWorkflowChunk naming the chunk types actually present.
func containerWorkflow(br *bufio.Reader) (*workflow.Workflow, error) {
	cr, err := encoding.NewCorpusReader(br)
	if err != nil {
		return nil, err
	}
	rec, _, _, err := cr.NextRaw()
	if err == io.EOF {
		return nil, fmt.Errorf("%w: container has no records", ErrNoWorkflowChunk)
	}
	if err != nil {
		return nil, err
	}
	if rec.Find(encoding.ChunkWorkflow) < 0 {
		return nil, fmt.Errorf("%w: record 0 carries %s", ErrNoWorkflowChunk, chunkTypes(rec))
	}
	w := workflow.New()
	var dec encoding.Decoder
	if err := dec.WorkflowInto(rec, rec.Find(encoding.ChunkWorkflow), w); err != nil {
		return nil, err
	}
	return w, nil
}

// chunkTypes renders a record's chunk-type list for error messages.
func chunkTypes(rec encoding.Record) string {
	if rec.NumChunks() == 0 {
		return "no chunks"
	}
	var b bytes.Buffer
	for i := 0; i < rec.NumChunks(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v", rec.Type(i))
	}
	return b.String()
}

// File opens path and reads the workflow it contains via Workflow.
func File(path string, opts Options) (*workflow.Workflow, []string, Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, FormatUnknown, err
	}
	defer f.Close()
	return Workflow(bufio.NewReaderSize(f, 1<<16), opts)
}

// JSONFile streams one JSON value out of a file — the bounded-memory
// replacement for the os.ReadFile + Unmarshal idiom.
func JSONFile(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReaderSize(f, 1<<16))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
