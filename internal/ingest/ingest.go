// Package ingest is the shared front door for workflow inputs: it
// sniffs a stream's format (Pegasus DAX XML, WfCommons WfFormat JSON,
// or this module's native workflow JSON) and dispatches to the
// matching streaming reader through one buffered io.Reader path — no
// caller ever slurps a whole file into memory to decide what it is.
package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"medcc/internal/dax"
	"medcc/internal/wfcommons"
	"medcc/internal/workflow"
)

// Format identifies a detected input format.
type Format int

const (
	// FormatUnknown is returned with an error when detection fails.
	FormatUnknown Format = iota
	// FormatDAX is Pegasus DAX XML.
	FormatDAX
	// FormatWfCommons is WfCommons WfFormat JSON.
	FormatWfCommons
	// FormatWorkflowJSON is this module's native workflow JSON.
	FormatWorkflowJSON
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatDAX:
		return "dax"
	case FormatWfCommons:
		return "wfcommons"
	case FormatWorkflowJSON:
		return "workflow-json"
	}
	return "unknown"
}

// Options control the runtime/data-size mapping for converted formats;
// semantics match packages dax and wfcommons.
type Options struct {
	ReferencePower float64
	DataUnit       float64
	InferEdges     bool
}

// sniffWindow is how far Detect peeks. Every supported format reveals
// itself within the first few hundred bytes (the XML root element or
// the leading JSON keys); 32 KB leaves lavish margin for metadata
// preambles in WfCommons files.
const sniffWindow = 1 << 15

// Detect sniffs the stream's format without consuming it. The reader
// must be the same *bufio.Reader later handed to the parser.
func Detect(br *bufio.Reader) (Format, error) {
	head, err := br.Peek(sniffWindow)
	if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
		return FormatUnknown, err
	}
	trimmed := bytes.TrimLeft(head, " \t\r\n\xef\xbb\xbf")
	if len(trimmed) == 0 {
		return FormatUnknown, fmt.Errorf("ingest: empty input")
	}
	if trimmed[0] == '<' {
		return FormatDAX, nil
	}
	if trimmed[0] != '{' {
		return FormatUnknown, fmt.Errorf("ingest: input starts with %q, not XML or JSON", trimmed[0])
	}
	// Both JSON dialects: the native format leads with "modules", the
	// WfFormat with "workflow" (or schema metadata before it). Pick by
	// first appearance inside the sniff window.
	mi := bytes.Index(trimmed, []byte(`"modules"`))
	wi := bytes.Index(trimmed, []byte(`"workflow"`))
	switch {
	case mi >= 0 && (wi < 0 || mi < wi):
		return FormatWorkflowJSON, nil
	case wi >= 0:
		return FormatWfCommons, nil
	case bytes.Contains(trimmed, []byte(`"schemaVersion"`)):
		return FormatWfCommons, nil
	}
	return FormatUnknown, fmt.Errorf("ingest: JSON input has neither %q nor %q in the first %d bytes", "modules", "workflow", sniffWindow)
}

// Workflow reads one workflow from r, detecting the format and parsing
// through the matching streaming reader. The returned IDs are task IDs
// in module-index order for converted formats, nil for native JSON.
func Workflow(r io.Reader, opts Options) (*workflow.Workflow, []string, Format, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	f, err := Detect(br)
	if err != nil {
		return nil, nil, f, err
	}
	switch f {
	case FormatDAX:
		w, ids, err := dax.Parse(br, dax.Options{
			ReferencePower: opts.ReferencePower, DataUnit: opts.DataUnit, InferEdges: opts.InferEdges})
		return w, ids, f, err
	case FormatWfCommons:
		w, ids, err := wfcommons.Parse(br, wfcommons.Options{
			ReferencePower: opts.ReferencePower, DataUnit: opts.DataUnit})
		return w, ids, f, err
	default:
		w := workflow.New()
		if err := json.NewDecoder(br).Decode(w); err != nil {
			return nil, nil, f, fmt.Errorf("ingest: workflow JSON: %w", err)
		}
		return w, nil, f, nil
	}
}

// File opens path and reads the workflow it contains via Workflow.
func File(path string, opts Options) (*workflow.Workflow, []string, Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, FormatUnknown, err
	}
	defer f.Close()
	return Workflow(bufio.NewReaderSize(f, 1<<16), opts)
}

// JSONFile streams one JSON value out of a file — the bounded-memory
// replacement for the os.ReadFile + Unmarshal idiom.
func JSONFile(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReaderSize(f, 1<<16))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
