package adaptive

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

func exampleConfig(budget float64) Config {
	w, cat := workflow.PaperExample()
	return Config{
		Workflow: w,
		Catalog:  cat,
		Billing:  cloud.HourlyRoundUp,
		Budget:   budget,
	}
}

func TestNoNoiseMatchesAnalytic(t *testing.T) {
	cfg := exampleConfig(57)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The analytic CG result at B=57: MED 5.9333, cost 56.
	if math.Abs(out.Makespan-(2+59.0/15)) > 1e-9 {
		t.Fatalf("makespan %v", out.Makespan)
	}
	if math.Abs(out.Cost-56) > 1e-9 || out.Overspend != 0 {
		t.Fatalf("cost %v overspend %v", out.Cost, out.Overspend)
	}
	// Replanning without noise must change nothing.
	cfg.Replan = true
	out2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out2.Makespan-out.Makespan) > 1e-9 || math.Abs(out2.Cost-out.Cost) > 1e-9 {
		t.Fatalf("replanning changed a noise-free run: %+v vs %+v", out2, out)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := exampleConfig(57)
	cfg.Perturb = Uniform(0.2, 0.5)
	cfg.Seed = 9
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Cost != b.Cost {
		t.Fatal("same seed, different outcomes")
	}
}

func TestInfeasibleBudget(t *testing.T) {
	cfg := exampleConfig(10)
	if _, err := Run(cfg); err == nil {
		t.Fatal("infeasible budget accepted")
	}
}

func TestNegativePerturbRejected(t *testing.T) {
	cfg := exampleConfig(57)
	cfg.Perturb = func(rng *rand.Rand, _ int, est float64) float64 { return -1 }
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative actual duration accepted")
	}
}

func TestOptimisticNoiseLowersCost(t *testing.T) {
	// Everything runs 40% faster than estimated: the actual bill must
	// be at most the plan, with no overspend.
	cfg := exampleConfig(57)
	cfg.Perturb = func(rng *rand.Rand, _ int, est float64) float64 { return est * 0.6 }
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost > 56 || out.Overspend != 0 {
		t.Fatalf("optimistic run billed %v", out.Cost)
	}
}

// TestReplanningReducesOverspend is the headline robustness property:
// under pessimistic noise, re-planning after each completion adapts the
// remaining modules to the budget actually left, so across many seeds the
// adaptive runs overspend no more than the static ones on average.
func TestReplanningReducesOverspend(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var staticOver, adaptiveOver float64
	var staticMk, adaptiveMk float64
	runs := 0
	for trial := 0; trial < 8; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 12, E: 25, N: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		budget := (cmin + cmax) / 2
		for seed := int64(0); seed < 5; seed++ {
			base := Config{
				Workflow: wf, Catalog: cat, Billing: cloud.HourlyRoundUp,
				Budget: budget, Perturb: Uniform(0.1, 0.6), Seed: seed,
			}
			st, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			base.Replan = true
			ad, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			staticOver += st.Overspend
			adaptiveOver += ad.Overspend
			staticMk += st.Makespan
			adaptiveMk += ad.Makespan
			runs++
		}
	}
	t.Logf("avg overspend static %.2f vs adaptive %.2f; avg makespan %.2f vs %.2f",
		staticOver/float64(runs), adaptiveOver/float64(runs),
		staticMk/float64(runs), adaptiveMk/float64(runs))
	if adaptiveOver > staticOver {
		t.Fatalf("adaptive overspend %.2f above static %.2f", adaptiveOver/float64(runs), staticOver/float64(runs))
	}
}

func TestReplansCountedUnderNoise(t *testing.T) {
	cfg := exampleConfig(57)
	cfg.Perturb = Uniform(0.3, 0.8)
	cfg.Seed = 3
	cfg.Replan = true
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Replans == 0 {
		t.Log("no replan changed the schedule on this seed — acceptable but unusual")
	}
	if err := cfg.Workflow.ValidateSchedule(out.Final, 3); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveAgainstScheduledBaseline(t *testing.T) {
	// Sanity: the engine's no-noise makespan equals the analytic
	// makespan of the same schedule on random instances.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 9, E: 15, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		b := (cmin + cmax) / 2
		res, err := sched.Run(sched.CriticalGreedy(), wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(Config{Workflow: wf, Catalog: cat, Billing: cloud.HourlyRoundUp, Budget: b})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out.Makespan-res.MED) > 1e-9 || math.Abs(out.Cost-res.Cost) > 1e-9 {
			t.Fatalf("trial %d: engine %+v vs analytic %v/%v", trial, out, res.MED, res.Cost)
		}
	}
}
