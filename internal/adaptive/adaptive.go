// Package adaptive studies MED-CC scheduling under runtime uncertainty:
// the static schedule is computed from estimated runtimes, but modules'
// actual durations deviate, so the actual bill drifts from the plan. The
// engine executes a workflow event by event and, optionally, re-plans the
// not-yet-started modules after every completion with the budget that is
// actually left — the dynamic counterpart the paper's related work
// (dynamic critical path scheduling, ref [8]) argues for.
//
// Execution follows the paper's one-to-one model: every module gets its
// own VM of the scheduled type, starts as soon as its inputs are complete
// (transfers are intra-cloud and free), and is billed for its actual
// duration under the configured policy.
package adaptive

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"medcc/internal/cloud"
	"medcc/internal/dag"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

// Perturb maps a module's estimated duration to its actual duration.
// Implementations must return a non-negative value.
type Perturb func(rng *rand.Rand, module int, estimate float64) float64

// Uniform returns a Perturb drawing actual = estimate * U[1-under, 1+over]
// — e.g. Uniform(0, 0.5) models runs up to 50% slower than estimated.
func Uniform(under, over float64) Perturb {
	return func(rng *rand.Rand, _ int, est float64) float64 {
		f := 1 - under + rng.Float64()*(under+over)
		if f < 0 {
			f = 0
		}
		return est * f
	}
}

// Config describes one adaptive execution.
type Config struct {
	Workflow *workflow.Workflow
	Catalog  cloud.Catalog
	Billing  cloud.BillingPolicy
	Budget   float64
	// Perturb generates actual durations; nil means actual == estimate.
	Perturb Perturb
	// Seed drives the perturbation; runs are deterministic per seed.
	Seed int64
	// Replan re-runs Critical-Greedy over the unstarted modules after
	// every completion, spending whatever budget actually remains.
	Replan bool
}

// Outcome reports one execution.
type Outcome struct {
	// Makespan is the actual end-to-end duration.
	Makespan float64
	// Cost is the actual billed spend.
	Cost float64
	// Overspend is max(0, Cost - Budget): how far runtime noise pushed
	// the bill past the plan.
	Overspend float64
	// Replans counts re-planning rounds that changed the schedule.
	Replans int
	// Final is the schedule as executed.
	Final workflow.Schedule
}

// Run executes the workflow under the configuration.
func Run(cfg Config) (*Outcome, error) {
	w := cfg.Workflow
	if w == nil {
		return nil, errors.New("adaptive: nil workflow")
	}
	m, err := w.BuildMatrices(cfg.Catalog, cfg.Billing)
	if err != nil {
		return nil, err
	}
	s, err := sched.CriticalGreedy().Schedule(w, m, cfg.Budget)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := w.Graph()
	n := w.NumModules()

	// Draw actual duration factors up front (per module, independent of
	// the chosen type: a module that runs 20% long does so on any VM).
	factor := make([]float64, n)
	for i := 0; i < n; i++ {
		factor[i] = 1
		if cfg.Perturb != nil && !w.Module(i).Fixed {
			est := m.TE[i][s[i]]
			f := cfg.Perturb(rng, i, est)
			if est > 0 {
				factor[i] = f / est
			}
		}
		if factor[i] < 0 {
			return nil, fmt.Errorf("adaptive: negative actual duration for module %d", i)
		}
	}
	actualDur := func(i int) float64 {
		if w.Module(i).Fixed {
			return w.Module(i).FixedTime
		}
		return m.TE[i][s[i]] * factor[i]
	}
	actualCost := func(i int) float64 {
		if w.Module(i).Fixed {
			return 0
		}
		return m.Billing.BilledTime(actualDur(i)) * m.Catalog[s[i]].Rate
	}

	const (
		unstarted = 0
		running   = 1
		finished  = 2
	)
	state := make([]int, n)
	finish := make([]float64, n)
	pending := make([]int, n)
	for i := 0; i < n; i++ {
		pending[i] = g.InDegree(i)
	}
	out := &Outcome{}
	now := 0.0
	spent := 0.0
	done := 0
	var rp replanner // scratch shared by all replan rounds of this run

	startReady := func() {
		for i := 0; i < n; i++ {
			if state[i] == unstarted && pending[i] == 0 {
				state[i] = running
				finish[i] = now + actualDur(i)
			}
		}
	}
	startReady()
	for done < n {
		// Advance to the earliest running completion.
		next := -1
		for i := 0; i < n; i++ {
			if state[i] == running && (next == -1 || finish[i] < finish[next]) {
				next = i
			}
		}
		if next == -1 {
			return nil, fmt.Errorf("adaptive: deadlock with %d/%d modules done", done, n)
		}
		now = finish[next]
		state[next] = finished
		spent += actualCost(next)
		done++
		for _, v := range g.Succ(next) {
			pending[v]--
		}
		if cfg.Replan && done < n {
			if rp.replanOnce(w, m, s, state, cfg.Budget, spent) {
				out.Replans++
			}
		}
		startReady()
	}
	out.Makespan = now
	out.Cost = spent
	if spent > cfg.Budget {
		out.Overspend = spent - cfg.Budget
	}
	out.Final = s
	return out, nil
}

// replanner holds the scratch reused across replan rounds of one run: the
// unstarted-module list, the previous-schedule snapshot, and an incremental
// timing refreshed in place, so the per-completion replanning loop makes no
// heap allocations after the first round.
type replanner struct {
	unstarted []int
	before    workflow.Schedule
	times     []float64
	t         *dag.Timing
}

// replanOnce re-runs the Critical-Greedy loop over the unstarted modules:
// they drop to their least-cost types, then upgrade while the estimated
// cost of the unstarted remainder fits the budget that is actually left
// (budget - actual spend - estimated cost of running modules). Returns
// whether the schedule changed.
func (rp *replanner) replanOnce(w *workflow.Workflow, m *workflow.Matrices, s workflow.Schedule, state []int, budget, spent float64) bool {
	g := w.Graph()
	unstartedMods := rp.unstarted[:0]
	committed := 0.0 // estimated cost of modules currently running
	for i := 0; i < w.NumModules(); i++ {
		if w.Module(i).Fixed {
			continue
		}
		switch state[i] {
		case 0:
			unstartedMods = append(unstartedMods, i)
		case 1:
			committed += m.CE[i][s[i]]
		}
	}
	rp.unstarted = unstartedMods
	if len(unstartedMods) == 0 {
		return false
	}
	sort.Ints(unstartedMods)
	if len(rp.before) != len(s) {
		rp.before = make(workflow.Schedule, len(s))
	}
	copy(rp.before, s)

	// Reset the remainder to least-cost.
	remaining := 0.0
	for _, i := range unstartedMods {
		best := 0
		for j := 1; j < len(m.Catalog); j++ {
			cj, cb := m.CE[i][j], m.CE[i][best]
			// medcc:lint-ignore floateq — tie-break on identical table cells; both sides read straight from CE.
			if cj < cb || (cj == cb && m.TE[i][j] < m.TE[i][best]) {
				best = j
			}
		}
		s[i] = best
		remaining += m.CE[i][best]
	}
	avail := budget - spent - committed
	// Even the least-cost remainder may exceed what is left once actuals
	// ran over; spend what we have and accept the overshoot — aborting
	// the workflow would waste everything already paid.
	fresh := true
	for avail-remaining > 0 {
		if fresh {
			// First iteration of a round: many assignments changed, so
			// refresh the timing wholesale; later iterations re-relax only
			// the upgraded module's suffix.
			rp.times = m.TimesInto(s, rp.times)
			if rp.t == nil {
				t, err := dag.NewTiming(g, rp.times, nil)
				if err != nil {
					break // cannot happen on a validated workflow
				}
				rp.t = t
			} else if err := rp.t.Update(rp.times); err != nil {
				break
			}
			fresh = false
		}
		t := rp.t
		bi, bj := -1, -1
		var bestDT, bestDC float64
		for _, i := range unstartedMods {
			if !t.IsCritical(i) {
				continue
			}
			for _, j := range m.Options(i) {
				if j == s[i] {
					continue
				}
				dt := m.TE[i][s[i]] - m.TE[i][j]
				dc := m.CE[i][j] - m.CE[i][s[i]]
				if dt <= dag.Eps || dc > avail-remaining+1e-9 {
					continue
				}
				if bi == -1 || dt > bestDT+dag.Eps ||
					(dt >= bestDT-dag.Eps && dc < bestDC-1e-9) {
					bi, bj, bestDT, bestDC = i, j, dt, dc
				}
			}
		}
		if bi == -1 {
			break
		}
		s[bi] = bj
		remaining += bestDC
		t.UpdateNode(bi, m.TE[bi][bj])
	}
	return !s.Equal(rp.before)
}
