package sim

import (
	"strings"
	"testing"
)

func TestRenderGantt(t *testing.T) {
	cfg, _ := paperConfig(t, 57)
	cfg.BootTime = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, cfg.Workflow.NumModules())
	for i := range names {
		names[i] = cfg.Workflow.Module(i).Name
	}
	var sb strings.Builder
	if err := res.RenderGantt(&sb, names, 60); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"w0", "w3", "makespan", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != cfg.Workflow.NumModules()+1 {
		t.Fatalf("%d lines for %d modules", len(lines), cfg.Workflow.NumModules())
	}
	// Boot delay shows as waiting dots on at least one row.
	if !strings.Contains(out, ".") {
		t.Fatal("no waiting time rendered despite boot delay")
	}
}

func TestRenderGanttDegenerate(t *testing.T) {
	var sb strings.Builder
	empty := &Result{}
	if err := empty.RenderGantt(&sb, nil, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty run not reported")
	}
	if got := truncate("abcdefghij", 5); got != "abcd~" {
		t.Fatalf("truncate = %q", got)
	}
	if got := truncate("ab", 5); got != "ab" {
		t.Fatalf("truncate = %q", got)
	}
}
