package sim

import (
	"fmt"
	"math"

	"medcc/internal/workflow"
)

// Config describes one simulated execution of a scheduled workflow.
type Config struct {
	// Workflow, Matrices and Schedule define what runs where; the
	// schedule must be valid for the matrices' catalog.
	Workflow *workflow.Workflow
	Matrices *workflow.Matrices
	Schedule workflow.Schedule

	// BootTime is the VM startup latency T(I_j), applied between a
	// VM's just-in-time provisioning and its first module start.
	BootTime float64

	// Reuse optionally packs modules onto shared VM instances (from
	// workflow.PlanReuse). Nil provisions one VM per schedulable
	// module, the paper's one-to-one mapping baseline.
	Reuse *workflow.ReusePlan

	// Bandwidth and Delay model shared-storage data transfers: each
	// dependency edge moves DataSize units at Bandwidth plus Delay.
	// Bandwidth <= 0 means transfers are free (intra-datacenter model).
	Bandwidth, Delay float64

	// TransferSlots bounds concurrent data transfers through the
	// shared storage (its ingest channels); 0 means unlimited. Excess
	// transfers queue FIFO, modeling storage contention on wide
	// fan-outs.
	TransferSlots int
}

// ModuleTrace records one module's simulated lifecycle.
type ModuleTrace struct {
	Ready  float64 // all inputs arrived
	Start  float64 // execution began (VM ready and free)
	Finish float64 // execution ended
	VM     int     // VM instance index (-1 for fixed modules)
}

// VMTrace records one VM instance's lifecycle and bill.
type VMTrace struct {
	Type      int     // catalog index
	BootAt    float64 // provisioning request time
	ReadyAt   float64 // boot completed
	StoppedAt float64 // terminated after its last module
	Cost      float64 // billed under the matrices' billing policy
	Modules   []int   // executed modules in order
}

// Result is the outcome of one simulated run.
type Result struct {
	Makespan float64
	Cost     float64
	Modules  []ModuleTrace
	VMs      []VMTrace
	Events   int64
}

// Run simulates the configured execution and returns its trace.
func Run(cfg Config) (*Result, error) {
	w, m, s := cfg.Workflow, cfg.Matrices, cfg.Schedule
	if w == nil || m == nil {
		return nil, fmt.Errorf("sim: nil workflow or matrices")
	}
	if err := w.ValidateSchedule(s, len(m.Catalog)); err != nil {
		return nil, err
	}
	if cfg.BootTime < 0 || math.IsNaN(cfg.BootTime) {
		return nil, fmt.Errorf("sim: invalid boot time %v", cfg.BootTime)
	}
	g := w.Graph()
	n := w.NumModules()
	times := m.Times(s)

	// vmOf maps module -> VM instance; vmType maps instance -> type.
	var vmOf []int
	var vmMods [][]int
	if cfg.Reuse != nil {
		vmOf = cfg.Reuse.VMOf
		vmMods = cfg.Reuse.ModulesOf
	} else {
		vmOf = make([]int, n)
		for i := range vmOf {
			vmOf[i] = -1
		}
		for _, i := range w.Schedulable() {
			vmOf[i] = len(vmMods)
			vmMods = append(vmMods, []int{i})
		}
	}

	res := &Result{
		Modules: make([]ModuleTrace, n),
		VMs:     make([]VMTrace, len(vmMods)),
	}
	for i := range res.Modules {
		res.Modules[i] = ModuleTrace{Ready: -1, Start: -1, Finish: -1, VM: vmOf[i]}
	}
	for v := range res.VMs {
		first := vmMods[v][0]
		res.VMs[v] = VMTrace{Type: s[first], BootAt: -1, ReadyAt: -1, StoppedAt: -1}
	}

	var sm Simulation
	pendingIn := make([]int, n) // unarrived inputs per module
	for i := 0; i < n; i++ {
		pendingIn[i] = g.InDegree(i)
	}
	vmNext := make([]int, len(vmMods))  // next position in vmMods[v]
	vmFree := make([]bool, len(vmMods)) // VM idle and booted
	done := 0

	var onReady func(i int)
	var tryStart func(v int)
	var onFinish func(i int)

	// startModule begins execution of module i now.
	startModule := func(i int) {
		res.Modules[i].Start = sm.Now()
		d := times[i]
		if err := sm.Schedule(d, func() { onFinish(i) }); err != nil {
			panic(err) // times validated non-negative by matrices
		}
	}

	// tryStart dispatches the next planned module on VM v if it is
	// booted, idle, and that module's inputs have arrived. Reused VMs
	// run their modules in plan order (EST order), which is compatible
	// with precedence by construction of the reuse plan.
	tryStart = func(v int) {
		if !vmFree[v] || vmNext[v] >= len(vmMods[v]) {
			return
		}
		i := vmMods[v][vmNext[v]]
		if res.Modules[i].Ready < 0 {
			return // inputs not yet arrived
		}
		vmFree[v] = false
		vmNext[v]++
		res.VMs[v].Modules = append(res.VMs[v].Modules, i)
		startModule(i)
	}

	// onReady fires when all inputs of module i have arrived.
	onReady = func(i int) {
		res.Modules[i].Ready = sm.Now()
		if w.Module(i).Fixed {
			// Fixed entry/exit modules run outside any VM.
			startModule(i)
			return
		}
		v := vmOf[i]
		if res.VMs[v].BootAt < 0 {
			// Just-in-time provisioning: first demand boots the VM.
			res.VMs[v].BootAt = sm.Now()
			if err := sm.Schedule(cfg.BootTime, func() {
				res.VMs[v].ReadyAt = sm.Now()
				vmFree[v] = true
				tryStart(v)
			}); err != nil {
				panic(err) // BootTime validated above
			}
			return
		}
		tryStart(v)
	}

	transferTime := func(u, v int) float64 {
		if cfg.Bandwidth <= 0 {
			return 0
		}
		ds := w.DataSize(u, v)
		if ds == 0 {
			return 0
		}
		return ds/cfg.Bandwidth + cfg.Delay
	}

	// Transfer channel manager: zero-duration transfers bypass it;
	// others occupy one of TransferSlots (unlimited when 0), queueing
	// FIFO while the storage fabric is saturated.
	xferBusy := 0
	var xferQueue []func()
	var startTransfer func(duration float64, done func())
	startTransfer = func(duration float64, done func()) {
		if duration <= 0 || cfg.TransferSlots <= 0 {
			if err := sm.Schedule(duration, done); err != nil {
				panic(err) // durations validated non-negative
			}
			return
		}
		if xferBusy >= cfg.TransferSlots {
			xferQueue = append(xferQueue, func() { startTransfer(duration, done) })
			return
		}
		xferBusy++
		if err := sm.Schedule(duration, func() {
			xferBusy--
			done()
			if len(xferQueue) > 0 && xferBusy < cfg.TransferSlots {
				next := xferQueue[0]
				xferQueue = xferQueue[1:]
				next()
			}
		}); err != nil {
			panic(err)
		}
	}

	onFinish = func(i int) {
		res.Modules[i].Finish = sm.Now()
		if sm.Now() > res.Makespan {
			res.Makespan = sm.Now()
		}
		done++
		if !w.Module(i).Fixed {
			v := vmOf[i]
			vmFree[v] = true
			if vmNext[v] >= len(vmMods[v]) {
				// Last planned module done: terminate and bill.
				res.VMs[v].StoppedAt = sm.Now()
				occ := sm.Now() - res.VMs[v].BootAt
				res.VMs[v].Cost = m.Billing.BilledTime(occ) * m.Catalog[res.VMs[v].Type].Rate
				res.Cost += res.VMs[v].Cost
			} else {
				tryStart(v)
			}
		}
		// Output transfers release successors.
		for _, succ := range g.Succ(i) {
			succ := succ
			startTransfer(transferTime(i, succ), func() {
				pendingIn[succ]--
				if pendingIn[succ] == 0 {
					onReady(succ)
				}
			})
		}
	}

	// Kick off the sources.
	for i := 0; i < n; i++ {
		if g.InDegree(i) == 0 {
			i := i
			if err := sm.Schedule(0, func() { onReady(i) }); err != nil {
				return nil, err
			}
		}
	}
	if _, err := sm.Run(0); err != nil {
		return nil, err
	}
	if done != n {
		return nil, fmt.Errorf("sim: deadlock — %d of %d modules completed", done, n)
	}
	res.Events = sm.Processed()
	return res, nil
}
