package sim

import (
	"medcc/internal/workflow"
)

// Config describes one simulated execution of a scheduled workflow.
type Config struct {
	// Workflow, Matrices and Schedule define what runs where; the
	// schedule must be valid for the matrices' catalog.
	Workflow *workflow.Workflow
	Matrices *workflow.Matrices
	Schedule workflow.Schedule

	// BootTime is the VM startup latency T(I_j), applied between a
	// VM's just-in-time provisioning and its first module start.
	BootTime float64

	// Reuse optionally packs modules onto shared VM instances (from
	// workflow.PlanReuse). Nil provisions one VM per schedulable
	// module, the paper's one-to-one mapping baseline.
	Reuse *workflow.ReusePlan

	// Bandwidth and Delay model shared-storage data transfers: each
	// dependency edge moves DataSize units at Bandwidth plus Delay.
	// Bandwidth <= 0 means transfers are free (intra-datacenter model).
	Bandwidth, Delay float64

	// TransferSlots bounds concurrent data transfers through the
	// shared storage (its ingest channels); 0 means unlimited. Excess
	// transfers queue FIFO, modeling storage contention on wide
	// fan-outs.
	TransferSlots int
}

// ModuleTrace records one module's simulated lifecycle.
type ModuleTrace struct {
	Ready  float64 // all inputs arrived
	Start  float64 // execution began (VM ready and free)
	Finish float64 // execution ended
	VM     int     // VM instance index (-1 for fixed modules)
}

// VMTrace records one VM instance's lifecycle and bill.
type VMTrace struct {
	Type      int     // catalog index
	BootAt    float64 // provisioning request time
	ReadyAt   float64 // boot completed
	StoppedAt float64 // terminated after its last module
	Cost      float64 // billed under the matrices' billing policy
	Modules   []int   // executed modules in order
}

// Result is the outcome of one simulated run.
type Result struct {
	Makespan float64
	Cost     float64
	Modules  []ModuleTrace
	VMs      []VMTrace
	Events   int64
}

// CopyFrom deep-copies src into dst, reusing dst's slices (self-append
// growth to the high-water mark), so steady-state copies of same-shaped
// runs allocate nothing. It is how batch consumers keep a trace past
// the owning Replayer's next Run.
//
// medcc:allocfree
func (dst *Result) CopyFrom(src *Result) {
	dst.Makespan = src.Makespan
	dst.Cost = src.Cost
	dst.Events = src.Events
	dst.Modules = append(dst.Modules[:0], src.Modules...)
	dst.VMs = growVMTraces(dst.VMs, len(src.VMs))
	for i := range src.VMs {
		d, s := &dst.VMs[i], &src.VMs[i]
		d.Type, d.BootAt, d.ReadyAt = s.Type, s.BootAt, s.ReadyAt
		d.StoppedAt, d.Cost = s.StoppedAt, s.Cost
		d.Modules = append(d.Modules[:0], s.Modules...)
	}
}

// Run simulates the configured execution and returns its trace. It is a
// thin compatibility wrapper dedicating a fresh Replayer to the call, so
// the returned Result is owned by the caller; replay loops that care
// about allocation should hold a Replayer (or use ValidateBatch) instead.
func Run(cfg Config) (*Result, error) {
	var r Replayer
	return r.Run(cfg)
}
