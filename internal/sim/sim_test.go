package sim

import (
	"math"
	"testing"
)

func TestSimulationOrdersEvents(t *testing.T) {
	var s Simulation
	var order []int
	mustSchedule(t, &s, 3, func() { order = append(order, 3) })
	mustSchedule(t, &s, 1, func() { order = append(order, 1) })
	mustSchedule(t, &s, 2, func() { order = append(order, 2) })
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 3 {
		t.Fatalf("end time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func mustSchedule(t *testing.T, s *Simulation, d float64, fn func()) {
	t.Helper()
	if err := s.Schedule(d, fn); err != nil {
		t.Fatal(err)
	}
}

func TestSimulationFIFOAmongSimultaneous(t *testing.T) {
	var s Simulation
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		mustSchedule(t, &s, 1, func() { order = append(order, i) })
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestSimulationNestedScheduling(t *testing.T) {
	var s Simulation
	var hits []float64
	mustSchedule(t, &s, 1, func() {
		hits = append(hits, s.Now())
		mustSchedule(t, &s, 1.5, func() { hits = append(hits, s.Now()) })
	})
	end, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 2.5 || len(hits) != 2 || hits[1] != 2.5 {
		t.Fatalf("end=%v hits=%v", end, hits)
	}
}

func TestSimulationRejectsBadDelay(t *testing.T) {
	var s Simulation
	for _, d := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := s.Schedule(d, func() {}); err == nil {
			t.Errorf("delay %v accepted", d)
		}
	}
}

func TestSimulationEventBudget(t *testing.T) {
	var s Simulation
	var loop func()
	loop = func() { _ = s.Schedule(1, loop) }
	mustSchedule(t, &s, 0, loop)
	if _, err := s.Run(100); err == nil {
		t.Fatal("runaway loop not caught")
	}
	if s.Processed() != 100 {
		t.Fatalf("processed = %d", s.Processed())
	}
}

func TestSimulationEmptyRun(t *testing.T) {
	var s Simulation
	end, err := s.Run(0)
	if err != nil || end != 0 {
		t.Fatalf("empty run: %v, %v", end, err)
	}
}
