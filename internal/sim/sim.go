// Package sim is a discrete-event cloud workflow simulator — the
// stdlib-only stand-in for CloudSim that the paper extended for its
// evaluation (§VI-A). It replays a schedule event by event: just-in-time
// VM provisioning with boot latency, precedence-gated module execution,
// shared-storage data transfers, VM reuse, and a billing meter. Its
// makespan and billed cost are computed independently of the analytic
// model in package workflow, so agreement between the two validates both
// (DESIGN.md experiment A2).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// event is one scheduled callback.
type event struct {
	time float64
	seq  int64 // tie-breaker: FIFO among simultaneous events
	fn   func()
}

type eventPQ []*event

func (q eventPQ) Len() int { return len(q) }

// medcc:floateq-exact — (time, seq) ordering must be bit-exact; epsilon
// would reorder simultaneous events and change traces.
func (q eventPQ) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventPQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventPQ) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventPQ) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Simulation is a virtual clock with an event heap. The zero value is
// ready to use at time 0.
type Simulation struct {
	now       float64
	pq        eventPQ
	seq       int64
	processed int64
}

// Now returns the current virtual time.
func (s *Simulation) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulation) Processed() int64 { return s.processed }

// Schedule enqueues fn after the given non-negative delay.
func (s *Simulation) Schedule(delay float64, fn func()) error {
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return fmt.Errorf("sim: invalid delay %v", delay)
	}
	s.seq++
	heap.Push(&s.pq, &event{time: s.now + delay, seq: s.seq, fn: fn})
	return nil
}

// Run processes events until the queue drains, returning the final time.
// maxEvents guards against runaway event loops; 0 means 10 million.
func (s *Simulation) Run(maxEvents int64) (float64, error) {
	if maxEvents == 0 {
		maxEvents = 10_000_000
	}
	for s.pq.Len() > 0 {
		if s.processed >= maxEvents {
			return s.now, fmt.Errorf("sim: event budget %d exhausted at t=%v", maxEvents, s.now)
		}
		e := heap.Pop(&s.pq).(*event)
		if e.time < s.now {
			return s.now, fmt.Errorf("sim: time went backwards: %v -> %v", s.now, e.time)
		}
		s.now = e.time
		s.processed++
		e.fn()
	}
	return s.now, nil
}
