package sim

import (
	"fmt"
	"io"
	"strings"
)

// RenderGantt draws the run as a fixed-width ASCII Gantt chart, one row
// per module, time flowing left to right across `width` columns. Ready
// time appears as dots (waiting for inputs or a VM), execution as '#'.
// Rows carry the module name and its VM instance, so reuse chains are
// visible as stacked rows sharing a VM id.
func (r *Result) RenderGantt(w io.Writer, names []string, width int) error {
	if width < 10 {
		width = 10
	}
	if r.Makespan <= 0 {
		_, err := fmt.Fprintln(w, "(empty run)")
		return err
	}
	scale := float64(width) / r.Makespan
	col := func(t float64) int {
		c := int(t * scale)
		if c > width {
			c = width
		}
		return c
	}
	row := make([]byte, width)
	for i, tr := range r.Modules {
		name := fmt.Sprintf("m%d", i)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		vm := "-"
		if tr.VM >= 0 {
			vm = fmt.Sprintf("vm%d", tr.VM)
		}
		for k := range row {
			row[k] = ' '
		}
		readyCol, startCol, endCol := col(tr.Ready), col(tr.Start), col(tr.Finish)
		for k := readyCol; k < startCol && k < width; k++ {
			row[k] = '.'
		}
		for k := startCol; k < endCol && k < width; k++ {
			row[k] = '#'
		}
		// A zero-width execution still deserves one mark.
		if startCol == endCol && startCol < width && tr.Finish >= tr.Start {
			row[startCol] = '#'
		}
		if _, err := fmt.Fprintf(w, "%-14s %-5s |%s| %8.2f..%-8.2f\n",
			truncate(name, 14), vm, string(row), tr.Start, tr.Finish); err != nil {
			return err
		}
	}
	ruler := strings.Repeat("-", width)
	_, err := fmt.Fprintf(w, "%-14s %-5s |%s| makespan %.2f, cost %.2f\n", "", "", ruler, r.Makespan, r.Cost)
	return err
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "~"
}
