package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchResult summarizes one replayed configuration: the scalar outcomes
// of the run, without the per-module trace (which lives in the worker's
// pooled buffers and is recycled between configurations).
type BatchResult struct {
	Makespan float64
	Cost     float64
	Events   int64
}

// ValidateBatch replays every configuration and returns one summary per
// config, in input order. The work is sharded across up to GOMAXPROCS
// workers, each owning one pooled Replayer, so a campaign replaying
// thousands of schedules costs a handful of allocations per worker
// rather than per run — the simulation-side counterpart of the exper
// package's parallel scheduling campaigns.
//
// Configs may freely share workflows, matrices, and schedules: replay
// only reads them, and each worker keeps its mutable state private.
// ValidateBatch itself is safe to call from multiple goroutines
// concurrently. The first error (by config index) is returned, with the
// index identified; results are undefined in that case.
func ValidateBatch(cfgs []Config) ([]BatchResult, error) {
	return ValidateBatchInto(nil, cfgs)
}

// ValidateBatchInto is ValidateBatch with a reusable destination slice,
// for callers cycling campaigns through one results buffer.
func ValidateBatchInto(dst []BatchResult, cfgs []Config) ([]BatchResult, error) {
	n := len(cfgs)
	if cap(dst) < n {
		dst = make([]BatchResult, n)
	} else {
		dst = dst[:n]
	}
	if n == 0 {
		return dst, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, workers)
	if workers <= 1 {
		var r Replayer
		errs[0] = replayRange(&r, cfgs, dst)
	} else {
		// Work-stealing by atomic cursor: workers grab the next config
		// index as they finish, so an expensive instance does not stall a
		// statically assigned shard.
		var cursor atomic.Int64
		cursor.Store(-1)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				var r Replayer
				for {
					i := cursor.Add(1)
					if i >= int64(n) {
						return
					}
					res, err := r.Run(cfgs[i])
					if err != nil {
						errs[wk] = fmt.Errorf("sim: config %d: %w", i, err)
						return
					}
					dst[i] = BatchResult{Makespan: res.Makespan, Cost: res.Cost, Events: res.Events}
				}
			}(wk)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// replayRange drives one worker's Replayer over all of cfgs sequentially.
func replayRange(r *Replayer, cfgs []Config, dst []BatchResult) error {
	for i := range cfgs {
		res, err := r.Run(cfgs[i])
		if err != nil {
			return fmt.Errorf("sim: config %d: %w", i, err)
		}
		dst[i] = BatchResult{Makespan: res.Makespan, Cost: res.Cost, Events: res.Events}
	}
	return nil
}
