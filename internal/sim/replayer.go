package sim

import (
	"fmt"
	"math"

	"medcc/internal/workflow"
)

// Replayer is the pooled discrete-event engine behind Run: the same
// replay semantics (just-in-time provisioning with boot latency,
// precedence-gated execution, slot-limited shared-storage transfers, VM
// reuse, occupancy billing), restructured so that repeated replays reuse
// every piece of state instead of reallocating it. It mirrors the
// scheduler engine of PR 1 (sched/engine.go): bind once per (workflow,
// matrices) pair, then replay schedule after schedule at zero
// steady-state heap allocations.
//
// Mechanically, the closure-per-event queue of Simulation is replaced by
// a flat binary heap of small typed event records (kind + argument), the
// per-run maps and trace slices by preallocated arrays sized to the
// workflow, and the per-VM executed-module lists by spans carved from one
// flat arena. The transfer waiting line is an in-place FIFO ring.
//
// The *Result returned by Run aliases the Replayer's internal buffers: it
// is valid until the next Run call on the same Replayer. Callers that
// need the trace beyond that must copy it (or use the package-level Run,
// which dedicates a Replayer to the call). A Replayer is not safe for
// concurrent use; give each goroutine its own (see ValidateBatch).
//
// medcc:scratch
type Replayer struct {
	// Bound instance key. Versions detect in-place rebuilds of the same
	// pointers by pooled generators (see dag.Graph.Version).
	w          *workflow.Workflow
	m          *workflow.Matrices
	wver, mver uint64

	// Default one-VM-per-module plan for the bound workflow, rebuilt on
	// bind: defMods' inner slices are spans of defModsBuf.
	defVMOf    []int
	defMods    [][]int
	defModsBuf []int

	// Event heap ordered by (time, seq): seq preserves FIFO order among
	// simultaneous events, exactly like Simulation's tie-breaker.
	heap      []event2
	seq       int64
	processed int64
	now       float64

	// Per-run flat state, sized to the workflow / VM plan on each Run.
	times     []float64
	pendingIn []int32
	vmNext    []int32
	vmFree    []bool
	vmModsBuf []int // arena behind res.VMs[v].Modules

	// Transfer slot manager: busy counts in-flight slotted transfers,
	// queue is a FIFO ring of waiting transfers.
	xferBusy int
	xferQ    []xferItem
	xferHead int

	// Per-run config mirror (the fields the event handlers need).
	vmOf      []int
	vmMods    [][]int
	bandwidth float64
	delay     float64
	boot      float64
	slots     int
	done      int
	runErr    error

	res Result
}

// event2 is one pending typed event. 24 bytes, stored by value in the
// heap: pushing and popping moves records, never pointers, so the queue
// costs zero allocations once its backing array has grown to the
// high-water mark.
type event2 struct {
	time float64
	seq  int64
	kind evKind
	arg  int32
}

type evKind uint8

const (
	evReady    evKind = iota // arg: module whose inputs are all present
	evFinish                 // arg: module completing execution
	evBootDone               // arg: VM finishing its boot
	evXferFree               // arg: destination module of an unslotted transfer
	evXferSlot               // arg: destination module of a slot-occupying transfer
)

// xferItem is one transfer waiting for a storage slot.
type xferItem struct {
	dur  float64
	succ int32
}

// bind points the replayer at a (workflow, matrices) pair, rebuilding the
// default VM plan and module-sized state only when the pair (or its
// contents, per version counters) changed since the last call.
//
// medcc:coldpath — (re)binding allocates the plan; steady-state calls take
// the early return.
func (r *Replayer) bind(w *workflow.Workflow, m *workflow.Matrices) {
	if r.w == w && r.m == m &&
		r.wver == w.Graph().Version() && r.mver == m.Epoch() {
		return
	}
	r.w, r.m = w, m
	r.wver, r.mver = w.Graph().Version(), m.Epoch()

	n := w.NumModules()
	r.defVMOf = growInts(r.defVMOf, n)
	r.defModsBuf = growInts(r.defModsBuf, n)
	if cap(r.defMods) < n {
		r.defMods = make([][]int, 0, n)
	}
	r.defMods = r.defMods[:0]
	for i := range r.defVMOf {
		r.defVMOf[i] = -1
	}
	used := 0
	for i := 0; i < n; i++ {
		if w.Module(i).Fixed {
			continue
		}
		r.defVMOf[i] = len(r.defMods)
		span := r.defModsBuf[used : used+1 : used+1]
		span[0] = i
		used++
		r.defMods = append(r.defMods, span)
	}

	r.times = growFloats(r.times, n)
	r.pendingIn = growInt32s(r.pendingIn, n)
	r.res.Modules = growModuleTraces(r.res.Modules, n)
}

// RunInto replays cfg and deep-copies the trace into dst — the batch
// entry point for callers (serving workers, parallel campaigns) that
// must hold a result past this Replayer's next Run.
//
// medcc:allocfree
// medcc:deterministic
func (r *Replayer) RunInto(cfg Config, dst *Result) error {
	res, err := r.Run(cfg)
	if err != nil {
		return err
	}
	dst.CopyFrom(res)
	return nil
}

// Run replays cfg.Schedule on the bound (or newly bound) instance and
// returns its trace. The result is reused: it remains valid only until
// the next Run on this Replayer.
//
// medcc:allocfree
// medcc:deterministic — traces are differential-tested against the
// analytic timing, so the event loop must replay bit-identically
func (r *Replayer) Run(cfg Config) (*Result, error) {
	w, m, s := cfg.Workflow, cfg.Matrices, cfg.Schedule
	if w == nil || m == nil {
		return nil, fmt.Errorf("sim: nil workflow or matrices")
	}
	if err := w.ValidateSchedule(s, len(m.Catalog)); err != nil {
		return nil, err
	}
	if cfg.BootTime < 0 || math.IsNaN(cfg.BootTime) {
		return nil, fmt.Errorf("sim: invalid boot time %v", cfg.BootTime)
	}
	if cfg.Bandwidth > 0 && (math.IsNaN(cfg.Delay) || cfg.Delay < 0) {
		return nil, fmt.Errorf("sim: invalid transfer delay %v", cfg.Delay)
	}
	r.bind(w, m)
	g := w.Graph()
	n := w.NumModules()
	r.times = m.TimesInto(s, r.times)

	if cfg.Reuse != nil {
		r.vmOf = cfg.Reuse.VMOf
		r.vmMods = cfg.Reuse.ModulesOf
	} else {
		r.vmOf = r.defVMOf
		r.vmMods = r.defMods
	}
	nv := len(r.vmMods)

	// Reset traces. Per-VM executed-module lists are spans of one arena
	// with capacity equal to the planned module count, so the appends in
	// tryStart never grow them.
	res := &r.res
	res.Makespan, res.Cost, res.Events = 0, 0, 0
	res.Modules = growModuleTraces(res.Modules, n)
	for i := 0; i < n; i++ {
		res.Modules[i] = ModuleTrace{Ready: -1, Start: -1, Finish: -1, VM: r.vmOf[i]}
	}
	res.VMs = growVMTraces(res.VMs, nv)
	planned := 0
	for v := 0; v < nv; v++ {
		planned += len(r.vmMods[v])
	}
	r.vmModsBuf = growInts(r.vmModsBuf, planned)
	off := 0
	for v := 0; v < nv; v++ {
		k := len(r.vmMods[v])
		res.VMs[v] = VMTrace{
			Type: s[r.vmMods[v][0]], BootAt: -1, ReadyAt: -1, StoppedAt: -1,
			Modules: r.vmModsBuf[off : off : off+k],
		}
		off += k
	}

	r.vmNext = growInt32s(r.vmNext, nv)
	r.vmFree = growBools(r.vmFree, nv)
	for v := 0; v < nv; v++ {
		r.vmNext[v] = 0
		r.vmFree[v] = false
	}
	for i := 0; i < n; i++ {
		r.pendingIn[i] = int32(g.InDegree(i))
	}
	r.heap = r.heap[:0]
	r.seq = 0
	r.processed = 0
	r.now = 0
	r.xferBusy = 0
	r.xferQ = r.xferQ[:0]
	r.xferHead = 0
	r.bandwidth, r.delay, r.boot = cfg.Bandwidth, cfg.Delay, cfg.BootTime
	r.slots = cfg.TransferSlots
	r.done = 0
	r.runErr = nil

	// Kick off the sources, in module index order like Run always has.
	for i := 0; i < n; i++ {
		if g.InDegree(i) == 0 {
			r.schedule(0, evReady, int32(i))
		}
	}

	// Event loop. maxEvents mirrors Simulation.Run's runaway guard.
	const maxEvents = 10_000_000
	for len(r.heap) > 0 {
		if r.runErr != nil {
			return nil, r.runErr
		}
		if r.processed >= maxEvents {
			return nil, fmt.Errorf("sim: event budget %d exhausted at t=%v", int64(maxEvents), r.now)
		}
		e := r.pop()
		if e.time < r.now {
			return nil, fmt.Errorf("sim: time went backwards: %v -> %v", r.now, e.time)
		}
		r.now = e.time
		r.processed++
		switch e.kind {
		case evReady:
			r.onReady(int(e.arg))
		case evFinish:
			r.onFinish(int(e.arg))
		case evBootDone:
			v := int(e.arg)
			res.VMs[v].ReadyAt = r.now
			r.vmFree[v] = true
			r.tryStart(v)
		case evXferFree:
			r.arrive(int(e.arg))
		case evXferSlot:
			r.xferBusy--
			r.arrive(int(e.arg))
			if r.xferHead < len(r.xferQ) && r.xferBusy < r.slots {
				next := r.xferQ[r.xferHead]
				r.xferHead++
				if r.xferHead == len(r.xferQ) {
					r.xferQ = r.xferQ[:0]
					r.xferHead = 0
				}
				r.startTransfer(next.dur, next.succ)
			}
		}
	}
	if r.runErr != nil {
		return nil, r.runErr
	}
	if r.done != n {
		return nil, fmt.Errorf("sim: deadlock — %d of %d modules completed", r.done, n)
	}
	res.Events = r.processed
	return res, nil
}

// schedule pushes a typed event after the given delay. Invalid delays
// (negative, NaN, infinite) abort the run via runErr; they can only arise
// from invalid Config numbers that escaped the up-front validation.
func (r *Replayer) schedule(delay float64, kind evKind, arg int32) {
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		if r.runErr == nil {
			// medcc:lint-ignore allocfree — formatting the abort error ends the replay; never reached on valid configs.
			r.runErr = fmt.Errorf("sim: invalid delay %v", delay)
		}
		return
	}
	r.seq++
	r.push(event2{time: r.now + delay, seq: r.seq, kind: kind, arg: arg})
}

// onReady fires when all inputs of module i have arrived.
func (r *Replayer) onReady(i int) {
	r.res.Modules[i].Ready = r.now
	if r.w.Module(i).Fixed {
		// Fixed entry/exit modules run outside any VM.
		r.startModule(i)
		return
	}
	v := r.vmOf[i]
	if r.res.VMs[v].BootAt < 0 {
		// Just-in-time provisioning: first demand boots the VM.
		r.res.VMs[v].BootAt = r.now
		r.schedule(r.boot, evBootDone, int32(v))
		return
	}
	r.tryStart(v)
}

// startModule begins execution of module i now.
func (r *Replayer) startModule(i int) {
	r.res.Modules[i].Start = r.now
	r.schedule(r.times[i], evFinish, int32(i))
}

// tryStart dispatches the next planned module on VM v if it is booted,
// idle, and that module's inputs have arrived. Reused VMs run their
// modules in plan order (EST order), which is compatible with precedence
// by construction of the reuse plan.
func (r *Replayer) tryStart(v int) {
	if !r.vmFree[v] || int(r.vmNext[v]) >= len(r.vmMods[v]) {
		return
	}
	i := r.vmMods[v][r.vmNext[v]]
	if r.res.Modules[i].Ready < 0 {
		return // inputs not yet arrived
	}
	r.vmFree[v] = false
	r.vmNext[v]++
	r.res.VMs[v].Modules = append(r.res.VMs[v].Modules, i)
	r.startModule(i)
}

// onFinish handles module i completing execution.
func (r *Replayer) onFinish(i int) {
	res := &r.res
	res.Modules[i].Finish = r.now
	if r.now > res.Makespan {
		res.Makespan = r.now
	}
	r.done++
	if !r.w.Module(i).Fixed {
		v := r.vmOf[i]
		r.vmFree[v] = true
		if int(r.vmNext[v]) >= len(r.vmMods[v]) {
			// Last planned module done: terminate and bill.
			res.VMs[v].StoppedAt = r.now
			occ := r.now - res.VMs[v].BootAt
			res.VMs[v].Cost = r.m.Billing.BilledTime(occ) * r.m.Catalog[res.VMs[v].Type].Rate
			res.Cost += res.VMs[v].Cost
		} else {
			r.tryStart(v)
		}
	}
	// Output transfers release successors.
	for _, succ := range r.w.Graph().Succ(i) {
		r.startTransfer(r.transferTime(i, succ), int32(succ))
	}
}

// transferTime is the shared-storage transfer duration of edge u -> v.
func (r *Replayer) transferTime(u, v int) float64 {
	if r.bandwidth <= 0 {
		return 0
	}
	ds := r.w.DataSize(u, v)
	if ds == 0 {
		return 0
	}
	return ds/r.bandwidth + r.delay
}

// startTransfer begins (or queues) the transfer releasing module succ:
// zero-duration transfers bypass the slot manager; others occupy one of
// TransferSlots (unlimited when 0), queueing FIFO while the storage
// fabric is saturated.
func (r *Replayer) startTransfer(duration float64, succ int32) {
	if duration <= 0 || r.slots <= 0 {
		r.schedule(duration, evXferFree, succ)
		return
	}
	if r.xferBusy >= r.slots {
		r.xferQ = append(r.xferQ, xferItem{dur: duration, succ: succ})
		return
	}
	r.xferBusy++
	r.schedule(duration, evXferSlot, succ)
}

// arrive delivers one input to module succ, releasing it when it was the
// last one outstanding.
func (r *Replayer) arrive(succ int) {
	r.pendingIn[succ]--
	if r.pendingIn[succ] == 0 {
		r.onReady(succ)
	}
}

// --- event heap (binary min-heap by (time, seq), records by value) ---

func (r *Replayer) push(e event2) {
	r.heap = append(r.heap, e)
	// Sift up.
	h := r.heap
	c := len(h) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !eventLess(h[c], h[p]) {
			break
		}
		h[c], h[p] = h[p], h[c]
		c = p
	}
}

func (r *Replayer) pop() event2 {
	h := r.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	r.heap = h[:last]
	h = r.heap
	// Sift down.
	p := 0
	for {
		c := 2*p + 1
		if c >= last {
			break
		}
		if c+1 < last && eventLess(h[c+1], h[c]) {
			c++
		}
		if !eventLess(h[c], h[p]) {
			break
		}
		h[p], h[c] = h[c], h[p]
		p = c
	}
	return top
}

// medcc:floateq-exact — heap ordering must match Simulation's (time, seq)
// tie-break bit for bit; epsilon would reorder simultaneous events.
func eventLess(a, b event2) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// --- sized-scratch helpers ---
//
// Each grows its slice to the high-water mark once and reslices afterwards.

// medcc:coldpath — first-use growth.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// medcc:coldpath — first-use growth.
func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// medcc:coldpath — first-use growth.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// medcc:coldpath — first-use growth.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// medcc:coldpath — first-use growth.
func growModuleTraces(s []ModuleTrace, n int) []ModuleTrace {
	if cap(s) < n {
		return make([]ModuleTrace, n)
	}
	return s[:n]
}

// medcc:coldpath — first-use growth.
func growVMTraces(s []VMTrace, n int) []VMTrace {
	if cap(s) < n {
		return make([]VMTrace, n)
	}
	return s[:n]
}
