package sim

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	cfg, _ := paperConfig(t, 57)
	cfg.BootTime = 0.25
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, cfg.Workflow.NumModules())
	for i := range names {
		names[i] = cfg.Workflow.Module(i).Name
	}
	var sb strings.Builder
	if err := res.WriteChromeTrace(&sb, names); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
		OtherData map[string]float64 `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData["makespan"] != res.Makespan {
		t.Fatalf("makespan metadata %v", doc.OtherData["makespan"])
	}
	// 8 module events + 6 boot events (one per VM) + wait slices.
	modules, boots := 0, 0
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			t.Fatalf("unexpected phase %q", e.Phase)
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Fatalf("negative timestamps in %+v", e)
		}
		switch {
		case strings.HasPrefix(e.Name, "boot"):
			boots++
		case strings.HasSuffix(e.Name, "wait"):
		default:
			modules++
		}
	}
	if modules != 8 {
		t.Fatalf("%d module events, want 8", modules)
	}
	if boots != 6 {
		t.Fatalf("%d boot events, want 6", boots)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var sb strings.Builder
	if err := (&Result{}).WriteChromeTrace(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Fatal("missing traceEvents key")
	}
}
