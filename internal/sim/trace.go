package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one record of the Chrome trace-event format ("Trace Event
// Format", the JSON consumed by chrome://tracing and Perfetto). Durations
// are in microseconds; we map one workflow time unit to one second.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// timeUnitMicros maps one workflow time unit onto the trace timeline.
const timeUnitMicros = 1e6

// WriteChromeTrace exports the run in Chrome trace-event JSON: one track
// (tid) per VM instance plus a track for fixed modules, with complete
// ("X") events for executions and boot phases. Load the file in
// chrome://tracing or https://ui.perfetto.dev to inspect the run.
func (r *Result) WriteChromeTrace(w io.Writer, names []string) error {
	// Worst case: one boot event per VM plus an execution and a wait
	// event per module.
	events := make([]chromeEvent, 0, len(r.VMs)+2*len(r.Modules))
	name := func(i int) string {
		if i < len(names) && names[i] != "" {
			return names[i]
		}
		return fmt.Sprintf("module %d", i)
	}
	const fixedTrack = 0 // VM v maps to tid v+1
	for v, vm := range r.VMs {
		if vm.BootAt >= 0 && vm.ReadyAt > vm.BootAt {
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("boot vm%d", v), Cat: "vm", Phase: "X",
				TS: vm.BootAt * timeUnitMicros, Dur: (vm.ReadyAt - vm.BootAt) * timeUnitMicros,
				PID: 1, TID: v + 1,
				Args: map[string]any{"type": vm.Type},
			})
		}
	}
	for i, tr := range r.Modules {
		if tr.Start < 0 {
			continue
		}
		tid := fixedTrack
		if tr.VM >= 0 {
			tid = tr.VM + 1
		}
		events = append(events, chromeEvent{
			Name: name(i), Cat: "module", Phase: "X",
			TS: tr.Start * timeUnitMicros, Dur: (tr.Finish - tr.Start) * timeUnitMicros,
			PID: 1, TID: tid,
			Args: map[string]any{"ready": tr.Ready, "vm": tr.VM},
		})
		if tr.Ready >= 0 && tr.Start > tr.Ready {
			events = append(events, chromeEvent{
				Name: name(i) + " wait", Cat: "wait", Phase: "X",
				TS: tr.Ready * timeUnitMicros, Dur: (tr.Start - tr.Ready) * timeUnitMicros,
				PID: 1, TID: tid,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData":       map[string]any{"makespan": r.Makespan, "cost": r.Cost},
	})
}
