package sim

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

func TestTimeSharedMatchesSpaceSharedWithoutReuse(t *testing.T) {
	// One module per VM: processor sharing never kicks in, so both
	// engines and the analytic model agree exactly.
	cfg, want := paperConfig(t, 57)
	got, err := RunTimeShared(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Makespan-want.MED) > 1e-9 || math.Abs(got.Cost-want.Cost) > 1e-9 {
		t.Fatalf("time-shared %v/%v vs analytic %v/%v", got.Makespan, got.Cost, want.MED, want.Cost)
	}
}

func TestTimeSharedProcessorSharingSlowsCoScheduled(t *testing.T) {
	// Two independent equal modules forced onto one VM: under
	// processor sharing both finish at 2T instead of T and 2T.
	w := workflow.New()
	w.AddModule(workflow.Module{Name: "a", Workload: 10})
	w.AddModule(workflow.Module{Name: "b", Workload: 10})
	cat := cloud.Catalog{{Name: "x", Power: 10, Rate: 1}}
	m, _ := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	s := workflow.Schedule{0, 0}
	plan := &workflow.ReusePlan{
		VMOf:      []int{0, 0},
		TypeOf:    []int{0},
		ModulesOf: [][]int{{0, 1}},
	}
	res, err := RunTimeShared(Config{Workflow: w, Matrices: m, Schedule: s, Reuse: plan})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Modules[0].Finish-2) > 1e-9 || math.Abs(res.Modules[1].Finish-2) > 1e-9 {
		t.Fatalf("co-scheduled finishes %v/%v, want 2/2", res.Modules[0].Finish, res.Modules[1].Finish)
	}
	// Space-shared on the same plan serializes: 1 then 2, same makespan.
	sp, err := Run(Config{Workflow: w, Matrices: m, Schedule: s, Reuse: plan})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Makespan-res.Makespan) > 1e-9 {
		t.Fatalf("makespans differ: space %v vs time %v", sp.Makespan, res.Makespan)
	}
	// But completion profiles differ: space-shared finishes one module
	// at t=1.
	if math.Abs(sp.Modules[0].Finish-1) > 1e-9 && math.Abs(sp.Modules[1].Finish-1) > 1e-9 {
		t.Fatal("space-shared did not serialize")
	}
}

func TestTimeSharedUnequalShares(t *testing.T) {
	// Modules of work 10 and 30 sharing a power-10 VM: the short one
	// finishes at t=2 (rate 1/2 until then), the long one at t=4
	// (remaining 2 units of time at full speed after the short leaves).
	w := workflow.New()
	w.AddModule(workflow.Module{Name: "short", Workload: 10})
	w.AddModule(workflow.Module{Name: "long", Workload: 30})
	cat := cloud.Catalog{{Name: "x", Power: 10, Rate: 1}}
	m, _ := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	plan := &workflow.ReusePlan{
		VMOf:      []int{0, 0},
		TypeOf:    []int{0},
		ModulesOf: [][]int{{0, 1}},
	}
	res, err := RunTimeShared(Config{Workflow: w, Matrices: m, Schedule: workflow.Schedule{0, 0}, Reuse: plan})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Modules[0].Finish-2) > 1e-9 {
		t.Fatalf("short finish %v, want 2", res.Modules[0].Finish)
	}
	if math.Abs(res.Modules[1].Finish-4) > 1e-9 {
		t.Fatalf("long finish %v, want 4", res.Modules[1].Finish)
	}
}

func TestTimeSharedPrecedenceAndInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 12, E: 25, N: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		res, err := sched.Run(sched.CriticalGreedy(), wf, m, (cmin+cmax)/2)
		if err != nil {
			t.Fatal(err)
		}
		ev, _ := wf.Evaluate(m, res.Schedule, nil)
		plan := wf.PlanReuse(res.Schedule, ev.Timing, workflow.ReuseByInterval)
		ts, err := RunTimeShared(Config{Workflow: wf, Matrices: m, Schedule: res.Schedule, Reuse: plan})
		if err != nil {
			t.Fatal(err)
		}
		g := wf.Graph()
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.Succ(u) {
				if ts.Modules[v].Start < ts.Modules[u].Finish-1e-9 {
					t.Fatalf("trial %d: precedence violated on (%d,%d)", trial, u, v)
				}
			}
		}
		// Time sharing can only delay relative to dedicated VMs.
		if ts.Makespan < res.MED-1e-9 {
			t.Fatalf("trial %d: time-shared makespan %v below dedicated %v", trial, ts.Makespan, res.MED)
		}
	}
}

func TestTimeSharedRejectsBadConfig(t *testing.T) {
	if _, err := RunTimeShared(Config{}); err == nil {
		t.Fatal("nil workflow accepted")
	}
	w, cat := workflow.PaperExample()
	m, _ := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if _, err := RunTimeShared(Config{Workflow: w, Matrices: m, Schedule: workflow.Schedule{0}}); err == nil {
		t.Fatal("short schedule accepted")
	}
}
