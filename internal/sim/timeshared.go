package sim

import (
	"fmt"
	"math"

	"medcc/internal/workflow"
)

// defaultPlan builds the dedicated-VM plan used when a Config carries no
// reuse plan: one VM per schedulable module, in module index order. The
// per-VM module lists are carved from a single arena instead of one
// allocation each.
func defaultPlan(w *workflow.Workflow) (vmOf []int, vmMods [][]int) {
	n := w.NumModules()
	vmOf = make([]int, n)
	k := 0
	for i := 0; i < n; i++ {
		if w.Module(i).Fixed {
			vmOf[i] = -1
			continue
		}
		vmOf[i] = k
		k++
	}
	arena := make([]int, k)
	vmMods = make([][]int, k)
	v := 0
	for i := 0; i < n; i++ {
		if vmOf[i] < 0 {
			continue
		}
		arena[v] = i
		vmMods[v] = arena[v : v+1 : v+1]
		v++
	}
	return vmOf, vmMods
}

// RunTimeShared replays a schedule with CloudSim's *time-shared* cloudlet
// model: when a reuse plan maps several ready modules onto one VM, they
// run concurrently and share the VM's processing power equally (processor
// sharing), instead of queueing as in the space-shared model of Run. With
// one module per VM the two models coincide.
//
// Transfers and boots are free in this mode (its purpose is isolating the
// CPU-sharing effect); billing follows the same occupancy rule as Run.
func RunTimeShared(cfg Config) (*Result, error) {
	w, m, s := cfg.Workflow, cfg.Matrices, cfg.Schedule
	if w == nil || m == nil {
		return nil, fmt.Errorf("sim: nil workflow or matrices")
	}
	if err := w.ValidateSchedule(s, len(m.Catalog)); err != nil {
		return nil, err
	}
	g := w.Graph()
	n := w.NumModules()
	times := m.Times(s)

	var vmOf []int
	var vmMods [][]int
	if cfg.Reuse != nil {
		vmOf = cfg.Reuse.VMOf
		vmMods = cfg.Reuse.ModulesOf
	} else {
		vmOf, vmMods = defaultPlan(w)
	}

	res := &Result{
		Modules: make([]ModuleTrace, n),
		VMs:     make([]VMTrace, len(vmMods)),
	}
	for i := range res.Modules {
		res.Modules[i] = ModuleTrace{Ready: -1, Start: -1, Finish: -1, VM: vmOf[i]}
	}
	for v := range res.VMs {
		res.VMs[v] = VMTrace{Type: s[vmMods[v][0]], BootAt: -1, ReadyAt: -1, StoppedAt: -1}
	}

	// Processor-sharing execution: each module has `remaining` work (in
	// time units at full speed); a VM running k modules advances each at
	// rate 1/k. Between events the rates are constant, so the next
	// completion is computable in closed form.
	remaining := make([]float64, n)
	running := make([][]int, len(vmMods)) // active modules per VM
	var fixedRunning []int                // fixed modules run at rate 1 off-VM
	pendingIn := make([]int, n)
	for i := 0; i < n; i++ {
		pendingIn[i] = g.InDegree(i)
		remaining[i] = times[i]
	}
	vmDone := make([]int, len(vmMods))
	now := 0.0
	done := 0

	activate := func(i int) {
		res.Modules[i].Ready = now
		res.Modules[i].Start = now
		if w.Module(i).Fixed {
			fixedRunning = append(fixedRunning, i)
			return
		}
		v := vmOf[i]
		if res.VMs[v].BootAt < 0 {
			res.VMs[v].BootAt = now
			res.VMs[v].ReadyAt = now
		}
		res.VMs[v].Modules = append(res.VMs[v].Modules, i)
		running[v] = append(running[v], i)
	}
	for i := 0; i < n; i++ {
		if pendingIn[i] == 0 {
			activate(i)
		}
	}

	guard := 0
	var completed []int
	for done < n {
		guard++
		if guard > 4*n+16 {
			return nil, fmt.Errorf("sim: time-shared loop did not converge (%d/%d done)", done, n)
		}
		// Find the earliest completion across VMs and fixed modules.
		dt := math.Inf(1)
		for v := range running {
			k := float64(len(running[v]))
			for _, i := range running[v] {
				if t := remaining[i] * k; t < dt {
					dt = t
				}
			}
		}
		for _, i := range fixedRunning {
			if remaining[i] < dt {
				dt = remaining[i]
			}
		}
		if math.IsInf(dt, 1) {
			return nil, fmt.Errorf("sim: deadlock with %d/%d modules done", done, n)
		}
		// Advance all work by dt of wall-clock.
		now += dt
		completed = completed[:0]
		for v := range running {
			k := float64(len(running[v]))
			next := running[v][:0]
			for _, i := range running[v] {
				remaining[i] -= dt / k
				if remaining[i] <= 1e-12 {
					completed = append(completed, i)
				} else {
					next = append(next, i)
				}
			}
			running[v] = next
		}
		nextFixed := fixedRunning[:0]
		for _, i := range fixedRunning {
			remaining[i] -= dt
			if remaining[i] <= 1e-12 {
				completed = append(completed, i)
			} else {
				nextFixed = append(nextFixed, i)
			}
		}
		fixedRunning = nextFixed

		for _, i := range completed {
			res.Modules[i].Finish = now
			if now > res.Makespan {
				res.Makespan = now
			}
			done++
			if !w.Module(i).Fixed {
				v := vmOf[i]
				vmDone[v]++
				if vmDone[v] == len(vmMods[v]) {
					res.VMs[v].StoppedAt = now
					occ := now - res.VMs[v].BootAt
					res.VMs[v].Cost = m.Billing.BilledTime(occ) * m.Catalog[res.VMs[v].Type].Rate
					res.Cost += res.VMs[v].Cost
				}
			}
			for _, succ := range g.Succ(i) {
				pendingIn[succ]--
				if pendingIn[succ] == 0 {
					activate(succ)
				}
			}
		}
	}
	return res, nil
}
