package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

// referenceRun is the pre-Replayer implementation of Run, frozen verbatim
// (closure events on the generic Simulation queue, per-run allocation of
// every piece of state). The differential tests below assert that the
// pooled Replayer reproduces its traces, bills, and makespans bit for
// bit; any intended change to replay semantics must update both copies.
func referenceRun(cfg Config) (*Result, error) {
	w, m, s := cfg.Workflow, cfg.Matrices, cfg.Schedule
	if w == nil || m == nil {
		return nil, fmt.Errorf("sim: nil workflow or matrices")
	}
	if err := w.ValidateSchedule(s, len(m.Catalog)); err != nil {
		return nil, err
	}
	if cfg.BootTime < 0 {
		return nil, fmt.Errorf("sim: invalid boot time %v", cfg.BootTime)
	}
	g := w.Graph()
	n := w.NumModules()
	times := m.Times(s)

	var vmOf []int
	var vmMods [][]int
	if cfg.Reuse != nil {
		vmOf = cfg.Reuse.VMOf
		vmMods = cfg.Reuse.ModulesOf
	} else {
		vmOf = make([]int, n)
		for i := range vmOf {
			vmOf[i] = -1
		}
		for _, i := range w.Schedulable() {
			vmOf[i] = len(vmMods)
			vmMods = append(vmMods, []int{i})
		}
	}

	res := &Result{
		Modules: make([]ModuleTrace, n),
		VMs:     make([]VMTrace, len(vmMods)),
	}
	for i := range res.Modules {
		res.Modules[i] = ModuleTrace{Ready: -1, Start: -1, Finish: -1, VM: vmOf[i]}
	}
	for v := range res.VMs {
		first := vmMods[v][0]
		res.VMs[v] = VMTrace{Type: s[first], BootAt: -1, ReadyAt: -1, StoppedAt: -1}
	}

	var sm Simulation
	pendingIn := make([]int, n)
	for i := 0; i < n; i++ {
		pendingIn[i] = g.InDegree(i)
	}
	vmNext := make([]int, len(vmMods))
	vmFree := make([]bool, len(vmMods))
	done := 0

	var onReady func(i int)
	var tryStart func(v int)
	var onFinish func(i int)

	startModule := func(i int) {
		res.Modules[i].Start = sm.Now()
		d := times[i]
		if err := sm.Schedule(d, func() { onFinish(i) }); err != nil {
			panic(err)
		}
	}

	tryStart = func(v int) {
		if !vmFree[v] || vmNext[v] >= len(vmMods[v]) {
			return
		}
		i := vmMods[v][vmNext[v]]
		if res.Modules[i].Ready < 0 {
			return
		}
		vmFree[v] = false
		vmNext[v]++
		res.VMs[v].Modules = append(res.VMs[v].Modules, i)
		startModule(i)
	}

	onReady = func(i int) {
		res.Modules[i].Ready = sm.Now()
		if w.Module(i).Fixed {
			startModule(i)
			return
		}
		v := vmOf[i]
		if res.VMs[v].BootAt < 0 {
			res.VMs[v].BootAt = sm.Now()
			if err := sm.Schedule(cfg.BootTime, func() {
				res.VMs[v].ReadyAt = sm.Now()
				vmFree[v] = true
				tryStart(v)
			}); err != nil {
				panic(err)
			}
			return
		}
		tryStart(v)
	}

	transferTime := func(u, v int) float64 {
		if cfg.Bandwidth <= 0 {
			return 0
		}
		ds := w.DataSize(u, v)
		if ds == 0 {
			return 0
		}
		return ds/cfg.Bandwidth + cfg.Delay
	}

	xferBusy := 0
	var xferQueue []func()
	var startTransfer func(duration float64, done func())
	startTransfer = func(duration float64, done func()) {
		if duration <= 0 || cfg.TransferSlots <= 0 {
			if err := sm.Schedule(duration, done); err != nil {
				panic(err)
			}
			return
		}
		if xferBusy >= cfg.TransferSlots {
			xferQueue = append(xferQueue, func() { startTransfer(duration, done) })
			return
		}
		xferBusy++
		if err := sm.Schedule(duration, func() {
			xferBusy--
			done()
			if len(xferQueue) > 0 && xferBusy < cfg.TransferSlots {
				next := xferQueue[0]
				xferQueue = xferQueue[1:]
				next()
			}
		}); err != nil {
			panic(err)
		}
	}

	onFinish = func(i int) {
		res.Modules[i].Finish = sm.Now()
		if sm.Now() > res.Makespan {
			res.Makespan = sm.Now()
		}
		done++
		if !w.Module(i).Fixed {
			v := vmOf[i]
			vmFree[v] = true
			if vmNext[v] >= len(vmMods[v]) {
				res.VMs[v].StoppedAt = sm.Now()
				occ := sm.Now() - res.VMs[v].BootAt
				res.VMs[v].Cost = m.Billing.BilledTime(occ) * m.Catalog[res.VMs[v].Type].Rate
				res.Cost += res.VMs[v].Cost
			} else {
				tryStart(v)
			}
		}
		for _, succ := range g.Succ(i) {
			succ := succ
			startTransfer(transferTime(i, succ), func() {
				pendingIn[succ]--
				if pendingIn[succ] == 0 {
					onReady(succ)
				}
			})
		}
	}

	for i := 0; i < n; i++ {
		if g.InDegree(i) == 0 {
			i := i
			if err := sm.Schedule(0, func() { onReady(i) }); err != nil {
				return nil, err
			}
		}
	}
	if _, err := sm.Run(0); err != nil {
		return nil, err
	}
	if done != n {
		return nil, fmt.Errorf("sim: deadlock — %d of %d modules completed", done, n)
	}
	res.Events = sm.Processed()
	return res, nil
}

// assertResultsIdentical compares two results field by field with exact
// (bitwise) float equality — the engines must agree to the last bit, not
// within a tolerance.
func assertResultsIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Fatalf("%s: makespan %v != %v", label, got.Makespan, want.Makespan)
	}
	if got.Cost != want.Cost {
		t.Fatalf("%s: cost %v != %v", label, got.Cost, want.Cost)
	}
	if got.Events != want.Events {
		t.Fatalf("%s: events %d != %d", label, got.Events, want.Events)
	}
	if !reflect.DeepEqual(got.Modules, want.Modules) {
		t.Fatalf("%s: module traces differ\ngot  %+v\nwant %+v", label, got.Modules, want.Modules)
	}
	if len(got.VMs) != len(want.VMs) {
		t.Fatalf("%s: %d VMs != %d", label, len(got.VMs), len(want.VMs))
	}
	for v := range got.VMs {
		gv, wv := got.VMs[v], want.VMs[v]
		// Modules is an arena span on the pooled side and a fresh slice on
		// the reference side: compare contents, then the scalar fields.
		if len(gv.Modules) != len(wv.Modules) {
			t.Fatalf("%s: VM %d ran %d modules, want %d", label, v, len(gv.Modules), len(wv.Modules))
		}
		for k := range gv.Modules {
			if gv.Modules[k] != wv.Modules[k] {
				t.Fatalf("%s: VM %d module order %v != %v", label, v, gv.Modules, wv.Modules)
			}
		}
		gv.Modules, wv.Modules = nil, nil
		if !reflect.DeepEqual(gv, wv) {
			t.Fatalf("%s: VM %d trace %+v != %+v", label, v, gv, wv)
		}
	}
}

// differentialConfigs builds a spread of heterogeneous replay configs —
// boot latencies, transfer models, slot limits, reuse plans — over one
// scheduled instance.
func differentialConfigs(t testing.TB, rng *rand.Rand, size gen.ProblemSize) []Config {
	t.Helper()
	w, cat, err := gen.Instance(rng, size)
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(w)
	res, err := sched.Run(sched.CriticalGreedy(), w, m, cmin+rng.Float64()*(cmax-cmin))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := w.Evaluate(m, res.Schedule, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := w.PlanReuse(res.Schedule, ev.Timing, workflow.ReuseByInterval)
	base := Config{Workflow: w, Matrices: m, Schedule: res.Schedule}
	variants := []Config{
		base,
		{BootTime: 0.1},
		{BootTime: 2.5},
		{Bandwidth: 50, Delay: 0.001},
		{Bandwidth: 1, Delay: 0.1, BootTime: 0.25},
		{Bandwidth: 10, TransferSlots: 1},
		{Bandwidth: 10, TransferSlots: 2, Delay: 0.01},
		{Bandwidth: 10, TransferSlots: 7, BootTime: 0.5},
		{BootTime: 0.1, Reuse: plan},
		{Bandwidth: 25, Delay: 0.002, TransferSlots: 3, BootTime: 1, Reuse: plan},
	}
	out := make([]Config, len(variants))
	for i, v := range variants {
		v.Workflow, v.Matrices, v.Schedule = w, m, res.Schedule
		out[i] = v
	}
	return out
}

// TestReplayerMatchesReferenceBitIdentical is the tentpole's correctness
// lock: across the paper's problem sizes and a spread of boot / transfer
// / slot / reuse settings, one pooled Replayer reused for every config
// must produce traces, bills, and makespans bit-identical to the frozen
// pre-refactor implementation.
func TestReplayerMatchesReferenceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var r Replayer
	for _, size := range gen.PaperProblemSizes() {
		for _, cfg := range differentialConfigs(t, rng, size) {
			label := fmt.Sprintf("size %v boot=%v bw=%v slots=%d reuse=%v",
				size, cfg.BootTime, cfg.Bandwidth, cfg.TransferSlots, cfg.Reuse != nil)
			want, err := referenceRun(cfg)
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}
			got, err := r.Run(cfg)
			if err != nil {
				t.Fatalf("%s: replayer: %v", label, err)
			}
			assertResultsIdentical(t, label, got, want)
		}
	}
}

// TestRunIntoCopies checks the batch entry point: RunInto's deep copy
// matches the pooled result bit for bit and survives the Replayer being
// reused for a different config afterwards.
func TestRunIntoCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cfgs := differentialConfigs(t, rng, gen.ProblemSize{M: 25, E: 201, N: 5})
	var r Replayer
	var dst Result
	for i, cfg := range cfgs {
		want, err := referenceRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.RunInto(cfg, &dst); err != nil {
			t.Fatal(err)
		}
		// Clobber the replayer's pooled result with the next config
		// before checking: the copy must be independent of it.
		if _, err := r.Run(cfgs[(i+1)%len(cfgs)]); err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, fmt.Sprintf("runinto %d", i), &dst, want)
	}
}

// TestRunMatchesReference locks the compatibility wrapper itself.
func TestRunMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, cfg := range differentialConfigs(t, rng, gen.ProblemSize{M: 25, E: 201, N: 5}) {
		want, err := referenceRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, "wrapper", got, want)
	}
}

// TestReplayerReusedAcross50HeterogeneousConfigs is the satellite
// property test: a single Replayer cycled through 50 configs of varying
// workflows, catalogs, boot times, and TransferSlots settings must match
// a fresh sim.Run on every one — no state may leak between runs.
func TestReplayerReusedAcross50HeterogeneousConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var r Replayer
	for trial := 0; trial < 50; trial++ {
		size := gen.ProblemSize{
			M: 5 + rng.Intn(30),
			E: 0,
			N: 2 + rng.Intn(6),
		}
		maxE := size.M * (size.M - 1) / 2
		size.E = rng.Intn(maxE + 1)
		cfgs := differentialConfigs(t, rng, size)
		cfg := cfgs[rng.Intn(len(cfgs))]
		// Edge cases: exercise zero boot and a slot count of 1 often.
		switch trial % 5 {
		case 0:
			cfg.BootTime = 0
		case 1:
			cfg.Bandwidth, cfg.TransferSlots = 5, 1
		}
		want, err := Run(cfg) // fresh engine every call
		if err != nil {
			t.Fatalf("trial %d: fresh: %v", trial, err)
		}
		got, err := r.Run(cfg) // pooled engine, reused across all trials
		if err != nil {
			t.Fatalf("trial %d: pooled: %v", trial, err)
		}
		assertResultsIdentical(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestValidateBatchMatchesRun checks the batch layer returns the same
// scalars as individual runs, in input order.
func TestValidateBatchMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var cfgs []Config
	for _, size := range []gen.ProblemSize{{M: 10, E: 17, N: 4}, {M: 30, E: 269, N: 6}} {
		cfgs = append(cfgs, differentialConfigs(t, rng, size)...)
	}
	got, err := ValidateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Makespan != want.Makespan || got[i].Cost != want.Cost || got[i].Events != want.Events {
			t.Fatalf("config %d: batch %+v, run {%v %v %v}", i, got[i], want.Makespan, want.Cost, want.Events)
		}
	}
}

// TestValidateBatchConcurrent is the satellite -race test: several
// goroutines run ValidateBatch simultaneously over configs sharing one
// workflow, matrices, and schedule. Replay must treat the shared inputs
// as read-only, so the race detector stays quiet and every caller gets
// identical results.
func TestValidateBatchConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfgs := differentialConfigs(t, rng, gen.ProblemSize{M: 40, E: 434, N: 6})
	want, err := ValidateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got, err := ValidateBatch(cfgs)
			if err != nil {
				errs[c] = err
				return
			}
			for i := range got {
				if got[i] != want[i] {
					errs[c] = fmt.Errorf("caller %d config %d: %+v != %+v", c, i, got[i], want[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestValidateBatchReportsErrorIndex checks error propagation names the
// offending config.
func TestValidateBatchReportsErrorIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfgs := differentialConfigs(t, rng, gen.ProblemSize{M: 10, E: 17, N: 4})[:2]
	cfgs[1].BootTime = -1
	if _, err := ValidateBatch(cfgs); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// BenchmarkReplayerSteadyState measures the pooled engine on the
// 100-module flagship instance; allocs/op must read 0.
func BenchmarkReplayerSteadyState(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w, cat, err := gen.Instance(rng, gen.ProblemSize{M: 100, E: 2344, N: 9})
	if err != nil {
		b.Fatal(err)
	}
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		b.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(w)
	res, err := sched.Run(sched.CriticalGreedy(), w, m, (cmin+cmax)/2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Workflow: w, Matrices: m, Schedule: res.Schedule, Bandwidth: 50, Delay: 0.001, BootTime: 0.1}
	var r Replayer
	if _, err := r.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
