package sim

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

func paperConfig(t *testing.T, budget float64) (Config, *sched.Result) {
	t.Helper()
	w, cat := workflow.PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(sched.CriticalGreedy(), w, m, budget)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Workflow: w, Matrices: m, Schedule: res.Schedule}, res
}

// TestSimMatchesAnalyticModel is the A2 validation: with zero boot time,
// free transfers and one VM per module, the event-driven replay must agree
// exactly with the analytic makespan and cost.
func TestSimMatchesAnalyticModel(t *testing.T) {
	for _, b := range []float64{48, 50, 52, 57, 64} {
		cfg, want := paperConfig(t, b)
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("B=%v: %v", b, err)
		}
		if math.Abs(got.Makespan-want.MED) > 1e-9 {
			t.Errorf("B=%v: sim makespan %v, analytic %v", b, got.Makespan, want.MED)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Errorf("B=%v: sim cost %v, analytic %v", b, got.Cost, want.Cost)
		}
	}
}

func TestSimMatchesAnalyticOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 15; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 15, E: 40, N: 5})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		res, err := sched.Run(sched.CriticalGreedy(), wf, m, cmin+rng.Float64()*(cmax-cmin))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(Config{Workflow: wf, Matrices: m, Schedule: res.Schedule})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Makespan-res.MED) > 1e-6 {
			t.Fatalf("trial %d: sim %v vs analytic %v", trial, got.Makespan, res.MED)
		}
		if math.Abs(got.Cost-res.Cost) > 1e-6 {
			t.Fatalf("trial %d: sim cost %v vs analytic %v", trial, got.Cost, res.Cost)
		}
	}
}

func TestSimBootTimeDelaysMakespan(t *testing.T) {
	cfg, want := paperConfig(t, 57)
	cfg.BootTime = 0.25
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan <= want.MED {
		t.Fatalf("boot time did not delay: %v <= %v", got.Makespan, want.MED)
	}
	// Boot happens once per VM on a path; with entry+two modules on the
	// deepest chain, the delay is bounded by depth * boot.
	if got.Makespan > want.MED+6*0.25+1e-9 {
		t.Fatalf("boot delay too large: %v vs %v", got.Makespan, want.MED)
	}
}

func TestSimTransfersDelayMakespan(t *testing.T) {
	cfg, want := paperConfig(t, 57)
	cfg.Bandwidth = 1 // data sizes 1-4 per edge
	cfg.Delay = 0.1
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan <= want.MED {
		t.Fatalf("transfers did not delay: %v <= %v", got.Makespan, want.MED)
	}
}

func TestSimPrecedenceRespected(t *testing.T) {
	cfg, _ := paperConfig(t, 57)
	cfg.BootTime = 0.5
	cfg.Bandwidth = 2
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Workflow.Graph()
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Succ(u) {
			if got.Modules[v].Start < got.Modules[u].Finish-1e-9 {
				t.Fatalf("module %d started before predecessor %d finished", v, u)
			}
		}
	}
	for i := range got.Modules {
		tr := got.Modules[i]
		if tr.Ready < 0 || tr.Start < tr.Ready-1e-9 || tr.Finish < tr.Start {
			t.Fatalf("module %d trace inconsistent: %+v", i, tr)
		}
	}
}

func TestSimVMReuseReducesVMsAndCost(t *testing.T) {
	w, cat := workflow.PaperExample()
	m, _ := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	res, err := sched.Run(sched.CriticalGreedy(), w, m, 48)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := w.Evaluate(m, res.Schedule, nil)
	plan := w.PlanReuse(res.Schedule, ev.Timing, workflow.ReuseByInterval)

	noReuse, err := Run(Config{Workflow: w, Matrices: m, Schedule: res.Schedule})
	if err != nil {
		t.Fatal(err)
	}
	reuse, err := Run(Config{Workflow: w, Matrices: m, Schedule: res.Schedule, Reuse: plan})
	if err != nil {
		t.Fatal(err)
	}
	if len(reuse.VMs) >= len(noReuse.VMs) {
		t.Fatalf("reuse provisioned %d VMs vs %d without", len(reuse.VMs), len(noReuse.VMs))
	}
	if math.Abs(reuse.Makespan-noReuse.Makespan) > 1e-9 {
		t.Fatalf("reuse changed makespan: %v vs %v", reuse.Makespan, noReuse.Makespan)
	}
	// Billing merges idle gaps; with hourly rounding the merged bill is
	// never higher than the sum of per-module round-ups... that is only
	// true when gaps are shorter than the rounding slack, so assert the
	// weaker invariant: the bill is positive and each VM accounts for
	// its modules.
	if reuse.Cost <= 0 {
		t.Fatal("reuse run billed nothing")
	}
}

func TestSimVMTracesConsistent(t *testing.T) {
	cfg, _ := paperConfig(t, 57)
	cfg.BootTime = 0.1
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != 6 {
		t.Fatalf("%d VMs for 6 schedulable modules", len(got.VMs))
	}
	total := 0.0
	for v, vm := range got.VMs {
		if vm.BootAt < 0 || vm.ReadyAt < vm.BootAt || vm.StoppedAt < vm.ReadyAt {
			t.Fatalf("VM %d lifecycle inconsistent: %+v", v, vm)
		}
		if math.Abs(vm.ReadyAt-vm.BootAt-0.1) > 1e-9 {
			t.Fatalf("VM %d boot duration %v", v, vm.ReadyAt-vm.BootAt)
		}
		total += vm.Cost
	}
	if math.Abs(total-got.Cost) > 1e-9 {
		t.Fatalf("VM costs %v do not sum to total %v", total, got.Cost)
	}
}

func TestSimTransferSlotsSerializeWideFanOut(t *testing.T) {
	// One source fans out to four consumers, each edge moving 10 units
	// at bandwidth 10 (1h per transfer). Unlimited slots overlap the
	// transfers; a single slot serializes them.
	w := workflow.New()
	src := w.AddModule(workflow.Module{Name: "src", Workload: 10})
	for i := 0; i < 4; i++ {
		c := w.AddModule(workflow.Module{Name: "c", Workload: 10})
		if err := w.AddDependency(src, c, 10); err != nil {
			t.Fatal(err)
		}
	}
	cat := cloud.Catalog{{Name: "x", Power: 10, Rate: 1}}
	m, _ := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	s := workflow.Schedule{0, 0, 0, 0, 0}

	free, err := Run(Config{Workflow: w, Matrices: m, Schedule: s, Bandwidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 1h src + 1h transfer (parallel) + 1h consumer.
	if math.Abs(free.Makespan-3) > 1e-9 {
		t.Fatalf("unlimited slots makespan %v, want 3", free.Makespan)
	}
	serial, err := Run(Config{Workflow: w, Matrices: m, Schedule: s, Bandwidth: 10, TransferSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Transfers serialize: last consumer starts at 1+4 = 5, ends 6.
	if math.Abs(serial.Makespan-6) > 1e-9 {
		t.Fatalf("single slot makespan %v, want 6", serial.Makespan)
	}
	two, err := Run(Config{Workflow: w, Matrices: m, Schedule: s, Bandwidth: 10, TransferSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(two.Makespan-4) > 1e-9 { // two waves of transfers
		t.Fatalf("two slots makespan %v, want 4", two.Makespan)
	}
}

func TestSimTransferSlotsIgnoredWhenTransfersFree(t *testing.T) {
	cfg, want := paperConfig(t, 57)
	cfg.TransferSlots = 1 // no bandwidth set: must change nothing
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Makespan-want.MED) > 1e-9 {
		t.Fatalf("free transfers affected by slot limit: %v vs %v", got.Makespan, want.MED)
	}
}

func TestSimRejectsBadConfig(t *testing.T) {
	w, cat := workflow.PaperExample()
	m, _ := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil workflow accepted")
	}
	if _, err := Run(Config{Workflow: w, Matrices: m, Schedule: workflow.Schedule{0}}); err == nil {
		t.Fatal("short schedule accepted")
	}
	lc := m.LeastCost(w)
	if _, err := Run(Config{Workflow: w, Matrices: m, Schedule: lc, BootTime: -1}); err == nil {
		t.Fatal("negative boot time accepted")
	}
}

func TestSimFixedModulesBillNothing(t *testing.T) {
	cfg, _ := paperConfig(t, 48)
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Entry and exit contribute 2 hours of makespan but no VM cost:
	// cost equals the analytic CE sum (48).
	if got.Cost != 48 {
		t.Fatalf("cost = %v, want 48", got.Cost)
	}
	if got.Modules[0].VM != -1 {
		t.Fatal("entry module assigned a VM")
	}
}
