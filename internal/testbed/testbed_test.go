package testbed

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
	"medcc/internal/wrf"
)

func wrfSetup(t *testing.T, budget float64) (*workflow.Workflow, *workflow.Matrices, workflow.Schedule) {
	t.Helper()
	w := wrf.Grouped()
	m := wrf.Matrices(w)
	res, err := sched.Run(sched.CriticalGreedy(), w, m, budget)
	if err != nil {
		t.Fatal(err)
	}
	return w, m, res.Schedule
}

func TestExecuteWRFMatchesAnalyticWhenWarm(t *testing.T) {
	// With pre-launched VMs (no boot, no propagation, free transfers)
	// the testbed must reproduce the analytic MED exactly — the setting
	// of the paper's Table VII measurements.
	w, m, s := wrfSetup(t, 155.0)
	dep, err := Execute(DefaultConfig(), w, m, s)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := w.Evaluate(m, s, nil)
	if math.Abs(dep.Makespan-ev.Makespan) > 1e-9 {
		t.Fatalf("testbed makespan %v vs analytic %v", dep.Makespan, ev.Makespan)
	}
}

func TestExecuteWRFReuseLowersVMCountAndCost(t *testing.T) {
	w, m, s := wrfSetup(t, 147.5)
	dep, err := Execute(DefaultConfig(), w, m, s)
	if err != nil {
		t.Fatal(err)
	}
	// Schedule at B=147.5 maps w1..w4,w6 to VT1 and w5 to VT2; the
	// paper notes w1/w3 and w2/w4/w6 chains reuse VMs. At most 6 VMs,
	// expect strictly fewer via precedence reuse.
	if len(dep.VMs) >= 6 {
		t.Fatalf("no reuse: %d VMs", len(dep.VMs))
	}
	// Merged occupancy bills less than the sum of per-module costs.
	analytic := m.Cost(s)
	if dep.Cost > analytic+1e-9 {
		t.Fatalf("testbed cost %v above analytic %v", dep.Cost, analytic)
	}
	if dep.Cost <= 0 {
		t.Fatal("testbed billed nothing")
	}
}

func TestExecuteRespectsSlotLimits(t *testing.T) {
	// A 10-branch fork-join on a 4x2-slot cloud: placement queueing
	// must serialize the excess VMs, stretching the makespan, while
	// every host stays within its slot bound at all times.
	rng := rand.New(rand.NewSource(1))
	w := gen.ForkJoin(rng, 10, 100, 100)
	cat := cloud.DiminishingCatalog(2, 3, 1, 0.75)
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	s := m.LeastCost(w)
	cfg := DefaultConfig()
	dep, err := Execute(cfg, w, m, s)
	if err != nil {
		t.Fatal(err)
	}
	// 10 identical branches, 8 slots: two branches wait a full round.
	branchTime := 100.0 / 3
	if dep.Makespan < 2*branchTime-1e-9 {
		t.Fatalf("makespan %v too small for queued execution", dep.Makespan)
	}
	if dep.QueueWait <= 0 {
		t.Fatal("no queue wait recorded despite oversubscription")
	}
	for h, c := range dep.HostUtilization(cfg.VMMs) {
		if c == 0 {
			t.Fatalf("host %d unused while others queued", h)
		}
	}
}

func TestExecuteColdStartDelays(t *testing.T) {
	w, m, s := wrfSetup(t, 155.0)
	warm, err := Execute(DefaultConfig(), w, m, s)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BootTime = 30
	cfg.RepoBandwidthGBps = 0.1 // 68s propagation per cold host
	cold, err := Execute(cfg, w, m, s)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Makespan <= warm.Makespan {
		t.Fatalf("cold start did not delay: %v vs %v", cold.Makespan, warm.Makespan)
	}
	for _, vm := range cold.VMs {
		if vm.Ready < vm.Placed+30-1e-9 {
			t.Fatalf("VM became ready before booting: %+v", vm)
		}
	}
}

func TestExecuteImageCachePropagatesOncePerHost(t *testing.T) {
	// Two sequential same-host VMs: the second must skip propagation.
	w := workflow.New()
	a := w.AddModule(workflow.Module{Name: "a", Workload: 10})
	b := w.AddModule(workflow.Module{Name: "b", Workload: 10})
	if err := w.AddDependency(a, b, 0); err != nil {
		t.Fatal(err)
	}
	cat := cloud.Catalog{{Name: "x", Power: 10, Rate: 1}, {Name: "y", Power: 20, Rate: 2}}
	m, _ := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	s := workflow.Schedule{0, 1} // different types: no reuse, two VMs
	cfg := Config{VMMs: 1, SlotsPerVMM: 2, ImageGB: 7, RepoBandwidthGBps: 1}
	dep, err := Execute(cfg, w, m, s)
	if err != nil {
		t.Fatal(err)
	}
	first := dep.VMs[0]
	second := dep.VMs[1]
	if second.Placed < first.Placed {
		first, second = second, first
	}
	if math.Abs(first.Ready-first.Placed-7) > 1e-9 {
		t.Fatalf("first VM propagation = %v, want 7", first.Ready-first.Placed)
	}
	if second.Ready-second.Placed > 1e-9 {
		t.Fatalf("second VM re-propagated: %v", second.Ready-second.Placed)
	}
}

func TestExecuteTransfersThroughSharedStorage(t *testing.T) {
	// Every data-bearing dependency pays a shared-storage transfer of
	// DS/BW + 2*delay, independent of VM placement.
	w := workflow.New()
	a := w.AddModule(workflow.Module{Name: "a", Workload: 10})
	b := w.AddModule(workflow.Module{Name: "b", Workload: 10})
	if err := w.AddDependency(a, b, 100); err != nil {
		t.Fatal(err)
	}
	cat := cloud.Catalog{{Name: "x", Power: 10, Rate: 1}, {Name: "y", Power: 20, Rate: 2}}
	m, _ := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	s := workflow.Schedule{0, 1}
	cfg := Config{VMMs: 2, SlotsPerVMM: 1, LinkBandwidth: 10, LinkDelay: 0.05}
	dep, err := Execute(cfg, w, m, s)
	if err != nil {
		t.Fatal(err)
	}
	// a: 1h; transfer: 100/10 + 2*0.05 = 10.1; b: 0.5h.
	want := 1 + 10.1 + 0.5
	if math.Abs(dep.Makespan-want) > 1e-9 {
		t.Fatalf("makespan = %v, want %v", dep.Makespan, want)
	}
}

func TestExecuteDetectsCapacityDeadlock(t *testing.T) {
	// Reused VMs can hold slots while waiting for inputs from queued
	// VMs; with capacity 1x1 a diamond workflow with cross-VM
	// dependencies stalls, and Execute must report it instead of
	// silently dropping modules.
	rng := rand.New(rand.NewSource(2))
	w := gen.ForkJoin(rng, 5, 50, 50)
	cat := cloud.DiminishingCatalog(2, 3, 1, 0.75)
	m, _ := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	s := m.LeastCost(w)
	cfg := Config{VMMs: 1, SlotsPerVMM: 1}
	dep, err := Execute(cfg, w, m, s)
	// Either it completes serially (fork-join branches are
	// independent, so a single slot CAN recycle) — or, if the reuse
	// plan splits them across VMs awaiting each other, it errors.
	if err == nil {
		if dep.Makespan <= 0 {
			t.Fatal("suspicious zero makespan")
		}
		return
	}
	t.Logf("stall reported as expected: %v", err)
}

func TestExecuteRejectsBadConfig(t *testing.T) {
	w, m, s := wrfSetup(t, 155.0)
	if _, err := Execute(Config{VMMs: 0, SlotsPerVMM: 1}, w, m, s); err == nil {
		t.Fatal("zero VMMs accepted")
	}
	if _, err := Execute(DefaultConfig(), w, m, workflow.Schedule{1}); err == nil {
		t.Fatal("bad schedule accepted")
	}
}

func TestDeploymentHelpers(t *testing.T) {
	w, m, s := wrfSetup(t, 186.2)
	dep, err := Execute(DefaultConfig(), w, m, s)
	if err != nil {
		t.Fatal(err)
	}
	byType := dep.VMsByType()
	total := 0
	for _, c := range byType {
		total += c
	}
	if total != len(dep.VMs) {
		t.Fatalf("VMsByType total %d != %d VMs", total, len(dep.VMs))
	}
	tl := dep.Timeline()
	if len(tl) != w.NumModules() {
		t.Fatalf("timeline covers %d modules", len(tl))
	}
	for k := 1; k < len(tl); k++ {
		if dep.Modules[tl[k-1]].Start > dep.Modules[tl[k]].Start {
			t.Fatal("timeline not sorted by start")
		}
	}
}
