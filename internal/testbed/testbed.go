// Package testbed simulates the paper's experimental platform (§VI-C): a
// local Nimbus cloud of one controller node (image repository and shared
// storage) plus VMM nodes where VMs are provisioned on client request.
//
// It layers datacenter mechanics that the plain simulator in package sim
// abstracts away: a bounded number of VM slots per VMM node with FIFO
// queueing, VM image propagation from the repository with per-host image
// caching, boot latency, host-to-host transfer times over the physical
// star topology, and the paper's precedence-based VM reuse. Executions run
// on the same discrete-event core, so results are deterministic.
package testbed

import (
	"fmt"
	"sort"

	"medcc/internal/sim"
	"medcc/internal/workflow"
)

// Config sizes the private cloud.
type Config struct {
	// VMMs is the number of virtual machine monitor nodes (the paper's
	// testbed had 4 next to one controller).
	VMMs int
	// SlotsPerVMM bounds concurrent VMs per VMM node.
	SlotsPerVMM int
	// ImageGB is the VM image size; the paper's images were 6.8 GB.
	ImageGB float64
	// RepoBandwidthGBps is the repository-to-VMM propagation bandwidth.
	// Zero disables propagation delay.
	RepoBandwidthGBps float64
	// BootTime is the VM startup latency after the image is in place.
	BootTime float64
	// LinkBandwidth and LinkDelay describe the physical star links used
	// for inter-module data transfers (data size units per time unit).
	// Zero bandwidth makes transfers free.
	LinkBandwidth, LinkDelay float64
}

// DefaultConfig mirrors the paper's testbed: 4 VMM nodes behind one
// controller, two VM slots each, 6.8 GB images. Propagation and boot are
// disabled by default because the paper launched VMs in advance ("we can
// always launch the VMs in advance before actually running workflow
// modules"); enable them to study cold-start behaviour.
func DefaultConfig() Config {
	return Config{VMMs: 4, SlotsPerVMM: 2, ImageGB: 6.8}
}

// VMRecord traces one provisioned VM.
type VMRecord struct {
	Type      int
	Host      int // VMM index
	Requested float64
	Placed    float64 // slot acquired
	Ready     float64 // image propagated + booted
	Stopped   float64
	Cost      float64
	Modules   []int
}

// Deployment is the outcome of one testbed execution.
type Deployment struct {
	Makespan float64
	Cost     float64
	VMs      []VMRecord
	Modules  []sim.ModuleTrace
	// QueueWait is the total time VM requests spent waiting for a slot.
	QueueWait float64
}

// Execute runs the scheduled workflow on the simulated testbed. Reuse
// follows the paper's rule: precedence-adjacent modules mapped to the same
// VM type share one VM.
func Execute(cfg Config, w *workflow.Workflow, m *workflow.Matrices, s workflow.Schedule) (*Deployment, error) {
	if cfg.VMMs < 1 || cfg.SlotsPerVMM < 1 {
		return nil, fmt.Errorf("testbed: need at least one VMM with one slot, have %d x %d", cfg.VMMs, cfg.SlotsPerVMM)
	}
	if err := w.ValidateSchedule(s, len(m.Catalog)); err != nil {
		return nil, err
	}
	// Capacity check: the peak VM concurrency cannot exceed total slots
	// or placement deadlocks; with FIFO queueing it only stalls, but a
	// workflow wider than the cloud at every instant still completes
	// because slots recycle between modules.
	ev, err := w.Evaluate(m, s, nil)
	if err != nil {
		return nil, err
	}
	plan := w.PlanReuse(s, ev.Timing, workflow.ReuseByPrecedence)

	g := w.Graph()
	n := w.NumModules()
	times := m.Times(s)

	dep := &Deployment{
		Modules: make([]sim.ModuleTrace, n),
		VMs:     make([]VMRecord, plan.NumVMs()),
	}
	for i := range dep.Modules {
		dep.Modules[i] = sim.ModuleTrace{Ready: -1, Start: -1, Finish: -1, VM: plan.VMOf[i]}
	}
	for v := range dep.VMs {
		dep.VMs[v] = VMRecord{Type: plan.TypeOf[v], Host: -1, Requested: -1, Placed: -1, Ready: -1, Stopped: -1}
	}

	var sm sim.Simulation
	hostLoad := make([]int, cfg.VMMs)      // occupied slots
	hostHasImage := make([]bool, cfg.VMMs) // image cache
	var waitQueue []int                    // VM indices awaiting slots
	pendingIn := make([]int, n)
	for i := 0; i < n; i++ {
		pendingIn[i] = g.InDegree(i)
	}
	vmNext := make([]int, plan.NumVMs())
	vmFree := make([]bool, plan.NumVMs())
	done := 0

	propagation := func(host int) float64 {
		if cfg.RepoBandwidthGBps <= 0 || hostHasImage[host] {
			return 0
		}
		return cfg.ImageGB / cfg.RepoBandwidthGBps
	}
	// Transfers go through the controller's shared storage ("data
	// transfers are typically performed through a shared storage
	// system"), so each dependency pays two hops of the star topology
	// regardless of where the consumer's VM later lands.
	transfer := func(u, v int) float64 {
		if cfg.LinkBandwidth <= 0 {
			return 0
		}
		ds := w.DataSize(u, v)
		if ds == 0 {
			return 0
		}
		return ds/cfg.LinkBandwidth + 2*cfg.LinkDelay
	}

	var tryStart func(v int)
	var onFinish func(i int)
	var placeOrQueue func(v int)

	schedule := func(d float64, fn func()) {
		if err := sm.Schedule(d, fn); err != nil {
			panic(err) // all delays are validated non-negative
		}
	}

	startModule := func(i int) {
		dep.Modules[i].Start = sm.Now()
		schedule(times[i], func() { onFinish(i) })
	}

	tryStart = func(v int) {
		if !vmFree[v] || vmNext[v] >= len(plan.ModulesOf[v]) {
			return
		}
		i := plan.ModulesOf[v][vmNext[v]]
		if dep.Modules[i].Ready < 0 {
			return
		}
		vmFree[v] = false
		vmNext[v]++
		dep.VMs[v].Modules = append(dep.VMs[v].Modules, i)
		startModule(i)
	}

	// place assigns VM v to the least-loaded VMM with a free slot.
	placeOrQueue = func(v int) {
		best := -1
		for h := 0; h < cfg.VMMs; h++ {
			if hostLoad[h] >= cfg.SlotsPerVMM {
				continue
			}
			if best == -1 || hostLoad[h] < hostLoad[best] {
				best = h
			}
		}
		if best == -1 {
			waitQueue = append(waitQueue, v)
			return
		}
		hostLoad[best]++
		dep.VMs[v].Host = best
		dep.VMs[v].Placed = sm.Now()
		dep.QueueWait += sm.Now() - dep.VMs[v].Requested
		prop := propagation(best)
		hostHasImage[best] = true
		schedule(prop+cfg.BootTime, func() {
			dep.VMs[v].Ready = sm.Now()
			vmFree[v] = true
			tryStart(v)
		})
	}

	onReady := func(i int) {
		dep.Modules[i].Ready = sm.Now()
		if w.Module(i).Fixed {
			startModule(i)
			return
		}
		v := plan.VMOf[i]
		if dep.VMs[v].Requested < 0 {
			dep.VMs[v].Requested = sm.Now()
			placeOrQueue(v)
			return
		}
		tryStart(v)
	}

	onFinish = func(i int) {
		dep.Modules[i].Finish = sm.Now()
		if sm.Now() > dep.Makespan {
			dep.Makespan = sm.Now()
		}
		done++
		if !w.Module(i).Fixed {
			v := plan.VMOf[i]
			vmFree[v] = true
			if vmNext[v] >= len(plan.ModulesOf[v]) {
				// Terminate: bill, free the slot, admit a waiter.
				dep.VMs[v].Stopped = sm.Now()
				occ := sm.Now() - dep.VMs[v].Placed
				dep.VMs[v].Cost = m.Billing.BilledTime(occ) * m.Catalog[dep.VMs[v].Type].Rate
				dep.Cost += dep.VMs[v].Cost
				hostLoad[dep.VMs[v].Host]--
				if len(waitQueue) > 0 {
					next := waitQueue[0]
					waitQueue = waitQueue[1:]
					placeOrQueue(next)
				}
			} else {
				tryStart(v)
			}
		}
		for _, succ := range g.Succ(i) {
			succ := succ
			schedule(transfer(i, succ), func() {
				pendingIn[succ]--
				if pendingIn[succ] == 0 {
					onReady(succ)
				}
			})
		}
	}

	for i := 0; i < n; i++ {
		if g.InDegree(i) == 0 {
			i := i
			schedule(0, func() { onReady(i) })
		}
	}
	if _, err := sm.Run(0); err != nil {
		return nil, err
	}
	if done != n {
		return nil, fmt.Errorf("testbed: stalled — %d of %d modules completed (capacity %d slots)",
			done, n, cfg.VMMs*cfg.SlotsPerVMM)
	}
	return dep, nil
}

// HostUtilization summarizes how many VMs each VMM hosted over the run.
func (d *Deployment) HostUtilization(vmms int) []int {
	out := make([]int, vmms)
	for _, vm := range d.VMs {
		if vm.Host >= 0 && vm.Host < vmms {
			out[vm.Host]++
		}
	}
	return out
}

// VMsByType counts provisioned VMs per type index, sorted output by type.
func (d *Deployment) VMsByType() map[int]int {
	out := make(map[int]int)
	for _, vm := range d.VMs {
		out[vm.Type]++
	}
	return out
}

// Timeline returns module indices sorted by start time, for reports.
func (d *Deployment) Timeline() []int {
	idx := make([]int, len(d.Modules))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return d.Modules[idx[a]].Start < d.Modules[idx[b]].Start
	})
	return idx
}
