package mckp

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

func TestIsPipeline(t *testing.T) {
	if !IsPipeline(workflow.NewPipeline([]float64{1, 2, 3})) {
		t.Fatal("pipeline not recognized")
	}
	wf, _ := workflow.PaperExample()
	if IsPipeline(wf) {
		t.Fatal("DAG with branches recognized as pipeline")
	}
	if IsPipeline(workflow.New()) {
		t.Fatal("empty workflow recognized as pipeline")
	}
	single := workflow.New()
	single.AddModule(workflow.Module{Name: "a", Workload: 1})
	if !IsPipeline(single) {
		t.Fatal("single module is a (degenerate) pipeline")
	}
}

func TestFromPipelineShape(t *testing.T) {
	wf := workflow.NewPipeline([]float64{30, 60})
	cat := cloud.PaperExampleCatalog()
	m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	p, K, err := FromPipeline(wf, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Classes) != 2 || len(p.Classes[0]) != 3 {
		t.Fatalf("problem shape %dx%d", len(p.Classes), len(p.Classes[0]))
	}
	// K must dominate every execution time.
	for i, cls := range p.Classes {
		for j, it := range cls {
			if it.Profit <= 0 {
				t.Fatalf("class %d item %d has non-positive profit (K=%v too small)", i, j, K)
			}
			if it.Weight != m.CE[wf.Schedulable()[i]][j] {
				t.Fatalf("weight mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromPipelineRejectsDAG(t *testing.T) {
	wf, cat := workflow.PaperExample()
	m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
	if _, _, err := FromPipeline(wf, m, 100); err == nil {
		t.Fatal("non-pipeline accepted")
	}
}

// TestTheorem1Equivalence validates the reduction of §IV: on pipelines,
// the MCKP optimum equals the exhaustive MED-CC optimum, across random
// instances and budgets.
func TestTheorem1Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		wl := make([]float64, 2+rng.Intn(5))
		for i := range wl {
			wl[i] = 100 + rng.Float64()*900
		}
		wf := workflow.NewPipeline(wl)
		cat := cloud.DiminishingCatalog(3, 3, 1, 0.75)
		m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		if err != nil {
			t.Fatal(err)
		}
		cmin, cmax := m.BudgetRange(wf)
		b := cmin + rng.Float64()*(cmax-cmin)

		s, total, err := PipelineOptimal(wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := wf.ValidateSchedule(s, len(cat)); err != nil {
			t.Fatal(err)
		}
		if got := m.Cost(s); got > b+1e-9 {
			t.Fatalf("trial %d: MCKP schedule over budget: %v > %v", trial, got, b)
		}
		opt, err := sched.Run(&sched.Optimal{}, wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(total-opt.MED) > 1e-6 {
			t.Fatalf("trial %d: MCKP total %v != exhaustive optimum %v", trial, total, opt.MED)
		}
	}
}

func TestPipelineOptimalInfeasible(t *testing.T) {
	wf := workflow.NewPipeline([]float64{10, 10})
	cat := cloud.PaperExampleCatalog()
	m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
	if _, _, err := PipelineOptimal(wf, m, 0.5); err == nil {
		t.Fatal("infeasible budget accepted")
	}
}

// TestGreedyMirrorsGAINOnPipeline sanity-checks that the MCKP greedy's
// profit never exceeds the optimum on reduction instances generated from
// real workloads.
func TestGreedyMirrorsGAINOnPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	wf := gen.Pipeline(rng, 6, 100, 1000)
	cat := cloud.DiminishingCatalog(4, 3, 1, 0.75)
	m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
	cmin, cmax := m.BudgetRange(wf)
	p, _, err := FromPipeline(wf, m, (cmin+cmax)/2)
	if err != nil {
		t.Fatal(err)
	}
	_, gp, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	_, op, err := SolveBB(p)
	if err != nil {
		t.Fatal(err)
	}
	if gp > op+1e-9 {
		t.Fatalf("greedy profit %v above optimum %v", gp, op)
	}
}
