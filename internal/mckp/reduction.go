package mckp

import (
	"errors"
	"math"

	"medcc/internal/workflow"
)

// FromPipeline builds the Theorem 1 reduction: a pipeline-structured
// MED-CC instance maps to MCKP with one class per schedulable module and
// one item per VM type, item weight = execution cost C(E_ij) and item
// profit = K - T(E_ij) for a constant K >= max T(E_ij). Capacity is the
// budget. It returns the problem and the constant K, from which the
// minimum total execution time is m*K - optimalProfit.
//
// The workflow must be a pipeline only in the sense the theorem needs:
// zero transfer times and a total execution time equal to the sum of
// module times — i.e. every schedulable module lies on the single chain.
func FromPipeline(w *workflow.Workflow, m *workflow.Matrices, budget float64) (*Problem, float64, error) {
	if !IsPipeline(w) {
		return nil, 0, errors.New("mckp: workflow is not a pipeline")
	}
	mods := w.Schedulable()
	K := 0.0
	for _, i := range mods {
		for j := range m.Catalog {
			if m.TE[i][j] > K {
				K = m.TE[i][j]
			}
		}
	}
	K++ // strictly dominate every T(E_ij), keeping profits positive
	p := &Problem{Capacity: budget}
	for _, i := range mods {
		cls := make([]Item, len(m.Catalog))
		for j := range m.Catalog {
			cls[j] = Item{Profit: K - m.TE[i][j], Weight: m.CE[i][j]}
		}
		p.Classes = append(p.Classes, cls)
	}
	return p, K, nil
}

// IsPipeline reports whether every module of w lies on one simple chain
// (each node has at most one predecessor and one successor, with a single
// source and sink when non-empty).
func IsPipeline(w *workflow.Workflow) bool {
	g := w.Graph()
	n := g.NumNodes()
	if n == 0 {
		return false
	}
	sources := 0
	for i := 0; i < n; i++ {
		if g.InDegree(i) > 1 || g.OutDegree(i) > 1 {
			return false
		}
		if g.InDegree(i) == 0 {
			sources++
		}
	}
	return sources == 1 && g.NumEdges() == n-1
}

// PipelineOptimal solves MED-CC exactly on a pipeline via the MCKP
// reduction with branch and bound, returning the optimal schedule and its
// total execution time. It is the independent oracle used to validate the
// generic Optimal scheduler (DESIGN.md experiment A2).
func PipelineOptimal(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, float64, error) {
	p, K, err := FromPipeline(w, m, budget)
	if err != nil {
		return nil, 0, err
	}
	choice, profit, err := SolveBB(p)
	if err != nil {
		return nil, 0, err
	}
	mods := w.Schedulable()
	s := make(workflow.Schedule, w.NumModules())
	for i := range s {
		s[i] = -1
	}
	for k, i := range mods {
		s[i] = choice[k]
	}
	total := float64(len(mods))*K - profit
	// Guard against float drift between the two formulations.
	check := 0.0
	for k, i := range mods {
		check += m.TE[i][choice[k]]
		_ = k
	}
	if math.Abs(check-total) > 1e-6 {
		total = check
	}
	return s, total, nil
}
