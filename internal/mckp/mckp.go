// Package mckp implements the Multiple-Choice Knapsack Problem used in the
// paper's complexity analysis (§IV): given m classes of items, choose
// exactly one item per class maximizing total profit subject to a weight
// capacity. MED-CC restricted to pipeline workflows is exactly MCKP
// (Theorem 1), so the solvers here double as an independent optimal oracle
// for pipeline scheduling, cross-checking the branch-and-bound scheduler.
package mckp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Item is one choice within a class.
type Item struct {
	Profit float64
	Weight float64
}

// Problem is an MCKP instance: pick exactly one item from every class so
// that total weight <= Capacity and total profit is maximized.
type Problem struct {
	Classes  [][]Item
	Capacity float64
}

// ErrInfeasible is returned when even the minimum-weight choice per class
// exceeds the capacity.
var ErrInfeasible = errors.New("mckp: no feasible selection")

// Validate checks instance sanity: at least one class, non-empty classes,
// finite non-negative weights.
func (p *Problem) Validate() error {
	if len(p.Classes) == 0 {
		return errors.New("mckp: no classes")
	}
	for i, cls := range p.Classes {
		if len(cls) == 0 {
			return fmt.Errorf("mckp: class %d is empty", i)
		}
		for j, it := range cls {
			if it.Weight < 0 || math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
				return fmt.Errorf("mckp: class %d item %d has invalid weight %v", i, j, it.Weight)
			}
			if math.IsNaN(it.Profit) || math.IsInf(it.Profit, 0) {
				return fmt.Errorf("mckp: class %d item %d has invalid profit %v", i, j, it.Profit)
			}
		}
	}
	if p.Capacity < 0 || math.IsNaN(p.Capacity) {
		return fmt.Errorf("mckp: invalid capacity %v", p.Capacity)
	}
	return nil
}

// minWeightSelection returns the per-class minimum weights and their sum.
func (p *Problem) minWeightSelection() ([]float64, float64) {
	mins := make([]float64, len(p.Classes))
	total := 0.0
	for i, cls := range p.Classes {
		m := math.Inf(1)
		for _, it := range cls {
			if it.Weight < m {
				m = it.Weight
			}
		}
		mins[i] = m
		total += m
	}
	return mins, total
}

// SolveBB solves the instance exactly by depth-first branch and bound.
// It returns the chosen item index per class and the optimal profit.
// Exponential in the worst case; intended for the instance sizes of the
// paper's optimality studies (m*n up to a few hundred).
func SolveBB(p *Problem) ([]int, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	mins, minTotal := p.minWeightSelection()
	if minTotal > p.Capacity+eps {
		return nil, 0, ErrInfeasible
	}
	m := len(p.Classes)
	// Suffix sums for bounds: cheapest completion weight and richest
	// completion profit.
	sufMinW := make([]float64, m+1)
	sufMaxP := make([]float64, m+1)
	for i := m - 1; i >= 0; i-- {
		maxP := math.Inf(-1)
		for _, it := range p.Classes[i] {
			if it.Profit > maxP {
				maxP = it.Profit
			}
		}
		sufMinW[i] = sufMinW[i+1] + mins[i]
		sufMaxP[i] = sufMaxP[i+1] + maxP
	}

	best := math.Inf(-1)
	bestChoice := make([]int, m)
	cur := make([]int, m)
	var dfs func(i int, weight, profit float64)
	dfs = func(i int, weight, profit float64) {
		if weight+sufMinW[i] > p.Capacity+eps {
			return
		}
		if profit+sufMaxP[i] <= best+eps {
			return
		}
		if i == m {
			if profit > best {
				best = profit
				copy(bestChoice, cur)
			}
			return
		}
		// Visit items in descending profit so good incumbents appear
		// early and the profit bound bites sooner.
		order := byProfitDesc(p.Classes[i])
		for _, j := range order {
			cur[i] = j
			dfs(i+1, weight+p.Classes[i][j].Weight, profit+p.Classes[i][j].Profit)
		}
	}
	dfs(0, 0, 0)
	if math.IsInf(best, -1) {
		return nil, 0, ErrInfeasible
	}
	return bestChoice, best, nil
}

const eps = 1e-9

func byProfitDesc(cls []Item) []int {
	idx := make([]int, len(cls))
	for j := range idx {
		idx[j] = j
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return cls[idx[a]].Profit > cls[idx[b]].Profit
	})
	return idx
}

// SolveDP solves the instance exactly by dynamic programming over an
// integer weight grid. Weights are multiplied by scale and rounded to the
// nearest integer; the caller chooses scale so that scaled weights are
// (near-)integral — e.g. scale=1 when costs are whole dollars. Complexity
// O(m * n * scaledCapacity).
func SolveDP(p *Problem, scale float64) ([]int, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return nil, 0, fmt.Errorf("mckp: invalid scale %v", scale)
	}
	capInt := int(math.Floor(p.Capacity*scale + eps))
	m := len(p.Classes)
	type cell struct {
		profit float64
		ok     bool
		choice int
	}
	// dp[i][c]: best profit choosing from classes [0,i) with weight
	// exactly <= c; rolling rows with parent pointers per row.
	prev := make([]cell, capInt+1)
	for c := range prev {
		prev[c] = cell{ok: true}
	}
	parents := make([][]cell, m)
	for i := 0; i < m; i++ {
		next := make([]cell, capInt+1)
		for c := 0; c <= capInt; c++ {
			bestP, bestJ, ok := math.Inf(-1), -1, false
			for j, it := range p.Classes[i] {
				wInt := int(math.Round(it.Weight * scale))
				if wInt > c {
					continue
				}
				pc := prev[c-wInt]
				if !pc.ok {
					continue
				}
				if cand := pc.profit + it.Profit; !ok || cand > bestP {
					bestP, bestJ, ok = cand, j, true
				}
			}
			next[c] = cell{profit: bestP, ok: ok, choice: bestJ}
		}
		parents[i] = next
		prev = next
	}
	// Find the best reachable capacity cell.
	bestC := -1
	for c := 0; c <= capInt; c++ {
		if prev[c].ok && (bestC == -1 || prev[c].profit > prev[bestC].profit) {
			bestC = c
		}
	}
	if bestC == -1 {
		return nil, 0, ErrInfeasible
	}
	// Reconstruct.
	choice := make([]int, m)
	c := bestC
	for i := m - 1; i >= 0; i-- {
		j := parents[i][c].choice
		choice[i] = j
		c -= int(math.Round(p.Classes[i][j].Weight * scale))
	}
	return choice, prev[bestC].profit, nil
}

// SolveGreedy returns a feasible (not necessarily optimal) selection: start
// from the per-class minimum weight items, then repeatedly apply the
// upgrade with the best profit-increase / weight-increase ratio that fits.
// This is the LP-relaxation-flavored heuristic; it mirrors the GAIN family
// on the scheduling side.
func SolveGreedy(p *Problem) ([]int, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	choice := make([]int, len(p.Classes))
	weight, profit := 0.0, 0.0
	for i, cls := range p.Classes {
		bj := 0
		for j, it := range cls {
			if it.Weight < cls[bj].Weight ||
				// medcc:lint-ignore floateq — tie-break on identical item weights copied from the input classes.
				(it.Weight == cls[bj].Weight && it.Profit > cls[bj].Profit) {
				bj = j
			}
		}
		choice[i] = bj
		weight += cls[bj].Weight
		profit += cls[bj].Profit
	}
	if weight > p.Capacity+eps {
		return nil, 0, ErrInfeasible
	}
	for {
		bi, bj := -1, -1
		var bestRatio, bestDP float64
		for i, cls := range p.Classes {
			curIt := cls[choice[i]]
			for j, it := range cls {
				dp := it.Profit - curIt.Profit
				dw := it.Weight - curIt.Weight
				if dp <= eps {
					continue
				}
				if weight+dw > p.Capacity+eps {
					continue
				}
				r := math.Inf(1)
				if dw > eps {
					r = dp / dw
				}
				// medcc:lint-ignore floateq — equal-rank detection before the profit tie-break; ratios may be +Inf where epsilon is meaningless.
				if bi == -1 || r > bestRatio || (r == bestRatio && dp > bestDP) {
					bi, bj, bestRatio, bestDP = i, j, r, dp
				}
			}
		}
		if bi == -1 {
			break
		}
		weight += p.Classes[bi][bj].Weight - p.Classes[bi][choice[bi]].Weight
		profit += bestDP
		choice[bi] = bj
	}
	return choice, profit, nil
}
