package mckp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func tinyProblem() *Problem {
	return &Problem{
		Classes: [][]Item{
			{{Profit: 1, Weight: 1}, {Profit: 4, Weight: 3}},
			{{Profit: 2, Weight: 2}, {Profit: 5, Weight: 5}},
		},
		Capacity: 6,
	}
}

func TestValidate(t *testing.T) {
	if err := tinyProblem().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		{Capacity: 1},
		{Classes: [][]Item{{}}, Capacity: 1},
		{Classes: [][]Item{{{Profit: 1, Weight: -1}}}, Capacity: 1},
		{Classes: [][]Item{{{Profit: math.NaN(), Weight: 1}}}, Capacity: 1},
		{Classes: [][]Item{{{Profit: 1, Weight: 1}}}, Capacity: -2},
		{Classes: [][]Item{{{Profit: 1, Weight: math.Inf(1)}}}, Capacity: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestSolveBBTiny(t *testing.T) {
	// Best: item 1 from class 0 (p4 w3) + item 0 from class 1 (p2 w2):
	// weight 5 <= 6, profit 6. The greedy-looking (p4,p5) pair weighs 8.
	choice, profit, err := SolveBB(tinyProblem())
	if err != nil {
		t.Fatal(err)
	}
	if profit != 6 {
		t.Fatalf("profit = %v, want 6", profit)
	}
	if choice[0] != 1 || choice[1] != 0 {
		t.Fatalf("choice = %v", choice)
	}
}

func TestSolveBBInfeasible(t *testing.T) {
	p := tinyProblem()
	p.Capacity = 2.5 // min weights 1+2 = 3
	if _, _, err := SolveBB(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveDPMatchesBBTiny(t *testing.T) {
	choice, profit, err := SolveDP(tinyProblem(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if profit != 6 || choice[0] != 1 || choice[1] != 0 {
		t.Fatalf("DP choice %v profit %v", choice, profit)
	}
}

func TestSolveDPInfeasible(t *testing.T) {
	p := tinyProblem()
	p.Capacity = 1
	if _, _, err := SolveDP(p, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveDPRejectsBadScale(t *testing.T) {
	for _, s := range []float64{0, -1, math.Inf(1)} {
		if _, _, err := SolveDP(tinyProblem(), s); err == nil {
			t.Errorf("scale %v accepted", s)
		}
	}
}

func randomProblem(rng *rand.Rand, m, n int) *Problem {
	p := &Problem{}
	totalMin := 0.0
	for i := 0; i < m; i++ {
		cls := make([]Item, n)
		minW := math.Inf(1)
		for j := range cls {
			cls[j] = Item{
				Profit: float64(rng.Intn(50)),
				Weight: float64(rng.Intn(20)),
			}
			if cls[j].Weight < minW {
				minW = cls[j].Weight
			}
		}
		totalMin += minW
		p.Classes = append(p.Classes, cls)
	}
	p.Capacity = totalMin + float64(rng.Intn(30))
	return p
}

func TestDPandBBAgreeOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng, 2+rng.Intn(6), 2+rng.Intn(4))
		_, pBB, errBB := SolveBB(p)
		_, pDP, errDP := SolveDP(p, 1)
		if (errBB == nil) != (errDP == nil) {
			t.Fatalf("trial %d: feasibility disagreement: %v vs %v", trial, errBB, errDP)
		}
		if errBB != nil {
			continue
		}
		if math.Abs(pBB-pDP) > 1e-9 {
			t.Fatalf("trial %d: BB profit %v != DP profit %v", trial, pBB, pDP)
		}
	}
}

func TestGreedyFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 2+rng.Intn(6), 2+rng.Intn(4))
		choice, profit, err := SolveGreedy(p)
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		w := 0.0
		checkP := 0.0
		for i, j := range choice {
			w += p.Classes[i][j].Weight
			checkP += p.Classes[i][j].Profit
		}
		if w > p.Capacity+1e-9 {
			t.Fatalf("trial %d: greedy over capacity", trial)
		}
		if math.Abs(checkP-profit) > 1e-9 {
			t.Fatalf("trial %d: greedy profit accounting off", trial)
		}
		_, opt, err := SolveBB(p)
		if err != nil {
			t.Fatal(err)
		}
		if profit > opt+1e-9 {
			t.Fatalf("trial %d: greedy profit %v above optimum %v", trial, profit, opt)
		}
	}
}

func TestChoiceIsOnePerClass(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(3)), 5, 3)
	choice, _, err := SolveBB(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(choice) != 5 {
		t.Fatalf("choice length %d", len(choice))
	}
	for i, j := range choice {
		if j < 0 || j >= len(p.Classes[i]) {
			t.Fatalf("choice[%d] = %d out of range", i, j)
		}
	}
}
