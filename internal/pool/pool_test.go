package pool

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

func checkPooledInvariants(t *testing.T, p *Pool, w *workflow.Workflow, r *Result) {
	t.Helper()
	g := w.Graph()
	for i := 0; i < w.NumModules(); i++ {
		pl := r.Placements[i]
		if pl.Instance < 0 || pl.Instance >= len(p.Instances) {
			t.Fatalf("module %d unplaced", i)
		}
		if pl.Finish < pl.Start || pl.Start < 0 {
			t.Fatalf("module %d slot inverted: %+v", i, pl)
		}
		for _, v := range g.Succ(i) {
			need := r.Placements[i].Finish
			if r.Placements[v].Instance != pl.Instance && p.Bandwidth > 0 {
				need += w.DataSize(i, v) / p.Bandwidth
			}
			if r.Placements[v].Start < need-1e-9 {
				t.Fatalf("precedence violated on edge (%d,%d)", i, v)
			}
		}
	}
	// No overlap per instance.
	for inst := range p.Instances {
		var slots []Placement
		for i := 0; i < w.NumModules(); i++ {
			if r.Placements[i].Instance == inst {
				slots = append(slots, r.Placements[i])
			}
		}
		for a := range slots {
			for b := range slots {
				if a == b {
					continue
				}
				if slots[a].Start < slots[b].Finish-1e-9 && slots[b].Start < slots[a].Finish-1e-9 &&
					slots[a].Finish-slots[a].Start > 1e-12 && slots[b].Finish-slots[b].Start > 1e-12 {
					t.Fatalf("instance %d runs two modules at once", inst)
				}
			}
		}
	}
	if r.Makespan <= 0 && w.NumModules() > 0 {
		// zero only if all durations are zero
		total := 0.0
		for i := 0; i < w.NumModules(); i++ {
			total += r.Placements[i].Finish - r.Placements[i].Start
		}
		if total > 0 {
			t.Fatal("zero makespan with nonzero work")
		}
	}
}

func TestPoolValidate(t *testing.T) {
	good := Homogeneous(cloud.VMType{Name: "a", Power: 2, Rate: 1}, 2, 0, cloud.HourlyRoundUp)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Pool{
		{Billing: cloud.HourlyRoundUp},
		{Instances: []Instance{{Type: cloud.VMType{Power: 0}}}, Billing: cloud.HourlyRoundUp},
		{Instances: []Instance{{Type: cloud.VMType{Power: 1, Rate: -1}}}, Billing: cloud.HourlyRoundUp},
		{Instances: []Instance{{Type: cloud.VMType{Power: 1, Rate: 1}}}, Bandwidth: -1, Billing: cloud.HourlyRoundUp},
		{Instances: []Instance{{Type: cloud.VMType{Power: 1, Rate: 1}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pool %d accepted", i)
		}
	}
}

func TestHEFTSerializesOnOneInstance(t *testing.T) {
	p := Homogeneous(cloud.VMType{Name: "solo", Power: 10, Rate: 1}, 1, 0, cloud.HourlyRoundUp)
	rng := rand.New(rand.NewSource(1))
	w := gen.ForkJoin(rng, 4, 100, 100) // 4 x 10h branches
	r, err := HEFT(p, w)
	if err != nil {
		t.Fatal(err)
	}
	checkPooledInvariants(t, p, w, r)
	// fork(1h) + 4 serialized branches (10h each) + join(1h).
	if math.Abs(r.Makespan-42) > 1e-9 {
		t.Fatalf("makespan %v, want 42", r.Makespan)
	}
}

func TestHEFTParallelizesAcrossInstances(t *testing.T) {
	vt := cloud.VMType{Name: "worker", Power: 10, Rate: 1}
	rng := rand.New(rand.NewSource(1))
	w := gen.ForkJoin(rng, 4, 100, 100)
	r1, err := HEFT(Homogeneous(vt, 1, 0, cloud.HourlyRoundUp), w)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := HEFT(Homogeneous(vt, 4, 0, cloud.HourlyRoundUp), w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r4.Makespan-12) > 1e-9 { // 1 + 10 + 1
		t.Fatalf("4-instance makespan %v, want 12", r4.Makespan)
	}
	if r4.Makespan >= r1.Makespan {
		t.Fatal("extra instances did not help an embarrassingly parallel stage")
	}
}

func TestHEFTPrefersFasterInstanceForCriticalChain(t *testing.T) {
	p := &Pool{
		Instances: []Instance{
			{Name: "slow", Type: cloud.VMType{Name: "slow", Power: 5, Rate: 1}},
			{Name: "fast", Type: cloud.VMType{Name: "fast", Power: 20, Rate: 4}},
		},
		Billing: cloud.HourlyRoundUp,
	}
	w := workflow.NewPipeline([]float64{40, 40})
	r, err := HEFT(p, w)
	if err != nil {
		t.Fatal(err)
	}
	checkPooledInvariants(t, p, w, r)
	// Chain belongs on the fast instance: 2+2 = 4h.
	if math.Abs(r.Makespan-4) > 1e-9 {
		t.Fatalf("makespan %v, want 4", r.Makespan)
	}
	if r.Placements[0].Instance != 1 || r.Placements[1].Instance != 1 {
		t.Fatalf("chain not on the fast instance: %+v", r.Placements)
	}
}

func TestHEFTInsertionFillsGaps(t *testing.T) {
	// One instance; modules: A (2h) -> C (1h), B independent (1h).
	// Rank order schedules A, then C must wait for A; B can slot after.
	// With insertion, B fills any idle gap rather than extending the
	// schedule beyond necessity.
	p := Homogeneous(cloud.VMType{Name: "one", Power: 10, Rate: 1}, 1, 0, cloud.HourlyRoundUp)
	w := workflow.New()
	a := w.AddModule(workflow.Module{Name: "a", Workload: 20})
	b := w.AddModule(workflow.Module{Name: "b", Workload: 10})
	c := w.AddModule(workflow.Module{Name: "c", Workload: 10})
	if err := w.AddDependency(a, c, 0); err != nil {
		t.Fatal(err)
	}
	_ = b
	r, err := HEFT(p, w)
	if err != nil {
		t.Fatal(err)
	}
	checkPooledInvariants(t, p, w, r)
	if math.Abs(r.Makespan-4) > 1e-9 { // 2 + 1 + 1 serialized
		t.Fatalf("makespan %v, want 4", r.Makespan)
	}
}

func TestHEFTTransfersMatter(t *testing.T) {
	vt := cloud.VMType{Name: "w", Power: 10, Rate: 1}
	w := workflow.New()
	a := w.AddModule(workflow.Module{Name: "a", Workload: 10})
	b := w.AddModule(workflow.Module{Name: "b", Workload: 10})
	if err := w.AddDependency(a, b, 100); err != nil {
		t.Fatal(err)
	}
	// With bandwidth 10, moving b to a second instance costs a 10h
	// transfer; HEFT must co-locate the chain.
	p := Homogeneous(vt, 2, 10, cloud.HourlyRoundUp)
	r, err := HEFT(p, w)
	if err != nil {
		t.Fatal(err)
	}
	checkPooledInvariants(t, p, w, r)
	if r.Placements[0].Instance != r.Placements[1].Instance {
		t.Fatal("HEFT split a transfer-heavy chain across instances")
	}
	if math.Abs(r.Makespan-2) > 1e-9 {
		t.Fatalf("makespan %v, want 2", r.Makespan)
	}
}

func TestHEFTCostAccounting(t *testing.T) {
	vt := cloud.VMType{Name: "w", Power: 10, Rate: 2}
	p := Homogeneous(vt, 2, 0, cloud.HourlyRoundUp)
	rng := rand.New(rand.NewSource(2))
	w := gen.ForkJoin(rng, 2, 100, 100)
	r, err := HEFT(p, w)
	if err != nil {
		t.Fatal(err)
	}
	// Each branch 10h on its own instance; fixed fork/join run free.
	// Instance spans ~10-12h each, billed at rate 2.
	if r.Cost <= 0 || r.Cost > 2*13*2 {
		t.Fatalf("cost %v out of plausible range", r.Cost)
	}
}

func TestHEFTPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		m := 5 + rng.Intn(15)
		w, err := gen.Random(rng, gen.Params{
			Modules: m, Edges: rng.Intn(m * (m - 1) / 2),
			WorkloadMin: 10, WorkloadMax: 100,
			DataSizeMax: 10, AddEntryExit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := &Pool{Billing: cloud.HourlyRoundUp, Bandwidth: 50}
		for k := 0; k < 1+rng.Intn(5); k++ {
			p.Instances = append(p.Instances, Instance{
				Name: "i",
				Type: cloud.VMType{Name: "t", Power: 3 + rng.Float64()*20, Rate: 1 + rng.Float64()*5},
			})
		}
		r, err := HEFT(p, w)
		if err != nil {
			t.Fatal(err)
		}
		checkPooledInvariants(t, p, w, r)
	}
}

// TestPoolVsOneToOne compares the paper's one-to-one mapping with HEFT on
// the pool induced by its reuse plan: same instances, list scheduling may
// only fill gaps, so its makespan is within the analytic MED plus slack
// (and often below, since HEFT reorders across VM boundaries).
func TestPoolVsOneToOne(t *testing.T) {
	w, cat := workflow.PaperExample()
	m, _ := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	res, err := sched.Run(sched.CriticalGreedy(), w, m, 57)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := w.Evaluate(m, res.Schedule, nil)
	plan := w.PlanReuse(res.Schedule, ev.Timing, workflow.ReuseByInterval)
	p := FromReusePlan(cat, plan, 0, cloud.HourlyRoundUp)
	r, err := HEFT(p, w)
	if err != nil {
		t.Fatal(err)
	}
	checkPooledInvariants(t, p, w, r)
	if r.Makespan <= 0 {
		t.Fatal("pooled makespan zero")
	}
	// HEFT on the same hardware should not be drastically worse than
	// the one-to-one schedule that induced it.
	if r.Makespan > 2*res.MED {
		t.Fatalf("pooled makespan %v far above one-to-one %v", r.Makespan, res.MED)
	}
}
