// Package pool schedules workflows onto a FIXED set of provisioned VM
// instances with the classic HEFT list scheduler (Topcuoglu et al., cited
// as [11] in the paper). Where the MED-CC model asks "which VM type should
// each module get, one VM per module?", this package answers the
// complementary provisioning question from the paper's introduction —
// given a concrete pool of instances a user is willing to pay for, what
// makespan can the workflow achieve and what will the pool's occupancy
// bill be? Sweeping pool compositions against MED-CC schedules makes the
// one-to-one mapping assumption of the paper testable.
package pool

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"medcc/internal/cloud"
	"medcc/internal/workflow"
)

// Instance is one provisioned VM in the pool.
type Instance struct {
	Name string
	Type cloud.VMType
}

// Pool is a fixed set of instances plus the data fabric between them.
type Pool struct {
	Instances []Instance
	// Bandwidth is the shared-storage data rate between distinct
	// instances; 0 means transfers are free. Same-instance transfers
	// are always free.
	Bandwidth float64
	// Billing prices each instance's occupancy span.
	Billing cloud.BillingPolicy
}

// Validate checks pool sanity.
func (p *Pool) Validate() error {
	if len(p.Instances) == 0 {
		return errors.New("pool: no instances")
	}
	for i, in := range p.Instances {
		if !(in.Type.Power > 0) {
			return fmt.Errorf("pool: instance %d has invalid power %v", i, in.Type.Power)
		}
		if in.Type.Rate < 0 || math.IsNaN(in.Type.Rate) {
			return fmt.Errorf("pool: instance %d has invalid rate %v", i, in.Type.Rate)
		}
	}
	if p.Bandwidth < 0 || math.IsNaN(p.Bandwidth) {
		return fmt.Errorf("pool: invalid bandwidth %v", p.Bandwidth)
	}
	if p.Billing == nil {
		return errors.New("pool: nil billing policy")
	}
	return nil
}

// Placement records one module's slot on an instance.
type Placement struct {
	Instance int
	Start    float64
	Finish   float64
}

// Result is a pooled schedule.
type Result struct {
	// Placements is indexed by module.
	Placements []Placement
	// Makespan is the latest finish time.
	Makespan float64
	// Cost sums each used instance's billed occupancy (first start to
	// last finish on that instance).
	Cost float64
}

// HEFT runs the Heterogeneous Earliest Finish Time heuristic: modules are
// prioritized by upward rank (mean execution time plus mean transfer time
// along the longest descendant chain) and greedily placed, in rank order,
// on the instance that minimizes their earliest finish time, with
// insertion into idle gaps allowed.
func HEFT(p *Pool, w *workflow.Workflow) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	g := w.Graph()
	n := w.NumModules()

	exec := func(i, inst int) float64 {
		if w.Module(i).Fixed {
			return w.Module(i).FixedTime
		}
		return p.Instances[inst].Type.ExecTime(w.Module(i).Workload)
	}
	meanExec := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for inst := range p.Instances {
			s += exec(i, inst)
		}
		meanExec[i] = s / float64(len(p.Instances))
	}
	xfer := func(u, v int) float64 {
		if p.Bandwidth <= 0 {
			return 0
		}
		return w.DataSize(u, v) / p.Bandwidth
	}

	// Upward ranks in reverse topological order.
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]float64, n)
	for k := len(order) - 1; k >= 0; k-- {
		u := order[k]
		best := 0.0
		for _, v := range g.Succ(u) {
			if r := xfer(u, v) + rank[v]; r > best {
				best = r
			}
		}
		rank[u] = meanExec[u] + best
	}
	prio := append([]int(nil), order...)
	sort.SliceStable(prio, func(a, b int) bool {
		// medcc:lint-ignore floateq — comparator needs a strict weak order; exact rank split, then index tie-break.
		if rank[prio[a]] != rank[prio[b]] {
			return rank[prio[a]] > rank[prio[b]]
		}
		return prio[a] < prio[b]
	})
	// HEFT requires a topological-compatible processing order; upward
	// ranks guarantee rank(pred) > rank(succ) when transfers and times
	// are non-negative, with ties broken by index; validate anyway to
	// catch degenerate all-zero-time inputs.
	pos := make([]int, n)
	for k, u := range prio {
		pos[u] = k
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Succ(u) {
			if pos[u] > pos[v] {
				return nil, fmt.Errorf("pool: rank order violates precedence (%d after %d)", u, v)
			}
		}
	}

	busy := make([][]slot, len(p.Instances))
	res := &Result{Placements: make([]Placement, n)}
	for i := range res.Placements {
		res.Placements[i] = Placement{Instance: -1}
	}

	for _, i := range prio {
		bestInst, bestStart, bestFinish := -1, 0.0, math.Inf(1)
		for inst := range p.Instances {
			// Data-ready time on this instance.
			ready := 0.0
			for _, pr := range g.Pred(i) {
				a := res.Placements[pr].Finish
				if res.Placements[pr].Instance != inst {
					a += xfer(pr, i)
				}
				if a > ready {
					ready = a
				}
			}
			d := exec(i, inst)
			start := insertionStart(busy[inst], ready, d)
			if start+d < bestFinish-1e-12 {
				bestInst, bestStart, bestFinish = inst, start, start+d
			}
		}
		res.Placements[i] = Placement{Instance: bestInst, Start: bestStart, Finish: bestFinish}
		busy[bestInst] = insertSlot(busy[bestInst], slot{bestStart, bestFinish})
		if bestFinish > res.Makespan {
			res.Makespan = bestFinish
		}
	}

	// Bill each used instance for its occupancy span.
	for inst := range p.Instances {
		if len(busy[inst]) == 0 {
			continue
		}
		span := busy[inst][len(busy[inst])-1].finish - busy[inst][0].start
		res.Cost += p.Billing.BilledTime(span) * p.Instances[inst].Type.Rate
	}
	return res, nil
}

// slot is one occupied interval on an instance's timeline.
type slot struct{ start, finish float64 }

// insertionStart finds the earliest start >= ready on a sorted busy list
// such that [start, start+d) fits in a gap (or after the last slot).
func insertionStart(busy []slot, ready, d float64) float64 {
	start := ready
	for _, s := range busy {
		if start+d <= s.start+1e-12 {
			return start
		}
		if s.finish > start {
			start = s.finish
		}
	}
	return start
}

// insertSlot inserts keeping the list sorted by start time.
func insertSlot(busy []slot, s slot) []slot {
	k := sort.Search(len(busy), func(i int) bool { return busy[i].start >= s.start })
	busy = append(busy, slot{})
	copy(busy[k+1:], busy[k:])
	busy[k] = s
	return busy
}

// Homogeneous builds a pool of count identical instances of the given
// type, named "<type>-0".."<type>-(count-1)".
func Homogeneous(vt cloud.VMType, count int, bandwidth float64, billing cloud.BillingPolicy) *Pool {
	p := &Pool{Bandwidth: bandwidth, Billing: billing}
	for i := 0; i < count; i++ {
		p.Instances = append(p.Instances, Instance{
			Name: fmt.Sprintf("%s-%d", vt.Name, i),
			Type: vt,
		})
	}
	return p
}

// FromReusePlan converts a MED-CC schedule's reuse plan into a pool with
// one instance per planned VM, enabling apples-to-apples comparison of
// the paper's one-to-one model against pooled list scheduling.
func FromReusePlan(cat cloud.Catalog, plan *workflow.ReusePlan, bandwidth float64, billing cloud.BillingPolicy) *Pool {
	p := &Pool{Bandwidth: bandwidth, Billing: billing}
	for v := 0; v < plan.NumVMs(); v++ {
		vt := cat[plan.TypeOf[v]]
		p.Instances = append(p.Instances, Instance{
			Name: fmt.Sprintf("vm%d-%s", v, vt.Name),
			Type: vt,
		})
	}
	return p
}
