package pool

import (
	"math"
	"sort"

	"medcc/internal/workflow"
)

// HBMCT implements the Hybrid Balanced Minimum Completion Time heuristic
// of Sakellariou and Zhao (the paper's reference [12]): tasks are ranked
// as in HEFT, partitioned into groups of mutually independent tasks in
// rank order, and each group is scheduled by Balanced Minimum Completion
// Time — start from the per-task minimum completion time assignment, then
// move tasks off the most-loaded instance while doing so reduces the
// group's finish time. Unlike HEFT it reasons about a whole group of
// ready tasks at once, which balances wide fan-outs better on small
// pools.
//
// medcc:deterministic — ties break on task index so runs are replayable
func HBMCT(p *Pool, w *workflow.Workflow) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	g := w.Graph()
	n := w.NumModules()

	exec := func(i, inst int) float64 {
		if w.Module(i).Fixed {
			return w.Module(i).FixedTime
		}
		return p.Instances[inst].Type.ExecTime(w.Module(i).Workload)
	}
	xfer := func(u, v int) float64 {
		if p.Bandwidth <= 0 {
			return 0
		}
		return w.DataSize(u, v) / p.Bandwidth
	}

	// Upward ranks with mean execution times (as in HEFT).
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	meanExec := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for inst := range p.Instances {
			s += exec(i, inst)
		}
		meanExec[i] = s / float64(len(p.Instances))
	}
	rank := make([]float64, n)
	for k := len(order) - 1; k >= 0; k-- {
		u := order[k]
		best := 0.0
		for _, v := range g.Succ(u) {
			if r := xfer(u, v) + rank[v]; r > best {
				best = r
			}
		}
		rank[u] = meanExec[u] + best
	}
	prio := append([]int(nil), order...)
	sort.SliceStable(prio, func(a, b int) bool {
		// medcc:lint-ignore floateq — comparator needs a strict weak order; exact rank split, then index tie-break.
		if rank[prio[a]] != rank[prio[b]] {
			return rank[prio[a]] > rank[prio[b]]
		}
		return prio[a] < prio[b]
	})

	// Group formation: walk tasks in rank order; a task joins the
	// current group unless one of its ancestors is already in it
	// (groups must be mutually independent).
	inCurrent := make([]bool, n)
	var groups [][]int
	var current []int
	dependsOnCurrent := func(v int) bool {
		// BFS over predecessors; group sizes are small, graphs are
		// moderate, so the simple search is fine.
		seen := make(map[int]bool)
		stack := append([]int(nil), g.Pred(v)...)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if inCurrent[u] {
				return true
			}
			if seen[u] {
				continue
			}
			seen[u] = true
			stack = append(stack, g.Pred(u)...)
		}
		return false
	}
	flush := func() {
		if len(current) > 0 {
			groups = append(groups, current)
			for _, i := range current {
				inCurrent[i] = false
			}
			current = nil
		}
	}
	for _, v := range prio {
		if dependsOnCurrent(v) {
			flush()
		}
		current = append(current, v)
		inCurrent[v] = true
	}
	flush()

	// Schedule groups in order with append-only instance timelines.
	avail := make([]float64, len(p.Instances)) // instance free time
	res := &Result{Placements: make([]Placement, n)}
	for i := range res.Placements {
		res.Placements[i] = Placement{Instance: -1}
	}

	readyOn := func(i, inst int) float64 {
		r := 0.0
		for _, pr := range g.Pred(i) {
			a := res.Placements[pr].Finish
			if res.Placements[pr].Instance != inst {
				a += xfer(pr, i)
			}
			if a > r {
				r = a
			}
		}
		return r
	}

	for _, group := range groups {
		// Initial MCT assignment within the group.
		assign := make(map[int]int, len(group))
		loads := append([]float64(nil), avail...)
		starts := make(map[int]float64, len(group))
		place := func(i int) {
			bestInst, bestFinish := -1, math.Inf(1)
			for inst := range p.Instances {
				start := math.Max(loads[inst], readyOn(i, inst))
				if f := start + exec(i, inst); f < bestFinish-1e-12 {
					bestInst, bestFinish = inst, f
				}
			}
			start := math.Max(loads[bestInst], readyOn(i, bestInst))
			assign[i] = bestInst
			starts[i] = start
			loads[bestInst] = start + exec(i, bestInst)
		}
		for _, i := range group {
			place(i)
		}
		// Balancing: while moving a task off the most-loaded instance
		// reduces the group's completion time, do it.
		recompute := func() {
			loads = append(loads[:0], avail...)
			for _, i := range group {
				inst := assign[i]
				start := math.Max(loads[inst], readyOn(i, inst))
				starts[i] = start
				loads[inst] = start + exec(i, inst)
			}
		}
		groupFinish := func() float64 {
			f := 0.0
			for _, l := range loads {
				if l > f {
					f = l
				}
			}
			return f
		}
		for iter := 0; iter < len(group)*len(p.Instances); iter++ {
			cur := groupFinish()
			// Most-loaded instance.
			worst := 0
			for inst := range loads {
				if loads[inst] > loads[worst] {
					worst = inst
				}
			}
			improved := false
			for _, i := range group {
				if assign[i] != worst {
					continue
				}
				for inst := range p.Instances {
					if inst == worst {
						continue
					}
					old := assign[i]
					assign[i] = inst
					recompute()
					if groupFinish() < cur-1e-12 {
						improved = true
						cur = groupFinish()
						break
					}
					assign[i] = old
					recompute()
				}
				if improved {
					break
				}
			}
			if !improved {
				break
			}
		}
		// Commit the group.
		recompute()
		for _, i := range group {
			inst := assign[i]
			res.Placements[i] = Placement{
				Instance: inst,
				Start:    starts[i],
				Finish:   starts[i] + exec(i, inst),
			}
		}
		copy(avail, loads)
		for _, l := range loads {
			if l > res.Makespan {
				res.Makespan = l
			}
		}
	}

	// Bill occupancy spans as in HEFT.
	first := make([]float64, len(p.Instances))
	last := make([]float64, len(p.Instances))
	used := make([]bool, len(p.Instances))
	for i := range first {
		first[i] = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		pl := res.Placements[i]
		if pl.Start < first[pl.Instance] {
			first[pl.Instance] = pl.Start
		}
		if pl.Finish > last[pl.Instance] {
			last[pl.Instance] = pl.Finish
		}
		used[pl.Instance] = true
	}
	for inst := range p.Instances {
		if used[inst] {
			res.Cost += p.Billing.BilledTime(last[inst]-first[inst]) * p.Instances[inst].Type.Rate
		}
	}
	return res, nil
}
