package pool

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/workflow"
)

func TestHBMCTBalancesForkAcrossInstances(t *testing.T) {
	vt := cloud.VMType{Name: "w", Power: 10, Rate: 1}
	p := Homogeneous(vt, 3, 0, cloud.HourlyRoundUp)
	rng := rand.New(rand.NewSource(1))
	w := gen.ForkJoin(rng, 6, 100, 100) // 6 x 10h branches on 3 instances
	r, err := HBMCT(p, w)
	if err != nil {
		t.Fatal(err)
	}
	checkPooledInvariants(t, p, w, r)
	// Perfect balance: 2 branches per instance -> 1 + 20 + 1.
	if math.Abs(r.Makespan-22) > 1e-9 {
		t.Fatalf("makespan %v, want 22", r.Makespan)
	}
	counts := map[int]int{}
	for _, i := range w.Schedulable() {
		counts[r.Placements[i].Instance]++
	}
	for inst, c := range counts {
		if c != 2 {
			t.Fatalf("instance %d got %d branches, want 2", inst, c)
		}
	}
}

func TestHBMCTChainStaysOnFastInstance(t *testing.T) {
	p := &Pool{
		Instances: []Instance{
			{Name: "slow", Type: cloud.VMType{Name: "slow", Power: 5, Rate: 1}},
			{Name: "fast", Type: cloud.VMType{Name: "fast", Power: 20, Rate: 4}},
		},
		Billing: cloud.HourlyRoundUp,
	}
	w := workflow.NewPipeline([]float64{40, 40, 40})
	r, err := HBMCT(p, w)
	if err != nil {
		t.Fatal(err)
	}
	checkPooledInvariants(t, p, w, r)
	if math.Abs(r.Makespan-6) > 1e-9 { // 3 x 2h on the fast instance
		t.Fatalf("makespan %v, want 6", r.Makespan)
	}
}

func TestHBMCTValidOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		m := 5 + rng.Intn(15)
		w, err := gen.Random(rng, gen.Params{
			Modules: m, Edges: rng.Intn(m * (m - 1) / 2),
			WorkloadMin: 10, WorkloadMax: 100,
			DataSizeMax: 10, AddEntryExit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := &Pool{Billing: cloud.HourlyRoundUp, Bandwidth: 50}
		for k := 0; k < 1+rng.Intn(4); k++ {
			p.Instances = append(p.Instances, Instance{
				Name: "i",
				Type: cloud.VMType{Name: "t", Power: 3 + rng.Float64()*20, Rate: 1 + rng.Float64()*5},
			})
		}
		r, err := HBMCT(p, w)
		if err != nil {
			t.Fatal(err)
		}
		checkPooledInvariants(t, p, w, r)
		if r.Cost < 0 {
			t.Fatal("negative cost")
		}
	}
}

// TestHBMCTvsHEFTStatistical compares the two list schedulers over random
// instances: neither dominates, but both must stay within a reasonable
// factor of each other and HBMCT should win on wide fork-heavy graphs
// more often than it loses.
func TestHBMCTvsHEFTStatistical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hbmctWins, heftWins := 0, 0
	for trial := 0; trial < 30; trial++ {
		m := 10 + rng.Intn(20)
		w, err := gen.Random(rng, gen.Params{
			Modules: m, Edges: m + rng.Intn(2*m),
			WorkloadMin: 50, WorkloadMax: 150,
			DataSizeMax: 10, AddEntryExit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Heterogeneous pool: one fast instance next to two slow ones,
		// where earliest-finish greed and group balancing diverge.
		p := &Pool{
			Billing:   cloud.HourlyRoundUp,
			Bandwidth: 100,
			Instances: []Instance{
				{Name: "s1", Type: cloud.VMType{Name: "slow", Power: 10, Rate: 1}},
				{Name: "s2", Type: cloud.VMType{Name: "slow", Power: 10, Rate: 1}},
				{Name: "f", Type: cloud.VMType{Name: "fast", Power: 30, Rate: 3}},
			},
		}
		rh, err := HEFT(p, w)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := HBMCT(p, w)
		if err != nil {
			t.Fatal(err)
		}
		checkPooledInvariants(t, p, w, rb)
		if rb.Makespan < rh.Makespan-1e-9 {
			hbmctWins++
		}
		if rh.Makespan < rb.Makespan-1e-9 {
			heftWins++
		}
		if rb.Makespan > 3*rh.Makespan || rh.Makespan > 3*rb.Makespan {
			t.Fatalf("trial %d: schedulers diverged wildly: %v vs %v", trial, rb.Makespan, rh.Makespan)
		}
	}
	t.Logf("HBMCT wins %d, HEFT wins %d", hbmctWins, heftWins)
	if hbmctWins+heftWins == 0 {
		t.Fatal("HEFT and HBMCT identical on every instance — suspicious")
	}
}
