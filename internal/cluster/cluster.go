// Package cluster implements the workflow clustering preprocessing the
// paper assumes has already happened to its inputs (§III-B: "scientific
// workflows that have been preprocessed by an appropriate clustering
// technique ... such that a group of modules in the original workflow are
// bundled together as one aggregate module"). Two classic techniques from
// the cited Pegasus line of work are provided:
//
//   - Vertical clustering merges single-entry/single-exit chains, the
//     transformation that turns the full WRF program graph (Fig. 13) into
//     the grouped six-module workflow (Fig. 14): ungrib -> metgrid ->
//     real -> wrf -> ARWpost pipelines collapse into one aggregate each.
//   - Horizontal clustering merges independent modules at the same
//     topological level into bounded-size groups, reducing the width of
//     embarrassingly parallel stages.
//
// Both preserve execution semantics under the additive workload model:
// an aggregate's workload is the sum of its members', edges are the union
// of the members' external edges, and intra-cluster data movement
// disappears (it becomes local I/O on the shared VM).
package cluster

import (
	"fmt"
	"sort"

	"medcc/internal/workflow"
)

// Result is a clustered workflow plus the mapping back to the original.
type Result struct {
	// Clustered is the aggregate workflow.
	Clustered *workflow.Workflow
	// Members[c] lists the original module indices merged into
	// aggregate module c, in topological order.
	Members [][]int
	// ClusterOf[i] is the aggregate index of original module i.
	ClusterOf []int
}

// Vertical merges maximal chains: whenever module u has exactly one
// successor v, v has exactly one predecessor u, and neither is Fixed, the
// two are bundled. Applied transitively, every single-entry/single-exit
// pipeline collapses to one aggregate module.
func Vertical(w *workflow.Workflow) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	g := w.Graph()
	n := w.NumModules()
	parent := newUnionFind(n)
	for u := 0; u < n; u++ {
		if w.Module(u).Fixed || g.OutDegree(u) != 1 {
			continue
		}
		v := g.Succ(u)[0]
		if w.Module(v).Fixed || g.InDegree(v) != 1 {
			continue
		}
		parent.union(u, v)
	}
	return build(w, parent)
}

// Horizontal merges independent modules that share a topological level
// (longest-path depth from the sources) into groups of at most maxGroup,
// filling groups in index order. Fixed modules are never merged. Same-
// level modules cannot reach one another, so merging keeps the graph
// acyclic.
func Horizontal(w *workflow.Workflow, maxGroup int) (*Result, error) {
	if maxGroup < 1 {
		return nil, fmt.Errorf("cluster: maxGroup %d < 1", maxGroup)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	g := w.Graph()
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	level := make([]int, w.NumModules())
	for _, u := range order {
		for _, p := range g.Pred(u) {
			if level[p]+1 > level[u] {
				level[u] = level[p] + 1
			}
		}
	}
	byLevel := map[int][]int{}
	for i := 0; i < w.NumModules(); i++ {
		if w.Module(i).Fixed {
			continue
		}
		byLevel[level[i]] = append(byLevel[level[i]], i)
	}
	// Levels are visited in sorted order: the groups formed are disjoint
	// across levels, but aggregate-module numbering downstream follows
	// union order, so map iteration order must not reach it (found by
	// mapiter).
	levels := make([]int, 0, len(byLevel))
	for lvl := range byLevel {
		levels = append(levels, lvl)
	}
	sort.Ints(levels)
	parent := newUnionFind(w.NumModules())
	for _, lvl := range levels {
		mods := byLevel[lvl]
		sort.Ints(mods)
		for start := 0; start < len(mods); start += maxGroup {
			end := start + maxGroup
			if end > len(mods) {
				end = len(mods)
			}
			for k := start + 1; k < end; k++ {
				parent.union(mods[start], mods[k])
			}
		}
	}
	return build(w, parent)
}

// build materializes the aggregate workflow from a union-find partition.
func build(w *workflow.Workflow, uf *unionFind) (*Result, error) {
	g := w.Graph()
	n := w.NumModules()

	// Assign dense cluster ids in order of the smallest member, keeping
	// the output deterministic and roughly topological.
	repToCluster := map[int]int{}
	var members [][]int
	for i := 0; i < n; i++ {
		r := uf.find(i)
		if _, ok := repToCluster[r]; !ok {
			repToCluster[r] = len(members)
			members = append(members, nil)
		}
		members[repToCluster[r]] = append(members[repToCluster[r]], i)
	}
	clusterOf := make([]int, n)
	for i := 0; i < n; i++ {
		clusterOf[i] = repToCluster[uf.find(i)]
	}

	out := workflow.New()
	for c, mems := range members {
		if len(mems) == 1 {
			out.AddModule(w.Module(mems[0]))
			continue
		}
		var wl float64
		name := ""
		for _, i := range mems {
			if w.Module(i).Fixed {
				return nil, fmt.Errorf("cluster: fixed module %d inside cluster %d", i, c)
			}
			wl += w.Module(i).Workload
			if name != "" {
				name += "+"
			}
			name += w.Module(i).Name
		}
		out.AddModule(workflow.Module{Name: name, Workload: wl})
	}

	// External edges: union of member edges, data sizes summed over
	// parallel originals; intra-cluster edges vanish.
	edgeData := map[[2]int]float64{}
	var edgeOrder [][2]int
	for u := 0; u < n; u++ {
		for _, v := range g.Succ(u) {
			cu, cv := clusterOf[u], clusterOf[v]
			if cu == cv {
				continue
			}
			key := [2]int{cu, cv}
			if _, ok := edgeData[key]; !ok {
				edgeOrder = append(edgeOrder, key)
			}
			edgeData[key] += w.DataSize(u, v)
		}
	}
	for _, key := range edgeOrder {
		if err := out.AddDependency(key[0], key[1], edgeData[key]); err != nil {
			return nil, fmt.Errorf("cluster: clustering created an invalid graph: %w", err)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: clustered workflow invalid: %w", err)
	}
	return &Result{Clustered: out, Members: members, ClusterOf: clusterOf}, nil
}

// ExpandSchedule translates a schedule of the clustered workflow back to
// the original modules: every member of a cluster inherits the cluster's
// VM type (they share the aggregate's VM).
func (r *Result) ExpandSchedule(s workflow.Schedule) workflow.Schedule {
	out := make(workflow.Schedule, len(r.ClusterOf))
	for i, c := range r.ClusterOf {
		out[i] = s[c]
	}
	return out
}

// unionFind is a minimal disjoint-set structure with path compression.
type unionFind struct{ p []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{p: make([]int, n)}
	for i := range u.p {
		u.p[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.p[x] != x {
		u.p[x] = u.p[u.p[x]]
		x = u.p[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		// Attach the larger root under the smaller so cluster ids
		// follow the smallest member.
		if ra < rb {
			u.p[rb] = ra
		} else {
			u.p[ra] = rb
		}
	}
}
