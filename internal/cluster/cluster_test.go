package cluster

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
	"medcc/internal/wrf"
)

func totalWorkload(w *workflow.Workflow) float64 {
	s := 0.0
	for _, i := range w.Schedulable() {
		s += w.Module(i).Workload
	}
	return s
}

func checkPartition(t *testing.T, w *workflow.Workflow, r *Result) {
	t.Helper()
	seen := make([]bool, w.NumModules())
	for c, mems := range r.Members {
		for _, i := range mems {
			if seen[i] {
				t.Fatalf("module %d in two clusters", i)
			}
			seen[i] = true
			if r.ClusterOf[i] != c {
				t.Fatalf("ClusterOf[%d] = %d, want %d", i, r.ClusterOf[i], c)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("module %d missing from partition", i)
		}
	}
	if math.Abs(totalWorkload(w)-totalWorkload(r.Clustered)) > 1e-9 {
		t.Fatal("workload not conserved")
	}
	if err := r.Clustered.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVerticalCollapsesPipeline(t *testing.T) {
	w := workflow.NewPipeline([]float64{10, 20, 30, 40})
	r, err := Vertical(w)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, w, r)
	if r.Clustered.NumModules() != 1 {
		t.Fatalf("pipeline collapsed to %d modules, want 1", r.Clustered.NumModules())
	}
	if r.Clustered.Module(0).Workload != 100 {
		t.Fatalf("aggregate workload %v", r.Clustered.Module(0).Workload)
	}
}

func TestVerticalKeepsBranchPoints(t *testing.T) {
	// diamond: a -> {b, c} -> d must not merge across the branch.
	w := workflow.New()
	a := w.AddModule(workflow.Module{Name: "a", Workload: 1})
	b := w.AddModule(workflow.Module{Name: "b", Workload: 1})
	c := w.AddModule(workflow.Module{Name: "c", Workload: 1})
	d := w.AddModule(workflow.Module{Name: "d", Workload: 1})
	for _, e := range [][2]int{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := w.AddDependency(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Vertical(w)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, w, r)
	if r.Clustered.NumModules() != 4 {
		t.Fatalf("diamond clustered to %d modules, want 4", r.Clustered.NumModules())
	}
}

func TestVerticalNeverMergesFixedModules(t *testing.T) {
	w := workflow.New()
	e := w.AddModule(workflow.Module{Name: "entry", Fixed: true, FixedTime: 1})
	m1 := w.AddModule(workflow.Module{Name: "m1", Workload: 5})
	m2 := w.AddModule(workflow.Module{Name: "m2", Workload: 5})
	x := w.AddModule(workflow.Module{Name: "exit", Fixed: true, FixedTime: 1})
	for _, ed := range [][2]int{{e, m1}, {m1, m2}, {m2, x}} {
		if err := w.AddDependency(ed[0], ed[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Vertical(w)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, w, r)
	// entry and exit stay alone; m1+m2 merge.
	if r.Clustered.NumModules() != 3 {
		t.Fatalf("%d modules, want 3", r.Clustered.NumModules())
	}
	if len(r.Clustered.Schedulable()) != 1 {
		t.Fatal("compute chain did not merge")
	}
}

// TestVerticalTurnsFullWRFIntoGroupedShape applies vertical clustering to
// the full Fig. 13 WRF program graph: each ungrib->...->ARWpost pipeline
// must collapse, leaving a narrow aggregate workflow like Fig. 14's.
func TestVerticalTurnsFullWRFIntoGroupedShape(t *testing.T) {
	full := wrf.Full() // 19 modules
	r, err := Vertical(full)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, full, r)
	if got := r.Clustered.NumModules(); got >= full.NumModules() || got > 10 {
		t.Fatalf("full WRF clustered to %d modules", got)
	}
	// The wrf.exe-dominated pipelines must have merged: some aggregate
	// carries the 700-unit workload plus its pipeline neighbors.
	found := false
	for _, i := range r.Clustered.Schedulable() {
		if r.Clustered.Module(i).Workload > 700 {
			found = true
		}
	}
	if !found {
		t.Fatal("no aggregate contains a wrf.exe pipeline")
	}
}

func TestHorizontalGroupsLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := gen.ForkJoin(rng, 9, 10, 10) // 9 parallel branches
	r, err := Horizontal(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, w, r)
	// 9 branches in groups of 3 -> 3 aggregates + 2 fixed = 5 modules.
	if r.Clustered.NumModules() != 5 {
		t.Fatalf("%d modules, want 5", r.Clustered.NumModules())
	}
	for _, i := range r.Clustered.Schedulable() {
		if math.Abs(r.Clustered.Module(i).Workload-30) > 1e-9 {
			t.Fatalf("group workload %v, want 30", r.Clustered.Module(i).Workload)
		}
	}
}

func TestHorizontalRejectsBadGroupSize(t *testing.T) {
	w := workflow.NewPipeline([]float64{1, 2})
	if _, err := Horizontal(w, 0); err == nil {
		t.Fatal("maxGroup 0 accepted")
	}
}

func TestClusteringPropertiesOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		m := 5 + rng.Intn(20)
		w, err := gen.Random(rng, gen.Params{
			Modules: m, Edges: rng.Intn(m * (m - 1) / 2),
			WorkloadMin: 1, WorkloadMax: 10,
			DataSizeMax: 5, AddEntryExit: trial%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []func() (*Result, error){
			func() (*Result, error) { return Vertical(w) },
			func() (*Result, error) { return Horizontal(w, 1+rng.Intn(4)) },
		} {
			r, err := f()
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			checkPartition(t, w, r)
			if r.Clustered.NumModules() > w.NumModules() {
				t.Fatalf("trial %d: clustering grew the workflow", trial)
			}
		}
	}
}

// TestExpandScheduleRoundTrip schedules a clustered workflow and expands
// the result: every original module inherits its aggregate's type, and
// the expanded schedule is valid for the original workflow.
func TestExpandScheduleRoundTrip(t *testing.T) {
	full := wrf.Full()
	r, err := Vertical(full)
	if err != nil {
		t.Fatal(err)
	}
	cat := cloud.PaperExampleCatalog()
	m, err := r.Clustered.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(r.Clustered)
	res, err := sched.Run(sched.CriticalGreedy(), r.Clustered, m, (cmin+cmax)/2)
	if err != nil {
		t.Fatal(err)
	}
	expanded := r.ExpandSchedule(res.Schedule)
	if err := full.ValidateSchedule(expanded, len(cat)); err != nil {
		t.Fatal(err)
	}
	for i := range expanded {
		if expanded[i] != res.Schedule[r.ClusterOf[i]] {
			t.Fatalf("module %d type mismatch after expansion", i)
		}
	}
}

// TestClusteringReducesSchedulingCost is the motivation check: clustering
// shrinks the aggregate module count (and, with round-up billing, usually
// Cmin too, since merged chains share billed hours).
func TestClusteringReducesSchedulingCost(t *testing.T) {
	full := wrf.Full()
	r, err := Vertical(full)
	if err != nil {
		t.Fatal(err)
	}
	cat := cloud.PaperExampleCatalog()
	mFull, _ := full.BuildMatrices(cat, cloud.HourlyRoundUp)
	mClus, _ := r.Clustered.BuildMatrices(cat, cloud.HourlyRoundUp)
	cminFull, _ := mFull.BudgetRange(full)
	cminClus, _ := mClus.BudgetRange(r.Clustered)
	if cminClus > cminFull+1e-9 {
		t.Fatalf("clustering raised Cmin: %v vs %v", cminClus, cminFull)
	}
}
