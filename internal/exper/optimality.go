package exper

import (
	"math"

	"medcc/internal/gen"
)

// TableIIIRow compares Critical-Greedy against the exhaustive optimum on
// one small random instance at a random budget (Table III of the paper).
type TableIIIRow struct {
	Size     gen.ProblemSize
	Instance int
	CG       float64
	Optimal  float64
}

// TableIIISizes are the paper's three small-scale problem sizes.
func TableIIISizes() []gen.ProblemSize {
	return []gen.ProblemSize{{M: 5, E: 6, N: 3}, {M: 6, E: 11, N: 3}, {M: 7, E: 14, N: 3}}
}

// ExtendedOptimalitySizes are the larger exact-baseline sizes unlocked by
// the parallel branch-and-bound solver: still three VM types, but 10 to 14
// modules, roughly doubling the assignment-space exponent of the paper's
// largest optimality instance. They back the opt-in extended runs of the
// optimality studies (cmd/experiments -optext).
func ExtendedOptimalitySizes() []gen.ProblemSize {
	return []gen.ProblemSize{{M: 10, E: 22, N: 3}, {M: 12, E: 27, N: 3}, {M: 14, E: 33, N: 3}}
}

// TableIII regenerates Table III: instancesPerSize random instances per
// small problem size, each scheduled by CG and by exhaustive search at a
// random budget within [Cmin, Cmax]. The paper uses 5 instances per size.
func TableIII(seed int64, instancesPerSize int) ([]TableIIIRow, error) {
	return TableIIIAt(seed, instancesPerSize, TableIIISizes())
}

// TableIIIAt is TableIII over caller-chosen problem sizes, so the extended
// exact-baseline sizes can reuse the same harness. Each campaign worker
// owns a scratch with a pooled generator, schedulers, and exact solver;
// the numbers are bit-identical to the one-shot path and independent of
// the worker count. It errors if the exact solver fails to prove
// optimality on any instance within its node limit.
func TableIIIAt(seed int64, instancesPerSize int, sizes []gen.ProblemSize) ([]TableIIIRow, error) {
	rows := make([]TableIIIRow, len(sizes)*instancesPerSize)
	errs := make([]error, len(rows))
	pool := newScratchPool(len(rows))
	parallelForWorkers(len(rows), func(wk, k int) {
		cs := &pool[wk]
		size := sizes[k/instancesPerSize]
		inst := k % instancesPerSize
		cmin, cmax, err := cs.smallInstance(seed, k, size)
		if err != nil {
			errs[k] = err
			return
		}
		// A separate stream for the budget draw: reusing newRNG(seed, k)
		// would replay the instance generator's first draw and correlate
		// the budget with the first module's workload.
		rng := newRNG(seed+1_000_000_007, k)
		budget := cmin + rng.Float64()*(cmax-cmin)
		cg, err := cs.med("critical-greedy", budget)
		if err != nil {
			errs[k] = err
			return
		}
		opt, err := cs.optimalMED(budget)
		if err != nil {
			errs[k] = err
			return
		}
		rows[k] = TableIIIRow{Size: size, Instance: inst + 1, CG: cg, Optimal: opt}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Fig7Row is one bar group of Fig. 7: over many random instances of one
// problem size, the percentage of instances where each algorithm found a
// schedule with the optimal MED. GainWRFPct is the GAIN3 variant
// reverse-engineered from the paper's Table VII (sched.Gain3WRF), the bar
// the paper itself plots; GainPct is the literal-reading GAIN3.
type Fig7Row struct {
	Size       gen.ProblemSize
	Instances  int
	CGPct      float64
	GainPct    float64
	GainWRFPct float64
}

// Fig7Sizes are the four problem sizes of Fig. 7.
func Fig7Sizes() []gen.ProblemSize {
	return []gen.ProblemSize{{M: 5, E: 6, N: 3}, {M: 6, E: 11, N: 3}, {M: 7, E: 14, N: 3}, {M: 8, E: 18, N: 3}}
}

// Fig7 regenerates Fig. 7: for each size, instances random workflows with
// the budget at the median of [Cmin, Cmax]; report how often each
// heuristic matches the optimal MED. The paper uses 100 instances.
func Fig7(seed int64, instances int) ([]Fig7Row, error) {
	return Fig7At(seed, instances, Fig7Sizes())
}

// Fig7At is Fig7 over caller-chosen problem sizes (the opt-in extended
// exact-baseline sizes reuse it). Like TableIIIAt it runs on pooled
// per-worker scratches and errors if any instance cannot be solved to
// proven optimality within the exact solver's node limit.
func Fig7At(seed int64, instances int, sizes []gen.ProblemSize) ([]Fig7Row, error) {
	rows := make([]Fig7Row, len(sizes))
	pool := newScratchPool(instances)
	hits := make([][3]bool, instances)
	errs := make([]error, instances)
	for si, size := range sizes {
		si, size := si, size
		parallelForWorkers(instances, func(wk, k int) {
			errs[k] = nil
			cs := &pool[wk]
			cmin, cmax, err := cs.smallInstance(seed+int64(si)*7919, k, size)
			if err != nil {
				errs[k] = err
				return
			}
			budget := (cmin + cmax) / 2
			cg, err := cs.med("critical-greedy", budget)
			if err != nil {
				errs[k] = err
				return
			}
			gain, err := cs.med("gain3", budget)
			if err != nil {
				errs[k] = err
				return
			}
			wrf, err := cs.med("gain3-wrf", budget)
			if err != nil {
				errs[k] = err
				return
			}
			opt, err := cs.optimalMED(budget)
			if err != nil {
				errs[k] = err
				return
			}
			hits[k][0] = math.Abs(cg-opt) <= 1e-9
			hits[k][1] = math.Abs(gain-opt) <= 1e-9
			hits[k][2] = math.Abs(wrf-opt) <= 1e-9
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		row := Fig7Row{Size: size, Instances: instances}
		for k := 0; k < instances; k++ {
			if hits[k][0] {
				row.CGPct++
			}
			if hits[k][1] {
				row.GainPct++
			}
			if hits[k][2] {
				row.GainWRFPct++
			}
		}
		row.CGPct *= 100 / float64(instances)
		row.GainPct *= 100 / float64(instances)
		row.GainWRFPct *= 100 / float64(instances)
		rows[si] = row
	}
	return rows, nil
}
