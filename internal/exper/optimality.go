package exper

import (
	"math"

	"medcc/internal/gen"
	"medcc/internal/sched"
)

// TableIIIRow compares Critical-Greedy against the exhaustive optimum on
// one small random instance at a random budget (Table III of the paper).
type TableIIIRow struct {
	Size     gen.ProblemSize
	Instance int
	CG       float64
	Optimal  float64
}

// TableIIISizes are the paper's three small-scale problem sizes.
func TableIIISizes() []gen.ProblemSize {
	return []gen.ProblemSize{{M: 5, E: 6, N: 3}, {M: 6, E: 11, N: 3}, {M: 7, E: 14, N: 3}}
}

// TableIII regenerates Table III: instancesPerSize random instances per
// small problem size, each scheduled by CG and by exhaustive search at a
// random budget within [Cmin, Cmax]. The paper uses 5 instances per size.
func TableIII(seed int64, instancesPerSize int) ([]TableIIIRow, error) {
	sizes := TableIIISizes()
	rows := make([]TableIIIRow, len(sizes)*instancesPerSize)
	errs := make([]error, len(rows))
	parallelFor(len(rows), func(k int) {
		size := sizes[k/instancesPerSize]
		inst := k % instancesPerSize
		w, m, cmin, cmax, err := buildSmallInstance(seed, k, size)
		if err != nil {
			errs[k] = err
			return
		}
		// A separate stream for the budget draw: reusing newRNG(seed, k)
		// would replay the instance generator's first draw and correlate
		// the budget with the first module's workload.
		rng := newRNG(seed+1_000_000_007, k)
		budget := cmin + rng.Float64()*(cmax-cmin)
		cg, err := sched.Run(sched.CriticalGreedy(), w, m, budget)
		if err != nil {
			errs[k] = err
			return
		}
		opt, err := sched.Run(&sched.Optimal{}, w, m, budget)
		if err != nil {
			errs[k] = err
			return
		}
		rows[k] = TableIIIRow{Size: size, Instance: inst + 1, CG: cg.MED, Optimal: opt.MED}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Fig7Row is one bar group of Fig. 7: over many random instances of one
// problem size, the percentage of instances where each algorithm found a
// schedule with the optimal MED. GainWRFPct is the GAIN3 variant
// reverse-engineered from the paper's Table VII (sched.Gain3WRF), the bar
// the paper itself plots; GainPct is the literal-reading GAIN3.
type Fig7Row struct {
	Size       gen.ProblemSize
	Instances  int
	CGPct      float64
	GainPct    float64
	GainWRFPct float64
}

// Fig7Sizes are the four problem sizes of Fig. 7.
func Fig7Sizes() []gen.ProblemSize {
	return []gen.ProblemSize{{M: 5, E: 6, N: 3}, {M: 6, E: 11, N: 3}, {M: 7, E: 14, N: 3}, {M: 8, E: 18, N: 3}}
}

// Fig7 regenerates Fig. 7: for each size, instances random workflows with
// the budget at the median of [Cmin, Cmax]; report how often each
// heuristic matches the optimal MED. The paper uses 100 instances.
func Fig7(seed int64, instances int) ([]Fig7Row, error) {
	sizes := Fig7Sizes()
	rows := make([]Fig7Row, len(sizes))
	for si, size := range sizes {
		cgHits := make([]bool, instances)
		gainHits := make([]bool, instances)
		wrfHits := make([]bool, instances)
		errs := make([]error, instances)
		size := size
		parallelFor(instances, func(k int) {
			w, m, cmin, cmax, err := buildSmallInstance(seed+int64(si)*7919, k, size)
			if err != nil {
				errs[k] = err
				return
			}
			budget := (cmin + cmax) / 2
			cg, gain, err := runPair(w, m, budget)
			if err != nil {
				errs[k] = err
				return
			}
			wrf, err := runNamed("gain3-wrf", w, m, budget)
			if err != nil {
				errs[k] = err
				return
			}
			opt, err := sched.Run(&sched.Optimal{}, w, m, budget)
			if err != nil {
				errs[k] = err
				return
			}
			cgHits[k] = math.Abs(cg-opt.MED) <= 1e-9
			gainHits[k] = math.Abs(gain-opt.MED) <= 1e-9
			wrfHits[k] = math.Abs(wrf-opt.MED) <= 1e-9
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		row := Fig7Row{Size: size, Instances: instances}
		for k := 0; k < instances; k++ {
			if cgHits[k] {
				row.CGPct++
			}
			if gainHits[k] {
				row.GainPct++
			}
			if wrfHits[k] {
				row.GainWRFPct++
			}
		}
		row.CGPct *= 100 / float64(instances)
		row.GainPct *= 100 / float64(instances)
		row.GainWRFPct *= 100 / float64(instances)
		rows[si] = row
	}
	return rows, nil
}
