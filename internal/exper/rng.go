package exper

import "math/rand"

// newRNG builds the deterministic generator for work item k of an
// experiment. The multiplier decorrelates adjacent items beyond what
// consecutive seeds give (math/rand's LCG-seeded streams with adjacent
// seeds start noticeably correlated).
func newRNG(seed int64, k int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(k)*1_000_003))
}
