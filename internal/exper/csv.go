package exper

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteTableIVCSV emits the Table IV rows as CSV for external plotting
// (Fig. 8 is its improvement column).
func WriteTableIVCSV(w io.Writer, rows []TableIVRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "modules", "edges", "vm_types", "cg_med", "gain3_med", "imp_pct", "ratio", "gain3wrf_med", "imp_wrf_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fmt.Sprint(r.Index),
			fmt.Sprint(r.Size.M), fmt.Sprint(r.Size.E), fmt.Sprint(r.Size.N),
			fmt.Sprintf("%.6g", r.CG), fmt.Sprintf("%.6g", r.GAIN),
			fmt.Sprintf("%.4f", r.ImpPct), fmt.Sprintf("%.4f", r.Ratio),
			fmt.Sprintf("%.6g", r.GAINWRF), fmt.Sprintf("%.4f", r.ImpWRFPct),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCampaignCSV emits the Fig. 9/10/11 campaign cells as long-format
// CSV (one row per size x budget-level cell).
func WriteCampaignCSV(w io.Writer, cells []CampaignCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"size_index", "budget_level", "avg_improvement_pct"}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := cw.Write([]string{
			fmt.Sprint(c.SizeIdx), fmt.Sprint(c.Level), fmt.Sprintf("%.4f", c.AvgImp),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig6CSV emits the example staircase as CSV.
func WriteFig6CSV(w io.Writer, pts []Fig6Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"budget", "med", "cost"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			fmt.Sprintf("%.6g", p.Budget), fmt.Sprintf("%.6g", p.MED), fmt.Sprintf("%.6g", p.Cost),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableVIICSV emits the WRF comparison as CSV.
func WriteTableVIICSV(w io.Writer, rows []TableVIIRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"budget", "algorithm", "w1", "w2", "w3", "w4", "w5", "w6", "med", "testbed_med", "testbed_cost", "vms"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{fmt.Sprintf("%.6g", r.Budget), r.Alg}
		for _, t := range r.Mapping {
			rec = append(rec, fmt.Sprint(t))
		}
		rec = append(rec,
			fmt.Sprintf("%.6g", r.MED),
			fmt.Sprintf("%.6g", r.TestbedMED),
			fmt.Sprintf("%.6g", r.TestbedCost),
			fmt.Sprint(r.NumVMs))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
