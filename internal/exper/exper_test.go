package exper

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"medcc/internal/gen"
)

func TestParallelForCoversAllItems(t *testing.T) {
	var hits [100]int32
	parallelFor(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d ran %d times", i, h)
		}
	}
}

func TestParallelForWorkersCoversAllItemsOncePerWorker(t *testing.T) {
	const n = 200
	var hits [n]int32
	var perWorker [n]int32 // worker indices are < min(GOMAXPROCS, n) <= n
	parallelForWorkers(n, func(w, i int) {
		atomic.AddInt32(&hits[i], 1)
		atomic.AddInt32(&perWorker[w], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d ran %d times", i, h)
		}
	}
	var total int32
	for _, c := range perWorker {
		total += c
	}
	if total != n {
		t.Fatalf("worker counts sum to %d, want %d", total, n)
	}
}

func TestParallelForZeroAndOne(t *testing.T) {
	parallelFor(0, func(i int) { t.Fatal("called for n=0") })
	ran := false
	parallelFor(1, func(i int) { ran = true })
	if !ran {
		t.Fatal("n=1 not executed")
	}
}

// unbufferedParallelFor is the pre-buffering fan-out, kept here so the
// benchmark below can measure what the buffered work channel saves: with
// an unbuffered channel every item is a synchronous producer/consumer
// rendezvous, which dominates when items are cheap (small campaign cells).
func unbufferedParallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// BenchmarkParallelForFanOut measures pure fan-out overhead: dispatching
// cheap work items across goroutines. "buffered" is the production
// parallelFor; "unbuffered" is the old synchronous-handoff loop.
func BenchmarkParallelForFanOut(b *testing.B) {
	const items = 256
	var sink atomic.Int64
	work := func(i int) { sink.Add(int64(i)) }
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			parallelFor(items, work)
		}
	})
	b.Run("unbuffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			unbufferedParallelFor(items, work)
		}
	})
}

func TestTableIIMatchesPaperBreakpoints(t *testing.T) {
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	// The reconstruction yields 7 distinct schedules whose budget
	// breakpoints are exactly the paper's: 48, 49, 50, 52, 56, 60, 64.
	var los []float64
	for _, r := range rows {
		los = append(los, r.BudgetLo)
	}
	want := []float64{64, 60, 56, 52, 50, 49, 48}
	if len(los) != len(want) {
		t.Fatalf("%d schedules (breakpoints %v), want %d", len(los), los, len(want))
	}
	for i := range want {
		if math.Abs(los[i]-want[i]) > 1e-9 {
			t.Fatalf("breakpoints = %v, want %v", los, want)
		}
	}
	// MED strictly decreasing from bottom row (least budget) up.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].MED >= rows[i].MED {
			t.Fatalf("MED not decreasing with budget: rows %d,%d", i-1, i)
		}
	}
	// Least-cost row matches the paper's least-cost mapping 2,2,1,1,2,1.
	last := rows[len(rows)-1]
	wantMap := []int{2, 2, 1, 1, 2, 1}
	for i, m := range wantMap {
		if last.Mapping[i] != m {
			t.Fatalf("least-cost mapping = %v, want %v", last.Mapping, wantMap)
		}
	}
}

func TestFig6StaircaseShape(t *testing.T) {
	pts, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 17 { // budgets 48..64
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MED > pts[i-1].MED+1e-9 {
			t.Fatalf("Fig6 MED increased at budget %v", pts[i].Budget)
		}
	}
	if pts[0].MED <= pts[len(pts)-1].MED {
		t.Fatal("staircase flat")
	}
}

func TestTableIIIRowsSound(t *testing.T) {
	rows, err := TableIII(DefaultSeed, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	hits := 0
	for _, r := range rows {
		if r.CG < r.Optimal-1e-9 {
			t.Fatalf("CG %v beats optimal %v", r.CG, r.Optimal)
		}
		if math.Abs(r.CG-r.Optimal) <= 1e-9 {
			hits++
		}
	}
	// The paper observes CG reaching the optimum in most cases.
	if hits < len(rows)/2 {
		t.Fatalf("CG optimal in only %d/%d instances", hits, len(rows))
	}
}

func TestFig7CGDominatesGain(t *testing.T) {
	rows, err := Fig7(DefaultSeed, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	var cgSum, wSum float64
	for _, r := range rows {
		if r.CGPct < 0 || r.CGPct > 100 || r.GainPct < 0 || r.GainPct > 100 ||
			r.GainWRFPct < 0 || r.GainWRFPct > 100 {
			t.Fatalf("percentages out of range: %+v", r)
		}
		// CG should reach the optimum in a solid fraction of small
		// instances ("the same results as the optimal solution in
		// most cases").
		if r.CGPct < 50 {
			t.Fatalf("CG %% optimal only %v at %v", r.CGPct, r.Size)
		}
		cgSum += r.CGPct
		wSum += r.GainWRFPct
	}
	// Fig. 7's qualitative claim: CG reaches the optimum more often
	// than the paper's GAIN3.
	if cgSum <= wSum {
		t.Fatalf("CG %% optimal (%v) not above GAIN3 (%v) overall", cgSum/4, wSum/4)
	}
}

func TestExtendedOptimalitySizesSolve(t *testing.T) {
	// The extended exact-baseline sizes (m=10..14) must solve to proven
	// optimality — TableIIIAt/Fig7At error on any truncated instance —
	// and stay sound: no heuristic beats the exact optimum.
	sizes := ExtendedOptimalitySizes()
	rows, err := TableIIIAt(DefaultSeed, 2, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(sizes) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CG < r.Optimal-1e-9 {
			t.Fatalf("CG %v beats optimal %v at %v", r.CG, r.Optimal, r.Size)
		}
	}
	f7, err := Fig7At(DefaultSeed, 4, sizes[:1])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f7 {
		if r.CGPct < 0 || r.CGPct > 100 || r.GainPct < 0 || r.GainPct > 100 ||
			r.GainWRFPct < 0 || r.GainWRFPct > 100 {
			t.Fatalf("percentages out of range: %+v", r)
		}
	}
}

func TestTableIVSmallRun(t *testing.T) {
	rows, err := TableIV(DefaultSeed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("%d rows", len(rows))
	}
	posImp := 0
	for _, r := range rows {
		if r.CG <= 0 || r.GAIN <= 0 {
			t.Fatalf("non-positive MED in %+v", r)
		}
		if len(r.PerLvl) != 5 {
			t.Fatalf("per-level data missing")
		}
		if math.Abs(r.Ratio-r.CG/r.GAIN) > 1e-9 {
			t.Fatalf("ratio inconsistent")
		}
		if r.ImpPct > 0 {
			posImp++
		}
	}
	// The headline claim: CG improves on GAIN3 for most sizes.
	if posImp < 15 {
		t.Fatalf("positive improvement in only %d/20 sizes", posImp)
	}
}

func TestCampaignAggregations(t *testing.T) {
	cells, err := Campaign(DefaultSeed, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 20*4 {
		t.Fatalf("%d cells", len(cells))
	}
	perSize := Fig9(cells)
	perLevel := Fig10(cells)
	if len(perSize) != 20 || len(perLevel) != 4 {
		t.Fatalf("aggregation sizes: %d sizes, %d levels", len(perSize), len(perLevel))
	}
	// Average of all cells must equal average of the per-size averages
	// (balanced design).
	var all, bySize float64
	for _, c := range cells {
		all += c.AvgImp
	}
	all /= float64(len(cells))
	for _, v := range perSize {
		bySize += v
	}
	bySize /= float64(len(perSize))
	if math.Abs(all-bySize) > 1e-9 {
		t.Fatalf("aggregation mismatch: %v vs %v", all, bySize)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a, err := Campaign(7, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(7, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across identical runs", i)
		}
	}
}

func TestTableVIIAndFig15(t *testing.T) {
	rows, err := TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 6 budgets x {CG, gain3-wrf, gain3}
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Warm testbed replays the analytic schedule exactly.
		if math.Abs(r.MED-r.TestbedMED) > 1e-6 {
			t.Fatalf("%s@%v: testbed MED %v != analytic %v", r.Alg, r.Budget, r.TestbedMED, r.MED)
		}
		if r.NumVMs > 6 {
			t.Fatalf("%d VMs for 6 modules", r.NumVMs)
		}
	}
	pts := Fig15(rows)
	if len(pts) != 6 {
		t.Fatalf("%d Fig15 points", len(pts))
	}
	// At the highest budget CG must clearly beat GAIN3 (Fig. 15 right).
	lastIdx := len(pts) - 1
	if pts[lastIdx].CG >= pts[lastIdx].GAIN {
		t.Fatalf("CG %v not better than GAIN3 %v at top budget", pts[lastIdx].CG, pts[lastIdx].GAIN)
	}
}

func TestPublishedTableVIIShape(t *testing.T) {
	rows := PublishedTableVII()
	if len(rows) != 12 {
		t.Fatalf("%d published rows", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		if rows[i].MED >= rows[i+1].MED {
			t.Fatalf("published CG MED %v not below GAIN3 %v at B=%v",
				rows[i].MED, rows[i+1].MED, rows[i].Budget)
		}
	}
}

func TestAblationGrid(t *testing.T) {
	rows, err := Ablation(DefaultSeed, gen.ProblemSize{M: 15, E: 40, N: 5}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.AvgMED <= 0 {
			t.Fatalf("bad MED in %+v", r)
		}
		byName[r.Name] = r.AvgMED
	}
	// The full Critical-Greedy (critical + max-dT) must beat the GAIN3
	// baseline on average in this regime.
	if byName["critical-greedy"] > byName["gain3"] {
		t.Fatalf("critical-greedy %v worse than gain3 %v", byName["critical-greedy"], byName["gain3"])
	}
}

func TestSimValidationZeroError(t *testing.T) {
	rows, err := SimValidation(DefaultSeed, gen.ProblemSize{M: 12, E: 25, N: 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MakespanErr > 1e-6 || r.CostErr > 1e-6 {
			t.Fatalf("instance %d: analytic/simulator disagreement %+v", r.Instance, r)
		}
	}
}

func TestRenderersProduceTables(t *testing.T) {
	var sb strings.Builder

	rowsII, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderTableII(&sb, rowsII); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "MED") || !strings.Contains(sb.String(), "inf") {
		t.Fatalf("TableII render:\n%s", sb.String())
	}

	sb.Reset()
	pts, _ := Fig6()
	if err := RenderFig6(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Budget") {
		t.Fatal("Fig6 render missing header")
	}

	sb.Reset()
	rowsIV, err := TableIV(DefaultSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, render := range []func() error{
		func() error { return RenderTableIV(&sb, rowsIV) },
		func() error { return RenderFig8(&sb, rowsIV) },
	} {
		if err := render(); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(sb.String(), "(5, 6, 3)") {
		t.Fatalf("TableIV render:\n%s", sb.String())
	}

	sb.Reset()
	cells, err := Campaign(DefaultSeed, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderFig9(&sb, Fig9(cells)); err != nil {
		t.Fatal(err)
	}
	if err := RenderFig10(&sb, Fig10(cells)); err != nil {
		t.Fatal(err)
	}
	if err := RenderFig11(&sb, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Size\\Level") {
		t.Fatal("Fig11 render missing grid header")
	}

	sb.Reset()
	rowsVII, err := TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderTableVII(&sb, rowsVII); err != nil {
		t.Fatal(err)
	}
	if err := RenderFig15(&sb, Fig15(rowsVII)); err != nil {
		t.Fatal(err)
	}

	sb.Reset()
	abl, err := Ablation(DefaultSeed, gen.ProblemSize{M: 8, E: 14, N: 3}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderAblation(&sb, abl); err != nil {
		t.Fatal(err)
	}
	val, err := SimValidation(DefaultSeed, gen.ProblemSize{M: 8, E: 14, N: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderValidation(&sb, val); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dMakespan") {
		t.Fatal("validation render missing summary")
	}

	sb.Reset()
	rowsIII, err := TableIII(DefaultSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderTableIII(&sb, rowsIII); err != nil {
		t.Fatal(err)
	}
	fig7, err := Fig7(DefaultSeed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderFig7(&sb, fig7); err != nil {
		t.Fatal(err)
	}
}
