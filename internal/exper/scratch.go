package exper

import (
	"fmt"
	"runtime"

	"medcc/internal/cloud"
	"medcc/internal/dag"
	"medcc/internal/encoding"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

// campaignScratch is the per-worker state of the parallel campaign loops:
// a pooled instance generator, matrices rebuilt in place, one reusable
// scheduler per algorithm name, destination schedule buffers, and a DAG
// timing that is refreshed instead of rebuilt for every schedule of the
// current instance. One scratch serves one parallelForWorkers worker, so
// no locking is needed; allocations fall to near zero once a worker has
// warmed up on the largest problem size it will see.
//
// Determinism is untouched: instances are still seeded per item, and the
// pooled generator/schedulers are bit-identical to their one-shot forms
// (pinned by the gen and sched differential tests), so campaign numbers do
// not depend on which worker processed which item.
//
// medcc:scratch
type campaignScratch struct {
	b gen.Builder
	w *workflow.Workflow
	// medcc:lint-ignore epochguard — w and m are rebuilt in place for every instance; the only derived state cached across rebuilds is t, guarded by tver below.
	m        *workflow.Matrices
	lc, fast workflow.Schedule

	algs  map[string]sched.IntoScheduler
	dst   map[string]workflow.Schedule
	swDst map[string][]workflow.Schedule

	budgets []float64

	times []float64
	t     *dag.Timing
	tver  uint64 // graph version cs.t was built against

	// Corpus scratch: a per-worker binary decoder (its intern table warms
	// up on the module/VM names of the stream) and the pooled workflow
	// that corpus records decode into. cwf is distinct from the pooled
	// generator's workflow — the builder owns that one, and clobbering it
	// would corrupt the next generated instance.
	dec encoding.Decoder
	cwf *workflow.Workflow

	// Optimality-study scratch: the paper's fixed Table I catalog and a
	// pooled exact solver. The solver keeps Workers at 1 because the
	// campaign loop already owns one scratch (and one core) per worker;
	// the branch-and-bound result is identical at any worker count.
	smallCat cloud.Catalog
	opt      *sched.Optimal
	optDst   workflow.Schedule
}

// newScratchPool returns one campaignScratch per fan-out worker for a loop
// of n items (parallelForWorkers never uses more worker indices than
// min(GOMAXPROCS, n), and at least index 0).
func newScratchPool(n int) []campaignScratch {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return make([]campaignScratch, workers)
}

// instance regenerates instance k of a problem size into the pooled
// workflow and matrices and returns the budget range [Cmin, Cmax]. The
// previous instance held by this scratch is overwritten.
func (cs *campaignScratch) instance(seed int64, k int, size gen.ProblemSize) (cmin, cmax float64, err error) {
	rng := newRNG(seed, k)
	w, cat, err := cs.b.Instance(rng, size)
	if err != nil {
		return 0, 0, err
	}
	cs.w = w
	cs.m, err = w.BuildMatricesInto(cat, cloud.HourlyRoundUp, cs.m)
	if err != nil {
		return 0, 0, err
	}
	cs.lc = cs.m.LeastCostInto(w, cs.lc)
	cs.fast = cs.m.FastestInto(w, cs.fast)
	return cs.m.Cost(cs.lc), cs.m.Cost(cs.fast), nil
}

// smallInstance is instance for the small-scale optimality studies
// (Table III, Fig. 7): the same generator parameters as buildSmallInstance
// — workloads in the §V-B example range and the paper's own Table I
// catalog — drawn from the same per-item RNG stream, so the instances are
// bit-identical to the one-shot path, but regenerated into the pooled
// workflow and matrices.
func (cs *campaignScratch) smallInstance(seed int64, k int, size gen.ProblemSize) (cmin, cmax float64, err error) {
	rng := newRNG(seed, k)
	w, err := cs.b.Random(rng, gen.Params{
		Modules:      size.M,
		Edges:        size.E,
		WorkloadMin:  10,
		WorkloadMax:  100,
		DataSizeMax:  10,
		AddEntryExit: true,
	})
	if err != nil {
		return 0, 0, err
	}
	cs.w = w
	if cs.smallCat == nil {
		cs.smallCat = cloud.PaperExampleCatalog()
	}
	cs.m, err = w.BuildMatricesInto(cs.smallCat, cloud.HourlyRoundUp, cs.m)
	if err != nil {
		return 0, 0, err
	}
	cs.lc = cs.m.LeastCostInto(w, cs.lc)
	cs.fast = cs.m.FastestInto(w, cs.fast)
	return cs.m.Cost(cs.lc), cs.m.Cost(cs.fast), nil
}

// optimalMED solves the current instance exactly with the pooled
// branch-and-bound solver and returns the optimal MED. It errors if the
// solver hit its node limit: a truncated incumbent is not a proven
// optimum, and silently comparing heuristics against it would corrupt the
// optimality studies.
func (cs *campaignScratch) optimalMED(budget float64) (float64, error) {
	if cs.opt == nil {
		cs.opt = &sched.Optimal{Workers: 1}
	}
	s, err := cs.opt.ScheduleInto(cs.optDst, cs.w, cs.m, budget)
	if err != nil {
		return 0, fmt.Errorf("optimal: %w", err)
	}
	cs.optDst = s
	if cs.opt.Truncated {
		return 0, fmt.Errorf("optimal: node limit reached after %d nodes (m=%d): incumbent not proven optimal",
			cs.opt.Expanded, cs.w.NumModules())
	}
	return cs.makespan(s)
}

// alg returns the pooled scheduler instance for the named algorithm,
// creating it on first use.
func (cs *campaignScratch) alg(name string) (sched.IntoScheduler, error) {
	if cs.algs == nil {
		cs.algs = map[string]sched.IntoScheduler{}
		cs.dst = map[string]workflow.Schedule{}
		cs.swDst = map[string][]workflow.Schedule{}
	}
	alg, ok := cs.algs[name]
	if !ok {
		s, err := sched.Get(name)
		if err != nil {
			return nil, err
		}
		into, isInto := s.(sched.IntoScheduler)
		if !isInto {
			return nil, fmt.Errorf("exper: %s does not support pooled scheduling", name)
		}
		cs.algs[name] = into
		alg = into
	}
	return alg, nil
}

// sched runs the named algorithm at the budget on the current instance and
// returns the resulting schedule (owned by the scratch, valid until the
// next sched call for the same name).
func (cs *campaignScratch) sched(name string, budget float64) (workflow.Schedule, error) {
	alg, err := cs.alg(name)
	if err != nil {
		return nil, err
	}
	s, err := alg.ScheduleInto(cs.dst[name], cs.w, cs.m, budget)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	cs.dst[name] = s
	return s, nil
}

// med runs the named algorithm and returns the makespan of its schedule.
func (cs *campaignScratch) med(name string, budget float64) (float64, error) {
	s, err := cs.sched(name, budget)
	if err != nil {
		return 0, err
	}
	return cs.makespan(s)
}

// budgetGrid fills the scratch budget buffer with the campaign's ascending
// budget levels over [cmin, cmax].
func (cs *campaignScratch) budgetGrid(cmin, cmax float64, levels int) []float64 {
	cs.budgets = cs.budgets[:0]
	for k := 1; k <= levels; k++ {
		cs.budgets = append(cs.budgets, budgetLevel(cmin, cmax, k, levels))
	}
	return cs.budgets
}

// sweep runs the named algorithm across an ascending budget grid on the
// current instance, warm-starting each level from the previous one when
// the algorithm supports it (sched.Sweeper) and falling back to
// independent per-level solves otherwise. The returned schedules are owned
// by the scratch, valid until the next sweep call for the same name.
func (cs *campaignScratch) sweep(name string, budgets []float64) ([]workflow.Schedule, error) {
	alg, err := cs.alg(name)
	if err != nil {
		return nil, err
	}
	rows, err := sched.SweepSchedules(alg, cs.swDst[name], cs.w, cs.m, budgets)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	cs.swDst[name] = rows
	return rows, nil
}

// meds sweeps the named algorithm over the budget grid and appends the
// per-level makespans to dst.
func (cs *campaignScratch) meds(name string, budgets []float64, dst []float64) ([]float64, error) {
	rows, err := cs.sweep(name, budgets)
	if err != nil {
		return nil, err
	}
	for _, s := range rows {
		mk, err := cs.makespan(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		dst = append(dst, mk)
	}
	return dst, nil
}

// makespan evaluates a schedule of the current instance with the pooled
// timing: the first schedule per instance pays one NewTiming (the graph
// structure changed under the pooled builder, detected via its Version);
// every further schedule is an in-place Update.
func (cs *campaignScratch) makespan(s workflow.Schedule) (float64, error) {
	if err := cs.w.ValidateSchedule(s, len(cs.m.Catalog)); err != nil {
		return 0, err
	}
	cs.times = cs.m.TimesInto(s, cs.times)
	g := cs.w.Graph()
	if cs.t == nil || cs.tver != g.Version() {
		t, err := dag.NewTiming(g, cs.times, nil)
		if err != nil {
			return 0, err
		}
		cs.t, cs.tver = t, g.Version()
		return t.Makespan, nil
	}
	if err := cs.t.Update(cs.times); err != nil {
		return 0, err
	}
	return cs.t.Makespan, nil
}
