// Corpus-backed campaign runners: the Table IV / Figs. 8-11 sweeps and
// the A2 simulator validation re-run from a binary instance corpus
// (internal/encoding) instead of regenerating every instance per run.
// The Write*Corpus functions freeze the exact instance sets the
// regenerate-per-run experiments draw — same per-item RNG streams, same
// item order — and the *FromCorpus runners reproduce the experiment
// bodies verbatim on the decoded instances, so corpus-backed results
// are bit-identical to the regenerate path (pinned by the differential
// tests in corpus_test.go).
package exper

import (
	"fmt"
	"io"
	"math"
	"sync"

	"medcc/internal/cloud"
	"medcc/internal/encoding"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/sim"
	"medcc/internal/stats"
	"medcc/internal/workflow"
)

// WriteTableIVCorpus writes the Table IV instance set — one instance per
// paper problem size, drawn from the same per-size RNG stream TableIV
// regenerates — as a binary corpus. Record k is the instance for size k
// of gen.PaperProblemSizes.
func WriteTableIVCorpus(w io.Writer, seed int64, compress bool) (int, error) {
	sizes := gen.PaperProblemSizes()
	cw, err := encoding.NewCorpusWriter(w, compress)
	if err != nil {
		return 0, err
	}
	var b gen.Builder
	for si, size := range sizes {
		if err := writeGenerated(cw, &b, seed, si, si, size); err != nil {
			return si, err
		}
	}
	return len(sizes), cw.Flush()
}

// WriteCampaignCorpus writes the Figs. 9-11 campaign instance set:
// `instances` workflows per paper problem size in Campaign's work-item
// order (record k holds instance k%instances of size k/instances), each
// drawn from the exact RNG stream Campaign regenerates.
func WriteCampaignCorpus(w io.Writer, seed int64, instances int, compress bool) (int, error) {
	sizes := gen.PaperProblemSizes()
	cw, err := encoding.NewCorpusWriter(w, compress)
	if err != nil {
		return 0, err
	}
	var b gen.Builder
	total := len(sizes) * instances
	for k := 0; k < total; k++ {
		si := k / instances
		if err := writeGenerated(cw, &b, seed+int64(si)*104729, k%instances, k, sizes[si]); err != nil {
			return k, err
		}
	}
	return total, cw.Flush()
}

// WriteValidationCorpus writes the A2 simulator-validation instance set:
// `instances` workflows of one size, seeded as SimValidation's
// buildInstance draws them.
func WriteValidationCorpus(w io.Writer, seed int64, size gen.ProblemSize, instances int, compress bool) (int, error) {
	cw, err := encoding.NewCorpusWriter(w, compress)
	if err != nil {
		return 0, err
	}
	var b gen.Builder
	for k := 0; k < instances; k++ {
		if err := writeGenerated(cw, &b, seed, k, k, size); err != nil {
			return k, err
		}
	}
	return instances, cw.Flush()
}

// writeGenerated generates instance rngIdx of a problem size with the
// campaign seeding (newRNG) and appends it as corpus record recIdx.
func writeGenerated(cw *encoding.CorpusWriter, b *gen.Builder, seed int64, rngIdx, recIdx int, size gen.ProblemSize) error {
	wf, cat, err := b.Instance(newRNG(seed, rngIdx), size)
	if err != nil {
		return fmt.Errorf("exper: corpus instance %d: %w", recIdx, err)
	}
	err = cw.WriteInstance(wf, cat, encoding.InstanceInfo{
		Seed: seed, Index: int64(recIdx), Kind: encoding.KindGenerated,
		M: uint32(size.M), E: uint32(size.E), N: uint32(size.N),
	})
	if err != nil {
		return fmt.Errorf("exper: corpus instance %d: %w", recIdx, err)
	}
	return nil
}

// corpusItem is one record in flight between the corpus feeder and a
// worker: the record body copied out of the reader's cycling buffer,
// plus the resolved catalog and instance info (both safe to share — the
// reader's catalog dictionary is append-only while it lives).
type corpusItem struct {
	k    int
	body []byte
	cat  cloud.Catalog
	info encoding.InstanceInfo
}

// forEachCorpusRecord streams the corpus at r through `workers` parallel
// workers: a feeder goroutine reads records sequentially (the reader is
// single-threaded) and copies each body into one of a bounded set of
// recycled buffers, and workers re-parse and process the copies. fn runs
// with a worker-private index wk, so callers can hand every worker its
// own campaignScratch. Memory stays bounded by the buffer pool no matter
// how long the stream is. The stream must hold exactly n records.
func forEachCorpusRecord(r io.Reader, n, workers int, fn func(wk, k int, rec encoding.Record, cat cloud.Catalog, info encoding.InstanceInfo) error) error {
	cr, err := encoding.NewCorpusReader(r)
	if err != nil {
		return err
	}
	if total := cr.Len(); total >= 0 && total != n {
		return fmt.Errorf("exper: corpus holds %d records, want %d", total, n)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		// Sequential fast path: process straight out of the reader's
		// buffer, no copies.
		for k := 0; k < n; k++ {
			rec, cat, info, err := cr.NextRaw()
			if err != nil {
				return fmt.Errorf("exper: corpus record %d: %w", k, err)
			}
			if err := fn(0, k, rec, cat, info); err != nil {
				return err
			}
		}
		return corpusDrained(cr)
	}
	free := make(chan []byte, 2*workers)
	for i := 0; i < 2*workers; i++ {
		free <- nil
	}
	work := make(chan corpusItem, 2*workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for it := range work {
				if errs[wk] == nil {
					rec, err := encoding.ParseRecord(it.body)
					if err != nil {
						errs[wk] = fmt.Errorf("exper: corpus record %d: %w", it.k, err)
					} else {
						errs[wk] = fn(wk, it.k, rec, it.cat, it.info)
					}
				}
				free <- it.body
			}
		}(wk)
	}
	var feedErr error
	for k := 0; k < n; k++ {
		rec, cat, info, err := cr.NextRaw()
		if err != nil {
			feedErr = fmt.Errorf("exper: corpus record %d: %w", k, err)
			break
		}
		buf := <-free
		buf = append(buf[:0], rec.Body()...)
		work <- corpusItem{k: k, body: buf, cat: cat, info: info}
	}
	close(work)
	wg.Wait()
	if feedErr != nil {
		return feedErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return corpusDrained(cr)
}

// corpusDrained verifies the stream ended where the caller's record
// count said it would — trailing records mean the corpus was written for
// a different experiment shape, which silently skewed results would hide.
func corpusDrained(cr *encoding.CorpusReader) error {
	if _, _, err := cr.Next(workflow.New()); err != io.EOF {
		if err != nil {
			return fmt.Errorf("exper: corpus has trailing data: %w", err)
		}
		return fmt.Errorf("exper: corpus has more records than the experiment consumes")
	}
	return nil
}

// checkCorpusSize rejects a record whose provenance does not match the
// problem size the experiment expects at its position.
func checkCorpusSize(k int, info encoding.InstanceInfo, size gen.ProblemSize) error {
	if info.Kind != encoding.KindGenerated || int(info.M) != size.M || int(info.E) != size.E || int(info.N) != size.N {
		return fmt.Errorf("exper: corpus record %d is kind=%d {m=%d,e=%d,n=%d}, want a generated {m=%d,e=%d,n=%d} instance",
			k, info.Kind, info.M, info.E, info.N, size.M, size.E, size.N)
	}
	return nil
}

// instanceFrom decodes a corpus record into the pooled decode-target
// workflow and rebuilds the matrices in place — the corpus counterpart
// of campaignScratch.instance, returning the same [Cmin, Cmax].
func (cs *campaignScratch) instanceFrom(rec encoding.Record, cat cloud.Catalog) (cmin, cmax float64, err error) {
	ci := rec.Find(encoding.ChunkWorkflow)
	if ci < 0 {
		return 0, 0, fmt.Errorf("exper: corpus record has no workflow chunk")
	}
	if cs.cwf == nil {
		cs.cwf = workflow.New()
	}
	if err := cs.dec.WorkflowInto(rec, ci, cs.cwf); err != nil {
		return 0, 0, err
	}
	cs.w = cs.cwf
	cs.m, err = cs.w.BuildMatricesInto(cat, cloud.HourlyRoundUp, cs.m)
	if err != nil {
		return 0, 0, err
	}
	cs.lc = cs.m.LeastCostInto(cs.w, cs.lc)
	cs.fast = cs.m.FastestInto(cs.w, cs.fast)
	return cs.m.Cost(cs.lc), cs.m.Cost(cs.fast), nil
}

// TableIVFromCorpus is TableIV running on a WriteTableIVCorpus stream:
// record si is the instance for problem size si, and the per-size body
// (budget grid, warm-started CG/GAIN3/GAIN3-WRF sweeps, row assembly)
// is identical to TableIV's, so the rows are bit-identical to the
// regenerate path.
func TableIVFromCorpus(r io.Reader, levels int) ([]TableIVRow, error) {
	sizes := gen.PaperProblemSizes()
	rows := make([]TableIVRow, len(sizes))
	scratch := newScratchPool(len(sizes))
	err := forEachCorpusRecord(r, len(sizes), len(scratch), func(wk, si int, rec encoding.Record, cat cloud.Catalog, info encoding.InstanceInfo) error {
		cs := &scratch[wk]
		size := sizes[si]
		if err := checkCorpusSize(si, info, size); err != nil {
			return err
		}
		cmin, cmax, err := cs.instanceFrom(rec, cat)
		if err != nil {
			return err
		}
		budgets := cs.budgetGrid(cmin, cmax, levels)
		cgMEDs, err := cs.meds("critical-greedy", budgets, make([]float64, 0, levels))
		if err != nil {
			return err
		}
		gMEDs, err := cs.meds("gain3", budgets, make([]float64, 0, levels))
		if err != nil {
			return err
		}
		wMEDs, err := cs.meds("gain3-wrf", budgets, make([]float64, 0, levels))
		if err != nil {
			return err
		}
		perLvl := make([]float64, 0, levels)
		for k := 0; k < levels; k++ {
			perLvl = append(perLvl, sched.Improvement(gMEDs[k], cgMEDs[k]))
		}
		cgAvg, gAvg, wAvg := stats.Mean(cgMEDs), stats.Mean(gMEDs), stats.Mean(wMEDs)
		rows[si] = TableIVRow{
			Index:     si + 1,
			Size:      size,
			CG:        cgAvg,
			GAIN:      gAvg,
			GAINWRF:   wAvg,
			ImpPct:    sched.Improvement(gAvg, cgAvg),
			ImpWRFPct: sched.Improvement(wAvg, cgAvg),
			Ratio:     cgAvg / gAvg,
			PerLvl:    perLvl,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// CampaignFromCorpus is Campaign running on a WriteCampaignCorpus
// stream: record k is work item k of the campaign, and its per-item body
// matches Campaign's, so the cells (and therefore Fig9/Fig10/Fig11) are
// bit-identical to the regenerate path.
//
// medcc:deterministic
func CampaignFromCorpus(r io.Reader, instances, levels int) ([]CampaignCell, error) {
	sizes := gen.PaperProblemSizes()
	total := len(sizes) * instances
	imps := make([][]float64, total)
	scratch := newScratchPool(total)
	err := forEachCorpusRecord(r, total, len(scratch), func(wk, k int, rec encoding.Record, cat cloud.Catalog, info encoding.InstanceInfo) error {
		cs := &scratch[wk]
		si := k / instances
		if err := checkCorpusSize(k, info, sizes[si]); err != nil {
			return err
		}
		cmin, cmax, err := cs.instanceFrom(rec, cat)
		if err != nil {
			return err
		}
		budgets := cs.budgetGrid(cmin, cmax, levels)
		cgMEDs, err := cs.meds("critical-greedy", budgets, make([]float64, 0, levels))
		if err != nil {
			return err
		}
		gMEDs, err := cs.meds("gain3", budgets, make([]float64, 0, levels))
		if err != nil {
			return err
		}
		out := make([]float64, levels)
		for lv := 1; lv <= levels; lv++ {
			out[lv-1] = sched.Improvement(gMEDs[lv-1], cgMEDs[lv-1])
		}
		imps[k] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	cells := make([]CampaignCell, 0, len(sizes)*levels)
	xs := make([]float64, instances)
	for si := range sizes {
		for lv := 1; lv <= levels; lv++ {
			for inst := 0; inst < instances; inst++ {
				xs[inst] = imps[si*instances+inst][lv-1]
			}
			cells = append(cells, CampaignCell{SizeIdx: si + 1, Level: lv, AvgImp: stats.Mean(xs)})
		}
	}
	return cells, nil
}

// validationBatch is how many corpus instances SimValidationFromCorpus
// materializes at once before handing them to sim.ValidateBatch: large
// enough to keep the batch replayers busy, small enough that memory
// stays bounded on arbitrarily long streams.
const validationBatch = 256

// validationSlot holds one in-flight instance of the validation batch —
// the workflow and matrices a sim.Config points at must stay alive until
// the batch replays.
type validationSlot struct {
	w *workflow.Workflow
	m *workflow.Matrices
}

// SimValidationFromCorpus is SimValidation running on a
// WriteValidationCorpus stream: record k is instance k, the budget is
// drawn from the same decorrelated stream, and the schedules replay
// through sim.ValidateBatch in bounded batches of pooled slots (batch
// results are per-config, so chunking cannot change them). Rows are
// bit-identical to the regenerate path.
func SimValidationFromCorpus(r io.Reader, seed int64) ([]ValidationRow, error) {
	cr, err := encoding.NewCorpusReader(r)
	if err != nil {
		return nil, err
	}
	var (
		rows     []ValidationRow
		slots    []validationSlot
		cfgs     []sim.Config
		analytic [][2]float64
		sizes    []gen.ProblemSize
		batch    []sim.BatchResult
		k        int
	)
	flush := func(fill int) error {
		if fill == 0 {
			return nil
		}
		var err error
		batch, err = sim.ValidateBatchInto(batch, cfgs[:fill])
		if err != nil {
			return err
		}
		for j := 0; j < fill; j++ {
			rows = append(rows, ValidationRow{
				Size:        sizes[j],
				Instance:    k - fill + j + 1,
				MakespanErr: math.Abs(batch[j].Makespan - analytic[j][0]),
				CostErr:     math.Abs(batch[j].Cost - analytic[j][1]),
			})
		}
		return nil
	}
	fill := 0
	for {
		if fill == len(slots) {
			slots = append(slots, validationSlot{w: workflow.New()})
			cfgs = append(cfgs, sim.Config{})
			analytic = append(analytic, [2]float64{})
			sizes = append(sizes, gen.ProblemSize{})
		}
		sl := &slots[fill]
		cat, info, err := cr.Next(sl.w)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("exper: corpus record %d: %w", k, err)
		}
		sl.m, err = sl.w.BuildMatricesInto(cat, cloud.HourlyRoundUp, sl.m)
		if err != nil {
			return nil, err
		}
		cmin, cmax := sl.m.BudgetRange(sl.w)
		// Separate stream for the budget draw, exactly as SimValidation.
		rng := newRNG(seed+1_000_000_007, k)
		b := cmin + rng.Float64()*(cmax-cmin)
		res, err := sched.Run(sched.CriticalGreedy(), sl.w, sl.m, b)
		if err != nil {
			return nil, err
		}
		cfgs[fill] = sim.Config{Workflow: sl.w, Matrices: sl.m, Schedule: res.Schedule}
		analytic[fill] = [2]float64{res.MED, res.Cost}
		sizes[fill] = gen.ProblemSize{M: int(info.M), E: int(info.E), N: int(info.N)}
		fill++
		k++
		if fill == validationBatch {
			if err := flush(fill); err != nil {
				return nil, err
			}
			fill = 0
		}
	}
	if err := flush(fill); err != nil {
		return nil, err
	}
	return rows, nil
}
