package exper

import (
	"fmt"
	"io"
	"math"

	"medcc/internal/adaptive"
	"medcc/internal/cloud"
	"medcc/internal/cluster"
	"medcc/internal/gen"
	"medcc/internal/multicloud"
	"medcc/internal/pool"
	"medcc/internal/sched"
	"medcc/internal/testbed"
	"medcc/internal/workflow"
	"medcc/internal/wrf"
)

// --- A3: provisioning — one-to-one MED-CC vs HEFT on a fixed pool ---

// ProvisioningRow compares the paper's one-to-one mapping (plus VM reuse)
// against HEFT list scheduling on pools of k fastest-type instances.
type ProvisioningRow struct {
	PoolSize   int
	HEFTMED    float64
	HEFTCost   float64
	OneToOne   float64 // CG MED at the budget equal to the HEFT cost
	OneToOneOK bool    // false when that budget is below Cmin
}

// Provisioning sweeps homogeneous pool sizes 1..maxPool on the paper's
// example workflow: for each pool, HEFT's makespan and bill, and what CG
// achieves when given that bill as its budget. This quantifies the cost
// of the one-to-one mapping assumption (DESIGN.md §5).
func Provisioning(maxPool int) ([]ProvisioningRow, error) {
	w, cat := workflow.PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		return nil, err
	}
	cmin, _ := m.BudgetRange(w)
	fast := cat[cat.Fastest()]
	var rows []ProvisioningRow
	for k := 1; k <= maxPool; k++ {
		p := pool.Homogeneous(fast, k, 0, cloud.HourlyRoundUp)
		hr, err := pool.HEFT(p, w)
		if err != nil {
			return nil, err
		}
		row := ProvisioningRow{PoolSize: k, HEFTMED: hr.Makespan, HEFTCost: hr.Cost}
		if hr.Cost >= cmin {
			res, err := sched.Run(sched.CriticalGreedy(), w, m, hr.Cost)
			if err != nil {
				return nil, err
			}
			row.OneToOne = res.MED
			row.OneToOneOK = true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderProvisioning prints the A3 sweep.
func RenderProvisioning(w io.Writer, rows []ProvisioningRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Pool size\tHEFT MED\tHEFT cost\tCG MED at same spend")
	for _, r := range rows {
		cg := "infeasible"
		if r.OneToOneOK {
			cg = fmt.Sprintf("%.2f", r.OneToOne)
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%.0f\t%s\n", r.PoolSize, r.HEFTMED, r.HEFTCost, cg)
	}
	return tw.Flush()
}

// --- A4: multi-cloud — the paper's future work, quantified ---

// MultiCloudRow compares multi-cloud Critical-Greedy against the best
// single region at one budget.
type MultiCloudRow struct {
	Budget    float64
	MultiMED  float64
	MultiCost float64
	Regions   int // distinct regions used by the multi-cloud schedule
	SingleMED float64
}

// MultiCloud sweeps budgets on a two-region scenario: an economy region
// and a premium region joined by a metered link, running a workflow with
// one compute-dominant branch next to light glue stages. In the budget
// window between "heavy branch on premium" and "everything on premium",
// hybrid placement is the only way to meet the delay — the situation the
// paper's future-work section anticipates.
func MultiCloud(levels int) ([]MultiCloudRow, error) {
	f := &multicloud.Fabric{
		Regions: []multicloud.Region{
			{
				Name:              "economy",
				Types:             cloud.Catalog{{Name: "e1", Power: 3, Rate: 1}, {Name: "e2", Power: 5, Rate: 2}},
				EgressCostPerUnit: 0.2,
			},
			{
				Name:              "premium",
				Types:             cloud.Catalog{{Name: "p1", Power: 12, Rate: 6}, {Name: "p2", Power: 24, Rate: 14}},
				EgressCostPerUnit: 0.5,
			},
		},
		Bandwidth: [][]float64{{0, 20}, {20, 0}},
		Delay:     [][]float64{{0, 0.05}, {0.05, 0}},
		Billing:   cloud.HourlyRoundUp,
	}
	w := workflow.New()
	glue1 := w.AddModule(workflow.Module{Name: "stage-in", Workload: 3})
	heavy := w.AddModule(workflow.Module{Name: "solver", Workload: 240})
	light := w.AddModule(workflow.Module{Name: "metadata", Workload: 6})
	glue2 := w.AddModule(workflow.Module{Name: "stage-out", Workload: 3})
	for _, e := range [][2]int{{glue1, heavy}, {glue1, light}, {heavy, glue2}, {light, glue2}} {
		if err := w.AddDependency(e[0], e[1], 0.5); err != nil {
			return nil, err
		}
	}
	lc, err := f.LeastCost(w)
	if err != nil {
		return nil, err
	}
	lcEv, err := f.Evaluate(w, lc)
	if err != nil {
		return nil, err
	}
	cmin := lcEv.TotalCost()
	var rows []MultiCloudRow
	for k := 0; k <= levels; k++ {
		b := cmin * (1 + float64(k)/float64(levels))
		multi, err := f.Schedule(w, b)
		if err != nil {
			return nil, err
		}
		single, err := f.SingleRegionBest(w, b)
		if err != nil {
			return nil, err
		}
		used := map[int]bool{}
		for _, i := range w.Schedulable() {
			used[multi.Assignment.Region[i]] = true
		}
		rows = append(rows, MultiCloudRow{
			Budget:    b,
			MultiMED:  multi.MED,
			MultiCost: multi.Cost,
			Regions:   len(used),
			SingleMED: single.MED,
		})
	}
	return rows, nil
}

// RenderMultiCloud prints the A4 sweep.
func RenderMultiCloud(w io.Writer, rows []MultiCloudRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Budget\tMulti-cloud MED\tcost\tregions used\tBest single region MED\tGain (%)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f\t%.2f\t%.0f\t%d\t%.2f\t%.1f\n",
			r.Budget, r.MultiMED, r.MultiCost, r.Regions, r.SingleMED,
			sched.Improvement(r.SingleMED, r.MultiMED))
	}
	return tw.Flush()
}

// --- A7: testbed capacity — queueing under limited VMM slots ---

// CapacityRow reports one cloud size of the A7 sweep.
type CapacityRow struct {
	VMMs      int
	Slots     int
	Makespan  float64
	QueueWait float64
	VMs       int
}

// TestbedCapacity executes one CG schedule of a wide CyberShake-style
// workflow on simulated Nimbus clouds of growing size (1..maxVMMs VMM
// nodes, two slots each), showing how placement queueing stretches the
// makespan when the cloud is narrower than the workflow.
func TestbedCapacity(seed int64, width, maxVMMs int) ([]CapacityRow, error) {
	w := gen.CyberShakeLike(newRNG(seed, 0), width)
	cat := cloud.DiminishingCatalog(4, 3, 1, gen.SimulationGamma)
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		return nil, err
	}
	cmin, cmax := m.BudgetRange(w)
	res, err := sched.Run(sched.CriticalGreedy(), w, m, (cmin+cmax)/2)
	if err != nil {
		return nil, err
	}
	var rows []CapacityRow
	for v := 1; v <= maxVMMs; v++ {
		cfg := testbed.Config{VMMs: v, SlotsPerVMM: 2}
		dep, err := testbed.Execute(cfg, w, m, res.Schedule)
		if err != nil {
			return nil, fmt.Errorf("VMMs=%d: %w", v, err)
		}
		rows = append(rows, CapacityRow{
			VMMs:      v,
			Slots:     v * cfg.SlotsPerVMM,
			Makespan:  dep.Makespan,
			QueueWait: dep.QueueWait,
			VMs:       len(dep.VMs),
		})
	}
	return rows, nil
}

// RenderCapacity prints the A7 sweep.
func RenderCapacity(w io.Writer, rows []CapacityRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "VMM nodes\tSlots\tMakespan\tTotal queue wait\tVMs provisioned")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\t%d\n", r.VMMs, r.Slots, r.Makespan, r.QueueWait, r.VMs)
	}
	return tw.Flush()
}

// --- A6: runtime uncertainty — static vs adaptive re-planning ---

// AdaptiveRow aggregates static-vs-adaptive outcomes at one noise level.
type AdaptiveRow struct {
	OverRuns        float64 // noise upper bound (e.g. 0.4 = up to 40% slower)
	StaticOverspend float64
	AdaptOverspend  float64
	StaticMakespan  float64
	AdaptMakespan   float64
	Replans         float64
}

// Adaptive sweeps pessimistic noise levels on random instances: each cell
// averages `instances x seeds` executions of the same schedules with and
// without per-completion re-planning (internal/adaptive).
func Adaptive(seed int64, size gen.ProblemSize, instances, seeds int) ([]AdaptiveRow, error) {
	noises := []float64{0, 0.2, 0.4, 0.6}
	rows := make([]AdaptiveRow, len(noises))
	errs := make([]error, len(noises))
	parallelFor(len(noises), func(ni int) {
		noise := noises[ni]
		row := AdaptiveRow{OverRuns: noise}
		count := 0
		for inst := 0; inst < instances; inst++ {
			rng := newRNG(seed, inst)
			wf, cat, err := gen.Instance(rng, size)
			if err != nil {
				errs[ni] = err
				return
			}
			m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
			if err != nil {
				errs[ni] = err
				return
			}
			cmin, cmax := m.BudgetRange(wf)
			budget := (cmin + cmax) / 2
			for sd := 0; sd < seeds; sd++ {
				base := adaptive.Config{
					Workflow: wf, Catalog: cat, Billing: cloud.HourlyRoundUp,
					Budget: budget, Seed: int64(sd),
				}
				if noise > 0 {
					base.Perturb = adaptive.Uniform(0.1, noise)
				}
				st, err := adaptive.Run(base)
				if err != nil {
					errs[ni] = err
					return
				}
				base.Replan = true
				ad, err := adaptive.Run(base)
				if err != nil {
					errs[ni] = err
					return
				}
				row.StaticOverspend += st.Overspend
				row.AdaptOverspend += ad.Overspend
				row.StaticMakespan += st.Makespan
				row.AdaptMakespan += ad.Makespan
				row.Replans += float64(ad.Replans)
				count++
			}
		}
		row.StaticOverspend /= float64(count)
		row.AdaptOverspend /= float64(count)
		row.StaticMakespan /= float64(count)
		row.AdaptMakespan /= float64(count)
		row.Replans /= float64(count)
		rows[ni] = row
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderAdaptive prints the A6 noise sweep.
func RenderAdaptive(w io.Writer, rows []AdaptiveRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Noise (+%)\tStatic overspend\tAdaptive overspend\tStatic makespan\tAdaptive makespan\tReplans/run")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\n",
			r.OverRuns*100, r.StaticOverspend, r.AdaptOverspend, r.StaticMakespan, r.AdaptMakespan, r.Replans)
	}
	return tw.Flush()
}

// --- A5: clustering — the paper's assumed preprocessing, measured ---

// ClusteringRow reports the effect of vertical clustering on the full WRF
// program graph at one budget fraction.
type ClusteringRow struct {
	Label        string
	Modules      int
	Cmin, Cmax   float64
	MEDMidBudget float64
}

// Clustering compares scheduling the full Fig. 13 WRF program graph
// directly against scheduling its vertically clustered form (the Fig. 14
// preprocessing), both with the Table I VM catalog at the mid budget.
func Clustering() ([]ClusteringRow, error) {
	cat := cloud.PaperExampleCatalog()
	full := wrf.Full()
	r, err := cluster.Vertical(full)
	if err != nil {
		return nil, err
	}
	var rows []ClusteringRow
	for _, c := range []struct {
		label string
		w     *workflow.Workflow
	}{
		{"full (Fig. 13)", full},
		{"clustered (Fig. 14 style)", r.Clustered},
	} {
		m, err := c.w.BuildMatrices(cat, cloud.HourlyRoundUp)
		if err != nil {
			return nil, err
		}
		cmin, cmax := m.BudgetRange(c.w)
		res, err := sched.Run(sched.CriticalGreedy(), c.w, m, (cmin+cmax)/2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ClusteringRow{
			Label:        c.label,
			Modules:      c.w.NumModules(),
			Cmin:         cmin,
			Cmax:         cmax,
			MEDMidBudget: res.MED,
		})
	}
	if math.IsNaN(rows[0].MEDMidBudget) {
		return nil, fmt.Errorf("exper: NaN MED in clustering study")
	}
	return rows, nil
}

// RenderClustering prints the A5 comparison.
func RenderClustering(w io.Writer, rows []ClusteringRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Workflow\tModules\tCmin\tCmax\tCG MED @ mid budget")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.2f\n", r.Label, r.Modules, r.Cmin, r.Cmax, r.MEDMidBudget)
	}
	return tw.Flush()
}
