package exper

import (
	"math"

	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/sim"
	"medcc/internal/stats"
)

// AblationRow reports the average MED of one greedy-engine configuration
// across random instances and budget levels, isolating Critical-Greedy's
// two design choices (DESIGN.md A1): the candidate set (critical modules
// vs all modules) and the ranking criterion (max time decrease vs max
// time/cost ratio).
type AblationRow struct {
	Name       string
	Candidates string
	Criterion  string
	AvgMED     float64
}

// Ablation runs the 2x2 engine grid plus the GAIN baselines on
// `instances` random workflows of the given size at `levels` budget
// levels each.
func Ablation(seed int64, size gen.ProblemSize, instances, levels int) ([]AblationRow, error) {
	configs := []struct {
		name, cand, crit string
	}{
		{"critical-greedy", "critical", "max-dT"},
		{"critical-ratio", "critical", "max-ratio"},
		{"all-timedec", "all", "max-dT"},
		{"gain-fixpoint", "all", "max-ratio"},
		{"gain3", "all (once/task)", "max-ratio"},
	}
	meds := make([][]float64, len(configs))
	type work struct {
		med []float64
		err error
	}
	results := make([]work, instances)
	scratch := newScratchPool(instances)
	parallelForWorkers(instances, func(wk, k int) {
		cs := &scratch[wk]
		cmin, cmax, err := cs.instance(seed, k, size)
		if err != nil {
			results[k].err = err
			return
		}
		out := make([]float64, 0, len(configs)*levels)
		for lv := 1; lv <= levels; lv++ {
			b := budgetLevel(cmin, cmax, lv, levels)
			for _, cfg := range configs {
				med, err := cs.med(cfg.name, b)
				if err != nil {
					results[k].err = err
					return
				}
				out = append(out, med)
			}
		}
		results[k].med = out
	})
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
	}
	for k := 0; k < instances; k++ {
		pos := 0
		for lv := 0; lv < levels; lv++ {
			for ci := range configs {
				meds[ci] = append(meds[ci], results[k].med[pos])
				pos++
			}
		}
	}
	rows := make([]AblationRow, len(configs))
	for ci, cfg := range configs {
		rows[ci] = AblationRow{
			Name:       cfg.name,
			Candidates: cfg.cand,
			Criterion:  cfg.crit,
			AvgMED:     stats.Mean(meds[ci]),
		}
	}
	return rows, nil
}

// ValidationRow reports the agreement between the analytic model and the
// discrete-event simulator on one random instance (DESIGN.md A2).
type ValidationRow struct {
	Size        gen.ProblemSize
	Instance    int
	MakespanErr float64 // |analytic - simulated|
	CostErr     float64
}

// SimValidation cross-checks analytic makespan/cost against event-driven
// replay on `instances` random instances of the given size. It runs in two
// parallel stages: instances are generated and scheduled concurrently,
// then all replays go through sim.ValidateBatch, which shards the configs
// across pooled Replayers.
func SimValidation(seed int64, size gen.ProblemSize, instances int) ([]ValidationRow, error) {
	rows := make([]ValidationRow, instances)
	errs := make([]error, instances)
	cfgs := make([]sim.Config, instances)
	analytic := make([][2]float64, instances) // {MED, Cost} per instance
	parallelFor(instances, func(k int) {
		w, m, cmin, cmax, err := buildInstance(seed, k, size)
		if err != nil {
			errs[k] = err
			return
		}
		// Separate stream for the budget draw (see TableIII).
		rng := newRNG(seed+1_000_000_007, k)
		b := cmin + rng.Float64()*(cmax-cmin)
		res, err := sched.Run(sched.CriticalGreedy(), w, m, b)
		if err != nil {
			errs[k] = err
			return
		}
		cfgs[k] = sim.Config{Workflow: w, Matrices: m, Schedule: res.Schedule}
		analytic[k] = [2]float64{res.MED, res.Cost}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	batch, err := sim.ValidateBatch(cfgs)
	if err != nil {
		return nil, err
	}
	for k := range rows {
		rows[k] = ValidationRow{
			Size:        size,
			Instance:    k + 1,
			MakespanErr: math.Abs(batch[k].Makespan - analytic[k][0]),
			CostErr:     math.Abs(batch[k].Cost - analytic[k][1]),
		}
	}
	return rows, nil
}
