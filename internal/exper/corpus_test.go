package exper

import (
	"bytes"
	"io"
	"testing"

	"medcc/internal/gen"
)

// TestTableIVCorpusDifferential pins the corpus contract: running Table
// IV from a frozen instance corpus must reproduce the regenerate-per-run
// rows bit-for-bit, per float, including the per-level series.
func TestTableIVCorpusDifferential(t *testing.T) {
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		n, err := WriteTableIVCorpus(&buf, DefaultSeed, compress)
		if err != nil {
			t.Fatal(err)
		}
		if n != 20 {
			t.Fatalf("wrote %d records", n)
		}
		fromCorpus, err := TableIVFromCorpus(&buf, 4)
		if err != nil {
			t.Fatal(err)
		}
		regen, err := TableIV(DefaultSeed, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(fromCorpus) != len(regen) {
			t.Fatalf("row count %d vs %d", len(fromCorpus), len(regen))
		}
		for i := range regen {
			a, b := fromCorpus[i], regen[i]
			if a.Index != b.Index || a.Size != b.Size ||
				a.CG != b.CG || a.GAIN != b.GAIN || a.GAINWRF != b.GAINWRF ||
				a.ImpPct != b.ImpPct || a.ImpWRFPct != b.ImpWRFPct || a.Ratio != b.Ratio {
				t.Fatalf("compress=%v row %d differs:\ncorpus %+v\nregen  %+v", compress, i, a, b)
			}
			for k := range b.PerLvl {
				if a.PerLvl[k] != b.PerLvl[k] {
					t.Fatalf("compress=%v row %d level %d: %v vs %v", compress, i, k, a.PerLvl[k], b.PerLvl[k])
				}
			}
		}
	}
}

// TestCampaignCorpusDifferential pins the Figs. 9-11 path: corpus-backed
// cells — and hence the Fig9/Fig10 aggregations built from them — must
// be bit-identical to Campaign's.
func TestCampaignCorpusDifferential(t *testing.T) {
	const instances, levels = 2, 3
	var buf bytes.Buffer
	n, err := WriteCampaignCorpus(&buf, DefaultSeed, instances, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20*instances {
		t.Fatalf("wrote %d records", n)
	}
	fromCorpus, err := CampaignFromCorpus(&buf, instances, levels)
	if err != nil {
		t.Fatal(err)
	}
	regen, err := Campaign(DefaultSeed, instances, levels)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCorpus) != len(regen) {
		t.Fatalf("cell count %d vs %d", len(fromCorpus), len(regen))
	}
	for i := range regen {
		if fromCorpus[i] != regen[i] {
			t.Fatalf("cell %d differs: corpus %+v regen %+v", i, fromCorpus[i], regen[i])
		}
	}
	f9a, f9b := Fig9(fromCorpus), Fig9(regen)
	for k, v := range f9b {
		if f9a[k] != v {
			t.Fatalf("Fig9 size %d: %v vs %v", k, f9a[k], v)
		}
	}
	f10a, f10b := Fig10(fromCorpus), Fig10(regen)
	for k, v := range f10b {
		if f10a[k] != v {
			t.Fatalf("Fig10 level %d: %v vs %v", k, f10a[k], v)
		}
	}
}

// TestValidationCorpusDifferential pins the corpus feed into the batch
// simulator: SimValidationFromCorpus must reproduce SimValidation's rows
// bit-for-bit.
func TestValidationCorpusDifferential(t *testing.T) {
	size := gen.ProblemSize{M: 12, E: 25, N: 4}
	const instances = 6
	var buf bytes.Buffer
	if _, err := WriteValidationCorpus(&buf, DefaultSeed, size, instances, false); err != nil {
		t.Fatal(err)
	}
	fromCorpus, err := SimValidationFromCorpus(&buf, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	regen, err := SimValidation(DefaultSeed, size, instances)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCorpus) != len(regen) {
		t.Fatalf("row count %d vs %d", len(fromCorpus), len(regen))
	}
	for i := range regen {
		if fromCorpus[i] != regen[i] {
			t.Fatalf("row %d differs: corpus %+v regen %+v", i, fromCorpus[i], regen[i])
		}
	}
}

// TestCorpusShapeMismatch ensures the runners reject corpora written for
// a different experiment shape instead of silently computing on them.
func TestCorpusShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteCampaignCorpus(&buf, DefaultSeed, 2, false); err != nil {
		t.Fatal(err)
	}
	// A campaign corpus with 2 instances/size has 40 records; Table IV
	// consumes 20, so either the size check or the drain check must trip.
	if _, err := TableIVFromCorpus(&buf, 2); err == nil {
		t.Fatal("TableIVFromCorpus accepted a campaign corpus")
	}

	buf.Reset()
	if _, err := WriteTableIVCorpus(&buf, DefaultSeed, false); err != nil {
		t.Fatal(err)
	}
	// 20 records cannot satisfy a 2-instance campaign's 40.
	if _, err := CampaignFromCorpus(&buf, 2, 2); err == nil {
		t.Fatal("CampaignFromCorpus accepted a Table IV corpus")
	}
}

// TestCorpusTruncated ensures mid-stream corruption surfaces as an error
// from the parallel feed path rather than a hang or partial result.
func TestCorpusTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTableIVCorpus(&buf, DefaultSeed, false); err != nil {
		t.Fatal(err)
	}
	cut := buf.Len() / 2
	_, err := TableIVFromCorpus(io.LimitReader(bytes.NewReader(buf.Bytes()), int64(cut)), 2)
	if err == nil {
		t.Fatal("TableIVFromCorpus accepted a truncated corpus")
	}
}
