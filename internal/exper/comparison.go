package exper

import (
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/stats"
)

// TableIVRow is one row of Table IV: average MED of CG and GAIN3 across
// budget levels for one problem size, with the improvement percentage and
// the MED ratio. GAINWRF is the Table-VII-evidenced GAIN3 variant,
// reported alongside the literal-reading GAIN column for transparency.
type TableIVRow struct {
	Index     int
	Size      gen.ProblemSize
	CG        float64
	GAIN      float64
	GAINWRF   float64
	ImpPct    float64 // improvement of CG over GAIN
	ImpWRFPct float64 // improvement of CG over GAINWRF
	Ratio     float64 // MED_CG / MED_GAIN
	PerLvl    []float64
}

// TableIV regenerates Table IV (and the Fig. 8 series, which plots its
// improvement column): one random instance per problem size, scheduled by
// CG and GAIN3 at `levels` budget levels across [Cmin, Cmax]; the paper
// uses 20 levels over the 20 sizes of gen.PaperProblemSizes. Each fan-out
// worker owns a campaignScratch, so the instance storage, schedulers, and
// timing are reused across the sizes a worker processes. Each algorithm
// runs the budget grid as one warm-started sweep (see
// campaignScratch.sweep): level k resumes from level k-1's schedule and
// candidate state instead of re-solving from the least-cost schedule.
func TableIV(seed int64, levels int) ([]TableIVRow, error) {
	sizes := gen.PaperProblemSizes()
	rows := make([]TableIVRow, len(sizes))
	errs := make([]error, len(sizes))
	scratch := newScratchPool(len(sizes))
	parallelForWorkers(len(sizes), func(wk, si int) {
		cs := &scratch[wk]
		size := sizes[si]
		cmin, cmax, err := cs.instance(seed, si, size)
		if err != nil {
			errs[si] = err
			return
		}
		budgets := cs.budgetGrid(cmin, cmax, levels)
		cgMEDs, err := cs.meds("critical-greedy", budgets, make([]float64, 0, levels))
		if err != nil {
			errs[si] = err
			return
		}
		gMEDs, err := cs.meds("gain3", budgets, make([]float64, 0, levels))
		if err != nil {
			errs[si] = err
			return
		}
		wMEDs, err := cs.meds("gain3-wrf", budgets, make([]float64, 0, levels))
		if err != nil {
			errs[si] = err
			return
		}
		perLvl := make([]float64, 0, levels)
		for k := 0; k < levels; k++ {
			perLvl = append(perLvl, sched.Improvement(gMEDs[k], cgMEDs[k]))
		}
		cgAvg, gAvg, wAvg := stats.Mean(cgMEDs), stats.Mean(gMEDs), stats.Mean(wMEDs)
		rows[si] = TableIVRow{
			Index:     si + 1,
			Size:      size,
			CG:        cgAvg,
			GAIN:      gAvg,
			GAINWRF:   wAvg,
			ImpPct:    sched.Improvement(gAvg, cgAvg),
			ImpWRFPct: sched.Improvement(wAvg, cgAvg),
			Ratio:     cgAvg / gAvg,
			PerLvl:    perLvl,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// CampaignCell is the average CG-over-GAIN3 improvement for one (problem
// size, budget level) pair across several random instances — the atom
// from which Figs. 9, 10, and 11 are assembled.
type CampaignCell struct {
	SizeIdx int // 1-based index into gen.PaperProblemSizes
	Level   int // 1-based budget level
	AvgImp  float64
}

// Campaign runs the full Fig. 9/10/11 sweep: for every problem size,
// `instances` random workflows, each scheduled by CG and GAIN3 at
// `levels` budget levels; every (size, level) cell averages the
// improvement across the instances. The paper uses 10 instances and 20
// levels (4,000 schedule pairs). As in TableIV, each algorithm covers its
// budget grid with one warm-started sweep per instance.
//
// medcc:deterministic — cells are pinned bit-identical to the corpus path
func Campaign(seed int64, instances, levels int) ([]CampaignCell, error) {
	sizes := gen.PaperProblemSizes()
	type instResult struct {
		imp []float64 // per level
		err error
	}
	results := make([]instResult, len(sizes)*instances)
	scratch := newScratchPool(len(results))
	parallelForWorkers(len(results), func(wk, k int) {
		cs := &scratch[wk]
		si := k / instances
		cmin, cmax, err := cs.instance(seed+int64(si)*104729, k%instances, sizes[si])
		if err != nil {
			results[k].err = err
			return
		}
		budgets := cs.budgetGrid(cmin, cmax, levels)
		cgMEDs, err := cs.meds("critical-greedy", budgets, make([]float64, 0, levels))
		if err != nil {
			results[k].err = err
			return
		}
		gMEDs, err := cs.meds("gain3", budgets, make([]float64, 0, levels))
		if err != nil {
			results[k].err = err
			return
		}
		imps := make([]float64, levels)
		for lv := 1; lv <= levels; lv++ {
			imps[lv-1] = sched.Improvement(gMEDs[lv-1], cgMEDs[lv-1])
		}
		results[k].imp = imps
	})
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
	}
	cells := make([]CampaignCell, 0, len(sizes)*levels)
	xs := make([]float64, instances) // one buffer for every (size, level) cell
	for si := range sizes {
		for lv := 1; lv <= levels; lv++ {
			for inst := 0; inst < instances; inst++ {
				xs[inst] = results[si*instances+inst].imp[lv-1]
			}
			cells = append(cells, CampaignCell{SizeIdx: si + 1, Level: lv, AvgImp: stats.Mean(xs)})
		}
	}
	return cells, nil
}

// Fig9 collapses the campaign over budget levels: average improvement per
// problem size (200 instances per bar in the paper's configuration).
func Fig9(cells []CampaignCell) map[int]float64 {
	sums := map[int][]float64{}
	for _, c := range cells {
		sums[c.SizeIdx] = append(sums[c.SizeIdx], c.AvgImp)
	}
	out := make(map[int]float64, len(sums))
	for k, xs := range sums {
		out[k] = stats.Mean(xs)
	}
	return out
}

// Fig10 collapses the campaign over problem sizes: average improvement per
// budget level.
func Fig10(cells []CampaignCell) map[int]float64 {
	sums := map[int][]float64{}
	for _, c := range cells {
		sums[c.Level] = append(sums[c.Level], c.AvgImp)
	}
	out := make(map[int]float64, len(sums))
	for k, xs := range sums {
		out[k] = stats.Mean(xs)
	}
	return out
}
