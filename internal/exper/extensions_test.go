package exper

import (
	"strings"
	"testing"

	"medcc/internal/gen"
)

func TestProvisioningSweep(t *testing.T) {
	rows, err := Provisioning(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// HEFT makespan is non-increasing in pool size on this workflow
	// (more identical fastest instances never hurt list scheduling of
	// a parallel-chain DAG).
	for k := 1; k < len(rows); k++ {
		if rows[k].HEFTMED > rows[k-1].HEFTMED+1e-9 {
			t.Fatalf("HEFT makespan rose from pool %d to %d", k, k+1)
		}
	}
	// Large-enough pools must reach the fastest-schedule makespan of
	// the one-to-one model (4.6 on the example).
	last := rows[len(rows)-1]
	if last.HEFTMED > 4.6+1e-9 {
		t.Fatalf("6-instance HEFT MED %v above one-to-one fastest 4.6", last.HEFTMED)
	}
	var sb strings.Builder
	if err := RenderProvisioning(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Pool size") {
		t.Fatal("render missing header")
	}
}

func TestMultiCloudSweep(t *testing.T) {
	rows, err := MultiCloud(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	wins := 0
	for _, r := range rows {
		if r.MultiCost > r.Budget+1e-9 {
			t.Fatalf("multi-cloud overspent at B=%v", r.Budget)
		}
		if r.MultiMED < r.SingleMED-1e-9 {
			wins++
		}
		if r.MultiMED > r.SingleMED+1e-9 {
			t.Fatalf("multi-cloud (%v) worse than its own single-region baseline (%v) at B=%v",
				r.MultiMED, r.SingleMED, r.Budget)
		}
	}
	if wins == 0 {
		t.Fatal("multi-cloud never beat the best single region across the sweep")
	}
	var sb strings.Builder
	if err := RenderMultiCloud(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "regions used") {
		t.Fatal("render missing header")
	}
}

func TestRuntimeScaling(t *testing.T) {
	algs := []string{"critical-greedy", "budget-dist"}
	rows, err := RuntimeScaling(DefaultSeed, algs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		for _, a := range algs {
			if r.Seconds[a] < 0 {
				t.Fatalf("negative timing for %s", a)
			}
		}
	}
	var sb strings.Builder
	if err := RenderRuntime(&sb, algs, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "critical-greedy (ms)") {
		t.Fatal("render missing header")
	}
}

func TestTestbedCapacitySweep(t *testing.T) {
	rows, err := TestbedCapacity(DefaultSeed, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Makespan is non-increasing as the cloud grows, and the narrowest
	// cloud must show queueing.
	for k := 1; k < len(rows); k++ {
		if rows[k].Makespan > rows[k-1].Makespan+1e-9 {
			t.Fatalf("makespan rose from %d to %d VMMs", rows[k-1].VMMs, rows[k].VMMs)
		}
	}
	if rows[0].QueueWait <= 0 {
		t.Fatal("no queueing on the narrowest cloud")
	}
	if rows[0].Makespan <= rows[len(rows)-1].Makespan {
		t.Fatal("capacity had no effect")
	}
	var sb strings.Builder
	if err := RenderCapacity(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "VMM nodes") {
		t.Fatal("render missing header")
	}
}

func TestAdaptiveSweep(t *testing.T) {
	rows, err := Adaptive(DefaultSeed, gen.ProblemSize{M: 10, E: 17, N: 4}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Zero noise: no overspend either way.
	if rows[0].StaticOverspend != 0 || rows[0].AdaptOverspend != 0 {
		t.Fatalf("overspend without noise: %+v", rows[0])
	}
	for _, r := range rows {
		if r.AdaptOverspend > r.StaticOverspend+1e-9 {
			t.Fatalf("adaptive overspend above static at noise %v", r.OverRuns)
		}
	}
	var sb strings.Builder
	if err := RenderAdaptive(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Replans") {
		t.Fatal("render missing header")
	}
}

func TestClusteringStudy(t *testing.T) {
	rows, err := Clustering()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	full, clus := rows[0], rows[1]
	if clus.Modules >= full.Modules {
		t.Fatalf("clustering did not shrink the workflow: %d vs %d", clus.Modules, full.Modules)
	}
	if clus.Cmin > full.Cmin+1e-9 {
		t.Fatalf("clustering raised Cmin: %v vs %v", clus.Cmin, full.Cmin)
	}
	var sb strings.Builder
	if err := RenderClustering(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig. 14") {
		t.Fatal("render missing labels")
	}
}
