package exper

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"medcc/internal/stats"
)

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// RenderTableII prints the Table II reconstruction.
func RenderTableII(w io.Writer, rows []TableIIRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "SCG\tB\tw1\tw2\tw3\tw4\tw5\tw6\tMED\tCost")
	for _, r := range rows {
		hi := "inf"
		if r.BudgetHi >= 0 {
			hi = fmt.Sprintf("%.1f", r.BudgetHi)
		}
		fmt.Fprintf(tw, "%d\t[%.1f, %s)\t", r.Index, r.BudgetLo, hi)
		for _, t := range r.Mapping {
			fmt.Fprintf(tw, "%d\t", t)
		}
		fmt.Fprintf(tw, "%.2f\t%.0f\n", r.MED, r.Cost)
	}
	return tw.Flush()
}

// RenderFig6 prints the Fig. 6 budget/MED series.
func RenderFig6(w io.Writer, pts []Fig6Point) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Budget\tMED\tCost")
	for _, p := range pts {
		fmt.Fprintf(tw, "%.0f\t%.2f\t%.0f\n", p.Budget, p.MED, p.Cost)
	}
	return tw.Flush()
}

// RenderTableIII prints the CG-vs-optimal instances, grouped per size as
// in the paper's column layout.
func RenderTableIII(w io.Writer, rows []TableIIIRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Size\tInstance\tCritical-Greedy\tOptimal\tMatch")
	for _, r := range rows {
		match := ""
		if r.CG <= r.Optimal+1e-9 {
			match = "yes"
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%s\n", r.Size, r.Instance, r.CG, r.Optimal, match)
	}
	return tw.Flush()
}

// RenderFig7 prints the percent-of-optimal bars.
func RenderFig7(w io.Writer, rows []Fig7Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Size\tInstances\tCG % optimal\tGAIN3(paper) % optimal\tGAIN3(literal) % optimal")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.0f\n", r.Size, r.Instances, r.CGPct, r.GainWRFPct, r.GainPct)
	}
	return tw.Flush()
}

// RenderTableIV prints the Table IV comparison with the same columns as
// the paper.
func RenderTableIV(w io.Writer, rows []TableIVRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Prb Idx\t(m, |Ew|, n)\tCG\tGAIN3\tImp (%)\tCG Ratio GAIN\tGAIN3-WRF\tImp-WRF (%)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Index, r.Size, r.CG, r.GAIN, r.ImpPct, r.Ratio, r.GAINWRF, r.ImpWRFPct)
	}
	return tw.Flush()
}

// RenderFig8 prints the improvement-per-size series plotted in Fig. 8
// (derived from Table IV).
func RenderFig8(w io.Writer, rows []TableIVRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Problem Index\tAverage Improvement (%)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.2f\n", r.Index, r.ImpPct)
	}
	return tw.Flush()
}

// RenderFig9 prints the per-size campaign averages.
func RenderFig9(w io.Writer, perSize map[int]float64) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Problem Index\tAverage Improvement (%)")
	for _, k := range sortedKeys(perSize) {
		fmt.Fprintf(tw, "%d\t%.2f\n", k, perSize[k])
	}
	return tw.Flush()
}

// RenderFig10 prints the per-budget-level campaign averages.
func RenderFig10(w io.Writer, perLevel map[int]float64) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Budget Level\tAverage Improvement (%)")
	for _, k := range sortedKeys(perLevel) {
		fmt.Fprintf(tw, "%d\t%.2f\n", k, perLevel[k])
	}
	return tw.Flush()
}

// RenderFig11 prints the (size x level) improvement grid: one row per
// problem size, one column per budget level.
func RenderFig11(w io.Writer, cells []CampaignCell) error {
	bySize := map[int]map[int]float64{}
	maxLevel := 0
	for _, c := range cells {
		if bySize[c.SizeIdx] == nil {
			bySize[c.SizeIdx] = map[int]float64{}
		}
		bySize[c.SizeIdx][c.Level] = c.AvgImp
		if c.Level > maxLevel {
			maxLevel = c.Level
		}
	}
	tw := newTab(w)
	fmt.Fprint(tw, "Size\\Level")
	for lv := 1; lv <= maxLevel; lv++ {
		fmt.Fprintf(tw, "\t%d", lv)
	}
	fmt.Fprintln(tw)
	for _, si := range sortedKeys(bySize) {
		fmt.Fprintf(tw, "%d", si)
		for lv := 1; lv <= maxLevel; lv++ {
			fmt.Fprintf(tw, "\t%.1f", bySize[si][lv])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderTableVII prints the WRF comparison with analytic and testbed MEDs.
func RenderTableVII(w io.Writer, rows []TableVIIRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Budget\tAlg\tw1\tw2\tw3\tw4\tw5\tw6\tMED\tTestbed MED\tTestbed Cost\tVMs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.1f\t%s\t", r.Budget, r.Alg)
		for _, t := range r.Mapping {
			fmt.Fprintf(tw, "%d\t", t)
		}
		fmt.Fprintf(tw, "%.1f\t%.1f\t%.1f\t%d\n", r.MED, r.TestbedMED, r.TestbedCost, r.NumVMs)
	}
	return tw.Flush()
}

// RenderFig15 prints the CG/GAIN3 testbed MED bars per budget.
func RenderFig15(w io.Writer, pts []Fig15Point) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Budget\tCG MED\tGAIN3 MED")
	for _, p := range pts {
		fmt.Fprintf(tw, "%.1f\t%.1f\t%.1f\n", p.Budget, p.CG, p.GAIN)
	}
	return tw.Flush()
}

// RenderAblation prints the engine-grid comparison.
func RenderAblation(w io.Writer, rows []AblationRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Engine\tCandidates\tCriterion\tAvg MED")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\n", r.Name, r.Candidates, r.Criterion, r.AvgMED)
	}
	return tw.Flush()
}

// RenderValidation prints the analytic-vs-simulator agreement summary.
func RenderValidation(w io.Writer, rows []ValidationRow) error {
	var mk, ck []float64
	for _, r := range rows {
		mk = append(mk, r.MakespanErr)
		ck = append(ck, r.CostErr)
	}
	_, err := fmt.Fprintf(w, "instances=%d  max |dMakespan|=%.3g  max |dCost|=%.3g\n",
		len(rows), stats.Max(mk), stats.Max(ck))
	return err
}

func sortedKeys[M ~map[int]V, V any](m M) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
