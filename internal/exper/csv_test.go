package exper

import (
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWriteTableIVCSV(t *testing.T) {
	rows, err := TableIV(DefaultSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTableIVCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 21 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "index" || len(recs[1]) != 10 {
		t.Fatalf("header/width wrong: %v", recs[0])
	}
	if recs[1][1] != "5" || recs[20][1] != "100" {
		t.Fatalf("module counts wrong: %v %v", recs[1][1], recs[20][1])
	}
}

func TestWriteCampaignCSV(t *testing.T) {
	cells, err := Campaign(DefaultSeed, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCampaignCSV(&sb, cells); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 1+20*3 {
		t.Fatalf("%d records", len(recs))
	}
}

func TestWriteFig6CSV(t *testing.T) {
	pts, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig6CSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 18 || recs[1][0] != "48" {
		t.Fatalf("Fig6 CSV wrong: %d records, first budget %v", len(recs), recs[1][0])
	}
}

func TestWriteTableVIICSV(t *testing.T) {
	rows, err := TableVII()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTableVIICSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 19 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[1][1] != "critical-greedy" {
		t.Fatalf("first algorithm %v", recs[1][1])
	}
}
