package exper

import (
	"medcc/internal/sched"
	"medcc/internal/testbed"
	"medcc/internal/wrf"
)

// TableVIIRow is one (budget, algorithm) row of the WRF testbed
// comparison: the schedule (1-based types for w1..w6), the analytic MED,
// and the MED measured by replaying the schedule on the simulated Nimbus
// testbed with precedence-based VM reuse.
type TableVIIRow struct {
	Budget      float64
	Alg         string
	Mapping     []int
	MED         float64
	TestbedMED  float64
	TestbedCost float64
	NumVMs      int
}

// TableVII regenerates Table VII (whose MED columns are also the Fig. 15
// bars): CG and GAIN3 on the grouped WRF workflow at the paper's six
// budgets, each schedule then executed on the simulated testbed. The
// gain3-wrf rows are the paper's S_GAIN3 reproduction (five of six rows
// match the published schedules exactly); the literal-reading gain3 rows
// are included for comparison.
func TableVII() ([]TableVIIRow, error) {
	w := wrf.Grouped()
	m := wrf.Matrices(w)
	g3wrf, err := sched.Get("gain3-wrf")
	if err != nil {
		return nil, err
	}
	g3, err := sched.Get("gain3")
	if err != nil {
		return nil, err
	}
	algs := []sched.Scheduler{sched.CriticalGreedy(), g3wrf, g3}
	var rows []TableVIIRow
	for _, b := range wrf.Budgets() {
		for _, alg := range algs {
			res, err := sched.Run(alg, w, m, b)
			if err != nil {
				return nil, err
			}
			dep, err := testbed.Execute(testbed.DefaultConfig(), w, m, res.Schedule)
			if err != nil {
				return nil, err
			}
			rows = append(rows, TableVIIRow{
				Budget:      b,
				Alg:         alg.Name(),
				Mapping:     paperMapping(w, res.Schedule),
				MED:         res.MED,
				TestbedMED:  dep.Makespan,
				TestbedCost: dep.Cost,
				NumVMs:      len(dep.VMs),
			})
		}
	}
	return rows, nil
}

// Fig15Point is one budget position of Fig. 15's bar chart.
type Fig15Point struct {
	Budget float64
	CG     float64
	GAIN   float64
}

// Fig15 extracts the Fig. 15 series from the Table VII rows.
func Fig15(rows []TableVIIRow) []Fig15Point {
	byBudget := map[float64]*Fig15Point{}
	var order []float64
	for _, r := range rows {
		p, ok := byBudget[r.Budget]
		if !ok {
			p = &Fig15Point{Budget: r.Budget}
			byBudget[r.Budget] = p
			order = append(order, r.Budget)
		}
		switch r.Alg {
		case "critical-greedy":
			p.CG = r.TestbedMED
		case "gain3-wrf":
			p.GAIN = r.TestbedMED
		}
	}
	out := make([]Fig15Point, 0, len(order))
	for _, b := range order {
		out = append(out, *byBudget[b])
	}
	return out
}

// PublishedTableVII returns the paper's printed Table VII rows (schedules
// and measured MEDs) for side-by-side comparison in reports. The CG row at
// B=174.9 is reproduced as printed; see the wrf package tests for why its
// first column is likely a misprint.
func PublishedTableVII() []TableVIIRow {
	mk := func(b float64, alg string, mapping []int, med float64) TableVIIRow {
		return TableVIIRow{Budget: b, Alg: alg, Mapping: mapping, MED: med}
	}
	return []TableVIIRow{
		mk(147.5, "critical-greedy", []int{1, 1, 1, 1, 2, 1}, 468.6),
		mk(147.5, "gain3", []int{3, 2, 2, 1, 1, 2}, 809.2),
		mk(150.0, "critical-greedy", []int{1, 1, 1, 1, 3, 1}, 467.9),
		mk(150.0, "gain3", []int{3, 2, 2, 1, 1, 2}, 809.8),
		mk(155.0, "critical-greedy", []int{3, 2, 1, 1, 2, 1}, 436.8),
		mk(155.0, "gain3", []int{3, 2, 2, 3, 1, 2}, 784.0),
		mk(174.9, "critical-greedy", []int{1, 1, 1, 1, 3, 2}, 213.9),
		mk(174.9, "gain3", []int{3, 2, 2, 2, 2, 2}, 281.2),
		mk(180.1, "critical-greedy", []int{3, 1, 1, 1, 3, 2}, 212.7),
		mk(180.1, "gain3", []int{3, 2, 2, 3, 2, 2}, 270.6),
		mk(186.2, "critical-greedy", []int{1, 1, 1, 3, 3, 2}, 206.4),
		mk(186.2, "gain3", []int{3, 2, 2, 3, 2, 2}, 270.8),
	}
}
