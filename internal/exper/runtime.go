package exper

import (
	"fmt"
	"io"
	"sort"
	"time"

	"medcc/internal/gen"
	"medcc/internal/sched"
)

// RuntimeRow reports scheduling wall time per algorithm at one problem
// size, averaged over repetitions.
type RuntimeRow struct {
	Size    gen.ProblemSize
	Seconds map[string]float64
}

// RuntimeScaling measures the wall time of the fast schedulers across the
// paper's problem sizes (A8): the paper argues Critical-Greedy stays
// practical because each iteration costs O(m + |Ew|); this experiment
// shows the measured growth. Timings are averaged over reps runs at the
// mid budget.
func RuntimeScaling(seed int64, algs []string, reps int) ([]RuntimeRow, error) {
	if len(algs) == 0 {
		algs = []string{"critical-greedy", "gain3", "gain3-wrf", "budget-dist"}
	}
	sizes := gen.PaperProblemSizes()
	rows := make([]RuntimeRow, 0, len(sizes))
	for si, size := range sizes {
		w, m, cmin, cmax, err := buildInstance(seed, si, size)
		if err != nil {
			return nil, err
		}
		b := (cmin + cmax) / 2
		row := RuntimeRow{Size: size, Seconds: map[string]float64{}}
		for _, name := range algs {
			alg, err := sched.Get(name)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for r := 0; r < reps; r++ {
				if _, err := alg.Schedule(w, m, b); err != nil {
					return nil, fmt.Errorf("%s at %v: %w", name, size, err)
				}
			}
			row.Seconds[name] = time.Since(start).Seconds() / float64(reps)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderRuntime prints the A8 timing table in milliseconds.
func RenderRuntime(w io.Writer, algs []string, rows []RuntimeRow) error {
	if len(algs) == 0 && len(rows) > 0 {
		// Column order must not depend on map iteration order: sort the
		// algorithm names so repeated renders agree (found by mapiter).
		for name := range rows[0].Seconds {
			algs = append(algs, name)
		}
		sort.Strings(algs)
	}
	tw := newTab(w)
	fmt.Fprint(tw, "(m, |Ew|, n)")
	for _, a := range algs {
		fmt.Fprintf(tw, "\t%s (ms)", a)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s", r.Size)
		for _, a := range algs {
			fmt.Fprintf(tw, "\t%.3f", r.Seconds[a]*1e3)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
