// Package exper regenerates every table and figure of the paper's
// evaluation (§V-B and §VI): the numerical-example staircase (Table II,
// Fig. 6), the optimality studies (Table III, Fig. 7), the CG-vs-GAIN3
// simulation campaign (Table IV, Figs. 8-11), the WRF testbed comparison
// (Table VII, Fig. 15), and the ablation / validation experiments from
// DESIGN.md (A1, A2). Each experiment returns structured rows; render.go
// prints them in the papers' row/series layout.
//
// All experiments are deterministic: instance k of an experiment draws
// from rand.NewSource(seed + k), so results are stable under the
// parallel execution used for the larger campaigns.
package exper

import (
	"fmt"
	"runtime"
	"sync"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

// DefaultSeed is the seed used by cmd/experiments and the benches; chosen
// once so published EXPERIMENTS.md numbers are reproducible.
const DefaultSeed int64 = 2013

// parallelFor runs fn(0..n-1) on up to GOMAXPROCS goroutines and blocks
// until all complete. Work items must be independent; determinism comes
// from per-item seeding, not execution order.
func parallelFor(n int, fn func(i int)) {
	parallelForWorkers(n, func(_, i int) { fn(i) })
}

// parallelForWorkers is parallelFor with worker identity: fn(w, i) runs
// item i on worker w, and each worker index is used by exactly one
// goroutine at a time, so callers can give every worker its own reusable
// scratch (a gen.Builder, a scheduler with engine state, a sim.Replayer)
// without locking. The work channel is buffered to n items: the producer
// enqueues the whole range up front and never blocks on goroutine
// handoff, which removes the synchronous rendezvous per item that
// dominated fan-out overhead for cheap work items.
func parallelForWorkers(n int, fn func(worker, i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// runPair schedules the workflow with CG and GAIN3 at the given budget and
// returns both MEDs.
func runPair(w *workflow.Workflow, m *workflow.Matrices, budget float64) (cg, gain float64, err error) {
	cgRes, err := sched.Run(sched.CriticalGreedy(), w, m, budget)
	if err != nil {
		return 0, 0, fmt.Errorf("critical-greedy: %w", err)
	}
	g3, err := sched.Get("gain3")
	if err != nil {
		return 0, 0, err
	}
	gRes, err := sched.Run(g3, w, m, budget)
	if err != nil {
		return 0, 0, fmt.Errorf("gain3: %w", err)
	}
	return cgRes.MED, gRes.MED, nil
}

// runNamed schedules with a registry algorithm and returns the MED.
func runNamed(name string, w *workflow.Workflow, m *workflow.Matrices, budget float64) (float64, error) {
	alg, err := sched.Get(name)
	if err != nil {
		return 0, err
	}
	res, err := sched.Run(alg, w, m, budget)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	return res.MED, nil
}

// buildInstance generates instance k of a problem size with the campaign's
// deterministic seeding and returns its matrices and budget range.
func buildInstance(seed int64, k int, size gen.ProblemSize) (*workflow.Workflow, *workflow.Matrices, float64, float64, error) {
	rng := newRNG(seed, k)
	w, cat, err := gen.Instance(rng, size)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return withMatrices(w, cat)
}

// buildSmallInstance generates instance k for the small-scale optimality
// studies (Table III, Fig. 7), which use exactly three VM types: the
// paper's own Table I catalog (VP = {3,15,30}, CV = {1,4,8}) with
// workloads in the range of the §V-B example.
func buildSmallInstance(seed int64, k int, size gen.ProblemSize) (*workflow.Workflow, *workflow.Matrices, float64, float64, error) {
	rng := newRNG(seed, k)
	w, err := gen.Random(rng, gen.Params{
		Modules:      size.M,
		Edges:        size.E,
		WorkloadMin:  10,
		WorkloadMax:  100,
		DataSizeMax:  10,
		AddEntryExit: true,
	})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return withMatrices(w, cloud.PaperExampleCatalog())
}

func withMatrices(w *workflow.Workflow, cat cloud.Catalog) (*workflow.Workflow, *workflow.Matrices, float64, float64, error) {
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	cmin, cmax := m.BudgetRange(w)
	return w, m, cmin, cmax, nil
}

// budgetLevel returns the paper's k-th of n budget levels over
// [cmin, cmax]: Cmin + k*(Cmax-Cmin)/n for k in 1..n.
func budgetLevel(cmin, cmax float64, k, n int) float64 {
	return cmin + float64(k)/float64(n)*(cmax-cmin)
}
