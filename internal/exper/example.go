package exper

import (
	"medcc/internal/cloud"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

// TableIIRow is one schedule of the numerical example: the budget interval
// [BudgetLo, BudgetHi) over which Critical-Greedy produces it, the
// module-to-type mapping (1-based like the paper, entry/exit omitted), and
// the resulting MED and cost.
type TableIIRow struct {
	Index    int
	BudgetLo float64
	BudgetHi float64 // +Inf on the top row
	Mapping  []int
	MED      float64
	Cost     float64
}

// TableII regenerates Table II: all distinct schedules Critical-Greedy
// produces on the §V-B example workflow as the budget varies across
// [Cmin, Cmax], with their budget intervals. Rows are ordered from the
// largest budget (fastest schedule) down, matching the paper's layout.
func TableII() ([]TableIIRow, error) {
	w, cat := workflow.PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		return nil, err
	}
	cmin, cmax := m.BudgetRange(w)

	// Sweep the budget at fine granularity and merge runs of identical
	// schedules into intervals. The example's cost quanta are integral,
	// so 1/8 steps are more than fine enough.
	const step = 0.125
	type entry struct {
		budget float64
		res    *sched.Result
	}
	var sweep []entry
	for b := cmin; b <= cmax+step/2; b += step {
		res, err := sched.Run(sched.CriticalGreedy(), w, m, b)
		if err != nil {
			return nil, err
		}
		sweep = append(sweep, entry{budget: b, res: res})
	}
	var rows []TableIIRow
	for i := 0; i < len(sweep); {
		j := i
		for j+1 < len(sweep) && sweep[j+1].res.Schedule.Equal(sweep[i].res.Schedule) {
			j++
		}
		hi := cmax
		if j+1 < len(sweep) {
			hi = sweep[j+1].budget
		}
		rows = append(rows, TableIIRow{
			BudgetLo: sweep[i].budget,
			BudgetHi: hi,
			Mapping:  paperMapping(w, sweep[i].res.Schedule),
			MED:      sweep[i].res.MED,
			Cost:     sweep[i].res.Cost,
		})
		i = j + 1
	}
	// Paper numbering: schedule 1 is the fastest (largest budget).
	for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
		rows[i], rows[j] = rows[j], rows[i]
	}
	for i := range rows {
		rows[i].Index = i + 1
	}
	if len(rows) > 0 {
		rows[0].BudgetHi = -1 // rendered as infinity
	}
	return rows, nil
}

// paperMapping converts a schedule to the paper's 1-based type indices for
// the schedulable modules only.
func paperMapping(w *workflow.Workflow, s workflow.Schedule) []int {
	var out []int
	for _, i := range w.Schedulable() {
		out = append(out, s[i]+1)
	}
	return out
}

// Fig6Point is one point of the MED-vs-budget staircase of Fig. 6.
type Fig6Point struct {
	Budget float64
	MED    float64
	Cost   float64
}

// Fig6 regenerates the Fig. 6 series: Critical-Greedy's MED at each
// integral budget across [Cmin, Cmax] of the example workflow.
func Fig6() ([]Fig6Point, error) {
	w, cat := workflow.PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		return nil, err
	}
	cmin, cmax := m.BudgetRange(w)
	var pts []Fig6Point
	for b := cmin; b <= cmax; b++ {
		res, err := sched.Run(sched.CriticalGreedy(), w, m, b)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Fig6Point{Budget: b, MED: res.MED, Cost: res.Cost})
	}
	return pts, nil
}
