package exper

import (
	"medcc/internal/cloud"
	"medcc/internal/sched"
	"medcc/internal/workflow"
)

// TableIIRow is one schedule of the numerical example: the budget interval
// [BudgetLo, BudgetHi) over which Critical-Greedy produces it, the
// module-to-type mapping (1-based like the paper, entry/exit omitted), and
// the resulting MED and cost.
type TableIIRow struct {
	Index    int
	BudgetLo float64
	BudgetHi float64 // +Inf on the top row
	Mapping  []int
	MED      float64
	Cost     float64
}

// TableII regenerates Table II: all distinct schedules Critical-Greedy
// produces on the §V-B example workflow as the budget varies across
// [Cmin, Cmax], with their budget intervals. Rows are ordered from the
// largest budget (fastest schedule) down, matching the paper's layout.
func TableII() ([]TableIIRow, error) {
	w, cat := workflow.PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		return nil, err
	}
	cmin, cmax := m.BudgetRange(w)

	// Sweep the budget at fine granularity and merge runs of identical
	// schedules into intervals. The example's cost quanta are integral,
	// so 1/8 steps are more than fine enough. The whole staircase is one
	// warm-started sweep: each budget level resumes Critical-Greedy from
	// the previous level's schedule and candidate state.
	const step = 0.125
	var budgets []float64
	for b := cmin; b <= cmax+step/2; b += step {
		budgets = append(budgets, b)
	}
	schedules, err := sched.CriticalGreedy().SweepInto(nil, w, m, budgets)
	if err != nil {
		return nil, err
	}
	var rows []TableIIRow
	for i := 0; i < len(budgets); {
		j := i
		for j+1 < len(budgets) && schedules[j+1].Equal(schedules[i]) {
			j++
		}
		hi := cmax
		if j+1 < len(budgets) {
			hi = budgets[j+1]
		}
		ev, err := w.Evaluate(m, schedules[i], nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIIRow{
			BudgetLo: budgets[i],
			BudgetHi: hi,
			Mapping:  paperMapping(w, schedules[i]),
			MED:      ev.Makespan,
			Cost:     ev.Cost,
		})
		i = j + 1
	}
	// Paper numbering: schedule 1 is the fastest (largest budget).
	for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
		rows[i], rows[j] = rows[j], rows[i]
	}
	for i := range rows {
		rows[i].Index = i + 1
	}
	if len(rows) > 0 {
		rows[0].BudgetHi = -1 // rendered as infinity
	}
	return rows, nil
}

// paperMapping converts a schedule to the paper's 1-based type indices for
// the schedulable modules only.
func paperMapping(w *workflow.Workflow, s workflow.Schedule) []int {
	var out []int
	for _, i := range w.Schedulable() {
		out = append(out, s[i]+1)
	}
	return out
}

// Fig6Point is one point of the MED-vs-budget staircase of Fig. 6.
type Fig6Point struct {
	Budget float64
	MED    float64
	Cost   float64
}

// Fig6 regenerates the Fig. 6 series: Critical-Greedy's MED at each
// integral budget across [Cmin, Cmax] of the example workflow, produced by
// one warm-started budget sweep.
func Fig6() ([]Fig6Point, error) {
	w, cat := workflow.PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		return nil, err
	}
	cmin, cmax := m.BudgetRange(w)
	var budgets []float64
	for b := cmin; b <= cmax; b++ {
		budgets = append(budgets, b)
	}
	schedules, err := sched.CriticalGreedy().SweepInto(nil, w, m, budgets)
	if err != nil {
		return nil, err
	}
	pts := make([]Fig6Point, 0, len(budgets))
	for k, b := range budgets {
		ev, err := w.Evaluate(m, schedules[k], nil)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Fig6Point{Budget: b, MED: ev.Makespan, Cost: ev.Cost})
	}
	return pts, nil
}
