package sched

import (
	"errors"
	"math"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/workflow"
)

func paperSetup(t *testing.T) (*workflow.Workflow, *workflow.Matrices) {
	t.Helper()
	w, cat := workflow.PaperExample()
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	return w, m
}

func TestCGInfeasibleBudget(t *testing.T) {
	w, m := paperSetup(t)
	_, err := CriticalGreedy().Schedule(w, m, 47.99)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestCGAtCminReturnsLeastCost(t *testing.T) {
	w, m := paperSetup(t)
	s, err := CriticalGreedy().Schedule(w, m, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(m.LeastCost(w)) {
		t.Fatalf("schedule at Cmin = %v", s)
	}
}

// TestCGPaperStaircase checks the Table II reconstruction: the budget
// breakpoints 48/49/50/52/56/60/64 are exactly the paper's, and the MED
// staircase is strictly decreasing across them (the paper's Fig. 6 shape;
// absolute MEDs differ because Fig. 4's edge set is only partially
// recoverable — see DESIGN.md).
func TestCGPaperStaircase(t *testing.T) {
	w, m := paperSetup(t)
	cases := []struct {
		budget, med, cost float64
	}{
		{48, 52.0 / 3, 48},
		{49, 47.0 / 3, 49},
		{50, 34.0 / 3, 50},
		{51, 34.0 / 3, 50}, // no affordable upgrade between 50 and 52
		{52, 181.0 / 30, 52},
		{56, 2 + 59.0/15, 56},
		{57, 2 + 59.0/15, 56}, // one unit of budget left unused, as in §V-B
		{60, 4.7, 60},
		{64, 4.6, 64},
		{100, 4.6, 64}, // budget beyond Cmax is never overspent
	}
	for _, c := range cases {
		res, err := Run(CriticalGreedy(), w, m, c.budget)
		if err != nil {
			t.Fatalf("B=%v: %v", c.budget, err)
		}
		if math.Abs(res.MED-c.med) > 1e-9 {
			t.Errorf("B=%v: MED = %.6f, want %.6f", c.budget, res.MED, c.med)
		}
		if math.Abs(res.Cost-c.cost) > 1e-9 {
			t.Errorf("B=%v: cost = %v, want %v", c.budget, res.Cost, c.cost)
		}
	}
}

// TestCGReschedulingOrder follows the §V-B narration: from the least-cost
// schedule the first module upgraded is w4 (largest time decrease among
// critical modules), then w3, then w6.
func TestCGReschedulingOrder(t *testing.T) {
	w, m := paperSetup(t)
	lc := m.LeastCost(w)

	s49, _ := CriticalGreedy().Schedule(w, m, 49)
	if s49[4] != 2 {
		t.Fatalf("B=49: w4 not upgraded to VT3: %v", s49)
	}
	for _, i := range []int{1, 2, 3, 5, 6} {
		if s49[i] != lc[i] {
			t.Fatalf("B=49: module %d moved unexpectedly: %v", i, s49)
		}
	}
	s50, _ := CriticalGreedy().Schedule(w, m, 50)
	if s50[3] != 2 || s50[4] != 2 {
		t.Fatalf("B=50: want w3,w4 on VT3: %v", s50)
	}
	s52, _ := CriticalGreedy().Schedule(w, m, 52)
	if s52[6] != 2 {
		t.Fatalf("B=52: want w6 on VT3: %v", s52)
	}
}

func TestCGMEDMonotoneInBudget(t *testing.T) {
	w, m := paperSetup(t)
	prev := math.Inf(1)
	for b := 48.0; b <= 70; b += 0.5 {
		res, err := Run(CriticalGreedy(), w, m, b)
		if err != nil {
			t.Fatalf("B=%v: %v", b, err)
		}
		if res.MED > prev+1e-9 {
			t.Fatalf("MED increased from %v to %v at B=%v", prev, res.MED, b)
		}
		if res.Cost > b+1e-9 {
			t.Fatalf("B=%v: cost %v over budget", b, res.Cost)
		}
		prev = res.MED
	}
}

func TestCGTieBreakPrefersCheaperUpgrade(t *testing.T) {
	// Two types give the same execution time for the module but
	// different costs; CG must pick the cheaper (Alg. 1 step 13).
	cat := cloud.Catalog{
		{Name: "base", Power: 1, Rate: 1},
		{Name: "fastCheap", Power: 10, Rate: 2},
		{Name: "fastPricey", Power: 10, Rate: 3},
	}
	w := workflow.New()
	w.AddModule(workflow.Module{Name: "m", Workload: 10})
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	s, err := CriticalGreedy().Schedule(w, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Fatalf("chose type %d, want cheaper tie 1", s[0])
	}
}

func TestCGSingleModuleMatchesOptimal(t *testing.T) {
	cat := cloud.LinearCatalog(4, 2, 1)
	w := workflow.New()
	w.AddModule(workflow.Module{Name: "solo", Workload: 37})
	m, err := w.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(w)
	for b := cmin; b <= cmax+1; b++ {
		cg, err := Run(CriticalGreedy(), w, m, b)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Run(&Optimal{}, w, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cg.MED-opt.MED) > 1e-9 {
			t.Fatalf("B=%v: CG %v != optimal %v on single module", b, cg.MED, opt.MED)
		}
	}
}

func TestGreedyVariantsRegistered(t *testing.T) {
	for _, name := range []string{"critical-greedy", "critical-ratio", "all-timedec", "gain1", "gain2", "gain3", "gain3-wrf", "anneal", "budget-dist", "genetic", "loss1", "loss2", "loss3", "optimal"} {
		s, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("Get(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Names()) < 9 {
		t.Fatalf("Names() = %v", Names())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("critical-greedy", func() Scheduler { return CriticalGreedy() })
}

func TestImprovement(t *testing.T) {
	if got := Improvement(10, 8); math.Abs(got-20) > 1e-12 {
		t.Fatalf("Improvement = %v", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Fatalf("Improvement with zero base = %v", got)
	}
	if got := Improvement(10, 12); got != -20 {
		t.Fatalf("negative improvement = %v", got)
	}
}
