package sched

import (
	"sort"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// GAIN is the budget-spending baseline family of Sakellariou et al.,
// "Scheduling workflows with budget constraints" (2007), as characterized
// in the MED-CC paper: start from the least-cost schedule and repeatedly
// reassign the task with the largest GainWeight — the ratio of time
// decrease over cost increase — while the leftover budget allows. Each
// task is reassigned at most once (the weights are defined against the
// task's current assignment, and a task whose assignment has been upgraded
// leaves the candidate pool).
//
// The variants differ in how the weight is computed and when:
//
//   - GAIN1 computes all GainWeights once against the initial least-cost
//     schedule, sorts the (task, type) upgrades by descending weight, and
//     applies them in that order, skipping upgrades that no longer fit the
//     leftover budget or touch an already-upgraded task.
//   - GAIN2 measures the decrease of the whole-DAG makespan produced by a
//     tentative reassignment instead of the task-local execution time
//     (globally aware, quadratically slower).
//   - GAIN3 re-selects the globally best affordable (task, type) pair at
//     every iteration using task-local weights. This is the variant the
//     MED-CC paper compares against ("the modules with large GainWeight,
//     which is only a local difference ratio, may not have a critical
//     impact on the entire execution time"), reported as the best
//     performer of the group.
//
// A fourth registry entry, "gain-fixpoint", lifts the once-per-task rule
// and lets GAIN3 keep re-upgrading tasks until no affordable improving
// move remains. It is stronger than anything in the 2007 family —
// effectively a knapsack-style ratio greedy — and is included as an
// ablation baseline (see DESIGN.md §5).
type GAIN struct {
	Variant int // 1, 2 or 3
}

// Name implements Scheduler.
func (g *GAIN) Name() string {
	switch g.Variant {
	case 1:
		return "gain1"
	case 2:
		return "gain2"
	default:
		return "gain3"
	}
}

// Schedule implements Scheduler.
func (g *GAIN) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	switch g.Variant {
	case 1:
		return g.staticOrder(w, m, budget)
	case 2:
		return g.oncePerTask(w, m, budget, true)
	default:
		return g.oncePerTask(w, m, budget, false)
	}
}

// staticOrder implements GAIN1: one descending-weight pass over upgrades
// precomputed against the least-cost schedule.
func (g *GAIN) staticOrder(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasible(w, m, budget)
	if err != nil {
		return nil, err
	}
	type upgrade struct {
		i, j   int
		dt, dc float64
	}
	var ups []upgrade
	for _, i := range w.Schedulable() {
		for j := range m.Catalog {
			if j == s[i] {
				continue
			}
			dt := m.TE[i][s[i]] - m.TE[i][j]
			dc := m.CE[i][j] - m.CE[i][s[i]]
			if dt <= dag.Eps {
				continue
			}
			ups = append(ups, upgrade{i, j, dt, dc})
		}
	}
	sort.SliceStable(ups, func(a, b int) bool {
		ra, rb := ratio(ups[a].dt, ups[a].dc), ratio(ups[b].dt, ups[b].dc)
		if ra != rb {
			return ra > rb
		}
		return ups[a].dt > ups[b].dt
	})
	moved := make(map[int]bool)
	for _, u := range ups {
		if moved[u.i] {
			continue
		}
		if u.dc > budget-ctmp+costEps {
			continue
		}
		s[u.i] = u.j
		moved[u.i] = true
		ctmp += u.dc
	}
	return s, nil
}

// oncePerTask implements GAIN2 (makespanWeight true) and GAIN3: pick the
// best affordable (task, type) pair each iteration, retiring each task
// after its single reassignment.
func (g *GAIN) oncePerTask(w *workflow.Workflow, m *workflow.Matrices, budget float64, makespanWeight bool) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasible(w, m, budget)
	if err != nil {
		return nil, err
	}
	moved := make(map[int]bool)
	for {
		cextra := budget - ctmp
		if cextra <= 0 {
			break
		}
		var cur *dag.Timing
		if makespanWeight {
			t, terr := dag.NewTiming(w.Graph(), m.Times(s), nil)
			if terr != nil {
				return nil, terr
			}
			cur = t
		}
		bi, bj := -1, -1
		var bestDT, bestDC float64
		for _, i := range w.Schedulable() {
			if moved[i] {
				continue
			}
			for j := range m.Catalog {
				if j == s[i] {
					continue
				}
				dc := m.CE[i][j] - m.CE[i][s[i]]
				if dc > cextra+costEps {
					continue
				}
				var dt float64
				if makespanWeight {
					if m.TE[i][s[i]]-m.TE[i][j] <= dag.Eps {
						continue
					}
					trial := s.Clone()
					trial[i] = j
					tt, terr := dag.NewTiming(w.Graph(), m.Times(trial), nil)
					if terr != nil {
						return nil, terr
					}
					dt = cur.Makespan - tt.Makespan
				} else {
					dt = m.TE[i][s[i]] - m.TE[i][j]
				}
				if dt <= dag.Eps {
					continue
				}
				if bi == -1 || ratio(dt, dc) > ratio(bestDT, bestDC) ||
					(ratio(dt, dc) == ratio(bestDT, bestDC) && dt > bestDT+dag.Eps) {
					bi, bj, bestDT, bestDC = i, j, dt, dc
				}
			}
		}
		if bi == -1 {
			break
		}
		s[bi] = bj
		moved[bi] = true
		ctmp += bestDC
	}
	return s, nil
}

func init() {
	Register("gain1", func() Scheduler { return &GAIN{Variant: 1} })
	Register("gain2", func() Scheduler { return &GAIN{Variant: 2} })
	Register("gain3", func() Scheduler { return &GAIN{Variant: 3} })
	Register("gain-fixpoint", func() Scheduler {
		return &Greedy{Label: "gain-fixpoint", Candidates: AllModules, Rank: MaxRatio}
	})
}
