package sched

import (
	"sort"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// GAIN is the budget-spending baseline family of Sakellariou et al.,
// "Scheduling workflows with budget constraints" (2007), as characterized
// in the MED-CC paper: start from the least-cost schedule and repeatedly
// reassign the task with the largest GainWeight — the ratio of time
// decrease over cost increase — while the leftover budget allows. Each
// task is reassigned at most once (the weights are defined against the
// task's current assignment, and a task whose assignment has been upgraded
// leaves the candidate pool).
//
// The variants differ in how the weight is computed and when:
//
//   - GAIN1 computes all GainWeights once against the initial least-cost
//     schedule, sorts the (task, type) upgrades by descending weight, and
//     applies them in that order, skipping upgrades that no longer fit the
//     leftover budget or touch an already-upgraded task.
//   - GAIN2 measures the decrease of the whole-DAG makespan produced by a
//     tentative reassignment instead of the task-local execution time
//     (globally aware, quadratically slower).
//   - GAIN3 re-selects the globally best affordable (task, type) pair at
//     every iteration using task-local weights. This is the variant the
//     MED-CC paper compares against ("the modules with large GainWeight,
//     which is only a local difference ratio, may not have a critical
//     impact on the entire execution time"), reported as the best
//     performer of the group.
//
// A fourth registry entry, "gain-fixpoint", lifts the once-per-task rule
// and lets GAIN3 keep re-upgrading tasks until no affordable improving
// move remains. It is stronger than anything in the 2007 family —
// effectively a knapsack-style ratio greedy — and is included as an
// ablation baseline (see DESIGN.md §5).
type GAIN struct {
	Variant int // 1, 2 or 3

	eng engine
}

// Name implements Scheduler.
func (g *GAIN) Name() string {
	switch g.Variant {
	case 1:
		return "gain1"
	case 2:
		return "gain2"
	default:
		return "gain3"
	}
}

// Schedule implements Scheduler.
func (g *GAIN) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	return g.ScheduleInto(nil, w, m, budget)
}

// ScheduleInto implements IntoScheduler.
//
// medcc:allocfree — holds for the iterative GAIN2/GAIN3 paths; GAIN1's
// staticOrder is per-call setup and opts out via medcc:coldpath.
// medcc:deterministic — replayed bit-identical by the differential tests
func (g *GAIN) ScheduleInto(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	switch g.Variant {
	case 1:
		return g.staticOrder(dst, w, m, budget)
	case 2:
		return g.oncePerTask(dst, w, m, budget, true)
	default:
		return g.oncePerTask(dst, w, m, budget, false)
	}
}

// staticOrder implements GAIN1: one descending-weight pass over upgrades
// precomputed against the least-cost schedule. The upgrade list itself is
// per-call setup; the application pass allocates nothing.
//
// medcc:coldpath — the precomputed upgrade list and its sort allocate by
// design; GAIN1 is a baseline, not a steady-state path.
func (g *GAIN) staticOrder(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasibleInto(w, m, budget, dst)
	if err != nil {
		return nil, err
	}
	e := &g.eng
	e.bind(w, m)
	type upgrade struct {
		i, j   int
		dt, dc float64
	}
	var ups []upgrade
	for _, i := range e.mods {
		for _, j := range e.opts(i) {
			if j == s[i] {
				continue
			}
			dt := m.TE[i][s[i]] - m.TE[i][j]
			dc := m.CE[i][j] - m.CE[i][s[i]]
			if dt <= dag.Eps {
				continue
			}
			ups = append(ups, upgrade{i, j, dt, dc})
		}
	}
	sort.SliceStable(ups, func(a, b int) bool {
		ra, rb := ratio(ups[a].dt, ups[a].dc), ratio(ups[b].dt, ups[b].dc)
		// medcc:lint-ignore floateq — comparator needs a strict weak order; exact rank split, then epsilon-free tie-break.
		if ra != rb {
			return ra > rb
		}
		return ups[a].dt > ups[b].dt
	})
	moved := e.resetMoved()
	for _, u := range ups {
		if moved[u.i] {
			continue
		}
		if u.dc > budget-ctmp+costEps {
			continue
		}
		s[u.i] = u.j
		moved[u.i] = true
		ctmp += u.dc
	}
	return s, nil
}

// oncePerTask implements GAIN2 (makespanWeight true) and GAIN3: pick the
// best affordable (task, type) pair each iteration, retiring each task
// after its single reassignment. GAIN2's whole-DAG weights come from the
// incremental timing's WhatIfMakespan probe instead of a trial Timing per
// candidate, turning its O(candidates x full-DAG-pass) iteration into
// O(candidates x affected-suffix) with zero allocations. GAIN3's
// task-local weights depend only on the task's own assignment, so it runs
// off the candidate heap: one option scan per module up front, then one
// pop per accepted upgrade (its ranking rule is exactly candMaxRatio).
func (g *GAIN) oncePerTask(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64, makespanWeight bool) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasibleInto(w, m, budget, dst)
	if err != nil {
		return nil, err
	}
	e := &g.eng
	e.bind(w, m)
	if !makespanWeight {
		e.ct.start(e, candMaxRatio)
		e.resetMoved()
		g.runHeap(s, &ctmp, budget)
		return s, nil
	}
	if err := e.resetTiming(s); err != nil {
		return nil, err
	}
	moved := e.resetMoved()
	for {
		cextra := budget - ctmp
		if cextra <= 0 {
			break
		}
		bi, bj := -1, -1
		var bestDT, bestDC float64
		for _, i := range e.mods {
			if moved[i] {
				continue
			}
			for _, j := range e.opts(i) {
				if j == s[i] {
					continue
				}
				dc := m.CE[i][j] - m.CE[i][s[i]]
				if dc > cextra+costEps {
					continue
				}
				if m.TE[i][s[i]]-m.TE[i][j] <= dag.Eps {
					continue
				}
				dt := e.t.Makespan - e.t.WhatIfMakespan(i, m.TE[i][j])
				if dt <= dag.Eps {
					continue
				}
				if bi == -1 || ratio(dt, dc) > ratio(bestDT, bestDC) ||
					// medcc:lint-ignore floateq — equal-rank detection before the dt tie-break; ratios may be +Inf where epsilon is meaningless.
					(ratio(dt, dc) == ratio(bestDT, bestDC) && dt > bestDT+dag.Eps) {
					bi, bj, bestDT, bestDC = i, j, dt, dc
				}
			}
		}
		if bi == -1 {
			break
		}
		s[bi] = bj
		moved[bi] = true
		ctmp += bestDC
		e.updateNode(bi, bj)
	}
	return s, nil
}

// runHeap drains the candidate heap under the once-per-task discipline at
// the given budget, leaving the state warm for a larger budget level.
//
// medcc:allocfree
func (g *GAIN) runHeap(s workflow.Schedule, ctmp *float64, budget float64) {
	e := &g.eng
	cextra := budget - *ctmp
	if cextra <= 0 {
		return
	}
	e.ct.rebuild(s, cextra, actUnmoved)
	for {
		cextra = budget - *ctmp
		if cextra <= 0 {
			return
		}
		i, j, dc, ok := e.ct.popBest(s, cextra, actUnmoved)
		if !ok {
			return
		}
		s[i] = j
		e.moved[i] = true
		*ctmp += dc
		// The module is retired for this pass, but its cache must reflect
		// the new assignment for warm sweep levels that re-admit it.
		e.ct.evalModule(i, s, budget-*ctmp)
		if dc < 0 {
			e.ct.refreshGrown(s, budget-*ctmp, actUnmoved)
		}
	}
}

// SweepInto implements Sweeper with independent per-level solves: the
// once-per-task rule is defined against a single solve from the least-cost
// schedule, so resuming level k from level k-1's state would re-admit every
// task for one more move per level — a round-based algorithm, not GAIN.
// (Empirically that continuation erases most of Table IV's CG-over-GAIN3
// improvement.) The sweep therefore only reuses the engine and the
// per-level destination buffers; every level is bit-identical to a cold
// ScheduleInto.
//
// medcc:deterministic
func (g *GAIN) SweepInto(dst []workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budgets []float64) ([]workflow.Schedule, error) {
	if err := checkAscending(budgets); err != nil {
		return nil, err
	}
	dst = growSweepDst(dst, len(budgets))
	for k, b := range budgets {
		s, err := g.ScheduleInto(dst[k], w, m, b)
		if err != nil {
			return nil, err
		}
		dst[k] = s
	}
	return dst, nil
}

func init() {
	Register("gain1", func() Scheduler { return &GAIN{Variant: 1} })
	Register("gain2", func() Scheduler { return &GAIN{Variant: 2} })
	Register("gain3", func() Scheduler { return &GAIN{Variant: 3} })
	Register("gain-fixpoint", func() Scheduler {
		return &Greedy{Label: "gain-fixpoint", Candidates: AllModules, Rank: MaxRatio}
	})
}
