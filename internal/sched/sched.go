// Package sched implements budget-constrained workflow schedulers for the
// MED-CC problem: the paper's Critical-Greedy heuristic, the GAIN and LOSS
// baseline families of Sakellariou et al., and an exhaustive optimal solver
// with branch-and-bound pruning for small instances.
//
// All schedulers consume a Workflow plus its precomputed execution time /
// cost Matrices and return a Schedule mapping each module to a VM type such
// that the total cost stays within the budget. Makespans are measured with
// zero intra-cloud transfer time, the paper's evaluation setting.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"medcc/internal/workflow"
)

// ErrInfeasible is returned when the budget is below the cost of the
// least-cost schedule, so no feasible schedule exists (Alg. 1, step 4).
var ErrInfeasible = errors.New("sched: budget below minimum feasible cost")

// Scheduler produces a budget-feasible schedule for a workflow.
type Scheduler interface {
	// Name identifies the algorithm in reports and the registry.
	Name() string
	// Schedule returns a schedule with Cost <= budget, or an error
	// wrapping ErrInfeasible when budget < Cmin.
	Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error)
}

// Result pairs a schedule with its analytic evaluation.
type Result struct {
	Schedule workflow.Schedule
	MED      float64
	Cost     float64

	// Truncated is set when the scheduler reports (via TruncationReporter)
	// that it stopped early — e.g. the exact solver hit its node limit —
	// so Schedule is feasible but not proven optimal.
	Truncated bool
}

// TruncationReporter is implemented by schedulers that can stop a solve
// early under a work limit and return a feasible but unproven incumbent.
// WasTruncated reports whether the most recent Schedule call did so.
type TruncationReporter interface {
	WasTruncated() bool
}

// Run schedules and evaluates in one step.
func Run(s Scheduler, w *workflow.Workflow, m *workflow.Matrices, budget float64) (*Result, error) {
	sch, err := s.Schedule(w, m, budget)
	if err != nil {
		return nil, err
	}
	ev, err := w.Evaluate(m, sch, nil)
	if err != nil {
		return nil, fmt.Errorf("sched: %s produced invalid schedule: %w", s.Name(), err)
	}
	r := &Result{Schedule: sch, MED: ev.Makespan, Cost: ev.Cost}
	if tr, ok := s.(TruncationReporter); ok {
		r.Truncated = tr.WasTruncated()
	}
	return r, nil
}

// Improvement returns the paper's MED improvement percentage of alg over
// base: (MED_base - MED_alg) / MED_base * 100.
func Improvement(medBase, medAlg float64) float64 {
	if medBase == 0 {
		return 0
	}
	return (medBase - medAlg) / medBase * 100
}

// checkFeasible returns the least-cost schedule and its cost, or
// ErrInfeasible if even that exceeds the budget.
func checkFeasible(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, float64, error) {
	return checkFeasibleInto(w, m, budget, nil)
}

// registry maps algorithm names to constructors so tools can select
// schedulers by flag.
var registry = map[string]func() Scheduler{}

// Register installs a scheduler constructor under its name. It panics on
// duplicates; registration happens at init time.
func Register(name string, f func() Scheduler) {
	if _, dup := registry[name]; dup {
		panic("sched: duplicate registration of " + name)
	}
	registry[name] = f
}

// Get returns a new scheduler by registry name.
func Get(name string) (Scheduler, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown algorithm %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered algorithms, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
