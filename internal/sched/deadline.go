package sched

import (
	"errors"
	"fmt"
	"math"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// ErrDeadline reports a deadline below the fastest schedule's makespan, so
// no feasible schedule exists for the dual problem.
var ErrDeadline = errors.New("sched: deadline below minimum achievable makespan")

// The dual of MED-CC — minimize total cost subject to an end-to-end
// deadline — is the problem the deadline-constrained literature the paper
// surveys (Yu et al.'s deadline distribution, Abrishami's partial critical
// paths) addresses. These solvers make the duality executable: sweeping
// budgets with Critical-Greedy and sweeping deadlines with DeadlineLoss
// trace the two sides of the same delay/cost Pareto front.

// DeadlineLoss minimizes cost under a deadline with a LOSS-style greedy:
// start from the fastest schedule and repeatedly apply the downgrade that
// saves the most money while keeping the whole-DAG makespan within the
// deadline (ties: the smaller makespan increase).
func DeadlineLoss(w *workflow.Workflow, m *workflow.Matrices, deadline float64) (*Result, error) {
	s := m.Fastest(w)
	ev, err := w.Evaluate(m, s, nil)
	if err != nil {
		return nil, err
	}
	if ev.Makespan > deadline+dag.Eps {
		return nil, fmt.Errorf("%w: deadline %.6g < fastest makespan %.6g", ErrDeadline, deadline, ev.Makespan)
	}
	var e engine
	e.bind(w, m)
	if err := e.resetTiming(s); err != nil {
		return nil, err
	}
	cost := ev.Cost
	cur := ev.Makespan
	for {
		bi, bj := -1, -1
		var bestSave, bestDM float64
		for _, i := range e.mods {
			for _, j := range e.opts(i) {
				if j == s[i] {
					continue
				}
				save := m.CE[i][s[i]] - m.CE[i][j]
				if save <= costEps {
					continue
				}
				mk := e.t.WhatIfMakespan(i, m.TE[i][j])
				if mk > deadline+dag.Eps {
					continue
				}
				dm := mk - cur
				if bi == -1 || save > bestSave+costEps ||
					(save >= bestSave-costEps && dm < bestDM-dag.Eps) {
					bi, bj, bestSave, bestDM = i, j, save, dm
				}
			}
		}
		if bi == -1 {
			break
		}
		s[bi] = bj
		cost -= bestSave
		cur += bestDM
		e.updateNode(bi, bj)
	}
	return &Result{Schedule: s, MED: cur, Cost: cost}, nil
}

// OptimalDeadline solves the dual exactly by branch and bound: the
// minimum-cost schedule whose makespan is within the deadline. Practical
// for the same instance sizes as Optimal. MaxNodes semantics match
// Optimal (0 means 50 million; exceeding it returns the incumbent).
func OptimalDeadline(w *workflow.Workflow, m *workflow.Matrices, deadline float64, maxNodes int64) (*Result, error) {
	fastest := m.Fastest(w)
	evFast, err := w.Evaluate(m, fastest, nil)
	if err != nil {
		return nil, err
	}
	if evFast.Makespan > deadline+dag.Eps {
		return nil, fmt.Errorf("%w: deadline %.6g < fastest makespan %.6g", ErrDeadline, deadline, evFast.Makespan)
	}
	mods := w.Schedulable()
	n := len(m.Catalog)

	// Bounds: cheapest completion cost and fastest completion types.
	minCost := make([]float64, len(mods))
	fastType := make([]int, len(mods))
	for k, i := range mods {
		minCost[k] = math.Inf(1)
		best := 0
		for j := 0; j < n; j++ {
			if m.CE[i][j] < minCost[k] {
				minCost[k] = m.CE[i][j]
			}
			if m.TE[i][j] < m.TE[i][best] {
				best = j
			}
		}
		fastType[k] = best
	}
	suffixMin := make([]float64, len(mods)+1)
	for k := len(mods) - 1; k >= 0; k-- {
		suffixMin[k] = suffixMin[k+1] + minCost[k]
	}

	bestS := fastest.Clone()
	bestCost := evFast.Cost
	bestMED := evFast.Makespan

	limit := maxNodes
	if limit == 0 {
		limit = 50_000_000
	}
	var expanded int64

	cur := fastest.Clone()
	// Incremental makespan lower bound: the timing is maintained under the
	// invariant "assigned prefix of cur, fastest types for the unassigned
	// suffix", so t.Makespan IS the bound — any completion's makespan is at
	// least the one where the suffix runs at the fastest types. Each branch
	// assignment re-relaxes one node suffix instead of rebuilding the DAG
	// pass. (fastType may break time-ties differently from Fastest, but
	// the execution times — all the bound sees — are identical.)
	t, err := dag.NewTiming(w.Graph(), m.Times(cur), nil)
	if err != nil {
		return nil, err
	}

	var dfs func(depth int, cost float64)
	dfs = func(depth int, cost float64) {
		expanded++
		if expanded > limit {
			return
		}
		if cost+suffixMin[depth] >= bestCost-costEps {
			return // cannot beat the incumbent's cost
		}
		if t.Makespan > deadline+dag.Eps {
			return // no completion meets the deadline
		}
		if depth == len(mods) {
			// The suffix is empty, so the timing is exactly cur's.
			if t.Makespan <= deadline+dag.Eps {
				copy(bestS, cur)
				bestCost = cost
				bestMED = t.Makespan
			}
			return
		}
		i := mods[depth]
		for j := 0; j < n; j++ {
			cur[i] = j
			t.UpdateNode(i, m.TE[i][j])
			dfs(depth+1, cost+m.CE[i][j])
		}
		cur[i] = fastest[i]
		t.UpdateNode(i, m.TE[i][fastest[i]])
	}
	dfs(0, 0)
	return &Result{Schedule: bestS, MED: bestMED, Cost: bestCost}, nil
}
