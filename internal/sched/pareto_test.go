package sched

import (
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/dag"
	"medcc/internal/gen"
)

func checkFront(t *testing.T, front []ParetoPoint) {
	t.Helper()
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for k := 1; k < len(front); k++ {
		if front[k].Cost <= front[k-1].Cost {
			t.Fatalf("front not increasing in cost at %d", k)
		}
		if front[k].MED >= front[k-1].MED {
			t.Fatalf("front not decreasing in MED at %d", k)
		}
	}
}

func TestParetoFrontPaperExample(t *testing.T) {
	w, m := paperSetup(t)
	front, err := ParetoFront(&Optimal{}, w, m, 17)
	if err != nil {
		t.Fatal(err)
	}
	checkFront(t, front)
	// The exact front starts at the least-cost point and ends at the
	// fastest point of the example.
	first, last := front[0], front[len(front)-1]
	if first.Cost != 48 {
		t.Fatalf("front starts at cost %v, want 48", first.Cost)
	}
	if last.MED > 4.6+1e-9 {
		t.Fatalf("front ends at MED %v, want <= 4.6", last.MED)
	}
}

func TestParetoFrontHeuristicAboveOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 6, E: 11, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
	heur, err := ParetoFront(CriticalGreedy(), wf, m, 12)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ParetoFront(&Optimal{}, wf, m, 12)
	if err != nil {
		t.Fatal(err)
	}
	checkFront(t, heur)
	checkFront(t, exact)
	// No heuristic point may dominate the true optimum at its own
	// spend: scheduling optimally with budget = the heuristic point's
	// cost must be at least as fast.
	for _, h := range heur {
		opt, err := Run(&Optimal{}, wf, m, h.Cost)
		if err != nil {
			t.Fatal(err)
		}
		if h.MED < opt.MED-dag.Eps {
			t.Fatalf("heuristic point (%v, %v) beats the optimum %v at the same spend",
				h.Cost, h.MED, opt.MED)
		}
	}
}

func TestParetoFrontDegeneratePoints(t *testing.T) {
	w, m := paperSetup(t)
	front, err := ParetoFront(CriticalGreedy(), w, m, 1) // clamped to 2
	if err != nil {
		t.Fatal(err)
	}
	checkFront(t, front)
}
