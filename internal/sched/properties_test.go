package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"medcc/internal/cloud"
	"medcc/internal/gen"
)

// TestAllSchedulersBudgetInvariant checks the core safety property of every
// registered algorithm over random instances: feasible budgets yield
// schedules within budget; budgets below Cmin yield ErrInfeasible.
func TestAllSchedulersBudgetInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 9, E: 15, N: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		for _, name := range Names() {
			sc, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if name == "optimal" && trial >= 3 {
				continue // keep the exhaustive search cheap
			}
			for _, frac := range []float64{0, 0.3, 0.7, 1, 1.5} {
				b := cmin + frac*(cmax-cmin)
				res, err := Run(sc, wf, m, b)
				if err != nil {
					t.Fatalf("trial %d %s B=%v: %v", trial, name, b, err)
				}
				if res.Cost > b+1e-9 {
					t.Fatalf("trial %d: %s overspent %v > %v", trial, name, res.Cost, b)
				}
				if math.IsNaN(res.MED) || res.MED <= 0 {
					t.Fatalf("trial %d: %s MED = %v", trial, name, res.MED)
				}
			}
			if _, err := sc.Schedule(wf, m, cmin-1); err == nil {
				t.Fatalf("%s accepted infeasible budget", name)
			}
		}
	}
}

// TestCGEnvelopeQuick is the property-based form of the Fig. 6 staircase,
// weakened to what a greedy actually guarantees: CG never beats the
// least-cost MED ceiling from above or spends over budget, and its two
// endpoints are ordered — at B = Cmin it returns the least-cost schedule,
// at B >= Cmax it reaches the fastest schedule's makespan. (Strict
// monotonicity between arbitrary budgets does NOT hold for greedy
// reschedulers: a larger budget can bait the max-ΔT rule onto a worse
// trajectory. Verified non-monotone on seed -473611300228860469.)
func TestCGEnvelopeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 7, E: 12, N: 3})
		if err != nil {
			return false
		}
		m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		if err != nil {
			return false
		}
		cmin, cmax := m.BudgetRange(wf)
		lcEv, err := wf.Evaluate(m, m.LeastCost(wf), nil)
		if err != nil {
			return false
		}
		fastEv, err := wf.Evaluate(m, m.Fastest(wf), nil)
		if err != nil {
			return false
		}
		for k := 0; k <= 10; k++ {
			b := cmin + float64(k)/10*(cmax-cmin)
			res, err := Run(CriticalGreedy(), wf, m, b)
			if err != nil {
				return false
			}
			if res.Cost > b+1e-9 || res.MED > lcEv.Makespan+1e-9 {
				return false
			}
		}
		atMin, err := Run(CriticalGreedy(), wf, m, cmin)
		if err != nil || math.Abs(atMin.MED-lcEv.Makespan) > 1e-9 {
			return false
		}
		atMax, err := Run(CriticalGreedy(), wf, m, cmax)
		if err != nil || math.Abs(atMax.MED-fastEv.Makespan) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCGBoundedByLeastCostAndOptimal sandwiches CG between the least-cost
// schedule's MED (upper bound) and the optimum (lower bound).
func TestCGBoundedByLeastCostAndOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 6, E: 9, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		b := cmin + rng.Float64()*(cmax-cmin)
		lcEv, _ := wf.Evaluate(m, m.LeastCost(wf), nil)
		cg, err := Run(CriticalGreedy(), wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Run(&Optimal{}, wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		if cg.MED > lcEv.Makespan+1e-9 {
			t.Fatalf("trial %d: CG %v worse than least-cost %v", trial, cg.MED, lcEv.Makespan)
		}
		if cg.MED < opt.MED-1e-9 {
			t.Fatalf("trial %d: CG %v beats 'optimal' %v — optimal is broken", trial, cg.MED, opt.MED)
		}
	}
}

// TestBillingPolicyAblation verifies the DESIGN.md §5 observation: moving
// from hourly round-up to exact billing shrinks Cmin (no rounding
// overhead) and never hurts the achievable MED at a given budget.
func TestBillingPolicyAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 10, E: 17, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	hourly, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
	exact, _ := wf.BuildMatrices(cat, cloud.Exact{})
	hc, _ := hourly.BudgetRange(wf)
	ec, _ := exact.BudgetRange(wf)
	if ec > hc+1e-9 {
		t.Fatalf("exact Cmin %v above hourly Cmin %v", ec, hc)
	}
	b := hc * 1.1
	hres, err := Run(CriticalGreedy(), wf, hourly, b)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := Run(CriticalGreedy(), wf, exact, b)
	if err != nil {
		t.Fatal(err)
	}
	// Under exact billing every upgrade is cheaper or equal, so CG can
	// afford at least as much speed.
	if eres.MED > hres.MED+1e-9 {
		t.Fatalf("exact billing MED %v worse than hourly %v", eres.MED, hres.MED)
	}
}

// optTestNodeCap bounds the optimal search in cross-instance reuse tests:
// enough nodes to explore the small trials exhaustively, small enough that
// the 4^25-space trials return their (identical) incumbents quickly.
const optTestNodeCap = 200_000

// TestIntoSchedulersReusableAcrossInstances checks the steady-state
// contract of every IntoScheduler in the registry: one instance, its
// scratch rebound across a stream of random instances and budgets, must
// return exactly the schedule a throwaway instance computes. This is the
// property the zero-allocation engine rests on — stale scratch from a
// previous workflow or budget must never leak into the next result.
func TestIntoSchedulersReusableAcrossInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	reused := map[string]IntoScheduler{}
	for _, name := range Names() {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if into, ok := sc.(IntoScheduler); ok {
			// The exhaustive search joins the IntoScheduler registry with
			// this PR; cap its node budget so the M=25 trials stay quick.
			// The fresh comparison instances below get the same cap, so
			// the reused-vs-fresh differential remains exact.
			if o, isOpt := sc.(*Optimal); isOpt {
				o.MaxNodes = optTestNodeCap
			}
			reused[name] = into
		}
	}
	if len(reused) == 0 {
		t.Fatal("no IntoScheduler in registry")
	}
	var dst map[string][]int
	for trial := 0; trial < 10; trial++ {
		sizes := []gen.ProblemSize{
			{M: 8, E: 12, N: 3}, {M: 14, E: 40, N: 5}, {M: 25, E: 120, N: 4},
		}
		wf, cat, err := gen.Instance(rng, sizes[trial%len(sizes)])
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		b := cmin + rng.Float64()*(cmax-cmin)
		if dst == nil {
			dst = map[string][]int{}
		}
		for name, into := range reused {
			fresh, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if o, isOpt := fresh.(*Optimal); isOpt {
				o.MaxNodes = optTestNodeCap
			}
			want, err := fresh.Schedule(wf, m, b)
			if err != nil {
				t.Fatalf("trial %d %s: fresh: %v", trial, name, err)
			}
			got, err := into.ScheduleInto(dst[name], wf, m, b)
			if err != nil {
				t.Fatalf("trial %d %s: reused: %v", trial, name, err)
			}
			dst[name] = got
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: len %d != %d", trial, name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d %s: module %d: reused %d != fresh %d",
						trial, name, i, got[i], want[i])
				}
			}
		}
	}
}
