package sched

import (
	"math"
	"math/rand"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// Anneal solves MED-CC by simulated annealing: a random walk over type
// assignments with budget repair, accepting uphill moves with probability
// exp(-dMED/T) under geometric cooling. Like Genetic it is a
// population-free metaheuristic baseline — slower than the greedy family,
// immune to their local minima, and seeded with Critical-Greedy so it
// never returns anything worse.
type Anneal struct {
	// Seed makes runs reproducible; the registry default is 1.
	Seed int64
	// Iterations bounds the walk; zero selects the default 4000.
	Iterations int
	// Cooling is the geometric factor per iteration; zero selects
	// 0.999.
	Cooling float64
}

// Name implements Scheduler.
func (a *Anneal) Name() string { return "anneal" }

// Schedule implements Scheduler.
func (a *Anneal) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	if _, _, err := checkFeasible(w, m, budget); err != nil {
		return nil, err
	}
	iters := a.Iterations
	if iters <= 0 {
		iters = 4000
	}
	cooling := a.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.999
	}
	rng := rand.New(rand.NewSource(a.Seed))
	mods := w.Schedulable()
	n := len(m.Catalog)

	cheapest := make(map[int]int, len(mods))
	for _, i := range mods {
		best := 0
		for j := 1; j < n; j++ {
			if m.CE[i][j] < m.CE[i][best] {
				best = j
			}
		}
		cheapest[i] = best
	}
	// All per-iteration state is allocated once here and reused: the
	// permutation buffer (permInto replicates rand.Perm's stream), the
	// trial/current schedules (swapped on acceptance), and one incremental
	// timing refreshed in place by med.
	perm := make([]int, len(mods))
	repair := func(s workflow.Schedule) {
		cost := m.Cost(s)
		permInto(rng, perm)
		for _, k := range perm {
			if cost <= budget+costEps {
				return
			}
			i := mods[k]
			if s[i] != cheapest[i] {
				cost -= m.CE[i][s[i]] - m.CE[i][cheapest[i]]
				s[i] = cheapest[i]
			}
		}
	}
	var (
		times  []float64
		timing *dag.Timing
	)
	med := func(s workflow.Schedule) float64 {
		times = m.TimesInto(s, times)
		if timing == nil {
			t, err := dag.NewTiming(w.Graph(), times, nil)
			if err != nil {
				return math.Inf(1) // unreachable on a validated workflow
			}
			timing = t
		} else if err := timing.Update(times); err != nil {
			return math.Inf(1)
		}
		return timing.Makespan
	}

	cur, err := CriticalGreedy().Schedule(w, m, budget)
	if err != nil {
		return nil, err
	}
	curMED := med(cur)
	best := cur.Clone()
	bestMED := curMED
	trial := make(workflow.Schedule, len(cur))

	// Initial temperature: a few percent of the starting makespan, so
	// early uphill moves of that scale are plausible.
	temp := curMED * 0.05
	if temp <= 0 {
		temp = 1
	}
	for it := 0; it < iters; it++ {
		copy(trial, cur)
		i := mods[rng.Intn(len(mods))]
		trial[i] = rng.Intn(n)
		repair(trial)
		if m.Cost(trial) > budget+costEps {
			continue // repair could not fit this neighbor
		}
		tMED := med(trial)
		d := tMED - curMED
		if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
			cur, trial = trial, cur
			curMED = tMED
			if curMED < bestMED {
				copy(best, cur)
				bestMED = curMED
			}
		}
		temp *= cooling
	}
	return best, nil
}

func init() {
	Register("anneal", func() Scheduler { return &Anneal{Seed: 1} })
}
