package sched

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
	"medcc/internal/workflow"
)

// TestOptimalParallelMatchesSequential is the determinism contract of the
// branch-and-bound fan-out: at every worker count the solver must return
// the same schedule, element for element, as the sequential DFS — not just
// the same makespan. It covers the Table III and Fig. 7 sizes plus the
// first extended size, five budget levels each, and is meant to run under
// -race (the CI race job executes this package).
func TestOptimalParallelMatchesSequential(t *testing.T) {
	sizes := []gen.ProblemSize{
		{M: 5, E: 6, N: 3}, {M: 6, E: 11, N: 3}, {M: 7, E: 14, N: 3},
		{M: 8, E: 18, N: 3}, {M: 10, E: 22, N: 3},
	}
	rng := rand.New(rand.NewSource(42))
	for _, size := range sizes {
		wf, cat, err := gen.Instance(rng, size)
		if err != nil {
			t.Fatal(err)
		}
		m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		if err != nil {
			t.Fatal(err)
		}
		cmin, cmax := m.BudgetRange(wf)
		seq := &Optimal{Workers: 1}
		for lv := 1; lv <= 5; lv++ {
			b := cmin + float64(lv)/6*(cmax-cmin)
			want, err := Run(seq, wf, m, b)
			if err != nil {
				t.Fatal(err)
			}
			if want.Truncated {
				t.Fatalf("size %v level %d: sequential solve truncated", size, lv)
			}
			for _, workers := range []int{2, 3, 8} {
				got, err := Run(&Optimal{Workers: workers}, wf, m, b)
				if err != nil {
					t.Fatalf("size %v level %d workers %d: %v", size, lv, workers, err)
				}
				if got.MED != want.MED || got.Cost != want.Cost {
					t.Fatalf("size %v level %d workers %d: (MED, cost) = (%v, %v), sequential (%v, %v)",
						size, lv, workers, got.MED, got.Cost, want.MED, want.Cost)
				}
				for i := range want.Schedule {
					if got.Schedule[i] != want.Schedule[i] {
						t.Fatalf("size %v level %d workers %d: schedule[%d] = %d, sequential %d",
							size, lv, workers, i, got.Schedule[i], want.Schedule[i])
					}
				}
			}
		}
	}
}

// TestOptimalPooledResolveIsStable re-solves the same instance with the
// same pooled solver: the steady-state scratch path (bound tables, worker
// slots, timings all reused) must reproduce the cold result exactly.
func TestOptimalPooledResolveIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 8, E: 18, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(wf)
	b := (cmin + cmax) / 2
	for _, workers := range []int{1, 4} {
		o := &Optimal{Workers: workers}
		first, err := o.Schedule(wf, m, b)
		if err != nil {
			t.Fatal(err)
		}
		cold := append(workflow.Schedule(nil), first...)
		for rep := 0; rep < 3; rep++ {
			again, err := o.Schedule(wf, m, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cold {
				if again[i] != cold[i] {
					t.Fatalf("workers %d repeat %d: schedule[%d] = %d, first solve %d",
						workers, rep, i, again[i], cold[i])
				}
			}
		}
	}
}

// TestOptimalTruncationReporting pins the Truncated/Expanded contract: a
// starved node budget must set the flag (and propagate it through
// sched.Run), a defaulted one must clear it and report the node count.
func TestOptimalTruncationReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 8, E: 18, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
	if err != nil {
		t.Fatal(err)
	}
	cmin, cmax := m.BudgetRange(wf)
	b := (cmin + cmax) / 2

	starved := &Optimal{MaxNodes: 10}
	res, err := Run(starved, wf, m, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !starved.WasTruncated() {
		t.Fatalf("MaxNodes=10: Truncated = %v, WasTruncated = %v, want true, true",
			res.Truncated, starved.WasTruncated())
	}

	full := &Optimal{}
	res, err = Run(full, wf, m, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || full.WasTruncated() {
		t.Fatal("default node limit reported truncation on an m=8 instance")
	}
	if full.Expanded <= 0 {
		t.Fatalf("Expanded = %d after a completed solve", full.Expanded)
	}
}

// TestOptimalDominancePruningKeepsOptimum feeds the solver a catalog full
// of dominated and exactly-tied types — strictly worse (slower and at
// least as expensive), strictly redundant (identical power and rate), and
// merely overpriced — and checks against the unpruned brute-force oracle
// that dropping them never drops the optimum.
func TestOptimalDominancePruningKeepsOptimum(t *testing.T) {
	cat := cloud.Catalog{
		{Name: "slow", Power: 3, Rate: 1},
		{Name: "slow-overpriced", Power: 3, Rate: 5}, // dominated by slow
		{Name: "mid", Power: 15, Rate: 4},
		{Name: "mid-twin", Power: 15, Rate: 4}, // exact tie with mid
		{Name: "fast", Power: 30, Rate: 8},
		{Name: "slowest-priciest", Power: 2, Rate: 9}, // dominated by all
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		wf, err := gen.Random(rng, gen.Params{
			Modules: 5, Edges: 6, WorkloadMin: 10, WorkloadMax: 100,
			DataSizeMax: 10, AddEntryExit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		if err != nil {
			t.Fatal(err)
		}
		cmin, cmax := m.BudgetRange(wf)
		for lv := 1; lv <= 3; lv++ {
			b := cmin + float64(lv)/4*(cmax-cmin)
			res, err := Run(&Optimal{}, wf, m, b)
			if err != nil {
				t.Fatal(err)
			}
			wantMED, wantCost := bruteForce(t, wf, m, b)
			if math.Abs(res.MED-wantMED) > 1e-9 {
				t.Fatalf("trial %d B=%v: optimal MED %v, brute force %v", trial, b, res.MED, wantMED)
			}
			if math.Abs(res.Cost-wantCost) > 1e-9 {
				t.Fatalf("trial %d B=%v: optimal cost %v, brute force %v", trial, b, res.Cost, wantCost)
			}
		}
	}
}

// TestOptimalProvesM10UnderDefaultLimit pins the acceptance bar for the
// extended optimality studies: m=10 instances must solve to proven
// optimality (no truncation) under the default node limit, with plenty of
// headroom.
func TestOptimalProvesM10UnderDefaultLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 5; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 10, E: 22, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		m, err := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		if err != nil {
			t.Fatal(err)
		}
		cmin, cmax := m.BudgetRange(wf)
		for lv := 1; lv <= 3; lv++ {
			o := &Optimal{}
			if _, err := Run(o, wf, m, cmin+float64(lv)/4*(cmax-cmin)); err != nil {
				t.Fatal(err)
			}
			if o.Truncated {
				t.Fatalf("trial %d level %d: m=10 solve truncated at default node limit", trial, lv)
			}
			if o.Expanded >= defaultMaxNodes/100 {
				t.Fatalf("trial %d level %d: %d nodes leaves too little headroom", trial, lv, o.Expanded)
			}
		}
	}
}
