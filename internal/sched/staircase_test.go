package sched

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/gen"
)

// staircaseSchedulers are the families the serve cache will build
// staircases for: a warm-sweep Greedy (where per-level independence
// actually matters — warm resumes diverge), GAIN3 (per-level by
// design), and LOSS1 (no Sweeper at all).
func staircaseSchedulers() []struct {
	name string
	mk   func() IntoScheduler
} {
	return []struct {
		name string
		mk   func() IntoScheduler
	}{
		{"critical-greedy", func() IntoScheduler { return CriticalGreedy() }},
		{"gain3", func() IntoScheduler { return &GAIN{Variant: 3} }},
		{"loss1", func() IntoScheduler { return &LOSS{Variant: 1} }},
	}
}

// TestSweepGridBitIdentical is the staircase's core contract: every
// grid level must equal an INDEPENDENT cold ScheduleInto at the same
// budget, bit for bit — not the warm-resumed sweep, which for the
// Greedy family legitimately diverges from cold solves.
func TestSweepGridBitIdentical(t *testing.T) {
	sizes := gen.PaperProblemSizes()[:6]
	for _, size := range sizes {
		w, m, cmin, cmax := diffInstance(t, size.M, size)
		for _, sc := range staircaseSchedulers() {
			st, err := SweepGrid(sc.mk(), w, m, cmin, cmax, GridOptions{})
			if err != nil {
				t.Fatalf("%s on %v: %v", sc.name, size, err)
			}
			fresh := sc.mk()
			for k := 0; k < st.Levels(); k++ {
				want, err := fresh.ScheduleInto(nil, w, m, st.Budgets[k])
				if err != nil {
					t.Fatal(err)
				}
				requireSameSchedule(t, sc.name+" staircase level", size, st.Budgets[k], st.Schedule(k), want)
			}
		}
	}
}

// TestSweepGridInvariants checks the structural contract of the
// extracted staircase: strictly ascending budgets recomputed through
// BudgetAt, valid level indices, no two adjacent levels sharing a
// distinct-schedule entry AND differing in schedule, dedup actually
// collapsing runs, and the endpoints of the range present.
func TestSweepGridInvariants(t *testing.T) {
	size := gen.ProblemSize{M: 30, E: 268, N: 6}
	w, m, cmin, cmax := diffInstance(t, size.M, size)
	st, err := SweepGrid(CriticalGreedy(), w, m, cmin, cmax, GridOptions{InitLevels: 9, MaxLevels: 33})
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels() < 2 || st.Levels() > 33 {
		t.Fatalf("levels = %d, want within [2, 33]", st.Levels())
	}
	if st.Budgets[0] != cmin || st.Budgets[st.Levels()-1] != cmax {
		t.Fatalf("endpoints [%.6g, %.6g], want [%.6g, %.6g]",
			st.Budgets[0], st.Budgets[st.Levels()-1], cmin, cmax)
	}
	for k := 0; k < st.Levels(); k++ {
		if got := BudgetAt(st.Lo, st.Hi, st.Fracs[k]); got != st.Budgets[k] {
			t.Fatalf("level %d: BudgetAt(frac) = %v, stored budget %v — not bit-equal", k, got, st.Budgets[k])
		}
		if int(st.Level[k]) >= st.Steps() {
			t.Fatalf("level %d: distinct index %d out of range (%d steps)", k, st.Level[k], st.Steps())
		}
		if k > 0 {
			if st.Budgets[k] <= st.Budgets[k-1] {
				t.Fatalf("budgets not strictly ascending at %d: %v then %v", k, st.Budgets[k-1], st.Budgets[k])
			}
			same := st.Schedule(k).Equal(st.Schedule(k - 1))
			shared := st.Level[k] == st.Level[k-1]
			if same != shared {
				t.Fatalf("level %d: equal schedules=%v but shared entry=%v — dedup broken", k, same, shared)
			}
		}
	}
	if st.Steps() > st.Levels() {
		t.Fatalf("%d distinct schedules for %d levels", st.Steps(), st.Levels())
	}
}

// TestSweepGridRefinement checks that adaptive refinement (a) adds
// levels beyond the initial grid when the curve has steps between
// coarse points, (b) respects MaxLevels, and (c) keeps every fraction a
// dyadic so midpoint budgets land bit-exactly via BudgetAt.
func TestSweepGridRefinement(t *testing.T) {
	size := gen.ProblemSize{M: 40, E: 453, N: 7}
	w, m, cmin, cmax := diffInstance(t, size.M, size)
	coarse, err := SweepGrid(CriticalGreedy(), w, m, cmin, cmax, GridOptions{InitLevels: 3, MaxLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := SweepGrid(CriticalGreedy(), w, m, cmin, cmax, GridOptions{InitLevels: 3, MaxLevels: 17})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Levels() <= coarse.Levels() {
		t.Fatalf("refinement added no levels: coarse %d, fine %d (curve has %d distinct schedules)",
			coarse.Levels(), fine.Levels(), coarse.Steps())
	}
	if fine.Levels() > 17 {
		t.Fatalf("MaxLevels=17 exceeded: %d levels", fine.Levels())
	}
	for k, f := range fine.Fracs {
		scaled := f * 4096
		if scaled != math.Trunc(scaled) {
			t.Fatalf("frac[%d] = %v is not a multiple of 1/4096 — refinement left the dyadic grid", k, f)
		}
	}
	// Coarse grid fractions must survive into the refined grid with the
	// same bit-exact budgets (refinement only inserts, never perturbs).
	for k, f := range coarse.Fracs {
		if lev, ok := fine.Lookup(coarse.Budgets[k]); !ok {
			t.Fatalf("coarse budget %v (frac %v) missing from refined grid", coarse.Budgets[k], f)
		} else if fine.Budgets[lev] != coarse.Budgets[k] {
			t.Fatalf("lookup returned wrong level for coarse budget %v", coarse.Budgets[k])
		}
	}
}

// TestStaircaseLookup pins the exact-match semantics the cache depends
// on: every grid budget hits its own level; everything else — including
// budgets a half-ulp off a grid point — misses and must fall through.
func TestStaircaseLookup(t *testing.T) {
	size := gen.ProblemSize{M: 25, E: 201, N: 5}
	w, m, cmin, cmax := diffInstance(t, size.M, size)
	st, err := SweepGrid(&GAIN{Variant: 3}, w, m, cmin, cmax, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < st.Levels(); k++ {
		lev, ok := st.Lookup(st.Budgets[k])
		if !ok || lev != k {
			t.Fatalf("Lookup(Budgets[%d]) = (%d, %v), want (%d, true)", k, lev, ok, k)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		b := cmin + rng.Float64()*(cmax-cmin)
		if _, hit := st.Lookup(b); hit {
			// Astronomically unlikely to land bit-exactly on a grid point;
			// if it does, it's a legitimate hit, not a failure.
			if lev, _ := st.Lookup(b); st.Budgets[lev] != b {
				t.Fatalf("Lookup(%v) claimed hit on non-matching budget", b)
			}
			continue
		}
	}
	if _, ok := st.Lookup(math.Nextafter(st.Budgets[1], math.Inf(1))); ok {
		t.Fatal("Lookup matched a budget one ulp off a grid point")
	}
	if _, ok := st.Lookup(cmin - 1); ok {
		t.Fatal("Lookup matched a budget below the range")
	}
	if _, ok := st.Lookup(cmax + 1); ok {
		t.Fatal("Lookup matched a budget above the range")
	}
}

// TestSweepGridDegenerate covers the zero-width budget range (cmin ==
// cmax: all fractions map to one budget, collapsed to one level) and
// the inverted-range error.
func TestSweepGridDegenerate(t *testing.T) {
	size := gen.ProblemSize{M: 15, E: 53, N: 4}
	w, m, cmin, _ := diffInstance(t, size.M, size)
	st, err := SweepGrid(CriticalGreedy(), w, m, cmin, cmin, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels() != 1 {
		t.Fatalf("zero-width range: %d levels, want 1", st.Levels())
	}
	if lev, ok := st.Lookup(cmin); !ok || lev != 0 {
		t.Fatalf("zero-width lookup = (%d, %v), want (0, true)", lev, ok)
	}
	if _, err := SweepGrid(CriticalGreedy(), w, m, cmin+1, cmin, GridOptions{}); err == nil {
		t.Fatal("inverted range accepted")
	}
}

// TestSweepGridTruncation checks that a TruncationReporter scheduler
// propagates per-level truncation flags into the staircase.
func TestSweepGridTruncation(t *testing.T) {
	size := gen.ProblemSize{M: 8, E: 11, N: 3}
	w, m, cmin, cmax := diffInstance(t, size.M, size)
	st, err := SweepGrid(&Optimal{MaxNodes: 1}, w, m, cmin, cmax, GridOptions{InitLevels: 3, MaxLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Trunc == nil {
		t.Fatal("truncating solver produced no Trunc flags")
	}
	any := false
	for k := 0; k < st.Levels(); k++ {
		any = any || st.Truncated(k)
	}
	if !any {
		t.Fatal("MaxNodes=1 solve reported no truncation at any level")
	}
}
