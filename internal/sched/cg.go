package sched

import (
	"math"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// CandidateSet selects which modules a greedy rescheduler may upgrade in
// each iteration.
type CandidateSet int

const (
	// CriticalOnly restricts candidates to modules on the current
	// critical path (Critical-Greedy's choice, Alg. 1 step 11).
	CriticalOnly CandidateSet = iota
	// AllModules considers every schedulable module (GAIN's choice).
	AllModules
)

// Criterion ranks candidate (module, type) upgrades.
type Criterion int

const (
	// MaxTimeDecrease picks the largest execution time decrease, ties
	// broken by the minimum cost increase (Alg. 1 step 13).
	MaxTimeDecrease Criterion = iota
	// MaxRatio picks the largest time-decrease / cost-increase ratio
	// (the GainWeight of Sakellariou et al.); free upgrades (zero cost
	// increase) rank above everything, ordered by time decrease.
	MaxRatio
)

// Greedy is the shared rescheduling engine behind Critical-Greedy and the
// GAIN family: start from the least-cost schedule and repeatedly apply the
// best affordable upgrade until the leftover budget allows none.
//
// The four (CandidateSet, Criterion) combinations are exactly the ablation
// grid of DESIGN.md: Critical-Greedy is {CriticalOnly, MaxTimeDecrease},
// GAIN3 is {AllModules, MaxRatio}.
type Greedy struct {
	Label      string
	Candidates CandidateSet
	Rank       Criterion

	eng engine
}

// CriticalGreedy returns the paper's Critical-Greedy algorithm (Alg. 1).
func CriticalGreedy() *Greedy {
	return &Greedy{Label: "critical-greedy", Candidates: CriticalOnly, Rank: MaxTimeDecrease}
}

// Name implements Scheduler.
func (g *Greedy) Name() string { return g.Label }

// Schedule implements Scheduler.
func (g *Greedy) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	return g.ScheduleInto(nil, w, m, budget)
}

// ScheduleInto implements IntoScheduler. The engine keeps the incremental
// timing bound to the current schedule: each accepted upgrade re-relaxes
// only the affected suffix of the topological order instead of rebuilding
// the whole forward/backward pass, and the critical-path candidate list is
// collected into a reused scratch slice.
//
// medcc:allocfree
func (g *Greedy) ScheduleInto(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasibleInto(w, m, budget, dst)
	if err != nil {
		return nil, err
	}
	e := &g.eng
	e.bind(w, m)
	needTiming := g.Candidates == CriticalOnly
	if needTiming {
		if err := e.resetTiming(s); err != nil {
			return nil, err
		}
	}
	for {
		cextra := budget - ctmp
		if cextra <= 0 {
			break
		}
		candidates := e.mods
		if needTiming {
			candidates = e.critical()
		}
		bi, bj := -1, -1
		var bestDT, bestDC float64
		for _, i := range candidates {
			tei, cei := m.TE[i], m.CE[i]
			told := tei[s[i]]
			cold := cei[s[i]]
			for _, j := range e.opts(i) {
				if j == s[i] {
					continue
				}
				dt := told - tei[j] // Eq. 10
				dc := cei[j] - cold // Eq. 11
				if dt <= dag.Eps {
					continue // not an upgrade
				}
				if dc > cextra+costEps {
					continue // unaffordable
				}
				if bi == -1 || g.better(dt, dc, bestDT, bestDC) {
					bi, bj, bestDT, bestDC = i, j, dt, dc
				}
			}
		}
		if bi == -1 {
			break // no affordable rescheduling (Alg. 1 step 14)
		}
		s[bi] = bj
		ctmp += bestDC
		if needTiming {
			e.updateNode(bi, bj)
		}
	}
	return s, nil
}

// costEps tolerates float jitter in cost arithmetic; costs are sums of
// products of catalog rates with small integers, so any real violation is
// far larger.
const costEps = 1e-9

// sameCost reports whether two spends are equal within costEps. The
// floateq analyzer mandates this helper over direct == on cost values.
func sameCost(a, b float64) bool { return math.Abs(a-b) <= costEps }

// better reports whether the candidate (dt, dc) beats the incumbent
// (bestDT, bestDC) under the configured criterion.
//
// medcc:floateq-exact — ratios may be +Inf (free upgrades); exact
// inequality merely detects distinct ranks before the epsilon tie-breaks.
func (g *Greedy) better(dt, dc, bestDT, bestDC float64) bool {
	switch g.Rank {
	case MaxRatio:
		r, br := ratio(dt, dc), ratio(bestDT, bestDC)
		if r != br {
			return r > br
		}
		return dt > bestDT+dag.Eps
	default: // MaxTimeDecrease
		if dt > bestDT+dag.Eps {
			return true
		}
		if dt < bestDT-dag.Eps {
			return false
		}
		return dc < bestDC-costEps
	}
}

// ratio computes the GainWeight dt/dc, treating free or cost-saving
// upgrades as infinitely attractive.
func ratio(dt, dc float64) float64 {
	if dc <= costEps {
		return math.Inf(1)
	}
	return dt / dc
}

func init() {
	Register("critical-greedy", func() Scheduler { return CriticalGreedy() })
	Register("critical-ratio", func() Scheduler {
		return &Greedy{Label: "critical-ratio", Candidates: CriticalOnly, Rank: MaxRatio}
	})
	Register("all-timedec", func() Scheduler {
		return &Greedy{Label: "all-timedec", Candidates: AllModules, Rank: MaxTimeDecrease}
	})
}
