package sched

import (
	"math"

	"medcc/internal/workflow"
)

// CandidateSet selects which modules a greedy rescheduler may upgrade in
// each iteration.
type CandidateSet int

const (
	// CriticalOnly restricts candidates to modules on the current
	// critical path (Critical-Greedy's choice, Alg. 1 step 11).
	CriticalOnly CandidateSet = iota
	// AllModules considers every schedulable module (GAIN's choice).
	AllModules
)

// Criterion ranks candidate (module, type) upgrades.
type Criterion int

const (
	// MaxTimeDecrease picks the largest execution time decrease, ties
	// broken by the minimum cost increase (Alg. 1 step 13).
	MaxTimeDecrease Criterion = iota
	// MaxRatio picks the largest time-decrease / cost-increase ratio
	// (the GainWeight of Sakellariou et al.); free upgrades (zero cost
	// increase) rank above everything, ordered by time decrease.
	MaxRatio
)

// Greedy is the shared rescheduling engine behind Critical-Greedy and the
// GAIN family: start from the least-cost schedule and repeatedly apply the
// best affordable upgrade until the leftover budget allows none.
//
// The four (CandidateSet, Criterion) combinations are exactly the ablation
// grid of DESIGN.md: Critical-Greedy is {CriticalOnly, MaxTimeDecrease},
// GAIN3 is {AllModules, MaxRatio}.
type Greedy struct {
	Label      string
	Candidates CandidateSet
	Rank       Criterion

	eng engine
}

// CriticalGreedy returns the paper's Critical-Greedy algorithm (Alg. 1).
func CriticalGreedy() *Greedy {
	return &Greedy{Label: "critical-greedy", Candidates: CriticalOnly, Rank: MaxTimeDecrease}
}

// Name implements Scheduler.
func (g *Greedy) Name() string { return g.Label }

// Schedule implements Scheduler.
func (g *Greedy) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	return g.ScheduleInto(nil, w, m, budget)
}

// ScheduleInto implements IntoScheduler. Instead of rescanning every
// (module, type) pair per iteration, the engine maintains a per-module
// best-upgrade cache with a lazy-deletion heap on top (see candTab): each
// iteration pops the globally best affordable upgrade, applies it, and
// repairs only the caches the accept invalidated. For CriticalOnly the
// timing layer reports exactly which nodes an accept perturbed
// (UpdateNodeTracked), so criticality flips are patched from the changed
// set and the candidate pool is only rebuilt when the makespan itself
// moved.
//
// medcc:allocfree
// medcc:deterministic — replayed bit-identical by the differential tests
func (g *Greedy) ScheduleInto(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasibleInto(w, m, budget, dst)
	if err != nil {
		return nil, err
	}
	e := &g.eng
	e.bind(w, m)
	if g.Candidates == CriticalOnly {
		if err := e.resetTiming(s); err != nil {
			return nil, err
		}
	}
	e.ct.start(e, g.candMode())
	g.run(s, &ctmp, budget)
	return s, nil
}

// candMode maps the configured Criterion onto the candidate-table mode.
func (g *Greedy) candMode() candMode {
	if g.Rank == MaxRatio {
		return candMaxRatio
	}
	return candMaxTime
}

// run drains the candidate heap at the given budget, leaving s, *ctmp, and
// the candidate state positioned for a warm continuation at a larger
// budget (SweepInto's per-level step).
//
// medcc:allocfree
func (g *Greedy) run(s workflow.Schedule, ctmp *float64, budget float64) {
	e := &g.eng
	needTiming := g.Candidates == CriticalOnly
	act := actAll
	if needTiming {
		act = actCritical
	}
	cextra := budget - *ctmp
	if cextra <= 0 {
		return
	}
	e.ct.rebuild(s, cextra, act)
	for {
		cextra = budget - *ctmp
		if cextra <= 0 {
			return
		}
		i, j, dc, ok := e.ct.popBest(s, cextra, act)
		if !ok {
			return // no affordable rescheduling (Alg. 1 step 14)
		}
		s[i] = j
		*ctmp += dc
		next := budget - *ctmp
		mkChanged := false
		if needTiming {
			e.trk, mkChanged = e.t.UpdateNodeTracked(i, e.m.TE[i][j], e.trk)
		}
		// The accepted module's own cache is stale under its new type in
		// every mode.
		e.ct.evalModule(i, s, next)
		if dc < 0 {
			// A cost-saving upgrade grew the leftover budget: winners
			// cached under less budget may now lose to newly affordable
			// options.
			e.ct.refreshGrown(s, next, act)
		}
		switch {
		case mkChanged:
			// The makespan anchor moved, so the critical set may have
			// changed arbitrarily: rebuild the pool (cache reuse makes
			// this an O(mods) scan, not an option rescan).
			e.ct.rebuild(s, next, act)
		case needTiming:
			// Stable makespan: criticality flips are confined to the
			// changed set (the UpdateNodeTracked contract), so only nodes
			// the accept actually perturbed can enter the pool.
			for _, id := range e.trk {
				ii := int(id)
				if e.ct.mpos[ii] >= 0 && e.t.IsCritical(ii) {
					e.ct.pushEnsure(ii, s, next)
				}
			}
		default:
			// AllModules: the module stays in the pool for further
			// upgrades.
			if e.ct.bj[i] >= 0 {
				e.ct.push(i)
			}
		}
	}
}

// SweepInto implements Sweeper: schedule the same instance at each budget
// of an ascending sweep, resuming level k from level k-1's schedule,
// incremental timing, and surviving candidate caches instead of re-solving
// from the least-cost schedule. The level-k schedule is written into
// dst[k] (reused when already the right length; dst is grown as needed).
//
// Warm continuation is exact for the greedy recurrences: the state after
// draining the heap at budget b is a fixpoint — no affordable upgrade
// remains — so restarting the drain at b' > b explores exactly the
// upgrades the larger budget admits, matching a cold run that replayed the
// same accept sequence.
//
// medcc:deterministic — the campaign cells are pinned to this sweep order
func (g *Greedy) SweepInto(dst []workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budgets []float64) ([]workflow.Schedule, error) {
	if err := checkAscending(budgets); err != nil {
		return nil, err
	}
	dst = growSweepDst(dst, len(budgets))
	if len(budgets) == 0 {
		return dst, nil
	}
	s, ctmp, err := checkFeasibleInto(w, m, budgets[0], g.eng.lc)
	if err != nil {
		return nil, err
	}
	e := &g.eng
	e.lc = s
	e.bind(w, m)
	if g.Candidates == CriticalOnly {
		if err := e.resetTiming(s); err != nil {
			return nil, err
		}
	}
	e.ct.start(e, g.candMode())
	for k, b := range budgets {
		g.run(s, &ctmp, b)
		dst[k] = copySchedule(dst[k], s)
	}
	return dst, nil
}

// costEps tolerates float jitter in cost arithmetic; costs are sums of
// products of catalog rates with small integers, so any real violation is
// far larger.
const costEps = 1e-9

// sameCost reports whether two spends are equal within costEps. The
// floateq analyzer mandates this helper over direct == on cost values.
func sameCost(a, b float64) bool { return math.Abs(a-b) <= costEps }

// better reports whether the candidate (dt, dc) beats the incumbent
// (bestDT, bestDC) under the configured criterion (see upgradeBetter for
// the shared core).
func (g *Greedy) better(dt, dc, bestDT, bestDC float64) bool {
	return upgradeBetter(g.Rank == MaxRatio, dt, dc, bestDT, bestDC)
}

// ratio computes the GainWeight dt/dc, treating free or cost-saving
// upgrades as infinitely attractive.
func ratio(dt, dc float64) float64 {
	if dc <= costEps {
		return math.Inf(1)
	}
	return dt / dc
}

func init() {
	Register("critical-greedy", func() Scheduler { return CriticalGreedy() })
	Register("critical-ratio", func() Scheduler {
		return &Greedy{Label: "critical-ratio", Candidates: CriticalOnly, Rank: MaxRatio}
	})
	Register("all-timedec", func() Scheduler {
		return &Greedy{Label: "all-timedec", Candidates: AllModules, Rank: MaxTimeDecrease}
	})
}
