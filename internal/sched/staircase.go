package sched

import (
	"fmt"

	"medcc/internal/workflow"
)

// This file materializes the budget→schedule trade-off of one
// (scheduler, workflow, matrices) triple as a finite Staircase: for a
// fixed deterministic scheduler, the result of ScheduleInto is a pure
// function of the budget, so solving a grid of budgets once answers
// every repeat query at those budgets by binary search. The serve
// layer's snapshot-scoped cache is built on this.
//
// Every level is an INDEPENDENT solve — bit-identical to what a direct
// ScheduleInto call at that budget returns. The warm-started
// Sweeper.SweepInto path deliberately is not used here: for the Greedy
// family a level that resumes from the previous level's schedule can
// legitimately diverge from a cold solve at the same budget (the warm
// run has already spent budget on upgrades a richer cold run would
// skip), and the staircase's contract is exact agreement with the
// per-request path. What does carry over from the sweep machinery is
// the engine-scratch reuse: consecutive levels rebind the same
// (workflow, matrices) pair, so the scheduler's engine binds once and
// every level after the first runs on warm scratch.

// BudgetAt maps a grid fraction in [0, 1] onto the absolute budget
// lo + frac*(hi-lo). Both the staircase builder and the serve layer's
// budget_fraction resolution MUST use this one expression: grid hits
// are detected by bit-exact float comparison, so the two sides have to
// round identically.
func BudgetAt(lo, hi, frac float64) float64 { return lo + frac*(hi-lo) }

// minRefineGap is the smallest fraction-space interval SweepGrid will
// subdivide. 1/4096 is a dyadic, so refined fractions stay exactly
// representable (sums and halvings of dyadics are exact in float64).
const minRefineGap = 1.0 / 4096

// GridOptions sizes a SweepGrid build.
type GridOptions struct {
	// InitLevels is the uniform starting grid size (default 9). A
	// power-of-two-plus-one count puts every fraction on a dyadic
	// (k/2^n), which midpoint refinement preserves — so common request
	// fractions (0.5, 0.25, 0.125, …) hit the grid bit-exactly.
	InitLevels int
	// MaxLevels caps the grid after refinement (default 33).
	MaxLevels int
}

func (o GridOptions) withDefaults() GridOptions {
	if o.InitLevels <= 0 {
		o.InitLevels = 9
	}
	if o.InitLevels < 2 {
		o.InitLevels = 2
	}
	if o.MaxLevels < o.InitLevels {
		o.MaxLevels = o.InitLevels
		if o.MaxLevels < 33 {
			o.MaxLevels = 33
		}
	}
	return o
}

// Staircase is the materialized step function. Budgets is strictly
// ascending; level k holds schedule Scheds[Level[k]] (adjacent levels
// with identical schedules share one distinct entry). Trunc is non-nil
// only when the scheduler reports truncation (TruncationReporter) and
// records the per-level flag.
type Staircase struct {
	Lo, Hi  float64
	Fracs   []float64
	Budgets []float64
	Level   []int32
	Scheds  []workflow.Schedule
	Trunc   []bool
}

// Levels returns the number of grid levels.
func (st *Staircase) Levels() int { return len(st.Budgets) }

// Steps returns the number of distinct schedules.
func (st *Staircase) Steps() int { return len(st.Scheds) }

// Schedule returns level k's schedule. The returned slice is shared —
// callers must treat it as read-only.
func (st *Staircase) Schedule(k int) workflow.Schedule { return st.Scheds[st.Level[k]] }

// Truncated reports level k's truncation flag.
func (st *Staircase) Truncated(k int) bool { return st.Trunc != nil && st.Trunc[k] }

// Lookup binary-searches the grid for an exact budget match and returns
// its level. Only bit-exact hits count: between two grid levels the
// scheduler's answer is not determined by the endpoints (greedy
// heuristics are step functions with unknown step positions), so a
// near-miss must fall through to a direct solve.
//
// medcc:floateq-exact — grid membership is bit-exact by construction:
// both sides of the comparison come from BudgetAt over identical
// (lo, hi, frac) inputs.
func (st *Staircase) Lookup(budget float64) (int, bool) {
	lo, hi := 0, len(st.Budgets)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.Budgets[mid] < budget {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(st.Budgets) && st.Budgets[lo] == budget {
		return lo, true
	}
	return lo, false
}

// SweepGrid solves (sch, w, m) at every level of an adaptively refined
// fraction grid over the budget range [lo, hi] and extracts the
// staircase. The initial grid is uniform; then, while the level count
// is below MaxLevels, every adjacent pair whose schedules differ is
// split at its fraction midpoint — refinement localizes the step
// boundaries of the trade-off curve, so the finished grid is dense
// where the schedule actually changes and sparse where it does not.
//
// lo must be feasible (the serve layer passes the pair's Cmin). The
// grid is solved level by level on the scheduler's own engine scratch;
// every level is bit-identical to a direct ScheduleInto at its budget.
func SweepGrid(sch IntoScheduler, w *workflow.Workflow, m *workflow.Matrices, lo, hi float64, opt GridOptions) (*Staircase, error) {
	if hi < lo {
		return nil, fmt.Errorf("sched: SweepGrid budget range [%.6g, %.6g] inverted", lo, hi)
	}
	opt = opt.withDefaults()
	tr, _ := sch.(TruncationReporter)

	fracs := make([]float64, opt.InitLevels)
	for k := range fracs {
		fracs[k] = float64(k) / float64(opt.InitLevels-1)
	}
	scheds := make([]workflow.Schedule, 0, opt.MaxLevels)
	trunc := make([]bool, 0, opt.MaxLevels)
	anyTrunc := false
	solve := func(frac float64) (workflow.Schedule, bool, error) {
		s, err := sch.ScheduleInto(nil, w, m, BudgetAt(lo, hi, frac))
		if err != nil {
			return nil, false, err
		}
		t := tr != nil && tr.WasTruncated()
		anyTrunc = anyTrunc || t
		return s, t, nil
	}
	for _, f := range fracs {
		s, t, err := solve(f)
		if err != nil {
			return nil, err
		}
		scheds = append(scheds, s)
		trunc = append(trunc, t)
	}

	// Refinement passes: split every differing adjacent pair at its
	// midpoint until the curve is resolved, the gaps hit the dyadic
	// floor, or the level cap is reached. Insertions within one pass are
	// processed back to front so earlier indices stay valid.
	for len(fracs) < opt.MaxLevels {
		inserted := false
		for k := len(fracs) - 2; k >= 0 && len(fracs) < opt.MaxLevels; k-- {
			gap := fracs[k+1] - fracs[k]
			if gap < minRefineGap || scheds[k].Equal(scheds[k+1]) {
				continue
			}
			mid := fracs[k] + gap/2
			s, t, err := solve(mid)
			if err != nil {
				return nil, err
			}
			fracs = insertFloat(fracs, k+1, mid)
			scheds = insertSchedule(scheds, k+1, s)
			trunc = insertBool(trunc, k+1, t)
			inserted = true
		}
		if !inserted {
			break
		}
	}

	return extractStaircase(lo, hi, fracs, scheds, trunc, anyTrunc), nil
}

func insertFloat(s []float64, i int, v float64) []float64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertSchedule(s []workflow.Schedule, i int, v workflow.Schedule) []workflow.Schedule {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertBool(s []bool, i int, v bool) []bool {
	s = append(s, false)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// extractStaircase collapses the solved grid into the shared form:
// duplicate budgets are dropped (a degenerate range maps many fractions
// onto one budget; the solver is deterministic, so their schedules are
// identical), and runs of equal adjacent schedules share one distinct
// entry.
//
// medcc:floateq-exact — duplicate-budget collapse is bit-exact on
// purpose: Lookup matches bit-exactly, so two levels are redundant only
// when their budgets are the same float.
func extractStaircase(lo, hi float64, fracs []float64, scheds []workflow.Schedule, trunc []bool, anyTrunc bool) *Staircase {
	st := &Staircase{Lo: lo, Hi: hi}
	for k := range fracs {
		b := BudgetAt(lo, hi, fracs[k])
		if n := len(st.Budgets); n > 0 && st.Budgets[n-1] == b {
			continue
		}
		var lev int32
		if n := len(st.Scheds); n > 0 && st.Scheds[n-1].Equal(scheds[k]) {
			lev = int32(n - 1)
		} else {
			lev = int32(len(st.Scheds))
			st.Scheds = append(st.Scheds, scheds[k])
		}
		st.Fracs = append(st.Fracs, fracs[k])
		st.Budgets = append(st.Budgets, b)
		st.Level = append(st.Level, lev)
		if anyTrunc {
			st.Trunc = append(st.Trunc, trunc[k])
		}
	}
	return st
}
