package sched

import (
	"math"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// Gain3WRF is the GAIN3 variant reverse-engineered from the paper's own
// published outputs: replaying it over the measured WRF matrix (Table VI)
// under per-second round-up billing regenerates five of the six published
// S_GAIN3 rows of Table VII exactly, column for column (the sixth row is
// cost-infeasible as printed; see EXPERIMENTS.md E11).
//
// It differs from the literal-reading GAIN (type GAIN) in two ways:
//
//   - The GainWeight is the *relative* speedup per unit cost,
//     (T_old / T_new) / (C_new - C_old), rather than the absolute
//     time-decrease ratio. This is what sends the budget to the small
//     branch modules first (large relative speedups, low cost) — the
//     behaviour the MED-CC paper criticizes in §VI-B3.
//   - Upgrading is round-based: within a round every task may take at
//     most one reassignment (the best affordable by weight, chosen
//     greedily across tasks); rounds repeat until a full round makes no
//     move. The second round is what upgrades w4 from VT2 to VT3 in the
//     published B=180.1 and B=186.2 rows.
type Gain3WRF struct {
	eng engine
}

// Name implements Scheduler.
func (*Gain3WRF) Name() string { return "gain3-wrf" }

// Schedule implements Scheduler.
func (g *Gain3WRF) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	return g.ScheduleInto(nil, w, m, budget)
}

// ScheduleInto implements IntoScheduler.
//
// medcc:allocfree
func (g *Gain3WRF) ScheduleInto(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasibleInto(w, m, budget, dst)
	if err != nil {
		return nil, err
	}
	e := &g.eng
	e.bind(w, m)
	for {
		movedAny := false
		movedThisRound := e.resetMoved()
		for {
			cextra := budget - ctmp
			if cextra <= 0 {
				break
			}
			bi, bj := -1, -1
			best := math.Inf(-1)
			for _, i := range e.mods {
				if movedThisRound[i] {
					continue
				}
				for _, j := range e.opts(i) {
					if j == s[i] {
						continue
					}
					told, tnew := m.TE[i][s[i]], m.TE[i][j]
					dc := m.CE[i][j] - m.CE[i][s[i]]
					if told-tnew <= dag.Eps || dc > cextra+costEps {
						continue
					}
					wt := math.Inf(1)
					if dc > costEps {
						wt = (told / tnew) / dc
					}
					if wt > best {
						bi, bj, best = i, j, wt
					}
				}
			}
			if bi == -1 {
				break
			}
			ctmp += m.CE[bi][bj] - m.CE[bi][s[bi]]
			s[bi] = bj
			movedThisRound[bi] = true
			movedAny = true
		}
		if !movedAny {
			break
		}
	}
	return s, nil
}

func init() {
	Register("gain3-wrf", func() Scheduler { return &Gain3WRF{} })
}
