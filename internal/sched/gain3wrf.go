package sched

import (
	"medcc/internal/workflow"
)

// Gain3WRF is the GAIN3 variant reverse-engineered from the paper's own
// published outputs: replaying it over the measured WRF matrix (Table VI)
// under per-second round-up billing regenerates five of the six published
// S_GAIN3 rows of Table VII exactly, column for column (the sixth row is
// cost-infeasible as printed; see EXPERIMENTS.md E11).
//
// It differs from the literal-reading GAIN (type GAIN) in two ways:
//
//   - The GainWeight is the *relative* speedup per unit cost,
//     (T_old / T_new) / (C_new - C_old), rather than the absolute
//     time-decrease ratio. This is what sends the budget to the small
//     branch modules first (large relative speedups, low cost) — the
//     behaviour the MED-CC paper criticizes in §VI-B3.
//   - Upgrading is round-based: within a round every task may take at
//     most one reassignment (the best affordable by weight, chosen
//     greedily across tasks); rounds repeat until a full round makes no
//     move. The second round is what upgrades w4 from VT2 to VT3 in the
//     published B=180.1 and B=186.2 rows.
type Gain3WRF struct {
	eng engine
}

// Name implements Scheduler.
func (*Gain3WRF) Name() string { return "gain3-wrf" }

// Schedule implements Scheduler.
func (g *Gain3WRF) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	return g.ScheduleInto(nil, w, m, budget)
}

// ScheduleInto implements IntoScheduler. The per-round inner loop runs
// off the candidate heap (candWRF keeps the type-index evaluation order
// the Table VII replay is pinned to): each round rebuilds the pool from
// the per-module caches — cheap, since only modules moved since their last
// evaluation rescan their options — then pops one reassignment per module
// until none is affordable.
//
// medcc:allocfree
// medcc:deterministic — the Table VII replay pins its evaluation order
func (g *Gain3WRF) ScheduleInto(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	s, ctmp, err := checkFeasibleInto(w, m, budget, dst)
	if err != nil {
		return nil, err
	}
	e := &g.eng
	e.bind(w, m)
	e.ct.start(e, candWRF)
	g.runRounds(s, &ctmp, budget)
	return s, nil
}

// runRounds plays upgrade rounds at the given budget until a full round
// makes no move, leaving the state warm for a larger budget level.
//
// medcc:allocfree
func (g *Gain3WRF) runRounds(s workflow.Schedule, ctmp *float64, budget float64) {
	e := &g.eng
	for {
		movedAny := false
		e.resetMoved()
		cextra := budget - *ctmp
		if cextra <= 0 {
			return
		}
		e.ct.rebuild(s, cextra, actUnmoved)
		for {
			cextra = budget - *ctmp
			if cextra <= 0 {
				return
			}
			i, j, dc, ok := e.ct.popBest(s, cextra, actUnmoved)
			if !ok {
				break
			}
			s[i] = j
			e.moved[i] = true
			movedAny = true
			*ctmp += dc
			// Retired for this round, but the cache must reflect the new
			// assignment before the next round re-admits the module.
			e.ct.evalModule(i, s, budget-*ctmp)
			if dc < 0 {
				e.ct.refreshGrown(s, budget-*ctmp, actUnmoved)
			}
		}
		if !movedAny {
			return
		}
	}
}

// SweepInto implements Sweeper: each budget level continues the round loop
// from the previous level's schedule and candidate caches.
//
// medcc:deterministic
func (g *Gain3WRF) SweepInto(dst []workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budgets []float64) ([]workflow.Schedule, error) {
	if err := checkAscending(budgets); err != nil {
		return nil, err
	}
	dst = growSweepDst(dst, len(budgets))
	if len(budgets) == 0 {
		return dst, nil
	}
	s, ctmp, err := checkFeasibleInto(w, m, budgets[0], g.eng.lc)
	if err != nil {
		return nil, err
	}
	e := &g.eng
	e.lc = s
	e.bind(w, m)
	e.ct.start(e, candWRF)
	for k, b := range budgets {
		g.runRounds(s, &ctmp, b)
		dst[k] = copySchedule(dst[k], s)
	}
	return dst, nil
}

func init() {
	Register("gain3-wrf", func() Scheduler { return &Gain3WRF{} })
}
