package sched

import (
	"math"
	"math/rand"
	"testing"

	"medcc/internal/dag"
	"medcc/internal/gen"
	"medcc/internal/workflow"
)

// This file pins the warm-started budget sweeps (Sweeper.SweepInto) and the
// candidate-heap selection itself against naive full-rescan references. The
// references below define warm-start semantics from first principles: level
// 0 solves cold from the least-cost schedule at budgets[0]; level k resumes
// the flat rescan-everything loop from level k-1's schedule and running
// cost. The live implementations must match bit-for-bit.

// refGreedyResume continues the pre-engine Greedy loop (full rescan of all
// candidates and types per iteration) from an arbitrary (s, ctmp) state.
func refGreedyResume(cand CandidateSet, rank Criterion, w *workflow.Workflow, m *workflow.Matrices, s workflow.Schedule, ctmp *float64, budget float64) error {
	n := len(m.Catalog)
	for {
		cextra := budget - *ctmp
		if cextra <= 0 {
			return nil
		}
		var cs []int
		if cand == AllModules {
			cs = w.Schedulable()
		} else {
			t, err := dag.NewTiming(w.Graph(), m.Times(s), nil)
			if err != nil {
				return err
			}
			for _, i := range w.Schedulable() {
				if t.IsCritical(i) {
					cs = append(cs, i)
				}
			}
		}
		bi, bj := -1, -1
		var bestDT, bestDC float64
		for _, i := range cs {
			told := m.TE[i][s[i]]
			cold := m.CE[i][s[i]]
			for j := 0; j < n; j++ {
				if j == s[i] {
					continue
				}
				dt := told - m.TE[i][j]
				dc := m.CE[i][j] - cold
				if dt <= dag.Eps {
					continue
				}
				if dc > cextra+costEps {
					continue
				}
				if bi == -1 || upgradeBetter(rank == MaxRatio, dt, dc, bestDT, bestDC) {
					bi, bj, bestDT, bestDC = i, j, dt, dc
				}
			}
		}
		if bi == -1 {
			return nil
		}
		s[bi] = bj
		*ctmp += bestDC
	}
}

// refGreedySweep is the warm-sweep reference for the Greedy family.
func refGreedySweep(cand CandidateSet, rank Criterion, w *workflow.Workflow, m *workflow.Matrices, budgets []float64) ([]workflow.Schedule, error) {
	s, ctmp, err := checkFeasible(w, m, budgets[0])
	if err != nil {
		return nil, err
	}
	out := make([]workflow.Schedule, 0, len(budgets))
	for _, b := range budgets {
		if err := refGreedyResume(cand, rank, w, m, s, &ctmp, b); err != nil {
			return nil, err
		}
		out = append(out, s.Clone())
	}
	return out, nil
}

// refGain3Sweep is the sweep reference for GAIN3: independent per-level
// solves. The once-per-task rule is defined against a single solve from
// the least-cost schedule, so GAIN's sweep deliberately does NOT warm-start
// (a per-level continuation would re-admit every task each level and turn
// GAIN3 into a round-based algorithm; see GAIN.SweepInto).
func refGain3Sweep(w *workflow.Workflow, m *workflow.Matrices, budgets []float64) ([]workflow.Schedule, error) {
	out := make([]workflow.Schedule, 0, len(budgets))
	for _, b := range budgets {
		s, err := refGainOncePerTask(w, m, b, false)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// refWRFSweep is the warm-sweep reference for Gain3WRF: each level
// continues the round loop from the previous level's schedule.
func refWRFSweep(w *workflow.Workflow, m *workflow.Matrices, budgets []float64) ([]workflow.Schedule, error) {
	s, ctmp, err := checkFeasible(w, m, budgets[0])
	if err != nil {
		return nil, err
	}
	out := make([]workflow.Schedule, 0, len(budgets))
	for _, b := range budgets {
		for {
			movedAny := false
			movedThisRound := make(map[int]bool)
			for {
				cextra := b - ctmp
				if cextra <= 0 {
					break
				}
				bi, bj := -1, -1
				best := math.Inf(-1)
				for _, i := range w.Schedulable() {
					if movedThisRound[i] {
						continue
					}
					for j := range m.Catalog {
						if j == s[i] {
							continue
						}
						told, tnew := m.TE[i][s[i]], m.TE[i][j]
						dc := m.CE[i][j] - m.CE[i][s[i]]
						if told-tnew <= dag.Eps || dc > cextra+costEps {
							continue
						}
						wt := math.Inf(1)
						if dc > costEps {
							wt = (told / tnew) / dc
						}
						if wt > best {
							bi, bj, best = i, j, wt
						}
					}
				}
				if bi == -1 {
					break
				}
				ctmp += m.CE[bi][bj] - m.CE[bi][s[bi]]
				s[bi] = bj
				movedThisRound[bi] = true
				movedAny = true
			}
			if !movedAny {
				break
			}
		}
		out = append(out, s.Clone())
	}
	return out, nil
}

// sweepBudgets builds a 5-level ascending budget grid like the campaign
// runners do.
func sweepBudgets(cmin, cmax float64) []float64 {
	out := make([]float64, 5)
	for k := 1; k <= 5; k++ {
		out[k-1] = cmin + float64(k)/5*(cmax-cmin)
	}
	return out
}

func requireSameSweep(t *testing.T, name string, size gen.ProblemSize, budgets []float64, got, want []workflow.Schedule) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s on %v: %d levels, want %d", name, size, len(got), len(want))
	}
	for k := range want {
		if !got[k].Equal(want[k]) {
			t.Fatalf("%s on %v level %d (budget %.6g): schedule diverged from warm reference\n got: %v\nwant: %v",
				name, size, k, budgets[k], got[k], want[k])
		}
	}
}

// TestSweepIntoMatchesWarmReference pins the warm-started sweeps of every
// Sweeper against the full-rescan warm references across paper problem
// sizes.
func TestSweepIntoMatchesWarmReference(t *testing.T) {
	sizes := gen.PaperProblemSizes()
	if testing.Short() {
		sizes = sizes[:6]
	} else {
		sizes = sizes[:12]
	}
	for _, size := range sizes {
		w, m, cmin, cmax := diffInstance(t, size.M, size)
		budgets := sweepBudgets(cmin, cmax)

		for _, combo := range []struct {
			cand CandidateSet
			rank Criterion
			name string
		}{
			{CriticalOnly, MaxTimeDecrease, "critical-greedy"},
			{CriticalOnly, MaxRatio, "critical-ratio"},
			{AllModules, MaxTimeDecrease, "all-timedec"},
			{AllModules, MaxRatio, "gain-fixpoint"},
		} {
			want, err := refGreedySweep(combo.cand, combo.rank, w, m, budgets)
			if err != nil {
				t.Fatal(err)
			}
			g := &Greedy{Label: combo.name, Candidates: combo.cand, Rank: combo.rank}
			got, err := g.SweepInto(nil, w, m, budgets)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSweep(t, combo.name+" sweep", size, budgets, got, want)
		}

		wantG3, err := refGain3Sweep(w, m, budgets)
		if err != nil {
			t.Fatal(err)
		}
		gotG3, err := (&GAIN{Variant: 3}).SweepInto(nil, w, m, budgets)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSweep(t, "gain3 sweep", size, budgets, gotG3, wantG3)

		wantWRF, err := refWRFSweep(w, m, budgets)
		if err != nil {
			t.Fatal(err)
		}
		gotWRF, err := (&Gain3WRF{}).SweepInto(nil, w, m, budgets)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSweep(t, "gain3-wrf sweep", size, budgets, gotWRF, wantWRF)
	}
}

// TestSweepIntoReusesDst pins destination reuse and the ascending-budgets
// contract.
func TestSweepIntoReusesDst(t *testing.T) {
	size := gen.ProblemSize{M: 25, E: 201, N: 5}
	w, m, cmin, cmax := diffInstance(t, size.M, size)
	budgets := sweepBudgets(cmin, cmax)
	g := CriticalGreedy()
	dst, err := g.SweepInto(nil, w, m, budgets)
	if err != nil {
		t.Fatal(err)
	}
	ptr := &dst[0][0]
	dst2, err := g.SweepInto(dst, w, m, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if &dst2[0][0] != ptr {
		t.Fatal("SweepInto did not reuse per-level schedules")
	}
	if _, err := g.SweepInto(nil, w, m, []float64{budgets[1], budgets[0]}); err == nil {
		t.Fatal("descending budgets accepted")
	}
}

// TestSweepSchedulesColdFallback checks the generic sweep helper: for a
// non-Sweeper it must equal independent per-level solves, and for a
// Sweeper it must delegate to the warm path.
func TestSweepSchedulesColdFallback(t *testing.T) {
	size := gen.ProblemSize{M: 20, E: 95, N: 5}
	w, m, cmin, cmax := diffInstance(t, size.M, size)
	budgets := sweepBudgets(cmin, cmax)

	l1 := &LOSS{Variant: 1}
	got, err := SweepSchedules(l1, nil, w, m, budgets)
	if err != nil {
		t.Fatal(err)
	}
	for k, b := range budgets {
		want, err := (&LOSS{Variant: 1}).Schedule(w, m, b)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSchedule(t, "loss1 cold sweep", size, b, got[k], want)
	}

	cg := CriticalGreedy()
	gotCG, err := SweepSchedules(cg, nil, w, m, budgets)
	if err != nil {
		t.Fatal(err)
	}
	wantCG, err := refGreedySweep(CriticalOnly, MaxTimeDecrease, w, m, budgets)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSweep(t, "critical-greedy via SweepSchedules", size, budgets, gotCG, wantCG)
}

// TestHeapGreedyMatchesNaiveRandom is the randomized property test for the
// candidate heap: over random instances and randomized budgets, each of
// the four (CandidateSet, Criterion) combinations must produce exactly the
// schedule of the naive rescan-everything reference. The combinations run
// as parallel subtests so the -race build exercises concurrent scheduler
// instances over shared (read-only) workflows and matrices.
func TestHeapGreedyMatchesNaiveRandom(t *testing.T) {
	sizes := gen.PaperProblemSizes()
	combos := []struct {
		cand CandidateSet
		rank Criterion
		name string
	}{
		{CriticalOnly, MaxTimeDecrease, "critical+timedec"},
		{CriticalOnly, MaxRatio, "critical+ratio"},
		{AllModules, MaxTimeDecrease, "all+timedec"},
		{AllModules, MaxRatio, "all+ratio"},
	}
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(4242 + int64(combo.cand)*7 + int64(combo.rank)))
			g := &Greedy{Label: combo.name, Candidates: combo.cand, Rank: combo.rank}
			for trial := 0; trial < trials; trial++ {
				size := sizes[rng.Intn(12)]
				w, m, cmin, cmax := diffInstance(t, rng.Intn(50), size)
				budget := cmin + rng.Float64()*(cmax-cmin)
				want, err := refGreedy(combo.cand, combo.rank, w, m, budget)
				if err != nil {
					t.Fatal(err)
				}
				got, err := g.ScheduleInto(nil, w, m, budget)
				if err != nil {
					t.Fatal(err)
				}
				requireSameSchedule(t, combo.name, size, budget, got, want)
			}
		})
	}
}
