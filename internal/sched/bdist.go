package sched

import (
	"medcc/internal/workflow"
)

// BudgetDist is the budget-distribution heuristic family found in the
// deadline/budget literature that followed the paper (BDHEFT-style):
// instead of reasoning about the critical path, it splits the budget
// *surplus* (B - Cmin) over modules in proportion to their workloads,
// upgrades each module to the fastest type its share affords, and then
// sweeps leftover share forward. It is cheap — two passes, no critical
// path recomputation — and serves as the "budget-aware but
// structure-blind" baseline in the ablation story: it knows how much each
// module may spend but not which modules matter.
type BudgetDist struct{}

// Name implements Scheduler.
func (BudgetDist) Name() string { return "budget-dist" }

// Schedule implements Scheduler.
func (BudgetDist) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	s, cmin, err := checkFeasible(w, m, budget)
	if err != nil {
		return nil, err
	}
	mods := w.Schedulable()
	totalWL := 0.0
	for _, i := range mods {
		totalWL += w.Module(i).Workload
	}
	surplus := budget - cmin
	if totalWL <= 0 || surplus <= 0 {
		return s, nil
	}
	// Pass 1: each module gets a workload-proportional share of the
	// surplus and takes the fastest upgrade within it; unused share
	// carries forward to the next module (modules are visited in
	// topological index order, heaviest shares first is deliberately
	// NOT done — the family distributes blindly).
	carry := 0.0
	spend := func(i int, allowance float64) float64 {
		bestJ, bestT := s[i], m.TE[i][s[i]]
		bestDC := 0.0
		for j := range m.Catalog {
			dc := m.CE[i][j] - m.CE[i][s[i]]
			if dc > allowance+costEps {
				continue
			}
			if m.TE[i][j] < bestT-1e-12 || (m.TE[i][j] <= bestT+1e-12 && dc < bestDC) {
				bestJ, bestT, bestDC = j, m.TE[i][j], dc
			}
		}
		s[i] = bestJ
		return allowance - bestDC
	}
	for _, i := range mods {
		share := surplus*(w.Module(i).Workload/totalWL) + carry
		carry = spend(i, share)
	}
	// Pass 2: one more sweep with whatever accumulated, so rounding
	// leftovers are not wasted.
	for _, i := range mods {
		if carry <= costEps {
			break
		}
		carry = spend(i, carry)
	}
	return s, nil
}

func init() {
	Register("budget-dist", func() Scheduler { return BudgetDist{} })
}
