package sched

import (
	"errors"
	"math/rand"
	"testing"

	"medcc/internal/cloud"
	"medcc/internal/gen"
)

func TestBudgetDistInfeasible(t *testing.T) {
	w, m := paperSetup(t)
	if _, err := (BudgetDist{}).Schedule(w, m, 40); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestBudgetDistAtCminReturnsLeastCost(t *testing.T) {
	w, m := paperSetup(t)
	s, err := BudgetDist{}.Schedule(w, m, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(m.LeastCost(w)) {
		t.Fatalf("schedule at Cmin = %v", s)
	}
}

func TestBudgetDistRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 15, E: 40, N: 5})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		for _, frac := range []float64{0, 0.3, 0.7, 1, 2} {
			b := cmin + frac*(cmax-cmin)
			res, err := Run(BudgetDist{}, wf, m, b)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost > b+1e-9 {
				t.Fatalf("trial %d frac %v: overspent %v > %v", trial, frac, res.Cost, b)
			}
		}
	}
}

func TestBudgetDistFullBudgetNearFastest(t *testing.T) {
	w, m := paperSetup(t)
	res, err := Run(BudgetDist{}, w, m, 64)
	if err != nil {
		t.Fatal(err)
	}
	fastEv, _ := w.Evaluate(m, m.Fastest(w), nil)
	// With the full Cmax the proportional shares cover every upgrade.
	if res.MED > fastEv.Makespan+1e-9 {
		t.Fatalf("full-budget MED %v above fastest %v", res.MED, fastEv.Makespan)
	}
}

// TestBudgetDistCompetitiveWithCG records a finding rather than a win:
// in the campaign regime, spending the surplus blindly in proportion to
// workload lands within a couple percent of Critical-Greedy on average
// (workload-proportional shares approximate criticality on dense random
// DAGs). The assertion pins the two to within 10% of each other so a
// regression in either one is caught.
func TestBudgetDistCompetitiveWithCG(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	var cgSum, bdSum float64
	for trial := 0; trial < 8; trial++ {
		wf, cat, err := gen.Instance(rng, gen.ProblemSize{M: 20, E: 80, N: 5})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := wf.BuildMatrices(cat, cloud.HourlyRoundUp)
		cmin, cmax := m.BudgetRange(wf)
		for lvl := 1; lvl <= 5; lvl++ {
			b := budgetAt(cmin, cmax, lvl, 5)
			cg, err := Run(CriticalGreedy(), wf, m, b)
			if err != nil {
				t.Fatal(err)
			}
			bd, err := Run(BudgetDist{}, wf, m, b)
			if err != nil {
				t.Fatal(err)
			}
			cgSum += cg.MED
			bdSum += bd.MED
		}
	}
	ratio := cgSum / bdSum
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("CG/budget-dist average ratio %v drifted outside [0.9, 1.1]", ratio)
	}
}

func budgetAt(cmin, cmax float64, k, n int) float64 {
	return cmin + float64(k)/float64(n)*(cmax-cmin)
}
