package sched

import (
	"math"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// Optimal solves MED-CC exactly by depth-first search over all type
// assignments with branch-and-bound pruning. MED-CC is NP-complete
// (Theorem 1 of the paper), so this is only practical for the small
// instances of the paper's optimality study (m <= ~10, n = 3); the
// MaxNodes guard keeps runaway instances from hanging.
type Optimal struct {
	// MaxNodes bounds the number of search nodes expanded; 0 means the
	// default of 50 million. When exceeded the incumbent (possibly
	// non-optimal) schedule is returned.
	MaxNodes int64

	// eng holds the engine scratch shared with the other schedulers:
	// the incremental timing bound under the DFS invariant "assigned
	// prefix of cur, fastest types for the unassigned suffix", the
	// schedulable-module list, and the least-cost schedule buffer.
	eng engine

	// Per-position search scratch, sized to the schedulable module
	// count on bind.
	minCost   []float64 // cheapest cost of position k (budget bound)
	fastest   []int     // fastest type of position k (makespan bound)
	suffixMin []float64 // sum of minCost over positions k..end

	cur   workflow.Schedule // partial assignment being explored
	bestS workflow.Schedule // incumbent (returned schedule)

	// DFS state, reset per Schedule call. Keeping it on the struct lets
	// the recursion be a plain method instead of a captured closure, so
	// steady-state calls allocate nothing.
	budget             float64
	bestMED, bestCost  float64
	expanded, expLimit int64
	numTypes           int
}

// Name implements Scheduler.
func (o *Optimal) Name() string { return "optimal" }

// Schedule implements Scheduler. It returns a schedule with the minimum
// makespan among all schedules of cost <= budget; ties are broken toward
// lower cost.
func (o *Optimal) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	return o.ScheduleInto(nil, w, m, budget)
}

// ScheduleInto implements IntoScheduler: the search runs entirely in the
// engine scratch (incremental timing, reused schedule and bound buffers),
// so repeated solves of the same instance are allocation-free in steady
// state, like the greedy and metaheuristic schedulers.
//
// medcc:allocfree
func (o *Optimal) ScheduleInto(dst workflow.Schedule, w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	e := &o.eng
	e.bind(w, m)
	if err := e.feasible(budget); err != nil {
		return nil, err
	}
	lc := e.lc
	mods := e.mods
	n := len(m.Catalog)

	// Per-position cheapest remaining cost (budget bound) and fastest
	// type (makespan bound).
	if len(o.minCost) != len(mods) {
		o.minCost = make([]float64, len(mods))     // medcc:lint-ignore allocfree — first-use growth
		o.fastest = make([]int, len(mods))         // medcc:lint-ignore allocfree — first-use growth
		o.suffixMin = make([]float64, len(mods)+1) // medcc:lint-ignore allocfree — first-use growth
	}
	for k, i := range mods {
		o.minCost[k] = math.Inf(1)
		best := 0
		for j := 0; j < n; j++ {
			if m.CE[i][j] < o.minCost[k] {
				o.minCost[k] = m.CE[i][j]
			}
			if m.TE[i][j] < m.TE[i][best] {
				best = j
			}
		}
		o.fastest[k] = best
	}
	o.suffixMin[len(mods)] = 0
	for k := len(mods) - 1; k >= 0; k-- {
		o.suffixMin[k] = o.suffixMin[k+1] + o.minCost[k]
	}

	// Incumbent: the least-cost schedule, always feasible here. Its
	// makespan comes from the engine timing instead of a fresh Evaluate
	// pass.
	if len(dst) == len(lc) {
		o.bestS = dst
	} else if len(o.bestS) != len(lc) {
		o.bestS = make(workflow.Schedule, len(lc)) // medcc:lint-ignore allocfree — first-use growth
	}
	copy(o.bestS, lc)
	if err := e.resetTiming(lc); err != nil {
		return nil, err
	}
	o.bestMED, o.bestCost = e.t.Makespan, m.Cost(lc)

	o.expLimit = o.MaxNodes
	if o.expLimit == 0 {
		o.expLimit = 50_000_000
	}
	o.expanded = 0
	o.budget = budget
	o.numTypes = n

	// Incremental makespan lower bound: the timing is maintained under the
	// invariant "assigned prefix of cur, fastest types for the unassigned
	// suffix", so t.Makespan is always the bound — and at a leaf it is the
	// exact makespan of cur — without re-running a full DAG pass per search
	// node. Each branch assignment re-relaxes one node suffix; the type is
	// restored to the fastest after the branch loop to keep the invariant
	// for the parent's remaining siblings.
	if len(o.cur) != len(lc) {
		o.cur = make(workflow.Schedule, len(lc)) // medcc:lint-ignore allocfree — first-use growth
	}
	copy(o.cur, lc)
	for k, i := range mods {
		o.cur[i] = o.fastest[k]
	}
	if err := e.resetTiming(o.cur); err != nil {
		return nil, err
	}

	o.dfs(0, 0)
	return o.bestS, nil
}

// dfs explores assignments for positions depth.. with the partial cost of
// the assigned prefix, updating the incumbent at feasible leaves.
func (o *Optimal) dfs(depth int, cost float64) {
	o.expanded++
	if o.expanded > o.expLimit {
		return
	}
	if cost+o.suffixMin[depth] > o.budget+costEps {
		return // cannot finish within budget
	}
	e := &o.eng
	if depth == len(e.mods) {
		// The suffix is empty: the timing is exactly cur's.
		if e.t.Makespan < o.bestMED-dag.Eps ||
			(e.t.Makespan <= o.bestMED+dag.Eps && cost < o.bestCost-costEps) {
			o.bestMED, o.bestCost = e.t.Makespan, cost
			copy(o.bestS, o.cur)
		}
		return
	}
	if e.t.Makespan > o.bestMED+dag.Eps {
		return // even the all-fastest completion loses
	}
	i := e.mods[depth]
	for j := 0; j < o.numTypes; j++ {
		o.cur[i] = j
		e.t.UpdateNode(i, e.m.TE[i][j])
		o.dfs(depth+1, cost+e.m.CE[i][j])
	}
	e.t.UpdateNode(i, e.m.TE[i][o.fastest[depth]])
}

func init() {
	Register("optimal", func() Scheduler { return &Optimal{} })
}
