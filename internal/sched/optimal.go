package sched

import (
	"math"

	"medcc/internal/dag"
	"medcc/internal/workflow"
)

// Optimal solves MED-CC exactly by depth-first search over all type
// assignments with branch-and-bound pruning. MED-CC is NP-complete
// (Theorem 1 of the paper), so this is only practical for the small
// instances of the paper's optimality study (m <= ~10, n = 3); the
// MaxNodes guard keeps runaway instances from hanging.
type Optimal struct {
	// MaxNodes bounds the number of search nodes expanded; 0 means the
	// default of 50 million. When exceeded the incumbent (possibly
	// non-optimal) schedule is returned.
	MaxNodes int64
}

// Name implements Scheduler.
func (o *Optimal) Name() string { return "optimal" }

// Schedule implements Scheduler. It returns a schedule with the minimum
// makespan among all schedules of cost <= budget; ties are broken toward
// lower cost.
func (o *Optimal) Schedule(w *workflow.Workflow, m *workflow.Matrices, budget float64) (workflow.Schedule, error) {
	lc, _, err := checkFeasible(w, m, budget)
	if err != nil {
		return nil, err
	}
	mods := w.Schedulable()
	n := len(m.Catalog)

	// Per-position cheapest remaining cost (budget bound) and fastest
	// type (makespan bound).
	minCost := make([]float64, len(mods))
	fastest := make([]int, len(mods))
	for k, i := range mods {
		minCost[k] = math.Inf(1)
		best := 0
		for j := 0; j < n; j++ {
			if m.CE[i][j] < minCost[k] {
				minCost[k] = m.CE[i][j]
			}
			if m.TE[i][j] < m.TE[i][best] {
				best = j
			}
		}
		fastest[k] = best
	}
	suffixMin := make([]float64, len(mods)+1)
	for k := len(mods) - 1; k >= 0; k-- {
		suffixMin[k] = suffixMin[k+1] + minCost[k]
	}

	// Incumbent: the least-cost schedule, always feasible here.
	bestS := lc.Clone()
	evBest, err := w.Evaluate(m, bestS, nil)
	if err != nil {
		return nil, err
	}
	bestMED, bestCost := evBest.Makespan, evBest.Cost

	limit := o.MaxNodes
	if limit == 0 {
		limit = 50_000_000
	}
	var expanded int64

	cur := lc.Clone()
	// Incremental makespan lower bound: the timing is maintained under the
	// invariant "assigned prefix of cur, fastest types for the unassigned
	// suffix", so t.Makespan is always the bound — and at a leaf it is the
	// exact makespan of cur — without re-running a full DAG pass per search
	// node. Each branch assignment re-relaxes one node suffix; the type is
	// restored to the fastest after the branch loop to keep the invariant
	// for the parent's remaining siblings.
	init := cur.Clone()
	for k, i := range mods {
		init[i] = fastest[k]
	}
	t, err := dag.NewTiming(w.Graph(), m.Times(init), nil)
	if err != nil {
		return nil, err
	}

	var dfs func(depth int, cost float64)
	dfs = func(depth int, cost float64) {
		expanded++
		if expanded > limit {
			return
		}
		if cost+suffixMin[depth] > budget+costEps {
			return // cannot finish within budget
		}
		if depth == len(mods) {
			// The suffix is empty: the timing is exactly cur's.
			if t.Makespan < bestMED-dag.Eps ||
				(t.Makespan <= bestMED+dag.Eps && cost < bestCost-costEps) {
				bestMED, bestCost = t.Makespan, cost
				copy(bestS, cur)
			}
			return
		}
		if t.Makespan > bestMED+dag.Eps {
			return // even the all-fastest completion loses
		}
		i := mods[depth]
		for j := 0; j < n; j++ {
			cur[i] = j
			t.UpdateNode(i, m.TE[i][j])
			dfs(depth+1, cost+m.CE[i][j])
		}
		t.UpdateNode(i, m.TE[i][fastest[depth]])
	}
	dfs(0, 0)
	return bestS, nil
}

func init() {
	Register("optimal", func() Scheduler { return &Optimal{} })
}
